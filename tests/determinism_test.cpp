// Copyright (c) 2026 lrsim authors. MIT license.
//
// Regression tests for bit-level determinism: the same machine seed must
// reproduce the exact final cycle count and message-level statistics, both
// on the default FIFO schedule and under a fixed perturbation seed. The
// shrink harness (tests/shrink_util.hpp) relies on this.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

struct RunOutcome {
  Cycle cycles = 0;
  Stats stats;
};

RunOutcome run_once(std::uint64_t machine_seed, std::optional<std::uint64_t> perturb_seed) {
  MachineConfig cfg = small_config(4, /*leases=*/true);
  cfg.max_lease_time = 3000;
  Machine m{cfg, machine_seed};
  if (perturb_seed) m.enable_perturbation(*perturb_seed);
  std::vector<Addr> pool{m.heap().alloc_line(), m.heap().alloc_line(), m.heap().alloc_line()};
  RunOutcome out;
  out.cycles = testing::run_workers(m, 4, [&pool](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 150; ++i) {
      const Addr a = pool[ctx.rng().next_below(pool.size())];
      const bool leased = ctx.rng().next_bool(0.4);
      if (leased) co_await ctx.lease(a, 200 + ctx.rng().next_below(1500));
      switch (ctx.rng().next_below(5)) {
        case 0: (void)co_await ctx.load(a); break;
        case 1: co_await ctx.store(a, ctx.rng().next_below(1000)); break;
        case 2: (void)co_await ctx.cas_val(a, ctx.rng().next_below(8), ctx.rng().next_below(1000)); break;
        case 3: (void)co_await ctx.faa(a, 1); break;
        default: (void)co_await ctx.xchg(a, ctx.rng().next_below(1000)); break;
      }
      if (leased) co_await ctx.release(a);
      if (ctx.rng().next_bool(0.3)) co_await ctx.work(ctx.rng().next_below(50));
    }
  });
  out.stats = m.total_stats();
  return out;
}

TEST(Determinism, SameSeedReproducesCyclesAndStats) {
  const RunOutcome a = run_once(1234, std::nullopt);
  const RunOutcome b = run_once(1234, std::nullopt);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.stats, b.stats);
}

TEST(Determinism, SamePerturbationSeedReproducesCyclesAndStats) {
  const RunOutcome a = run_once(1234, 77u);
  const RunOutcome b = run_once(1234, 77u);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.stats, b.stats);
}

TEST(Determinism, DistinctMachineSeedsStillCompleteAllOps) {
  // Different seeds may (and usually do) diverge in timing; what must hold
  // is that every run completes the same amount of work.
  const RunOutcome a = run_once(1, std::nullopt);
  const RunOutcome b = run_once(2, 5u);
  EXPECT_EQ(a.stats.ops_completed, b.stats.ops_completed);
}

}  // namespace
}  // namespace lrsim
