// Copyright (c) 2026 lrsim authors. MIT license.
//
// Treiber stack: sequential LIFO semantics, concurrent element conservation,
// lease behaviour on the head line, backoff variant correctness.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ds/treiber_stack.hpp"
#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

TEST(TreiberStack, SequentialLifoOrder) {
  Machine m{small_config(1, false)};
  TreiberStack s{m};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (std::uint64_t v = 1; v <= 5; ++v) co_await s.push(ctx, v);
    for (std::uint64_t v = 5; v >= 1; --v) {
      std::optional<std::uint64_t> got = co_await s.pop(ctx);
      CO_ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, v);
    }
    std::optional<std::uint64_t> empty = co_await s.pop(ctx);
    EXPECT_FALSE(empty.has_value());
  });
  m.run();
}

TEST(TreiberStack, SnapshotMatchesPushes) {
  Machine m{small_config(1, false)};
  TreiberStack s{m};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (std::uint64_t v = 1; v <= 4; ++v) co_await s.push(ctx, v);
  });
  m.run();
  EXPECT_EQ(s.snapshot(), (std::vector<std::uint64_t>{4, 3, 2, 1}));
}

struct StackCase {
  const char* name;
  bool leases;
  bool backoff;
};

class TreiberConcurrent : public ::testing::TestWithParam<StackCase> {};

TEST_P(TreiberConcurrent, ElementsConservedUnderContention) {
  const auto& p = GetParam();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 40;
  Machine m{small_config(kThreads, p.leases)};
  TreiberStack s{m, {.use_lease = p.leases, .use_backoff = p.backoff}};
  std::vector<std::uint64_t> popped;

  testing::run_workers(m, kThreads, [&](Ctx& ctx, int t) -> Task<void> {
    // Each thread pushes a unique range, then pops half as many.
    for (int i = 0; i < kPerThread; ++i) {
      co_await s.push(ctx, static_cast<std::uint64_t>(t * 1000 + i + 1));
    }
    for (int i = 0; i < kPerThread / 2; ++i) {
      std::optional<std::uint64_t> v = co_await s.pop(ctx);
      CO_ASSERT_TRUE(v.has_value());  // at least our own pushes are there
      popped.push_back(*v);
    }
  });

  // Conservation: popped ∪ remaining == pushed, with no duplicates.
  std::vector<std::uint64_t> remaining = s.snapshot();
  std::multiset<std::uint64_t> seen(popped.begin(), popped.end());
  seen.insert(remaining.begin(), remaining.end());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  std::multiset<std::uint64_t> expected;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) expected.insert(static_cast<std::uint64_t>(t * 1000 + i + 1));
  }
  EXPECT_EQ(seen, expected);
}

INSTANTIATE_TEST_SUITE_P(Variants, TreiberConcurrent,
                         ::testing::Values(StackCase{"base", false, false},
                                           StackCase{"leased", true, false},
                                           StackCase{"backoff", false, true}),
                         [](const ::testing::TestParamInfo<StackCase>& info) {
                           return info.param.name;
                         });

TEST(TreiberStack, LeasesMakeContendedCasFailuresRare) {
  // The paper's Figure 1 point: with the head leased across read..CAS, the
  // CAS "is always successful, unless the lease expires".
  constexpr int kThreads = 16;
  constexpr int kPerThread = 30;
  // Prefill + mixed ops + think time: naked push/pop pairs degenerate into
  // local-cache hits and hide the contention (see integration_test.cpp).
  auto run = [&](bool leases) {
    Machine m{small_config(kThreads, leases)};
    TreiberStack s{m, {.use_lease = leases}};
    m.spawn(0, [&](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < 128; ++i) co_await s.push(ctx, 5);
    });
    m.run();
    testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < kPerThread; ++i) {
        if (ctx.rng().next_bool(0.5)) {
          co_await s.push(ctx, 1);
        } else {
          co_await s.pop(ctx);
        }
        const Cycle think = ctx.rng().next_below(40);
        if (think > 0) co_await ctx.work(think);
      }
    });
    const Stats st = m.total_stats();
    return static_cast<double>(st.cas_failures) / static_cast<double>(st.cas_attempts);
  };
  const double base_failure_rate = run(false);
  const double lease_failure_rate = run(true);
  EXPECT_GT(base_failure_rate, 0.10) << "baseline should be contended";
  EXPECT_LT(lease_failure_rate, 0.02);
}

TEST(TreiberStack, LeaseIsReleasedVoluntarilyOnCommonPath) {
  Machine m{small_config(4, true)};
  TreiberStack s{m, {.use_lease = true}};
  testing::run_workers(m, 4, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 20; ++i) {
      co_await s.push(ctx, 7);
      co_await s.pop(ctx);
    }
  });
  const Stats st = m.total_stats();
  EXPECT_GT(st.releases_voluntary, 0u);
  // Short read-CAS windows should essentially never expire.
  EXPECT_EQ(st.releases_involuntary, 0u);
}

TEST(TreiberStack, PopOnEmptyIsCleanWithLeases) {
  Machine m{small_config(2, true)};
  TreiberStack s{m, {.use_lease = true}};
  testing::run_workers(m, 2, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      std::optional<std::uint64_t> v = co_await s.pop(ctx);
      EXPECT_FALSE(v.has_value());
    }
  });
  // Empty-pop path must not leak leases.
  EXPECT_EQ(m.controller(0).lease_table().size(), 0);
  EXPECT_EQ(m.controller(1).lease_table().size(), 0);
}

}  // namespace
}  // namespace lrsim
