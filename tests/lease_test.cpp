// Copyright (c) 2026 lrsim authors. MIT license.
//
// Single-location Lease/Release semantics (Section 3 / Algorithm 1) and the
// paper's stated properties (Propositions 1-2).
#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

TEST(Lease, LeaseBringsLineExclusive) {
  Machine m{small_config(1, true)};
  Addr a = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(a, 1000);
    EXPECT_EQ(ctx.controller().line_state(line_of(a)), LineState::M);
    EXPECT_TRUE(ctx.controller().lease_table().has(line_of(a)));
    co_await ctx.release(a);
    EXPECT_FALSE(ctx.controller().lease_table().has(line_of(a)));
  });
  m.run();
  EXPECT_EQ(m.total_stats().leases_taken, 1u);
  EXPECT_EQ(m.total_stats().releases_voluntary, 1u);
}

TEST(Lease, LeaseOnOwnedLineIsAnL1Hit) {
  Machine m{small_config(1, true)};
  Addr a = m.heap().alloc_line();
  Cycle lease_cost = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.store(a, 1);  // line now M
    const Cycle t0 = ctx.now();
    co_await ctx.lease(a, 1000);
    lease_cost = ctx.now() - t0;
    co_await ctx.release(a);
  });
  m.run();
  EXPECT_EQ(lease_cost, 1u);  // just the L1 access
}

TEST(Lease, ReleaseReturnsVoluntaryFlag) {
  Machine m{small_config(1, true)};
  Addr a = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(a, 500);
    const bool vol = co_await ctx.release(a);
    EXPECT_TRUE(vol);

    co_await ctx.lease(a, 500);
    co_await ctx.work(2000);  // lease expires involuntarily
    const bool vol2 = co_await ctx.release(a);
    EXPECT_FALSE(vol2);

    // Release on a never-leased line: involuntary (no entry).
    const bool vol3 = co_await ctx.release(a);
    EXPECT_FALSE(vol3);
  });
  m.run();
  EXPECT_EQ(m.total_stats().releases_voluntary, 1u);
  EXPECT_EQ(m.total_stats().releases_involuntary, 1u);
}

TEST(Lease, DurationIsClampedToMaxLeaseTime) {
  MachineConfig cfg = small_config(2, true);
  cfg.max_lease_time = 1000;
  Machine m{cfg};
  Addr a = m.heap().alloc_line();
  Cycle blocked_store_done = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(a, 1'000'000);  // asks far beyond the bound
    co_await ctx.work(100'000);        // never releases in time
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(100);
    co_await ctx.store(a, 1);
    blocked_store_done = ctx.now();
  });
  m.run();
  // The store waited for expiry at ~ lease_grant + 1000, not 1M cycles.
  EXPECT_LT(blocked_store_done, 2500u);
  EXPECT_EQ(m.total_stats().releases_involuntary, 1u);
}

TEST(Lease, NoExtensionOnReLease) {
  MachineConfig cfg = small_config(2, true);
  cfg.max_lease_time = 1000;
  Machine m{cfg};
  Addr a = m.heap().alloc_line();
  Cycle blocked_store_done = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(a, 1000);
    for (int i = 0; i < 50; ++i) {
      co_await ctx.work(100);
      co_await ctx.lease(a, 1000);  // must NOT refresh the countdown
    }
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(100);
    co_await ctx.store(a, 1);
    blocked_store_done = ctx.now();
  });
  m.run();
  // If re-leasing extended the lease, the store would wait ~5000 cycles.
  EXPECT_LT(blocked_store_done, 2500u);
  // Re-leases while the lease is live are no-ops; only after the expiry do
  // fresh leases get created (one per ~1000-cycle window at most).
  EXPECT_GE(m.total_stats().releases_involuntary, 1u);
  EXPECT_LE(m.total_stats().leases_taken, 10u);
}

TEST(Lease, FifoEvictionAtMaxNumLeases) {
  MachineConfig cfg = small_config(1, true);
  cfg.max_num_leases = 2;
  Machine m{cfg};
  Addr a = m.heap().alloc_line();
  Addr b = m.heap().alloc_line();
  Addr c = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(a, 10000);
    co_await ctx.lease(b, 10000);
    EXPECT_EQ(ctx.controller().lease_table().size(), 2);
    co_await ctx.lease(c, 10000);  // evicts the oldest (a)
    EXPECT_EQ(ctx.controller().lease_table().size(), 2);
    EXPECT_FALSE(ctx.controller().lease_table().has(line_of(a)));
    EXPECT_TRUE(ctx.controller().lease_table().has(line_of(b)));
    EXPECT_TRUE(ctx.controller().lease_table().has(line_of(c)));
    co_await ctx.release_all();
  });
  m.run();
  EXPECT_EQ(m.total_stats().releases_evicted, 1u);
}

TEST(Lease, QueuedProbeServicedImmediatelyOnVoluntaryRelease) {
  Machine m{small_config(2, true)};
  Addr a = m.heap().alloc_line();
  Cycle release_time = 0, store_done = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(a, 10000);
    co_await ctx.work(3000);
    co_await ctx.release(a);
    release_time = ctx.now();
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(100);
    co_await ctx.store(a, 1);
    store_done = ctx.now();
  });
  m.run();
  EXPECT_EQ(m.total_stats().probes_queued, 1u);
  // After the release the probe completes within probe-action + data-forward
  // time (1 + 15 net), not another round trip.
  EXPECT_GE(store_done, release_time);
  EXPECT_LE(store_done - release_time, 20u);
  EXPECT_GT(m.total_stats().probe_queued_cycles, 2000u);
}

TEST(Lease, Proposition2DelayBound) {
  // A coherence request is delayed by at most MAX_LEASE_TIME beyond the
  // protocol's own latency, even against a pathological re-leaser.
  MachineConfig cfg = small_config(2, true);
  cfg.max_lease_time = 2000;
  Machine m{cfg};
  Addr a = m.heap().alloc_line();
  Cycle store_latency = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    // Lease and never release; re-lease after each expiry, forever trying
    // to monopolize the line.
    for (int i = 0; i < 20; ++i) {
      co_await ctx.lease(a, 100'000);
      co_await ctx.work(2500);
    }
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(500);
    const Cycle t0 = ctx.now();
    co_await ctx.store(a, 1);
    store_latency = ctx.now() - t0;
  });
  m.run();
  // Uncontended M-transfer costs ~50 cycles; the bound is that plus
  // MAX_LEASE_TIME.
  EXPECT_LE(store_latency, 2000u + 100u);
}

TEST(Lease, Proposition1OneProbeQueuedManyWaitAtDirectory) {
  // Five cores knock on a leased line; only the transaction at the head of
  // the per-line FIFO reaches the owning core, the rest wait at the
  // directory (Proposition 1).
  constexpr int kCores = 6;
  Machine m{small_config(kCores, true)};
  Addr a = m.heap().alloc_line();
  bool checked = false;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(a, 5000);
    co_await ctx.work(3000);
    // While we hold the lease: exactly one probe is parked here; the other
    // requests sit in the directory queue for the line.
    EXPECT_EQ(ctx.stats().probes_queued, 1u);
    EXPECT_GE(m.directory().queue_depth(line_of(a)), static_cast<std::size_t>(kCores - 2));
    checked = true;
    co_await ctx.release(a);
  });
  for (int c = 1; c < kCores; ++c) {
    m.spawn(c, [&](Ctx& ctx) -> Task<void> {
      co_await ctx.work(100);
      co_await ctx.store(a, static_cast<std::uint64_t>(ctx.core()));
    });
  }
  m.run();
  EXPECT_TRUE(checked);
}

TEST(Lease, DisabledMachineMakesLeaseReleaseFree) {
  Machine m{small_config(2, false)};
  Addr a = m.heap().alloc_line();
  Cycle lease_cost = 0, store_done = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    const Cycle t0 = ctx.now();
    co_await ctx.lease(a, 10000);
    lease_cost = ctx.now() - t0;
    const bool vol = co_await ctx.release(a);
    EXPECT_FALSE(vol);
    co_await ctx.work(5000);
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(100);
    co_await ctx.store(a, 1);  // must not be delayed by the "lease"
    store_done = ctx.now();
  });
  m.run();
  EXPECT_EQ(lease_cost, 0u);
  EXPECT_LT(store_done, 400u);
  EXPECT_EQ(m.total_stats().leases_taken, 0u);
}

TEST(Lease, PriorityModeRegularRequestBreaksLease) {
  MachineConfig cfg = small_config(3, true);
  cfg.lease_priority_mode = true;
  Machine m{cfg};
  Addr a = m.heap().alloc_line();
  Cycle store_done = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(a, 10000);
    co_await ctx.work(8000);
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(100);
    co_await ctx.store(a, 1);  // regular request: breaks the lease
    store_done = ctx.now();
  });
  m.run();
  EXPECT_LT(store_done, 500u);  // did not wait for expiry
  EXPECT_EQ(m.total_stats().releases_broken, 1u);
  EXPECT_EQ(m.total_stats().probes_queued, 0u);
}

TEST(Lease, PriorityModeLeaseRequestStillQueues) {
  MachineConfig cfg = small_config(2, true);
  cfg.lease_priority_mode = true;
  Machine m{cfg};
  Addr a = m.heap().alloc_line();
  Cycle lease2_done = 0, release_time = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(a, 10000);
    co_await ctx.work(2000);
    co_await ctx.release(a);
    release_time = ctx.now();
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(100);
    co_await ctx.lease(a, 1000);  // lease-tagged request: queues politely
    lease2_done = ctx.now();
    co_await ctx.release(a);
  });
  m.run();
  EXPECT_GE(lease2_done, release_time);
  EXPECT_EQ(m.total_stats().probes_queued, 1u);
  EXPECT_EQ(m.total_stats().releases_broken, 0u);
}

TEST(Lease, CheapSnapshotIdiom) {
  // Section 5: lease lines, read them, release; all releases voluntary =>
  // the reads form a consistent snapshot.
  MachineConfig cfg = small_config(2, true);
  cfg.max_num_leases = 4;
  Machine m{cfg};
  Addr x = m.heap().alloc_line();
  Addr y = m.heap().alloc_line();
  m.memory().write(x, 1);
  m.memory().write(y, 1);
  bool snapshot_ok = false;
  std::uint64_t sx = 0, sy = 0;

  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    // Writer keeps x and y equal, updating both under... no lock: the
    // snapshot must only report a consistent pair.
    for (int i = 2; i < 30; ++i) {
      co_await ctx.store(x, static_cast<std::uint64_t>(i));
      co_await ctx.store(y, static_cast<std::uint64_t>(i));
      co_await ctx.work(50);
    }
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(300);
    while (true) {
      co_await ctx.lease(x, 2000);
      co_await ctx.lease(y, 2000);
      const std::uint64_t vx = co_await ctx.load(x);
      const std::uint64_t vy = co_await ctx.load(y);
      const bool vol_x = co_await ctx.release(x);
      const bool vol_y = co_await ctx.release(y);
      if (vol_x && vol_y) {
        sx = vx;
        sy = vy;
        snapshot_ok = true;
        co_return;
      }
    }
  });
  m.run(50'000'000);
  ASSERT_TRUE(m.all_done());
  ASSERT_TRUE(snapshot_ok);
  // x is written before y, and the snapshot holds both lines: the pair can
  // differ by at most the in-flight write.
  EXPECT_TRUE(sx == sy || sx == sy + 1) << "sx=" << sx << " sy=" << sy;
}

TEST(Lease, SetFullOfLeasesForcesRelease) {
  // Pin a whole L1 set with leases, then install another line in that set:
  // the controller must force-release a lease rather than wedge.
  MachineConfig cfg = small_config(1, true);
  cfg.max_num_leases = 8;
  cfg.l1_ways = 4;
  Machine m{cfg};
  const int sets = cfg.l1_sets;
  std::vector<Addr> same_set;
  for (int i = 0; i < 5; ++i) same_set.push_back(line_base(static_cast<LineId>(3000 + i * sets)));
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (int i = 0; i < 4; ++i) co_await ctx.lease(same_set[static_cast<std::size_t>(i)], 50'000);
    EXPECT_EQ(ctx.controller().lease_table().size(), 4);
    co_await ctx.store(same_set[4], 1);  // needs a victim in the pinned set
    EXPECT_LT(ctx.controller().lease_table().size(), 4);
    co_await ctx.release_all();
  });
  m.run(10'000'000);
  ASSERT_TRUE(m.all_done());
  EXPECT_GE(m.total_stats().releases_evicted, 1u);
}

TEST(Lease, LeasedLineSurvivesCachePressure) {
  // Heavy traffic in the same set must not evict a leased line.
  MachineConfig cfg = small_config(1, true);
  Machine m{cfg};
  const int sets = cfg.l1_sets;
  Addr leased = line_base(4000);
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(leased, 100'000);
    for (int i = 1; i <= 12; ++i) {
      co_await ctx.store(line_base(static_cast<LineId>(4000 + i * sets)), 1);
    }
    EXPECT_EQ(ctx.controller().line_state(line_of(leased)), LineState::M);
    EXPECT_TRUE(ctx.controller().lease_table().has(line_of(leased)));
    co_await ctx.release(leased);
  });
  m.run();
  EXPECT_EQ(m.total_stats().releases_evicted, 0u);
}

// Parameterized: the probe wait matches the configured MAX_LEASE_TIME.
class LeaseExpirySweep : public ::testing::TestWithParam<Cycle> {};

TEST_P(LeaseExpirySweep, InvoluntaryReleaseAtConfiguredBound) {
  MachineConfig cfg = small_config(2, true);
  cfg.max_lease_time = GetParam();
  Machine m{cfg};
  Addr a = m.heap().alloc_line();
  Cycle store_done = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(a, UINT32_MAX);
    co_await ctx.work(GetParam() * 10);
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(50);
    co_await ctx.store(a, 1);
    store_done = ctx.now();
  });
  m.run();
  // Grant happens within ~150 cycles of start; expiry = grant + bound.
  EXPECT_GE(store_done, GetParam());
  EXPECT_LE(store_done, GetParam() + 400);
}

INSTANTIATE_TEST_SUITE_P(Bounds, LeaseExpirySweep,
                         ::testing::Values(200, 1000, 5000, 20000));

}  // namespace
}  // namespace lrsim
