// Copyright (c) 2026 lrsim authors. MIT license.
//
// Source lint guarding the GCC 12 coroutine miscompilation documented in
// runtime/task.hpp: `co_await` of a prvalue Task directly inside an
// if/while/for *condition* silently corrupts the enclosing coroutine frame.
//
// Leaf awaitables (Ctx::load/store/cas/...) are trivially destructible and
// safe in conditions, so calls through `ctx.` are allowed; everything else
// must be hoisted into a named variable first.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <vector>

#ifndef LRSIM_SOURCE_DIR
#define LRSIM_SOURCE_DIR "."
#endif

namespace {

namespace fs = std::filesystem;

std::vector<fs::path> source_files() {
  std::vector<fs::path> out;
  for (const char* root : {"src", "examples", "bench", "tests"}) {
    const fs::path dir = fs::path(LRSIM_SOURCE_DIR) / root;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".cpp" || ext == ".hpp") out.push_back(entry.path());
    }
  }
  return out;
}

TEST(StyleLint, NoTaskCoAwaitInConditions) {
  // Flags `if (co_await X` / `while (co_await X` / `for (...; co_await X`
  // unless X is a ctx.* leaf awaitable or an explicit std::move of an
  // lvalue task (both verified safe in tests/coherence of task.hpp).
  const std::regex bad(R"((if|while)\s*\(\s*!?\s*\(?\s*co_await\s+(?!ctx\.|c\.|std::move))");
  std::vector<std::string> violations;
  const auto files = source_files();
  ASSERT_FALSE(files.empty()) << "lint found no sources — check LRSIM_SOURCE_DIR";
  for (const auto& path : files) {
    std::ifstream f(path);
    std::string line;
    int lineno = 0;
    while (std::getline(f, line)) {
      ++lineno;
      const auto first = line.find_first_not_of(" \t");
      if (first != std::string::npos && line.compare(first, 2, "//") == 0) continue;
      if (std::regex_search(line, bad)) {
        std::ostringstream os;
        os << path.string() << ":" << lineno << ": " << line;
        violations.push_back(os.str());
      }
    }
  }
  EXPECT_TRUE(violations.empty())
      << "co_await of a Task inside a condition is miscompiled by GCC 12; hoist "
         "into a named variable (see runtime/task.hpp):\n"
      << [&] {
           std::ostringstream os;
           for (const auto& v : violations) os << "  " << v << "\n";
           return os.str();
         }();
}

}  // namespace
