// Copyright (c) 2026 lrsim authors. MIT license.
//
// Michael–Scott queue: FIFO semantics, per-producer order preservation,
// element conservation across all three lease modes, tail-helping.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ds/ms_queue.hpp"
#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

TEST(MsQueue, SequentialFifoOrder) {
  Machine m{small_config(1, false)};
  MsQueue q{m};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    std::optional<std::uint64_t> empty = co_await q.dequeue(ctx);
    EXPECT_FALSE(empty.has_value());
    for (std::uint64_t v = 1; v <= 6; ++v) co_await q.enqueue(ctx, v);
    for (std::uint64_t v = 1; v <= 6; ++v) {
      std::optional<std::uint64_t> got = co_await q.dequeue(ctx);
      CO_ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, v);
    }
    std::optional<std::uint64_t> empty2 = co_await q.dequeue(ctx);
    EXPECT_FALSE(empty2.has_value());
  });
  m.run();
}

TEST(MsQueue, SnapshotIsFrontToBack) {
  Machine m{small_config(1, false)};
  MsQueue q{m};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (std::uint64_t v = 10; v <= 13; ++v) co_await q.enqueue(ctx, v);
    co_await q.dequeue(ctx);
  });
  m.run();
  EXPECT_EQ(q.snapshot(), (std::vector<std::uint64_t>{11, 12, 13}));
}

class MsQueueModes : public ::testing::TestWithParam<QueueLeaseMode> {};

TEST_P(MsQueueModes, ConservationAndPerProducerFifo) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 40;
  Machine m{small_config(kProducers + kConsumers, true)};
  MsQueue q{m, {.lease_mode = GetParam()}};
  std::vector<std::uint64_t> consumed;

  for (int p = 0; p < kProducers; ++p) {
    m.spawn(p, [&, p](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kPerProducer; ++i) {
        co_await q.enqueue(ctx, static_cast<std::uint64_t>((p + 1) * 1000 + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    m.spawn(kProducers + c, [&](Ctx& ctx) -> Task<void> {
      int got = 0;
      while (got < kPerProducer) {  // each consumer takes its share
        std::optional<std::uint64_t> v = co_await q.dequeue(ctx);
        if (v.has_value()) {
          consumed.push_back(*v);
          ++got;
        } else {
          co_await ctx.work(200);
        }
      }
    });
  }
  m.run(500'000'000);
  ASSERT_TRUE(m.all_done());

  // Conservation: every value exactly once, queue empty.
  EXPECT_EQ(consumed.size(), static_cast<std::size_t>(kProducers) * kPerProducer);
  std::set<std::uint64_t> unique(consumed.begin(), consumed.end());
  EXPECT_EQ(unique.size(), consumed.size());
  EXPECT_TRUE(q.snapshot().empty());

  // FIFO per producer: within one producer's values, consumption order
  // respects enqueue order. (Global FIFO cannot be checked from consumption
  // order alone with concurrent consumers.)
  std::map<std::uint64_t, int> last_index;
  for (std::size_t i = 0; i < consumed.size(); ++i) {
    const std::uint64_t producer = consumed[i] / 1000;
    const int idx = static_cast<int>(consumed[i] % 1000);
    auto it = last_index.find(producer);
    if (it != last_index.end()) {
      EXPECT_GT(idx, it->second) << "producer " << producer;
    }
    last_index[producer] = idx;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, MsQueueModes,
                         ::testing::Values(QueueLeaseMode::kNone, QueueLeaseMode::kSingle,
                                           QueueLeaseMode::kMulti, QueueLeaseMode::kNextPtr),
                         [](const ::testing::TestParamInfo<QueueLeaseMode>& info) {
                           switch (info.param) {
                             case QueueLeaseMode::kNone: return "base";
                             case QueueLeaseMode::kSingle: return "single_lease";
                             case QueueLeaseMode::kMulti: return "multi_lease";
                             case QueueLeaseMode::kNextPtr: return "nextptr_lease";
                           }
                           return "unknown";
                         });

TEST(MsQueue, GlobalFifoWithSingleConsumer) {
  // One consumer sees a strict interleaving of producer streams; global
  // order must be consistent with real (simulated) time of the enqueue CAS.
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 25;
  Machine m{small_config(kProducers + 1, true)};
  MsQueue q{m, {.lease_mode = QueueLeaseMode::kSingle}};
  std::vector<std::uint64_t> consumed;
  for (int p = 0; p < kProducers; ++p) {
    m.spawn(p, [&, p](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kPerProducer; ++i) {
        co_await q.enqueue(ctx, static_cast<std::uint64_t>((p + 1) * 1000 + i));
        co_await ctx.work(ctx.rng().next_below(300));
      }
    });
  }
  m.spawn(kProducers, [&](Ctx& ctx) -> Task<void> {
    while (consumed.size() < kProducers * kPerProducer) {
      std::optional<std::uint64_t> v = co_await q.dequeue(ctx);
      if (v.has_value()) {
        consumed.push_back(*v);
      } else {
        co_await ctx.work(100);
      }
    }
  });
  m.run(500'000'000);
  ASSERT_TRUE(m.all_done());
  std::map<std::uint64_t, int> last_index;
  for (std::uint64_t v : consumed) {
    const std::uint64_t producer = v / 1000;
    const int idx = static_cast<int>(v % 1000);
    auto it = last_index.find(producer);
    if (it != last_index.end()) {
      EXPECT_GT(idx, it->second);
    }
    last_index[producer] = idx;
  }
}

TEST(MsQueue, LeaseReducesCasFailures) {
  constexpr int kThreads = 16;
  constexpr int kReps = 25;
  auto failure_rate = [&](QueueLeaseMode mode) {
    Machine m{small_config(kThreads, true)};
    MsQueue q{m, {.lease_mode = mode}};
    testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < kReps; ++i) {
        co_await q.enqueue(ctx, 1);
        co_await q.dequeue(ctx);
      }
    });
    const Stats s = m.total_stats();
    return static_cast<double>(s.cas_failures) / static_cast<double>(s.cas_attempts);
  };
  EXPECT_LT(failure_rate(QueueLeaseMode::kSingle), failure_rate(QueueLeaseMode::kNone));
}

TEST(MsQueue, NoLeaseLeakAcrossOperations) {
  Machine m{small_config(4, true)};
  MsQueue q{m, {.lease_mode = QueueLeaseMode::kMulti}};
  testing::run_workers(m, 4, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 15; ++i) {
      co_await q.enqueue(ctx, static_cast<std::uint64_t>(i));
      co_await q.dequeue(ctx);
    }
  });
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(m.controller(c).lease_table().size(), 0) << "core " << c;
  }
}

}  // namespace
}  // namespace lrsim
