// Copyright (c) 2026 lrsim authors. MIT license.
//
// Directory-based MSI protocol tests (no leases): latency model, state
// transitions, message accounting, per-line FIFO service, evictions.
//
// Latency constants assume the Table 1 defaults: L1 hit 1, L2 tag 3,
// L2 data 8, DRAM 100, network one-way 15.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

TEST(Coherence, LoadHitCostsOneCycle) {
  Machine m{small_config(1, false)};
  Addr a = m.heap().alloc_line();
  Cycle first = 0, second = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.load(a);  // cold miss
    const Cycle t0 = ctx.now();
    co_await ctx.load(a);  // hit
    first = ctx.now() - t0;
    co_await ctx.load(a);
    second = ctx.now() - t0 - first;
  });
  m.run();
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(second, 1u);
}

TEST(Coherence, ColdMissPaysDramOnceThenL2) {
  Machine m{small_config(1, false)};
  Addr a = m.heap().alloc_line();
  Addr b = m.heap().alloc_line();
  m.memory().write(a, 1);  // functional init does not warm the L2
  Cycle cold = 0, warm = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    const Cycle t0 = ctx.now();
    co_await ctx.load(a);
    cold = ctx.now() - t0;
    // Evicting and re-requesting needs another core; instead measure a
    // second *distinct* line to check the cold path is stable.
    const Cycle t1 = ctx.now();
    co_await ctx.load(b);
    warm = ctx.now() - t1;
  });
  m.run();
  // 1 (L1) + 15 (net) + 3 (tag) + 100 (DRAM) + 8 (L2 data) + 15 (net).
  EXPECT_EQ(cold, 142u);
  EXPECT_EQ(warm, 142u);  // also a first touch
  EXPECT_EQ(m.total_stats().dram_accesses, 2u);
}

TEST(Coherence, SecondSharerMissSkipsDram) {
  Machine m{small_config(2, false)};
  Addr a = m.heap().alloc_line();
  Cycle second_load = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> { co_await ctx.load(a); });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(500);  // let core 0 touch the line first
    const Cycle t0 = ctx.now();
    co_await ctx.load(a);
    second_load = ctx.now() - t0;
  });
  m.run();
  // 1 + 15 + 3 + 8 + 15 = 42 (Shared at the directory, L2 hit).
  EXPECT_EQ(second_load, 42u);
  EXPECT_EQ(m.total_stats().dram_accesses, 1u);
}

TEST(Coherence, StoreToOtherCoresModifiedLineForwardsCacheToCache) {
  Machine m{small_config(2, false)};
  Addr a = m.heap().alloc_line();
  Cycle xfer = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> { co_await ctx.store(a, 1); });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(500);
    const Cycle t0 = ctx.now();
    co_await ctx.store(a, 2);
    xfer = ctx.now() - t0;
  });
  m.run();
  // 1 + 15 + 3 + 15 (probe) + 1 (action) + 15 (data) = 50.
  EXPECT_EQ(xfer, 50u);
  EXPECT_EQ(m.memory().read(a), 2u);
  // Core 0's copy was invalidated.
  EXPECT_EQ(m.controller(0).line_state(line_of(a)), LineState::I);
  EXPECT_EQ(m.controller(1).line_state(line_of(a)), LineState::M);
  EXPECT_EQ(m.directory().owner_of(line_of(a)), 1);
}

TEST(Coherence, LoadFromModifiedLineDowngradesOwner) {
  Machine m{small_config(2, false)};
  Addr a = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> { co_await ctx.store(a, 7); });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(500);
    const std::uint64_t v = co_await ctx.load(a);
    EXPECT_EQ(v, 7u);
  });
  m.run();
  EXPECT_EQ(m.controller(0).line_state(line_of(a)), LineState::S);
  EXPECT_EQ(m.controller(1).line_state(line_of(a)), LineState::S);
  EXPECT_EQ(m.directory().line_state(line_of(a)), Directory::LineSt::kShared);
  EXPECT_TRUE(m.directory().has_sharer(line_of(a), 0));
  EXPECT_TRUE(m.directory().has_sharer(line_of(a), 1));
  // Downgrade writes the dirty line back.
  EXPECT_EQ(m.total_stats().msgs_wb, 1u);
  EXPECT_EQ(m.total_stats().msgs_downgrade, 1u);
}

TEST(Coherence, UpgradeInvalidatesAllSharers) {
  constexpr int kCores = 4;
  Machine m{small_config(kCores, false)};
  Addr a = m.heap().alloc_line();
  for (int c = 0; c < kCores; ++c) {
    m.spawn(c, [&, c](Ctx& ctx) -> Task<void> {
      co_await ctx.load(a);                      // everyone shares
      co_await ctx.work(1000 + 1000 * ctx.core());  // staggered
      if (c == 0) co_await ctx.store(a, 42);     // core 0 upgrades at t~1000
    });
  }
  m.run();
  EXPECT_EQ(m.memory().read(a), 42u);
  for (int c = 1; c < kCores; ++c) {
    EXPECT_EQ(m.controller(c).line_state(line_of(a)), LineState::I) << "core " << c;
  }
  EXPECT_EQ(m.controller(0).line_state(line_of(a)), LineState::M);
  // Three sharers were invalidated (each: inv + ack).
  EXPECT_EQ(m.total_stats().msgs_inv, 3u);
  EXPECT_EQ(m.total_stats().msgs_ack, 3u + 1u);  // 3 inv acks + 1 upgrade grant
}

TEST(Coherence, MessageCountsForProducerConsumerPingPong) {
  Machine m{small_config(2, false)};
  Addr a = m.heap().alloc_line();
  // Exactly one store each, perfectly serialized.
  m.spawn(0, [&](Ctx& ctx) -> Task<void> { co_await ctx.store(a, 1); });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(1000);
    co_await ctx.store(a, 2);
  });
  m.run();
  Stats s = m.total_stats();
  // Store 1 (Uncached): GetX + Data. Store 2 (Modified elsewhere):
  // GetX + Inv + Data + Ack.
  EXPECT_EQ(s.msgs_getx, 2u);
  EXPECT_EQ(s.msgs_inv, 1u);
  EXPECT_EQ(s.msgs_data, 2u);
  EXPECT_EQ(s.msgs_ack, 1u);
  EXPECT_EQ(s.msgs_gets, 0u);
  EXPECT_EQ(s.total_messages(), 6u);
}

TEST(Coherence, PerLineFifoServiceOrder) {
  // Four cores store to the same line, issued in staggered order; with
  // per-line FIFO queues at the directory they must complete in issue order.
  constexpr int kCores = 4;
  Machine m{small_config(kCores, false)};
  Addr a = m.heap().alloc_line();
  std::vector<int> completion_order;
  for (int c = 0; c < kCores; ++c) {
    m.spawn(c, [&, c](Ctx& ctx) -> Task<void> {
      co_await ctx.work(static_cast<Cycle>(1 + c));  // stagger issue by 1 cycle
      co_await ctx.store(a, static_cast<std::uint64_t>(c));
      completion_order.push_back(c);
    });
  }
  m.run();
  EXPECT_EQ(completion_order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(m.memory().read(a), 3u);
}

TEST(Coherence, CasSemantics) {
  Machine m{small_config(1, false)};
  Addr a = m.heap().alloc_line();
  m.memory().write(a, 10);
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    const bool ok1 = co_await ctx.cas(a, 10, 20);
    EXPECT_TRUE(ok1);
    const bool ok2 = co_await ctx.cas(a, 10, 30);
    EXPECT_FALSE(ok2);
    const std::uint64_t old = co_await ctx.cas_val(a, 20, 40);
    EXPECT_EQ(old, 20u);
  });
  m.run();
  EXPECT_EQ(m.memory().read(a), 40u);
  EXPECT_EQ(m.total_stats().cas_attempts, 3u);
  EXPECT_EQ(m.total_stats().cas_failures, 1u);
}

TEST(Coherence, CasContentionLosesExactlyOnce) {
  // Two cores CAS 0->v simultaneously: exactly one must win.
  Machine m{small_config(2, false)};
  Addr a = m.heap().alloc_line();
  int wins = 0;
  for (int c = 0; c < 2; ++c) {
    m.spawn(c, [&, c](Ctx& ctx) -> Task<void> {
      const bool ok = co_await ctx.cas(a, 0, static_cast<std::uint64_t>(c + 1));
      if (ok) ++wins;
    });
  }
  m.run();
  EXPECT_EQ(wins, 1);
  EXPECT_NE(m.memory().read(a), 0u);
}

TEST(Coherence, FaaAndXchgAreAtomic) {
  constexpr int kCores = 8;
  constexpr int kReps = 25;
  Machine m{small_config(kCores, false)};
  Addr a = m.heap().alloc_line();
  testing::run_workers(m, kCores, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < kReps; ++i) co_await ctx.faa(a, 1);
  });
  EXPECT_EQ(m.memory().read(a), static_cast<std::uint64_t>(kCores) * kReps);
}

TEST(Coherence, CapacityEvictionWritesBackModified) {
  // 4-way sets: storing to 5 lines in the same set evicts the LRU M line.
  MachineConfig cfg = small_config(1, false);
  Machine m{cfg};
  const int sets = cfg.l1_sets;
  std::vector<Addr> lines;
  for (int i = 0; i < 5; ++i) lines.push_back(line_base(static_cast<LineId>(1000 + i * sets)));
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (Addr a : lines) co_await ctx.store(a, 9);
    // First line was evicted; touching it again re-misses.
    co_await ctx.load(lines[0]);
  });
  m.run();
  Stats s = m.total_stats();
  EXPECT_GE(s.l1_evictions, 1u);
  EXPECT_GE(s.msgs_wb, 1u);
  EXPECT_EQ(s.l1_misses, 6u);  // 5 stores + 1 reload
}

TEST(Coherence, SharedEvictionEagerlyClearsSharerBit) {
  // An S-state capacity eviction notifies the directory immediately
  // (EvictKind::kShared), so the sharer bitmask stays exact: the evicting
  // core's bit is clear before any later writer is serviced, and no
  // invalidation probe is ever aimed at a core without a copy (the
  // invariant checker asserts exactly that at probe-send time).
  MachineConfig cfg = small_config(2, false);
  Machine m{cfg};
  m.enable_invariants();
  const int sets = cfg.l1_sets;
  Addr a = line_base(2000);
  std::vector<Addr> fillers;
  for (int i = 1; i <= 4; ++i) fillers.push_back(line_base(static_cast<LineId>(2000 + i * sets)));
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.load(a);  // S copy, tracked
    EXPECT_TRUE(m.directory().has_sharer(line_of(a), 0));
    for (Addr f : fillers) co_await ctx.load(f);  // capacity-evict `a`
    EXPECT_FALSE(m.directory().has_sharer(line_of(a), 0));
    co_await ctx.work(2000);
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(1000);
    co_await ctx.store(a, 5);  // serviced with an exact (empty) sharer mask
  });
  m.run(10'000'000);
  ASSERT_TRUE(m.all_done());
  EXPECT_EQ(m.memory().read(a), 5u);
  EXPECT_GT(m.invariants()->checks_run(), 0u);
}

TEST(Coherence, ValuesArePropagatedThroughOwnershipChain) {
  // A classic message-passing litmus: core 0 writes data then flag; core 1
  // spins on flag then reads data. In-order cores + MSI must never expose
  // the flag without the data.
  Machine m{small_config(2, false)};
  Addr data = m.heap().alloc_line();
  Addr flag = m.heap().alloc_line();
  std::uint64_t observed = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.store(data, 99);
    co_await ctx.store(flag, 1);
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    while (co_await ctx.load(flag) != 1) {
    }
    observed = co_await ctx.load(data);
  });
  m.run(10'000'000);
  ASSERT_TRUE(m.all_done());
  EXPECT_EQ(observed, 99u);
}

// Parameterized sweep: FAA counter conserves across core counts.
class CoherenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(CoherenceSweep, SharedCounterConservation) {
  const int cores = GetParam();
  Machine m{small_config(cores, false)};
  Addr a = m.heap().alloc_line();
  testing::run_workers(m, cores, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 20; ++i) {
      const std::uint64_t v = co_await ctx.faa(a, 1);
      (void)v;
    }
  });
  EXPECT_EQ(m.memory().read(a), static_cast<std::uint64_t>(cores) * 20);
}

INSTANTIATE_TEST_SUITE_P(Cores, CoherenceSweep, ::testing::Values(1, 2, 4, 8, 16, 32));

}  // namespace
}  // namespace lrsim
