// Copyright (c) 2026 lrsim authors. MIT license.
//
// Tests for the tracing facility and the two-lock Michael-Scott queue.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "ds/two_lock_queue.hpp"
#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(Tracer, RecordsLeaseLifecycleInOrder) {
  Machine m{small_config(2, true)};
  Addr a = m.heap().alloc_line();
  Tracer& tr = m.enable_tracing(256, line_of(a));
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.store(a, 1);
    co_await ctx.lease(a, 5000);
    co_await ctx.work(1000);
    co_await ctx.release(a);
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(500);
    co_await ctx.store(a, 2);  // parked behind the lease
  });
  m.run();
  const auto recs = tr.records();
  ASSERT_FALSE(recs.empty());
  // Timestamps are monotone and the key milestones appear in causal order.
  Cycle prev = 0;
  std::map<TraceEvent, Cycle> first_seen;
  for (const auto& r : recs) {
    EXPECT_GE(r.when, prev);
    prev = r.when;
    if (!first_seen.contains(r.event)) first_seen[r.event] = r.when;
    EXPECT_EQ(r.line, line_of(a));  // the filter held
  }
  ASSERT_TRUE(first_seen.contains(TraceEvent::kLease));
  ASSERT_TRUE(first_seen.contains(TraceEvent::kLeaseGrant));
  ASSERT_TRUE(first_seen.contains(TraceEvent::kProbePark));
  ASSERT_TRUE(first_seen.contains(TraceEvent::kRelease));
  EXPECT_LE(first_seen[TraceEvent::kLease], first_seen[TraceEvent::kLeaseGrant]);
  EXPECT_LT(first_seen[TraceEvent::kLeaseGrant], first_seen[TraceEvent::kProbePark]);
  EXPECT_LT(first_seen[TraceEvent::kProbePark], first_seen[TraceEvent::kRelease]);
}

TEST(Tracer, CapacityBoundsAndCountsDrops) {
  Machine m{small_config(1, false)};
  Addr a = m.heap().alloc_line();
  Tracer& tr = m.enable_tracing(8);
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (int i = 0; i < 50; ++i) co_await ctx.load(a);
  });
  m.run();
  EXPECT_LE(tr.size(), 8u);
  EXPECT_GT(tr.dropped(), 0u);
}

TEST(Tracer, DumpProducesReadableText) {
  Machine m{small_config(1, true)};
  Addr a = m.heap().alloc_line();
  Tracer& tr = m.enable_tracing(64);
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(a, 100);
    co_await ctx.release(a);
  });
  m.run();
  std::ostringstream os;
  tr.dump(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("lease"), std::string::npos);
  EXPECT_NE(text.find("release"), std::string::npos);
  EXPECT_NE(text.find("core 0"), std::string::npos);
}

TEST(Tracer, DisabledByDefaultCostsNothing) {
  Machine m{small_config(1, false)};
  EXPECT_EQ(m.tracer(), nullptr);
}

// ---------------------------------------------------------------------------
// TwoLockQueue
// ---------------------------------------------------------------------------

TEST(TwoLockQueue, SequentialFifo) {
  Machine m{small_config(1, false)};
  TwoLockQueue q{m};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    std::optional<std::uint64_t> empty = co_await q.dequeue(ctx);
    EXPECT_FALSE(empty.has_value());
    for (std::uint64_t v = 1; v <= 6; ++v) co_await q.enqueue(ctx, v);
    for (std::uint64_t v = 1; v <= 6; ++v) {
      std::optional<std::uint64_t> got = co_await q.dequeue(ctx);
      CO_ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, v);
    }
  });
  m.run();
  EXPECT_TRUE(q.snapshot().empty());
}

class TwoLockModes : public ::testing::TestWithParam<bool> {};

TEST_P(TwoLockModes, ConcurrentConservationAndPerProducerFifo) {
  const bool lease = GetParam();
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 30;
  Machine m{small_config(kProducers + kConsumers, lease)};
  TwoLockQueue q{m, {.use_lease = lease}};
  std::vector<std::uint64_t> consumed;
  for (int p = 0; p < kProducers; ++p) {
    m.spawn(p, [&, p](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kPerProducer; ++i) {
        co_await q.enqueue(ctx, static_cast<std::uint64_t>((p + 1) * 1000 + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    m.spawn(kProducers + c, [&](Ctx& ctx) -> Task<void> {
      int got = 0;
      while (got < kPerProducer) {
        std::optional<std::uint64_t> v = co_await q.dequeue(ctx);
        if (v.has_value()) {
          consumed.push_back(*v);
          ++got;
        } else {
          co_await ctx.work(150);
        }
      }
    });
  }
  m.run(500'000'000);
  ASSERT_TRUE(m.all_done());
  EXPECT_EQ(consumed.size(), static_cast<std::size_t>(kProducers) * kPerProducer);
  std::map<std::uint64_t, int> last;
  for (std::uint64_t v : consumed) {
    const std::uint64_t producer = v / 1000;
    const int idx = static_cast<int>(v % 1000);
    auto it = last.find(producer);
    if (it != last.end()) {
      EXPECT_GT(idx, it->second);
    }
    last[producer] = idx;
  }
  EXPECT_TRUE(q.snapshot().empty());
}

INSTANTIATE_TEST_SUITE_P(Leases, TwoLockModes, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "leased" : "base";
                         });

TEST(TwoLockQueue, EnqueueDequeueDoNotSerializeEachOther) {
  // The dummy node decouples the two locks: with a non-empty queue, an
  // enqueuer and a dequeuer proceed concurrently. Run equal op counts of
  // each and check the makespan is far below the sum of both serialized.
  Machine m{small_config(2, false)};
  TwoLockQueue q{m};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (int i = 0; i < 50; ++i) co_await q.enqueue(ctx, 1);
  });
  m.run();
  const Cycle start = m.events().now();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (int i = 0; i < 50; ++i) co_await q.enqueue(ctx, 2);
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    for (int i = 0; i < 50; ++i) co_await q.dequeue(ctx);
  });
  m.run();
  const Cycle both = m.events().now() - start;
  // Each op is ~100+ cycles; 100 serialized ops would exceed 10k.
  EXPECT_LT(both, 9'000u);
}

}  // namespace
}  // namespace lrsim
