// Copyright (c) 2026 lrsim authors. MIT license.
//
// The bench harness runs sweep samples on a host thread pool (--jobs). Each
// sample is an independent deterministic simulation, so the *only* effect of
// parallelism may be wall-clock time: tables, CSV bytes, and every per-sample
// statistic must be identical to a serial run. These tests pin that down.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.hpp"

namespace lrsim::bench {
namespace {

Task<void> contend(Ctx& ctx, int t, int ops) {
  const Addr counter = 0;                                   // shared, contended
  const Addr local = 4096 + static_cast<Addr>(t) * 64;      // private line
  for (int i = 0; i < ops; ++i) {
    co_await ctx.faa(counter, 1);
    co_await ctx.store(local, static_cast<std::uint64_t>(i));
    co_await ctx.work(1 + ctx.rng().next_below(16));
  }
}

std::vector<Variant> make_variants() {
  Variant base;
  base.name = "base";
  base.make = [](Machine&, const BenchOptions& opt) {
    const int ops = opt.ops_per_thread;
    return [ops](Ctx& ctx, int t) { return contend(ctx, t, ops); };
  };
  Variant lease = base;
  lease.name = "lease";
  lease.configure = [](MachineConfig& cfg) { cfg.leases_enabled = true; };
  return {base, lease};
}

struct RunResult {
  std::string tables;  ///< Captured stdout minus the machine-local csv: line.
  std::string csv;     ///< CSV file bytes.
  std::vector<Sample> samples;
};

std::string strip_csv_path_line(const std::string& text) {
  std::istringstream in{text};
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("csv: ", 0) == 0) continue;  // names the per-run temp dir
    out << line << '\n';
  }
  return out.str();
}

RunResult run_sweep(int jobs, const std::string& tag) {
  BenchOptions opt;
  opt.threads = {2, 4};
  opt.ops_per_thread = 20;
  opt.jobs = jobs;
  opt.csv_dir = (std::filesystem::path(::testing::TempDir()) / ("harness_" + tag)).string();

  std::ostringstream captured;
  std::streambuf* old = std::cout.rdbuf(captured.rdbuf());
  RunResult r;
  try {
    r.samples = run_experiment("harness parallel test", "sweep", make_variants(), opt);
  } catch (...) {
    std::cout.rdbuf(old);
    throw;
  }
  std::cout.rdbuf(old);
  r.tables = strip_csv_path_line(captured.str());

  std::ifstream csv(opt.csv_dir + "/sweep.csv", std::ios::binary);
  std::ostringstream bytes;
  bytes << csv.rdbuf();
  r.csv = bytes.str();
  return r;
}

TEST(HarnessParallel, ParallelSweepIsByteIdenticalToSerial) {
  const RunResult serial = run_sweep(/*jobs=*/1, "serial");
  const RunResult parallel = run_sweep(/*jobs=*/4, "par4");

  EXPECT_FALSE(serial.csv.empty());
  EXPECT_EQ(serial.csv, parallel.csv);
  EXPECT_EQ(serial.tables, parallel.tables);

  ASSERT_EQ(serial.samples.size(), parallel.samples.size());
  for (std::size_t i = 0; i < serial.samples.size(); ++i) {
    EXPECT_EQ(serial.samples[i].variant, parallel.samples[i].variant) << i;
    EXPECT_EQ(serial.samples[i].threads, parallel.samples[i].threads) << i;
    EXPECT_EQ(serial.samples[i].ops, parallel.samples[i].ops) << i;
    EXPECT_EQ(serial.samples[i].cycles, parallel.samples[i].cycles) << i;
    EXPECT_EQ(serial.samples[i].stats, parallel.samples[i].stats) << i;
  }
}

TEST(HarnessParallel, SamplesComeBackInSweepOrder) {
  const RunResult r = run_sweep(/*jobs=*/3, "order");
  // Grid order: thread-count major, variant minor — the serial iteration
  // order, regardless of which host worker finished first.
  ASSERT_EQ(r.samples.size(), 4u);
  EXPECT_EQ(r.samples[0].threads, 2);
  EXPECT_EQ(r.samples[0].variant, "base");
  EXPECT_EQ(r.samples[1].threads, 2);
  EXPECT_EQ(r.samples[1].variant, "lease");
  EXPECT_EQ(r.samples[2].threads, 4);
  EXPECT_EQ(r.samples[2].variant, "base");
  EXPECT_EQ(r.samples[3].threads, 4);
  EXPECT_EQ(r.samples[3].variant, "lease");
}

TEST(HarnessParallel, SteadyStateSubtractionCoversAllCounters) {
  // A variant whose prefill runs real operations: every prefill-phase
  // counter (including the ones the old hand-written subtraction missed,
  // e.g. CAS attempts) must be stripped from the reported steady state.
  Variant v;
  v.name = "prefill";
  v.make = [](Machine& m, const BenchOptions& opt) {
    m.spawn(0, [](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < 8; ++i) {
        co_await ctx.cas(0, static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(i) + 1);
      }
    });
    m.run();
    const int ops = opt.ops_per_thread;
    return [ops](Ctx& ctx, int t) { return contend(ctx, t, ops); };
  };
  BenchOptions opt;
  opt.threads = {2};
  opt.ops_per_thread = 5;
  opt.csv_dir.clear();
  const Sample s = run_one(v, 2, opt);
  // contend() performs one FAA per op per thread and nothing else CAS-like;
  // an FAA is not a CAS, so steady-state CAS counters must be zero.
  EXPECT_EQ(s.stats.cas_attempts, 0u);
  EXPECT_EQ(s.stats.cas_failures, 0u);
}

}  // namespace
}  // namespace lrsim::bench
