// Copyright (c) 2026 lrsim authors. MIT license.
//
// 2D-mesh topology tests: geometry, latency model, home banking, and
// end-to-end behaviour of a mesh machine (correctness must be latency-
// independent; distance must show up in timing).
#include <gtest/gtest.h>

#include "coherence/topology.hpp"
#include "sim_test_util.hpp"

namespace lrsim {
namespace {

MachineConfig mesh_config(int cores, bool leases) {
  MachineConfig cfg = testing::small_config(cores, leases);
  cfg.mesh_topology = true;
  cfg.mesh_hop_latency = 2;
  cfg.mesh_router_latency = 1;
  return cfg;
}

TEST(Topology, GridSideIsCeilSqrt) {
  MachineConfig cfg;
  for (auto [cores, side] : std::vector<std::pair<int, int>>{{1, 1}, {2, 2}, {4, 2}, {5, 3},
                                                             {9, 3}, {16, 4}, {64, 8}}) {
    cfg.num_cores = cores;
    EXPECT_EQ(Topology{cfg}.side(), side) << cores << " cores";
  }
}

TEST(Topology, ManhattanHops) {
  MachineConfig cfg;
  cfg.num_cores = 16;  // 4x4
  Topology t{cfg};
  EXPECT_EQ(t.hops(0, 0), 0);
  EXPECT_EQ(t.hops(0, 1), 1);   // (0,0) -> (1,0)
  EXPECT_EQ(t.hops(0, 4), 1);   // (0,0) -> (0,1)
  EXPECT_EQ(t.hops(0, 5), 2);   // (0,0) -> (1,1)
  EXPECT_EQ(t.hops(0, 15), 6);  // (0,0) -> (3,3)
  EXPECT_EQ(t.hops(3, 12), 6);  // (3,0) -> (0,3)
}

TEST(Topology, FlatModeUsesConfiguredLatency) {
  MachineConfig cfg;
  cfg.num_cores = 16;
  cfg.net_latency = 15;
  cfg.mesh_topology = false;
  Topology t{cfg};
  EXPECT_EQ(t.latency(0, 15), 15u);
  EXPECT_EQ(t.latency(0, 0), 15u);
}

TEST(Topology, MeshLatencyScalesWithDistance) {
  MachineConfig cfg = mesh_config(16, false);
  Topology t{cfg};
  // router*(h+1) + hop*h with router=1, hop=2.
  EXPECT_EQ(t.latency(0, 0), 1u);    // local: one router traversal
  EXPECT_EQ(t.latency(0, 1), 4u);    // 1 hop: 2 routers + 1 link
  EXPECT_EQ(t.latency(0, 15), 19u);  // 6 hops: 7 routers + 6 links
}

TEST(Topology, HomeBankingCoversAllTiles) {
  MachineConfig cfg;
  cfg.num_cores = 8;
  Topology t{cfg};
  std::vector<int> hits(8, 0);
  for (LineId l = 0; l < 64; ++l) ++hits[static_cast<std::size_t>(t.home_of(l))];
  for (int c = 0; c < 8; ++c) EXPECT_EQ(hits[static_cast<std::size_t>(c)], 8) << "tile " << c;
}

TEST(Topology, NearbyTransferIsFasterThanFarTransfer) {
  // Core 0 owns a line in M; cores 1 (adjacent) and 15 (opposite corner)
  // each pull it. The far pull must take longer.
  auto transfer_time = [](CoreId reader) {
    MachineConfig cfg = mesh_config(16, false);
    Machine m{cfg};
    // Pick an address homed at tile 0 so the request leg is constant.
    Addr a = 0;
    for (Addr cand = 0x20000; cand < 0x40000; cand += kLineSize) {
      if (Topology{cfg}.home_of(line_of(cand)) == 0) {
        a = cand;
        break;
      }
    }
    Cycle t_done = 0;
    m.spawn(0, [&](Ctx& ctx) -> Task<void> { co_await ctx.store(a, 1); });
    m.spawn(reader, [&, a](Ctx& ctx) -> Task<void> {
      co_await ctx.work(500);
      const Cycle t0 = ctx.now();
      co_await ctx.load(a);
      t_done = ctx.now() - t0;
    });
    m.run();
    return t_done;
  };
  const Cycle near = transfer_time(1);
  const Cycle far = transfer_time(15);
  EXPECT_LT(near, far);
}

TEST(Topology, MeshMachineConservesCounter) {
  constexpr int kCores = 9;  // non-square-power grid (3x3)
  Machine m{mesh_config(kCores, true)};
  Addr a = m.heap().alloc_line();
  testing::run_workers(m, kCores, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 20; ++i) {
      co_await ctx.lease(a, 2000);
      const std::uint64_t v = co_await ctx.load(a);
      co_await ctx.store(a, v + 1);
      co_await ctx.release(a);
    }
  });
  EXPECT_EQ(m.memory().read(a), static_cast<std::uint64_t>(kCores) * 20);
}

TEST(Topology, MeshLeasesStillBoundDelay) {
  MachineConfig cfg = mesh_config(16, true);
  cfg.max_lease_time = 1000;
  Machine m{cfg};
  Addr a = m.heap().alloc_line();
  Cycle store_done = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(a, 100'000);
    co_await ctx.work(50'000);
  });
  m.spawn(15, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(100);
    co_await ctx.store(a, 1);
    store_done = ctx.now();
  });
  m.run();
  EXPECT_LT(store_done, 2000u);  // bounded by MAX_LEASE_TIME + transit
}

}  // namespace
}  // namespace lrsim
