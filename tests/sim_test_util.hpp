// Copyright (c) 2026 lrsim authors. MIT license.
//
// Shared helpers for the lrsim test suite.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "lrsim.hpp"

/// ASSERT_* macros expand to a bare `return;`, which does not compile inside
/// a coroutine. CO_ASSERT_TRUE is the coroutine-safe equivalent for
/// Task<void> test bodies: record the failure and co_return.
#define CO_ASSERT_TRUE(cond)                      \
  do {                                            \
    if (!(cond)) {                                \
      ADD_FAILURE() << "CO_ASSERT_TRUE(" #cond ")"; \
      co_return;                                  \
    }                                             \
  } while (0)

namespace lrsim::testing {

inline MachineConfig small_config(int cores, bool leases) {
  MachineConfig cfg;
  cfg.num_cores = cores;
  cfg.leases_enabled = leases;
  return cfg;
}

/// Spawns `threads` workers (worker(ctx, thread_index)) on cores 0..n-1 and
/// runs to completion under a watchdog. Fails the test on deadlock.
/// Returns the final cycle count.
inline Cycle run_workers(Machine& m, int threads,
                         std::function<Task<void>(Ctx&, int)> worker,
                         Cycle watchdog = 500'000'000) {
  for (int t = 0; t < threads; ++t) {
    m.spawn(t, [worker, t](Ctx& ctx) { return worker(ctx, t); });
  }
  const Cycle end = m.run(watchdog);
  EXPECT_TRUE(m.all_done()) << "simulation did not finish within the watchdog ("
                            << m.threads_finished() << " threads done)";
  return end;
}

/// Ops/megacycle for quick relative-throughput assertions.
inline double throughput(const Stats& s, Cycle cycles) {
  return cycles == 0 ? 0.0
                     : static_cast<double>(s.ops_completed) * 1e6 / static_cast<double>(cycles);
}

}  // namespace lrsim::testing
