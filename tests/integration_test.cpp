// Copyright (c) 2026 lrsim authors. MIT license.
//
// Cross-module integration: the paper's headline effects at test-friendly
// scale. These assert *directions and rough magnitudes* (who wins), not
// absolute numbers — the benches in bench/ print the full curves.
#include <gtest/gtest.h>

#include "apps/pagerank.hpp"
#include "ds/counter.hpp"
#include "ds/ms_queue.hpp"
#include "ds/treiber_stack.hpp"
#include "ds/two_lock_queue.hpp"
#include "sim_test_util.hpp"
#include "sync/locks.hpp"

namespace lrsim {
namespace {

using testing::small_config;
using testing::throughput;

struct RunResult {
  double ops_per_mcycle;
  double msgs_per_op;
  double misses_per_op;
  double energy_per_op;
};

// The paper's stack workload (Figure 2): pre-populated structure, 100%
// updates (random push/pop mix), a little local work between operations.
// Naked push();pop(); pairs degenerate — the pop instantly undoes the push
// out of the local cache before any remote request lands, hiding contention.
RunResult run_stack(int threads, bool leases, int reps) {
  Machine m{small_config(threads, leases)};
  TreiberStack s{m, {.use_lease = leases}};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (int i = 0; i < 128; ++i) co_await s.push(ctx, static_cast<std::uint64_t>(i + 1));
  });
  m.run();
  const Cycle start = m.events().now();
  testing::run_workers(m, threads, [&, reps](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < reps; ++i) {
      if (ctx.rng().next_bool(0.5)) {
        co_await s.push(ctx, 7);
      } else {
        co_await s.pop(ctx);
      }
      const Cycle think = ctx.rng().next_below(40);
      if (think > 0) co_await ctx.work(think);
    }
  });
  const Cycle end = m.events().now() - start;
  Stats st = m.total_stats();
  st.ops_completed -= 128;  // exclude the prefill
  return {throughput(st, end), st.messages_per_op(), st.misses_per_op(), st.energy_per_op_nj()};
}

TEST(Integration, LeasesSpeedUpContendedStack) {
  const RunResult base = run_stack(16, false, 30);
  const RunResult leased = run_stack(16, true, 30);
  EXPECT_GT(leased.ops_per_mcycle, base.ops_per_mcycle * 1.5)
      << "leases should speed up the contended stack";
  EXPECT_LT(leased.msgs_per_op, base.msgs_per_op);
  EXPECT_LT(leased.energy_per_op, base.energy_per_op);
}

TEST(Integration, LeasesDoNotHurtUncontendedStack) {
  const RunResult base = run_stack(1, false, 100);
  const RunResult leased = run_stack(1, true, 100);
  // Within 10% in the single-threaded case (paper: no discernible impact).
  EXPECT_GT(leased.ops_per_mcycle, base.ops_per_mcycle * 0.9);
  EXPECT_LT(leased.ops_per_mcycle, base.ops_per_mcycle * 1.1);
}

TEST(Integration, LeasedStackMissesPerOpStayNearConstant) {
  // Section 7: "average cache misses per operation for the stack are
  // constant around 2.1 from 4 to 64 threads" with leases, while the base
  // implementation's grows with contention.
  const RunResult leased4 = run_stack(4, true, 30);
  const RunResult leased16 = run_stack(16, true, 30);
  EXPECT_LT(leased16.misses_per_op, leased4.misses_per_op * 1.5);
  const RunResult base4 = run_stack(4, false, 30);
  const RunResult base16 = run_stack(16, false, 30);
  EXPECT_GT(base16.misses_per_op, base4.misses_per_op * 1.5)
      << "baseline misses/op should grow with contention";
}

TEST(Integration, LeasesSpeedUpContendedLockedCounter) {
  constexpr int kThreads = 16;
  constexpr int kReps = 25;
  auto run = [&](CounterLockKind kind) {
    Machine m{small_config(kThreads, true)};
    LockedCounter c{m, kind};
    const Cycle end = testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < kReps; ++i) {
        co_await c.increment(ctx);
        const Cycle think = ctx.rng().next_below(40);
        if (think > 0) co_await ctx.work(think);
      }
    });
    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kReps);
    return throughput(m.total_stats(), end);
  };
  const double tts = run(CounterLockKind::kTTS);
  const double leased = run(CounterLockKind::kTTSLease);
  EXPECT_GT(leased, tts * 2.0) << "paper reports up to 20x for the counter";
}

TEST(Integration, LeasedQueueBeatsBaseUnderContention) {
  constexpr int kThreads = 16;
  constexpr int kReps = 25;
  auto run = [&](QueueLeaseMode mode) {
    Machine m{small_config(kThreads, true)};
    MsQueue q{m, {.lease_mode = mode}};
    const Cycle end = testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < kReps; ++i) {
        co_await q.enqueue(ctx, 1);
        co_await q.dequeue(ctx);
      }
    });
    return throughput(m.total_stats(), end);
  };
  const double base = run(QueueLeaseMode::kNone);
  const double single = run(QueueLeaseMode::kSingle);
  EXPECT_GT(single, base * 1.3);
}

TEST(Integration, BackoffHelpsButLessThanLeases) {
  // Section 7: backoff gives up to ~3x over base but stays well below
  // leases on the contended stack.
  constexpr int kThreads = 16;
  constexpr int kReps = 30;
  auto run = [&](bool lease, bool backoff) {
    Machine m{small_config(kThreads, lease)};
    TreiberStack s{m, {.use_lease = lease, .use_backoff = backoff}};
    m.spawn(0, [&](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < 128; ++i) co_await s.push(ctx, 5);
    });
    m.run();
    const Cycle start = m.events().now();
    testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < kReps; ++i) {
        if (ctx.rng().next_bool(0.5)) {
          co_await s.push(ctx, 1);
        } else {
          co_await s.pop(ctx);
        }
        const Cycle think = ctx.rng().next_below(40);
        if (think > 0) co_await ctx.work(think);
      }
    });
    return throughput(m.total_stats(), m.events().now() - start);
  };
  const double base = run(false, false);
  const double backoff = run(false, true);
  const double lease = run(true, false);
  EXPECT_GT(backoff, base) << "backoff should beat the naked baseline";
  EXPECT_GT(lease, backoff) << "leases should beat tuned backoff";
}

TEST(Integration, LeasedTwoLockQueueBeatsBaseUnderContention) {
  // Figure 3's lock-based queue: the Section 6 lock-lease recipe on both
  // queue locks.
  constexpr int kThreads = 16;
  auto run = [&](bool lease) {
    Machine m{small_config(kThreads, lease)};
    TwoLockQueue q{m, {.use_lease = lease}};
    m.spawn(0, [&](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < 64; ++i) co_await q.enqueue(ctx, 1);
    });
    m.run();
    const Cycle start = m.events().now();
    testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < 25; ++i) {
        if (ctx.rng().next_bool(0.5)) {
          co_await q.enqueue(ctx, 7);
        } else {
          co_await q.dequeue(ctx);
        }
        const Cycle think = ctx.rng().next_below(40);
        if (think > 0) co_await ctx.work(think);
      }
    });
    return m.events().now() - start;
  };
  const Cycle leased = run(true);
  const Cycle base = run(false);
  EXPECT_LT(leased * 2, base) << "two-lock queue should gain >2x from leases at 16 threads";
}

TEST(Integration, LeasedPagerankScalesWhereBaseCollapses) {
  // Figure 5 (right) at test scale: compare 8-thread runtimes.
  auto run = [](bool lease) {
    constexpr int kThreads = 8;
    Machine m{small_config(kThreads, lease)};
    Pagerank pr{m, {.num_vertices = 400, .use_lease = lease, .seed = 3}};
    const std::size_t chunk = (pr.num_vertices() + kThreads - 1) / kThreads;
    return testing::run_workers(m, kThreads, [&, chunk](Ctx& ctx, int t) -> Task<void> {
      for (int iter = 0; iter < 2; ++iter) {
        co_await pr.process_range(ctx, static_cast<std::size_t>(t) * chunk,
                                  static_cast<std::size_t>(t + 1) * chunk);
      }
    });
  };
  const Cycle leased = run(true);
  const Cycle base = run(false);
  EXPECT_LT(leased + leased / 2, base) << "pagerank should gain >1.5x from the lease at 8 threads";
}

TEST(Integration, StatsConservationAcrossCores) {
  // Aggregate sanity: total = sum(core) + directory block.
  Machine m{small_config(4, true)};
  TreiberStack s{m, {.use_lease = true}};
  testing::run_workers(m, 4, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      co_await s.push(ctx, 2);
      co_await s.pop(ctx);
    }
  });
  std::uint64_t core_ops = 0;
  for (int c = 0; c < 4; ++c) core_ops += m.core_stats(c).ops_completed;
  EXPECT_EQ(core_ops, m.total_stats().ops_completed);
  EXPECT_EQ(core_ops, 4u * 20u);
}

}  // namespace
}  // namespace lrsim
