// Copyright (c) 2026 lrsim authors. MIT license.
//
// Observability-layer tests: log2 histogram bucket math, per-line contention
// profiles and top-N ordering, span recording discipline, the Perfetto
// trace-event exporter (parsed with a minimal JSON reader and checked for
// the format's track invariants), the deterministic stats sampler, and the
// bench-harness sink files' byte-identity across host --jobs values.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::run_workers;
using testing::small_config;

// --- minimal JSON reader (enough for the exporter's output) -----------------

struct Json {
  enum Kind { kNull, kBool, kNum, kStr, kArr, kObj } kind = kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  const Json& at(const std::string& key) const {
    auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) != 0; }
  std::int64_t as_int() const { return static_cast<std::int64_t>(num); }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  Json parse() {
    Json v = value();
    ws();
    if (i_ != s_.size()) throw std::runtime_error("trailing bytes after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error(what + " at offset " + std::to_string(i_));
  }
  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' || s_[i_] == '\r'))
      ++i_;
  }
  char peek() {
    ws();
    if (i_ >= s_.size()) fail("unexpected end of input");
    return s_[i_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i_;
  }
  bool maybe(char c) {
    if (i_ < s_.size() && peek() == c) {
      ++i_;
      return true;
    }
    return false;
  }

  Json value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': literal("true"); return make_bool(true);
      case 'f': literal("false"); return make_bool(false);
      case 'n': literal("null"); return Json{};
      default: return number();
    }
  }
  static Json make_bool(bool b) {
    Json v;
    v.kind = Json::kBool;
    v.b = b;
    return v;
  }
  void literal(std::string_view lit) {
    if (s_.substr(i_, lit.size()) != lit) fail("bad literal");
    i_ += lit.size();
  }
  Json object() {
    expect('{');
    Json v;
    v.kind = Json::kObj;
    if (maybe('}')) return v;
    do {
      Json key = string_value();
      expect(':');
      v.obj.emplace(std::move(key.str), value());
    } while (maybe(','));
    expect('}');
    return v;
  }
  Json array() {
    expect('[');
    Json v;
    v.kind = Json::kArr;
    if (maybe(']')) return v;
    do {
      v.arr.push_back(value());
    } while (maybe(','));
    expect(']');
    return v;
  }
  Json string_value() {
    expect('"');
    Json v;
    v.kind = Json::kStr;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) fail("dangling escape");
      }
      v.str.push_back(s_[i_++]);
    }
    if (i_ >= s_.size()) fail("unterminated string");
    ++i_;  // closing quote
    return v;
  }
  Json number() {
    const std::size_t start = i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) || s_[i_] == '-' || s_[i_] == '+' ||
            s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E'))
      ++i_;
    if (i_ == start) fail("expected a number");
    return [&] {
      Json v;
      v.kind = Json::kNum;
      v.num = std::stod(std::string(s_.substr(start, i_ - start)));
      return v;
    }();
  }

  std::string_view s_;
  std::size_t i_ = 0;
};

// --- histogram ---------------------------------------------------------------

TEST(Log2Histogram, BucketMathRoundTrips) {
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 1);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 2);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 2);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 3);
  EXPECT_EQ(Log2Histogram::bucket_of(1023), 10);
  EXPECT_EQ(Log2Histogram::bucket_of(1024), 11);
  EXPECT_EQ(Log2Histogram::bucket_of(~std::uint64_t{0}), 64);
  // Every bucket's inclusive low and (exclusive) high-1 map back into it.
  for (int b = 0; b < Log2Histogram::kBuckets; ++b) {
    EXPECT_EQ(Log2Histogram::bucket_of(Log2Histogram::bucket_low(b)), b) << b;
    const std::uint64_t high = Log2Histogram::bucket_high(b);
    EXPECT_EQ(Log2Histogram::bucket_of(b == 64 ? high : high - 1), b) << b;
    EXPECT_LT(Log2Histogram::bucket_low(b), high) << b;
  }
}

TEST(Log2Histogram, AddAndSummaries) {
  Log2Histogram h;
  EXPECT_EQ(h.max_bucket(), -1);
  for (std::uint64_t v : {0ull, 1ull, 3ull, 3ull, 100ull}) h.add(v);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.sum(), 107u);
  EXPECT_DOUBLE_EQ(h.mean(), 107.0 / 5.0);
  EXPECT_EQ(h.count(0), 1u);  // {0}
  EXPECT_EQ(h.count(1), 1u);  // {1}
  EXPECT_EQ(h.count(2), 2u);  // [2,4)
  EXPECT_EQ(h.count(7), 1u);  // [64,128) holds 100
  EXPECT_EQ(h.max_bucket(), 7);
}

// --- recording hooks ---------------------------------------------------------

TEST(Observability, TopLinesIsOrderedByParkCyclesThenTieBreaks) {
  Observability obs;
  // line 1: most park cycles. line 2: fewer. line 3 and 4: none parked,
  // ordered by invalidations then line id.
  obs.on_probe_parked(1);
  obs.on_probe_unparked(0, 1, 0, 100);
  obs.on_probe_parked(2);
  obs.on_probe_unparked(0, 2, 10, 20);
  obs.on_invalidation(4);
  obs.on_invalidation(3);
  obs.on_invalidation(3);
  const auto top = obs.top_lines(10);
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0].first, 1u);
  EXPECT_EQ(top[1].first, 2u);
  EXPECT_EQ(top[2].first, 3u);  // 2 invalidations beat 1
  EXPECT_EQ(top[3].first, 4u);
  const auto top1 = obs.top_lines(1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0].first, 1u);
  EXPECT_EQ(top1[0].second.park_cycles, 100u);
}

TEST(Observability, SpanBufferDropsAtCapacityWithoutGrowing) {
  ObsOptions oo;
  oo.span_capacity = 2;
  Observability obs{oo};
  for (LineId l = 1; l <= 5; ++l) {
    obs.on_lease_end(0, l, 10, 20, ReleaseKind::kVoluntary, /*started=*/true);
  }
  EXPECT_EQ(obs.spans().size(), 2u);
  EXPECT_EQ(obs.spans_dropped(), 3u);
  // The histogram and profile still see every lease (only spans are capped).
  EXPECT_EQ(obs.lease_duration_histogram().total(), 5u);
}

TEST(Observability, LeaseEndClassifiesReleaseKinds) {
  Observability obs;
  obs.on_lease_taken(9);
  obs.on_lease_end(0, 9, 0, 50, ReleaseKind::kInvoluntary, true);
  obs.on_lease_end(0, 9, 60, 70, ReleaseKind::kBroken, true);
  obs.on_lease_end(0, 9, 80, 90, ReleaseKind::kEvicted, true);
  // Never-started entry (evicted mid-acquisition): counted, but no span and
  // no duration sample.
  obs.on_lease_end(0, 9, 0, 95, ReleaseKind::kEvicted, /*started=*/false);
  const auto& p = obs.line_profiles().at(9);
  EXPECT_EQ(p.leases, 1u);
  EXPECT_EQ(p.lease_expiries, 1u);
  EXPECT_EQ(p.lease_breaks, 3u);
  EXPECT_EQ(obs.spans().size(), 3u);
  EXPECT_EQ(obs.lease_duration_histogram().total(), 3u);
  for (const SpanRecord& s : obs.spans()) EXPECT_LE(s.begin, s.end);
}

// --- machine integration -----------------------------------------------------

Task<void> contend(Ctx& ctx, Addr a, int ops) {
  for (int i = 0; i < ops; ++i) {
    co_await ctx.lease(a, 400);
    const std::uint64_t v = co_await ctx.load(a);
    co_await ctx.store(a, v + 1);
    co_await ctx.release(a);
    ctx.count_op();
    co_await ctx.work(1 + ctx.rng().next_below(8));
  }
}

TEST(ObsMachine, RecordsLeaseParkAndDirectorySpans) {
  Machine m{small_config(4, /*leases=*/true), /*seed=*/7};
  const Addr a = m.heap().alloc_line();
  Observability& obs = m.enable_observability();
  run_workers(m, 4, [&](Ctx& ctx, int) { return contend(ctx, a, 10); });

  bool saw_lease = false, saw_park = false, saw_dir = false;
  for (const SpanRecord& s : obs.spans()) {
    EXPECT_LE(s.begin, s.end);
    switch (s.kind) {
      case SpanKind::kLeaseHold: saw_lease = true; EXPECT_GE(s.core, 0); break;
      case SpanKind::kProbePark: saw_park = true; EXPECT_GE(s.core, 0); break;
      case SpanKind::kDirService: saw_dir = true; EXPECT_EQ(s.core, -1); break;
    }
  }
  EXPECT_TRUE(saw_lease);
  EXPECT_TRUE(saw_park);  // 4 cores fighting over one leased line must park
  EXPECT_TRUE(saw_dir);
  EXPECT_GT(obs.lease_duration_histogram().total(), 0u);
  EXPECT_GT(obs.park_latency_histogram().total(), 0u);
  // The contended line dominates the profile.
  const auto top = obs.top_lines(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].first, line_of(a));
}

TEST(ObsMachine, TraceJsonParsesAndTracksAreSortedNonOverlapping) {
  Machine m{small_config(4, /*leases=*/true), /*seed=*/7};
  const Addr a = m.heap().alloc_line();
  m.enable_tracing(1024);
  Observability& obs = m.enable_observability();
  run_workers(m, 4, [&](Ctx& ctx, int) { return contend(ctx, a, 10); });

  std::ostringstream os;
  obs.write_trace_json(os);
  Json doc = JsonParser{os.str()}.parse();

  ASSERT_EQ(doc.kind, Json::kObj);
  EXPECT_EQ(doc.at("otherData").at("spans").as_int(),
            static_cast<std::int64_t>(obs.spans().size()));
  const Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, Json::kArr);
  ASSERT_FALSE(events.arr.empty());

  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> track_end;
  std::set<std::pair<std::int64_t, std::int64_t>> named_tracks;
  std::size_t n_complete = 0, n_instant = 0;
  for (const Json& ev : events.arr) {
    const std::string& ph = ev.at("ph").str;
    if (ph == "M") {
      if (ev.at("name").str == "thread_name") {
        named_tracks.emplace(ev.at("pid").as_int(), ev.at("tid").as_int());
      }
      continue;
    }
    const std::int64_t ts = ev.at("ts").as_int();
    EXPECT_GE(ts, 0);
    if (ph == "i") {
      ++n_instant;
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++n_complete;
    const std::int64_t dur = ev.at("dur").as_int();
    EXPECT_GE(dur, 0);
    const auto track = std::make_pair(ev.at("pid").as_int(), ev.at("tid").as_int());
    auto [it, fresh] = track_end.emplace(track, 0);
    // The format requires per-track stack discipline; the exporter's lane
    // assignment must emit sorted, non-overlapping complete events.
    EXPECT_GE(ts, it->second) << "overlap on pid " << track.first << " tid " << track.second;
    it->second = ts + dur;
  }
  EXPECT_EQ(n_complete, obs.spans().size());
  EXPECT_GT(n_instant, 0u);  // tracer records ride along as instants
  for (const auto& [track, unused] : track_end) {
    EXPECT_TRUE(named_tracks.count(track)) << "unnamed track pid " << track.first;
  }
}

TEST(ObsMachine, ProfileReportNamesTheHottestLine) {
  Machine m{small_config(4, /*leases=*/true), /*seed=*/7};
  const Addr a = m.heap().alloc_line();
  Observability& obs = m.enable_observability();
  run_workers(m, 4, [&](Ctx& ctx, int) { return contend(ctx, a, 10); });

  std::ostringstream os;
  obs.write_profile(os, /*top_n=*/5);
  const std::string text = os.str();
  std::ostringstream hex;
  hex << "0x" << std::hex << line_of(a);
  EXPECT_NE(text.find(hex.str()), std::string::npos);
  EXPECT_NE(text.find("lease duration histogram"), std::string::npos);
  EXPECT_NE(text.find("probe-park latency histogram"), std::string::npos);
}

TEST(ObsMachine, SamplerTicksPeriodicallyAndDeltasAddUp) {
  MachineConfig cfg = small_config(2, /*leases=*/true);
  Machine m{cfg, /*seed=*/5};
  const Addr a = m.heap().alloc_line();
  ObsOptions oo;
  oo.sample_every = 500;
  Observability& obs = m.enable_observability(oo);
  run_workers(m, 2, [&](Ctx& ctx, int) { return contend(ctx, a, 20); });

  const auto& rows = obs.samples();
  ASSERT_FALSE(rows.empty());
  Stats total_from_rows;
  Cycle prev_tick = 0;
  for (const SampleRow& r : rows) {
    EXPECT_EQ(r.cycle % 500, 0u);
    if (r.scope == -1) {
      EXPECT_GT(r.cycle, prev_tick);  // one aggregate row per tick, in order
      prev_tick = r.cycle;
      total_from_rows += r.delta;
    } else {
      EXPECT_LT(r.scope, cfg.num_cores);
      EXPECT_EQ(r.cycle, prev_tick);  // per-core rows follow their tick
    }
  }
  // Deltas accumulated over all ticks never exceed the final cumulative
  // stats, and cover everything up to the last tick.
  const Stats cumulative = m.total_stats();
  EXPECT_LE(total_from_rows.ops_completed, cumulative.ops_completed);
  EXPECT_LE(total_from_rows.leases_taken, cumulative.leases_taken);
  EXPECT_GT(total_from_rows.msgs_gets + total_from_rows.msgs_getx, 0u);
}

// --- bench-harness sinks -----------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

bench::BenchOptions obs_sweep_options(const std::string& tag) {
  bench::BenchOptions opt;
  opt.threads = {2, 4};
  opt.ops_per_thread = 20;
  opt.csv_dir.clear();
  const auto dir = std::filesystem::path(::testing::TempDir()) / ("obs_" + tag);
  opt.trace_out = (dir / "trace.json").string();
  opt.profile_out = (dir / "profile.txt").string();
  opt.samples_out = (dir / "samples.csv").string();
  opt.sample_every = 1000;
  return opt;
}

std::vector<bench::Variant> obs_variants() {
  bench::Variant base;
  base.name = "base";
  base.configure = [](MachineConfig& cfg) { cfg.leases_enabled = false; };
  base.make = [](Machine& m, const bench::BenchOptions& opt) {
    const Addr a = m.heap().alloc_line();
    const int ops = opt.ops_per_thread;
    return [a, ops](Ctx& ctx, int) { return contend(ctx, a, ops); };
  };
  bench::Variant lease = base;
  lease.name = "lease";
  lease.configure = [](MachineConfig& cfg) { cfg.leases_enabled = true; };
  return {base, lease};
}

TEST(ObsHarness, SinkFilesAreByteIdenticalAcrossHostJobs) {
  // The observed sample rides inside one deterministic simulation; host
  // parallelism of the surrounding sweep must not change a single byte of
  // any sink file.
  auto run = [&](int jobs, const std::string& tag) {
    bench::BenchOptions opt = obs_sweep_options(tag);
    opt.jobs = jobs;
    std::ostringstream captured;  // keep the tables off the test log
    std::streambuf* old = std::cout.rdbuf(captured.rdbuf());
    bench::run_experiment("obs sinks", "obs", obs_variants(), opt);
    std::cout.rdbuf(old);
    return opt;
  };
  const bench::BenchOptions serial = run(1, "serial");
  const bench::BenchOptions parallel = run(4, "par4");

  const std::string samples = slurp(serial.samples_out);
  EXPECT_FALSE(samples.empty());
  EXPECT_EQ(samples, slurp(parallel.samples_out));
  EXPECT_NE(samples.find("cycle,scope,"), std::string::npos);
  EXPECT_NE(samples.find(",total,"), std::string::npos);
  EXPECT_NE(samples.find(",core0,"), std::string::npos);

  const std::string trace = slurp(serial.trace_out);
  EXPECT_FALSE(trace.empty());
  EXPECT_EQ(trace, slurp(parallel.trace_out));
  EXPECT_NO_THROW(JsonParser{trace}.parse());

  const std::string profile = slurp(serial.profile_out);
  EXPECT_FALSE(profile.empty());
  EXPECT_EQ(profile, slurp(parallel.profile_out));
}

TEST(ObsHarness, ObservabilityOffLeavesNoSinkState) {
  // Default options: no observability. run_one must not create an
  // Observability (the hook sites stay single null checks).
  bench::BenchOptions opt;
  opt.threads = {2};
  opt.ops_per_thread = 10;
  opt.csv_dir.clear();
  EXPECT_FALSE(opt.observability_requested());
  const bench::Sample s = bench::run_one(obs_variants()[1], 2, opt);
  EXPECT_GT(s.ops, 0u);
}

}  // namespace
}  // namespace lrsim
