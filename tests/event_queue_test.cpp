// Copyright (c) 2026 lrsim authors. MIT license.
//
// Unit tests for the discrete-event kernel: ordering, determinism,
// cancellation, bounded-horizon runs.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sim/event_queue.hpp"

namespace lrsim {
namespace {

TEST(EventQueue, StartsAtCycleZeroAndEmpty) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.run(), 0u);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameCycleEventsFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelativeToNow) {
  EventQueue q;
  Cycle seen = 0;
  q.schedule_in(10, [&] {
    q.schedule_in(5, [&] { seen = q.now(); });
  });
  q.run();
  EXPECT_EQ(seen, 15u);
}

TEST(EventQueue, CancelledEventDoesNotFire) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  q.run();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue q;
  int fires = 0;
  EventHandle h = q.schedule_at(1, [&] { ++fires; });
  q.run();
  EXPECT_EQ(fires, 1);
  h.cancel();  // after fire: no-op
  h.cancel();
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, CancelFromInsideEarlierEvent) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule_at(20, [&] { fired = true; });
  q.schedule_at(10, [&] { h.cancel(); });
  q.run();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, RunRespectsLimit) {
  EventQueue q;
  bool early = false, late = false;
  q.schedule_at(10, [&] { early = true; });
  q.schedule_at(100, [&] { late = true; });
  q.run(/*limit=*/50);
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(q.now(), 50u);
  // The late event survives and fires on the next unbounded run.
  q.run();
  EXPECT_TRUE(late);
}

TEST(EventQueue, RunWhileStopsWhenPredicateFalsifies) {
  EventQueue q;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    q.schedule_at(static_cast<Cycle>(i), [&] { ++count; });
  }
  q.run_while([&] { return count < 4; });
  EXPECT_EQ(count, 4);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, EventsScheduledDuringRunAreProcessed) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 50) q.schedule_in(1, recurse);
  };
  q.schedule_at(0, recurse);
  q.run();
  EXPECT_EQ(depth, 50);
  EXPECT_EQ(q.now(), 49u);
}

TEST(EventQueue, TotalScheduledCounts) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule_at(1, [] {});
  EXPECT_EQ(q.total_scheduled(), 7u);
}

// --- schedule-perturbation mode -------------------------------------------

/// Schedules 16 same-cycle events (plus a couple at other cycles) and
/// returns the firing order.
std::vector<int> perturbed_order(std::optional<std::uint64_t> seed) {
  EventQueue q;
  if (seed) q.enable_perturbation(*seed);
  std::vector<int> order;
  q.schedule_at(1, [&] { order.push_back(-1); });
  for (int i = 0; i < 16; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  q.schedule_at(9, [&] { order.push_back(-2); });
  q.run();
  return order;
}

TEST(EventQueue, PerturbationIsDeterministicPerSeed) {
  EXPECT_EQ(perturbed_order(42u), perturbed_order(42u));
  EXPECT_EQ(perturbed_order(7u), perturbed_order(7u));
}

TEST(EventQueue, PerturbationShufflesSameCycleEvents) {
  const auto fifo = perturbed_order(std::nullopt);
  const auto s1 = perturbed_order(42u);
  const auto s2 = perturbed_order(7u);
  EXPECT_NE(s1, fifo);  // 16! orderings: a fixed seed matching FIFO would be astonishing
  EXPECT_NE(s1, s2);
}

TEST(EventQueue, PerturbationNeverViolatesTimeOrder) {
  const auto order = perturbed_order(123u);
  ASSERT_EQ(order.size(), 18u);
  EXPECT_EQ(order.front(), -1);  // cycle 1 fires before the cycle-5 batch
  EXPECT_EQ(order.back(), -2);   // cycle 9 fires after it
}

TEST(EventQueue, PerturbationKeepsCancellationWorking) {
  EventQueue q;
  q.enable_perturbation(1);
  bool fired = false;
  EventHandle h = q.schedule_at(10, [&] { fired = true; });
  q.schedule_at(10, [] {});
  h.cancel();
  q.run();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, DeterministicAcrossIdenticalRuns) {
  auto trace = [] {
    EventQueue q;
    std::vector<Cycle> t;
    for (int i = 0; i < 100; ++i) {
      q.schedule_at(static_cast<Cycle>((i * 37) % 50), [&t, &q] { t.push_back(q.now()); });
    }
    q.run();
    return t;
  };
  EXPECT_EQ(trace(), trace());
}

}  // namespace
}  // namespace lrsim
