// Copyright (c) 2026 lrsim authors. MIT license.
//
// Unit tests for the discrete-event kernel: ordering, determinism,
// cancellation, bounded-horizon runs.
#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <vector>

#include "sim/event_queue.hpp"

namespace lrsim {
namespace {

TEST(EventQueue, StartsAtCycleZeroAndEmpty) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.run(), 0u);
}

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameCycleEventsFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelativeToNow) {
  EventQueue q;
  Cycle seen = 0;
  q.schedule_in(10, [&] {
    q.schedule_in(5, [&] { seen = q.now(); });
  });
  q.run();
  EXPECT_EQ(seen, 15u);
}

TEST(EventQueue, CancelledEventDoesNotFire) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  q.run();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndSafeAfterFire) {
  EventQueue q;
  int fires = 0;
  EventHandle h = q.schedule_at(1, [&] { ++fires; });
  q.run();
  EXPECT_EQ(fires, 1);
  h.cancel();  // after fire: no-op
  h.cancel();
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, CancelFromInsideEarlierEvent) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule_at(20, [&] { fired = true; });
  q.schedule_at(10, [&] { h.cancel(); });
  q.run();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, RunRespectsLimit) {
  EventQueue q;
  bool early = false, late = false;
  q.schedule_at(10, [&] { early = true; });
  q.schedule_at(100, [&] { late = true; });
  q.run(/*limit=*/50);
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(q.now(), 50u);
  // The late event survives and fires on the next unbounded run.
  q.run();
  EXPECT_TRUE(late);
}

TEST(EventQueue, RunWhileStopsWhenPredicateFalsifies) {
  EventQueue q;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    q.schedule_at(static_cast<Cycle>(i), [&] { ++count; });
  }
  q.run_while([&] { return count < 4; });
  EXPECT_EQ(count, 4);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, EventsScheduledDuringRunAreProcessed) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 50) q.schedule_in(1, recurse);
  };
  q.schedule_at(0, recurse);
  q.run();
  EXPECT_EQ(depth, 50);
  EXPECT_EQ(q.now(), 49u);
}

TEST(EventQueue, TotalScheduledCounts) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule_at(1, [] {});
  EXPECT_EQ(q.total_scheduled(), 7u);
}

// --- bounded-horizon now() guarantees --------------------------------------

TEST(EventQueue, BoundedRunAdvancesToLimitWhenQueueDrainsEarly) {
  EventQueue q;
  bool fired = false;
  q.schedule_at(10, [&] { fired = true; });
  q.run(/*limit=*/50);
  EXPECT_TRUE(fired);
  EXPECT_EQ(q.now(), 50u);  // the horizon was simulated even though no event sat at it
}

TEST(EventQueue, BoundedRunAdvancesToLimitWhenOnlyEventBeyondLimitIsCancelled) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule_at(100, [&] { fired = true; });
  h.cancel();
  q.run(/*limit=*/50);
  EXPECT_FALSE(fired);
  EXPECT_EQ(q.now(), 50u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, BoundedRunOnEmptyQueueAdvancesToLimit) {
  EventQueue q;
  q.run(/*limit=*/25);
  EXPECT_EQ(q.now(), 25u);
}

TEST(EventQueue, RunWhileWithLimitAdvancesToLimitOnDrain) {
  EventQueue q;
  int count = 0;
  q.schedule_at(10, [&] { ++count; });
  q.run_while([] { return true; }, /*limit=*/50);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(q.now(), 50u);
}

TEST(EventQueue, RunWhilePredicateStopLeavesNowAtLastFiredEvent) {
  EventQueue q;
  int count = 0;
  q.schedule_at(10, [&] { ++count; });
  q.schedule_at(20, [&] { ++count; });
  q.schedule_at(30, [&] { ++count; });
  q.run_while([&] { return count < 2; }, /*limit=*/1000);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.now(), 20u);  // stopped by the predicate, not the horizon
  EXPECT_FALSE(q.empty());
}

// --- pooled slots and {index, generation} handles ---------------------------

TEST(EventQueue, SlotReuseDoesNotResurrectStaleHandles) {
  EventQueue q;
  bool first = false, second = false;
  EventHandle h1 = q.schedule_at(10, [&] { first = true; });
  h1.cancel();  // frees the slot; h1's generation is now stale
  EventHandle h2 = q.schedule_at(20, [&] { second = true; });
  // The pool reuses the single freed slot, so h1 and h2 alias the same
  // index with different generations.
  EXPECT_FALSE(h1.pending());
  EXPECT_TRUE(h2.pending());
  h1.cancel();  // stale: must NOT cancel h2's event
  EXPECT_TRUE(h2.pending());
  q.run();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

TEST(EventQueue, HandleGoesStaleAfterFireEvenIfSlotReused) {
  EventQueue q;
  int fires = 0;
  EventHandle h = q.schedule_at(1, [&] { ++fires; });
  q.run();
  bool later = false;
  EventHandle h2 = q.schedule_at(5, [&] { later = true; });  // reuses the slot
  EXPECT_FALSE(h.pending());
  h.cancel();  // stale no-op
  EXPECT_TRUE(h2.pending());
  q.run();
  EXPECT_TRUE(later);
  EXPECT_EQ(fires, 1);
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash
}

TEST(EventQueue, PoolStaysBoundedUnderChurn) {
  EventQueue q;
  int fires = 0;
  for (int round = 0; round < 1000; ++round) {
    q.schedule_in(1, [&] { ++fires; });
    q.run();
  }
  EXPECT_EQ(fires, 1000);
  // Every round reuses the one freed slot instead of growing the slab.
  EXPECT_LE(q.pool_size(), 4u);
}

TEST(EventQueue, CancelSameCycleSiblingBeforeItFires) {
  EventQueue q;
  bool victim_fired = false;
  // A fires first (same cycle, earlier schedule order) and cancels B.
  EventHandle b;
  q.schedule_at(5, [&] { b.cancel(); });
  b = q.schedule_at(5, [&] { victim_fired = true; });
  q.run();
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(q.now(), 5u);
}

// --- calendar ring / far-heap boundary --------------------------------------

TEST(EventQueue, EventsStraddlingTheCalendarHorizonFireInOrder) {
  // The near-future calendar covers [now, now+256); anything further sits in
  // the far heap until time advances. Straddle the boundary both ways.
  EventQueue q;
  std::vector<Cycle> fired;
  auto record = [&] { fired.push_back(q.now()); };
  q.schedule_at(255, record);  // last calendar slot
  q.schedule_at(256, record);  // first far-heap cycle
  q.schedule_at(257, record);
  q.schedule_at(1000, record);
  q.schedule_at(0, record);
  q.run();
  EXPECT_EQ(fired, (std::vector<Cycle>{0, 255, 256, 257, 1000}));
}

TEST(EventQueue, SameCycleOrderIsScheduleOrderAcrossCalendarAndHeap) {
  EventQueue q;
  std::vector<int> order;
  // First event lands in the far heap (300 - 0 >= 256)...
  q.schedule_at(300, [&] { order.push_back(1); });
  // ...then time advances so a later schedule for the same cycle goes to
  // the calendar (300 - 100 < 256). The heap node was scheduled first, so
  // it must still fire first.
  q.schedule_at(100, [&] { q.schedule_at(300, [&] { order.push_back(2); }); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, CalendarRingWrapsManyTimes) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 2000) q.schedule_in(1, recurse);  // crosses the 256-slot ring 7+ times
  };
  q.schedule_at(0, recurse);
  q.run();
  EXPECT_EQ(depth, 2000);
  EXPECT_EQ(q.now(), 1999u);
}

TEST(EventQueue, CancelledCalendarEventsAreSkipped) {
  EventQueue q;
  std::vector<int> order;
  EventHandle h1 = q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(10, [&] { order.push_back(2); });
  EventHandle h3 = q.schedule_at(11, [&] { order.push_back(3); });
  h1.cancel();
  h3.cancel();
  q.schedule_at(12, [&] { order.push_back(4); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{2, 4}));
  EXPECT_EQ(q.now(), 12u);
}

// --- parallel-kernel prerequisites ------------------------------------------
// The sharded kernel (sim/par_kernel.hpp) leans on three edge behaviors that
// were previously untested in isolation: generation counters surviving chunk
// recycling, calendar buckets shared across ring laps, and the inline fast
// path declining exactly at its window edges.

TEST(EventQueue, GenerationsCarryOverAcrossRecycledChunks) {
  // Queue destruction retires slab chunks — with their bumped generation
  // counters — to a per-host-thread cache, and the next queue on this
  // thread starts from those warm slots. Handles issued against recycled
  // slots must invalidate exactly as against pristine ones.
  {
    EventQueue warm;
    for (int i = 0; i < 300; ++i) warm.schedule_at(1, [] {});  // spans >1 chunk
    warm.run();
  }
  EventQueue q;  // reuses the cached chunks; slot generations start nonzero
  bool first = false, second = false;
  EventHandle h1 = q.schedule_at(10, [&] { first = true; });
  h1.cancel();  // frees the recycled slot again
  EventHandle h2 = q.schedule_at(20, [&] { second = true; });
  EXPECT_FALSE(h1.pending());
  EXPECT_TRUE(h2.pending());
  h1.cancel();  // stale handle on a twice-recycled slot: must not hit h2
  EXPECT_TRUE(h2.pending());
  q.run();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

TEST(EventQueue, CalendarBucketReusedAcrossLapsDropsStaleEntries) {
  // Cycles t and t + kCalendarSlots hash to the same ring bucket. Leave a
  // cancelled lap-0 node parked in the bucket, then schedule a live lap-1
  // event into it once time has advanced far enough for the later cycle to
  // enter the horizon: the stale entry must be skipped, not fired or
  // mistaken for the lap-1 event.
  EventQueue q;
  std::vector<Cycle> fired;
  auto record = [&] { fired.push_back(q.now()); };
  EventHandle stale = q.schedule_at(5, record);  // bucket 5, lap 0
  stale.cancel();                                // dead node stays parked
  q.schedule_at(10, [&] {
    // now = 10: cycle 261 is inside the horizon and lands in bucket 5.
    q.schedule_at(5 + EventQueue::kCalendarSlots, record);
  });
  q.run();
  EXPECT_EQ(fired, (std::vector<Cycle>{5 + EventQueue::kCalendarSlots}));
  EXPECT_EQ(q.now(), 5 + EventQueue::kCalendarSlots);
}

TEST(EventQueue, TryAdvanceDeclinesAcrossTheWindowEdges) {
  // try_advance is armed only inside a tail event. Probe its three edges
  // from one callback: a delta that wraps the calendar ring, a delta that
  // would hop over a pending event, and a clear delta that must succeed.
  EventQueue q;
  bool far_declined = false, occupied_declined = false, clear_ok = false;
  Cycle after = 0;
  q.schedule_at(20, [] {});  // the in-window blocker
  q.schedule_tail_in(10, [&] {
    far_declined = !q.try_advance(EventQueue::kCalendarSlots);  // wraps the ring
    occupied_declined = !q.try_advance(15);  // event pending at 20 <= 25
    clear_ok = q.try_advance(5);             // [11, 15] holds no event
    after = q.now();
  });
  q.run();
  EXPECT_TRUE(far_declined);
  EXPECT_TRUE(occupied_declined);
  EXPECT_TRUE(clear_ok);
  EXPECT_EQ(after, 15u);
  EXPECT_EQ(q.now(), 20u);  // the blocker still fired at its own cycle
}

TEST(EventQueue, TryAdvanceDeclinesBeyondTheRunHorizon) {
  EventQueue q;
  bool beyond_declined = false, at_limit_ok = false;
  q.schedule_tail_in(10, [&] {
    beyond_declined = !q.try_advance(41);  // 51 > the run's 50-cycle horizon
    at_limit_ok = q.try_advance(40);       // exactly at the horizon is legal
  });
  q.run(/*limit=*/50);
  EXPECT_TRUE(beyond_declined);
  EXPECT_TRUE(at_limit_ok);
  EXPECT_EQ(q.now(), 50u);
}

// --- schedule-perturbation mode -------------------------------------------

/// Schedules 16 same-cycle events (plus a couple at other cycles) and
/// returns the firing order.
std::vector<int> perturbed_order(std::optional<std::uint64_t> seed) {
  EventQueue q;
  if (seed) q.enable_perturbation(*seed);
  std::vector<int> order;
  q.schedule_at(1, [&] { order.push_back(-1); });
  for (int i = 0; i < 16; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  q.schedule_at(9, [&] { order.push_back(-2); });
  q.run();
  return order;
}

TEST(EventQueue, PerturbationIsDeterministicPerSeed) {
  EXPECT_EQ(perturbed_order(42u), perturbed_order(42u));
  EXPECT_EQ(perturbed_order(7u), perturbed_order(7u));
}

TEST(EventQueue, PerturbationShufflesSameCycleEvents) {
  const auto fifo = perturbed_order(std::nullopt);
  const auto s1 = perturbed_order(42u);
  const auto s2 = perturbed_order(7u);
  EXPECT_NE(s1, fifo);  // 16! orderings: a fixed seed matching FIFO would be astonishing
  EXPECT_NE(s1, s2);
}

TEST(EventQueue, PerturbationNeverViolatesTimeOrder) {
  const auto order = perturbed_order(123u);
  ASSERT_EQ(order.size(), 18u);
  EXPECT_EQ(order.front(), -1);  // cycle 1 fires before the cycle-5 batch
  EXPECT_EQ(order.back(), -2);   // cycle 9 fires after it
}

TEST(EventQueue, PerturbationKeepsCancellationWorking) {
  EventQueue q;
  q.enable_perturbation(1);
  bool fired = false;
  EventHandle h = q.schedule_at(10, [&] { fired = true; });
  q.schedule_at(10, [] {});
  h.cancel();
  q.run();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, DeterministicAcrossIdenticalRuns) {
  auto trace = [] {
    EventQueue q;
    std::vector<Cycle> t;
    for (int i = 0; i < 100; ++i) {
      q.schedule_at(static_cast<Cycle>((i * 37) % 50), [&t, &q] { t.push_back(q.now()); });
    }
    q.run();
    return t;
  };
  EXPECT_EQ(trace(), trace());
}

}  // namespace
}  // namespace lrsim
