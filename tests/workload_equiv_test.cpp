// Copyright (c) 2026 lrsim authors. MIT license.
//
// Equivalence regression: the fig benches now build their variants through
// the workload registry (src/workload/), and this test pins that refactor
// byte-for-byte. The reference implementations below are verbatim copies of
// the *pre-registry* bench loops (fig2_stack / fig3_counter / fig3_pq as
// hand-written workers); the candidate side parses a workload config string
// — the same format configs/*.toml use — and runs workload_variant()s. Both
// sides go through run_experiment with captured stdout; every table byte,
// including cycle counts, must match. A PRNG draw added or dropped anywhere
// in the workload layer shows up here as a diff.
#include <gtest/gtest.h>

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "ds/bst.hpp"
#include "ds/counter.hpp"
#include "ds/harris_list.hpp"
#include "ds/hashtable.hpp"
#include "ds/skiplist_pq.hpp"
#include "ds/skiplist_set.hpp"
#include "ds/spraylist.hpp"
#include "ds/treiber_stack.hpp"
#include "sync/cohort_lock.hpp"

namespace lrsim::bench {
namespace {

constexpr int kPrefill = 256;

std::string run_captured(const std::string& title, const std::vector<Variant>& variants,
                         const BenchOptions& opt) {
  std::ostringstream captured;
  std::streambuf* old = std::cout.rdbuf(captured.rdbuf());
  try {
    run_experiment(title, "equiv", variants, opt);
  } catch (...) {
    std::cout.rdbuf(old);
    throw;
  }
  std::cout.rdbuf(old);
  return captured.str();
}

BenchOptions small_opt(int ops) {
  BenchOptions opt;
  opt.threads = {2, 4};
  opt.ops_per_thread = ops;
  opt.csv_dir.clear();
  return opt;
}

std::vector<Variant> config_variants(const std::string& config_text,
                                     const std::vector<std::pair<std::string, std::string>>& policies) {
  const auto cfg = workload::ConfigFile::parse_string(config_text, "<test>");
  const workload::WorkloadSpec spec = workload::parse_workload_spec(cfg);
  std::vector<Variant> vs;
  for (const auto& [policy, display] : policies) {
    vs.push_back(workload_variant(spec, policy, display));
  }
  return vs;
}

// --- legacy fig2_stack (pre-registry), copied verbatim ----------------------

Variant legacy_stack_variant(std::string name, bool leases, bool backoff) {
  Variant v;
  v.name = std::move(name);
  v.configure = [leases](MachineConfig& cfg) { cfg.leases_enabled = leases; };
  v.make = [leases, backoff](Machine& m, const BenchOptions& opt) {
    auto stack = std::make_shared<TreiberStack>(
        m, TreiberOptions{.use_lease = leases, .use_backoff = backoff});
    m.spawn(0, [stack](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kPrefill; ++i) co_await stack->push(ctx, static_cast<std::uint64_t>(i + 1));
    });
    m.run();
    return [stack, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        if (ctx.rng().next_bool(0.5)) {
          co_await stack->push(ctx, 7);
        } else {
          co_await stack->pop(ctx);
        }
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

TEST(WorkloadEquiv, Fig2StackConfigReproducesLegacyBytes) {
  const BenchOptions opt = small_opt(20);
  const std::string title = "fig2 equivalence";
  const std::string legacy = run_captured(
      title, {legacy_stack_variant("base", false, false), legacy_stack_variant("lease", true, false)},
      opt);
  const std::string via_config = run_captured(title,
                                              config_variants(R"(
[workload]
ds = treiber_stack
mix = 50/50
)",
                                                              {{"base", ""}, {"lease", ""}}),
                                              opt);
  EXPECT_EQ(legacy, via_config);
}

// --- legacy tbl_backoff_compare (pre-registry), copied verbatim -------------

Variant legacy_backoff_variant(std::string name, bool leases, bool backoff, Cycle bo_min,
                               Cycle bo_max) {
  Variant v;
  v.name = std::move(name);
  v.configure = [leases](MachineConfig& cfg) { cfg.leases_enabled = leases; };
  v.make = [leases, backoff, bo_min, bo_max](Machine& m, const BenchOptions& opt) {
    auto stack = std::make_shared<TreiberStack>(
        m, TreiberOptions{.use_lease = leases,
                          .use_backoff = backoff,
                          .backoff_min = bo_min,
                          .backoff_max = bo_max});
    m.spawn(0, [stack](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kPrefill; ++i) co_await stack->push(ctx, 5);
    });
    m.run();
    return [stack, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        if (ctx.rng().next_bool(0.5)) {
          co_await stack->push(ctx, 7);
        } else {
          co_await stack->pop(ctx);
        }
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

TEST(WorkloadEquiv, TblBackoffCompareConfigReproducesLegacyBytes) {
  const BenchOptions opt = small_opt(20);
  const std::string title = "backoff compare equivalence";
  const std::string legacy =
      run_captured(title,
                   {legacy_backoff_variant("base", false, false, 0, 0),
                    legacy_backoff_variant("backoff", false, true, 64, 4096),
                    legacy_backoff_variant("backoff-tuned", false, true, 256, 16384),
                    legacy_backoff_variant("lease", true, false, 0, 0)},
                   opt);
  auto spec_variant = [](const std::string& name, const std::string& policy, std::int64_t bo_min,
                         std::int64_t bo_max) {
    workload::WorkloadSpec spec;
    spec.ds = "treiber_stack";
    spec.mix = 0.5;
    spec.backoff_min = bo_min;
    spec.backoff_max = bo_max;
    return workload_variant(spec, policy, name);
  };
  const std::string via_registry = run_captured(title,
                                                {spec_variant("base", "base", 0, 0),
                                                 spec_variant("backoff", "backoff", 64, 4096),
                                                 spec_variant("backoff-tuned", "backoff", 256, 16384),
                                                 spec_variant("lease", "lease", 0, 0)},
                                                opt);
  EXPECT_EQ(legacy, via_registry);
  // The spec keys also parse from config text (the [workload] table the
  // sweep driver and configs/*.toml use).
  const std::string via_config = run_captured(title,
                                              config_variants(R"(
[workload]
ds = treiber_stack
mix = 50/50
use_backoff = true
backoff_min = 64
backoff_max = 4096
)",
                                                              {{"backoff", ""}}),
                                              opt);
  const std::string one_variant =
      run_captured(title, {spec_variant("backoff", "backoff", 64, 4096)}, opt);
  EXPECT_EQ(one_variant, via_config);
}

// --- legacy fig3_counter (pre-registry), copied verbatim --------------------

Variant legacy_counter_variant(std::string name, CounterLockKind kind, Cycle cs_work) {
  Variant v;
  v.name = std::move(name);
  v.configure = [](MachineConfig& cfg) { cfg.leases_enabled = true; };
  v.make = [kind, cs_work](Machine& m, const BenchOptions& opt) {
    auto counter = std::make_shared<LockedCounter>(m, kind, cs_work);
    return [counter, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        co_await counter->increment(ctx);
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

Variant legacy_cohort_variant(std::string name, bool lease, Cycle cs_work) {
  Variant v;
  v.name = std::move(name);
  v.configure = [lease](MachineConfig& cfg) { cfg.leases_enabled = lease; };
  v.make = [lease, cs_work](Machine& m, const BenchOptions& opt) {
    auto lock = std::make_shared<CohortTicketLock>(
        m, CohortOptions{.cluster_size = 8, .use_lease = lease});
    auto counter = std::make_shared<Addr>(m.heap().alloc_line());
    return [lock, counter, cs_work, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        co_await lock->lock(ctx);
        const std::uint64_t v2 = co_await ctx.load(*counter);
        if (cs_work > 0) co_await ctx.work(cs_work);
        co_await ctx.store(*counter, v2 + 1);
        co_await lock->unlock(ctx);
        ctx.count_op();
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

TEST(WorkloadEquiv, Fig3CounterConfigReproducesLegacyBytes) {
  const BenchOptions opt = small_opt(10);
  const std::string title = "fig3 counter equivalence";
  const std::string legacy =
      run_captured(title,
                   {legacy_counter_variant("tts", CounterLockKind::kTTS, 5),
                    legacy_counter_variant("tts+lease", CounterLockKind::kTTSLease, 5),
                    legacy_counter_variant("ticket", CounterLockKind::kTicket, 5),
                    legacy_counter_variant("clh", CounterLockKind::kCLH, 5),
                    legacy_counter_variant("mcs", CounterLockKind::kMCS, 5),
                    legacy_cohort_variant("cohort-ticket", false, 5),
                    legacy_cohort_variant("cohort+lease", true, 5)},
                   opt);
  const std::string via_config = run_captured(title,
                                              config_variants(R"(
[workload]
ds = counter
cs_work = 5
)",
                                                              {{"tts", ""},
                                                               {"tts+lease", ""},
                                                               {"ticket", ""},
                                                               {"clh", ""},
                                                               {"mcs", ""},
                                                               {"cohort-ticket", ""},
                                                               {"cohort+lease", ""}}),
                                              opt);
  EXPECT_EQ(legacy, via_config);
}

// --- legacy fig3_pq (pre-registry), copied verbatim -------------------------

template <typename Pq>
Variant legacy_pq_variant(std::string name, bool leases_enabled,
                          std::function<std::shared_ptr<Pq>(Machine&)> make_pq) {
  Variant v;
  v.name = std::move(name);
  v.configure = [leases_enabled](MachineConfig& cfg) { cfg.leases_enabled = leases_enabled; };
  v.make = [make_pq](Machine& m, const BenchOptions& opt) {
    auto pq = make_pq(m);
    m.spawn(0, [pq](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kPrefill; ++i) {
        co_await pq->insert(ctx, 1 + ctx.rng().next_below(1 << 16));
      }
    });
    m.run();
    return [pq, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        if (ctx.rng().next_bool(0.5)) {
          co_await pq->insert(ctx, 1 + ctx.rng().next_below(1 << 16));
        } else {
          co_await pq->delete_min(ctx);
        }
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

TEST(WorkloadEquiv, Fig3PqConfigReproducesLegacyBytes) {
  const BenchOptions opt = small_opt(10);
  const std::string title = "fig3 pq equivalence";
  const std::string legacy = run_captured(
      title,
      {legacy_pq_variant<LotanShavitPq>(
           "lotan-shavit (fine-grained)", false,
           [](Machine& m) { return std::make_shared<LotanShavitPq>(m); }),
       legacy_pq_variant<GlobalLockSkiplistPq>(
           "global-lock", false,
           [](Machine& m) { return std::make_shared<GlobalLockSkiplistPq>(m, false); }),
       legacy_pq_variant<GlobalLockSkiplistPq>(
           "global-lock+lease", true,
           [](Machine& m) { return std::make_shared<GlobalLockSkiplistPq>(m, true); }),
       legacy_pq_variant<SprayList>(
           "spraylist (relaxed)", false,
           [](Machine& m) { return std::make_shared<SprayList>(m); })},
      opt);
  const std::string via_config =
      run_captured(title,
                   config_variants(R"(
[workload]
ds = skiplist_pq
mix = 50/50
keys = 65536
dist = uniform
)",
                                   {{"lotan", "lotan-shavit (fine-grained)"},
                                    {"global-lock", ""},
                                    {"global-lock+lease", ""},
                                    {"spray", "spraylist (relaxed)"}}),
                   opt);
  EXPECT_EQ(legacy, via_config);
}

// --- legacy tbl_lowcontention (pre-registry), copied verbatim ---------------

constexpr std::uint64_t kLowcontKeyRange = 512;

// 20% updates (insert/remove split evenly), 80% searches.
template <typename SetT>
Task<void> legacy_mixed_ops(Ctx& ctx, std::shared_ptr<SetT> s, const BenchOptions& opt) {
  for (int i = 0; i < opt.ops_per_thread; ++i) {
    const std::uint64_t key = 1 + ctx.rng().next_below(kLowcontKeyRange);
    const std::uint64_t dice = ctx.rng().next_below(10);
    if (dice < 1) {
      co_await s->insert(ctx, key);
    } else if (dice < 2) {
      co_await s->remove(ctx, key);
    } else {
      co_await s->contains(ctx, key);
    }
    co_await think(ctx, opt);
  }
}

template <typename SetT>
Task<void> legacy_prefill_set(Ctx& ctx, std::shared_ptr<SetT> s) {
  for (int i = 0; i < kPrefill; ++i) {
    co_await s->insert(ctx, 1 + ctx.rng().next_below(kLowcontKeyRange));
  }
}

template <typename SetT, typename MakeFn>
Variant legacy_set_variant(std::string name, bool lease, MakeFn make_set) {
  Variant v;
  v.name = std::move(name);
  v.configure = [lease](MachineConfig& cfg) { cfg.leases_enabled = lease; };
  v.make = [lease, make_set](Machine& m, const BenchOptions& opt) {
    std::shared_ptr<SetT> s = make_set(m, lease);
    m.spawn(0, [s](Ctx& ctx) { return legacy_prefill_set(ctx, s); });
    m.run();
    return [s, &opt](Ctx& ctx, int) { return legacy_mixed_ops(ctx, s, opt); };
  };
  return v;
}

// Hash table uses a get() lookup instead of contains(); adapt.
struct LegacyHashAdapter {
  std::shared_ptr<LockedHashTable> h;
  Task<bool> insert(Ctx& ctx, std::uint64_t k) { co_return co_await h->insert(ctx, k, k); }
  Task<bool> remove(Ctx& ctx, std::uint64_t k) { co_return co_await h->remove(ctx, k); }
  Task<bool> contains(Ctx& ctx, std::uint64_t k) {
    std::optional<std::uint64_t> v = co_await h->get(ctx, k);
    co_return v.has_value();
  }
};

std::string lowcont_config(const std::string& ds, const std::string& extra = "") {
  return "[workload]\nds = " + ds + "\nmix = 20/80\nmix_shape = dice\nkeys = 512\n" + extra;
}

TEST(WorkloadEquiv, TblLowcontentionListConfigReproducesLegacyBytes) {
  const BenchOptions opt = small_opt(15);
  const std::string title = "lowcontention list equivalence";
  auto make_harris = [](Machine& m, bool lease) {
    return std::make_shared<HarrisList>(m, HarrisOptions{.use_lease = lease});
  };
  const std::string legacy =
      run_captured(title,
                   {legacy_set_variant<HarrisList>("base", false, make_harris),
                    legacy_set_variant<HarrisList>("lease", true, make_harris)},
                   opt);
  const std::string via_config = run_captured(
      title, config_variants(lowcont_config("harris_list"), {{"base", ""}, {"lease", ""}}), opt);
  EXPECT_EQ(legacy, via_config);
}

TEST(WorkloadEquiv, TblLowcontentionSkiplistConfigReproducesLegacyBytes) {
  const BenchOptions opt = small_opt(15);
  const std::string title = "lowcontention skiplist equivalence";
  auto make_skip = [](Machine& m, bool lease) {
    return std::make_shared<LockFreeSkipList>(m, LfSkipListOptions{.use_lease = lease});
  };
  const std::string legacy =
      run_captured(title,
                   {legacy_set_variant<LockFreeSkipList>("base", false, make_skip),
                    legacy_set_variant<LockFreeSkipList>("lease", true, make_skip)},
                   opt);
  const std::string via_config = run_captured(
      title, config_variants(lowcont_config("skiplist_set"), {{"base", ""}, {"lease", ""}}), opt);
  EXPECT_EQ(legacy, via_config);
}

TEST(WorkloadEquiv, TblLowcontentionBstConfigReproducesLegacyBytes) {
  const BenchOptions opt = small_opt(15);
  const std::string title = "lowcontention bst equivalence";
  auto make_bst = [](Machine& m, bool lease) {
    return std::make_shared<ExternalBst>(m, BstOptions{.use_lease = lease});
  };
  const std::string legacy =
      run_captured(title,
                   {legacy_set_variant<ExternalBst>("base", false, make_bst),
                    legacy_set_variant<ExternalBst>("lease", true, make_bst)},
                   opt);
  const std::string via_config = run_captured(
      title, config_variants(lowcont_config("bst"), {{"base", ""}, {"lease", ""}}), opt);
  EXPECT_EQ(legacy, via_config);
}

TEST(WorkloadEquiv, TblLowcontentionHashConfigReproducesLegacyBytes) {
  const BenchOptions opt = small_opt(15);
  const std::string title = "lowcontention hash equivalence";
  auto make_hash = [](Machine& m, bool lease) {
    auto h = std::make_shared<LockedHashTable>(
        m, HashTableOptions{.buckets = 1024, .stripes = 128, .use_lease = lease});
    return std::make_shared<LegacyHashAdapter>(LegacyHashAdapter{h});
  };
  const std::string legacy =
      run_captured(title,
                   {legacy_set_variant<LegacyHashAdapter>("base", false, make_hash),
                    legacy_set_variant<LegacyHashAdapter>("lease", true, make_hash)},
                   opt);
  const std::string via_config = run_captured(
      title,
      config_variants(lowcont_config("hashtable", "ht_buckets = 1024\nht_stripes = 128\n"),
                      {{"base", ""}, {"lease", ""}}),
      opt);
  EXPECT_EQ(legacy, via_config);
}

// --- flag aliasing (satellite: dash <-> underscore both directions) ---------

TEST(WorkloadEquiv, FlagSpellingsAliasBothWays) {
  FlagSet flags{"test"};
  int sim_threads = 0;   // registered with a dash in parse_flags
  int key_range = 0;     // registered with an underscore
  flags.add("sim-threads", &sim_threads, "x");
  flags.add("key_range", &key_range, "y");
  const char* argv1[] = {"test", "--sim_threads=3", "--key-range=9"};
  flags.parse(3, const_cast<char**>(argv1));
  EXPECT_EQ(sim_threads, 3);
  EXPECT_EQ(key_range, 9);
  const char* argv2[] = {"test", "--sim-threads=4", "--key_range=1"};
  flags.parse(3, const_cast<char**>(argv2));
  EXPECT_EQ(sim_threads, 4);
  EXPECT_EQ(key_range, 1);
}

}  // namespace
}  // namespace lrsim::bench
