// Copyright (c) 2026 lrsim authors. MIT license.
//
// Long-horizon randomized stress for every concurrent structure: heavier
// thread counts, mixed op streams, multiple seeds, full conservation
// oracles at quiescence. These runs are bigger than the per-structure unit
// suites and are the regression net for subtle interleaving bugs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "ds/harris_list.hpp"
#include "ds/ms_queue.hpp"
#include "ds/skiplist_pq.hpp"
#include "ds/skiplist_set.hpp"
#include "ds/treiber_stack.hpp"
#include "ds/two_lock_queue.hpp"
#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

struct StressCase {
  const char* name;
  std::uint64_t seed;
  bool leases;
};

class DsStress : public ::testing::TestWithParam<StressCase> {};

TEST_P(DsStress, StackConservation) {
  const auto& p = GetParam();
  constexpr int kThreads = 16;
  Machine m{small_config(kThreads, p.leases), p.seed};
  TreiberStack s{m, {.use_lease = p.leases}};
  long pushes = 0, pops = 0;
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 60; ++i) {
      if (ctx.rng().next_bool(0.55)) {
        co_await s.push(ctx, 1 + ctx.rng().next_below(1000));
        ++pushes;
      } else {
        std::optional<std::uint64_t> v = co_await s.pop(ctx);
        if (v.has_value()) ++pops;
      }
    }
  });
  EXPECT_EQ(s.snapshot().size(), static_cast<std::size_t>(pushes - pops));
}

TEST_P(DsStress, QueueConservationAndUniqueness) {
  const auto& p = GetParam();
  constexpr int kThreads = 16;
  Machine m{small_config(kThreads, p.leases), p.seed};
  MsQueue q{m, {.lease_mode = p.leases ? QueueLeaseMode::kSingle : QueueLeaseMode::kNone}};
  std::uint64_t counter = 0;  // unique payloads, host-side dispenser
  long enqueues = 0;
  std::multiset<std::uint64_t> dequeued;
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 60; ++i) {
      if (ctx.rng().next_bool(0.55)) {
        co_await q.enqueue(ctx, ++counter);
        ++enqueues;
      } else {
        std::optional<std::uint64_t> v = co_await q.dequeue(ctx);
        if (v.has_value()) dequeued.insert(*v);
      }
    }
  });
  std::multiset<std::uint64_t> all(dequeued);
  for (std::uint64_t v : q.snapshot()) all.insert(v);
  EXPECT_EQ(all.size(), static_cast<std::size_t>(enqueues));
  std::set<std::uint64_t> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), all.size());
}

TEST_P(DsStress, TwoLockQueueConservation) {
  const auto& p = GetParam();
  constexpr int kThreads = 12;
  Machine m{small_config(kThreads, p.leases), p.seed};
  TwoLockQueue q{m, {.use_lease = p.leases}};
  std::uint64_t counter = 0;
  long enqueues = 0;
  std::multiset<std::uint64_t> dequeued;
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 50; ++i) {
      if (ctx.rng().next_bool(0.5)) {
        co_await q.enqueue(ctx, ++counter);
        ++enqueues;
      } else {
        std::optional<std::uint64_t> v = co_await q.dequeue(ctx);
        if (v.has_value()) dequeued.insert(*v);
      }
    }
  });
  std::multiset<std::uint64_t> all(dequeued);
  for (std::uint64_t v : q.snapshot()) all.insert(v);
  EXPECT_EQ(all.size(), static_cast<std::size_t>(enqueues));
}

TEST_P(DsStress, LazySkipListSetSemantics) {
  const auto& p = GetParam();
  constexpr int kThreads = 12;
  Machine m{small_config(kThreads, p.leases), p.seed};
  LazySkipList s{m};
  int net_inserts = 0;
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 40; ++i) {
      const std::uint64_t key = 1 + ctx.rng().next_below(64);
      if (ctx.rng().next_bool(0.5)) {
        const bool ok = co_await s.insert(ctx, key);
        if (ok) ++net_inserts;
      } else {
        const bool ok = co_await s.remove(ctx, key);
        if (ok) --net_inserts;
      }
    }
  });
  const auto snap = s.snapshot();
  EXPECT_EQ(static_cast<int>(snap.size()), net_inserts);
  EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end()));
  std::set<std::uint64_t> unique(snap.begin(), snap.end());
  EXPECT_EQ(unique.size(), snap.size());
}

TEST_P(DsStress, HarrisListSetSemantics) {
  const auto& p = GetParam();
  constexpr int kThreads = 12;
  Machine m{small_config(kThreads, p.leases), p.seed};
  HarrisList s{m, {.use_lease = p.leases}};
  int net_inserts = 0;
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 40; ++i) {
      const std::uint64_t key = 1 + ctx.rng().next_below(48);
      if (ctx.rng().next_bool(0.5)) {
        const bool ok = co_await s.insert(ctx, key);
        if (ok) ++net_inserts;
      } else {
        const bool ok = co_await s.remove(ctx, key);
        if (ok) --net_inserts;
      }
    }
  });
  const auto snap = s.snapshot();
  EXPECT_EQ(static_cast<int>(snap.size()), net_inserts);
  EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end()));
}

TEST_P(DsStress, LockFreeSkipListMixedWithSearches) {
  const auto& p = GetParam();
  constexpr int kThreads = 12;
  Machine m{small_config(kThreads, p.leases), p.seed};
  LockFreeSkipList s{m, {.use_lease = p.leases}};
  int net_inserts = 0;
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 40; ++i) {
      const std::uint64_t key = 1 + ctx.rng().next_below(64);
      const std::uint64_t dice = ctx.rng().next_below(10);
      if (dice < 3) {
        const bool ok = co_await s.insert(ctx, key);
        if (ok) ++net_inserts;
      } else if (dice < 6) {
        const bool ok = co_await s.remove(ctx, key);
        if (ok) --net_inserts;
      } else {
        co_await s.contains(ctx, key);
      }
    }
  });
  const auto snap = s.snapshot();
  EXPECT_EQ(static_cast<int>(snap.size()), net_inserts);
  EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end()));
}

TEST_P(DsStress, LotanShavitDrainEndsSorted) {
  const auto& p = GetParam();
  constexpr int kThreads = 8;
  Machine m{small_config(kThreads, p.leases), p.seed};
  LotanShavitPq pq{m};
  // Phase 1: concurrent inserts.
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 25; ++i) co_await pq.insert(ctx, 1 + ctx.rng().next_below(500));
  });
  // Phase 2: one thread drains; values must come out sorted.
  std::vector<std::uint64_t> drained;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    while (true) {
      std::optional<std::uint64_t> v = co_await pq.delete_min(ctx);
      if (!v.has_value()) co_return;
      drained.push_back(*v);
    }
  });
  m.run(2'000'000'000);
  ASSERT_TRUE(m.all_done());
  EXPECT_EQ(drained.size(), static_cast<std::size_t>(kThreads) * 25);
  EXPECT_TRUE(std::is_sorted(drained.begin(), drained.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DsStress,
                         ::testing::Values(StressCase{"seed1_base", 101, false},
                                           StressCase{"seed1_lease", 101, true},
                                           StressCase{"seed2_base", 202, false},
                                           StressCase{"seed2_lease", 202, true},
                                           StressCase{"seed3_lease", 303, true}),
                         [](const ::testing::TestParamInfo<StressCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace lrsim
