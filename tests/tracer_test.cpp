// Copyright (c) 2026 lrsim authors. MIT license.
//
// Tracer unit tests: ring-buffer capacity/drop accounting, line filtering,
// per-line history extraction, and the Machine integration.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

TEST(Tracer, RingKeepsNewestAndCountsDrops) {
  Tracer tr{/*capacity=*/4};
  for (int i = 0; i < 10; ++i) {
    tr.emit(TraceEvent::kCpuLoad, static_cast<Cycle>(i), 0, static_cast<LineId>(i));
  }
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.dropped(), 6u);
  const auto recs = tr.records();
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(recs.front().line, 6u);  // oldest survivor
  EXPECT_EQ(recs.back().line, 9u);   // newest
}

TEST(Tracer, ZeroCapacityDropsEveryRecord) {
  // Regression: a zero-capacity ring used to pop_front() an empty deque on
  // the first emit (UB). It must instead keep nothing and count every
  // record as dropped.
  Tracer tr{/*capacity=*/0};
  for (int i = 0; i < 3; ++i) {
    tr.emit(TraceEvent::kCpuLoad, static_cast<Cycle>(i), 0, 1);
  }
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.dropped(), 3u);
  EXPECT_TRUE(tr.records().empty());
}

TEST(Tracer, LineFilterKeepsOnlyMatchesWithoutConsumingCapacity) {
  Tracer tr{/*capacity=*/4, /*line_filter=*/LineId{5}};
  // 5 matching emits interleaved with 6 non-matching ones.
  for (int i = 0; i < 5; ++i) {
    tr.emit(TraceEvent::kCpuStore, static_cast<Cycle>(2 * i), 0, 5, static_cast<std::uint64_t>(i));
    tr.emit(TraceEvent::kCpuStore, static_cast<Cycle>(2 * i + 1), 1, 6);
  }
  tr.emit(TraceEvent::kProbe, 100, 1, 7);
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.dropped(), 1u);  // only the 5th matching emit displaced one
  for (const TraceRecord& r : tr.records()) EXPECT_EQ(r.line, 5u);
}

TEST(Tracer, DumpMentionsDroppedRecords) {
  Tracer tr{/*capacity=*/2};
  for (int i = 0; i < 5; ++i) tr.emit(TraceEvent::kLease, static_cast<Cycle>(i), 0, 1);
  std::ostringstream os;
  tr.dump(os);
  EXPECT_NE(os.str().find("3 earlier records dropped"), std::string::npos);
}

TEST(Tracer, LastForLineReturnsMostRecentOldestFirst) {
  Tracer tr{/*capacity=*/64};
  for (int i = 0; i < 6; ++i) {
    tr.emit(TraceEvent::kCpuLoad, static_cast<Cycle>(10 * i), 0, 2, static_cast<std::uint64_t>(i));
    tr.emit(TraceEvent::kCpuLoad, static_cast<Cycle>(10 * i + 5), 0, 3);
  }
  const auto h = tr.last_for_line(2, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].info, 4u);  // second-newest line-2 record first (oldest-first order)
  EXPECT_EQ(h[1].info, 5u);
  EXPECT_TRUE(tr.last_for_line(999, 8).empty());
  EXPECT_EQ(tr.last_for_line(3, 100).size(), 6u);  // n larger than matches
}

TEST(Tracer, MachineLineFilterRestrictsRecords) {
  Machine m{small_config(2, /*leases=*/true), /*seed=*/3};
  const Addr a = m.heap().alloc_line();
  const Addr b = m.heap().alloc_line();
  Tracer& tr = m.enable_tracing(256, line_of(a));
  testing::run_workers(m, 2, [&](Ctx& ctx, int) -> Task<void> {
    co_await ctx.lease(a, 500);
    co_await ctx.faa(a, 1);
    co_await ctx.release(a);
    co_await ctx.store(b, 9);
  });
  EXPECT_GT(tr.size(), 0u);
  for (const TraceRecord& r : tr.records()) EXPECT_EQ(r.line, line_of(a));
}

}  // namespace
}  // namespace lrsim
