// Copyright (c) 2026 lrsim authors. MIT license.
//
// TL2-lite transactions: serializability via the conserved-total invariant,
// abort accounting, and lease-mode behaviour (including software MultiLease).
#include <gtest/gtest.h>

#include "ds/tl2.hpp"
#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

class Tl2Modes : public ::testing::TestWithParam<TxLeaseMode> {};

TEST_P(Tl2Modes, TotalValueConserved) {
  constexpr int kThreads = 8;
  constexpr int kTxns = 25;
  Machine m{small_config(kThreads, true)};
  Tl2Bench bench{m, {.num_objects = 10, .lease_mode = GetParam()}};
  const std::uint64_t before = bench.total_value();
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < kTxns; ++i) co_await bench.run_transaction(ctx);
  });
  EXPECT_EQ(bench.total_value(), before);
  const Stats s = m.total_stats();
  EXPECT_EQ(s.txn_commits, static_cast<std::uint64_t>(kThreads) * kTxns);
}

INSTANTIATE_TEST_SUITE_P(Modes, Tl2Modes,
                         ::testing::Values(TxLeaseMode::kNone, TxLeaseMode::kFirst,
                                           TxLeaseMode::kBoth),
                         [](const ::testing::TestParamInfo<TxLeaseMode>& info) {
                           switch (info.param) {
                             case TxLeaseMode::kNone: return "base";
                             case TxLeaseMode::kFirst: return "lease_first";
                             case TxLeaseMode::kBoth: return "multilease";
                           }
                           return "unknown";
                         });

TEST(Tl2, SoftwareMultiLeaseAlsoConserves) {
  constexpr int kThreads = 8;
  MachineConfig cfg = small_config(kThreads, true);
  cfg.software_multilease = true;
  Machine m{cfg};
  Tl2Bench bench{m, {.lease_mode = TxLeaseMode::kBoth}};
  const std::uint64_t before = bench.total_value();
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 20; ++i) co_await bench.run_transaction(ctx);
  });
  EXPECT_EQ(bench.total_value(), before);
}

TEST(Tl2, MultiLeaseReducesAbortRate) {
  // The Figure 4 claim: leases "significantly decrease the abort rate".
  constexpr int kThreads = 16;
  constexpr int kTxns = 25;
  auto abort_rate = [&](TxLeaseMode mode) {
    Machine m{small_config(kThreads, true)};
    Tl2Bench bench{m, {.num_objects = 4, .lease_mode = mode}};  // high conflict
    testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < kTxns; ++i) co_await bench.run_transaction(ctx);
    });
    const Stats s = m.total_stats();
    return static_cast<double>(s.txn_aborts) /
           static_cast<double>(s.txn_commits + s.txn_aborts);
  };
  const double base = abort_rate(TxLeaseMode::kNone);
  const double leased = abort_rate(TxLeaseMode::kBoth);
  EXPECT_GT(base, 0.05) << "baseline should conflict";
  EXPECT_LT(leased, base);
}

TEST(Tl2, UnlockBumpsVersion) {
  Machine m{small_config(1, false)};
  Tl2Bench bench{m, {.num_objects = 2}};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (int i = 0; i < 5; ++i) co_await bench.run_transaction(ctx);
  });
  m.run();
  EXPECT_EQ(m.total_stats().txn_commits, 5u);
  EXPECT_EQ(m.total_stats().txn_aborts, 0u);  // single thread never aborts
}

}  // namespace
}  // namespace lrsim
