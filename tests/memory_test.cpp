// Copyright (c) 2026 lrsim authors. MIT license.
//
// Unit tests for the simulated memory backing store and the heap allocator.
#include <gtest/gtest.h>

#include <set>

#include "mem/heap.hpp"
#include "mem/memory.hpp"

namespace lrsim {
namespace {

TEST(SimMemory, UnwrittenReadsAsZero) {
  SimMemory m;
  EXPECT_EQ(m.read(0x1000), 0u);
  EXPECT_EQ(m.resident_lines(), 0u);
}

TEST(SimMemory, ReadBackWrittenValue) {
  SimMemory m;
  m.write(0x1000, 0xdeadbeefull);
  EXPECT_EQ(m.read(0x1000), 0xdeadbeefull);
}

TEST(SimMemory, WordsWithinLineAreIndependent) {
  SimMemory m;
  for (int w = 0; w < kWordsPerLine; ++w) m.write(0x2000 + 8 * static_cast<Addr>(w), 100u + w);
  for (int w = 0; w < kWordsPerLine; ++w) {
    EXPECT_EQ(m.read(0x2000 + 8 * static_cast<Addr>(w)), 100u + static_cast<std::uint64_t>(w));
  }
  EXPECT_EQ(m.resident_lines(), 1u);
}

TEST(SimMemory, LineExistsTracksFirstWrite) {
  SimMemory m;
  EXPECT_FALSE(m.line_exists(line_of(0x3000)));
  m.write(0x3000, 1);
  EXPECT_TRUE(m.line_exists(line_of(0x3000)));
}

TEST(SimHeap, AllocationsAreWordAlignedAndDisjoint) {
  SimHeap h;
  std::set<Addr> addrs;
  Addr prev_end = 0;
  for (int i = 0; i < 100; ++i) {
    const Addr a = h.alloc(24);
    EXPECT_TRUE(is_word_aligned(a));
    EXPECT_GE(a, prev_end);
    prev_end = a + 24;
    EXPECT_TRUE(addrs.insert(a).second);
  }
}

TEST(SimHeap, LineAlignedAllocation) {
  SimHeap h;
  for (int i = 0; i < 20; ++i) {
    const Addr a = h.alloc_line(8);
    EXPECT_EQ(a & (kLineSize - 1), 0u);
  }
}

TEST(SimHeap, LineAllocsDoNotShareLines) {
  SimHeap h;
  std::set<LineId> lines;
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(lines.insert(line_of(h.alloc_line())).second);
}

TEST(SimHeap, MultiLineBlocks) {
  SimHeap h;
  const Addr a = h.alloc_line(200);  // 4 lines
  const Addr b = h.alloc_line(8);
  EXPECT_GE(b, a + 4 * kLineSize);
}

TEST(SimHeap, FreeListRecyclesLineBlocks) {
  SimHeap h;
  const Addr a = h.alloc_line(16);
  h.free_line(a, 16);
  const Addr b = h.alloc_line(16);
  EXPECT_EQ(a, b);
}

TEST(SimHeap, BaseKeepsNullDistinct) {
  SimHeap h;
  EXPECT_GT(h.alloc(8), 0u);  // 0 stays usable as a null simulated pointer
}

TEST(SimHeap, HighWaterMonotone) {
  SimHeap h;
  const Addr w0 = h.high_water();
  h.alloc(1024);
  EXPECT_GT(h.high_water(), w0);
}

}  // namespace
}  // namespace lrsim
