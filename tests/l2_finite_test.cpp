// Copyright (c) 2026 lrsim authors. MIT license.
//
// Finite inclusive L2: capacity evictions, back-invalidation of L1 copies,
// dirty writeback on inclusion victims, and the lease interaction (a lease
// on a victim line is force-released — capacity overrides leases).
#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace lrsim {
namespace {

MachineConfig tiny_l2_config(int cores, bool leases, int sets = 2, int ways = 2) {
  MachineConfig cfg = testing::small_config(cores, leases);
  cfg.l2_finite = true;
  cfg.l2_sets = sets;
  cfg.l2_ways = ways;
  return cfg;
}

// Lines that all map to L2 set 0 when l2_sets == 2 (line % 2 == 0).
Addr set0_line(int i) { return line_base(static_cast<LineId>(10000 + 2 * i)); }

TEST(L2Finite, CapacityEvictionMakesReAccessPayDramAgain) {
  Machine m{tiny_l2_config(1, false)};
  Cycle first = 0, again = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    Cycle t0 = ctx.now();
    co_await ctx.load(set0_line(0));
    first = ctx.now() - t0;
    // Two more set-0 residents evict line 0 from the 2-way L2 set...
    co_await ctx.load(set0_line(1));
    co_await ctx.load(set0_line(2));
    // ...and from our own L1 (back-invalidation), so this is a fresh miss
    // all the way to DRAM.
    t0 = ctx.now();
    co_await ctx.load(set0_line(0));
    again = ctx.now() - t0;
  });
  m.run();
  EXPECT_EQ(first, 142u);  // cold DRAM path (model golden)
  // Evicted: pays the full DRAM path again (plus the nested inclusion
  // eviction its own refill triggers in this tiny 4-line L2).
  EXPECT_GE(again, 142u);
  EXPECT_GE(m.total_stats().l2_evictions, 1u);
  EXPECT_GE(m.total_stats().dram_accesses, 4u);
}

TEST(L2Finite, UnboundedL2NeverReFetches) {
  MachineConfig cfg = testing::small_config(1, false);  // default: unbounded
  Machine m{cfg};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (int i = 0; i < 8; ++i) co_await ctx.load(set0_line(i));
  });
  m.run();
  EXPECT_EQ(m.total_stats().l2_evictions, 0u);
  EXPECT_EQ(m.total_stats().dram_accesses, 8u);  // one per distinct line only
}

TEST(L2Finite, BackInvalidationRemovesL1CopiesInclusively) {
  Machine m{tiny_l2_config(2, false)};
  Addr a = set0_line(0);
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.store(a, 7);  // M at core 0
    co_await ctx.work(100);
    // Displace `a` from the L2 with other set-0 lines.
    co_await ctx.load(set0_line(1));
    co_await ctx.load(set0_line(2));
    co_await ctx.work(100);
    EXPECT_EQ(ctx.controller().line_state(line_of(a)), LineState::I)
        << "inclusion: the L1 copy must have been back-invalidated";
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(2000);
    // The dirty data was written back during the inclusion eviction.
    const std::uint64_t v = co_await ctx.load(a);
    EXPECT_EQ(v, 7u);
  });
  m.run(10'000'000);
  ASSERT_TRUE(m.all_done());
  EXPECT_GE(m.total_stats().msgs_wb, 1u);
  EXPECT_EQ(m.directory().line_state(line_of(a)), Directory::LineSt::kShared);
}

TEST(L2Finite, VictimLeaseIsForceReleasedNotWedged) {
  MachineConfig cfg = tiny_l2_config(2, true);
  cfg.max_lease_time = 50'000;  // would wedge for 50k cycles if parked
  Machine m{cfg};
  Addr a = set0_line(0);
  Cycle refills_done = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(a, 50'000);
    co_await ctx.store(a, 1);
    co_await ctx.work(30'000);  // hold the lease way past the eviction
    co_await ctx.release(a);
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(500);
    // Force L2 pressure on set 0: the leased line becomes the victim.
    co_await ctx.load(set0_line(1));
    co_await ctx.load(set0_line(2));
    refills_done = ctx.now();
  });
  m.run(10'000'000);
  ASSERT_TRUE(m.all_done());
  // The refill did NOT wait for the 50k-cycle lease: the back-invalidation
  // force-released it.
  EXPECT_LT(refills_done, 2000u);
  EXPECT_GE(m.total_stats().releases_evicted, 1u);
  EXPECT_EQ(m.memory().read(a), 1u);  // dirty data survived via writeback
}

TEST(L2Finite, SharersAreAllBackInvalidated) {
  constexpr int kCores = 4;
  Machine m{tiny_l2_config(kCores, false)};
  Addr a = set0_line(0);
  for (int c = 0; c < kCores - 1; ++c) {
    m.spawn(c, [&](Ctx& ctx) -> Task<void> {
      co_await ctx.load(a);       // everyone shares `a`
      co_await ctx.work(5000);
    });
  }
  m.spawn(kCores - 1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(1000);
    co_await ctx.load(set0_line(1));
    co_await ctx.load(set0_line(2));  // evicts `a`
    co_await ctx.work(100);
    for (int c = 0; c < kCores - 1; ++c) {
      EXPECT_EQ(m.controller(c).line_state(line_of(a)), LineState::I) << "core " << c;
    }
  });
  m.run(10'000'000);
  ASSERT_TRUE(m.all_done());
}

TEST(L2Finite, ConservationUnderHeavyCapacityPressure) {
  // Random RMW traffic over more lines than the L2 holds: values must stay
  // exact through every eviction/writeback/refill cycle.
  constexpr int kCores = 6;
  MachineConfig cfg = tiny_l2_config(kCores, true, /*sets=*/2, /*ways=*/2);
  Machine m{cfg};
  std::vector<Addr> lines;
  for (int i = 0; i < 10; ++i) lines.push_back(set0_line(i));
  std::vector<std::uint64_t> expected(lines.size(), 0);
  testing::run_workers(m, kCores, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 40; ++i) {
      const std::size_t k = ctx.rng().next_below(lines.size());
      if (ctx.rng().next_bool(0.3)) {
        co_await ctx.lease(lines[k], 1000);
        co_await ctx.faa(lines[k], 1);
        co_await ctx.release(lines[k]);
      } else {
        co_await ctx.faa(lines[k], 1);
      }
      ++expected[k];
    }
  });
  for (std::size_t k = 0; k < lines.size(); ++k) {
    EXPECT_EQ(m.memory().read(lines[k]), expected[k]) << "line " << k;
  }
  EXPECT_GT(m.total_stats().l2_evictions, 0u);
}

TEST(L2Finite, ResidencyIntrospection) {
  Machine m{tiny_l2_config(1, false)};
  Addr a = set0_line(0);
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.load(a);
    EXPECT_TRUE(m.directory().l2_resident(line_of(a)));
    co_await ctx.load(set0_line(1));
    co_await ctx.load(set0_line(2));
    EXPECT_FALSE(m.directory().l2_resident(line_of(a)));
  });
  m.run();
}

}  // namespace
}  // namespace lrsim
