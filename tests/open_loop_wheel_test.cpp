// Copyright (c) 2026 lrsim authors. MIT license.
//
// Fuzzes the timer-wheel open-loop engine against the linear-scan
// reference (registry.hpp: OpenLoopEngine): for every combination of
// seed x arrival process x client count x sim-thread count the two
// engines must produce *identical* simulations — same final cycle, same
// aggregate Stats — because they serve the exact same op sequence
// (earliest next_arrival, ties to the lowest client id). Timer-wheel
// unit tests live in tests/timer_wheel_test.cpp.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/machine.hpp"
#include "workload/registry.hpp"
#include "workload/spec.hpp"

namespace lrsim {
namespace {

using workload::OpenLoopEngine;

/// Restores the process-global engine selection on scope exit so a failing
/// test cannot leak kLinearScan into later tests.
struct EngineGuard {
  OpenLoopEngine saved = workload::open_loop_engine();
  ~EngineGuard() { workload::set_open_loop_engine(saved); }
};

struct RunResult {
  Stats stats;
  Cycle cycles = 0;
};

RunResult run_with_engine(const workload::WorkloadSpec& spec, const std::string& policy,
                          int threads, int sim_threads, OpenLoopEngine engine) {
  EngineGuard guard;
  workload::set_open_loop_engine(engine);
  const workload::WorkloadRun wr = workload::make_workload(spec, policy);
  MachineConfig cfg;
  cfg.num_cores = threads;
  if (wr.configure) wr.configure(cfg);
  Machine m{cfg, spec.seed};
  m.set_sim_threads(sim_threads);
  auto worker = wr.build(m);
  const Stats prefill = m.total_stats();
  const Cycle start = m.events().now();
  for (int t = 0; t < threads; ++t) {
    m.spawn(t, [worker, t](Ctx& ctx) { return worker(ctx, t); });
  }
  m.run();
  EXPECT_TRUE(m.all_done());
  RunResult r;
  r.stats = m.total_stats();
  r.stats -= prefill;
  r.cycles = m.events().now() - start;
  return r;
}

void expect_engines_match(const workload::WorkloadSpec& spec, const std::string& policy,
                          int threads, int sim_threads) {
  const RunResult wheel = run_with_engine(spec, policy, threads, sim_threads,
                                          OpenLoopEngine::kTimerWheel);
  const RunResult linear = run_with_engine(spec, policy, threads, sim_threads,
                                           OpenLoopEngine::kLinearScan);
  EXPECT_EQ(wheel.cycles, linear.cycles)
      << "ds=" << spec.ds << " policy=" << policy << " clients=" << spec.clients
      << " seed=" << spec.seed << " arrival=" << static_cast<int>(spec.arrival.kind)
      << " sim_threads=" << sim_threads;
  EXPECT_EQ(wheel.stats, linear.stats)
      << "ds=" << spec.ds << " policy=" << policy << " clients=" << spec.clients
      << " seed=" << spec.seed << " arrival=" << static_cast<int>(spec.arrival.kind)
      << " sim_threads=" << sim_threads;
}

workload::WorkloadSpec open_spec(const std::string& ds, workload::ArrivalKind arrival, Cycle period,
                                 int clients, int ops, std::uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.ds = ds;
  spec.arrival.kind = arrival;
  spec.arrival.period = period;
  spec.clients = clients;
  spec.ops = ops;
  spec.seed = seed;
  return spec;
}

TEST(OpenLoopWheel, MatchesLinearScanAcrossSeedsArrivalsAndClientCounts) {
  // Fixed arrivals make every client on a core tie each period (worst case
  // for the tie-break contract); poisson gaps can round to zero (same-cycle
  // re-arrival). clients = 1 and 7 leave some of the 4 cores idle or
  // unevenly loaded; 64 gives 16 clients per core.
  const int kThreads = 4;
  for (const std::uint64_t seed : {1ull, 7ull}) {
    for (const int clients : {1, 7, 64}) {
      for (const int sim_threads : {0, 2}) {
        expect_engines_match(
            open_spec("counter", workload::ArrivalKind::kFixed, 50, clients, 6, seed), "tts",
            kThreads, sim_threads);
        expect_engines_match(
            open_spec("counter", workload::ArrivalKind::kPoisson, 80, clients, 6, seed), "tts",
            kThreads, sim_threads);
      }
    }
  }
}

TEST(OpenLoopWheel, MatchesLinearScanOnAKeyedStructure) {
  // A stack exercises the two-op mix draw path (push/pop from one
  // next_double per op) under both engines.
  for (const std::uint64_t seed : {1ull, 7ull}) {
    workload::WorkloadSpec spec =
        open_spec("treiber_stack", workload::ArrivalKind::kPoisson, 60, 16, 5, seed);
    spec.mix = 0.5;
    expect_engines_match(spec, "base", /*threads=*/4, /*sim_threads=*/0);
    expect_engines_match(spec, "lease", /*threads=*/4, /*sim_threads=*/2);
  }
}

TEST(OpenLoopWheel, MatchesLinearScanAtTenThousandClients) {
  // The scale point: 2500 clients per core, 2 ops each. The linear oracle
  // is O(clients) per op here, so keep the op count tiny.
  expect_engines_match(open_spec("counter", workload::ArrivalKind::kFixed, 64, 10000, 2, 1), "tts",
                       /*threads=*/4, /*sim_threads=*/0);
  expect_engines_match(open_spec("counter", workload::ArrivalKind::kPoisson, 96, 10000, 2, 1), "tts",
                       /*threads=*/4, /*sim_threads=*/2);
}

}  // namespace
}  // namespace lrsim
