// Copyright (c) 2026 lrsim authors. MIT license.
//
// MOESI protocol tests (Section 8): the Owned state keeps a downgraded
// dirty line at its owner (no writeback) and supplies readers from there;
// a lease can never coexist with O — leasing an O line upgrades it to M.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace lrsim {
namespace {

MachineConfig moesi_config(int cores, bool leases) {
  MachineConfig cfg = testing::small_config(cores, leases);
  cfg.protocol = CoherenceProtocol::kMOESI;
  return cfg;
}

TEST(Moesi, ReadOfDirtyLineLeavesOwnerInOwned) {
  Machine m{moesi_config(2, false)};
  Addr a = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.load(a);      // E grant
    co_await ctx.store(a, 7);  // silent E->M
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(500);
    const std::uint64_t v = co_await ctx.load(a);
    EXPECT_EQ(v, 7u);
  });
  m.run();
  EXPECT_EQ(m.controller(0).line_state(line_of(a)), LineState::O);
  EXPECT_EQ(m.controller(1).line_state(line_of(a)), LineState::S);
  EXPECT_EQ(m.directory().line_state(line_of(a)), Directory::LineSt::kOwned);
  EXPECT_EQ(m.directory().owner_of(line_of(a)), 0);
  EXPECT_TRUE(m.directory().has_sharer(line_of(a), 1));
  // The whole point of O: the dirty data was NOT written back.
  EXPECT_EQ(m.total_stats().msgs_wb, 0u);
}

TEST(Moesi, MesiWouldHaveWrittenBack) {
  MachineConfig cfg = testing::small_config(2, false);
  cfg.protocol = CoherenceProtocol::kMESI;
  Machine m{cfg};
  Addr a = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.load(a);
    co_await ctx.store(a, 7);
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(500);
    co_await ctx.load(a);
  });
  m.run();
  EXPECT_EQ(m.total_stats().msgs_wb, 1u);  // contrast with the MOESI test
}

TEST(Moesi, OwnerSuppliesSubsequentReaders) {
  constexpr int kCores = 4;
  Machine m{moesi_config(kCores, false)};
  Addr a = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.load(a);
    co_await ctx.store(a, 9);
  });
  for (int c = 1; c < kCores; ++c) {
    m.spawn(c, [&, c](Ctx& ctx) -> Task<void> {
      co_await ctx.work(static_cast<Cycle>(500 * c));
      const std::uint64_t v = co_await ctx.load(a);
      EXPECT_EQ(v, 9u);
    });
  }
  m.run();
  EXPECT_EQ(m.controller(0).line_state(line_of(a)), LineState::O);
  for (int c = 1; c < kCores; ++c) {
    EXPECT_TRUE(m.directory().has_sharer(line_of(a), c)) << c;
  }
  EXPECT_EQ(m.total_stats().msgs_wb, 0u);  // never flushed
}

TEST(Moesi, WriterInvalidatesOwnerAndSharers) {
  Machine m{moesi_config(3, false)};
  Addr a = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.load(a);
    co_await ctx.store(a, 5);  // M at core 0
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(500);
    co_await ctx.load(a);  // core 0 -> O, core 1 -> S
  });
  m.spawn(2, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(1500);
    co_await ctx.store(a, 6);  // must kill both copies
  });
  m.run();
  EXPECT_EQ(m.controller(0).line_state(line_of(a)), LineState::I);
  EXPECT_EQ(m.controller(1).line_state(line_of(a)), LineState::I);
  EXPECT_EQ(m.controller(2).line_state(line_of(a)), LineState::M);
  EXPECT_EQ(m.memory().read(a), 6u);
}

TEST(Moesi, OwnerUpgradesInPlaceWithoutDataTransfer) {
  Machine m{moesi_config(2, false)};
  Addr a = m.heap().alloc_line();
  Cycle upgrade_cost = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.load(a);
    co_await ctx.store(a, 5);  // M
    co_await ctx.work(2000);   // wait for the reader to downgrade us to O
    const Cycle t0 = ctx.now();
    co_await ctx.store(a, 6);  // O -> M upgrade
    upgrade_cost = ctx.now() - t0;
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(500);
    co_await ctx.load(a);  // force O
  });
  m.run();
  EXPECT_EQ(m.memory().read(a), 6u);
  EXPECT_EQ(m.controller(0).line_state(line_of(a)), LineState::M);
  // Upgrade = request + inv/ack on the one sharer + grant: no DRAM, no data.
  EXPECT_LT(upgrade_cost, 80u);
}

TEST(Moesi, OwnedEvictionWritesBackAndKeepsSharers) {
  MachineConfig cfg = moesi_config(2, false);
  Machine m{cfg};
  const int sets = cfg.l1_sets;
  Addr a = line_base(8000);
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.load(a);
    co_await ctx.store(a, 3);  // M
    co_await ctx.work(1000);   // reader downgrades us to O
    // Evict the O line with same-set traffic.
    for (int i = 1; i <= 5; ++i) {
      co_await ctx.store(line_base(static_cast<LineId>(8000 + i * sets)), 1);
    }
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(300);
    co_await ctx.load(a);
    co_await ctx.work(5000);
    // Re-read after the owner evicted: data must come from L2, value intact.
    const std::uint64_t v = co_await ctx.load(a);
    EXPECT_EQ(v, 3u);
  });
  m.run(10'000'000);
  ASSERT_TRUE(m.all_done());
  EXPECT_GE(m.total_stats().msgs_wb, 1u);  // the O eviction flushed
}

TEST(Moesi, LeaseOnOwnedLineUpgradesToModified) {
  // Section 8: "A leased line cannot be in Owned state." Leasing one
  // upgrades it (invalidating sharers), then parks probes as usual.
  Machine m{moesi_config(3, true)};
  Addr a = m.heap().alloc_line();
  Cycle store_done = 0, release_time = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.load(a);
    co_await ctx.store(a, 5);  // M
    co_await ctx.work(1000);   // reader downgrades to O
    co_await ctx.lease(a, 10'000);
    EXPECT_EQ(ctx.controller().line_state(line_of(a)), LineState::M);
    EXPECT_TRUE(ctx.controller().lease_table().pins(line_of(a)));
    co_await ctx.work(2000);
    co_await ctx.release(a);
    release_time = ctx.now();
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(300);
    co_await ctx.load(a);  // force O at core 0
  });
  m.spawn(2, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(2000);
    co_await ctx.store(a, 9);  // parked behind the lease
    store_done = ctx.now();
  });
  m.run(10'000'000);
  ASSERT_TRUE(m.all_done());
  EXPECT_GE(store_done, release_time);
  EXPECT_EQ(m.memory().read(a), 9u);
}

TEST(Moesi, SharedCounterConservation) {
  constexpr int kCores = 8;
  Machine m{moesi_config(kCores, true)};
  Addr a = m.heap().alloc_line();
  testing::run_workers(m, kCores, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 25; ++i) {
      co_await ctx.lease(a, 2000);
      const std::uint64_t v = co_await ctx.load(a);
      co_await ctx.store(a, v + 1);
      co_await ctx.release(a);
      co_await ctx.work(ctx.rng().next_below(50));
    }
  });
  EXPECT_EQ(m.memory().read(a), static_cast<std::uint64_t>(kCores) * 25);
}

TEST(Moesi, ReadSharingOfDirtyDataCheaperThanMesi) {
  // Producer writes; many consumers read repeatedly (after local eviction
  // pressure, here modeled by re-reading different lines): MOESI should
  // spend fewer writebacks than MESI on the same workload.
  auto wb_count = [](CoherenceProtocol proto) {
    MachineConfig cfg = testing::small_config(4, false);
    cfg.protocol = proto;
    Machine m{cfg};
    std::vector<Addr> lines;
    for (int i = 0; i < 8; ++i) lines.push_back(m.heap().alloc_line());
    m.spawn(0, [&](Ctx& ctx) -> Task<void> {
      for (Addr a : lines) {
        co_await ctx.load(a);
        co_await ctx.store(a, 1);
      }
      co_await ctx.work(10'000);
    });
    for (int c = 1; c < 4; ++c) {
      m.spawn(c, [&, c](Ctx& ctx) -> Task<void> {
        co_await ctx.work(static_cast<Cycle>(1000 * c));
        for (Addr a : lines) co_await ctx.load(a);
      });
    }
    m.run();
    return m.total_stats().msgs_wb;
  };
  EXPECT_LT(wb_count(CoherenceProtocol::kMOESI), wb_count(CoherenceProtocol::kMESI));
}

}  // namespace
}  // namespace lrsim
