// Copyright (c) 2026 lrsim authors. MIT license.
//
// Pagerank kernel: accumulator correctness under the contended lock, lease
// vs. base equivalence of results.
#include <gtest/gtest.h>

#include "apps/pagerank.hpp"
#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

TEST(Pagerank, GraphHasRequestedShape) {
  Machine m{small_config(1, false)};
  Pagerank pr{m, {.num_vertices = 400, .dangling_fraction = 0.25}};
  EXPECT_EQ(pr.num_vertices(), 400u);
  // ~25% dangling, with generous slack for the RNG.
  EXPECT_GT(pr.num_dangling(), 60u);
  EXPECT_LT(pr.num_dangling(), 140u);
}

TEST(Pagerank, AccumulatorCollectsEveryDanglingVertexExactlyOnce) {
  constexpr int kThreads = 4;
  Machine m{small_config(kThreads, true)};
  Pagerank pr{m, {.num_vertices = 200, .use_lease = true}};
  const std::size_t chunk = (pr.num_vertices() + kThreads - 1) / kThreads;
  testing::run_workers(m, kThreads, [&, chunk](Ctx& ctx, int t) -> Task<void> {
    co_await pr.process_range(ctx, static_cast<std::size_t>(t) * chunk,
                              static_cast<std::size_t>(t + 1) * chunk);
  });
  // Every dangling vertex contributed a positive rank exactly once: the
  // accumulator is at least num_dangling * min_rank and the op count is one
  // per vertex.
  EXPECT_GT(pr.dangling_mass(), 0u);
  EXPECT_EQ(m.total_stats().ops_completed, pr.num_vertices());
  EXPECT_EQ(m.total_stats().lock_acquisitions, pr.num_dangling());
}

TEST(Pagerank, LeaseAndBaseComputeSameRanks) {
  auto run = [](bool lease) {
    Machine m{small_config(4, lease)};
    Pagerank pr{m, {.num_vertices = 150, .use_lease = lease, .seed = 11}};
    const std::size_t chunk = (pr.num_vertices() + 3) / 4;
    testing::run_workers(m, 4, [&, chunk](Ctx& ctx, int t) -> Task<void> {
      co_await pr.process_range(ctx, static_cast<std::size_t>(t) * chunk,
                                static_cast<std::size_t>(t + 1) * chunk);
    });
    return pr.dangling_mass();
  };
  // Same seed => same graph => identical accumulated mass (all ranks are
  // computed from the initial uniform state in one sweep).
  EXPECT_EQ(run(false), run(true));
}

TEST(Pagerank, ContendedLockSerializesCorrectly) {
  // All threads process *only* dangling-heavy ranges concurrently; no lost
  // accumulator updates allowed.
  constexpr int kThreads = 8;
  Machine m{small_config(kThreads, true)};
  Pagerank pr{m, {.num_vertices = 240, .dangling_fraction = 1.0, .use_lease = true}};
  ASSERT_EQ(pr.num_dangling(), 240u);
  const std::size_t chunk = 240 / kThreads;
  testing::run_workers(m, kThreads, [&, chunk](Ctx& ctx, int t) -> Task<void> {
    co_await pr.process_range(ctx, static_cast<std::size_t>(t) * chunk,
                              static_cast<std::size_t>(t + 1) * chunk);
  });
  // dangling vertices have no out-edges: rank stays at the initial 100, and
  // each adds exactly its rank once => mass = 240 * 100.
  EXPECT_EQ(pr.dangling_mass(), 240u * 100u);
}

}  // namespace
}  // namespace lrsim
