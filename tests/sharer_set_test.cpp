// Copyright (c) 2026 lrsim authors. MIT license.
//
// Unit tests for the hybrid exact/coarse sharer sets
// (coherence/sharer_set.hpp) at the representation boundaries — 64/65/127/
// 128/255/256 cores, inline-pointer overflow into the spill table and the
// coarse vector, promotion/demotion, iteration parity against a reference
// std::set — plus machine-level regressions for the membership-superset
// rule coarse mode lives by (a naive group-bit clear on one core's
// S-eviction breaks it; SharerSet::remove is deliberately a no-op there).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "coherence/sharer_set.hpp"
#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

std::vector<CoreId> collect_all(const SharerSet& s, const SharerStore& st) {
  std::vector<CoreId> out;
  s.collect(st, /*exclude=*/-1, out);
  return out;
}

// --- geometry -------------------------------------------------------------

TEST(SharerSet, AutoGranularityAtTheBoundaries) {
  const struct {
    int cores;
    bool wide;
    int gran;
  } cases[] = {
      {64, false, 1}, {65, true, 2},  {127, true, 2},
      {128, true, 2}, {255, true, 4}, {256, true, 4},
  };
  for (const auto& c : cases) {
    SharerStore st;
    st.configure(c.cores, /*granularity=*/0, /*spill_lines=*/8);
    EXPECT_EQ(st.wide(), c.wide) << c.cores << " cores";
    EXPECT_EQ(st.granularity(), c.gran) << c.cores << " cores";
    // The coarse region vector must fit its 64-bit word.
    EXPECT_LE((c.cores + st.granularity() - 1) / st.granularity(), 64);
  }
}

TEST(SharerSet, ConfigureRejectsBadGeometry) {
  SharerStore st;
  EXPECT_THROW(st.configure(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(st.configure(kMaxCores + 1, 0, 0), std::invalid_argument);
  EXPECT_THROW(st.configure(256, /*granularity=*/1, 0), std::invalid_argument);
  EXPECT_THROW(st.configure(128, 0, /*spill_lines=*/-1), std::invalid_argument);
  EXPECT_NO_THROW(st.configure(256, /*granularity=*/4, 0));
  EXPECT_NO_THROW(st.configure(kMaxCores, 0, 64));
}

// --- narrow machines stay the exact inline mask ---------------------------

TEST(SharerSet, NarrowMachineAlwaysExactMask) {
  SharerStore st;
  st.configure(64, 0, 0);
  SharerSet s;
  for (CoreId c : {0, 7, 63, 31, 1}) s.add(st, c);
  EXPECT_EQ(s.rep(), SharerSet::Rep::kMask);
  EXPECT_TRUE(s.exact());
  EXPECT_EQ(collect_all(s, st), (std::vector<CoreId>{0, 1, 7, 31, 63}));
  s.remove(st, 7);
  EXPECT_FALSE(s.covers(st, 7));
  EXPECT_TRUE(s.covers(st, 63));
  s.clear(st);
  EXPECT_TRUE(s.empty(st));
}

// --- wide machines: inline pointers, spill, coarse ------------------------

TEST(SharerSet, InlinePointersExactAndSorted) {
  SharerStore st;
  st.configure(256, 0, 4);
  SharerSet s;
  for (CoreId c : {200, 3, 255, 64}) s.add(st, c);
  s.add(st, 64);  // idempotent
  EXPECT_EQ(s.rep(), SharerSet::Rep::kPtrs);
  EXPECT_TRUE(s.exact());
  EXPECT_EQ(collect_all(s, st), (std::vector<CoreId>{3, 64, 200, 255}));
  EXPECT_TRUE(s.contains_exact(st, 255));
  EXPECT_FALSE(s.contains_exact(st, 254));
  s.remove(st, 64);
  EXPECT_EQ(collect_all(s, st), (std::vector<CoreId>{3, 200, 255}));
}

TEST(SharerSet, OverflowPromotesToSpillAndStaysExact) {
  SharerStore st;
  st.configure(128, 0, /*spill_lines=*/2);
  SharerSet s;
  for (CoreId c : {10, 70, 127, 0}) s.add(st, c);
  EXPECT_EQ(s.rep(), SharerSet::Rep::kPtrs);
  s.add(st, 65);  // 5th distinct sharer: inline pointers overflow
  EXPECT_EQ(s.rep(), SharerSet::Rep::kSpill);
  EXPECT_TRUE(s.exact());
  EXPECT_EQ(st.spill_slots_free(), 1u);
  EXPECT_EQ(collect_all(s, st), (std::vector<CoreId>{0, 10, 65, 70, 127}));
  // Removal stays exact in the spill bitmap; emptying it demotes and
  // releases the slot for the next hot line.
  for (CoreId c : {0, 10, 65, 70}) s.remove(st, c);
  EXPECT_EQ(collect_all(s, st), (std::vector<CoreId>{127}));
  s.remove(st, 127);
  EXPECT_TRUE(s.empty(st));
  EXPECT_EQ(st.spill_slots_free(), 2u);
}

TEST(SharerSet, OverflowFallsBackToCoarseWhenSpillExhausted) {
  SharerStore st;
  st.configure(128, 0, /*spill_lines=*/0);  // granularity auto = 2
  SharerSet s;
  for (CoreId c : {0, 1, 6, 7}) s.add(st, c);
  s.add(st, 100);
  EXPECT_EQ(s.rep(), SharerSet::Rep::kCoarse);
  EXPECT_FALSE(s.exact());
  // Membership is a superset: every added core is covered, and so is the
  // rest of each covered group (group = pair of cores at granularity 2).
  for (CoreId c : {0, 1, 6, 7, 100, 101}) EXPECT_TRUE(s.covers(st, c)) << c;
  EXPECT_FALSE(s.covers(st, 2));
  EXPECT_FALSE(s.contains_exact(st, 0));  // coarse can never prove membership
  EXPECT_EQ(collect_all(s, st), (std::vector<CoreId>{0, 1, 6, 7, 100, 101}));
  // An exclusive grant rewrites the set wholesale: exactness returns.
  s.clear(st);
  EXPECT_TRUE(s.exact());
  EXPECT_TRUE(s.empty(st));
}

// The satellite-3 regression: clearing one core's membership on its
// S-eviction must NOT drop a coarse group bit — the group may cover live
// sharers. A naive `groups &= ~bit(c / gran)` here would make this fail.
TEST(SharerSet, CoarseRemoveIsANoOp) {
  SharerStore st;
  st.configure(128, 0, /*spill_lines=*/0);
  SharerSet s;
  for (CoreId c : {0, 1, 40, 80, 120}) s.add(st, c);
  ASSERT_EQ(s.rep(), SharerSet::Rep::kCoarse);
  s.remove(st, 0);  // core 0 evicts its S copy; core 1 shares its group
  EXPECT_TRUE(s.covers(st, 1)) << "naive group-bit clear lost a live sharer";
  EXPECT_TRUE(s.covers(st, 0)) << "coarse membership must stay a superset";
  EXPECT_FALSE(s.empty(st));
}

TEST(SharerSet, SpillSlotReleasedByClearIsReusable) {
  SharerStore st;
  st.configure(256, 0, /*spill_lines=*/1);
  SharerSet a, b;
  for (CoreId c : {0, 1, 2, 3, 4}) a.add(st, c);
  EXPECT_EQ(a.rep(), SharerSet::Rep::kSpill);
  for (CoreId c : {10, 11, 12, 13, 14}) b.add(st, c);
  EXPECT_EQ(b.rep(), SharerSet::Rep::kCoarse);  // no slot left
  a.clear(st);  // releases the only slot
  SharerSet c2;
  for (CoreId c : {20, 30, 40, 50, 60}) c2.add(st, c);
  EXPECT_EQ(c2.rep(), SharerSet::Rep::kSpill);
  EXPECT_EQ(collect_all(c2, st), (std::vector<CoreId>{20, 30, 40, 50, 60}));
}

TEST(SharerSet, CollectExcludesTheRequester) {
  SharerStore st;
  st.configure(128, 0, 0);
  SharerSet s;
  for (CoreId c : {0, 1, 2, 3, 4, 5}) s.add(st, c);
  ASSERT_EQ(s.rep(), SharerSet::Rep::kCoarse);
  std::vector<CoreId> out;
  s.collect(st, /*exclude=*/3, out);
  EXPECT_TRUE(std::find(out.begin(), out.end(), 3) == out.end());
  EXPECT_EQ(out, (std::vector<CoreId>{0, 1, 2, 4, 5}));
}

// --- iteration parity against a reference std::set ------------------------

TEST(SharerSet, ExactIterationParityWithReferenceSet) {
  for (int cores : {64, 65, 127, 128, 255, 256}) {
    SharerStore st;
    st.configure(cores, 0, /*spill_lines=*/64);  // roomy: never goes coarse
    SharerSet s;
    std::set<CoreId> ref;
    std::mt19937_64 rng(0xC0FFEEu + static_cast<unsigned>(cores));
    for (int step = 0; step < 400; ++step) {
      const CoreId c = static_cast<CoreId>(rng() % static_cast<std::uint64_t>(cores));
      if (rng() % 3 == 0) {
        s.remove(st, c);
        ref.erase(c);
      } else {
        s.add(st, c);
        ref.insert(c);
      }
      ASSERT_TRUE(s.exact()) << cores << " cores, step " << step;
      const std::vector<CoreId> got = collect_all(s, st);
      const std::vector<CoreId> want(ref.begin(), ref.end());
      ASSERT_EQ(got, want) << cores << " cores, step " << step;
      ASSERT_EQ(s.empty(st), ref.empty());
      ASSERT_EQ(s.covers(st, c), ref.count(c) == 1);
    }
    s.clear(st);
    EXPECT_EQ(st.spill_slots_free(), st.spill_capacity());
  }
}

TEST(SharerSet, CoarseIterationIsASortedSuperset) {
  for (int cores : {65, 128, 256}) {
    SharerStore st;
    st.configure(cores, 0, /*spill_lines=*/0);
    SharerSet s;
    std::set<CoreId> ref;  // true sharers (removals ignored: supersets only grow)
    std::mt19937_64 rng(0xBEEFu + static_cast<unsigned>(cores));
    for (int step = 0; step < 200; ++step) {
      const CoreId c = static_cast<CoreId>(rng() % static_cast<std::uint64_t>(cores));
      s.add(st, c);
      ref.insert(c);
      const std::vector<CoreId> got = collect_all(s, st);
      ASSERT_TRUE(std::is_sorted(got.begin(), got.end()));
      ASSERT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end());
      for (CoreId r : ref) {
        ASSERT_TRUE(s.covers(st, r)) << cores << " cores, step " << step;
        ASSERT_TRUE(std::binary_search(got.begin(), got.end(), r));
      }
      for (CoreId g : got) ASSERT_LT(g, static_cast<CoreId>(cores));
    }
  }
}

// --- machine-level: the superset rule end to end --------------------------

// 128-core machine, spill table disabled so a handful of sharers lands in
// the coarse vector. Core 1 evicts its S copy (a conflict miss in a 1-way
// L1) while cores 0/2..5 keep theirs; a later GetX fans probes out over
// the coarse cover. With the no-op coarse remove the invariant checker's
// membership-superset rule stays clean; the naive group-bit clear would
// uncover core 0's live S copy and fail at probe-send time.
TEST(SharerSetMachine, CoarseEvictionKeepsSupersetInvariant) {
  MachineConfig cfg = small_config(128, /*leases=*/false);
  cfg.sharer_spill_lines = 0;
  cfg.l1_ways = 1;
  cfg.l1_sets = 4;
  Machine m(cfg, /*seed=*/1);
  InvariantChecker& inv = m.enable_invariants();
  const Addr shared = m.heap().alloc_line();
  // A line in the same 4-entry L1 set as `shared`: loading it from core 1
  // evicts core 1's S copy of `shared`.
  Addr conflict = 0;
  for (int k = 0; k < 8; ++k) {
    const Addr cand = m.heap().alloc_line();
    if ((line_of(cand) & 3) == (line_of(shared) & 3)) {
      conflict = cand;
      break;
    }
  }
  ASSERT_NE(conflict, 0u) << "no conflicting line found in 8 allocations";
  for (int t = 0; t < 6; ++t) {
    m.spawn(t, [&, t](Ctx& ctx) -> Task<void> {
      (void)co_await ctx.load(shared);  // 6 sharers > 4 inline pointers
      if (t == 1) {
        co_await ctx.work(50);
        (void)co_await ctx.load(conflict);  // S-evicts `shared` on core 1
      }
    });
  }
  m.spawn(6, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(2000);  // after the sharers settled and core 1 evicted
    co_await ctx.store(shared, 1);  // GetX: probes fan out over the cover
  });
  EXPECT_NO_THROW(m.run(1'000'000));
  EXPECT_TRUE(m.all_done());
  EXPECT_GT(inv.checks_run(), 0u);
  EXPECT_GT(m.total_stats().probes_coarse, 0u)
      << "the GetX should have fanned out from a coarse cover";
}

// Contended CAS counter across the 64-core boundary with invariants armed:
// conservation must hold and the run must stay violation-free at every
// representation (65 crosses into pointers, 128 exercises coarse mode once
// more than four cores share the counter line... with the default spill
// table the hot line is promoted instead — both paths stay exact-or-safe).
TEST(SharerSetMachine, WideCounterConservation) {
  for (int cores : {65, 128}) {
    MachineConfig cfg = small_config(cores, /*leases=*/false);
    Machine m(cfg, /*seed=*/7);
    InvariantChecker& inv = m.enable_invariants();
    const Addr ctr = m.heap().alloc_line();
    constexpr int kOpsPerCore = 2;
    for (int t = 0; t < cores; ++t) {
      m.spawn(t, [&](Ctx& ctx) -> Task<void> {
        for (int i = 0; i < kOpsPerCore; ++i) {
          for (;;) {
            const std::uint64_t cur = co_await ctx.load(ctr);
            if (co_await ctx.cas(ctr, cur, cur + 1)) break;
          }
          ctx.count_op();
        }
      });
    }
    m.run(500'000'000);
    ASSERT_TRUE(m.all_done()) << cores << " cores";
    EXPECT_EQ(m.memory().read(ctr), static_cast<std::uint64_t>(cores) * kOpsPerCore)
        << cores << " cores";
    EXPECT_GT(inv.checks_run(), 0u);
  }
}

}  // namespace
}  // namespace lrsim
