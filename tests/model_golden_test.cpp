// Copyright (c) 2026 lrsim authors. MIT license.
//
// Golden timing-model tests: pin the exact latencies documented in
// docs/PROTOCOL.md §2 so accidental changes to the cost model are caught.
// If you change the model on purpose, update PROTOCOL.md and these numbers
// together.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

struct LatencyProbe {
  Cycle cold_load = 0;
  Cycle warm_load_other_core = 0;
  Cycle l1_hit = 0;
  Cycle store_hit = 0;
  Cycle m_transfer_store = 0;
  Cycle upgrade_no_sharers = 0;
  Cycle cas_hit = 0;
};

LatencyProbe measure() {
  LatencyProbe p;
  Machine m{small_config(2, false)};
  Addr a = m.heap().alloc_line();
  Addr b = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    Cycle t0 = ctx.now();
    co_await ctx.load(a);
    p.cold_load = ctx.now() - t0;

    t0 = ctx.now();
    co_await ctx.load(a);
    p.l1_hit = ctx.now() - t0;

    // S -> M upgrade (we are the only sharer).
    t0 = ctx.now();
    co_await ctx.store(a, 1);
    p.upgrade_no_sharers = ctx.now() - t0;

    t0 = ctx.now();
    co_await ctx.store(a, 2);
    p.store_hit = ctx.now() - t0;

    t0 = ctx.now();
    co_await ctx.cas(a, 2, 3);
    p.cas_hit = ctx.now() - t0;

    // Warm line `b` for core 1's measurements.
    co_await ctx.store(b, 1);
    co_await ctx.work(10'000);
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(2000);
    Cycle t0 = ctx.now();
    co_await ctx.store(b, 9);  // M at core 0 -> cache-to-cache
    p.m_transfer_store = ctx.now() - t0;

    // Let core 0's copy be gone; load `a` which is M at core 0... instead
    // measure a warm L2 load: line `a` is M at core 0, so use a third
    // line warmed by this core's own store then evicted? Simpler: measure
    // a GetS on a line another core wrote and then downgraded:
    t0 = ctx.now();
    co_await ctx.load(a);  // M at core 0: downgrade + forward
    p.warm_load_other_core = ctx.now() - t0;
  });
  m.run();
  return p;
}

TEST(ModelGolden, DocumentedLatencies) {
  const LatencyProbe p = measure();
  EXPECT_EQ(p.cold_load, 142u);            // 1+15+3+100+8+15
  EXPECT_EQ(p.l1_hit, 1u);                 // L1 hit
  EXPECT_EQ(p.upgrade_no_sharers, 34u);    // 1+15+3+15 (ack grant)
  EXPECT_EQ(p.store_hit, 1u);              // M hit
  EXPECT_EQ(p.cas_hit, 1u);                // M hit
  EXPECT_EQ(p.m_transfer_store, 50u);      // 1+15+3+15+1+15
  EXPECT_EQ(p.warm_load_other_core, 50u);  // downgrade path, same legs
}

TEST(ModelGolden, LeaseInstructionCosts) {
  Machine m{small_config(1, true)};
  Addr a = m.heap().alloc_line();
  Cycle lease_cold = 0, lease_hit = 0, release_cost = 0, noop_lease = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    Cycle t0 = ctx.now();
    co_await ctx.lease(a, 5000);  // cold: full GetX round
    lease_cold = ctx.now() - t0;

    t0 = ctx.now();
    co_await ctx.lease(a, 5000);  // already leased: 1-cycle no-op
    noop_lease = ctx.now() - t0;

    t0 = ctx.now();
    co_await ctx.release(a);
    release_cost = ctx.now() - t0;

    t0 = ctx.now();
    co_await ctx.lease(a, 5000);  // line still M: 1-cycle grant
    lease_hit = ctx.now() - t0;
    co_await ctx.release(a);
  });
  m.run();
  EXPECT_EQ(lease_cold, 142u);  // same as a cold exclusive miss
  EXPECT_EQ(noop_lease, 1u);
  EXPECT_EQ(release_cost, 1u);
  EXPECT_EQ(lease_hit, 1u);
}

TEST(ModelGolden, MeshLatencyFormula) {
  MachineConfig cfg = small_config(16, false);
  cfg.mesh_topology = true;
  // 4x4 grid; pick a line homed at tile 0, requester at tile 15 (6 hops).
  Machine m{cfg};
  Addr a = 0;
  for (Addr cand = 0x40000; cand < 0x80000; cand += kLineSize) {
    if (line_of(cand) % 16 == 0) {
      a = cand;
      break;
    }
  }
  ASSERT_NE(a, 0u);
  Cycle cold = 0;
  m.spawn(15, [&](Ctx& ctx) -> Task<void> {
    const Cycle t0 = ctx.now();
    co_await ctx.load(a);
    cold = ctx.now() - t0;
  });
  m.run();
  // 1 (L1) + 19 (6-hop request: 7 routers + 6 links) + 3 + 100 + 8 + 19.
  EXPECT_EQ(cold, 150u);
}

}  // namespace
}  // namespace lrsim
