// Copyright (c) 2026 lrsim authors. MIT license.
//
// Unit tests for util/: rng determinism and distribution sanity, flag
// parsing, table rendering, address math.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/types.hpp"

namespace lrsim {
namespace {

// --- types ------------------------------------------------------------------

TEST(Types, LineMath) {
  EXPECT_EQ(line_of(0), 0u);
  EXPECT_EQ(line_of(63), 0u);
  EXPECT_EQ(line_of(64), 1u);
  EXPECT_EQ(line_base(3), 192u);
  EXPECT_EQ(word_in_line(0), 0);
  EXPECT_EQ(word_in_line(8), 1);
  EXPECT_EQ(word_in_line(56), 7);
  EXPECT_EQ(word_in_line(64), 0);
  EXPECT_TRUE(is_word_aligned(16));
  EXPECT_FALSE(is_word_aligned(12));
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r{7};
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng r{99};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r{5};
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = r.next_in(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r{11};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // mean of U[0,1)
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng r{13};
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.next_bool(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

// --- flags -------------------------------------------------------------------

TEST(Flags, ParsesAllSupportedForms) {
  FlagSet flags{"t"};
  int threads = 1;
  bool lease = false;
  double frac = 0.5;
  std::string name = "x";
  flags.add("threads", &threads, "");
  flags.add("lease", &lease, "");
  flags.add("frac", &frac, "");
  flags.add("name", &name, "");
  const char* argv[] = {"t", "--threads=8", "--lease", "--frac", "0.75", "--name=queue"};
  flags.parse(6, const_cast<char**>(argv));
  EXPECT_EQ(threads, 8);
  EXPECT_TRUE(lease);
  EXPECT_DOUBLE_EQ(frac, 0.75);
  EXPECT_EQ(name, "queue");
}

TEST(Flags, NegatedBoolean) {
  FlagSet flags{"t"};
  bool lease = true;
  flags.add("lease", &lease, "");
  const char* argv[] = {"t", "--no-lease"};
  flags.parse(2, const_cast<char**>(argv));
  EXPECT_FALSE(lease);
}

TEST(Flags, UnknownFlagThrows) {
  FlagSet flags{"t"};
  const char* argv[] = {"t", "--bogus=1"};
  EXPECT_THROW(flags.parse(2, const_cast<char**>(argv)), std::invalid_argument);
}

TEST(Flags, BadIntegerThrows) {
  FlagSet flags{"t"};
  int threads = 1;
  flags.add("threads", &threads, "");
  const char* argv[] = {"t", "--threads=abc"};
  EXPECT_THROW(flags.parse(2, const_cast<char**>(argv)), std::exception);
}

TEST(Flags, HelpThrowsFlagHelpWithUsage) {
  FlagSet flags{"prog"};
  int threads = 4;
  flags.add("threads", &threads, "thread count");
  const char* argv[] = {"prog", "--help"};
  try {
    flags.parse(2, const_cast<char**>(argv));
    FAIL() << "expected FlagHelp";
  } catch (const FlagSet::FlagHelp& h) {
    EXPECT_NE(h.text.find("threads"), std::string::npos);
    EXPECT_NE(h.text.find("prog"), std::string::npos);
  }
}

TEST(Flags, MissingValueThrows) {
  FlagSet flags{"t"};
  int threads = 1;
  flags.add("threads", &threads, "");
  const char* argv[] = {"t", "--threads"};
  EXPECT_THROW(flags.parse(2, const_cast<char**>(argv)), std::invalid_argument);
}

// --- table -------------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table t{{"threads", "ops"}};
  t.add_row({std::int64_t{2}, 3.14159});
  t.add_row({std::int64_t{64}, 2.0});
  std::ostringstream os;
  t.print(os, 2);
  const std::string s = os.str();
  EXPECT_NE(s.find("threads"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_NE(s.find("64"), std::string::npos);
}

TEST(Table, WritesCsv) {
  Table t{{"a", "b"}};
  t.add_row({std::uint64_t{1}, std::string{"x"}});
  const std::string path = ::testing::TempDir() + "/lrsim_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,x");
}

TEST(Table, CsvToUnwritablePathFails) {
  Table t{{"a"}};
  EXPECT_FALSE(t.write_csv("/nonexistent_dir_zzz/out.csv"));
}

}  // namespace
}  // namespace lrsim
