// Copyright (c) 2026 lrsim authors. MIT license.
//
// Failure shrinking for protocol fuzz cases.
//
// A fuzz failure at op #9000 of a 4-core interleaving is unactionable; the
// same failure reproduced by 6 ops on 2 cores is a unit test. This header
// gives the fuzz harness a deterministic *script* representation of a
// workload (ScriptOp), an executor that reports failure instead of
// asserting (run_script), a ddmin-style bisector that drops chunks of the
// script while the failure persists (shrink_script), and a formatter that
// prints the minimal script as a paste-able regression test (format_repro).
//
// Determinism is what makes this sound: a Machine run is a pure function of
// (config, machine seed, perturbation seed, script), so a script that fails
// once fails every time, and the bisector needs no retries.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "lrsim.hpp"

namespace lrsim::testing {

/// One scripted operation. `addr` indexes the line pool (not a byte
/// address) so scripts stay valid across heap layouts.
struct ScriptOp {
  int core = 0;
  int kind = 0;  ///< 0 load, 1 store, 2 cas, 3 faa, 4 xchg.
  int addr = 0;  ///< Index into the pool of allocated lines.
  std::uint64_t arg1 = 0;  ///< store value / cas expect / faa add / xchg value.
  std::uint64_t arg2 = 0;  ///< cas desired.
  Cycle lease = 0;  ///< > 0: wrap the op in lease(duration) ... release.
};

/// Everything besides the ops that determines a run.
struct ScriptEnv {
  MachineConfig cfg;
  std::uint64_t machine_seed = 1;
  std::optional<std::uint64_t> perturb_seed;
  int pool_lines = 2;
  /// Pool index whose probes are silently lost on every core (the test-only
  /// SWMR bug, CacheController::set_test_probe_fault); -1 = no fault.
  int fault_line = -1;
  Cycle watchdog = 50'000'000;
};

struct ScriptResult {
  bool ok = true;
  std::string why;  ///< Failure description (invariant, oracle, watchdog).
};

namespace detail {

struct ScriptCompletion {
  int kind;
  int addr;
  std::uint64_t arg1, arg2, observed;
  bool cas_ok;
};

inline Task<void> script_worker(Ctx& ctx, std::vector<ScriptOp> my_ops,
                                std::shared_ptr<std::vector<Addr>> pool,
                                std::shared_ptr<std::vector<ScriptCompletion>> log) {
  for (const ScriptOp& op : my_ops) {
    const Addr a = (*pool)[static_cast<std::size_t>(op.addr)];
    if (op.lease > 0) co_await ctx.lease(a, op.lease);
    ScriptCompletion c{op.kind, op.addr, op.arg1, op.arg2, 0, false};
    switch (op.kind) {
      case 0: c.observed = co_await ctx.load(a); break;
      case 1: co_await ctx.store(a, op.arg1); break;
      case 2:
        c.observed = co_await ctx.cas_val(a, op.arg1, op.arg2);
        c.cas_ok = c.observed == op.arg1;
        break;
      case 3: c.observed = co_await ctx.faa(a, op.arg1); break;
      default: c.observed = co_await ctx.xchg(a, op.arg1); break;
    }
    log->push_back(c);
    if (op.lease > 0) co_await ctx.release(a);
  }
}

}  // namespace detail

/// Executes a script under the invariant checker and the completion-order
/// replay oracle. Never asserts: failures come back as ScriptResult so the
/// bisector can probe candidate scripts.
inline ScriptResult run_script(const ScriptEnv& env, const std::vector<ScriptOp>& ops) {
  Machine m{env.cfg, env.machine_seed};
  if (env.perturb_seed) m.enable_perturbation(*env.perturb_seed);
  m.enable_invariants();

  auto pool = std::make_shared<std::vector<Addr>>();
  for (int i = 0; i < env.pool_lines; ++i) pool->push_back(m.heap().alloc_line());
  if (env.fault_line >= 0 && env.fault_line < env.pool_lines) {
    const LineId bad = line_of((*pool)[static_cast<std::size_t>(env.fault_line)]);
    for (int c = 0; c < env.cfg.num_cores; ++c) {
      m.controller(c).set_test_probe_fault([bad](CoreId, LineId l) { return l == bad; });
    }
  }

  auto log = std::make_shared<std::vector<detail::ScriptCompletion>>();
  std::vector<std::vector<ScriptOp>> by_core(static_cast<std::size_t>(env.cfg.num_cores));
  for (const ScriptOp& op : ops) {
    by_core[static_cast<std::size_t>(op.core) % by_core.size()].push_back(op);
  }
  for (int c = 0; c < env.cfg.num_cores; ++c) {
    auto& mine = by_core[static_cast<std::size_t>(c)];
    if (mine.empty()) continue;
    m.spawn(c, [mine, pool, log](Ctx& ctx) {
      return detail::script_worker(ctx, mine, pool, log);
    });
  }

  try {
    m.run(env.watchdog);
    if (!m.all_done()) return {false, "watchdog expired (deadlock or livelock)"};
    m.invariants()->check_all();
  } catch (const InvariantViolation& e) {
    return {false, e.what()};
  }

  // Completion-order replay oracle (same idea as protocol_fuzz_test.cpp).
  std::map<int, std::uint64_t> reg;
  std::size_t idx = 0;
  for (const detail::ScriptCompletion& c : *log) {
    std::uint64_t& cur = reg[c.addr];
    const auto mismatch = [&](const char* what) {
      std::ostringstream os;
      os << "oracle: " << what << " at completion index " << idx << " (observed " << c.observed
         << ", replay " << cur << ")";
      return ScriptResult{false, os.str()};
    };
    switch (c.kind) {
      case 0:
        if (c.observed != cur) return mismatch("stale load");
        break;
      case 1: cur = c.arg1; break;
      case 2:
        if (c.observed != cur) return mismatch("CAS wrong old value");
        if (c.cas_ok) cur = c.arg2;
        break;
      case 3:
        if (c.observed != cur) return mismatch("FAA wrong old value");
        cur += c.arg1;
        break;
      default:
        if (c.observed != cur) return mismatch("XCHG wrong old value");
        cur = c.arg1;
        break;
    }
    ++idx;
  }
  return {true, ""};
}

/// Delta-debugging (ddmin-style) bisection: repeatedly removes chunks —
/// halving the chunk size down to single ops — keeping any candidate for
/// which `still_fails` holds, until no single op can be dropped. The result
/// is 1-minimal: removing any one remaining op makes the failure vanish.
inline std::vector<ScriptOp> shrink_script(
    std::vector<ScriptOp> ops, const std::function<bool(const std::vector<ScriptOp>&)>& still_fails) {
  bool progress = true;
  while (progress) {
    progress = false;
    std::size_t chunk = ops.size() / 2;
    if (chunk == 0) chunk = 1;
    for (;; chunk /= 2) {
      std::size_t start = 0;
      while (start < ops.size() && ops.size() > 1) {
        std::vector<ScriptOp> cand;
        cand.reserve(ops.size());
        cand.insert(cand.end(), ops.begin(), ops.begin() + static_cast<std::ptrdiff_t>(start));
        const std::size_t stop = std::min(ops.size(), start + chunk);
        cand.insert(cand.end(), ops.begin() + static_cast<std::ptrdiff_t>(stop), ops.end());
        if (!cand.empty() && still_fails(cand)) {
          ops = std::move(cand);
          progress = true;  // retry the same start: the next chunk slid in
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) break;
    }
  }
  return ops;
}

/// Renders a minimal script as a paste-able deterministic regression test
/// body (assumes `using namespace lrsim::testing` and gtest in scope).
inline std::string format_repro(const ScriptEnv& env, const std::vector<ScriptOp>& ops) {
  std::ostringstream os;
  os << "// Minimal reproducer generated by shrink_script() — paste into a TEST.\n";
  os << "ScriptEnv env;\n";
  os << "env.cfg.num_cores = " << env.cfg.num_cores << ";\n";
  os << "env.cfg.leases_enabled = " << (env.cfg.leases_enabled ? "true" : "false") << ";\n";
  os << "env.cfg.max_lease_time = " << env.cfg.max_lease_time << ";\n";
  os << "env.machine_seed = " << env.machine_seed << "ull;\n";
  if (env.perturb_seed) os << "env.perturb_seed = " << *env.perturb_seed << "ull;\n";
  os << "env.pool_lines = " << env.pool_lines << ";\n";
  if (env.fault_line >= 0) os << "env.fault_line = " << env.fault_line << ";\n";
  os << "const std::vector<ScriptOp> ops = {\n";
  for (const ScriptOp& op : ops) {
    os << "    {" << op.core << ", " << op.kind << ", " << op.addr << ", " << op.arg1 << ", "
       << op.arg2 << ", " << op.lease << "},\n";
  }
  os << "};\n";
  os << "EXPECT_FALSE(run_script(env, ops).ok);\n";
  return os.str();
}

}  // namespace lrsim::testing
