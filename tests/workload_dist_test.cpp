// Copyright (c) 2026 lrsim authors. MIT license.
//
// Statistical verification of the workload generators (src/workload/):
// chi-square goodness-of-fit of the uniform / zipf / hotspot key samplers
// against their analytic pmfs at fixed seeds, mean/CV checks of the
// exponential (poisson-arrival) gap sampler, and the parameter-validation
// guard rails. Every test is seeded, so they are deterministic — "flaky at
// p = 0.999" cannot happen twice with the same bits.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "workload/arrival.hpp"
#include "workload/dist.hpp"

namespace lrsim::workload {
namespace {

/// Wilson–Hilferty approximation of the chi-square quantile: accurate to a
/// few percent for df >= 3, which is far finer than the pass/fail margin of
/// a goodness-of-fit gate at p = 0.999 (z = 3.090232).
double chi2_crit(double df, double z = 3.090232) {
  const double a = 2.0 / (9.0 * df);
  const double t = 1.0 - a + z * std::sqrt(a);
  return df * t * t * t;
}

/// Draws n keys and returns the chi-square statistic of the observed counts
/// against `pmf_of` (defaults to the sampler's own analytic pmf). Asserts
/// the classic validity rule (every expected cell count >= 5).
double chi2_stat(KeySampler& s, Rng& rng, int n, const KeySampler* pmf_of = nullptr) {
  if (pmf_of == nullptr) pmf_of = &s;
  std::vector<std::uint64_t> counts(s.range(), 0);
  for (int i = 0; i < n; ++i) ++counts[s.sample(rng)];
  double stat = 0;
  for (std::uint64_t k = 0; k < s.range(); ++k) {
    const double expect = pmf_of->pmf(k) * n;
    EXPECT_GE(expect, 5.0) << "cell " << k << " too thin for a chi-square test";
    const double d = static_cast<double>(counts[k]) - expect;
    stat += d * d / expect;
  }
  return stat;
}

void expect_pmf_sums_to_one(const KeySampler& s) {
  double sum = 0;
  for (std::uint64_t k = 0; k < s.range(); ++k) sum += s.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

constexpr std::uint64_t kRange = 64;
constexpr int kDraws = 100000;

TEST(WorkloadDist, UniformPassesChiSquare) {
  KeySampler s{DistSpec{}, kRange};
  expect_pmf_sums_to_one(s);
  Rng rng{42};
  EXPECT_LT(chi2_stat(s, rng, kDraws), chi2_crit(kRange - 1));
}

TEST(WorkloadDist, ZipfPassesChiSquare) {
  for (const double theta : {0.5, 0.99, 1.5}) {
    DistSpec spec;
    spec.kind = DistKind::kZipf;
    spec.theta = theta;
    KeySampler s{spec, kRange};
    expect_pmf_sums_to_one(s);
    Rng rng{42};
    EXPECT_LT(chi2_stat(s, rng, kDraws), chi2_crit(kRange - 1)) << "theta=" << theta;
  }
}

TEST(WorkloadDist, HotspotPassesChiSquare) {
  DistSpec spec;
  spec.kind = DistKind::kHotspot;
  spec.hot_frac = 0.1;
  spec.hot_prob = 0.9;
  KeySampler s{spec, kRange};
  expect_pmf_sums_to_one(s);
  Rng rng{42};
  EXPECT_LT(chi2_stat(s, rng, kDraws), chi2_crit(kRange - 1));
}

TEST(WorkloadDist, ChiSquareGateHasTeeth) {
  // Negative control: zipf(0.99) samples scored against the *uniform* pmf
  // must blow far past the critical value — otherwise the gate above would
  // also pass a broken sampler.
  DistSpec spec;
  spec.kind = DistKind::kZipf;
  spec.theta = 0.99;
  KeySampler zipf{spec, kRange};
  KeySampler uniform{DistSpec{}, kRange};
  Rng rng{42};
  EXPECT_GT(chi2_stat(zipf, rng, kDraws, &uniform), 10.0 * chi2_crit(kRange - 1));
}

TEST(WorkloadDist, ZipfFavorsSmallKeys) {
  DistSpec spec;
  spec.kind = DistKind::kZipf;
  spec.theta = 0.99;
  KeySampler s{spec, kRange};
  EXPECT_GT(s.pmf(0), s.pmf(1));
  EXPECT_GT(s.pmf(1), s.pmf(kRange - 1));
  Rng rng{7};
  int zeros = 0;
  for (int i = 0; i < kDraws; ++i) zeros += s.sample(rng) == 0;
  // pmf(0) ~= 0.21 at theta 0.99 over 64 keys; check the empirical rate.
  EXPECT_NEAR(static_cast<double>(zeros) / kDraws, s.pmf(0), 0.01);
}

TEST(WorkloadDist, HotspotHitsHotSetAtTheConfiguredRate) {
  DistSpec spec;
  spec.kind = DistKind::kHotspot;
  spec.hot_frac = 0.1;  // 64 keys -> 7 hot
  spec.hot_prob = 0.9;
  KeySampler s{spec, kRange};
  Rng rng{11};
  int hot = 0;
  for (int i = 0; i < kDraws; ++i) hot += s.sample(rng) < 7;
  EXPECT_NEAR(static_cast<double>(hot) / kDraws, 0.9, 0.01);
}

TEST(WorkloadDist, ShiftingPhaseRelabelsKeysDeterministically) {
  DistSpec base;
  DistSpec shifted = base;
  shifted.shift_every = 100;
  shifted.shift_by = 3;
  PhaseLog log{1};
  KeySampler plain{base, 10};
  KeySampler moving{shifted, 10, /*num_cores=*/1, &log};
  Rng a{5}, b{5};
  // Phase 2 (now = 250): every key is the plain draw rotated by 2 * 3.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(moving.sample(a, /*now=*/250, /*core=*/0), (plain.sample(b) + 6) % 10);
  }
  // The phase *change* (0 -> 2) was observed once, at the first sample.
  ASSERT_EQ(log.per_core.size(), 1u);
  ASSERT_EQ(log.per_core[0].size(), 1u);
  EXPECT_EQ(log.per_core[0][0], 250u);
}

TEST(WorkloadDist, SameSeedSameKeySequence) {
  DistSpec spec;
  spec.kind = DistKind::kZipf;
  spec.theta = 0.99;
  KeySampler s1{spec, kRange}, s2{spec, kRange};
  Rng a{123}, b{123};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(s1.sample(a), s2.sample(b));
}

TEST(WorkloadDist, ParameterValidation) {
  EXPECT_THROW(KeySampler(DistSpec{}, 0), std::invalid_argument);
  DistSpec zipf;
  zipf.kind = DistKind::kZipf;
  zipf.theta = 0.0;
  EXPECT_THROW(KeySampler(zipf, kRange), std::invalid_argument);
  zipf.theta = 0.99;
  EXPECT_THROW(KeySampler(zipf, KeySampler::kMaxTableRange + 1), std::invalid_argument);
  DistSpec hot;
  hot.kind = DistKind::kHotspot;
  hot.hot_frac = 0.0;
  EXPECT_THROW(KeySampler(hot, kRange), std::invalid_argument);
  hot.hot_frac = 0.1;
  hot.hot_prob = 1.5;
  EXPECT_THROW(KeySampler(hot, kRange), std::invalid_argument);
}

// --- arrival processes ------------------------------------------------------

TEST(WorkloadArrival, FixedGapIsThePeriod) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kFixed;
  spec.period = 37;
  Rng rng{1};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(next_gap(spec, rng), 37u);
}

TEST(WorkloadArrival, ExponentialGapMeanAndCvMatch) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kPoisson;
  spec.period = 100;
  Rng rng{99};
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double g = static_cast<double>(next_gap(spec, rng));
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  const double cv = std::sqrt(var) / mean;
  // Exponential with mean 100: standard error of the mean is ~0.22 cycles
  // over 200k draws, so a +/-2 cycle window is ~9 sigma yet still tight
  // enough to catch an off-by-half-period or a wrong-rate bug.
  EXPECT_NEAR(mean, 100.0, 2.0);
  EXPECT_NEAR(cv, 1.0, 0.02);  // the exponential's CV is exactly 1
}

TEST(WorkloadArrival, ExponentialGapIsSeedDeterministic) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kPoisson;
  spec.period = 50;
  Rng a{7}, b{7};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(next_gap(spec, a), next_gap(spec, b));
}

TEST(WorkloadArrival, ClosedLoopHasNoGap) {
  ArrivalSpec closed;
  Rng rng{1};
  EXPECT_THROW(next_gap(closed, rng), std::logic_error);
  ArrivalSpec open;
  open.kind = ArrivalKind::kFixed;
  open.period = 0;
  EXPECT_THROW(open.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace lrsim::workload
