// Copyright (c) 2026 lrsim authors. MIT license.
//
// Randomized protocol fuzzing with an atomicity oracle.
//
// N cores fire random loads/stores/CAS/FAA/XCHG (optionally wrapped in
// random leases and MultiLeases) at a small pool of contended lines. Every
// operation records its observed value in completion order. Because the
// simulator is single-threaded and each operation's completion callback
// fires at the instant the operation takes effect, replaying the log in
// callback order against a per-address register must reproduce every
// observed value exactly — any coherence bug (lost invalidation, stale
// read, non-atomic RMW, lease/probe race) shows up as a divergence.
//
// This is the test that would have caught the probe-vs-lease same-cycle
// race documented in coherence/controller.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

enum class OpKind { kLoad, kStore, kCas, kFaa, kXchg };

struct LoggedOp {
  OpKind kind;
  Addr addr;
  std::uint64_t arg1 = 0;     // store value / cas expect / faa add / xchg value
  std::uint64_t arg2 = 0;     // cas desired
  std::uint64_t observed = 0; // load value / cas old / faa old / xchg old
  bool cas_ok = false;
  int core = 0;
};

struct FuzzCase {
  const char* name;
  int cores;
  int lines;
  int ops_per_core;
  bool leases;
  bool use_single_leases;  // wrap some ops in lease/release
  bool use_multileases;    // occasionally multi-lease pairs
  bool priority;
  bool sw_multilease;
  Cycle max_lease_time;
  bool mesi = false;
  bool mesh = false;
  bool nack = false;
  bool moesi = false;
  bool l2_finite = false;
};

class ProtocolFuzz : public ::testing::TestWithParam<FuzzCase> {};

/// Runs one fuzz case and replays the completion-order log. Optionally arms
/// the invariant checker and/or schedule perturbation, and divides the op
/// count (the checker x 8-seed sweep trades depth for breadth).
void run_fuzz(const FuzzCase& fc, bool with_invariants,
              std::optional<std::uint64_t> perturb_seed, int ops_divisor) {
  MachineConfig cfg = small_config(fc.cores, fc.leases);
  cfg.lease_priority_mode = fc.priority;
  cfg.software_multilease = fc.sw_multilease;
  cfg.max_lease_time = fc.max_lease_time;
  if (fc.mesi) cfg.protocol = CoherenceProtocol::kMESI;
  if (fc.moesi) cfg.protocol = CoherenceProtocol::kMOESI;
  cfg.mesh_topology = fc.mesh;
  cfg.nack_on_lease = fc.nack;
  if (fc.l2_finite) {
    cfg.l2_finite = true;
    cfg.l2_sets = 2;
    cfg.l2_ways = 2;  // 4-line L2: constant capacity churn
  }
  Machine m{cfg, /*seed=*/0xfeedbeef};
  if (perturb_seed) m.enable_perturbation(*perturb_seed);
  if (with_invariants) m.enable_invariants();

  std::vector<Addr> pool;
  for (int i = 0; i < fc.lines; ++i) pool.push_back(m.heap().alloc_line());
  // Also pack two hot words on ONE line to exercise intra-line conflicts.
  const Addr packed = m.heap().alloc_line(16);
  pool.push_back(packed);
  pool.push_back(packed + 8);

  const int ops_per_core = std::max(1, fc.ops_per_core / ops_divisor);
  std::vector<LoggedOp> log;  // appended in completion (callback) order
  log.reserve(static_cast<std::size_t>(fc.cores) * static_cast<std::size_t>(ops_per_core));

  try {
    testing::run_workers(m, fc.cores, [&](Ctx& ctx, int t) -> Task<void> {
      for (int i = 0; i < ops_per_core; ++i) {
        const Addr a = pool[ctx.rng().next_below(pool.size())];
        const std::uint64_t dice = ctx.rng().next_below(100);

        bool leased_single = false;
        bool leased_multi = false;
        if (fc.use_multileases && dice >= 90) {
          const Addr b = pool[ctx.rng().next_below(pool.size())];
          std::vector<Addr> group;
          group.push_back(a);
          group.push_back(b);
          co_await ctx.multi_lease(std::move(group), 500 + ctx.rng().next_below(2000));
          leased_multi = true;
        } else if (fc.use_single_leases && dice >= 60) {
          co_await ctx.lease(a, 200 + ctx.rng().next_below(2000));
          leased_single = true;
        }

        LoggedOp op;
        op.addr = a;
        op.core = t;
        switch (ctx.rng().next_below(5)) {
          case 0: {
            op.kind = OpKind::kLoad;
            op.observed = co_await ctx.load(a);
            break;
          }
          case 1: {
            op.kind = OpKind::kStore;
            op.arg1 = ctx.rng().next_below(1000);
            co_await ctx.store(a, op.arg1);
            break;
          }
          case 2: {
            op.kind = OpKind::kCas;
            op.arg1 = ctx.rng().next_below(1000);  // expect (often wrong)
            op.arg2 = ctx.rng().next_below(1000);
            op.observed = co_await ctx.cas_val(a, op.arg1, op.arg2);
            op.cas_ok = op.observed == op.arg1;
            break;
          }
          case 3: {
            op.kind = OpKind::kFaa;
            op.arg1 = 1 + ctx.rng().next_below(7);
            op.observed = co_await ctx.faa(a, op.arg1);
            break;
          }
          default: {
            op.kind = OpKind::kXchg;
            op.arg1 = ctx.rng().next_below(1000);
            op.observed = co_await ctx.xchg(a, op.arg1);
            break;
          }
        }
        log.push_back(op);

        if (leased_multi) {
          co_await ctx.release_all();
        } else if (leased_single) {
          co_await ctx.release(a);
        }
        if (ctx.rng().next_bool(0.3)) co_await ctx.work(ctx.rng().next_below(60));
      }
    });
  } catch (const InvariantViolation& e) {
    FAIL() << "invariant checker fired on a clean protocol: " << e.what();
  }

  if (with_invariants) {
    InvariantChecker* inv = m.invariants();
    try {
      inv->check_all();
    } catch (const InvariantViolation& e) {
      FAIL() << "final invariant sweep failed: " << e.what();
    }
    // A silently-unwired checker must not pass as green.
    EXPECT_GT(inv->checks_run(), 0u);
  }

  // Replay: every op must have observed exactly the register state produced
  // by the prefix of the completion-order log.
  std::map<Addr, std::uint64_t> reg;
  std::size_t idx = 0;
  for (const LoggedOp& op : log) {
    std::uint64_t& cur = reg[op.addr];  // zero-initialised like SimMemory
    switch (op.kind) {
      case OpKind::kLoad:
        ASSERT_EQ(op.observed, cur) << "stale load at log index " << idx << " core " << op.core;
        break;
      case OpKind::kStore:
        cur = op.arg1;
        break;
      case OpKind::kCas:
        ASSERT_EQ(op.observed, cur) << "CAS saw wrong old value at index " << idx;
        if (op.cas_ok) cur = op.arg2;
        break;
      case OpKind::kFaa:
        ASSERT_EQ(op.observed, cur) << "FAA saw wrong old value at index " << idx;
        cur += op.arg1;
        break;
      case OpKind::kXchg:
        ASSERT_EQ(op.observed, cur) << "XCHG saw wrong old value at index " << idx;
        cur = op.arg1;
        break;
    }
    ++idx;
  }
  // Final memory must match the replayed registers.
  for (const auto& [addr, value] : reg) {
    EXPECT_EQ(m.memory().read(addr), value) << "final memory mismatch at " << std::hex << addr;
  }
  EXPECT_EQ(log.size(), static_cast<std::size_t>(fc.cores) * static_cast<std::size_t>(ops_per_core));
}

TEST_P(ProtocolFuzz, CompletionOrderReplayMatches) {
  run_fuzz(GetParam(), /*with_invariants=*/false, std::nullopt, /*ops_divisor=*/1);
}

// Every fuzz case again, with the invariant checker armed, across 8
// perturbation seeds (plus the unperturbed FIFO schedule). Ops are divided
// down so the sweep stays fast; the full-depth run above keeps the original
// coverage.
TEST_P(ProtocolFuzz, InvariantCheckerAcrossPerturbationSeeds) {
  const FuzzCase& fc = GetParam();
  run_fuzz(fc, /*with_invariants=*/true, std::nullopt, /*ops_divisor=*/4);
  if (::testing::Test::HasFatalFailure()) return;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("perturbation seed " + std::to_string(seed));
    run_fuzz(fc, /*with_invariants=*/true, seed, /*ops_divisor=*/4);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ProtocolFuzz,
    ::testing::Values(
        FuzzCase{"msi_base_4c", 4, 3, 300, false, false, false, false, false, 20000},
        FuzzCase{"msi_base_16c", 16, 2, 150, false, false, false, false, false, 20000},
        FuzzCase{"leases_4c", 4, 3, 300, true, true, false, false, false, 20000},
        FuzzCase{"leases_16c", 16, 2, 150, true, true, false, false, false, 20000},
        FuzzCase{"leases_short_expiry", 8, 2, 200, true, true, false, false, false, 300},
        FuzzCase{"multilease_8c", 8, 3, 200, true, true, true, false, false, 20000},
        FuzzCase{"multilease_priority", 8, 3, 200, true, true, true, true, false, 20000},
        FuzzCase{"sw_multilease", 8, 3, 200, true, true, true, false, true, 20000},
        FuzzCase{"single_line_hammer", 12, 1, 200, true, true, true, false, false, 1000},
        FuzzCase{"mesi_base_8c", 8, 3, 200, false, false, false, false, false, 20000, true},
        FuzzCase{"mesi_leases_8c", 8, 3, 200, true, true, true, false, false, 20000, true},
        FuzzCase{"mesi_short_expiry", 8, 2, 200, true, true, false, false, false, 300, true},
        FuzzCase{"mesh_leases_9c", 9, 3, 200, true, true, true, false, false, 20000, false, true},
        FuzzCase{"mesh_mesi_16c", 16, 2, 120, true, true, false, false, false, 2000, true, true},
        FuzzCase{"nack_8c", 8, 2, 200, true, true, false, false, false, 1000, false, false, true},
        FuzzCase{"nack_mesh_priority", 8, 2, 150, true, true, true, true, false, 1000, false, true,
                 true},
        FuzzCase{"moesi_base_8c", 8, 3, 200, false, false, false, false, false, 20000, false, false,
                 false, true},
        FuzzCase{"moesi_leases_12c", 12, 2, 150, true, true, true, false, false, 2000, false, false,
                 false, true},
        FuzzCase{"moesi_mesh_short", 9, 2, 150, true, true, false, false, false, 500, false, true,
                 false, true},
        FuzzCase{"tiny_l2_base", 6, 4, 200, false, false, false, false, false, 20000, false, false,
                 false, false, true},
        FuzzCase{"tiny_l2_leases", 6, 4, 200, true, true, true, false, false, 2000, false, false,
                 false, false, true},
        FuzzCase{"tiny_l2_moesi", 6, 4, 150, true, true, false, false, false, 1000, false, false,
                 false, true, true}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) { return info.param.name; });

}  // namespace
}  // namespace lrsim
