// Copyright (c) 2026 lrsim authors. MIT license.
//
// Lock correctness: mutual exclusion (no lost updates), try_lock semantics,
// lease integration per Section 6 ("Leases for TryLocks"), FIFO fairness of
// the queue-based locks.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"
#include "sync/backoff.hpp"
#include "sync/locks.hpp"

namespace lrsim {
namespace {

using testing::small_config;

// Exercise a lock with an unprotected read-modify-write critical section:
// any mutual-exclusion failure loses increments.
template <typename LockT>
Cycle hammer(Machine& m, LockT& lock, Addr counter, int threads, int reps) {
  return testing::run_workers(m, threads, [&, reps](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < reps; ++i) {
      co_await lock.lock(ctx);
      const std::uint64_t v = co_await ctx.load(counter);
      co_await ctx.work(20);  // widen the race window
      co_await ctx.store(counter, v + 1);
      co_await lock.unlock(ctx);
    }
  });
}

struct MutexCase {
  const char* name;
  bool machine_leases;
  bool lock_lease;
};

class TTSMutex : public ::testing::TestWithParam<MutexCase> {};

TEST_P(TTSMutex, NoLostUpdates) {
  const auto& p = GetParam();
  constexpr int kThreads = 8;
  constexpr int kReps = 30;
  Machine m{small_config(kThreads, p.machine_leases)};
  TTSLock lock{m, {.use_lease = p.lock_lease}};
  Addr counter = m.heap().alloc_line();
  hammer(m, lock, counter, kThreads, kReps);
  EXPECT_EQ(m.memory().read(counter), static_cast<std::uint64_t>(kThreads) * kReps);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, TTSMutex,
    ::testing::Values(MutexCase{"plain", false, false}, MutexCase{"lease_machine_off", false, true},
                      MutexCase{"machine_on_lock_off", true, false},
                      MutexCase{"leased", true, true}),
    [](const ::testing::TestParamInfo<MutexCase>& info) { return info.param.name; });

TEST(TicketLock, NoLostUpdates) {
  constexpr int kThreads = 8, kReps = 30;
  Machine m{small_config(kThreads, false)};
  TicketLock lock{m, /*backoff_slope=*/64};
  Addr counter = m.heap().alloc_line();
  hammer(m, lock, counter, kThreads, kReps);
  EXPECT_EQ(m.memory().read(counter), static_cast<std::uint64_t>(kThreads) * kReps);
}

TEST(TicketLock, NoBackoffVariantAlsoCorrect) {
  constexpr int kThreads = 4, kReps = 20;
  Machine m{small_config(kThreads, false)};
  TicketLock lock{m, 0};
  Addr counter = m.heap().alloc_line();
  hammer(m, lock, counter, kThreads, kReps);
  EXPECT_EQ(m.memory().read(counter), static_cast<std::uint64_t>(kThreads) * kReps);
}

TEST(TicketLock, GrantsInFifoOrder) {
  constexpr int kThreads = 6;
  Machine m{small_config(kThreads, false)};
  TicketLock lock{m};
  std::vector<int> order;
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int t) -> Task<void> {
    co_await ctx.work(static_cast<Cycle>(1 + 50 * t));  // stagger arrivals
    co_await lock.lock(ctx);
    order.push_back(t);
    co_await ctx.work(500);  // hold so later arrivals must queue
    co_await lock.unlock(ctx);
  });
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(order[static_cast<std::size_t>(t)], t);
}

TEST(CLHLock, NoLostUpdates) {
  constexpr int kThreads = 8, kReps = 30;
  Machine m{small_config(kThreads, false)};
  CLHLock lock{m};
  Addr counter = m.heap().alloc_line();
  hammer(m, lock, counter, kThreads, kReps);
  EXPECT_EQ(m.memory().read(counter), static_cast<std::uint64_t>(kThreads) * kReps);
}

TEST(CLHLock, GrantsInArrivalOrder) {
  constexpr int kThreads = 5;
  Machine m{small_config(kThreads, false)};
  CLHLock lock{m};
  std::vector<int> order;
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int t) -> Task<void> {
    co_await ctx.work(static_cast<Cycle>(1 + 60 * t));
    co_await lock.lock(ctx);
    order.push_back(t);
    co_await ctx.work(600);
    co_await lock.unlock(ctx);
  });
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(order[static_cast<std::size_t>(t)], t);
}

TEST(TTSLock, TryLockFailsWhenHeldAndDropsLease) {
  // When the *holder* also leases the line, a competitor's try_lock is
  // simply parked until the unlock — the implicit-queue behaviour — so to
  // observe a genuine failed try_lock the lock must be held without a
  // lease. Pre-lock it functionally.
  Machine m{small_config(1, true)};
  TTSLock lock{m, {.use_lease = true}};
  m.memory().write(lock.addr(), 1);  // held by "someone else", no lease
  bool tried = false;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    const bool got = co_await lock.try_lock(ctx);
    EXPECT_FALSE(got);
    // Section 6: a failed try_lock must drop the lease immediately —
    // otherwise the holder's unlock would stall on our lease.
    EXPECT_FALSE(ctx.controller().lease_table().has(line_of(lock.addr())));
    tried = true;
  });
  m.run(10'000'000);
  ASSERT_TRUE(m.all_done());
  EXPECT_TRUE(tried);
  EXPECT_EQ(m.total_stats().lock_failed_trylocks, 1u);
}

TEST(TTSLock, LeasedTryLockOnLeasedHolderQueuesAndSucceeds) {
  // The implicit-queue property (Section 1): once granted the line, the
  // lock is free and the try_lock succeeds.
  Machine m{small_config(2, true)};
  TTSLock lock{m, {.use_lease = true}};
  Cycle unlock_time = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await lock.lock(ctx);
    co_await ctx.work(5000);
    co_await lock.unlock(ctx);
    unlock_time = ctx.now();
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(1000);
    const bool got = co_await lock.try_lock(ctx);
    EXPECT_TRUE(got);                   // granted only after the release...
    EXPECT_GE(ctx.now(), unlock_time);  // ...so it finds the lock free
    co_await lock.unlock(ctx);
  });
  m.run(10'000'000);
  ASSERT_TRUE(m.all_done());
  EXPECT_EQ(m.total_stats().lock_failed_trylocks, 0u);
}

TEST(TTSLock, LeasedHolderReleasesWithoutSecondMiss) {
  // The paper's core claim for locks: with the lease held for the critical
  // section, the unlock store is an L1 hit even under contention.
  Machine m{small_config(4, true)};
  TTSLock lock{m, {.use_lease = true}};
  Cycle unlock_cost = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await lock.lock(ctx);
    co_await ctx.work(2000);  // contenders pile up meanwhile
    const Cycle t0 = ctx.now();
    co_await lock.unlock(ctx);
    unlock_cost = ctx.now() - t0;
  });
  for (int c = 1; c < 4; ++c) {
    m.spawn(c, [&](Ctx& ctx) -> Task<void> {
      co_await ctx.work(200);
      co_await lock.lock(ctx);
      co_await lock.unlock(ctx);
    });
  }
  m.run(50'000'000);
  ASSERT_TRUE(m.all_done());
  // store (1 cycle, L1 hit: lease kept ownership) + release (1 cycle).
  EXPECT_LE(unlock_cost, 2u);
}

TEST(TTSLock, UnleasedHolderPaysSecondMissUnderContention) {
  // Baseline contrast for the test above: without a lease, spinners steal
  // the line during the critical section, so unlock re-misses.
  Machine m{small_config(4, false)};
  TTSLock lock{m, {.use_lease = false}};
  Cycle unlock_cost = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await lock.lock(ctx);
    co_await ctx.work(2000);
    const Cycle t0 = ctx.now();
    co_await lock.unlock(ctx);
    unlock_cost = ctx.now() - t0;
  });
  for (int c = 1; c < 4; ++c) {
    m.spawn(c, [&](Ctx& ctx) -> Task<void> {
      co_await ctx.work(200);
      co_await lock.lock(ctx);
      co_await lock.unlock(ctx);
    });
  }
  m.run(50'000'000);
  ASSERT_TRUE(m.all_done());
  EXPECT_GT(unlock_cost, 10u);  // upgrade round trip, not an L1 hit
}

TEST(Backoff, GrowsAndResets) {
  Machine m{small_config(1, false)};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    Backoff b{16, 256};
    EXPECT_EQ(b.current(), 16u);
    co_await b.pause(ctx);
    EXPECT_EQ(b.current(), 32u);
    co_await b.pause(ctx);
    co_await b.pause(ctx);
    co_await b.pause(ctx);
    co_await b.pause(ctx);
    EXPECT_EQ(b.current(), 256u);  // capped
    b.reset();
    EXPECT_EQ(b.current(), 16u);
  });
  m.run();
}

TEST(Backoff, PauseAdvancesTimeWithinBounds) {
  Machine m{small_config(1, false)};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    Backoff b{100, 100};
    const Cycle t0 = ctx.now();
    co_await b.pause(ctx);
    const Cycle waited = ctx.now() - t0;
    EXPECT_GE(waited, 51u);  // [cur/2+1, cur]
    EXPECT_LE(waited, 100u);
  });
  m.run();
}

}  // namespace
}  // namespace lrsim
