// Copyright (c) 2026 lrsim authors. MIT license.
//
// Unit tests for the hierarchical timer wheel (src/util/timer_wheel.hpp):
// pop order across cascade boundaries, the ascending-id same-cycle
// contract, remove mid-bucket and mid-batch, and a randomized oracle
// against a sorted reference. The wheel-vs-linear-scan *workload* fuzz
// lives in tests/open_loop_wheel_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "util/rng.hpp"
#include "util/timer_wheel.hpp"

namespace lrsim {
namespace {

using Entry = std::pair<Cycle, TimerWheel::Id>;

std::vector<Entry> drain(TimerWheel& w) {
  std::vector<Entry> out;
  while (!w.empty()) out.push_back(w.pop());
  return out;
}

TEST(TimerWheel, PopsInDeadlineOrderAcrossCascadeBoundaries) {
  // Deadlines straddling every interesting boundary: within the level-0
  // window (64 cycles), the level-1 window (4096), level-2 (2^18), and a
  // couple of far jumps that live in high levels until they cascade down.
  const std::vector<Cycle> times = {0,    1,    63,   64,   65,   127,  128,  4095,
                                    4096, 4097, 8191, 8192, (1u << 18) - 1, 1u << 18,
                                    (1u << 18) + 1, 1ull << 30, (1ull << 30) + 63, 1ull << 40};
  // Insert in a scrambled order so bucket FIFOs differ from pop order.
  std::vector<std::size_t> order(times.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = (i * 7) % order.size();
  TimerWheel w;
  for (std::size_t i : order) w.insert(static_cast<TimerWheel::Id>(i), times[i]);
  ASSERT_EQ(w.size(), times.size());
  const std::vector<Entry> popped = drain(w);
  ASSERT_EQ(popped.size(), times.size());
  for (std::size_t i = 0; i < popped.size(); ++i) {
    EXPECT_EQ(popped[i].first, times[popped[i].second]) << "entry " << i;
    if (i > 0) {
      EXPECT_LT(popped[i - 1].first, popped[i].first) << "entry " << i;
    }
  }
  EXPECT_TRUE(w.empty());
}

TEST(TimerWheel, SameCycleTiesPopInAscendingIdOrder) {
  // All on one cycle, inserted in descending id order: the determinism
  // contract says pops ignore insertion order and go by ascending id.
  TimerWheel w;
  for (int id = 9; id >= 0; --id) w.insert(static_cast<TimerWheel::Id>(id), 100);
  const std::vector<Entry> popped = drain(w);
  ASSERT_EQ(popped.size(), 10u);
  for (std::size_t i = 0; i < popped.size(); ++i) {
    EXPECT_EQ(popped[i].first, 100u);
    EXPECT_EQ(popped[i].second, static_cast<TimerWheel::Id>(i));
  }
}

TEST(TimerWheel, InsertAtCurrentCycleJoinsTheLiveBatch) {
  TimerWheel w;
  w.insert(5, 10);
  w.insert(9, 10);
  w.insert(3, 20);
  EXPECT_EQ(w.pop(), Entry(10, 5));
  // Re-arrival on the cycle being drained (a zero inter-arrival gap):
  // competes with the remaining ties, in id order — exactly what the
  // linear reference scan does.
  w.insert(1, 10);
  EXPECT_EQ(w.now(), 10u);
  EXPECT_EQ(w.pop(), Entry(10, 1));
  EXPECT_EQ(w.pop(), Entry(10, 9));
  EXPECT_EQ(w.pop(), Entry(20, 3));
  EXPECT_TRUE(w.empty());
}

TEST(TimerWheel, RemoveMidBucketUnlinksHeadMiddleAndTail) {
  TimerWheel w;
  w.insert(1, 300);
  w.insert(2, 300);
  w.insert(3, 300);
  w.insert(4, 300);
  w.remove(2);  // middle
  EXPECT_FALSE(w.pending(2));
  EXPECT_TRUE(w.pending(1));
  w.remove(1);  // head
  w.remove(4);  // tail
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(w.pop(), Entry(300, 3));
  EXPECT_TRUE(w.empty());

  // Removing from a live same-cycle batch is lazy but must still never
  // surface the id.
  w.insert(7, 300);
  w.insert(8, 300);
  EXPECT_EQ(w.pop(), Entry(300, 7));
  w.remove(8);
  w.insert(8, 301);  // reinsert while a stale heap slot exists
  EXPECT_EQ(w.pop(), Entry(301, 8));
  EXPECT_TRUE(w.empty());
}

TEST(TimerWheel, RemovedIdsCanBeReinsertedAtOtherCycles) {
  TimerWheel w;
  w.insert(0, 50);
  w.remove(0);
  EXPECT_TRUE(w.empty());
  w.insert(0, 9000);
  EXPECT_EQ(w.pop(), Entry(9000, 0));
}

TEST(TimerWheel, MisuseThrows) {
  TimerWheel w;
  EXPECT_THROW(w.pop(), std::logic_error);
  EXPECT_THROW(w.remove(0), std::logic_error);
  w.insert(0, 5);
  EXPECT_THROW(w.insert(0, 6), std::logic_error);  // already pending
  EXPECT_EQ(w.pop(), Entry(5, 0));
  EXPECT_THROW(w.insert(1, 4), std::logic_error);  // now() is 5: the past
}

TEST(TimerWheel, StartCursorOffsetsTheFirstWindow) {
  TimerWheel w{1000};
  EXPECT_THROW(w.insert(0, 999), std::logic_error);
  w.insert(0, 1000);
  w.insert(1, 1001);
  EXPECT_EQ(w.pop(), Entry(1000, 0));
  EXPECT_EQ(w.pop(), Entry(1001, 1));
}

// Randomized oracle: a stream of inserts / removes / pops must match a
// sorted (deadline, id) multiset exactly — deadlines drawn with jumps big
// enough to exercise every level, plus heavy same-cycle collisions.
TEST(TimerWheel, RandomizedMatchesSortedOracle) {
  Rng rng{0xfeedu};
  TimerWheel w;
  std::set<Entry> oracle;  // (when, id), unique ids
  std::vector<bool> live(512, false);
  std::vector<Cycle> when(512, 0);
  Cycle horizon = 0;
  int pops = 0;
  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t action = rng.next_below(10);
    if (action < 5) {  // insert a free id
      const TimerWheel::Id id = static_cast<TimerWheel::Id>(rng.next_below(512));
      if (live[id]) continue;
      // Mostly near the cursor (collisions), sometimes far (high levels).
      Cycle t = w.now();
      const std::uint64_t r = rng.next_below(100);
      if (r < 40) t += rng.next_below(4);
      else if (r < 80) t += rng.next_below(1 << 10);
      else t += rng.next_below(1ull << 40);
      w.insert(id, t);
      oracle.emplace(t, id);
      live[id] = true;
      when[id] = t;
      horizon = std::max(horizon, t);
    } else if (action < 7) {  // remove a random live id
      if (oracle.empty()) continue;
      const TimerWheel::Id id = static_cast<TimerWheel::Id>(rng.next_below(512));
      if (!live[id]) continue;
      w.remove(id);
      oracle.erase(Entry(when[id], id));
      live[id] = false;
    } else {  // pop
      if (oracle.empty()) continue;
      const Entry got = w.pop();
      const Entry want = *oracle.begin();
      ASSERT_EQ(got, want) << "step " << step;
      oracle.erase(oracle.begin());
      live[got.second] = false;
      ++pops;
    }
  }
  while (!oracle.empty()) {
    const Entry got = w.pop();
    ASSERT_EQ(got, *oracle.begin());
    oracle.erase(oracle.begin());
    ++pops;
  }
  EXPECT_TRUE(w.empty());
  EXPECT_GT(pops, 1000);  // the stream actually exercised the wheel
}

}  // namespace
}  // namespace lrsim
