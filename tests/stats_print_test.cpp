// Copyright (c) 2026 lrsim authors. MIT license.
//
// Stats::print regression: the per-type message breakdown must cover every
// counter in total_messages(). Guards against the bug where msgs_nack was
// counted in the total but missing from the printed breakdown.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

/// Parses the number right after `label` in `s`. Labels include their
/// leading ", " so "Ack " cannot match inside "Nack ".
std::uint64_t value_after(const std::string& s, const std::string& label) {
  const std::size_t at = s.find(label);
  EXPECT_NE(at, std::string::npos) << "label '" << label << "' missing in: " << s;
  if (at == std::string::npos) return 0;
  return std::stoull(s.substr(at + label.size()));
}

TEST(StatsPrint, BreakdownSumsToTotalMessagesInNackMode) {
  MachineConfig cfg = small_config(4, /*leases=*/true);
  cfg.nack_on_lease = true;
  cfg.max_lease_time = 2000;
  Machine m{cfg, /*seed=*/21};
  const Addr a = m.heap().alloc_line();
  testing::run_workers(m, 4, [a](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 30; ++i) {
      co_await ctx.lease(a, 400);
      (void)co_await ctx.faa(a, 1);
      co_await ctx.work(50 + ctx.rng().next_below(100));
      co_await ctx.release(a);
    }
  });

  const Stats total = m.total_stats();
  ASSERT_GT(total.msgs_nack, 0u) << "workload produced no NACKs; test would not cover the bug";

  std::ostringstream os;
  total.print(os, "nack-mode");
  const std::string s = os.str();

  const std::uint64_t sum = value_after(s, "(GetS ") + value_after(s, ", GetX ") +
                            value_after(s, ", Inv ") + value_after(s, ", Dwn ") +
                            value_after(s, ", Data ") + value_after(s, ", Ack ") +
                            value_after(s, ", WB ") + value_after(s, ", Nack ");
  EXPECT_EQ(sum, total.total_messages()) << s;
  EXPECT_EQ(value_after(s, "msgs="), total.total_messages()) << s;
  EXPECT_EQ(value_after(s, ", Nack "), total.msgs_nack) << s;
}

}  // namespace
}  // namespace lrsim
