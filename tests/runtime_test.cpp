// Copyright (c) 2026 lrsim authors. MIT license.
//
// Coroutine runtime tests: task composition, spawn/run semantics, timing of
// work(), exception propagation, machine lifecycle.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

Task<std::uint64_t> triple_nested(Ctx& ctx, Addr a) {
  co_await ctx.store(a, 5);
  co_return co_await ctx.load(a);
}

Task<std::uint64_t> double_nested(Ctx& ctx, Addr a) {
  const std::uint64_t v = co_await triple_nested(ctx, a);
  co_return v * 2;
}

TEST(Runtime, NestedTaskComposition) {
  Machine m{small_config(1, false)};
  Addr a = m.heap().alloc_line();
  std::uint64_t result = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> { result = co_await double_nested(ctx, a); });
  m.run();
  EXPECT_EQ(result, 10u);
}

TEST(Runtime, WorkAdvancesExactCycles) {
  Machine m{small_config(1, false)};
  Cycle t1 = 0, t2 = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(123);
    t1 = ctx.now();
    co_await ctx.work(877);
    t2 = ctx.now();
  });
  m.run();
  EXPECT_EQ(t1, 123u);
  EXPECT_EQ(t2, 1000u);
}

TEST(Runtime, ThreadsRunConcurrentlyInSimTime) {
  Machine m{small_config(4, false)};
  Cycle end = testing::run_workers(m, 4, [&](Ctx& ctx, int) -> Task<void> {
    co_await ctx.work(10'000);
  });
  // Four threads of 10k cycles each run concurrently, not 40k serially.
  EXPECT_EQ(end, 10'000u);
}

TEST(Runtime, ExceptionInWorkloadPropagatesFromRun) {
  Machine m{small_config(1, false)};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(10);
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(m.run(), std::runtime_error);
}

TEST(Runtime, ExceptionThroughNestedTasks) {
  Machine m{small_config(1, false)};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    auto thrower = [](Ctx& c) -> Task<std::uint64_t> {
      co_await c.work(5);
      throw std::logic_error("inner");
    };
    const std::uint64_t v = co_await thrower(ctx);
    (void)v;
    ADD_FAILURE() << "unreachable";
  });
  EXPECT_THROW(m.run(), std::logic_error);
}

TEST(Runtime, RunWithLimitLeavesUnfinishedThreads) {
  Machine m{small_config(1, false)};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> { co_await ctx.work(1'000'000); });
  m.run(/*limit=*/1000);
  EXPECT_FALSE(m.all_done());
  EXPECT_EQ(m.threads_finished(), 0u);
  m.run();  // resume to completion
  EXPECT_TRUE(m.all_done());
}

TEST(Runtime, MachineTeardownWithSuspendedThreadsIsClean) {
  // Destroying a machine mid-run must not crash or leak (ASan-checked in CI
  // builds): frames suspended on memory ops are destroyed with the machine.
  auto make_and_abandon = [] {
    Machine m{small_config(2, false)};
    Addr a = m.heap().alloc_line();
    m.spawn(0, [&](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < 1000; ++i) co_await ctx.faa(a, 1);
    });
    m.spawn(1, [&](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < 1000; ++i) co_await ctx.faa(a, 1);
    });
    m.run(/*limit=*/500);  // stop mid-flight
  };
  EXPECT_NO_THROW(make_and_abandon());
}

TEST(Runtime, SpawnAfterRunContinues) {
  Machine m{small_config(2, false)};
  Addr a = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> { co_await ctx.store(a, 1); });
  m.run();
  EXPECT_EQ(m.memory().read(a), 1u);
  m.spawn(1, [&](Ctx& ctx) -> Task<void> { co_await ctx.store(a, 2); });
  m.run();
  EXPECT_EQ(m.memory().read(a), 2u);
}

TEST(Runtime, PerCoreRngStreamsDiffer) {
  Machine m{small_config(2, false)};
  std::uint64_t r0 = 0, r1 = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    r0 = ctx.rng().next();
    co_return;
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    r1 = ctx.rng().next();
    co_return;
  });
  m.run();
  EXPECT_NE(r0, r1);
}

TEST(Runtime, IdenticalSeedsGiveIdenticalRuns) {
  auto trace = [](std::uint64_t seed) {
    Machine m{small_config(4, true), seed};
    Addr a = m.heap().alloc_line();
    testing::run_workers(m, 4, [&](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < 50; ++i) {
        co_await ctx.lease(a, 500);
        co_await ctx.faa(a, ctx.rng().next_below(10));
        co_await ctx.release(a);
        co_await ctx.work(ctx.rng().next_below(100));
      }
    });
    return std::pair{m.events().now(), m.memory().read(a)};
  };
  EXPECT_EQ(trace(7), trace(7));
  EXPECT_NE(trace(7), trace(8));  // and the seed actually matters
}

TEST(Runtime, CountOpAccumulatesPerCore) {
  Machine m{small_config(2, false)};
  testing::run_workers(m, 2, [&](Ctx& ctx, int t) -> Task<void> {
    for (int i = 0; i < 3 + t; ++i) ctx.count_op();
    co_return;
  });
  EXPECT_EQ(m.core_stats(0).ops_completed, 3u);
  EXPECT_EQ(m.core_stats(1).ops_completed, 4u);
  EXPECT_EQ(m.total_stats().ops_completed, 7u);
}

TEST(Runtime, StatsAggregationSums) {
  Stats a, b;
  a.l1_hits = 3;
  a.msgs_data = 2;
  b.l1_hits = 4;
  b.msgs_data = 5;
  b.txn_aborts = 1;
  a += b;
  EXPECT_EQ(a.l1_hits, 7u);
  EXPECT_EQ(a.msgs_data, 7u);
  EXPECT_EQ(a.txn_aborts, 1u);
}

TEST(Runtime, EnergyModelTracksMessagesAndMisses) {
  Stats s;
  s.ops_completed = 10;
  s.l1_hits = 100;
  s.l1_misses = 10;
  s.l2_accesses = 10;
  s.msgs_data = 20;
  const double e = s.energy_nj();
  EXPECT_GT(e, 0.0);
  EXPECT_DOUBLE_EQ(s.energy_per_op_nj(), e / 10.0);
  Stats more = s;
  more.msgs_data += 100;
  EXPECT_GT(more.energy_nj(), e);  // more traffic => more energy
  EXPECT_DOUBLE_EQ(s.messages_per_op(), 2.0);
  EXPECT_DOUBLE_EQ(s.misses_per_op(), 1.0);
}

}  // namespace
}  // namespace lrsim
