// Copyright (c) 2026 lrsim authors. MIT license.
//
// LazySkipList set semantics, Lotan–Shavit deleteMin, and the global-lock
// sequential-skiplist PQ used by the lease variant.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ds/skiplist_pq.hpp"
#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

TEST(LazySkipList, SequentialSetSemantics) {
  Machine m{small_config(1, false)};
  LazySkipList s{m};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    const bool i1 = co_await s.insert(ctx, 10);
    EXPECT_TRUE(i1);
    const bool i2 = co_await s.insert(ctx, 10);
    EXPECT_FALSE(i2);  // duplicate
    const bool c1 = co_await s.contains(ctx, 10);
    EXPECT_TRUE(c1);
    const bool c2 = co_await s.contains(ctx, 11);
    EXPECT_FALSE(c2);
    const bool r1 = co_await s.remove(ctx, 10);
    EXPECT_TRUE(r1);
    const bool r2 = co_await s.remove(ctx, 10);
    EXPECT_FALSE(r2);
    const bool c3 = co_await s.contains(ctx, 10);
    EXPECT_FALSE(c3);
  });
  m.run();
}

TEST(LazySkipList, KeepsSortedOrder) {
  Machine m{small_config(1, false)};
  LazySkipList s{m};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (std::uint64_t k : {50, 10, 30, 20, 40}) co_await s.insert(ctx, k);
  });
  m.run();
  EXPECT_EQ(s.snapshot(), (std::vector<std::uint64_t>{10, 20, 30, 40, 50}));
}

TEST(LazySkipList, ConcurrentInsertsAllLand) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  Machine m{small_config(kThreads, false)};
  LazySkipList s{m};
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int t) -> Task<void> {
    for (int i = 0; i < kPerThread; ++i) {
      const bool ok = co_await s.insert(ctx, static_cast<std::uint64_t>((t + 1) * 1000 + i));
      EXPECT_TRUE(ok);
    }
  });
  const auto snap = s.snapshot();
  EXPECT_EQ(snap.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end()));
}

TEST(LazySkipList, ConcurrentInsertRemoveConserves) {
  constexpr int kThreads = 6;
  Machine m{small_config(kThreads, false)};
  LazySkipList s{m};
  // Pre-populate evens sequentially.
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (std::uint64_t k = 2; k <= 200; k += 2) co_await s.insert(ctx, k);
  });
  m.run();

  int removed_count = 0, inserted_count = 0;
  Machine* mp = &m;
  testing::run_workers(m, kThreads, [&, mp](Ctx& ctx, int t) -> Task<void> {
    (void)mp;
    if (t % 2 == 0) {
      // Removers take evens in disjoint ranges.
      for (std::uint64_t k = static_cast<std::uint64_t>(2 + t * 30); k < static_cast<std::uint64_t>(2 + t * 30 + 30);
           k += 2) {
        const bool ok = co_await s.remove(ctx, k);
        if (ok) ++removed_count;
      }
    } else {
      // Inserters add odds.
      for (int i = 0; i < 15; ++i) {
        const bool ok = co_await s.insert(ctx, static_cast<std::uint64_t>(1 + t * 1000 + 2 * i));
        if (ok) ++inserted_count;
      }
    }
  });
  const auto snap = s.snapshot();
  EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end()));
  EXPECT_EQ(snap.size(), 100u - static_cast<std::size_t>(removed_count) +
                             static_cast<std::size_t>(inserted_count));
}

TEST(LotanShavitPq, SequentialMinOrder) {
  Machine m{small_config(1, false)};
  LotanShavitPq pq{m};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (std::uint64_t p : {30, 10, 20, 10, 40}) co_await pq.insert(ctx, p);
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 5; ++i) {
      std::optional<std::uint64_t> v = co_await pq.delete_min(ctx);
      CO_ASSERT_TRUE(v.has_value());
      out.push_back(*v);
    }
    EXPECT_EQ(out, (std::vector<std::uint64_t>{10, 10, 20, 30, 40}));
    std::optional<std::uint64_t> empty = co_await pq.delete_min(ctx);
    EXPECT_FALSE(empty.has_value());
  });
  m.run();
}

// Both PQ implementations must conserve elements and respect weak ordering
// under concurrency (each deleteMin returns a value that was inserted, each
// inserted value is returned at most once).
template <typename Pq>
void pq_conservation(Machine& m, Pq& pq, int threads, int reps) {
  std::multiset<std::uint64_t> inserted, removed;
  testing::run_workers(m, threads, [&, reps](Ctx& ctx, int t) -> Task<void> {
    for (int i = 0; i < reps; ++i) {
      const std::uint64_t prio = 1 + ctx.rng().next_below(100);
      co_await pq.insert(ctx, prio);
      inserted.insert(prio);
      if (i % 2 == 1) {
        std::optional<std::uint64_t> v = co_await pq.delete_min(ctx);
        if (v.has_value()) removed.insert(*v);
      }
    }
    (void)t;
  });
  // removed ⊆ inserted (multiset inclusion).
  for (std::uint64_t v : removed) {
    auto it = inserted.find(v);
    ASSERT_NE(it, inserted.end()) << "removed value never inserted: " << v;
    inserted.erase(it);
  }
}

TEST(LotanShavitPq, ConcurrentConservation) {
  Machine m{small_config(8, false)};
  LotanShavitPq pq{m};
  pq_conservation(m, pq, 8, 20);
}

TEST(GlobalLockSkiplistPq, ConcurrentConservationLeased) {
  Machine m{small_config(8, true)};
  GlobalLockSkiplistPq pq{m, /*use_lease=*/true};
  pq_conservation(m, pq, 8, 20);
}

TEST(GlobalLockSkiplistPq, ConcurrentConservationUnleased) {
  Machine m{small_config(8, false)};
  GlobalLockSkiplistPq pq{m, /*use_lease=*/false};
  pq_conservation(m, pq, 8, 20);
}

TEST(GlobalLockSkiplistPq, SequentialMinOrder) {
  Machine m{small_config(1, true)};
  GlobalLockSkiplistPq pq{m, true};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (std::uint64_t p : {5, 1, 3, 2, 4}) co_await pq.insert(ctx, p);
    for (std::uint64_t want = 1; want <= 5; ++want) {
      std::optional<std::uint64_t> v = co_await pq.delete_min(ctx);
      CO_ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, want);
    }
  });
  m.run();
}

TEST(LotanShavitPq, DeleteMinReturnsSmallestUnderLowConcurrency) {
  // With two threads alternating strictly, deleteMin must return the global
  // minimum of the stable set (weak ordering check: returned values from a
  // quiescent prefix are the k smallest).
  Machine m{small_config(1, false)};
  LotanShavitPq pq{m};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (std::uint64_t p = 100; p >= 1; --p) co_await pq.insert(ctx, p);
    for (std::uint64_t want = 1; want <= 50; ++want) {
      std::optional<std::uint64_t> v = co_await pq.delete_min(ctx);
      CO_ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, want);
    }
  });
  m.run();
}

}  // namespace
}  // namespace lrsim
