// Copyright (c) 2026 lrsim authors. MIT license.
//
// Replay determinism of the workload frontend: the same config must produce
// byte-identical sweep CSVs across repeated runs, across --jobs (host
// parallelism over matrix points), and across --sim-threads (the parallel
// in-run kernel), and the shifting-phase schedule must fire at identical
// simulated cycles everywhere. Open-loop (client-multiplexed) workloads are
// held to the same bar as closed-loop ones.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "bench/sweep.hpp"

namespace lrsim::bench {
namespace {

std::string sweep_csv(const std::string& config_text, int jobs, int sim_threads) {
  const auto cfg = workload::ConfigFile::parse_string(config_text, "<test>");
  const SweepConfig sc = parse_sweep_config(cfg);
  const std::vector<SweepRow> rows = run_sweep(sc, jobs, sim_threads);
  std::ostringstream os;
  sweep_csv_table(rows).write_csv(os);
  return os.str();
}

constexpr const char* kCounterConfig = R"(
[workload]
ds = counter
policies = tts, tts+lease, cohort+lease
ops = 15
[sweep]
threads = 2, 4
)";

constexpr const char* kStackConfig = R"(
[workload]
ds = treiber_stack
policies = base, lease
ops = 15
[sweep]
threads = 2, 4
mixes = 50/50, 90/10
)";

TEST(WorkloadDeterminism, SameConfigTwiceIsByteIdentical) {
  EXPECT_EQ(sweep_csv(kStackConfig, 1, 0), sweep_csv(kStackConfig, 1, 0));
}

TEST(WorkloadDeterminism, JobsDoNotChangeCsvBytes) {
  const std::string serial = sweep_csv(kCounterConfig, 1, 0);
  EXPECT_EQ(serial, sweep_csv(kCounterConfig, 2, 0));
  EXPECT_EQ(serial, sweep_csv(kCounterConfig, 3, 0));
}

TEST(WorkloadDeterminism, SimThreadsDoNotChangeCsvBytes) {
  // threads = 4 makes the parallel kernel eligible at sim_threads 2
  // (>= 2 cores per shard); the 2-thread rows fall back to serial, which
  // must also be byte-identical.
  EXPECT_EQ(sweep_csv(kCounterConfig, 1, 0), sweep_csv(kCounterConfig, 1, 2));
}

/// Runs one workload on a hand-built machine so the test can inspect the
/// machine (par_stats, phase logs) — run_one() hides it.
struct ManualRun {
  Stats stats;
  Cycle cycles = 0;
  std::uint64_t parallel_events = 0;
};

ManualRun run_manual(const workload::WorkloadSpec& spec, const std::string& policy, int threads,
                     int sim_threads, workload::PhaseLog* phase_log = nullptr) {
  const workload::WorkloadRun wr = workload::make_workload(spec, policy, phase_log);
  MachineConfig cfg;
  cfg.num_cores = threads;
  if (wr.configure) wr.configure(cfg);
  Machine m{cfg, spec.seed};
  m.set_sim_threads(sim_threads);
  auto worker = wr.build(m);
  const Stats prefill = m.total_stats();
  const Cycle start = m.events().now();
  for (int t = 0; t < threads; ++t) {
    m.spawn(t, [worker, t](Ctx& ctx) { return worker(ctx, t); });
  }
  m.run();
  EXPECT_TRUE(m.all_done());
  ManualRun r;
  r.stats = m.total_stats();
  r.stats -= prefill;
  r.cycles = m.events().now() - start;
  if (const ParKernelStats* ps = m.par_stats()) r.parallel_events = ps->parallel_events;
  return r;
}

TEST(WorkloadDeterminism, ParallelKernelEngagesAndMatchesSerial) {
  workload::WorkloadSpec spec;
  spec.ds = "counter";
  spec.ops = 25;
  const ManualRun serial = run_manual(spec, "tts", /*threads=*/4, /*sim_threads=*/0);
  const ManualRun par = run_manual(spec, "tts", /*threads=*/4, /*sim_threads=*/2);
  // Not vacuous: the parallel kernel really ran...
  EXPECT_GT(par.parallel_events, 0u);
  EXPECT_EQ(serial.parallel_events, 0u);
  // ...and produced bit-identical simulation results.
  EXPECT_EQ(serial.cycles, par.cycles);
  EXPECT_EQ(serial.stats, par.stats);
}

workload::WorkloadSpec shifting_pq_spec() {
  workload::WorkloadSpec spec;
  spec.ds = "skiplist_pq";
  spec.ops = 30;
  spec.key_range = 1 << 10;
  spec.dist.shift_every = 2000;  // several phase boundaries within the run
  spec.dist.shift_by = 64;
  return spec;
}

TEST(WorkloadDeterminism, ShiftingPhaseFiresAtIdenticalSimCycles) {
  const workload::WorkloadSpec spec = shifting_pq_spec();
  workload::PhaseLog log_a, log_b;
  const ManualRun a = run_manual(spec, "global-lock", 4, 0, &log_a);
  const ManualRun b = run_manual(spec, "global-lock", 4, 0, &log_b);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.stats, b.stats);
  ASSERT_EQ(log_a.per_core.size(), 4u);
  ASSERT_EQ(log_a.per_core.size(), log_b.per_core.size());
  std::size_t transitions = 0;
  for (std::size_t c = 0; c < log_a.per_core.size(); ++c) {
    EXPECT_EQ(log_a.per_core[c], log_b.per_core[c]) << "core " << c;
    transitions += log_a.per_core[c].size();
    // Each logged transition must land past at least one phase boundary —
    // the schedule is a pure function of simulated time.
    for (const Cycle at : log_a.per_core[c]) EXPECT_GE(at, spec.dist.shift_every);
  }
  EXPECT_GT(transitions, 0u) << "run too short to cross any phase boundary";
}

TEST(WorkloadDeterminism, OpenLoopMultiplexedClientsAreDeterministic) {
  workload::WorkloadSpec spec;
  spec.ds = "treiber_stack";
  spec.ops = 10;
  spec.clients = 6;  // 6 clients on 4 cores: cores 0/1 serve two each
  spec.arrival.kind = workload::ArrivalKind::kPoisson;
  spec.arrival.period = 200;
  const ManualRun a = run_manual(spec, "lease", 4, 0);
  const ManualRun b = run_manual(spec, "lease", 4, 0);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.stats, b.stats);
  // 6 clients x 10 ops, every op either pushes or pops exactly once.
  EXPECT_EQ(a.stats.ops_completed, 60u);
}

TEST(WorkloadDeterminism, OpenLoopSeedChangesTheRun) {
  workload::WorkloadSpec spec;
  spec.ds = "treiber_stack";
  spec.ops = 10;
  spec.clients = 6;
  spec.arrival.kind = workload::ArrivalKind::kPoisson;
  spec.arrival.period = 200;
  const ManualRun a = run_manual(spec, "base", 4, 0);
  spec.seed = 2;
  const ManualRun b = run_manual(spec, "base", 4, 0);
  EXPECT_NE(a.cycles, b.cycles);  // different arrivals => different schedule
}

TEST(WorkloadDeterminism, KeyedSetsRunBothPoliciesDeterministically) {
  // The keyed sets share one mix shape: op A updates (an extra
  // next_bool(0.5) picks insert vs remove), op B looks up; mix = 0.2 is the
  // paper's search-dominated low-contention point.
  for (const char* ds : {"hashtable", "harris_list", "skiplist_set", "bst"}) {
    workload::WorkloadSpec spec;
    spec.ds = ds;
    spec.ops = 10;
    spec.key_range = 256;
    spec.prefill = 32;
    spec.mix = 0.2;
    for (const std::string& policy : workload::policies_for(ds)) {
      SCOPED_TRACE(::testing::Message() << ds << " / " << policy);
      const ManualRun a = run_manual(spec, policy, 4, 0);
      const ManualRun b = run_manual(spec, policy, 4, 0);
      EXPECT_EQ(a.cycles, b.cycles);
      EXPECT_EQ(a.stats, b.stats);
      // 4 cores x 10 ops, each exactly one insert/remove/lookup.
      EXPECT_EQ(a.stats.ops_completed, 40u);
    }
  }
}

TEST(WorkloadDeterminism, ClosedLoopRejectsClientMultiplexing) {
  workload::WorkloadSpec spec;
  spec.ds = "counter";
  spec.clients = 8;  // != threads, closed loop
  const workload::WorkloadRun wr = workload::make_workload(spec, "tts");
  MachineConfig cfg;
  cfg.num_cores = 4;
  wr.configure(cfg);
  Machine m{cfg, 1};
  EXPECT_THROW(wr.build(m), std::invalid_argument);
}

}  // namespace
}  // namespace lrsim::bench
