// Copyright (c) 2026 lrsim authors. MIT license.
//
// MESI protocol tests (Section 8 "Other Protocols"): the clean-Exclusive
// state, silent E->M upgrade, dirty-only writebacks, clean evictions, and
// lease interaction with E lines.
#include <gtest/gtest.h>

#include "sim_test_util.hpp"

namespace lrsim {
namespace {

MachineConfig mesi_config(int cores, bool leases) {
  MachineConfig cfg = testing::small_config(cores, leases);
  cfg.protocol = CoherenceProtocol::kMESI;
  return cfg;
}

TEST(Mesi, SoleReaderGetsExclusive) {
  Machine m{mesi_config(2, false)};
  Addr a = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> { co_await ctx.load(a); });
  m.run();
  EXPECT_EQ(m.controller(0).line_state(line_of(a)), LineState::E);
  EXPECT_EQ(m.directory().line_state(line_of(a)), Directory::LineSt::kExclusive);
  EXPECT_EQ(m.directory().owner_of(line_of(a)), 0);
}

TEST(Mesi, MsiSoleReaderStaysShared) {
  Machine m{testing::small_config(2, false)};  // MSI default
  Addr a = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> { co_await ctx.load(a); });
  m.run();
  EXPECT_EQ(m.controller(0).line_state(line_of(a)), LineState::S);
  EXPECT_EQ(m.directory().line_state(line_of(a)), Directory::LineSt::kShared);
}

TEST(Mesi, SilentUpgradeCostsNoMessages) {
  Machine m{mesi_config(1, false)};
  Addr a = m.heap().alloc_line();
  Cycle write_cost = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.load(a);  // E grant
    const Cycle t0 = ctx.now();
    co_await ctx.store(a, 1);  // silent E -> M
    write_cost = ctx.now() - t0;
  });
  m.run();
  EXPECT_EQ(write_cost, 1u);  // pure L1 hit
  EXPECT_EQ(m.controller(0).line_state(line_of(a)), LineState::M);
  Stats s = m.total_stats();
  // Only the initial GetS + data — the write generated zero traffic.
  EXPECT_EQ(s.msgs_getx, 0u);
  EXPECT_EQ(s.total_messages(), 2u);
}

TEST(Mesi, MsiReadThenWriteNeedsUpgrade) {
  Machine m{testing::small_config(1, false)};
  Addr a = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.load(a);
    co_await ctx.store(a, 1);
  });
  m.run();
  Stats s = m.total_stats();
  EXPECT_EQ(s.msgs_getx, 1u);  // the upgrade MESI saves
  EXPECT_GT(s.total_messages(), 2u);
}

TEST(Mesi, SecondReaderDowngradesCleanExclusiveWithoutWriteback) {
  Machine m{mesi_config(2, false)};
  Addr a = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> { co_await ctx.load(a); });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(500);
    const std::uint64_t v = co_await ctx.load(a);
    EXPECT_EQ(v, 0u);
  });
  m.run();
  EXPECT_EQ(m.controller(0).line_state(line_of(a)), LineState::S);
  EXPECT_EQ(m.controller(1).line_state(line_of(a)), LineState::S);
  // The owner never wrote: downgrade must not charge a writeback.
  EXPECT_EQ(m.total_stats().msgs_wb, 0u);
}

TEST(Mesi, SecondReaderAfterSilentWriteDoesWriteBack) {
  Machine m{mesi_config(2, false)};
  Addr a = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.load(a);
    co_await ctx.store(a, 9);  // silent upgrade: directory still thinks E
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(500);
    const std::uint64_t v = co_await ctx.load(a);
    EXPECT_EQ(v, 9u);  // dirty data forwarded correctly
  });
  m.run();
  EXPECT_EQ(m.total_stats().msgs_wb, 1u);
}

TEST(Mesi, WriterInvalidatesExclusiveOwner) {
  Machine m{mesi_config(2, false)};
  Addr a = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> { co_await ctx.load(a); });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(500);
    co_await ctx.store(a, 3);
  });
  m.run();
  EXPECT_EQ(m.controller(0).line_state(line_of(a)), LineState::I);
  EXPECT_EQ(m.controller(1).line_state(line_of(a)), LineState::M);
  EXPECT_EQ(m.memory().read(a), 3u);
}

TEST(Mesi, CleanExclusiveEvictionIsFreeAndForgotten) {
  MachineConfig cfg = mesi_config(1, false);
  Machine m{cfg};
  const int sets = cfg.l1_sets;
  Addr a = line_base(6000);
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.load(a);  // E
    // Evict it with reads (all E grants, clean evictions).
    for (int i = 1; i <= 5; ++i) co_await ctx.load(line_base(static_cast<LineId>(6000 + i * sets)));
    EXPECT_EQ(ctx.controller().line_state(line_of(a)), LineState::I);
  });
  m.run();
  // No writebacks anywhere, and the directory no longer lists an owner.
  EXPECT_EQ(m.total_stats().msgs_wb, 0u);
  EXPECT_EQ(m.directory().line_state(line_of(a)), Directory::LineSt::kUncached);
  // Re-reading must not probe the departed owner (would wedge otherwise).
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    const std::uint64_t v = co_await ctx.load(a);
    EXPECT_EQ(v, 0u);
  });
  m.run(10'000'000);
  ASSERT_TRUE(m.all_done());
}

TEST(Mesi, LeaseOnExclusiveLineGrantsImmediately) {
  Machine m{mesi_config(2, true)};
  Addr a = m.heap().alloc_line();
  Cycle lease_cost = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.load(a);  // E
    const Cycle t0 = ctx.now();
    co_await ctx.lease(a, 2000);
    lease_cost = ctx.now() - t0;
    EXPECT_TRUE(ctx.controller().lease_table().pins(line_of(a)));
    co_await ctx.release(a);
  });
  m.run();
  EXPECT_EQ(lease_cost, 1u);  // E qualifies as exclusive: no transaction
  EXPECT_EQ(m.total_stats().msgs_getx, 0u);
}

TEST(Mesi, LeasedExclusiveLineParksProbes) {
  Machine m{mesi_config(2, true)};
  Addr a = m.heap().alloc_line();
  Cycle store_done = 0, release_time = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.load(a);
    co_await ctx.lease(a, 10'000);
    co_await ctx.work(2000);
    co_await ctx.release(a);
    release_time = ctx.now();
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(300);
    co_await ctx.store(a, 1);
    store_done = ctx.now();
  });
  m.run();
  EXPECT_GE(store_done, release_time);
  EXPECT_EQ(m.total_stats().probes_queued, 1u);
}

TEST(Mesi, SharedCounterConservationUnderMesi) {
  constexpr int kCores = 8;
  Machine m{mesi_config(kCores, true)};
  Addr a = m.heap().alloc_line();
  testing::run_workers(m, kCores, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 25; ++i) {
      co_await ctx.lease(a, 2000);
      const std::uint64_t v = co_await ctx.load(a);
      co_await ctx.store(a, v + 1);
      co_await ctx.release(a);
    }
  });
  EXPECT_EQ(m.memory().read(a), static_cast<std::uint64_t>(kCores) * 25);
}

TEST(Mesi, ReadMostlyWorkloadSendsFewerMessagesThanMsi) {
  // The canonical MESI win: private read-then-write sequences.
  auto run = [](CoherenceProtocol proto) {
    MachineConfig cfg = testing::small_config(4, false);
    cfg.protocol = proto;
    Machine m{cfg};
    SimHeap& heap = m.heap();
    std::vector<Addr> priv;
    for (int i = 0; i < 4 * 8; ++i) priv.push_back(heap.alloc_line());
    testing::run_workers(m, 4, [&](Ctx& ctx, int t) -> Task<void> {
      for (int i = 0; i < 8; ++i) {
        const Addr a = priv[static_cast<std::size_t>(t * 8 + i)];
        const std::uint64_t v = co_await ctx.load(a);
        co_await ctx.store(a, v + 1);
      }
    });
    return m.total_stats().total_messages();
  };
  EXPECT_LT(run(CoherenceProtocol::kMESI), run(CoherenceProtocol::kMSI));
}

}  // namespace
}  // namespace lrsim
