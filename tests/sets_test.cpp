// Copyright (c) 2026 lrsim authors. MIT license.
//
// The low-contention search structures (hash table, Harris list, lock-free
// skiplist, external BST) checked against a host-side reference set, both
// sequentially and under concurrent disjoint/overlapping workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "ds/bst.hpp"
#include "ds/harris_list.hpp"
#include "ds/hashtable.hpp"
#include "ds/skiplist_set.hpp"
#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

// Uniform driver: random insert/remove/contains mirrored against std::set,
// executed by a single simulated thread (sequential oracle check).
template <typename SetT>
void oracle_check(Machine& m, SetT& s, int ops, std::uint64_t key_range) {
  m.spawn(0, [&, ops, key_range](Ctx& ctx) -> Task<void> {
    std::set<std::uint64_t> oracle;
    for (int i = 0; i < ops; ++i) {
      const std::uint64_t key = 1 + ctx.rng().next_below(key_range);
      const std::uint64_t dice = ctx.rng().next_below(10);
      if (dice < 4) {
        const bool got = co_await s.insert(ctx, key);
        EXPECT_EQ(got, oracle.insert(key).second) << "insert " << key << " at op " << i;
      } else if (dice < 8) {
        const bool got = co_await s.remove(ctx, key);
        EXPECT_EQ(got, oracle.erase(key) > 0) << "remove " << key << " at op " << i;
      } else {
        const bool got = co_await s.contains(ctx, key);
        EXPECT_EQ(got, oracle.contains(key)) << "contains " << key << " at op " << i;
      }
    }
  });
  m.run(1'000'000'000);
  ASSERT_TRUE(m.all_done());
}

TEST(HarrisList, SequentialOracle) {
  Machine m{small_config(1, false)};
  HarrisList s{m};
  oracle_check(m, s, 400, 50);
  const auto snap = s.snapshot();
  EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end()));
}

TEST(HarrisList, SequentialOracleLeased) {
  Machine m{small_config(1, true)};
  HarrisList s{m, {.use_lease = true}};
  oracle_check(m, s, 400, 50);
}

TEST(LockFreeSkipList, SequentialOracle) {
  Machine m{small_config(1, false)};
  LockFreeSkipList s{m};
  oracle_check(m, s, 400, 60);
}

TEST(LockFreeSkipList, SequentialOracleLeased) {
  Machine m{small_config(1, true)};
  LockFreeSkipList s{m, {.use_lease = true}};
  oracle_check(m, s, 400, 60);
}

TEST(ExternalBst, SequentialOracle) {
  Machine m{small_config(1, false)};
  ExternalBst s{m};
  oracle_check(m, s, 400, 60);
}

TEST(ExternalBst, SequentialOracleLeased) {
  Machine m{small_config(1, true)};
  ExternalBst s{m, {.use_lease = true}};
  oracle_check(m, s, 400, 60);
}

TEST(LockedHashTable, SequentialOracleKeyValue) {
  Machine m{small_config(1, false)};
  LockedHashTable h{m, {.buckets = 64, .stripes = 8}};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    std::map<std::uint64_t, std::uint64_t> oracle;
    for (int i = 0; i < 400; ++i) {
      const std::uint64_t key = 1 + ctx.rng().next_below(80);
      const std::uint64_t dice = ctx.rng().next_below(10);
      if (dice < 4) {
        const std::uint64_t val = ctx.rng().next();
        const bool fresh = co_await h.insert(ctx, key, val);
        EXPECT_EQ(fresh, !oracle.contains(key));
        oracle[key] = val;
      } else if (dice < 7) {
        const bool got = co_await h.remove(ctx, key);
        EXPECT_EQ(got, oracle.erase(key) > 0);
      } else {
        std::optional<std::uint64_t> got = co_await h.get(ctx, key);
        if (oracle.contains(key)) {
          CO_ASSERT_TRUE(got.has_value());
          EXPECT_EQ(*got, oracle[key]);
        } else {
          EXPECT_FALSE(got.has_value());
        }
      }
    }
    EXPECT_EQ(h.size(), oracle.size());
  });
  m.run(1'000'000'000);
  ASSERT_TRUE(m.all_done());
}

// Concurrent disjoint-key workload: each thread owns a key slice, so the
// final contents are exactly predictable for any linearizable set.
template <typename SetT>
void disjoint_check(Machine& m, SetT& s, int threads) {
  constexpr int kPerThread = 20;
  testing::run_workers(m, threads, [&](Ctx& ctx, int t) -> Task<void> {
    const std::uint64_t base = static_cast<std::uint64_t>(t + 1) * 1000;
    for (int i = 0; i < kPerThread; ++i) {
      const bool ok = co_await s.insert(ctx, base + static_cast<std::uint64_t>(i));
      EXPECT_TRUE(ok);
    }
    for (int i = 0; i < kPerThread; i += 2) {
      const bool ok = co_await s.remove(ctx, base + static_cast<std::uint64_t>(i));
      EXPECT_TRUE(ok);
    }
    for (int i = 0; i < kPerThread; ++i) {
      const bool want = (i % 2) == 1;
      const bool got = co_await s.contains(ctx, base + static_cast<std::uint64_t>(i));
      EXPECT_EQ(got, want);
    }
  });
}

TEST(HarrisList, ConcurrentDisjointKeys) {
  Machine m{small_config(6, false)};
  HarrisList s{m};
  disjoint_check(m, s, 6);
}

TEST(LockFreeSkipList, ConcurrentDisjointKeys) {
  Machine m{small_config(6, false)};
  LockFreeSkipList s{m};
  disjoint_check(m, s, 6);
}

TEST(ExternalBst, ConcurrentDisjointKeys) {
  Machine m{small_config(6, false)};
  ExternalBst s{m};
  disjoint_check(m, s, 6);
}

// Overlapping-key stress: threads race on the same small key space; check
// conservation via insert/remove success accounting.
template <typename SetT>
void overlap_check(Machine& m, SetT& s, int threads, std::size_t expected_max_keys) {
  int successful_inserts = 0, successful_removes = 0;
  testing::run_workers(m, threads, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 40; ++i) {
      const std::uint64_t key = 1 + ctx.rng().next_below(16);
      if (ctx.rng().next_bool(0.5)) {
        const bool ok = co_await s.insert(ctx, key);
        if (ok) ++successful_inserts;
      } else {
        const bool ok = co_await s.remove(ctx, key);
        if (ok) ++successful_removes;
      }
    }
  });
  const auto snap = s.snapshot();
  EXPECT_LE(snap.size(), expected_max_keys);
  EXPECT_EQ(static_cast<int>(snap.size()), successful_inserts - successful_removes);
  std::set<std::uint64_t> unique(snap.begin(), snap.end());
  EXPECT_EQ(unique.size(), snap.size()) << "duplicate keys in set";
}

TEST(HarrisList, ConcurrentOverlappingKeys) {
  Machine m{small_config(8, false)};
  HarrisList s{m};
  overlap_check(m, s, 8, 16);
}

TEST(HarrisList, ConcurrentOverlappingKeysLeased) {
  Machine m{small_config(8, true)};
  HarrisList s{m, {.use_lease = true}};
  overlap_check(m, s, 8, 16);
}

TEST(LockFreeSkipList, ConcurrentOverlappingKeys) {
  Machine m{small_config(8, false)};
  LockFreeSkipList s{m};
  overlap_check(m, s, 8, 16);
}

TEST(ExternalBst, ConcurrentOverlappingKeys) {
  Machine m{small_config(8, false)};
  ExternalBst s{m};
  overlap_check(m, s, 8, 16);
}

TEST(LockedHashTable, ConcurrentDisjointKeysLeasedAndNot) {
  for (bool lease : {false, true}) {
    Machine m{small_config(6, lease)};
    LockedHashTable h{m, {.buckets = 64, .stripes = 8, .use_lease = lease}};
    constexpr int kPerThread = 20;
    testing::run_workers(m, 6, [&](Ctx& ctx, int t) -> Task<void> {
      const std::uint64_t base = static_cast<std::uint64_t>(t + 1) * 1000;
      for (int i = 0; i < kPerThread; ++i) {
        co_await h.insert(ctx, base + static_cast<std::uint64_t>(i), base);
      }
      for (int i = 0; i < kPerThread; i += 2) {
        const bool ok = co_await h.remove(ctx, base + static_cast<std::uint64_t>(i));
        EXPECT_TRUE(ok);
      }
    });
    EXPECT_EQ(h.size(), 6u * kPerThread / 2);
  }
}

}  // namespace
}  // namespace lrsim
