// Copyright (c) 2026 lrsim authors. MIT license.
//
// Unit tests for the set-associative L1 tag/state array.
#include <gtest/gtest.h>

#include "coherence/l1_cache.hpp"

namespace lrsim {
namespace {

const std::function<bool(LineId)> kNonePinned = [](LineId) { return false; };

TEST(L1Cache, StartsInvalid) {
  L1Cache c{4, 2};
  EXPECT_EQ(c.state(0), LineState::I);
  EXPECT_EQ(c.occupancy(), 0u);
}

TEST(L1Cache, InstallAndLookup) {
  L1Cache c{4, 2};
  EXPECT_FALSE(c.install(5, LineState::S, kNonePinned).has_value());
  EXPECT_EQ(c.state(5), LineState::S);
  EXPECT_TRUE(c.present(5));
}

TEST(L1Cache, TagHitUpdatesState) {
  L1Cache c{4, 2};
  c.install(5, LineState::S, kNonePinned);
  EXPECT_FALSE(c.install(5, LineState::M, kNonePinned).has_value());
  EXPECT_EQ(c.state(5), LineState::M);
  EXPECT_EQ(c.occupancy(), 1u);
}

TEST(L1Cache, EvictsLruWhenSetFull) {
  L1Cache c{4, 2};
  // Lines 0, 4, 8 all map to set 0 (4 sets).
  c.install(0, LineState::S, kNonePinned);
  c.install(4, LineState::S, kNonePinned);
  c.touch(0);  // 4 is now LRU
  auto victim = c.install(8, LineState::S, kNonePinned);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line, 4u);
  EXPECT_EQ(c.state(4), LineState::I);
  EXPECT_EQ(c.state(0), LineState::S);
  EXPECT_EQ(c.state(8), LineState::S);
}

TEST(L1Cache, VictimCarriesModifiedState) {
  L1Cache c{4, 1};
  c.install(0, LineState::M, kNonePinned);
  auto victim = c.install(4, LineState::S, kNonePinned);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->state, LineState::M);
}

TEST(L1Cache, PinnedLinesAreNotEvicted) {
  L1Cache c{4, 2};
  c.install(0, LineState::M, kNonePinned);
  c.install(4, LineState::S, kNonePinned);
  c.touch(4);  // 0 would be LRU, but we pin it
  auto pinned = [](LineId l) { return l == 0; };
  auto victim = c.install(8, LineState::S, pinned);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(victim->line, 4u);
  EXPECT_EQ(c.state(0), LineState::M);
}

TEST(L1Cache, SetFullOfPinnedDetection) {
  L1Cache c{4, 2};
  c.install(0, LineState::M, kNonePinned);
  c.install(4, LineState::M, kNonePinned);
  auto all_pinned = [](LineId) { return true; };
  EXPECT_TRUE(c.set_full_of_pinned(8, all_pinned));
  EXPECT_FALSE(c.set_full_of_pinned(8, kNonePinned));
  // A tag hit never needs room.
  EXPECT_FALSE(c.set_full_of_pinned(0, all_pinned));
  auto found = c.any_pinned_in_set(8, all_pinned);
  ASSERT_TRUE(found.has_value());
}

TEST(L1Cache, InvalidateAndDowngrade) {
  L1Cache c{4, 2};
  c.install(3, LineState::M, kNonePinned);
  c.downgrade(3);
  EXPECT_EQ(c.state(3), LineState::S);
  c.downgrade(3);  // idempotent on S
  EXPECT_EQ(c.state(3), LineState::S);
  c.invalidate(3);
  EXPECT_EQ(c.state(3), LineState::I);
  c.invalidate(99);  // absent line: no-op
}

TEST(L1Cache, DifferentSetsDoNotInterfere) {
  L1Cache c{4, 1};
  c.install(0, LineState::S, kNonePinned);
  c.install(1, LineState::S, kNonePinned);
  c.install(2, LineState::S, kNonePinned);
  c.install(3, LineState::S, kNonePinned);
  EXPECT_EQ(c.occupancy(), 4u);
}

TEST(L1Cache, Geometry32KB) {
  // Table 1: 32 KB, 4-way, 64 B lines -> 128 sets.
  L1Cache c{128, 4};
  for (LineId l = 0; l < 512; ++l) c.install(l, LineState::S, kNonePinned);
  EXPECT_EQ(c.occupancy(), 512u);  // exactly full, no evictions
  auto v = c.install(512, LineState::S, kNonePinned);
  EXPECT_TRUE(v.has_value());
}

}  // namespace
}  // namespace lrsim
