// Copyright (c) 2026 lrsim authors. MIT license.
//
// Section 7, "Observations and Limitations": "One potential complication is
// false sharing, i.e. inadvertently leasing multiple variables located on
// the same line. ... False sharing may significantly degrade performance by
// increasing contention ... This behavior can be prevented via careful
// programming", i.e. cache-aligned allocation of leased variables.
//
// These tests verify both halves: colocated leased variables are much
// slower than line-separated ones, and SimHeap's alloc_line discipline
// eliminates the problem — while correctness is preserved either way.
#include <gtest/gtest.h>

#include <set>

#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

// Two threads, two logically independent counters, each leased around a
// read-modify-write. Returns total cycles.
Cycle run_pair(Addr a, Addr b, Machine& m) {
  m.spawn(0, [&m, a](Ctx& ctx) -> Task<void> {
    for (int i = 0; i < 50; ++i) {
      co_await ctx.lease(a, 2000);
      const std::uint64_t v = co_await ctx.load(a);
      co_await ctx.work(100);
      co_await ctx.store(a, v + 1);
      co_await ctx.release(a);
      co_await ctx.work(50);
    }
    (void)m;
  });
  m.spawn(1, [&m, b](Ctx& ctx) -> Task<void> {
    for (int i = 0; i < 50; ++i) {
      co_await ctx.lease(b, 2000);
      const std::uint64_t v = co_await ctx.load(b);
      co_await ctx.work(100);
      co_await ctx.store(b, v + 1);
      co_await ctx.release(b);
      co_await ctx.work(50);
    }
    (void)m;
  });
  return m.run(100'000'000);
}

TEST(FalseSharing, ColocatedLeasedVariablesAreMuchSlower) {
  // Separated: one variable per line (the recommended discipline).
  Machine sep{small_config(2, true)};
  const Addr sa = sep.heap().alloc_line();
  const Addr sb = sep.heap().alloc_line();
  const Cycle separated = run_pair(sa, sb, sep);

  // Colocated: both words on one line — each lease steals the whole line
  // from the other thread and parks its requests.
  Machine col{small_config(2, true)};
  const Addr base = col.heap().alloc_line(16);
  const Cycle colocated = run_pair(base, base + 8, col);

  // Both are correct...
  EXPECT_EQ(sep.memory().read(sa), 50u);
  EXPECT_EQ(sep.memory().read(sb), 50u);
  EXPECT_EQ(col.memory().read(base), 50u);
  EXPECT_EQ(col.memory().read(base + 8), 50u);
  // ...but false sharing costs: every op ping-pongs the line between the
  // two leases (the local work in the loop bounds the slowdown here; with
  // larger critical sections the gap widens further).
  EXPECT_GT(colocated, separated + separated / 3);
  EXPECT_GT(col.total_stats().total_messages(), 3 * sep.total_stats().total_messages());
  // Separated threads never probe each other.
  EXPECT_EQ(sep.total_stats().probes_queued, 0u);
  EXPECT_GT(col.total_stats().probes_queued, 0u);
}

TEST(FalseSharing, ColocatedLeaseIsANoOpNotADeadlock) {
  // A thread leasing "two variables" that share a line holds ONE lease
  // (same line id); releasing either fully releases. No wedge, no
  // double-entry.
  Machine m{small_config(2, true)};
  const Addr base = m.heap().alloc_line(16);
  Cycle other_store = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(base, 5000);
    co_await ctx.lease(base + 8, 5000);  // same line: no-op (no extension)
    EXPECT_EQ(ctx.controller().lease_table().size(), 1);
    co_await ctx.work(1000);
    const bool vol = co_await ctx.release(base + 8);  // releases the line
    EXPECT_TRUE(vol);
    EXPECT_EQ(ctx.controller().lease_table().size(), 0);
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(100);
    co_await ctx.store(base + 8, 7);
    other_store = ctx.now();
  });
  m.run(10'000'000);
  ASSERT_TRUE(m.all_done());
  EXPECT_LT(other_store, 1500u);  // released at ~1000, not at expiry
}

TEST(FalseSharing, HeapSeparatesContendedAllocations) {
  // The allocator contract behind the careful-programming advice: every
  // alloc_line result sits alone on its line.
  Machine m{small_config(1, true)};
  std::vector<Addr> addrs;
  for (int i = 0; i < 32; ++i) addrs.push_back(m.heap().alloc_line());
  std::set<LineId> lines;
  for (Addr a : addrs) EXPECT_TRUE(lines.insert(line_of(a)).second) << std::hex << a;
}

}  // namespace
}  // namespace lrsim
