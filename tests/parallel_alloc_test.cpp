// Copyright (c) 2026 lrsim authors. MIT license.
//
// Parallel-kernel coverage for *allocating* workloads: deterministic
// per-core heap arenas (mem/heap.hpp) make SimHeap::alloc and SimMemory
// first-touch legal inside worker phases, so the linked structures
// (treiber_stack, ms_queue) are parallel-eligible. These tests pin
//
//  * the bit-identity claim for allocating workloads: --sim-threads {2,4}
//    vs serial across seeds and mesh on/off, with the kernel actually
//    engaging (parallel_events > 0); and
//  * the arena address map itself: arena placement is a pure function of
//    (core, allocation order), so the serial and parallel kernels assign
//    identical simulated addresses by construction — the golden values
//    below only move if the layout constants change.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "ds/ms_queue.hpp"
#include "ds/treiber_stack.hpp"
#include "mem/heap.hpp"
#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

struct RunOutcome {
  Cycle cycles = 0;
  Stats total;
  std::vector<Stats> per_core;
  std::uint64_t parallel_events = 0;  ///< 0 under the serial kernel.
};

void expect_identical(const RunOutcome& serial, const RunOutcome& parallel) {
  EXPECT_EQ(serial.cycles, parallel.cycles);
  EXPECT_EQ(serial.total, parallel.total);
  ASSERT_EQ(serial.per_core.size(), parallel.per_core.size());
  for (std::size_t c = 0; c < serial.per_core.size(); ++c) {
    EXPECT_EQ(serial.per_core[c], parallel.per_core[c]) << "core " << c << " stats diverged";
  }
}

RunOutcome finish(Machine& m, int cores, Cycle cycles) {
  RunOutcome out;
  out.cycles = cycles;
  out.total = m.total_stats();
  for (CoreId c = 0; c < cores; ++c) out.per_core.push_back(m.core_stats(c));
  if (const ParKernelStats* ps = m.par_stats()) out.parallel_events = ps->parallel_events;
  return out;
}

/// Fig. 2 stack shape: every op allocates a node line from the calling
/// core's arena mid-worker-phase (push) or recycles one (pop). A private
/// burst between ops keeps core-local hit traffic flowing so parallel
/// windows actually form around the contended stack ops.
RunOutcome run_stack(int sim_threads, int cores, bool mesh, std::uint64_t seed) {
  MachineConfig cfg = small_config(cores, /*leases=*/true);
  cfg.max_lease_time = 3000;
  cfg.mesh_topology = mesh;
  Machine m{cfg, seed};
  m.set_sim_threads(sim_threads);
  auto stack = std::make_shared<TreiberStack>(m, TreiberOptions{.use_lease = true});
  std::vector<Addr> priv;
  for (int t = 0; t < cores; ++t) priv.push_back(m.heap().alloc_line());
  m.spawn(0, [stack](Ctx& ctx) -> Task<void> {
    for (int i = 0; i < 32; ++i) co_await stack->push(ctx, static_cast<std::uint64_t>(i + 1));
  });
  m.run();
  const Cycle cycles = testing::run_workers(m, cores, [&](Ctx& ctx, int t) -> Task<void> {
    for (int i = 0; i < 25; ++i) {
      for (int k = 0; k < 4; ++k) {
        (void)co_await ctx.load(priv[static_cast<std::size_t>(t)]);
        co_await ctx.store(priv[static_cast<std::size_t>(t)], static_cast<std::uint64_t>(i + k));
      }
      if (ctx.rng().next_bool(0.5)) {
        co_await stack->push(ctx, static_cast<std::uint64_t>(i + 1));
      } else {
        co_await stack->pop(ctx);
      }
      if (ctx.rng().next_bool(0.3)) co_await ctx.work(ctx.rng().next_below(30));
    }
  });
  return finish(m, cores, cycles);
}

/// Fig. 3 queue shape: enqueue allocates per-op from the caller's arena;
/// the lease policy adds lease timers and parked-probe servicing. Same
/// private burst as the stack run, for the same window-forming reason.
RunOutcome run_queue(int sim_threads, int cores, bool mesh, std::uint64_t seed) {
  MachineConfig cfg = small_config(cores, /*leases=*/true);
  cfg.max_lease_time = 3000;
  cfg.mesh_topology = mesh;
  Machine m{cfg, seed};
  m.set_sim_threads(sim_threads);
  auto q = std::make_shared<MsQueue>(m, MsQueueOptions{.lease_mode = QueueLeaseMode::kSingle});
  std::vector<Addr> priv;
  for (int t = 0; t < cores; ++t) priv.push_back(m.heap().alloc_line());
  m.spawn(0, [q](Ctx& ctx) -> Task<void> {
    for (int i = 0; i < 32; ++i) co_await q->enqueue(ctx, static_cast<std::uint64_t>(i + 1));
  });
  m.run();
  const Cycle cycles = testing::run_workers(m, cores, [&](Ctx& ctx, int t) -> Task<void> {
    for (int i = 0; i < 25; ++i) {
      for (int k = 0; k < 4; ++k) {
        (void)co_await ctx.load(priv[static_cast<std::size_t>(t)]);
        co_await ctx.store(priv[static_cast<std::size_t>(t)], static_cast<std::uint64_t>(i + k));
      }
      if (ctx.rng().next_bool(0.5)) {
        co_await q->enqueue(ctx, static_cast<std::uint64_t>(i + 1));
      } else {
        co_await q->dequeue(ctx);
      }
      if (ctx.rng().next_bool(0.3)) co_await ctx.work(ctx.rng().next_below(30));
    }
  });
  return finish(m, cores, cycles);
}

TEST(ParallelAllocStack, FuzzSerialVsParallelAcrossSeedsAndMesh) {
  for (std::uint64_t seed : {1ull, 42ull, 31337ull}) {
    for (bool mesh : {false, true}) {
      const RunOutcome serial = run_stack(0, 8, mesh, seed);
      EXPECT_EQ(serial.parallel_events, 0u);
      for (int st : {2, 4}) {
        SCOPED_TRACE(::testing::Message()
                     << "seed=" << seed << " mesh=" << mesh << " sim_threads=" << st);
        const RunOutcome par = run_stack(st, 8, mesh, seed);
        expect_identical(serial, par);
        EXPECT_GT(par.parallel_events, 0u) << "allocating workload fell back to serial";
      }
    }
  }
}

TEST(ParallelAllocQueue, FuzzSerialVsParallelAcrossSeedsAndMesh) {
  for (std::uint64_t seed : {7ull, 99ull, 4242ull}) {
    for (bool mesh : {false, true}) {
      const RunOutcome serial = run_queue(0, 8, mesh, seed);
      EXPECT_EQ(serial.parallel_events, 0u);
      for (int st : {2, 4}) {
        SCOPED_TRACE(::testing::Message()
                     << "seed=" << seed << " mesh=" << mesh << " sim_threads=" << st);
        const RunOutcome par = run_queue(st, 8, mesh, seed);
        expect_identical(serial, par);
        EXPECT_GT(par.parallel_events, 0u) << "allocating workload fell back to serial";
      }
    }
  }
}

TEST(HeapArenas, AddressAssignmentGolden) {
  MachineConfig cfg = small_config(4, /*leases=*/false);
  Machine m{cfg, 1};
  // The global region keeps its pre-arena layout below kArenaBase.
  const Addr g = m.heap().alloc_line();
  EXPECT_LT(g, kArenaBase);
  EXPECT_EQ(m.heap().arena_of(g), -1);
  // Arena a(c) starts at kArenaBase + c * kArenaStride and bumps linearly —
  // a pure function of (core, allocation order), independent of the kernel.
  EXPECT_EQ(m.heap().alloc_line_on(0, 8), kArenaBase);
  EXPECT_EQ(m.heap().alloc_line_on(0, 8), kArenaBase + kLineSize);
  EXPECT_EQ(m.heap().alloc_line_on(2, 48), kArenaBase + 2 * kArenaStride);
  EXPECT_EQ(m.heap().alloc_line_on(3, 8), kArenaBase + 3 * kArenaStride);
  EXPECT_EQ(m.heap().arena_of(kArenaBase + kLineSize), 0);
  EXPECT_EQ(m.heap().arena_of(kArenaBase + 2 * kArenaStride), 2);
  // Freed arena lines recycle within their arena, most-recent first.
  m.heap().free_line_on(0, kArenaBase, 8);
  EXPECT_EQ(m.heap().alloc_line_on(0, 8), kArenaBase);
}

TEST(HeapArenas, CtxAllocRoutesToCallingCoreArena) {
  MachineConfig cfg = small_config(4, /*leases=*/false);
  Machine m{cfg, 1};
  std::vector<Addr> got(4, 0);
  for (int t = 0; t < 4; ++t) {
    m.spawn(t, [&got, t](Ctx& ctx) -> Task<void> {
      got[static_cast<std::size_t>(t)] = ctx.alloc_line(8);
      co_return;
    });
  }
  m.run();
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(got[static_cast<std::size_t>(c)],
              kArenaBase + static_cast<Addr>(c) * kArenaStride)
        << "core " << c;
  }
}

}  // namespace
}  // namespace lrsim
