// Copyright (c) 2026 lrsim authors. MIT license.
//
// MultiLease / MultiRelease semantics (Section 4 / Algorithm 2), the
// deadlock-freedom property (Proposition 3), and the software emulation.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

template <typename... A>
std::vector<Addr> group_of(A... addrs) {
  std::vector<Addr> v;
  (v.push_back(addrs), ...);
  return v;
}

TEST(MultiLease, AcquiresAllLinesExclusively) {
  Machine m{small_config(1, true)};
  Addr a = m.heap().alloc_line();
  Addr b = m.heap().alloc_line();
  Addr c = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.multi_lease(group_of(c, a, b), 5000);
    EXPECT_EQ(ctx.controller().line_state(line_of(a)), LineState::M);
    EXPECT_EQ(ctx.controller().line_state(line_of(b)), LineState::M);
    EXPECT_EQ(ctx.controller().line_state(line_of(c)), LineState::M);
    EXPECT_EQ(ctx.controller().lease_table().size(), 3);
    EXPECT_TRUE(ctx.controller().lease_table().has_group());
    co_await ctx.release_all();
    EXPECT_EQ(ctx.controller().lease_table().size(), 0);
  });
  m.run();
  EXPECT_EQ(m.total_stats().leases_taken, 3u);
}

TEST(MultiLease, ReleasingOneMemberReleasesWholeGroup) {
  Machine m{small_config(1, true)};
  Addr a = m.heap().alloc_line();
  Addr b = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.multi_lease(group_of(a, b), 5000);
    EXPECT_EQ(ctx.controller().lease_table().size(), 2);
    co_await ctx.release(b);  // MultiRelease semantics
    EXPECT_EQ(ctx.controller().lease_table().size(), 0);
  });
  m.run();
  EXPECT_EQ(m.total_stats().releases_voluntary, 2u);
}

TEST(MultiLease, ReplacesPreviouslyHeldLeases) {
  Machine m{small_config(1, true)};
  Addr a = m.heap().alloc_line();
  Addr b = m.heap().alloc_line();
  Addr c = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(a, 5000);
    co_await ctx.multi_lease(group_of(b, c), 5000);  // releases `a` first
    EXPECT_FALSE(ctx.controller().lease_table().has(line_of(a)));
    EXPECT_TRUE(ctx.controller().lease_table().has(line_of(b)));
    EXPECT_TRUE(ctx.controller().lease_table().has(line_of(c)));
    co_await ctx.release_all();
  });
  m.run();
}

TEST(MultiLease, OversizedGroupIsIgnored) {
  MachineConfig cfg = small_config(1, true);
  cfg.max_num_leases = 2;
  Machine m{cfg};
  std::vector<Addr> addrs;
  for (int i = 0; i < 3; ++i) addrs.push_back(m.heap().alloc_line());
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.multi_lease(addrs, 5000);  // 3 > MAX_NUM_LEASES: ignored
    EXPECT_EQ(ctx.controller().lease_table().size(), 0);
  });
  m.run();
  EXPECT_EQ(m.total_stats().leases_taken, 0u);
}

TEST(MultiLease, DuplicateLinesCollapse) {
  Machine m{small_config(1, true)};
  Addr a = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    // Two words on the same line need only one lease.
    co_await ctx.multi_lease(group_of(a, a + 8), 5000);
    EXPECT_EQ(ctx.controller().lease_table().size(), 1);
    co_await ctx.release_all();
  });
  m.run();
}

TEST(MultiLease, GroupExpiresJointly) {
  MachineConfig cfg = small_config(2, true);
  cfg.max_lease_time = 1500;
  Machine m{cfg};
  Addr a = m.heap().alloc_line();
  Addr b = m.heap().alloc_line();
  Cycle store_a_done = 0, store_b_done = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.multi_lease(group_of(a, b), 100'000);  // clamped to 1500
    co_await ctx.work(50'000);                            // never releases
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(100);
    co_await ctx.store(a, 1);
    store_a_done = ctx.now();
    co_await ctx.store(b, 1);
    store_b_done = ctx.now();
  });
  m.run();
  // Both stores complete shortly after the joint expiry, far before 50k.
  EXPECT_LT(store_a_done, 2500u);
  EXPECT_LT(store_b_done, 2600u);
  EXPECT_EQ(m.total_stats().releases_involuntary, 2u);
}

TEST(MultiLease, ProbeDuringAcquisitionPhaseIsParked) {
  // Core 0 multi-leases {A, B}; B is held by core 2's long lease, so core
  // 0's acquisition stalls after getting A. Core 1's request for A during
  // that window must be parked (Algorithm 2 delays incoming requests during
  // the whole acquisition).
  MachineConfig cfg = small_config(3, true);
  cfg.max_lease_time = 3000;
  Machine m{cfg};
  Addr a = m.heap().alloc_line();
  Addr b = m.heap().alloc_line();
  Cycle core1_store_done = 0, core0_acquired = 0;
  m.spawn(2, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(b, 3000);
    co_await ctx.work(10'000);  // involuntary release at ~3000
  });
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(300);  // let core 2 grab B first
    co_await ctx.multi_lease(group_of(a, b), 1000);
    core0_acquired = ctx.now();
    co_await ctx.release_all();
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(600);  // while core 0 waits for B, request A
    co_await ctx.store(a, 1);
    core1_store_done = ctx.now();
  });
  m.run();
  // Core 0 could only finish acquiring after core 2's lease expired (~3000).
  EXPECT_GT(core0_acquired, 3000u);
  // Core 1's store on A waited for core 0's whole acquisition + release.
  EXPECT_GE(core1_store_done, core0_acquired);
  EXPECT_GE(m.total_stats().probes_queued, 2u);
}

TEST(MultiLease, InvertedOrderPairNeverDeadlocks) {
  for (int trial = 0; trial < 3; ++trial) {
    Machine m{small_config(2, true), /*seed=*/static_cast<std::uint64_t>(trial + 1)};
    Addr a = m.heap().alloc_line();
    Addr b = m.heap().alloc_line();
    auto worker = [&](std::vector<Addr> addrs) {
      return [&, addrs](Ctx& ctx) -> Task<void> {
        for (int i = 0; i < 40; ++i) {
          co_await ctx.multi_lease(addrs, 1500);
          co_await ctx.store(a, 1);
          co_await ctx.store(b, 1);
          co_await ctx.release_all();
        }
      };
    };
    m.spawn(0, worker({a, b}));
    m.spawn(1, worker({b, a}));
    m.run(100'000'000);
    ASSERT_TRUE(m.all_done()) << "deadlock in trial " << trial;
  }
}

TEST(MultiLease, ThreeWayCycleNeverDeadlocks) {
  // Classic dining-philosophers shape: each core jointly leases a rotated
  // pair. Sorted acquisition must prevent the cycle.
  Machine m{small_config(3, true)};
  std::vector<Addr> locks;
  for (int i = 0; i < 3; ++i) locks.push_back(m.heap().alloc_line());
  for (int c = 0; c < 3; ++c) {
    m.spawn(c, [&, c](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < 30; ++i) {
        std::vector<Addr> pair = group_of(locks[static_cast<std::size_t>(c)],
                                          locks[static_cast<std::size_t>((c + 1) % 3)]);
        co_await ctx.multi_lease(pair, 1000);
        co_await ctx.store(locks[static_cast<std::size_t>(c)], 1);
        co_await ctx.release_all();
      }
    });
  }
  m.run(200'000'000);
  ASSERT_TRUE(m.all_done()) << "three-way MultiLease deadlocked";
}

TEST(MultiLease, SoftwareEmulationStaggersExpiries) {
  MachineConfig cfg = small_config(2, true);
  cfg.software_multilease = true;
  cfg.max_lease_time = 100'000;
  cfg.sw_multilease_stagger = 500;
  Machine m{cfg};
  Addr a = m.heap().alloc_line();
  Addr b = m.heap().alloc_line();
  Cycle store_a = 0, store_b = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.multi_lease(group_of(a, b), 1000);
    // Software mode: independent single leases, no group flag.
    EXPECT_FALSE(ctx.controller().lease_table().has_group());
    EXPECT_EQ(ctx.controller().lease_table().size(), 2);
    co_await ctx.work(30'000);  // let both expire involuntarily
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(100);
    co_await ctx.store(a, 1);  // a: outer lease, duration 1000 + 500
    store_a = ctx.now();
    co_await ctx.store(b, 1);  // b: inner lease, duration 1000
    store_b = ctx.now();
  });
  m.run();
  // a (acquired first, lower line id) had the longer stagger; both bounded.
  EXPECT_LT(store_a, 4000u);
  EXPECT_LT(store_b, 4000u);
  EXPECT_EQ(m.total_stats().releases_involuntary, 2u);
}

TEST(MultiLease, SoftwareEmulationStillExcludesWriters) {
  MachineConfig cfg = small_config(2, true);
  cfg.software_multilease = true;
  Machine m{cfg};
  Addr a = m.heap().alloc_line();
  Addr b = m.heap().alloc_line();
  Cycle release_time = 0, store_done = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.multi_lease(group_of(a, b), 10'000);
    co_await ctx.work(2000);
    co_await ctx.release_all();
    release_time = ctx.now();
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(200);
    co_await ctx.store(b, 1);
    store_done = ctx.now();
  });
  m.run();
  EXPECT_GE(store_done, release_time);
}

TEST(MultiLease, MixedWithContendedTrafficConserved) {
  // Joint updates of two counters under MultiLease; the pair must always
  // move together (each op increments both), so totals match.
  constexpr int kCores = 8;
  constexpr int kReps = 15;
  Machine m{small_config(kCores, true)};
  Addr a = m.heap().alloc_line();
  Addr b = m.heap().alloc_line();
  testing::run_workers(m, kCores, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < kReps; ++i) {
      std::vector<Addr> grp{a, b};
      co_await ctx.multi_lease(grp, 5000);
      const std::uint64_t va = co_await ctx.load(a);
      const std::uint64_t vb = co_await ctx.load(b);
      co_await ctx.store(a, va + 1);
      co_await ctx.store(b, vb + 1);
      co_await ctx.release_all();
    }
  });
  // Leases are advisory: the loop body is not a critical section unless the
  // leases hold. With MAX_LEASE_TIME at the default 20k cycles and a short
  // body, every group survives to its voluntary release, so the read-modify-
  // write pairs are atomic and nothing is lost.
  EXPECT_EQ(m.memory().read(a), static_cast<std::uint64_t>(kCores) * kReps);
  EXPECT_EQ(m.memory().read(b), static_cast<std::uint64_t>(kCores) * kReps);
}

}  // namespace
}  // namespace lrsim
