// Copyright (c) 2026 lrsim authors. MIT license.
//
// Unit tests for the directory's flat containers (coherence/dir_table.hpp):
// FlatLineMap growth / reference stability and NodePool FIFO recycling.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "coherence/dir_table.hpp"

namespace lrsim {
namespace {

TEST(FlatLineMap, InsertFindRoundTrip) {
  FlatLineMap<int> m;
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(42), nullptr);
  m[42] = 7;
  ASSERT_NE(m.find(42), nullptr);
  EXPECT_EQ(*m.find(42), 7);
  EXPECT_EQ(m.size(), 1u);
  // operator[] on an existing key returns the same value, not a fresh one.
  EXPECT_EQ(m[42], 7);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatLineMap, LineZeroIsAValidKey) {
  FlatLineMap<int> m;
  EXPECT_EQ(m.find(0), nullptr);
  m[0] = 11;
  ASSERT_NE(m.find(0), nullptr);
  EXPECT_EQ(*m.find(0), 11);
}

TEST(FlatLineMap, ReferencesSurviveGrowth) {
  // The directory keeps Entry& references (and lambdas capturing `line`)
  // across arbitrarily many later insertions; the chunked value pool must
  // never move a value. Insert well past several rehashes and verify every
  // previously-taken pointer still reads its own key.
  FlatLineMap<std::uint64_t> m;
  std::vector<std::uint64_t*> ptrs;
  constexpr std::uint64_t kN = 10000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    std::uint64_t& v = m[static_cast<LineId>(i * 64)];
    v = i;
    ptrs.push_back(&v);
  }
  EXPECT_EQ(m.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(*ptrs[i], i) << "value for line " << i * 64 << " moved or was clobbered";
    EXPECT_EQ(m.find(static_cast<LineId>(i * 64)), ptrs[i]);
  }
  // Keys never inserted stay absent even after heavy probing traffic.
  EXPECT_EQ(m.find(static_cast<LineId>(kN * 64 + 1)), nullptr);
}

TEST(FlatLineMap, CollidingKeysStayDistinct) {
  // Keys 64 lines apart map close together under Fibonacci hashing of
  // line-granular addresses; whatever the distribution, distinct keys must
  // never alias.
  FlatLineMap<LineId> m;
  for (LineId l = 1; l < 2000; ++l) m[l] = l;
  for (LineId l = 1; l < 2000; ++l) {
    ASSERT_NE(m.find(l), nullptr);
    EXPECT_EQ(*m.find(l), l);
  }
}

TEST(NodePool, FifoThreadingAndRecycling) {
  NodePool<int> pool;
  // Build a 3-node FIFO the way the directory threads its per-line queue.
  const std::uint32_t a = pool.alloc(1);
  const std::uint32_t b = pool.alloc(2);
  const std::uint32_t c = pool.alloc(3);
  pool.set_next(a, b);
  pool.set_next(b, c);
  EXPECT_EQ(pool.next(a), b);
  EXPECT_EQ(pool.next(b), c);
  EXPECT_EQ(pool.next(c), NodePool<int>::kNil);

  EXPECT_EQ(pool.take(a), 1);
  EXPECT_EQ(pool.take(b), 2);
  // Freed nodes are reused (LIFO free list) before the vector grows.
  const std::uint32_t d = pool.alloc(4);
  const std::uint32_t e = pool.alloc(5);
  EXPECT_EQ(d, b);
  EXPECT_EQ(e, a);
  EXPECT_EQ(pool.take(d), 4);
  EXPECT_EQ(pool.take(e), 5);
  EXPECT_EQ(pool.take(c), 3);
}

TEST(NodePool, MoveOnlyValues) {
  // Directory requests hold move-only callbacks; take() must move the value
  // out and leave the recycled node empty.
  NodePool<std::unique_ptr<int>> pool;
  const std::uint32_t a = pool.alloc(std::make_unique<int>(99));
  std::unique_ptr<int> v = pool.take(a);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 99);
  const std::uint32_t b = pool.alloc(std::make_unique<int>(7));
  EXPECT_EQ(b, a);  // recycled
  EXPECT_EQ(*pool.take(b), 7);
}

}  // namespace
}  // namespace lrsim
