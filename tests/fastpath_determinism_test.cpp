// Copyright (c) 2026 lrsim authors. MIT license.
//
// The inline L1-hit fast path (MachineConfig::fast_path) is a host-speed
// optimization only: EventQueue::try_advance completes a hit without an
// event-queue round trip exactly when doing so is provably invisible (tail
// event + no event inside the latency window — docs/ENGINE.md "Inline
// fast path"). These tests pin the bit-identity claim: with the fast path
// on and off, the same seed must produce the same final cycle count, the
// same machine-wide and per-core Stats, and the same trace record stream —
// across l1_latency values, machine seeds, and schedule perturbation.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <vector>

#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

struct RunOutcome {
  Cycle cycles = 0;
  Stats total;
  std::vector<Stats> per_core;
  std::vector<TraceRecord> trace;
};

/// The workload mixes hit-heavy private phases (where the fast path fires
/// constantly) with contended shared phases (misses, probes, leases) so the
/// slow/fast boundary is crossed many times per run.
RunOutcome run_once(bool fast_path, Cycle l1_latency, std::uint64_t machine_seed,
                    std::optional<std::uint64_t> perturb_seed) {
  MachineConfig cfg = small_config(4, /*leases=*/true);
  cfg.fast_path = fast_path;
  cfg.l1_latency = l1_latency;
  cfg.max_lease_time = 3000;
  Machine m{cfg, machine_seed};
  m.enable_tracing(/*capacity=*/1 << 16);
  if (perturb_seed) m.enable_perturbation(*perturb_seed);
  const Addr shared = m.heap().alloc_line();
  std::vector<Addr> priv;
  for (int t = 0; t < 4; ++t) priv.push_back(m.heap().alloc_line());
  RunOutcome out;
  out.cycles = testing::run_workers(m, 4, [&](Ctx& ctx, int t) -> Task<void> {
    for (int i = 0; i < 60; ++i) {
      // Private burst: every access after the first is an L1 hit.
      for (int k = 0; k < 8; ++k) {
        (void)co_await ctx.load(priv[static_cast<std::size_t>(t)]);
        co_await ctx.store(priv[static_cast<std::size_t>(t)], static_cast<std::uint64_t>(i + k));
      }
      // Contended phase: leases, RMWs, and invalidation traffic.
      const bool leased = ctx.rng().next_bool(0.4);
      if (leased) co_await ctx.lease(shared, 200 + ctx.rng().next_below(1000));
      switch (ctx.rng().next_below(4)) {
        case 0: (void)co_await ctx.load(shared); break;
        case 1: co_await ctx.store(shared, ctx.rng().next_below(1000)); break;
        case 2: (void)co_await ctx.faa(shared, 1); break;
        default: (void)co_await ctx.cas_val(shared, ctx.rng().next_below(8),
                                            ctx.rng().next_below(1000)); break;
      }
      if (leased) co_await ctx.release(shared);
      if (ctx.rng().next_bool(0.3)) co_await ctx.work(ctx.rng().next_below(30));
    }
  });
  out.total = m.total_stats();
  for (CoreId c = 0; c < 4; ++c) out.per_core.push_back(m.core_stats(c));
  out.trace = m.tracer()->records();
  return out;
}

void expect_identical(const RunOutcome& on, const RunOutcome& off) {
  EXPECT_EQ(on.cycles, off.cycles);
  EXPECT_EQ(on.total, off.total);
  ASSERT_EQ(on.per_core.size(), off.per_core.size());
  for (std::size_t c = 0; c < on.per_core.size(); ++c) {
    EXPECT_EQ(on.per_core[c], off.per_core[c]) << "core " << c << " stats diverged";
  }
  ASSERT_EQ(on.trace.size(), off.trace.size());
  for (std::size_t i = 0; i < on.trace.size(); ++i) {
    const TraceRecord& a = on.trace[i];
    const TraceRecord& b = off.trace[i];
    const bool same = a.when == b.when && a.event == b.event && a.core == b.core &&
                      a.line == b.line && a.info == b.info;
    ASSERT_TRUE(same) << "trace record " << i << " diverged: when " << a.when << " vs " << b.when
                      << ", core " << a.core << " vs " << b.core;
  }
}

TEST(FastPathDeterminism, OnOffByteIdentical) {
  expect_identical(run_once(true, 1, 1234, std::nullopt),
                   run_once(false, 1, 1234, std::nullopt));
}

TEST(FastPathDeterminism, FuzzAcrossLatencySeedAndPerturbation) {
  for (Cycle lat : {Cycle{1}, Cycle{2}, Cycle{5}}) {
    for (std::uint64_t seed : {1ull, 42ull, 987ull}) {
      for (std::optional<std::uint64_t> perturb :
           {std::optional<std::uint64_t>{}, std::optional<std::uint64_t>{7},
            std::optional<std::uint64_t>{99}}) {
        SCOPED_TRACE(::testing::Message() << "l1_latency=" << lat << " seed=" << seed
                                          << " perturb=" << (perturb ? *perturb : 0));
        expect_identical(run_once(true, lat, seed, perturb),
                         run_once(false, lat, seed, perturb));
      }
    }
  }
}

TEST(FastPathDeterminism, FastPathActuallyEngages) {
  // Guard against the fast path silently rotting into a no-op: a one-core
  // hit loop must finish with far fewer event-queue pops than operations.
  MachineConfig cfg = small_config(1, /*leases=*/false);
  cfg.fast_path = true;
  Machine m{cfg, /*seed=*/1};
  const Addr a = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (int i = 0; i < 4000; ++i) (void)co_await ctx.load(a);
  });
  // Drive the queue directly: run_while returns the number of events that
  // actually fired (inline completions never enter the queue).
  const std::uint64_t fired = m.events().run_while([&] { return !m.all_done(); });
  ASSERT_TRUE(m.all_done());
  // 4000 hit loads, streak capped at kMaxInlineStreak=128: ~1 real event per
  // 128 inline completions plus the initial miss. Be loose: < 10% of ops.
  EXPECT_LT(fired, 400u);
}

}  // namespace
}  // namespace lrsim
