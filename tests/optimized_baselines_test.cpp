// Copyright (c) 2026 lrsim authors. MIT license.
//
// Tests for the "optimized software techniques" comparison set (Section 7):
// elimination-backoff stack, flat-combining stack, MCS lock.
#include <gtest/gtest.h>

#include <set>

#include "ds/elimination_stack.hpp"
#include "ds/fc_stack.hpp"
#include "sim_test_util.hpp"
#include "sync/locks.hpp"

namespace lrsim {
namespace {

using testing::small_config;

// ---------------------------------------------------------------------------
// EliminationStack
// ---------------------------------------------------------------------------

TEST(EliminationStack, SequentialLifo) {
  Machine m{small_config(1, false)};
  EliminationStack s{m};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (std::uint64_t v = 1; v <= 5; ++v) co_await s.push(ctx, v);
    for (std::uint64_t v = 5; v >= 1; --v) {
      std::optional<std::uint64_t> got = co_await s.pop(ctx);
      CO_ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, v);
    }
    std::optional<std::uint64_t> empty = co_await s.pop(ctx);
    EXPECT_FALSE(empty.has_value());
  });
  m.run();
  EXPECT_EQ(s.eliminations(), 0u);  // no contention, no elimination
}

TEST(EliminationStack, ConcurrentConservation) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 30;
  Machine m{small_config(kThreads, false)};
  EliminationStack s{m};
  std::multiset<std::uint64_t> popped;
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int t) -> Task<void> {
    for (int i = 0; i < kPerThread; ++i) {
      co_await s.push(ctx, static_cast<std::uint64_t>((t + 1) * 1000 + i));
    }
    for (int i = 0; i < kPerThread; ++i) {
      std::optional<std::uint64_t> v = co_await s.pop(ctx);
      if (v.has_value()) popped.insert(*v);
    }
  });
  std::multiset<std::uint64_t> all(popped);
  for (std::uint64_t v : s.snapshot()) all.insert(v);
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  std::set<std::uint64_t> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), all.size()) << "duplicated or invented elements";
}

TEST(EliminationStack, EliminationActuallyHappensUnderContention) {
  constexpr int kThreads = 16;
  Machine m{small_config(kThreads, false)};
  EliminationStack s{m, {.slots = 8, .wait = 600}};
  // Pure producer/consumer halves maximize pairing opportunities.
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int t) -> Task<void> {
    for (int i = 0; i < 25; ++i) {
      if (t % 2 == 0) {
        co_await s.push(ctx, static_cast<std::uint64_t>(t * 100 + i + 1));
      } else {
        co_await s.pop(ctx);
      }
    }
  });
  EXPECT_GT(s.eliminations(), 0u);
  EXPECT_EQ(s.eliminations() % 2, 0u);  // counted once on each side
}

// ---------------------------------------------------------------------------
// FcStack
// ---------------------------------------------------------------------------

TEST(FcStack, SequentialLifo) {
  Machine m{small_config(1, false)};
  FcStack s{m, {.max_threads = 1}};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    std::optional<std::uint64_t> empty = co_await s.pop(ctx);
    EXPECT_FALSE(empty.has_value());
    for (std::uint64_t v = 1; v <= 4; ++v) co_await s.push(ctx, v);
    for (std::uint64_t v = 4; v >= 1; --v) {
      std::optional<std::uint64_t> got = co_await s.pop(ctx);
      CO_ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, v);
    }
  });
  m.run();
}

TEST(FcStack, ConcurrentConservationAndCombining) {
  constexpr int kThreads = 12;
  constexpr int kPerThread = 20;
  Machine m{small_config(kThreads, false)};
  FcStack s{m, {.max_threads = kThreads}};
  std::multiset<std::uint64_t> popped;
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int t) -> Task<void> {
    for (int i = 0; i < kPerThread; ++i) {
      co_await s.push(ctx, static_cast<std::uint64_t>((t + 1) * 1000 + i));
    }
    for (int i = 0; i < kPerThread / 2; ++i) {
      std::optional<std::uint64_t> v = co_await s.pop(ctx);
      if (v.has_value()) popped.insert(*v);
    }
  });
  std::multiset<std::uint64_t> all(popped);
  for (std::uint64_t v : s.snapshot()) all.insert(v);
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  // Combining must have batched multiple ops per pass on average.
  EXPECT_GT(s.combined_ops(), 0u);
  EXPECT_GT(static_cast<double>(s.combined_ops()) / static_cast<double>(s.combining_passes()),
            1.2)
      << "combiner should batch more than ~1 op per pass under contention";
}

TEST(FcStack, PopsNeverInventValues) {
  constexpr int kThreads = 6;
  Machine m{small_config(kThreads, false)};
  FcStack s{m, {.max_threads = kThreads}};
  int successful_pops = 0, pushes = 0;
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 20; ++i) {
      if (ctx.rng().next_bool(0.4)) {
        co_await s.push(ctx, 7);
        ++pushes;
      } else {
        std::optional<std::uint64_t> v = co_await s.pop(ctx);
        if (v.has_value()) ++successful_pops;
      }
    }
  });
  EXPECT_LE(successful_pops, pushes);
  EXPECT_EQ(s.snapshot().size(), static_cast<std::size_t>(pushes - successful_pops));
}

// ---------------------------------------------------------------------------
// MCSLock
// ---------------------------------------------------------------------------

TEST(MCSLock, NoLostUpdates) {
  constexpr int kThreads = 8, kReps = 30;
  Machine m{small_config(kThreads, false)};
  MCSLock lock{m};
  Addr counter = m.heap().alloc_line();
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < kReps; ++i) {
      co_await lock.lock(ctx);
      const std::uint64_t v = co_await ctx.load(counter);
      co_await ctx.work(20);
      co_await ctx.store(counter, v + 1);
      co_await lock.unlock(ctx);
    }
  });
  EXPECT_EQ(m.memory().read(counter), static_cast<std::uint64_t>(kThreads) * kReps);
}

TEST(MCSLock, GrantsInArrivalOrder) {
  constexpr int kThreads = 5;
  Machine m{small_config(kThreads, false)};
  MCSLock lock{m};
  std::vector<int> order;
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int t) -> Task<void> {
    co_await ctx.work(static_cast<Cycle>(1 + 80 * t));
    co_await lock.lock(ctx);
    order.push_back(t);
    co_await ctx.work(700);
    co_await lock.unlock(ctx);
  });
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(order[static_cast<std::size_t>(t)], t);
}

TEST(MCSLock, UncontendedFastPathIsCheap) {
  Machine m{small_config(1, false)};
  MCSLock lock{m};
  Cycle locked_section = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await lock.lock(ctx);  // warm the nodes
    co_await lock.unlock(ctx);
    const Cycle t0 = ctx.now();
    co_await lock.lock(ctx);
    co_await lock.unlock(ctx);
    locked_section = ctx.now() - t0;
  });
  m.run();
  // All-hit lock+unlock: a handful of L1-latency ops, no coherence round.
  EXPECT_LE(locked_section, 10u);
}

}  // namespace
}  // namespace lrsim
