// Copyright (c) 2026 lrsim authors. MIT license.
//
// Section 5 design alternatives: NACK-based transient blocking (instead of
// parking probes at the owner) and the speculative futility predictor
// (ignore leases that keep expiring involuntarily).
#include <gtest/gtest.h>

#include "ds/treiber_stack.hpp"
#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

MachineConfig nack_config(int cores) {
  MachineConfig cfg = small_config(cores, true);
  cfg.nack_on_lease = true;
  cfg.nack_retry_delay = 50;
  return cfg;
}

TEST(Nack, ProbeRetriesUntilVoluntaryRelease) {
  Machine m{nack_config(2)};
  Addr a = m.heap().alloc_line();
  Cycle release_time = 0, store_done = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(a, 10'000);
    co_await ctx.work(2000);
    co_await ctx.release(a);
    release_time = ctx.now();
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(100);
    co_await ctx.store(a, 1);
    store_done = ctx.now();
  });
  m.run(10'000'000);
  ASSERT_TRUE(m.all_done());
  // The store still waits for the release, but via NACK/retry: no probe is
  // ever parked, and the retries generate NACK traffic.
  EXPECT_GE(store_done, release_time);
  EXPECT_LE(store_done, release_time + 2 * 50 + 100);  // within one retry round
  Stats s = m.total_stats();
  EXPECT_EQ(s.probes_queued, 0u);
  EXPECT_GE(s.msgs_nack, 2u * (2000 / 50 / 2));  // many retry rounds
}

TEST(Nack, InvoluntaryExpiryAlsoUnblocks) {
  MachineConfig cfg = nack_config(2);
  cfg.max_lease_time = 1000;
  Machine m{cfg};
  Addr a = m.heap().alloc_line();
  Cycle store_done = 0;
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(a, 100'000);
    co_await ctx.work(50'000);  // never releases in time
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(100);
    co_await ctx.store(a, 1);
    store_done = ctx.now();
  });
  m.run();
  EXPECT_LT(store_done, 2500u);  // bounded by MAX_LEASE_TIME + one retry
}

TEST(Nack, ContendedStackRemainsCorrect) {
  constexpr int kThreads = 8;
  Machine m{nack_config(kThreads)};
  TreiberStack s{m, {.use_lease = true}};
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int t) -> Task<void> {
    for (int i = 0; i < 25; ++i) {
      co_await s.push(ctx, static_cast<std::uint64_t>(t * 100 + i));
    }
  });
  EXPECT_EQ(s.snapshot().size(), 8u * 25u);
}

TEST(Nack, GeneratesMoreTrafficThanParking) {
  // The parked-probe design is quieter on the wire: one probe waits; NACK
  // mode keeps retrying. Same workload, compare message counts.
  auto run = [](bool nack) {
    MachineConfig cfg = small_config(4, true);
    cfg.nack_on_lease = nack;
    cfg.nack_retry_delay = 50;
    Machine m{cfg};
    Addr a = m.heap().alloc_line();
    for (int c = 0; c < 4; ++c) {
      m.spawn(c, [&](Ctx& ctx) -> Task<void> {
        for (int i = 0; i < 10; ++i) {
          co_await ctx.lease(a, 5000);
          const std::uint64_t v = co_await ctx.load(a);
          co_await ctx.work(500);  // sizeable hold
          co_await ctx.store(a, v + 1);
          co_await ctx.release(a);
        }
      });
    }
    m.run();
    EXPECT_EQ(m.memory().read(a), 40u);
    return m.total_stats().total_messages();
  };
  EXPECT_GT(run(true), run(false));
}

TEST(Predictor, SuppressesChronicallyExpiringLeases) {
  MachineConfig cfg = small_config(2, true);
  cfg.lease_predictor = true;
  cfg.predictor_threshold = 3;
  cfg.max_lease_time = 500;
  Machine m{cfg};
  Addr a = m.heap().alloc_line();
  // Core 0's critical "section" is far longer than MAX_LEASE_TIME: every
  // lease expires involuntarily. After 3 expirations the predictor must
  // start skipping the lease entirely.
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (int i = 0; i < 10; ++i) {
      co_await ctx.lease(a, 10'000);
      co_await ctx.load(a);
      co_await ctx.work(2000);  // lease (500) expires mid-"section"
      co_await ctx.release(a);
    }
  });
  m.run();
  Stats s = m.total_stats();
  EXPECT_EQ(s.releases_involuntary, 3u);  // exactly the threshold
  EXPECT_EQ(s.leases_suppressed, 7u);     // the rest skipped
}

TEST(Predictor, VoluntaryReleaseRehabilitates) {
  MachineConfig cfg = small_config(1, true);
  cfg.lease_predictor = true;
  cfg.predictor_threshold = 2;
  cfg.max_lease_time = 500;
  Machine m{cfg};
  Addr a = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    // Two bad leases -> suppressed.
    for (int i = 0; i < 2; ++i) {
      co_await ctx.lease(a, 10'000);
      co_await ctx.work(1000);
      co_await ctx.release(a);
    }
    EXPECT_TRUE(ctx.controller().lease_table().predicts_futile(line_of(a)));
    // A suppressed lease... then simulate the program fixing its usage: a
    // manual short lease cycle via the table is not possible, so check the
    // suppression path first.
    co_await ctx.lease(a, 10'000);  // suppressed (no entry created)
    EXPECT_FALSE(ctx.controller().lease_table().has(line_of(a)));
    co_await ctx.release(a);  // releasing nothing: involuntary=false
  });
  m.run();
  EXPECT_EQ(m.total_stats().leases_suppressed, 1u);
}

TEST(Predictor, WellBehavedLeasesAreNeverSuppressed) {
  MachineConfig cfg = small_config(4, true);
  cfg.lease_predictor = true;
  Machine m{cfg};
  TreiberStack s{m, {.use_lease = true}};
  testing::run_workers(m, 4, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 25; ++i) {
      co_await s.push(ctx, 1);
      co_await s.pop(ctx);
    }
  });
  EXPECT_EQ(m.total_stats().leases_suppressed, 0u);
}

TEST(Predictor, RecoversBaselineThroughputUnderMisuse) {
  // Misused leases (sections longer than MAX_LEASE_TIME) hurt everyone:
  // probes wait for full expiries. The predictor turns them off and
  // recovers most of the loss.
  auto run = [](bool predictor) {
    MachineConfig cfg = small_config(4, true);
    cfg.lease_predictor = predictor;
    cfg.predictor_threshold = 3;
    cfg.max_lease_time = 800;
    Machine m{cfg};
    Addr a = m.heap().alloc_line();
    for (int c = 0; c < 4; ++c) {
      m.spawn(c, [&](Ctx& ctx) -> Task<void> {
        for (int i = 0; i < 15; ++i) {
          // A CAS retry loop whose "section" is far longer than the lease
          // bound: the lease always expires mid-window, so it only adds
          // expiry waits without preventing the CAS failures.
          while (true) {
            co_await ctx.lease(a, 10'000);
            const std::uint64_t v = co_await ctx.load(a);
            co_await ctx.work(3000);  // way past the lease bound
            const bool ok = co_await ctx.cas(a, v, v + 1);
            co_await ctx.release(a);
            if (ok) break;
          }
        }
      });
    }
    const Cycle end = m.run();
    EXPECT_EQ(m.memory().read(a), 60u);
    return end;
  };
  const Cycle with_pred = run(true);
  const Cycle without = run(false);
  EXPECT_LT(with_pred, without);
}

}  // namespace
}  // namespace lrsim
