// Copyright (c) 2026 lrsim authors. MIT license.
//
// API-misuse guardrails: invalid configs are rejected with exceptions, and
// the in-order-core contract (one outstanding memory op per Ctx) is
// enforced by an assert in debug builds.
#include <gtest/gtest.h>

#include <coroutine>
#include <stdexcept>

#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

TEST(Guardrails, MachineRejectsZeroCores) {
  MachineConfig cfg = small_config(0, /*leases=*/false);
  EXPECT_THROW(Machine(cfg, /*seed=*/1), std::invalid_argument);
}

TEST(Guardrails, MachineRejectsNegativeCores) {
  MachineConfig cfg = small_config(-3, /*leases=*/false);
  EXPECT_THROW(Machine(cfg, /*seed=*/1), std::invalid_argument);
}

// The directory tracks sharers in a 64-bit core bitmask, so the machine is
// hard-capped at 64 cores (the paper's largest configuration).
TEST(Guardrails, MachineRejectsMoreThan64Cores) {
  MachineConfig cfg = small_config(65, /*leases=*/false);
  EXPECT_THROW(Machine(cfg, /*seed=*/1), std::invalid_argument);
  cfg = small_config(64, /*leases=*/false);
  EXPECT_NO_THROW(Machine(cfg, /*seed=*/1));
}

// Issuing a second memory op while one is in flight on the same core
// violates the in-order-core model and must die on the Ctx::begin_op
// assert. Asserts compile out under NDEBUG (RelWithDebInfo), so the test
// only runs in Debug builds.
TEST(GuardrailsDeathTest, ConcurrentOpsOnOneCoreDie) {
#ifdef NDEBUG
  GTEST_SKIP() << "asserts disabled (NDEBUG)";
#else
  EXPECT_DEATH(
      {
        // Paren-init: a brace-level comma would split the EXPECT_DEATH
        // macro arguments.
        Machine m(small_config(1, false), /*seed=*/1);
        const Addr a = m.heap().alloc_line();
        m.spawn(0, [a](Ctx& ctx) -> Task<void> {
          // Start a load but never co_await it: the op is in flight and no
          // completion can resume this frame.
          auto dangling = ctx.load(a);
          dangling.await_suspend(std::noop_coroutine());
          (void)co_await ctx.load(a);  // second op on the same core: boom
        });
        m.run(1'000'000);
      },
      "two concurrent memory ops");
#endif
}

}  // namespace
}  // namespace lrsim
