// Copyright (c) 2026 lrsim authors. MIT license.
//
// API-misuse guardrails: invalid configs are rejected with exceptions, and
// the in-order-core contract (one outstanding memory op per Ctx) is
// enforced by an assert in debug builds.
#include <gtest/gtest.h>

#include <coroutine>
#include <stdexcept>

#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

TEST(Guardrails, MachineRejectsZeroCores) {
  MachineConfig cfg = small_config(0, /*leases=*/false);
  EXPECT_THROW(Machine(cfg, /*seed=*/1), std::invalid_argument);
}

TEST(Guardrails, MachineRejectsNegativeCores) {
  MachineConfig cfg = small_config(-3, /*leases=*/false);
  EXPECT_THROW(Machine(cfg, /*seed=*/1), std::invalid_argument);
}

// The hybrid sharer sets (coherence/sharer_set.hpp) lift the old 64-core
// bitmask cap to kMaxCores = 256: every count up to the cap constructs,
// one past it throws.
TEST(Guardrails, MachineAcceptsUpToKMaxCores) {
  for (int n : {64, 65, 128, 256}) {
    MachineConfig cfg = small_config(n, /*leases=*/false);
    EXPECT_NO_THROW(Machine(cfg, /*seed=*/1)) << n << " cores";
  }
  MachineConfig cfg = small_config(kMaxCores + 1, /*leases=*/false);
  EXPECT_THROW(Machine(cfg, /*seed=*/1), std::invalid_argument);
}

// Constructing a Directory directly (bypassing Machine) used to silently
// shift core_bit(c) out of the 64-bit mask for num_cores > 64 — UB, no
// diagnostic. The Directory now validates through the same kMaxCores.
TEST(Guardrails, DirectDirectoryConstructionChecksCoreCount) {
  EventQueue ev;
  SimMemory mem;
  Stats stats;
  MachineConfig cfg = small_config(kMaxCores + 1, /*leases=*/false);
  EXPECT_THROW(Directory(ev, mem, cfg, stats), std::invalid_argument);
  cfg.num_cores = 0;
  EXPECT_THROW(Directory(ev, mem, cfg, stats), std::invalid_argument);
  cfg.num_cores = 256;
  EXPECT_NO_THROW(Directory(ev, mem, cfg, stats));
  // A granularity whose coarse region vector cannot fit 64 group bits is
  // rejected too (256 cores at granularity 1 would need 256 groups).
  cfg.sharer_granularity = 1;
  EXPECT_THROW(Directory(ev, mem, cfg, stats), std::invalid_argument);
  cfg.sharer_granularity = 4;
  EXPECT_NO_THROW(Directory(ev, mem, cfg, stats));
  cfg.sharer_granularity = -1;
  EXPECT_THROW(Directory(ev, mem, cfg, stats), std::invalid_argument);
  cfg.sharer_granularity = 0;
  cfg.sharer_spill_lines = -1;
  EXPECT_THROW(Directory(ev, mem, cfg, stats), std::invalid_argument);
}

// Issuing a second memory op while one is in flight on the same core
// violates the in-order-core model and must die on the Ctx::begin_op
// assert. Asserts compile out under NDEBUG (RelWithDebInfo), so the test
// only runs in Debug builds.
TEST(GuardrailsDeathTest, ConcurrentOpsOnOneCoreDie) {
#ifdef NDEBUG
  GTEST_SKIP() << "asserts disabled (NDEBUG)";
#else
  EXPECT_DEATH(
      {
        // Paren-init: a brace-level comma would split the EXPECT_DEATH
        // macro arguments.
        Machine m(small_config(1, false), /*seed=*/1);
        const Addr a = m.heap().alloc_line();
        m.spawn(0, [a](Ctx& ctx) -> Task<void> {
          // Start a load but never co_await it: the op is in flight and no
          // completion can resume this frame.
          auto dangling = ctx.load(a);
          dangling.await_suspend(std::noop_coroutine());
          (void)co_await ctx.load(a);  // second op on the same core: boom
        });
        m.run(1'000'000);
      },
      "two concurrent memory ops");
#endif
}

}  // namespace
}  // namespace lrsim
