// Copyright (c) 2026 lrsim authors. MIT license.
//
// InvariantChecker unit + acceptance tests: clean contended workloads pass
// with checks running, an injected lost-invalidation (SWMR) bug is caught,
// each invariant family fires on a direct counterexample, and the shrink
// harness reduces a failing fuzz script to a handful of ops.
#include <gtest/gtest.h>

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "shrink_util.hpp"
#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::ScriptEnv;
using testing::ScriptOp;
using testing::small_config;

Task<void> lease_faa_worker(Ctx& ctx, std::vector<Addr> pool, int iters) {
  for (int i = 0; i < iters; ++i) {
    const Addr a = pool[ctx.rng().next_below(pool.size())];
    const bool leased = ctx.rng().next_bool(0.5);
    if (leased) co_await ctx.lease(a, 300 + ctx.rng().next_below(900));
    co_await ctx.faa(a, 1);
    if (ctx.rng().next_bool(0.5)) co_await ctx.store(a, co_await ctx.load(a) + 1);
    if (leased) co_await ctx.release(a);
    if (ctx.rng().next_bool(0.3)) co_await ctx.work(ctx.rng().next_below(40));
  }
}

void run_clean(CoherenceProtocol proto, std::optional<std::uint64_t> perturb) {
  MachineConfig cfg = small_config(4, /*leases=*/true);
  cfg.protocol = proto;
  cfg.max_lease_time = 1500;
  Machine m{cfg, /*seed=*/11};
  if (perturb) m.enable_perturbation(*perturb);
  InvariantChecker& inv = m.enable_invariants();
  std::vector<Addr> pool{m.heap().alloc_line(), m.heap().alloc_line()};
  try {
    testing::run_workers(m, 4, [&pool](Ctx& ctx, int) { return lease_faa_worker(ctx, pool, 60); });
    inv.check_all();
  } catch (const InvariantViolation& e) {
    FAIL() << "clean workload tripped the checker: " << e.what();
  }
  EXPECT_GT(inv.checks_run(), 0u);
}

TEST(Invariants, CleanContendedWorkloadPassesMsi) { run_clean(CoherenceProtocol::kMSI, {}); }
TEST(Invariants, CleanContendedWorkloadPassesMesi) { run_clean(CoherenceProtocol::kMESI, {}); }
TEST(Invariants, CleanContendedWorkloadPassesMoesi) { run_clean(CoherenceProtocol::kMOESI, {}); }

TEST(Invariants, CleanWorkloadPassesUnderPerturbation) {
  for (std::uint64_t seed : {3u, 99u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    run_clean(CoherenceProtocol::kMSI, seed);
  }
}

// The acceptance-criteria bug: a probe whose invalidation is silently lost
// leaves two cores with M copies. The checker must catch it at the moment
// the second copy is installed, not many ops later at the oracle.
TEST(Invariants, InjectedSwmrBugIsCaught) {
  MachineConfig cfg = small_config(2, /*leases=*/false);
  Machine m{cfg, /*seed=*/5};
  m.enable_invariants();
  const Addr a = m.heap().alloc_line();
  const LineId bad = line_of(a);
  for (int c = 0; c < 2; ++c) {
    m.controller(c).set_test_probe_fault([bad](CoreId, LineId l) { return l == bad; });
  }
  for (int c = 0; c < 2; ++c) {
    m.spawn(c, [a, c](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < 20; ++i) {
        co_await ctx.store(a, static_cast<std::uint64_t>(c * 100 + i));
        co_await ctx.work(10);
      }
    });
  }
  try {
    m.run(10'000'000);
    FAIL() << "lost invalidation went undetected";
  } catch (const InvariantViolation& e) {
    EXPECT_EQ(e.kind(), InvariantKind::kSwmr) << e.what();
    EXPECT_EQ(e.line(), bad);
    // The violation carries per-line trace history for debugging.
    EXPECT_FALSE(e.history().empty());
    EXPECT_NE(std::string(e.what()).find("SWMR"), std::string::npos);
  }
}

// Data-value invariant: the memory image of a line must not change while no
// core holds it exclusively. A direct SimMemory poke models a phantom
// writer.
TEST(Invariants, DataValueViolationOnHiddenWrite) {
  MachineConfig cfg = small_config(2, /*leases=*/false);
  Machine m{cfg, /*seed=*/5};
  InvariantChecker& inv = m.enable_invariants();
  const Addr a = m.heap().alloc_line();
  m.spawn(0, [a](Ctx& ctx) -> Task<void> {
    co_await ctx.store(a, 7);
    (void)co_await ctx.load(a);
  });
  m.spawn(1, [a](Ctx& ctx) -> Task<void> {
    co_await ctx.work(2000);  // after core 0's store: line ends up S/S
    (void)co_await ctx.load(a);
  });
  m.run(10'000'000);
  ASSERT_TRUE(m.all_done());
  m.memory().write(a, 12345);  // hidden writer
  try {
    inv.check_all();
    FAIL() << "hidden write went undetected";
  } catch (const InvariantViolation& e) {
    EXPECT_EQ(e.kind(), InvariantKind::kDataValue) << e.what();
  }
}

// Directory-FIFO invariant: service order must equal arrival order. Driven
// through the hooks directly (the real directory is FIFO by construction).
TEST(Invariants, DirFifoViolationOnOutOfOrderService) {
  Machine m{small_config(2, false), /*seed=*/5};
  InvariantChecker& inv = m.enable_invariants();
  const LineId line = 0x7777;
  inv.on_dir_enqueue(line, 0);
  inv.on_dir_enqueue(line, 1);
  try {
    inv.on_dir_service(line, 1);  // core 0 arrived first
    FAIL() << "out-of-order service went undetected";
  } catch (const InvariantViolation& e) {
    EXPECT_EQ(e.kind(), InvariantKind::kDirFifo) << e.what();
    EXPECT_EQ(e.line(), line);
  }
}

// End-to-end acceptance: a 120-op random fuzz script over a machine with
// the injected SWMR fault fails, and the shrinker reduces it to <= 20 ops
// that still fail, printed as a paste-able regression test.
TEST(Invariants, ShrinkerReducesInjectedBugToSmallRepro) {
  ScriptEnv env;
  env.cfg = small_config(4, /*leases=*/true);
  env.cfg.max_lease_time = 2000;
  env.machine_seed = 42;
  env.pool_lines = 3;
  env.fault_line = 0;

  Rng rng{42};
  std::vector<ScriptOp> ops;
  for (int i = 0; i < 120; ++i) {
    ScriptOp op;
    op.core = static_cast<int>(rng.next_below(4));
    op.kind = static_cast<int>(rng.next_below(5));
    op.addr = static_cast<int>(rng.next_below(3));
    op.arg1 = rng.next_below(1000);
    op.arg2 = rng.next_below(1000);
    if (rng.next_bool(0.25)) op.lease = 300 + rng.next_below(1000);
    ops.push_back(op);
  }

  const auto first = testing::run_script(env, ops);
  ASSERT_FALSE(first.ok) << "injected fault did not fail the script";

  int probes = 0;
  auto still_fails = [&](const std::vector<ScriptOp>& cand) {
    ++probes;
    return !testing::run_script(env, cand).ok;
  };
  const std::vector<ScriptOp> minimal = testing::shrink_script(ops, still_fails);

  EXPECT_FALSE(testing::run_script(env, minimal).ok);
  EXPECT_LE(minimal.size(), 20u) << "shrinker left " << minimal.size() << " ops";
  EXPECT_GE(minimal.size(), 1u);

  const std::string repro = testing::format_repro(env, minimal);
  EXPECT_NE(repro.find("ScriptOp"), std::string::npos);
  EXPECT_NE(repro.find("run_script"), std::string::npos);
  std::cout << "shrunk " << ops.size() << " -> " << minimal.size() << " ops in " << probes
            << " probe runs; failure: " << first.why.substr(0, first.why.find('\n')) << "\n"
            << repro;
}

// A clean (fault-free) script both runs green and reports ok=true — the
// shrink harness itself must not flag healthy runs.
TEST(Invariants, CleanScriptReportsOk) {
  ScriptEnv env;
  env.cfg = small_config(2, /*leases=*/true);
  env.pool_lines = 2;
  const std::vector<ScriptOp> ops = {
      {0, 1, 0, 5, 0, 0}, {1, 3, 0, 2, 0, 400}, {0, 0, 0, 0, 0, 0}, {1, 4, 1, 9, 0, 0},
  };
  const auto r = testing::run_script(env, ops);
  EXPECT_TRUE(r.ok) << r.why;
}

}  // namespace
}  // namespace lrsim
