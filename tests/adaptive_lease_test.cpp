// Copyright (c) 2026 lrsim authors. MIT license.
//
// Adaptive per-line lease-time control (src/core/lease_table.hpp): AIMD
// convergence and clamping at the table level, bounded controller-map
// eviction, the static-policy no-op guarantee, invariant-checker runs with
// adaptation live, and machine/sweep-level determinism with the controller
// demonstrably engaged (grow counter > 0 — the equality checks are not
// vacuously comparing static runs).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "bench/sweep.hpp"
#include "core/lease_table.hpp"
#include "sim_test_util.hpp"

namespace lrsim::bench {
namespace {

// --- LeaseTable unit tests (no machine) -------------------------------------

struct AdaptiveFixture : ::testing::Test {
  AdaptiveFixture() : table(ev, stats, cfg) {
    cfg.max_num_leases = 3;
    cfg.max_lease_time = 1000;
    cfg.min_lease_time = 50;
    cfg.leases_enabled = true;
    cfg.lease_policy = LeasePolicy::kAdaptive;
  }

  /// One full lease lifecycle ending in involuntary expiry.
  void expire(LineId l, Cycle duration) {
    table.add(l, duration);
    table.on_granted(l);
    ev.run(ev.now() + duration);
    ASSERT_FALSE(table.has(l));
  }

  /// One full lease lifecycle released voluntarily after `held` cycles.
  void hold_and_release(LineId l, Cycle duration, Cycle held) {
    table.add(l, duration);
    table.on_granted(l);
    if (held > 0) ev.run(ev.now() + held);
    ASSERT_TRUE(table.release(l));
  }

  EventQueue ev;
  Stats stats;
  MachineConfig cfg;
  LeaseTable table;
};

TEST_F(AdaptiveFixture, ColdLineStartsAtMinLeaseTime) {
  EXPECT_EQ(table.policy_duration(5), 50u);
  EXPECT_EQ(table.adapt_tracked(), 0u);  // a read does not allocate state
}

TEST_F(AdaptiveFixture, StaticPolicyIsUntouchedByExpiries) {
  cfg.lease_policy = LeasePolicy::kStatic;
  expire(5, 100);
  EXPECT_EQ(table.policy_duration(5), cfg.max_lease_time);
  EXPECT_EQ(table.adapt_tracked(), 0u);
  EXPECT_EQ(stats.lease_adapt_grow, 0u);
}

TEST_F(AdaptiveFixture, InvoluntaryExpiryGrowsMultiplicativelyToTheCap) {
  // Each expiry doubles the controller's duration (floor +lease_grow_step)
  // until the MAX_LEASE_TIME clamp: 100 -> 200 -> 400 -> 800 -> 1000.
  expire(5, 100);
  EXPECT_EQ(table.policy_duration(5), 200u);
  for (int i = 0; i < 6; ++i) expire(5, table.policy_duration(5));
  EXPECT_EQ(table.policy_duration(5), cfg.max_lease_time);
  // Four growth events (200/400/800/1000); at the clamp, expiry is a no-op,
  // not a counter increment.
  EXPECT_EQ(stats.lease_adapt_grow, 4u);
}

TEST_F(AdaptiveFixture, SmallGrowthUsesTheAdditiveFloor) {
  cfg.lease_grow_step = 500;
  expire(5, 100);  // 2x = 200 < 100 + grow_step -> additive floor wins
  EXPECT_EQ(table.policy_duration(5), 600u);
}

TEST_F(AdaptiveFixture, VoluntaryStreakShrinksTowardTheHoldEnvelope) {
  cfg.lease_shrink_streak = 2;
  for (int i = 0; i < 6; ++i) expire(5, table.policy_duration(5));
  ASSERT_EQ(table.policy_duration(5), cfg.max_lease_time);
  // Sustained quick voluntary releases: the hold envelope decays and the
  // duration steps down behind it, never below min_lease_time.
  for (int i = 0; i < 60; ++i) hold_and_release(5, table.policy_duration(5), 0);
  EXPECT_EQ(table.policy_duration(5), cfg.min_lease_time);
  EXPECT_GT(stats.lease_adapt_shrink, 0u);
}

TEST_F(AdaptiveFixture, ShrinkFloorsAboveTheObservedHoldTime) {
  cfg.lease_shrink_streak = 2;
  for (int i = 0; i < 6; ++i) expire(5, table.policy_duration(5));
  // Real hold times of 400 cycles keep the envelope near 400: the duration
  // must not shrink into territory that would expire those holds.
  for (int i = 0; i < 60; ++i) hold_and_release(5, table.policy_duration(5), 400);
  EXPECT_GE(table.policy_duration(5), 400u);
  EXPECT_LT(table.policy_duration(5), cfg.max_lease_time);
}

TEST_F(AdaptiveFixture, AdaptedDurationNeverExceedsMaxLeaseTime) {
  cfg.lease_grow_step = 10'000;  // pathological knob: still clamped
  for (int i = 0; i < 8; ++i) expire(7, table.policy_duration(7));
  EXPECT_LE(table.policy_duration(7), cfg.max_lease_time);
  EXPECT_EQ(table.policy_duration(7), cfg.max_lease_time);
}

TEST_F(AdaptiveFixture, ControllerMapIsBoundedWithFifoEviction) {
  cfg.lease_ctrl_capacity = 2;
  for (LineId l = 10; l < 14; ++l) expire(l, 100);
  EXPECT_LE(table.adapt_tracked(), 2u);
  EXPECT_EQ(table.policy_duration(13), 200u);  // newest survives
  EXPECT_EQ(table.policy_duration(10), 50u);   // oldest fell back to cold
}

// --- machine-level: invariants + determinism with adaptation engaged --------

Task<void> adaptive_faa_worker(Ctx& ctx, std::vector<Addr> pool, int iters) {
  for (int i = 0; i < iters; ++i) {
    const Addr a = pool[ctx.rng().next_below(pool.size())];
    co_await ctx.lease(a, 0);  // policy-chosen duration
    co_await ctx.faa(a, 1);
    if (ctx.rng().next_bool(0.5)) co_await ctx.work(ctx.rng().next_below(200));
    co_await ctx.release(a);
  }
}

TEST(AdaptiveLease, InvariantCheckerPassesWithAdaptationLive) {
  MachineConfig cfg = testing::small_config(4, /*leases=*/true);
  cfg.lease_policy = LeasePolicy::kAdaptive;
  cfg.max_lease_time = 300;  // short cap: plenty of involuntary expiries
  cfg.min_lease_time = 30;
  Machine m{cfg, /*seed=*/11};
  InvariantChecker& inv = m.enable_invariants();
  std::vector<Addr> pool{m.heap().alloc_line(), m.heap().alloc_line()};
  try {
    testing::run_workers(m, 4,
                         [&pool](Ctx& ctx, int) { return adaptive_faa_worker(ctx, pool, 60); });
    inv.check_all();
  } catch (const InvariantViolation& e) {
    FAIL() << "adaptive workload tripped the checker: " << e.what();
  }
  EXPECT_GT(inv.checks_run(), 0u);
  // The run actually adapted — the lease-bound invariant was checked against
  // controller-chosen durations, not the static default.
  EXPECT_GT(m.total_stats().lease_adapt_grow, 0u);
}

TEST(AdaptiveLease, MachineRejectsInvalidControllerKnobs) {
  MachineConfig cfg = testing::small_config(2, true);
  cfg.lease_policy = LeasePolicy::kAdaptive;
  cfg.min_lease_time = 0;
  EXPECT_THROW((Machine{cfg, 1}), std::invalid_argument);
  cfg.min_lease_time = cfg.max_lease_time + 1;
  EXPECT_THROW((Machine{cfg, 1}), std::invalid_argument);
  cfg = testing::small_config(2, true);
  cfg.lease_policy = LeasePolicy::kAdaptive;
  cfg.lease_ctrl_capacity = 0;
  EXPECT_THROW((Machine{cfg, 1}), std::invalid_argument);
  cfg = testing::small_config(2, true);
  cfg.lease_policy = LeasePolicy::kAdaptive;
  cfg.lease_shrink_streak = 0;
  EXPECT_THROW((Machine{cfg, 1}), std::invalid_argument);
}

struct AdaptiveRun {
  Stats stats;
  Cycle cycles = 0;
  std::uint64_t parallel_events = 0;
};

AdaptiveRun run_adaptive(int threads, int sim_threads) {
  workload::WorkloadSpec spec;
  spec.ds = "treiber_stack";
  spec.ops = 25;
  spec.lease_policy = LeasePolicy::kAdaptive;
  const workload::WorkloadRun wr = workload::make_workload(spec, "lease");
  MachineConfig cfg;
  cfg.num_cores = threads;
  if (wr.configure) wr.configure(cfg);
  // Cold lines start at 1-cycle leases: the first contended ops must expire
  // involuntarily, so the controller demonstrably engages even in a short run.
  cfg.min_lease_time = 1;
  cfg.max_lease_time = 150;
  Machine m{cfg, spec.seed};
  m.set_sim_threads(sim_threads);
  auto worker = wr.build(m);
  const Stats prefill = m.total_stats();
  const Cycle start = m.events().now();
  for (int t = 0; t < threads; ++t) {
    m.spawn(t, [worker, t](Ctx& ctx) { return worker(ctx, t); });
  }
  m.run();
  EXPECT_TRUE(m.all_done());
  AdaptiveRun r;
  r.stats = m.total_stats();
  r.stats -= prefill;
  r.cycles = m.events().now() - start;
  if (const ParKernelStats* ps = m.par_stats()) r.parallel_events = ps->parallel_events;
  return r;
}

TEST(AdaptiveLease, ParallelKernelIsBitIdenticalWithAdaptationEngaged) {
  const AdaptiveRun serial = run_adaptive(/*threads=*/4, /*sim_threads=*/0);
  const AdaptiveRun par2 = run_adaptive(4, /*sim_threads=*/2);
  const AdaptiveRun par4 = run_adaptive(4, /*sim_threads=*/4);
  // Not vacuous on either axis: the controller adapted and the parallel
  // kernel really ran.
  EXPECT_GT(serial.stats.lease_adapt_grow, 0u);
  EXPECT_GT(par2.parallel_events, 0u);
  EXPECT_EQ(serial.parallel_events, 0u);
  EXPECT_EQ(serial.cycles, par2.cycles);
  EXPECT_EQ(serial.stats, par2.stats);
  EXPECT_EQ(serial.cycles, par4.cycles);
  EXPECT_EQ(serial.stats, par4.stats);
}

constexpr const char* kAdaptiveSweepConfig = R"(
[workload]
ds = treiber_stack
policies = lease
ops = 15
[sweep]
threads = 2, 4
max_lease_time = 150
lease_policies = static, adaptive
)";

std::string sweep_csv(int jobs, int sim_threads) {
  const auto cfg = workload::ConfigFile::parse_string(kAdaptiveSweepConfig, "<test>");
  const SweepConfig sc = parse_sweep_config(cfg);
  const std::vector<SweepRow> rows = run_sweep(sc, jobs, sim_threads);
  std::ostringstream os;
  sweep_csv_table(rows).write_csv(os);
  return os.str();
}

TEST(AdaptiveLease, SweepCsvIsByteIdenticalAcrossJobsAndSimThreads) {
  const std::string serial = sweep_csv(/*jobs=*/1, /*sim_threads=*/0);
  EXPECT_NE(serial.find(",adaptive,"), std::string::npos);
  EXPECT_NE(serial.find(",static,"), std::string::npos);
  EXPECT_EQ(serial, sweep_csv(1, 0));  // replay
  EXPECT_EQ(serial, sweep_csv(4, 0));  // host parallelism over matrix points
  EXPECT_EQ(serial, sweep_csv(1, 2));  // parallel in-run kernel
}

}  // namespace
}  // namespace lrsim::bench
