// Copyright (c) 2026 lrsim authors. MIT license.
//
// MultiQueues: sequential heap correctness, relaxed-PQ conservation, lease
// integration per Algorithm 4.
#include <gtest/gtest.h>

#include <set>

#include "ds/multiqueue.hpp"
#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

TEST(SimHeapPq, SequentialHeapOrder) {
  Machine m{small_config(1, false)};
  SimHeapPq h{m, 64};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    std::optional<std::uint64_t> empty = co_await h.delete_min(ctx);
    EXPECT_FALSE(empty.has_value());
    for (std::uint64_t v : {9, 3, 7, 1, 8, 2, 6, 4, 5}) {
      const bool ok = co_await h.insert(ctx, v);
      EXPECT_TRUE(ok);
    }
    std::optional<std::uint64_t> top = co_await h.top(ctx);
    CO_ASSERT_TRUE(top.has_value());
    EXPECT_EQ(*top, 1u);
    for (std::uint64_t want = 1; want <= 9; ++want) {
      std::optional<std::uint64_t> v = co_await h.delete_min(ctx);
      CO_ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, want);
    }
  });
  m.run();
}

TEST(SimHeapPq, RejectsBeyondCapacity) {
  Machine m{small_config(1, false)};
  SimHeapPq h{m, 4};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (int i = 0; i < 4; ++i) {
      const bool ok = co_await h.insert(ctx, static_cast<std::uint64_t>(i));
      EXPECT_TRUE(ok);
    }
    const bool overflow = co_await h.insert(ctx, 99);
    EXPECT_FALSE(overflow);
  });
  m.run();
  EXPECT_EQ(h.size(), 4u);
}

TEST(SimHeapPq, RandomizedAgainstMultiset) {
  Machine m{small_config(1, false)};
  SimHeapPq h{m, 256};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    std::multiset<std::uint64_t> oracle;
    for (int i = 0; i < 300; ++i) {
      if (oracle.empty() || ctx.rng().next_bool(0.6)) {
        const std::uint64_t v = ctx.rng().next_below(1000);
        co_await h.insert(ctx, v);
        oracle.insert(v);
      } else {
        std::optional<std::uint64_t> got = co_await h.delete_min(ctx);
        CO_ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, *oracle.begin());
        oracle.erase(oracle.begin());
      }
    }
    EXPECT_EQ(h.size(), oracle.size());
  });
  m.run(1'000'000'000);
  ASSERT_TRUE(m.all_done());
}

class MultiQueueLease : public ::testing::TestWithParam<bool> {};

TEST_P(MultiQueueLease, ConservationUnderConcurrency) {
  const bool lease = GetParam();
  constexpr int kThreads = 8;
  constexpr int kReps = 20;
  Machine m{small_config(kThreads, lease)};
  MultiQueue mq{m, {.num_queues = 4, .use_lease = lease}};
  int inserted = 0, removed = 0;
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < kReps; ++i) {
      co_await mq.insert(ctx, 1 + ctx.rng().next_below(1000));
      ++inserted;
      if (i % 2 == 1) {
        std::optional<std::uint64_t> v = co_await mq.delete_min(ctx);
        if (v.has_value()) ++removed;
      }
    }
  });
  EXPECT_EQ(mq.total_size(), static_cast<std::size_t>(inserted - removed));
  // Locks must all be free and no leases may linger.
  for (int c = 0; c < kThreads; ++c) {
    EXPECT_EQ(m.controller(c).lease_table().size(), 0) << "core " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Leases, MultiQueueLease, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "leased" : "base";
                         });

TEST(MultiQueue, DeleteMinIsRankRelaxedButSane) {
  // With 2 queues and sequential use, deleteMin returns one of the two
  // queue minima — i.e. at worst the 2nd smallest overall.
  Machine m{small_config(1, false)};
  MultiQueue mq{m, {.num_queues = 2}};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (std::uint64_t v = 1; v <= 20; ++v) co_await mq.insert(ctx, v);
    std::uint64_t prev_rank_bound = 0;
    for (int i = 0; i < 20; ++i) {
      std::optional<std::uint64_t> v = co_await mq.delete_min(ctx);
      CO_ASSERT_TRUE(v.has_value());
      // Each pop is within 2 of the smallest remaining value (rank error
      // bounded by the number of queues).
      EXPECT_LE(*v, prev_rank_bound + 2 + static_cast<std::uint64_t>(i));
      prev_rank_bound = std::max(prev_rank_bound, *v);
    }
    std::optional<std::uint64_t> empty = co_await mq.delete_min(ctx);
    EXPECT_FALSE(empty.has_value());
  });
  m.run(1'000'000'000);
  ASSERT_TRUE(m.all_done());
}

TEST(MultiQueue, EmptyDeleteMinTerminates) {
  Machine m{small_config(2, true)};
  MultiQueue mq{m, {.num_queues = 4, .use_lease = true}};
  testing::run_workers(m, 2, [&](Ctx& ctx, int) -> Task<void> {
    std::optional<std::uint64_t> v = co_await mq.delete_min(ctx);
    EXPECT_FALSE(v.has_value());
  });
}

}  // namespace
}  // namespace lrsim
