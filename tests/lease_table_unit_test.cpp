// Copyright (c) 2026 lrsim authors. MIT license.
//
// Standalone LeaseTable unit tests: the engine's bookkeeping exercised
// directly against an EventQueue, without a machine. Complements the
// machine-level suites in lease_test.cpp / multilease_test.cpp.
#include <gtest/gtest.h>

#include "core/lease_table.hpp"

namespace lrsim {
namespace {

struct TableFixture : ::testing::Test {
  TableFixture() : table(ev, stats, cfg) {
    cfg.max_num_leases = 3;
    cfg.max_lease_time = 1000;
    cfg.leases_enabled = true;
  }

  EventQueue ev;
  Stats stats;
  MachineConfig cfg;
  LeaseTable table;
};

TEST_F(TableFixture, AddGrantReleaseLifecycle) {
  EXPECT_TRUE(table.add(5, 400));
  EXPECT_TRUE(table.has(5));
  EXPECT_FALSE(table.pins(5));  // not granted yet: not pinned
  table.on_granted(5);
  EXPECT_TRUE(table.pins(5));
  EXPECT_TRUE(table.release(5));
  EXPECT_FALSE(table.has(5));
  EXPECT_EQ(stats.leases_taken, 1u);
  EXPECT_EQ(stats.releases_voluntary, 1u);
}

TEST_F(TableFixture, NoExtension) {
  EXPECT_TRUE(table.add(5, 400));
  EXPECT_FALSE(table.add(5, 400));  // second add is a no-op
  EXPECT_EQ(table.size(), 1);
  EXPECT_EQ(stats.leases_taken, 1u);
}

TEST_F(TableFixture, TimerFiresInvoluntaryRelease) {
  table.add(5, 400);
  table.on_granted(5);
  ev.run(399);
  EXPECT_TRUE(table.has(5));
  ev.run(400);
  EXPECT_FALSE(table.has(5));
  EXPECT_EQ(stats.releases_involuntary, 1u);
  EXPECT_FALSE(table.release(5));  // nothing left to release
}

TEST_F(TableFixture, DurationClampedToMax) {
  table.add(5, 99'999);
  table.on_granted(5);
  ev.run(1000);  // == MAX_LEASE_TIME
  EXPECT_FALSE(table.has(5));
}

TEST_F(TableFixture, UngrantedEntryHasNoTimer) {
  table.add(5, 100);
  ev.run(5000);  // no grant, no countdown, entry persists
  EXPECT_TRUE(table.has(5));
}

TEST_F(TableFixture, FifoEvictionAtCapacity) {
  for (LineId l = 1; l <= 3; ++l) {
    table.add(l, 500);
    table.on_granted(l);
  }
  EXPECT_EQ(table.size(), 3);
  table.add(4, 500);  // evicts line 1 (oldest)
  EXPECT_FALSE(table.has(1));
  EXPECT_TRUE(table.has(2));
  EXPECT_TRUE(table.has(4));
  EXPECT_EQ(stats.releases_evicted, 1u);
}

TEST_F(TableFixture, FifoEvictionOfGroupMemberTakesWholeGroup) {
  // Regression: evicting the oldest entry via single-entry removal used to
  // leave a partial MultiLease group behind (the survivor still reported
  // group_complete()). A group member at the FIFO front must take the
  // entire group with it, exactly like force_release.
  table.add(1, 500, /*in_group=*/true);
  table.add(2, 500, /*in_group=*/true);
  table.on_granted(1);
  table.on_granted(2);
  table.start_group();
  table.add(3, 500);
  EXPECT_EQ(table.size(), 3);
  table.add(4, 500);  // table full; front is group member 1
  EXPECT_FALSE(table.has(1));
  EXPECT_FALSE(table.has(2));  // whole group gone, not just the front
  EXPECT_TRUE(table.has(3));
  EXPECT_TRUE(table.has(4));
  EXPECT_FALSE(table.has_group());
  EXPECT_FALSE(table.group_complete());
  EXPECT_EQ(stats.releases_evicted, 2u);
}

TEST_F(TableFixture, FutilityPredictorMapIsBounded) {
  // Regression: the futility map used to grow one entry per distinct leased
  // line forever. It now models a fixed-size table bounded by
  // predictor_map_capacity, evicting the oldest-tracked line.
  cfg.lease_predictor = true;
  cfg.predictor_threshold = 1;
  cfg.predictor_map_capacity = 4;
  for (LineId l = 100; l < 140; ++l) {
    table.add(l, 50);
    table.on_granted(l);
    ev.run(ev.now() + 50);  // expire involuntarily
  }
  EXPECT_LE(table.futility_tracked(), 4u);
  EXPECT_TRUE(table.predicts_futile(139));   // newest streak survives
  EXPECT_FALSE(table.predicts_futile(100));  // oldest fell out of the table
}

TEST_F(TableFixture, VoluntaryReleaseErasesPredictorEntry) {
  // Rehabilitation removes the line from the predictor map instead of
  // zeroing it in place — zeroing kept one map entry per line ever leased.
  cfg.lease_predictor = true;
  cfg.predictor_threshold = 1;
  table.add(7, 50);
  table.on_granted(7);
  ev.run(ev.now() + 50);  // involuntary
  EXPECT_TRUE(table.predicts_futile(7));
  EXPECT_EQ(table.futility_tracked(), 1u);
  table.add(7, 50);
  table.on_granted(7);
  table.release(7);
  EXPECT_FALSE(table.predicts_futile(7));
  EXPECT_EQ(table.futility_tracked(), 0u);
}

TEST_F(TableFixture, EvictionServicesParkedProbe) {
  table.add(1, 500);
  table.on_granted(1);
  bool serviced = false;
  EXPECT_TRUE(table.maybe_park_probe(1, false, [&] { serviced = true; }));
  table.add(2, 500);
  table.add(3, 500);
  table.add(4, 500);  // FIFO-evicts line 1 -> its probe must run
  EXPECT_TRUE(serviced);
}

TEST_F(TableFixture, ParkOnlyWhenGranted) {
  table.add(7, 500);  // transition-to-lease: we do not own the line
  bool serviced = false;
  EXPECT_FALSE(table.maybe_park_probe(7, false, [&] { serviced = true; }));
  table.on_granted(7);
  EXPECT_TRUE(table.maybe_park_probe(7, false, [&] { serviced = true; }));
  EXPECT_FALSE(serviced);
  table.release(7);
  EXPECT_TRUE(serviced);
  EXPECT_EQ(stats.probes_queued, 1u);
}

TEST_F(TableFixture, ExpiryServicesParkedProbe) {
  table.add(7, 200);
  table.on_granted(7);
  bool serviced = false;
  table.maybe_park_probe(7, false, [&] { serviced = true; });
  ev.run(150);
  EXPECT_FALSE(serviced);
  ev.run(250);
  EXPECT_TRUE(serviced);
  EXPECT_GE(stats.probe_queued_cycles, 190u);  // parked at t=0, expiry ~200
}

TEST_F(TableFixture, PriorityBreaksRegularButNotLeaseRequests) {
  cfg.lease_priority_mode = true;
  table.add(7, 500);
  table.on_granted(7);
  // Lease-tagged probe parks.
  EXPECT_TRUE(table.maybe_park_probe(7, /*requestor_is_lease=*/true, [] {}));
  table.release(7);

  table.add(8, 500);
  table.on_granted(8);
  // Regular probe breaks the lease.
  EXPECT_FALSE(table.maybe_park_probe(8, /*requestor_is_lease=*/false, [] {}));
  EXPECT_FALSE(table.has(8));
  EXPECT_EQ(stats.releases_broken, 1u);
}

TEST_F(TableFixture, GroupStartsJointlyAndReleasesJointly) {
  table.add(1, 300, /*in_group=*/true);
  table.add(2, 300, /*in_group=*/true);
  table.on_granted(1);
  EXPECT_FALSE(table.group_complete());
  table.on_granted(2);
  EXPECT_TRUE(table.group_complete());
  table.start_group();
  // Releasing one member releases the whole group.
  EXPECT_TRUE(table.release(2));
  EXPECT_EQ(table.size(), 0);
  EXPECT_EQ(stats.releases_voluntary, 2u);
}

TEST_F(TableFixture, GroupExpiryIsJoint) {
  table.add(1, 300, true);
  table.add(2, 300, true);
  table.on_granted(1);
  table.on_granted(2);
  table.start_group();
  ev.run(299);
  EXPECT_EQ(table.size(), 2);
  ev.run(300);
  EXPECT_EQ(table.size(), 0);
  EXPECT_EQ(stats.releases_involuntary, 2u);
}

TEST_F(TableFixture, ReleaseAllIsTwoPhase) {
  // All entries disappear before any parked probe runs (Algorithm 2's
  // ReleaseAll order) — the probe callback must observe an empty table.
  table.add(1, 500);
  table.add(2, 500);
  table.on_granted(1);
  table.on_granted(2);
  int size_seen_by_probe = -1;
  table.maybe_park_probe(1, false, [&] { size_seen_by_probe = table.size(); });
  table.release_all();
  EXPECT_EQ(size_seen_by_probe, 0);
}

TEST_F(TableFixture, ForceReleaseDropsGroup) {
  table.add(1, 300, true);
  table.add(2, 300, true);
  table.on_granted(1);
  table.on_granted(2);
  table.start_group();
  table.force_release(1);
  EXPECT_EQ(table.size(), 0);  // whole group goes
  EXPECT_EQ(stats.releases_evicted, 2u);
}

TEST_F(TableFixture, BlocksProbeIsSideEffectFreeForLeaseRequests) {
  cfg.nack_on_lease = true;
  table.add(9, 500);
  table.on_granted(9);
  EXPECT_TRUE(table.blocks_probe(9, /*requestor_is_lease=*/true));
  EXPECT_TRUE(table.has(9));  // unchanged: caller NACKs and retries
}

TEST_F(TableFixture, FutilityPredictorCountsAndResets) {
  cfg.lease_predictor = true;
  cfg.predictor_threshold = 2;
  for (int i = 0; i < 2; ++i) {
    table.add(3, 100);
    table.on_granted(3);
    ev.run(ev.now() + 100);  // expire involuntarily
  }
  EXPECT_TRUE(table.predicts_futile(3));
  // A voluntary release rehabilitates the line.
  table.add(3, 100);
  table.on_granted(3);
  table.release(3);
  EXPECT_FALSE(table.predicts_futile(3));
}

}  // namespace
}  // namespace lrsim
