// Copyright (c) 2026 lrsim authors. MIT license.
//
// End-to-end smoke tests: machine construction, basic coherence behaviour,
// single-line leases, and the TTS lock under contention. Deeper per-module
// suites live in the sibling *_test.cpp files.
#include <gtest/gtest.h>

#include "lrsim.hpp"
#include "sync/locks.hpp"

namespace lrsim {
namespace {

MachineConfig small_config(int cores, bool leases) {
  MachineConfig cfg;
  cfg.num_cores = cores;
  cfg.leases_enabled = leases;
  return cfg;
}

TEST(Smoke, SingleThreadLoadStore) {
  Machine m{small_config(1, false)};
  Addr a = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.store(a, 42);
    const std::uint64_t v = co_await ctx.load(a);
    EXPECT_EQ(v, 42u);
  });
  const Cycle end = m.run();
  EXPECT_GT(end, 0u);
  EXPECT_TRUE(m.all_done());
}

TEST(Smoke, TwoThreadsInvalidateEachOther) {
  Machine m{small_config(2, false)};
  Addr a = m.heap().alloc_line();
  m.memory().write(a, 0);

  // Core 0 writes 1, core 1 spins until it sees it, then writes 2, core 0
  // waits for 2. Exercises M<->S<->M transfers through the directory.
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.store(a, 1);
    while (co_await ctx.load(a) != 2) {
    }
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    while (co_await ctx.load(a) != 1) {
    }
    co_await ctx.store(a, 2);
  });
  m.run(/*limit=*/1'000'000);
  ASSERT_TRUE(m.all_done()) << "threads deadlocked";
  EXPECT_EQ(m.memory().read(a), 2u);
}

TEST(Smoke, LeaseDelaysProbeUntilRelease) {
  Machine m{small_config(2, true)};
  Addr a = m.heap().alloc_line();
  Cycle t_store_done = 0;

  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(a, 5000);
    co_await ctx.store(a, 7);
    co_await ctx.work(2000);  // hold the lease while core 1 knocks
    co_await ctx.release(a);
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(200);  // let core 0 take the lease first
    co_await ctx.store(a, 9);
    t_store_done = ctx.now();
  });
  m.run(1'000'000);
  ASSERT_TRUE(m.all_done());
  EXPECT_EQ(m.memory().read(a), 9u);
  // Core 1's store must have waited for the voluntary release (~2000 cycles
  // after core 0 leased), not completed within a bare miss latency.
  EXPECT_GT(t_store_done, 1500u);
  Stats s = m.total_stats();
  EXPECT_EQ(s.probes_queued, 1u);
  EXPECT_EQ(s.releases_voluntary, 1u);
}

TEST(Smoke, InvoluntaryReleaseBoundsDelay) {
  Machine m{small_config(2, true)};
  Addr a = m.heap().alloc_line();
  Cycle t_store_done = 0;

  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.lease(a, 1000);
    co_await ctx.store(a, 7);
    co_await ctx.work(500'000);  // "forgets" to release; timer must fire
  });
  m.spawn(1, [&](Ctx& ctx) -> Task<void> {
    co_await ctx.work(100);
    co_await ctx.store(a, 9);
    t_store_done = ctx.now();
  });
  m.run(1'000'000);
  ASSERT_TRUE(m.all_done());
  // The probe waited for expiry (~1000 cycles), far less than core 0's
  // 500k-cycle critical section: Proposition 2's bound.
  EXPECT_LT(t_store_done, 5000u);
  EXPECT_EQ(m.total_stats().releases_involuntary, 1u);
}

TEST(Smoke, ContendedTTSLockCountsAllIncrements) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50;
  Machine m{small_config(kThreads, true)};
  TTSLock lock{m, {.use_lease = true}};
  Addr counter = m.heap().alloc_line();

  for (int t = 0; t < kThreads; ++t) {
    m.spawn(t, [&](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kIncrements; ++i) {
        co_await lock.lock(ctx);
        const std::uint64_t v = co_await ctx.load(counter);
        co_await ctx.store(counter, v + 1);
        co_await lock.unlock(ctx);
        ctx.count_op();
      }
    });
  }
  m.run(200'000'000);
  ASSERT_TRUE(m.all_done());
  EXPECT_EQ(m.memory().read(counter), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(Smoke, MultiLeaseInvertedOrderDoesNotDeadlock) {
  Machine m{small_config(2, true)};
  Addr a = m.heap().alloc_line();
  Addr b = m.heap().alloc_line();

  // Both threads repeatedly MultiLease {A,B} passing the addresses in
  // *opposite* orders; the sorted acquisition order must prevent deadlock.
  auto worker = [&](std::vector<Addr> addrs) {
    return [&, addrs](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < 30; ++i) {
        co_await ctx.multi_lease(addrs, 2000);
        co_await ctx.store(a, ctx.core());
        co_await ctx.store(b, ctx.core());
        co_await ctx.release_all();
      }
    };
  };
  m.spawn(0, worker({a, b}));
  m.spawn(1, worker({b, a}));
  m.run(50'000'000);
  ASSERT_TRUE(m.all_done()) << "MultiLease deadlocked";
}

}  // namespace
}  // namespace lrsim
