// Copyright (c) 2026 lrsim authors. MIT license.
//
// Tests for the extended evaluation set: SprayList (relaxed PQ, the paper's
// reference [4]), the cohort/hierarchical ticket lock (references [8]/[10]),
// the sense-reversing barrier, and the CRONO-style BFS kernel.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "apps/bfs.hpp"
#include "ds/spraylist.hpp"
#include "sim_test_util.hpp"
#include "sync/barrier.hpp"
#include "sync/cohort_lock.hpp"

namespace lrsim {
namespace {

using testing::small_config;

// ---------------------------------------------------------------------------
// SprayList
// ---------------------------------------------------------------------------

TEST(SprayList, SequentialDrainReturnsEverything) {
  Machine m{small_config(1, false)};
  SprayList pq{m};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (std::uint64_t p = 1; p <= 30; ++p) co_await pq.insert(ctx, p);
    std::multiset<std::uint64_t> out;
    for (int i = 0; i < 30; ++i) {
      std::optional<std::uint64_t> v = co_await pq.delete_min(ctx);
      CO_ASSERT_TRUE(v.has_value());
      out.insert(*v);
    }
    EXPECT_EQ(out.size(), 30u);
    EXPECT_EQ(*out.begin(), 1u);
    EXPECT_EQ(*out.rbegin(), 30u);
    std::optional<std::uint64_t> empty = co_await pq.delete_min(ctx);
    EXPECT_FALSE(empty.has_value());
  });
  m.run(1'000'000'000);
  ASSERT_TRUE(m.all_done());
}

TEST(SprayList, PopsAreNearMinimal) {
  // Relaxation quality: each pop should come from a bounded prefix of the
  // remaining elements (rank error O(spray_scale^2), generously bounded).
  Machine m{small_config(1, false)};
  SprayList pq{m, {.spray_scale = 3}};
  m.spawn(0, [&](Ctx& ctx) -> Task<void> {
    for (std::uint64_t p = 1; p <= 100; ++p) co_await pq.insert(ctx, p);
    std::uint64_t floor = 0;  // everything below has been removed
    for (int i = 0; i < 50; ++i) {
      std::optional<std::uint64_t> v = co_await pq.delete_min(ctx);
      CO_ASSERT_TRUE(v.has_value());
      // Rank error bound: each level-l jump of up to `scale` nodes skips
      // ~scale * 2^l bottom-level ranks, so worst case ~ scale * 2^(L+1).
      // With scale 3 and 4 levels that is ~45 expected; bound generously.
      EXPECT_LE(*v, floor + 90) << "pop " << i;
      floor = std::max(floor, *v > 90 ? *v - 90 : 0);
    }
  });
  m.run(1'000'000'000);
  ASSERT_TRUE(m.all_done());
}

TEST(SprayList, ConcurrentConservation) {
  constexpr int kThreads = 8;
  Machine m{small_config(kThreads, false)};
  SprayList pq{m};
  int inserted = 0, removed = 0;
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 20; ++i) {
      co_await pq.insert(ctx, 1 + ctx.rng().next_below(500));
      ++inserted;
      if (i % 2 == 1) {
        std::optional<std::uint64_t> v = co_await pq.delete_min(ctx);
        if (v.has_value()) ++removed;
      }
    }
  });
  EXPECT_EQ(pq.list().snapshot().size(), static_cast<std::size_t>(inserted - removed));
}

// ---------------------------------------------------------------------------
// CohortTicketLock
// ---------------------------------------------------------------------------

class CohortMutex : public ::testing::TestWithParam<bool> {};

TEST_P(CohortMutex, NoLostUpdates) {
  const bool lease = GetParam();
  constexpr int kThreads = 16, kReps = 20;
  Machine m{small_config(kThreads, lease)};
  CohortTicketLock lock{m, {.cluster_size = 4, .max_batch = 4, .use_lease = lease}};
  EXPECT_EQ(lock.num_clusters(), 4);
  Addr counter = m.heap().alloc_line();
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < kReps; ++i) {
      co_await lock.lock(ctx);
      const std::uint64_t v = co_await ctx.load(counter);
      co_await ctx.work(20);
      co_await ctx.store(counter, v + 1);
      co_await lock.unlock(ctx);
    }
  });
  EXPECT_EQ(m.memory().read(counter), static_cast<std::uint64_t>(kThreads) * kReps);
}

INSTANTIATE_TEST_SUITE_P(Leases, CohortMutex, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "leased" : "base";
                         });

TEST(CohortTicketLock, BatchBoundRotatesClusters) {
  // With max_batch = 2 and two clusters continuously competing, ownership
  // must rotate: both clusters' threads make progress.
  constexpr int kThreads = 8;  // clusters {0..3}, {4..7}
  Machine m{small_config(kThreads, false)};
  CohortTicketLock lock{m, {.cluster_size = 4, .max_batch = 2}};
  std::vector<int> acquisitions(kThreads, 0);
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int t) -> Task<void> {
    for (int i = 0; i < 15; ++i) {
      co_await lock.lock(ctx);
      ++acquisitions[static_cast<std::size_t>(t)];
      co_await ctx.work(50);
      co_await lock.unlock(ctx);
    }
  });
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(acquisitions[static_cast<std::size_t>(t)], 15);
}

TEST(CohortTicketLock, LeaseCompatibilityClaim) {
  // Section 2: "Leases do not change the lock ownership pattern, and should
  // hence be compatible with cohorting." Leased cohort lock must be correct
  // (checked above) and at least as fast under contention.
  auto run = [](bool lease) {
    constexpr int kThreads = 16;
    Machine m{small_config(kThreads, lease)};
    CohortTicketLock lock{m, {.cluster_size = 4, .use_lease = lease}};
    Addr counter = m.heap().alloc_line();
    return testing::run_workers(m, kThreads, [&, counter](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < 20; ++i) {
        co_await lock.lock(ctx);
        const std::uint64_t v = co_await ctx.load(counter);
        co_await ctx.store(counter, v + 1);
        co_await lock.unlock(ctx);
      }
    });
  };
  const Cycle leased = run(true);
  const Cycle base = run(false);
  EXPECT_LE(leased, base + base / 10);  // no regression beyond noise
}

// ---------------------------------------------------------------------------
// SenseBarrier
// ---------------------------------------------------------------------------

TEST(SenseBarrier, NoThreadPassesEarly) {
  constexpr int kThreads = 6;
  Machine m{small_config(kThreads, false)};
  SenseBarrier barrier{m, kThreads};
  int phase_counts[3] = {0, 0, 0};
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int t) -> Task<void> {
    for (int phase = 0; phase < 3; ++phase) {
      co_await ctx.work(static_cast<Cycle>(50 * (t + 1)));  // skewed arrival
      ++phase_counts[phase];
      co_await barrier.wait(ctx);
      // After the barrier, everyone must have finished this phase.
      EXPECT_EQ(phase_counts[phase], kThreads) << "phase " << phase << " thread " << t;
    }
  });
}

TEST(SenseBarrier, ReusableManyTimes) {
  constexpr int kThreads = 4;
  Machine m{small_config(kThreads, false)};
  SenseBarrier barrier{m, kThreads};
  int rounds_done = 0;
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
    for (int r = 0; r < 20; ++r) {
      co_await barrier.wait(ctx);
      if (ctx.core() == 0) ++rounds_done;
      co_await barrier.wait(ctx);
    }
  });
  EXPECT_EQ(rounds_done, 20);
}

// ---------------------------------------------------------------------------
// BFS
// ---------------------------------------------------------------------------

class BfsLease : public ::testing::TestWithParam<bool> {};

TEST_P(BfsLease, DistancesMatchOracle) {
  const bool lease = GetParam();
  constexpr int kThreads = 8;
  Machine m{small_config(kThreads, lease)};
  Bfs bfs{m, kThreads, {.num_vertices = 300, .avg_degree = 3, .use_lease = lease}};
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int) { return bfs.run_worker(ctx); });
  const auto oracle = bfs.oracle_distances();
  for (std::size_t v = 0; v < bfs.num_vertices(); ++v) {
    EXPECT_EQ(bfs.distance(v), oracle[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Leases, BfsLease, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "leased" : "base";
                         });

TEST(Bfs, SingleThreadAlsoCorrect) {
  Machine m{small_config(1, false)};
  Bfs bfs{m, 1, {.num_vertices = 150, .avg_degree = 3}};
  testing::run_workers(m, 1, [&](Ctx& ctx, int) { return bfs.run_worker(ctx); });
  const auto oracle = bfs.oracle_distances();
  for (std::size_t v = 0; v < bfs.num_vertices(); ++v) {
    EXPECT_EQ(bfs.distance(v), oracle[v]);
  }
}

}  // namespace
}  // namespace lrsim
