// Copyright (c) 2026 lrsim authors. MIT license.
//
// Configuration-matrix sweep: every combination of {protocol} x {topology}
// x {lease handling} x {priority} must preserve correctness on a contended
// read-modify-write workload and on the leased Treiber stack. This is the
// broad net that keeps the feature flags composable.
#include <gtest/gtest.h>

#include <set>

#include "ds/treiber_stack.hpp"
#include "sim_test_util.hpp"

namespace lrsim {
namespace {

struct MatrixCase {
  bool mesi;
  bool mesh;
  bool nack;
  bool priority;
  bool predictor;

  std::string name() const {
    std::string s;
    s += mesi ? "mesi" : "msi";
    s += mesh ? "_mesh" : "_flat";
    s += nack ? "_nack" : "_park";
    if (priority) s += "_prio";
    if (predictor) s += "_pred";
    return s;
  }
};

std::vector<MatrixCase> all_cases() {
  std::vector<MatrixCase> out;
  for (bool mesi : {false, true}) {
    for (bool mesh : {false, true}) {
      for (bool nack : {false, true}) {
        out.push_back({mesi, mesh, nack, false, false});
      }
    }
  }
  // Priority and predictor composed with the defaults and with MESI+mesh.
  out.push_back({false, false, false, true, false});
  out.push_back({false, false, false, false, true});
  out.push_back({true, true, false, true, true});
  out.push_back({true, true, true, true, false});
  return out;
}

MachineConfig make_config(const MatrixCase& c, int cores) {
  MachineConfig cfg = testing::small_config(cores, true);
  if (c.mesi) cfg.protocol = CoherenceProtocol::kMESI;
  cfg.mesh_topology = c.mesh;
  cfg.nack_on_lease = c.nack;
  cfg.lease_priority_mode = c.priority;
  cfg.lease_predictor = c.predictor;
  cfg.max_lease_time = 2000;
  return cfg;
}

class ConfigMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ConfigMatrix, LeasedRmwConservation) {
  constexpr int kThreads = 9;
  Machine m{make_config(GetParam(), kThreads)};
  Addr a = m.heap().alloc_line();
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 20; ++i) {
      // CAS loop (safe under every mode, including priority breaks that can
      // strip the lease mid-window).
      while (true) {
        co_await ctx.lease(a, 1500);
        const std::uint64_t v = co_await ctx.load(a);
        const bool ok = co_await ctx.cas(a, v, v + 1);
        co_await ctx.release(a);
        if (ok) break;
      }
      co_await ctx.work(ctx.rng().next_below(60));
    }
  });
  EXPECT_EQ(m.memory().read(a), static_cast<std::uint64_t>(kThreads) * 20)
      << GetParam().name();
}

TEST_P(ConfigMatrix, LeasedStackConservation) {
  constexpr int kThreads = 8;
  Machine m{make_config(GetParam(), kThreads)};
  TreiberStack s{m, {.use_lease = true}};
  long pushes = 0, pops = 0;
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < 30; ++i) {
      if (ctx.rng().next_bool(0.6)) {
        co_await s.push(ctx, 1 + ctx.rng().next_below(100));
        ++pushes;
      } else {
        std::optional<std::uint64_t> v = co_await s.pop(ctx);
        if (v.has_value()) ++pops;
      }
    }
  });
  EXPECT_EQ(s.snapshot().size(), static_cast<std::size_t>(pushes - pops)) << GetParam().name();
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, ConfigMatrix, ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<MatrixCase>& info) {
                           return info.param.name();
                         });

// --- >64-core machines across the sharer_granularity axis -----------------
// The hybrid sharer sets (coherence/sharer_set.hpp) add a representation
// axis: group size of the coarse vector and capacity of the exact spill
// table. Every point must preserve conservation on a contended leased RMW
// with interleaved sharers, with the invariant checker armed (it enforces
// the membership-superset rule for coarse covers).

struct WideCase {
  int cores;
  int granularity;  ///< 0 = auto
  int spill;

  std::string name() const {
    return "c" + std::to_string(cores) + "_g" + std::to_string(granularity) + "_s" +
           std::to_string(spill);
  }
};

class WideSharerMatrix : public ::testing::TestWithParam<WideCase> {};

TEST_P(WideSharerMatrix, LeasedRmwWithReadersConserves) {
  const WideCase& c = GetParam();
  MachineConfig cfg = testing::small_config(c.cores, true);
  cfg.sharer_granularity = c.granularity;
  cfg.sharer_spill_lines = c.spill;
  cfg.max_lease_time = 2000;
  Machine m{cfg};
  InvariantChecker& inv = m.enable_invariants();
  Addr a = m.heap().alloc_line();
  constexpr int kThreads = 12;  // spans several coarse groups at every granularity
  constexpr int kIncrements = 5;
  testing::run_workers(m, kThreads, [&](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < kIncrements; ++i) {
      // Read phase: pile S copies onto the line (overflows the inline
      // pointers once > 4 cores share it, exercising spill/coarse).
      (void)co_await ctx.load(a);
      co_await ctx.work(ctx.rng().next_below(40));
      (void)co_await ctx.load(a);
      // RMW phase: a GetX that must invalidate every live sharer.
      while (true) {
        co_await ctx.lease(a, 1500);
        const std::uint64_t v = co_await ctx.load(a);
        const bool ok = co_await ctx.cas(a, v, v + 1);
        co_await ctx.release(a);
        if (ok) break;
      }
    }
  });
  EXPECT_EQ(m.memory().read(a), static_cast<std::uint64_t>(kThreads) * kIncrements)
      << GetParam().name();
  EXPECT_GT(inv.checks_run(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    WideConfigs, WideSharerMatrix,
    ::testing::ValuesIn(std::vector<WideCase>{
        {65, 0, 64},   // just past the mask boundary, roomy spill (exact)
        {128, 0, 0},   // auto pairs, no spill: overflow goes coarse
        {128, 8, 4},   // chunky groups with a tiny spill table
        {256, 0, 0},   // full-cap machine, pure pointers->coarse
        {256, 16, 2},  // full-cap machine, 16-core groups
    }),
    [](const ::testing::TestParamInfo<WideCase>& info) { return info.param.name(); });

}  // namespace
}  // namespace lrsim
