// Copyright (c) 2026 lrsim authors. MIT license.
//
// The parallel event kernel (sim/par_kernel.hpp, Machine::set_sim_threads)
// is a host-speed optimization only: a cycle batch whose events are all
// core-domain-tagged fires on worker threads, and the per-worker lanes are
// merged back in a deterministic order (docs/ENGINE.md "Parallel kernel").
// These tests pin the bit-identity claim: for any seed, core count, mesh
// on/off and shard count, --sim-threads {0,2,4} must produce the same
// final cycle count and the same machine-wide and per-core Stats — and the
// parallel kernel must actually engage (not silently fall back to serial).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim_test_util.hpp"

namespace lrsim {
namespace {

using testing::small_config;

struct RunOutcome {
  Cycle cycles = 0;
  Stats total;
  std::vector<Stats> per_core;
  std::uint64_t parallel_events = 0;  ///< 0 under the serial kernel.
};

/// Fig. 3 contended-counter shape: every thread hammers one shared word
/// with FAA / lease+RMW / CAS while keeping a private line hot, so batches
/// mix L1-hit tails, lease timers, release paths and NACK retries.
/// Allocating workloads are covered by parallel_alloc_test.cpp.
RunOutcome run_once(int sim_threads, int cores, bool mesh, std::uint64_t machine_seed) {
  MachineConfig cfg = small_config(cores, /*leases=*/true);
  cfg.max_lease_time = 3000;
  cfg.mesh_topology = mesh;
  Machine m{cfg, machine_seed};
  m.set_sim_threads(sim_threads);
  const Addr shared = m.heap().alloc_line();
  std::vector<Addr> priv;
  for (int t = 0; t < cores; ++t) priv.push_back(m.heap().alloc_line());
  RunOutcome out;
  out.cycles = testing::run_workers(m, cores, [&](Ctx& ctx, int t) -> Task<void> {
    for (int i = 0; i < 40; ++i) {
      // Private burst: core-local hit traffic that shards cleanly.
      for (int k = 0; k < 4; ++k) {
        (void)co_await ctx.load(priv[static_cast<std::size_t>(t)]);
        co_await ctx.store(priv[static_cast<std::size_t>(t)], static_cast<std::uint64_t>(i + k));
      }
      // Contended phase: the paper's Figure 3 counter mix.
      const bool leased = ctx.rng().next_bool(0.4);
      if (leased) co_await ctx.lease(shared, 200 + ctx.rng().next_below(1000));
      switch (ctx.rng().next_below(3)) {
        case 0: (void)co_await ctx.faa(shared, 1); break;
        case 1: co_await ctx.store(shared, ctx.rng().next_below(1000)); break;
        default: (void)co_await ctx.cas_val(shared, ctx.rng().next_below(8),
                                            ctx.rng().next_below(1000)); break;
      }
      if (leased) co_await ctx.release(shared);
      if (ctx.rng().next_bool(0.3)) co_await ctx.work(ctx.rng().next_below(30));
    }
  });
  out.total = m.total_stats();
  for (CoreId c = 0; c < cores; ++c) out.per_core.push_back(m.core_stats(c));
  if (const ParKernelStats* ps = m.par_stats()) out.parallel_events = ps->parallel_events;
  return out;
}

void expect_identical(const RunOutcome& serial, const RunOutcome& parallel) {
  EXPECT_EQ(serial.cycles, parallel.cycles);
  EXPECT_EQ(serial.total, parallel.total);
  ASSERT_EQ(serial.per_core.size(), parallel.per_core.size());
  for (std::size_t c = 0; c < serial.per_core.size(); ++c) {
    EXPECT_EQ(serial.per_core[c], parallel.per_core[c]) << "core " << c << " stats diverged";
  }
}

TEST(ParallelDeterminism, SerialVsTwoShardsIdentical) {
  const RunOutcome serial = run_once(0, 8, /*mesh=*/false, 1234);
  const RunOutcome par = run_once(2, 8, /*mesh=*/false, 1234);
  expect_identical(serial, par);
  EXPECT_EQ(serial.parallel_events, 0u);
  EXPECT_GT(par.parallel_events, 0u) << "parallel kernel silently fell back to serial";
}

TEST(ParallelDeterminism, FuzzAcrossSeedsMeshAndShardCounts) {
  // ISSUE acceptance: fuzz >= 8 seeds x mesh on/off x sim_threads {2,4},
  // every combination byte-identical to the serial run of the same seed.
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 99ull, 271ull, 987ull, 4242ull, 31337ull}) {
    for (bool mesh : {false, true}) {
      const RunOutcome serial = run_once(0, 8, mesh, seed);
      for (int st : {2, 4}) {
        SCOPED_TRACE(::testing::Message()
                     << "seed=" << seed << " mesh=" << mesh << " sim_threads=" << st);
        const RunOutcome par = run_once(st, 8, mesh, seed);
        expect_identical(serial, par);
        EXPECT_GT(par.parallel_events, 0u);
      }
    }
  }
}

TEST(ParallelDeterminism, WideMachine128CoresIdentical) {
  // Past the old 64-core cap the directory runs the hybrid sharer sets
  // (coherence/sharer_set.hpp) and the shard map must tag core domains
  // correctly beyond 64; serial and 4-shard runs must stay bit-identical.
  const RunOutcome serial = run_once(0, 128, /*mesh=*/false, 4242);
  const RunOutcome par = run_once(4, 128, /*mesh=*/false, 4242);
  expect_identical(serial, par);
  EXPECT_EQ(serial.parallel_events, 0u);
  EXPECT_GT(par.parallel_events, 0u) << "parallel kernel silently fell back to serial";
}

TEST(ParallelDeterminism, ParallelWindowsActuallyForm) {
  // Guard against the eligibility predicate rotting into always-serial: a
  // contended 16-core run at 4 shards must fire a meaningful fraction of
  // its events inside parallel windows, not just a handful.
  const RunOutcome par = run_once(4, 16, /*mesh=*/false, 5);
  EXPECT_GT(par.parallel_events, 300u);
}

TEST(ParallelFallback, PerturbationForcesSerial) {
  MachineConfig cfg = small_config(8, /*leases=*/true);
  Machine m{cfg, 1};
  m.set_sim_threads(2);
  m.enable_perturbation(7);
  EXPECT_FALSE(m.par_eligible());
}

TEST(ParallelFallback, TracingForcesSerial) {
  MachineConfig cfg = small_config(8, /*leases=*/true);
  Machine m{cfg, 1};
  m.set_sim_threads(2);
  EXPECT_TRUE(m.par_eligible());
  m.enable_tracing(1 << 10);
  EXPECT_FALSE(m.par_eligible());
}

TEST(ParallelFallback, TooFewCoresPerShardForcesSerial) {
  MachineConfig cfg = small_config(4, /*leases=*/true);
  Machine m{cfg, 1};
  m.set_sim_threads(4);  // 4 cores / 4 shards < 2 cores per shard.
  EXPECT_FALSE(m.par_eligible());
  m.set_sim_threads(2);
  EXPECT_TRUE(m.par_eligible());
}

TEST(ParallelFallback, SerialRequestNeverBuildsKernel) {
  MachineConfig cfg = small_config(8, /*leases=*/true);
  Machine m{cfg, 1};
  const Addr a = m.heap().alloc_line();
  m.spawn(0, [&](Ctx& ctx) -> Task<void> { (void)co_await ctx.faa(a, 1); });
  m.run();
  EXPECT_EQ(m.par_stats(), nullptr);
}

TEST(ParallelFallback, NegativeSimThreadsThrows) {
  MachineConfig cfg = small_config(4, /*leases=*/false);
  Machine m{cfg, 1};
  EXPECT_THROW(m.set_sim_threads(-1), std::invalid_argument);
}

}  // namespace
}  // namespace lrsim
