// Copyright (c) 2026 lrsim authors. MIT license.
//
// Golden-file pin of the workload-sweep CSV schema (bench/sweep.hpp).
// The header is consumed by scripts/bench_check.py --sweep, the CI
// workload-sweep job, and any committed plotting baselines: columns may be
// *appended*, but renaming or reordering breaks every consumer — changing
// tests/golden/sweep_csv_header.golden is the deliberate act that
// acknowledges that. Also validates a real in-process sweep row by row,
// including the sim_build_type context column.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/sweep.hpp"

#ifndef LRSIM_SOURCE_DIR
#define LRSIM_SOURCE_DIR "."
#endif

namespace lrsim::bench {
namespace {

std::string read_file(const std::filesystem::path& p) {
  std::ifstream f(p, std::ios::binary);
  EXPECT_TRUE(f) << "cannot open " << p;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream in{line};
  while (std::getline(in, field, ',')) out.push_back(field);
  return out;
}

std::string joined_header() {
  std::string h;
  for (const std::string& c : sweep_csv_header()) h += (h.empty() ? "" : ",") + c;
  return h;
}

TEST(SweepCsvGolden, HeaderMatchesGoldenFile) {
  const std::string golden =
      read_file(std::filesystem::path(LRSIM_SOURCE_DIR) / "tests/golden/sweep_csv_header.golden");
  EXPECT_EQ(golden, joined_header() + "\n")
      << "sweep CSV schema changed; if the change is append-only and every "
         "consumer (scripts/bench_check.py SWEEP_HEADER, docs/WORKLOADS.md) "
         "is updated, refresh tests/golden/sweep_csv_header.golden";
}

TEST(SweepCsvGolden, PythonGateAgreesOnTheSchema) {
  // bench_check.py --sweep validates against its own SWEEP_HEADER copy;
  // keep the two spellings of the schema from drifting apart.
  const std::string py =
      read_file(std::filesystem::path(LRSIM_SOURCE_DIR) / "scripts/bench_check.py");
  for (const std::string& col : sweep_csv_header()) {
    EXPECT_NE(py.find("\"" + col + "\""), std::string::npos)
        << "column `" << col << "` missing from bench_check.py SWEEP_HEADER";
  }
}

TEST(SweepCsvGolden, CiSweepConfigExpandsToTheFullMatrix) {
  const auto cfg = workload::ConfigFile::parse_file(
      (std::filesystem::path(LRSIM_SOURCE_DIR) / "configs/ci_sweep.toml").string());
  const SweepConfig sc = parse_sweep_config(cfg);
  const std::vector<SweepPoint> points = expand_sweep(sc);
  // 2 policies x 2 thread counts x 2 mixes — the documented CI matrix.
  EXPECT_GE(points.size(), 8u);
  EXPECT_EQ(points.size(), sc.policies.size() * sc.threads.size() * sc.keys.size() *
                               sc.mixes.size() * sc.clients.size() * sc.lease_policies.size() *
                               sc.lease_times.size());
}

TEST(SweepCsvGolden, InProcessSweepEmitsSchemaStableRows) {
  const auto cfg = workload::ConfigFile::parse_string(R"(
[workload]
ds = treiber_stack
policies = base, lease
ops = 10
[sweep]
threads = 2, 4
)",
                                                      "<test>");
  const SweepConfig sc = parse_sweep_config(cfg);
  const std::vector<SweepRow> rows = run_sweep(sc);
  ASSERT_EQ(rows.size(), 4u);

  std::ostringstream os;
  sweep_csv_table(rows).write_csv(os);
  std::istringstream in{os.str()};
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, joined_header());

  const std::size_t ncols = sweep_csv_header().size();
  std::size_t data_rows = 0;
  while (std::getline(in, line)) {
    const std::vector<std::string> f = split_csv_line(line);
    ASSERT_EQ(f.size(), ncols) << line;
    EXPECT_EQ(f[0], "treiber_stack");
    EXPECT_TRUE(f[1] == "base" || f[1] == "lease") << f[1];
    EXPECT_GT(std::stoi(f[2]), 0);                   // threads
    EXPECT_EQ(f[2], f[3]);                           // closed loop: clients == threads
    EXPECT_EQ(f[8], "closed");
    EXPECT_EQ(f[9], "-");                            // no arrival param
    EXPECT_GT(std::stoull(f[11]), 0u);               // ops completed
    EXPECT_GT(std::stod(f[13]), 0.0);                // mops_per_sec
#ifdef NDEBUG
    EXPECT_EQ(f[21], "release");                     // sim_build_type
#else
    EXPECT_EQ(f[21], "debug");
#endif
    EXPECT_EQ(f[22], "static");                      // lease_policy default
    EXPECT_EQ(f[23], "0");                           // lease_time default
    ++data_rows;
  }
  EXPECT_EQ(data_rows, 4u);
}

TEST(SweepCsvGolden, SweepParserRejectsTypos) {
  const auto bad_key = workload::ConfigFile::parse_string(R"(
[workload]
ds = counter
[sweep]
thredas = 2
)");
  EXPECT_THROW(parse_sweep_config(bad_key), std::invalid_argument);
  const auto bad_policy = workload::ConfigFile::parse_string(R"(
[workload]
ds = counter
policies = tts, no-such-lock
)");
  EXPECT_THROW(parse_sweep_config(bad_policy), std::invalid_argument);
  const auto bad_thread = workload::ConfigFile::parse_string(R"(
[workload]
ds = counter
[sweep]
threads = 2, zero
)");
  EXPECT_THROW(parse_sweep_config(bad_thread), std::invalid_argument);
}

}  // namespace
}  // namespace lrsim::bench
