// Copyright (c) 2026 lrsim authors. MIT license.

#include "ds/two_lock_queue.hpp"

namespace lrsim {

TwoLockQueue::TwoLockQueue(Machine& m, TwoLockQueueOptions opt)
    : m_(m),
      head_lock_(m, LockOptions{.use_lease = opt.use_lease}),
      tail_lock_(m, LockOptions{.use_lease = opt.use_lease}),
      head_(m.heap().alloc_line()),
      tail_(m.heap().alloc_line()) {
  const Addr dummy = m.heap().alloc_line(16);
  m.memory().write(dummy + kValueOff, 0);
  m.memory().write(dummy + kNextOff, 0);
  m.memory().write(head_, dummy);
  m.memory().write(tail_, dummy);
}

Task<void> TwoLockQueue::enqueue(Ctx& ctx, std::uint64_t v) {
  const Addr node = ctx.alloc_line(16);
  co_await ctx.store(node + kValueOff, v);
  co_await ctx.store(node + kNextOff, 0);

  co_await tail_lock_.lock(ctx);
  const Addr t = co_await ctx.load(tail_);
  co_await ctx.store(t + kNextOff, node);
  co_await ctx.store(tail_, node);
  co_await tail_lock_.unlock(ctx);
  ctx.count_op();
}

Task<std::optional<std::uint64_t>> TwoLockQueue::dequeue(Ctx& ctx) {
  co_await head_lock_.lock(ctx);
  const Addr dummy = co_await ctx.load(head_);
  const Addr first = co_await ctx.load(dummy + kNextOff);
  if (first == 0) {
    co_await head_lock_.unlock(ctx);
    ctx.count_op();
    co_return std::nullopt;
  }
  const std::uint64_t v = co_await ctx.load(first + kValueOff);
  // The first real node becomes the new dummy (its value is dead).
  co_await ctx.store(head_, first);
  co_await head_lock_.unlock(ctx);
  ctx.count_op();
  co_return v;
}

std::vector<std::uint64_t> TwoLockQueue::snapshot() const {
  std::vector<std::uint64_t> out;
  const Addr dummy = m_.memory().read(head_);
  for (Addr p = m_.memory().read(dummy + kNextOff); p != 0; p = m_.memory().read(p + kNextOff)) {
    out.push_back(m_.memory().read(p + kValueOff));
  }
  return out;
}

}  // namespace lrsim
