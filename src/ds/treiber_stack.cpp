// Copyright (c) 2026 lrsim authors. MIT license.

#include "ds/treiber_stack.hpp"

namespace lrsim {

namespace {
constexpr Addr kValueOff = 0;
constexpr Addr kNextOff = 8;
}  // namespace

TreiberStack::TreiberStack(Machine& m, TreiberOptions opt) : m_(m), head_(m.heap().alloc_line()), opt_(opt) {
  m.memory().write(head_, 0);
}

Task<void> TreiberStack::push(Ctx& ctx, std::uint64_t v) {
  // Figure 1, StackPush. The new node is cold (private line): initializing
  // it costs one uncached GetX, like a real allocation.
  const Addr node = ctx.alloc_line(16);
  co_await ctx.store(node + kValueOff, v);
  Backoff backoff{opt_.backoff_min, opt_.backoff_max};
  while (true) {
    if (opt_.use_lease) co_await ctx.lease(head_, opt_.lease_time);
    const Addr h = co_await ctx.load(head_);
    co_await ctx.store(node + kNextOff, h);
    const bool ok = co_await ctx.cas(head_, h, node);
    if (opt_.use_lease) co_await ctx.release(head_);
    if (ok) {
      ctx.count_op();
      co_return;
    }
    if (opt_.use_backoff) co_await backoff.pause(ctx);
  }
}

Task<std::optional<std::uint64_t>> TreiberStack::pop(Ctx& ctx) {
  Backoff backoff{opt_.backoff_min, opt_.backoff_max};
  while (true) {
    if (opt_.use_lease) co_await ctx.lease(head_, opt_.lease_time);
    const Addr h = co_await ctx.load(head_);
    if (h == 0) {
      if (opt_.use_lease) co_await ctx.release(head_);
      ctx.count_op();
      co_return std::nullopt;
    }
    // Reading the node's fields touches a different line; the lease on the
    // head line is still held, which is exactly the paper's point: the
    // read-CAS window on the *head* is protected while we chase the pointer.
    const Addr n = co_await ctx.load(h + kNextOff);
    const std::uint64_t v = co_await ctx.load(h + kValueOff);
    const bool ok = co_await ctx.cas(head_, h, n);
    if (opt_.use_lease) co_await ctx.release(head_);
    if (ok) {
      ctx.count_op();
      co_return v;
    }
    if (opt_.use_backoff) co_await backoff.pause(ctx);
  }
}

std::vector<std::uint64_t> TreiberStack::snapshot() const {
  std::vector<std::uint64_t> out;
  for (Addr p = m_.memory().read(head_); p != 0; p = m_.memory().read(p + kNextOff)) {
    out.push_back(m_.memory().read(p + kValueOff));
  }
  return out;
}

}  // namespace lrsim
