// Copyright (c) 2026 lrsim authors. MIT license.
//
// Treiber's lock-free stack [Treiber 1986] over the simulated ISA, with the
// paper's lease placement (Figure 1): lease the head-pointer line before the
// read, release after the CAS, so the read-CAS window cannot be interrupted
// by competing ownership requests and the CAS validation "is always
// successful, unless the lease on the corresponding line expires".
//
// An optional randomized-exponential-backoff variant provides the software
// baseline of Section 7 ("Comparison with Backoffs").
#pragma once

#include <optional>

#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "sync/backoff.hpp"
#include "util/types.hpp"

namespace lrsim {

struct TreiberOptions {
  bool use_lease = false;
  Cycle lease_time = 0;     ///< 0 => policy-chosen (static: MAX_LEASE_TIME).
  bool use_backoff = false; ///< Randomized exponential backoff after CAS failure.
  Cycle backoff_min = 32;
  Cycle backoff_max = 8192;
};

/// Node layout (simulated memory, one cache line per node):
///   word 0: value
///   word 1: next (simulated address; 0 == null)
///
/// Nodes are never recycled: the classic Treiber stack is ABA-prone under
/// address reuse, and the paper's benchmarks (like ours) sidestep memory
/// reclamation entirely.
class TreiberStack {
 public:
  TreiberStack(Machine& m, TreiberOptions opt = {});

  /// Pushes `v`. Counts one op on completion.
  Task<void> push(Ctx& ctx, std::uint64_t v);

  /// Pops the top value, or nullopt if the stack is empty.
  Task<std::optional<std::uint64_t>> pop(Ctx& ctx);

  Addr head_addr() const noexcept { return head_; }

  /// Functional (zero-cost) walk for test oracles; only meaningful while the
  /// simulation is quiescent.
  std::vector<std::uint64_t> snapshot() const;

 private:
  Machine& m_;
  Addr head_;
  TreiberOptions opt_;
};

}  // namespace lrsim
