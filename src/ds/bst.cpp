// Copyright (c) 2026 lrsim authors. MIT license.

#include "ds/bst.hpp"

namespace lrsim {

ExternalBst::ExternalBst(Machine& m, BstOptions opt) : m_(m), opt_(opt) {
  // Sentinel construction (Ellen et al.): root is internal with key inf2;
  // its children are leaves inf1 (left) and inf2 (right). All real keys
  // route into the left subtree.
  const Addr l1 = alloc_leaf(kInf1);
  const Addr l2 = alloc_leaf(kInf2);
  root_ = alloc_internal(kInf2, l1, l2);
}

Addr ExternalBst::alloc_leaf(std::uint64_t key, Ctx* ctx) {
  const Addr n = ctx != nullptr ? ctx->alloc_line(48) : m_.heap().alloc_line(48);
  m_.memory().write(n + kKeyOff, key);
  m_.memory().write(n + kIsLeafOff, 1);
  m_.memory().write(n + kLeftOff, 0);
  m_.memory().write(n + kRightOff, 0);
  m_.memory().write(n + kLockOff, 0);
  m_.memory().write(n + kRemovedOff, 0);
  return n;
}

Addr ExternalBst::alloc_internal(std::uint64_t key, Addr left, Addr right, Ctx* ctx) {
  const Addr n = ctx != nullptr ? ctx->alloc_line(48) : m_.heap().alloc_line(48);
  m_.memory().write(n + kKeyOff, key);
  m_.memory().write(n + kIsLeafOff, 0);
  m_.memory().write(n + kLeftOff, left);
  m_.memory().write(n + kRightOff, right);
  m_.memory().write(n + kLockOff, 0);
  m_.memory().write(n + kRemovedOff, 0);
  return n;
}

Task<void> ExternalBst::node_lock(Ctx& ctx, Addr node) {
  if (opt_.use_lease) co_await ctx.lease(node + kLockOff, opt_.lease_time);
  while (true) {
    const std::uint64_t old = co_await ctx.xchg(node + kLockOff, 1);
    if (old == 0) co_return;
    if (opt_.use_lease) co_await ctx.release(node + kLockOff);
    while (co_await ctx.load(node + kLockOff) != 0) {
    }
    if (opt_.use_lease) co_await ctx.lease(node + kLockOff, opt_.lease_time);
  }
}

Task<void> ExternalBst::node_unlock(Ctx& ctx, Addr node) {
  co_await ctx.store(node + kLockOff, 0);
  if (opt_.use_lease) co_await ctx.release(node + kLockOff);
}

Task<ExternalBst::SearchResult> ExternalBst::search(Ctx& ctx, std::uint64_t key) {
  SearchResult r{0, root_, 0};
  Addr curr = co_await ctx.load(root_ + kLeftOff);
  while (true) {
    const std::uint64_t is_leaf = co_await ctx.load(curr + kIsLeafOff);
    if (is_leaf) {
      r.leaf = curr;
      co_return r;
    }
    r.gparent = r.parent;
    r.parent = curr;
    const std::uint64_t ck = co_await ctx.load(curr + kKeyOff);
    curr = co_await ctx.load(curr + (key < ck ? kLeftOff : kRightOff));
  }
}

Task<bool> ExternalBst::insert(Ctx& ctx, std::uint64_t key) {
  while (true) {
    SearchResult r = co_await search(ctx, key);
    const std::uint64_t leaf_key = co_await ctx.load(r.leaf + kKeyOff);
    if (leaf_key == key) {
      ctx.count_op();
      co_return false;
    }
    co_await node_lock(ctx, r.parent);
    // Validate: parent not removed and still points at the leaf.
    const std::uint64_t removed = co_await ctx.load(r.parent + kRemovedOff);
    const std::uint64_t pk = co_await ctx.load(r.parent + kKeyOff);
    const Addr side = r.parent + (key < pk ? kLeftOff : kRightOff);
    const Addr child = co_await ctx.load(side);
    if (removed != 0 || child != r.leaf) {
      co_await node_unlock(ctx, r.parent);
      continue;
    }
    const Addr new_leaf = alloc_leaf(key, &ctx);
    const std::uint64_t max_key = std::max(key, leaf_key);
    const Addr new_internal =
        key < leaf_key ? alloc_internal(max_key, new_leaf, r.leaf, &ctx)
                       : alloc_internal(max_key, r.leaf, new_leaf, &ctx);
    // Touch the new nodes through the ISA so their lines are owned (and the
    // allocation cost is modeled) before publication.
    co_await ctx.store(new_internal + kKeyOff, max_key);
    co_await ctx.store(side, new_internal);
    co_await node_unlock(ctx, r.parent);
    ctx.count_op();
    co_return true;
  }
}

Task<bool> ExternalBst::remove(Ctx& ctx, std::uint64_t key) {
  while (true) {
    SearchResult r = co_await search(ctx, key);
    const std::uint64_t leaf_key = co_await ctx.load(r.leaf + kKeyOff);
    if (leaf_key != key) {
      ctx.count_op();
      co_return false;
    }
    // Lock grandparent then parent (top-down, same order everywhere).
    co_await node_lock(ctx, r.gparent);
    co_await node_lock(ctx, r.parent);
    const std::uint64_t g_removed = co_await ctx.load(r.gparent + kRemovedOff);
    const std::uint64_t p_removed = co_await ctx.load(r.parent + kRemovedOff);
    const std::uint64_t gk = co_await ctx.load(r.gparent + kKeyOff);
    const Addr g_side = r.gparent + (key < gk ? kLeftOff : kRightOff);
    const Addr g_child = co_await ctx.load(g_side);
    const std::uint64_t pk = co_await ctx.load(r.parent + kKeyOff);
    const Addr p_side = r.parent + (key < pk ? kLeftOff : kRightOff);
    const Addr p_other = r.parent + (key < pk ? kRightOff : kLeftOff);
    const Addr p_child = co_await ctx.load(p_side);
    if (g_removed != 0 || p_removed != 0 || g_child != r.parent || p_child != r.leaf) {
      co_await node_unlock(ctx, r.parent);
      co_await node_unlock(ctx, r.gparent);
      continue;
    }
    const Addr sibling = co_await ctx.load(p_other);
    co_await ctx.store(r.parent + kRemovedOff, 1);
    co_await ctx.store(r.leaf + kRemovedOff, 1);
    co_await ctx.store(g_side, sibling);
    co_await node_unlock(ctx, r.parent);
    co_await node_unlock(ctx, r.gparent);
    ctx.count_op();
    co_return true;
  }
}

Task<bool> ExternalBst::contains(Ctx& ctx, std::uint64_t key) {
  SearchResult r = co_await search(ctx, key);
  const std::uint64_t leaf_key = co_await ctx.load(r.leaf + kKeyOff);
  ctx.count_op();
  co_return leaf_key == key;
}

void ExternalBst::snapshot_rec(Addr node, std::vector<std::uint64_t>& out) const {
  if (node == 0) return;
  if (m_.memory().read(node + kIsLeafOff) != 0) {
    const std::uint64_t k = m_.memory().read(node + kKeyOff);
    if (k < kInf1) out.push_back(k);
    return;
  }
  snapshot_rec(m_.memory().read(node + kLeftOff), out);
  snapshot_rec(m_.memory().read(node + kRightOff), out);
}

std::vector<std::uint64_t> ExternalBst::snapshot() const {
  std::vector<std::uint64_t> out;
  snapshot_rec(root_, out);
  return out;
}

}  // namespace lrsim
