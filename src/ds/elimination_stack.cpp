// Copyright (c) 2026 lrsim authors. MIT license.

#include "ds/elimination_stack.hpp"

namespace lrsim {

namespace {
constexpr std::uint64_t kEmpty = 0;
constexpr std::uint64_t kTaken = 2;
constexpr std::uint64_t pusher_word(std::uint64_t v) { return (v << 2) | 1; }
constexpr bool is_pusher(std::uint64_t w) { return (w & 3) == 1; }
constexpr std::uint64_t pusher_value(std::uint64_t w) { return w >> 2; }
}  // namespace

EliminationStack::EliminationStack(Machine& m, EliminationOptions opt)
    : m_(m), opt_(opt), head_(m.heap().alloc_line()) {
  m.memory().write(head_, 0);
  for (std::size_t i = 0; i < opt_.slots; ++i) {
    slots_.push_back(m.heap().alloc_line());
    m.memory().write(slots_.back(), kEmpty);
  }
}

Task<bool> EliminationStack::try_push_cas(Ctx& ctx, Addr node) {
  const Addr h = co_await ctx.load(head_);
  co_await ctx.store(node + kNextOff, h);
  co_return co_await ctx.cas(head_, h, node);
}

Task<std::optional<std::uint64_t>> EliminationStack::try_pop_cas(Ctx& ctx, bool* empty) {
  *empty = false;
  const Addr h = co_await ctx.load(head_);
  if (h == 0) {
    *empty = true;
    co_return std::nullopt;
  }
  const Addr n = co_await ctx.load(h + kNextOff);
  const std::uint64_t v = co_await ctx.load(h + kValueOff);
  const bool ok = co_await ctx.cas(head_, h, n);
  if (ok) co_return v;
  co_return std::nullopt;
}

Task<bool> EliminationStack::eliminate_push(Ctx& ctx, std::uint64_t v) {
  const Addr slot = slots_[ctx.rng().next_below(slots_.size())];
  const bool claimed = co_await ctx.cas(slot, kEmpty, pusher_word(v));
  if (!claimed) co_return false;  // slot busy: go back to the stack
  co_await ctx.work(opt_.wait);   // park, waiting for a popper
  // Try to withdraw the offer; failure means a popper took it.
  const bool withdrawn = co_await ctx.cas(slot, pusher_word(v), kEmpty);
  if (withdrawn) co_return false;
  // The popper left the taken marker: clear it and report success.
  co_await ctx.store(slot, kEmpty);
  ++eliminations_;
  co_return true;
}

Task<std::optional<std::uint64_t>> EliminationStack::eliminate_pop(Ctx& ctx) {
  const Addr slot = slots_[ctx.rng().next_below(slots_.size())];
  for (int i = 0; i < opt_.spin_checks; ++i) {
    const std::uint64_t w = co_await ctx.load(slot);
    if (is_pusher(w)) {
      const bool took = co_await ctx.cas(slot, w, kTaken);
      if (took) {
        ++eliminations_;
        co_return pusher_value(w);
      }
    }
    co_await ctx.work(opt_.wait / static_cast<Cycle>(opt_.spin_checks));
  }
  co_return std::nullopt;
}

Task<void> EliminationStack::push(Ctx& ctx, std::uint64_t v) {
  const Addr node = ctx.alloc_line(16);
  co_await ctx.store(node + kValueOff, v);
  while (true) {
    const bool ok = co_await try_push_cas(ctx, node);
    if (ok) {
      ctx.count_op();
      co_return;
    }
    // Contention: try to hand the value to a concurrent popper instead.
    const bool eliminated = co_await eliminate_push(ctx, v);
    if (eliminated) {
      ctx.count_op();
      co_return;
    }
  }
}

Task<std::optional<std::uint64_t>> EliminationStack::pop(Ctx& ctx) {
  while (true) {
    bool empty = false;
    std::optional<std::uint64_t> v = co_await try_pop_cas(ctx, &empty);
    if (v.has_value()) {
      ctx.count_op();
      co_return v;
    }
    if (empty) {
      // Give elimination one chance before reporting empty (a waiting
      // pusher's value is logically in the stack).
      std::optional<std::uint64_t> ev = co_await eliminate_pop(ctx);
      ctx.count_op();
      co_return ev;
    }
    std::optional<std::uint64_t> ev = co_await eliminate_pop(ctx);
    if (ev.has_value()) {
      ctx.count_op();
      co_return ev;
    }
  }
}

std::vector<std::uint64_t> EliminationStack::snapshot() const {
  std::vector<std::uint64_t> out;
  for (Addr p = m_.memory().read(head_); p != 0; p = m_.memory().read(p + kNextOff)) {
    out.push_back(m_.memory().read(p + kValueOff));
  }
  return out;
}

}  // namespace lrsim
