// Copyright (c) 2026 lrsim authors. MIT license.
//
// SprayList [Alistarh, Kopinsky, Li, Shavit — PPoPP'15, the paper's
// reference [4]]: a relaxed priority queue over a lock-free skiplist.
// deleteMin performs a randomized descending "spray" walk from the head —
// at each level it steps a random number of nodes — landing on one of the
// O(p log^3 p) smallest elements with high probability, then removes that
// element. Contention on the true minimum disappears because concurrent
// deleters land on different near-minimal keys.
//
// The paper's intro cites SprayList as the software state of the art for
// scalable priority queues; we include it as a baseline against the
// lease-based PQ variants (bench/fig3_pq --spray).
#pragma once

#include <optional>

#include "ds/skiplist_set.hpp"
#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "util/types.hpp"

namespace lrsim {

struct SprayOptions {
  /// Spray height/width scale; roughly log2 of the expected thread count.
  int spray_scale = 5;
};

class SprayList {
 public:
  explicit SprayList(Machine& m, SprayOptions opt = {})
      : list_(m, LfSkipListOptions{}), opt_(opt) {}

  static constexpr int kPrioShift = 20;

  /// Inserts an element with the given priority (lower pops first-ish).
  Task<void> insert(Ctx& ctx, std::uint64_t priority);

  /// Relaxed deleteMin: sprays to a near-minimal element and removes it.
  /// Returns nullopt when the spray finds nothing removable (likely empty).
  Task<std::optional<std::uint64_t>> delete_min(Ctx& ctx);

  LockFreeSkipList& list() noexcept { return list_; }

 private:
  LockFreeSkipList list_;
  SprayOptions opt_;
  std::uint64_t seq_ = 0;
};

}  // namespace lrsim
