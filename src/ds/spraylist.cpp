// Copyright (c) 2026 lrsim authors. MIT license.

#include "ds/spraylist.hpp"

namespace lrsim {

Task<void> SprayList::insert(Ctx& ctx, std::uint64_t priority) {
  const std::uint64_t key =
      (priority << kPrioShift) | (++seq_ & ((1ull << kPrioShift) - 1));
  co_await list_.insert(ctx, key);
  ctx.count_op();
}

Task<std::optional<std::uint64_t>> SprayList::delete_min(Ctx& ctx) {
  // Spray walk: start below the top, descend with random forward jumps.
  // Parameters follow the SprayList shape: walk length ~ O(spray_scale) per
  // level, descend 1 level per round.
  for (int attempt = 0; attempt < 4; ++attempt) {
    Addr curr = list_.head_node();
    const int start_level = std::min(opt_.spray_scale, LockFreeSkipList::max_level() - 1);
    for (int level = start_level; level >= 0; --level) {
      const int jump = static_cast<int>(ctx.rng().next_below(
          static_cast<std::uint64_t>(opt_.spray_scale) + 1));
      curr = co_await list_.advance(ctx, curr, level, jump);
      if (list_.is_tail(curr)) break;
    }
    if (list_.is_tail(curr) || curr == list_.head_node()) {
      // Sprayed past the end (or went nowhere): fall back to the leftmost.
      curr = co_await list_.advance(ctx, list_.head_node(), 0, 1);
      if (list_.is_tail(curr)) {
        ctx.count_op();
        co_return std::nullopt;  // empty
      }
    }
    const std::uint64_t key = co_await list_.read_key(ctx, curr);
    const bool removed = co_await list_.remove(ctx, key);
    if (removed) {
      ctx.count_op();
      co_return key >> kPrioShift;
    }
    // Lost the race for this element: respray.
  }
  // Too many collisions: act as a cleaner and take the leftmost removable.
  while (true) {
    const Addr first = co_await list_.advance(ctx, list_.head_node(), 0, 1);
    if (list_.is_tail(first)) {
      ctx.count_op();
      co_return std::nullopt;
    }
    const std::uint64_t key = co_await list_.read_key(ctx, first);
    const bool removed = co_await list_.remove(ctx, key);
    if (removed) {
      ctx.count_op();
      co_return key >> kPrioShift;
    }
  }
}

}  // namespace lrsim
