// Copyright (c) 2026 lrsim authors. MIT license.

#include "ds/tl2.hpp"

#include <algorithm>

namespace lrsim {

namespace {
constexpr std::uint64_t kLockedBit = 1;
constexpr std::uint64_t kInitialValue = 1000;
}  // namespace

Tl2Bench::Tl2Bench(Machine& m, Tl2Options opt) : m_(m), opt_(opt) {
  objects_.reserve(opt_.num_objects);
  for (std::size_t i = 0; i < opt_.num_objects; ++i) {
    TxObject o{m.heap().alloc_line(), m.heap().alloc_line()};
    m.memory().write(o.lock, 0);
    m.memory().write(o.value, kInitialValue);
    objects_.push_back(o);
  }
}

Task<bool> Tl2Bench::try_lock_obj(Ctx& ctx, std::size_t idx) {
  const Addr lock = objects_[idx].lock;
  const std::uint64_t word = co_await ctx.load(lock);
  if (word & kLockedBit) {
    ++ctx.stats().lock_failed_trylocks;
    co_return false;
  }
  const bool ok = co_await ctx.cas(lock, word, word | kLockedBit);
  if (ok) {
    ++ctx.stats().lock_acquisitions;
  } else {
    ++ctx.stats().lock_failed_trylocks;
  }
  co_return ok;
}

Task<void> Tl2Bench::unlock_obj(Ctx& ctx, std::size_t idx) {
  const Addr lock = objects_[idx].lock;
  const std::uint64_t word = co_await ctx.load(lock);
  // Release and bump the version (TL2 write-commit).
  co_await ctx.store(lock, (word & ~kLockedBit) + 2);
}

Task<void> Tl2Bench::run_transaction(Ctx& ctx) {
  while (true) {
    std::size_t a = static_cast<std::size_t>(ctx.rng().next_below(objects_.size()));
    std::size_t b = static_cast<std::size_t>(ctx.rng().next_below(objects_.size() - 1));
    if (b >= a) ++b;
    // Fixed global acquisition order (index order) keeps the base algorithm
    // deadlock-free, mirroring the sorted order inside MultiLease.
    const std::size_t lo = std::min(a, b);
    const std::size_t hi = std::max(a, b);

    switch (opt_.lease_mode) {
      case TxLeaseMode::kNone:
        break;
      case TxLeaseMode::kFirst:
        co_await ctx.lease(objects_[lo].lock, opt_.lease_time);
        break;
      case TxLeaseMode::kBoth: {
        std::vector<Addr> group;
        group.push_back(objects_[lo].lock);
        group.push_back(objects_[hi].lock);
        co_await ctx.multi_lease(std::move(group), opt_.lease_time);
        break;
      }
    }

    const bool got_lo = co_await try_lock_obj(ctx, lo);
    if (got_lo) {
      const bool got_hi = co_await try_lock_obj(ctx, hi);
      if (got_hi) {
        // Commit phase: transfer one unit lo -> hi (conserved total).
        const std::uint64_t va = co_await ctx.load(objects_[lo].value);
        const std::uint64_t vb = co_await ctx.load(objects_[hi].value);
        if (opt_.compute_work > 0) co_await ctx.work(opt_.compute_work);
        co_await ctx.store(objects_[lo].value, va - 1);
        co_await ctx.store(objects_[hi].value, vb + 1);
        co_await unlock_obj(ctx, hi);
        co_await unlock_obj(ctx, lo);
        co_await drop_leases(ctx, lo);
        ++ctx.stats().txn_commits;
        ctx.count_op();
        co_return;
      }
      co_await unlock_obj(ctx, lo);  // roll back the lone lock (no writes yet)
    }
    co_await drop_leases(ctx, lo);
    ++ctx.stats().txn_aborts;
  }
}

Task<void> Tl2Bench::drop_leases(Ctx& ctx, std::size_t lo) {
  switch (opt_.lease_mode) {
    case TxLeaseMode::kNone:
      break;
    case TxLeaseMode::kFirst:
      co_await ctx.release(objects_[lo].lock);
      break;
    case TxLeaseMode::kBoth:
      co_await ctx.release_all();
      break;
  }
}

std::uint64_t Tl2Bench::total_value() const {
  std::uint64_t sum = 0;
  for (const TxObject& o : objects_) sum += m_.memory().read(o.value);
  return sum;
}

}  // namespace lrsim
