// Copyright (c) 2026 lrsim authors. MIT license.

#include "ds/fc_stack.hpp"

namespace lrsim {

namespace {
constexpr std::uint64_t kIdle = 0;
constexpr std::uint64_t kPendingPush = 1;
constexpr std::uint64_t kPendingPop = 2;
constexpr std::uint64_t kDone = 3;
}  // namespace

FcStack::FcStack(Machine& m, FcOptions opt)
    : m_(m), opt_(opt), lock_(m, LockOptions{.use_lease = false}), head_(m.heap().alloc_line()) {
  m.memory().write(head_, 0);
  records_.reserve(static_cast<std::size_t>(opt_.max_threads));
  for (int i = 0; i < opt_.max_threads; ++i) {
    records_.push_back(m.heap().alloc_line(24));
    m.memory().write(records_.back() + kReqOff, kIdle);
  }
}

Task<void> FcStack::publish_and_wait(Ctx& ctx, std::uint64_t request, std::uint64_t arg) {
  const Addr rec = record_of(ctx.core());
  co_await ctx.store(rec + kValOff, arg);
  co_await ctx.store(rec + kReqOff, request);
  while (true) {
    // Response ready?
    const std::uint64_t st = co_await ctx.load(rec + kReqOff);
    if (st == kDone) {
      co_await ctx.store(rec + kReqOff, kIdle);
      co_return;
    }
    // Try to become the combiner; a failed attempt just polls again.
    const bool got = co_await lock_.try_lock(ctx);
    if (got) {
      co_await combine(ctx);
      co_await lock_.unlock(ctx);
      // Our own record was serviced by our combining pass.
      const std::uint64_t st2 = co_await ctx.load(rec + kReqOff);
      if (st2 == kDone) {
        co_await ctx.store(rec + kReqOff, kIdle);
        co_return;
      }
      continue;
    }
    co_await ctx.work(opt_.poll_wait);
  }
}

Task<void> FcStack::combine(Ctx& ctx) {
  ++passes_;
  // Scan every publication record and apply pending ops to the sequential
  // stack. The scan itself is the flat-combining cost model: one pass of
  // reads over the records replaces per-op CAS storms on the head.
  const int n = std::min(opt_.max_threads, ctx.config().num_cores);
  for (int i = 0; i < n; ++i) {
    const Addr rec = records_[static_cast<std::size_t>(i)];
    const std::uint64_t st = co_await ctx.load(rec + kReqOff);
    if (st == kPendingPush) {
      const std::uint64_t v = co_await ctx.load(rec + kValOff);
      const Addr node = ctx.alloc_line(16);
      co_await ctx.store(node + kNodeValue, v);
      const Addr h = co_await ctx.load(head_);
      co_await ctx.store(node + kNodeNext, h);
      co_await ctx.store(head_, node);
      co_await ctx.store(rec + kReqOff, kDone);
      ++combined_;
    } else if (st == kPendingPop) {
      const Addr h = co_await ctx.load(head_);
      if (h == 0) {
        co_await ctx.store(rec + kHasOff, 0);
      } else {
        const std::uint64_t v = co_await ctx.load(h + kNodeValue);
        const Addr next = co_await ctx.load(h + kNodeNext);
        co_await ctx.store(head_, next);
        co_await ctx.store(rec + kValOff, v);
        co_await ctx.store(rec + kHasOff, 1);
      }
      co_await ctx.store(rec + kReqOff, kDone);
      ++combined_;
    }
  }
}

Task<void> FcStack::push(Ctx& ctx, std::uint64_t v) {
  co_await publish_and_wait(ctx, kPendingPush, v);
  ctx.count_op();
}

Task<std::optional<std::uint64_t>> FcStack::pop(Ctx& ctx) {
  co_await publish_and_wait(ctx, kPendingPop, 0);
  const Addr rec = record_of(ctx.core());
  const std::uint64_t has = co_await ctx.load(rec + kHasOff);
  ctx.count_op();
  if (has == 0) co_return std::nullopt;
  co_return co_await ctx.load(rec + kValOff);
}

std::vector<std::uint64_t> FcStack::snapshot() const {
  std::vector<std::uint64_t> out;
  for (Addr p = m_.memory().read(head_); p != 0; p = m_.memory().read(p + kNodeNext)) {
    out.push_back(m_.memory().read(p + kNodeValue));
  }
  return out;
}

}  // namespace lrsim
