// Copyright (c) 2026 lrsim authors. MIT license.
//
// Elimination-backoff stack [Hendler, Shavit, Yerushalmi 2004; the paper's
// reference [39] is the elimination-tree precursor]: a Treiber stack whose
// CAS failures divert into an elimination array where concurrent push/pop
// pairs cancel out without ever touching the hot head pointer.
//
// This is one of the "complex, highly optimized software techniques" the
// paper compares leases against (Section 7: lease-augmented classic designs
// "match or improve the performance of optimized, complex implementations").
#pragma once

#include <optional>
#include <vector>

#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "util/types.hpp"

namespace lrsim {

struct EliminationOptions {
  std::size_t slots = 4;     ///< Elimination array width.
  Cycle wait = 400;          ///< Cycles a pusher parks in a slot.
  int spin_checks = 4;       ///< Polls a popper makes while matching.
};

/// Slot word encoding: 0 = empty; (value<<2)|1 = waiting pusher;
/// 2 = "taken" marker left for the pusher by the matching popper.
class EliminationStack {
 public:
  EliminationStack(Machine& m, EliminationOptions opt = {});

  Task<void> push(Ctx& ctx, std::uint64_t v);
  Task<std::optional<std::uint64_t>> pop(Ctx& ctx);

  std::vector<std::uint64_t> snapshot() const;

  /// Host-side counters (diagnostics / tests).
  std::uint64_t eliminations() const noexcept { return eliminations_; }

 private:
  Task<bool> try_push_cas(Ctx& ctx, Addr node);
  Task<std::optional<std::uint64_t>> try_pop_cas(Ctx& ctx, bool* empty);

  /// Pusher-side elimination: park `v` in a random slot; true if a popper
  /// took it.
  Task<bool> eliminate_push(Ctx& ctx, std::uint64_t v);
  /// Popper-side elimination: scan one random slot for a waiting pusher.
  Task<std::optional<std::uint64_t>> eliminate_pop(Ctx& ctx);

  static constexpr Addr kValueOff = 0;
  static constexpr Addr kNextOff = 8;

  Machine& m_;
  EliminationOptions opt_;
  Addr head_;
  std::vector<Addr> slots_;  ///< One cache line each.
  std::uint64_t eliminations_ = 0;
};

}  // namespace lrsim
