// Copyright (c) 2026 lrsim authors. MIT license.

#include "ds/skiplist_pq.hpp"

namespace lrsim {

using namespace skipnode;

namespace {
constexpr std::uint64_t kHeadKey = 0;
constexpr std::uint64_t kTailKey = ~0ull;
}  // namespace

// ---------------------------------------------------------------------------
// LazySkipList
// ---------------------------------------------------------------------------

LazySkipList::LazySkipList(Machine& m) : m_(m) {
  head_ = alloc_node(kHeadKey, kSkipMaxLevel - 1);
  tail_ = alloc_node(kTailKey, kSkipMaxLevel - 1);
  for (int lvl = 0; lvl < kSkipMaxLevel; ++lvl) {
    m_.memory().write(head_ + next_off(lvl), tail_);
  }
  m_.memory().write(head_ + kFullyLinked, 1);
  m_.memory().write(tail_ + kFullyLinked, 1);
}

Addr LazySkipList::alloc_node(std::uint64_t key, int top_level, Ctx* ctx) {
  const Addr n = ctx != nullptr ? ctx->alloc_line(kNodeBytes) : m_.heap().alloc_line(kNodeBytes);
  m_.memory().write(n + kKey, key);
  m_.memory().write(n + kMarked, 0);
  m_.memory().write(n + kFullyLinked, 0);
  m_.memory().write(n + kLock, 0);
  m_.memory().write(n + kTopLevel, static_cast<std::uint64_t>(top_level));
  for (int lvl = 0; lvl < kSkipMaxLevel; ++lvl) m_.memory().write(n + next_off(lvl), 0);
  return n;
}

int LazySkipList::random_level(Ctx& ctx) {
  int lvl = 0;
  while (lvl < kSkipMaxLevel - 1 && (ctx.rng().next() & 1)) ++lvl;
  return lvl;
}

Task<void> LazySkipList::node_lock(Ctx& ctx, Addr node) {
  while (true) {
    while (co_await ctx.load(node + kLock) != 0) {
    }
    const std::uint64_t old = co_await ctx.xchg(node + kLock, 1);
    if (old == 0) co_return;
  }
}

Task<void> LazySkipList::node_unlock(Ctx& ctx, Addr node) { co_await ctx.store(node + kLock, 0); }

Task<LazySkipList::FindResult> LazySkipList::find(Ctx& ctx, std::uint64_t key) {
  FindResult r;
  Addr pred = head_;
  for (int lvl = kSkipMaxLevel - 1; lvl >= 0; --lvl) {
    Addr curr = co_await ctx.load(pred + next_off(lvl));
    while (true) {
      const std::uint64_t ck = co_await ctx.load(curr + kKey);
      if (ck < key) {
        pred = curr;
        curr = co_await ctx.load(pred + next_off(lvl));
      } else {
        if (ck == key && r.level_found == -1) r.level_found = lvl;
        break;
      }
    }
    r.preds[static_cast<std::size_t>(lvl)] = pred;
    r.succs[static_cast<std::size_t>(lvl)] = curr;
  }
  co_return r;
}

Task<bool> LazySkipList::insert(Ctx& ctx, std::uint64_t key) {
  const int top_level = random_level(ctx);
  while (true) {
    FindResult r = co_await find(ctx, key);
    if (r.level_found != -1) {
      const Addr found = r.succs[static_cast<std::size_t>(r.level_found)];
      const std::uint64_t marked = co_await ctx.load(found + kMarked);
      if (!marked) {
        // Another insert of the same key may still be linking; wait for it
        // to become fully linked, then report "already present".
        while (co_await ctx.load(found + kFullyLinked) == 0) {
        }
        co_return false;
      }
      continue;  // being deleted: retry until physically gone
    }

    // Lock distinct predecessors bottom-up and validate.
    int highest_locked = -1;
    Addr prev_pred = 0;
    bool valid = true;
    for (int lvl = 0; valid && lvl <= top_level; ++lvl) {
      const Addr pred = r.preds[static_cast<std::size_t>(lvl)];
      const Addr succ = r.succs[static_cast<std::size_t>(lvl)];
      if (pred != prev_pred) {
        co_await node_lock(ctx, pred);
        highest_locked = lvl;
        prev_pred = pred;
      }
      const std::uint64_t pred_marked = co_await ctx.load(pred + kMarked);
      const std::uint64_t succ_marked = co_await ctx.load(succ + kMarked);
      const Addr link = co_await ctx.load(pred + next_off(lvl));
      valid = pred_marked == 0 && succ_marked == 0 && link == succ;
    }
    if (!valid) {
      prev_pred = 0;
      for (int lvl = 0; lvl <= highest_locked; ++lvl) {
        const Addr pred = r.preds[static_cast<std::size_t>(lvl)];
        if (pred != prev_pred) {
          co_await node_unlock(ctx, pred);
          prev_pred = pred;
        }
      }
      continue;
    }

    const Addr node = alloc_node(key, top_level, &ctx);
    for (int lvl = 0; lvl <= top_level; ++lvl) {
      co_await ctx.store(node + next_off(lvl), r.succs[static_cast<std::size_t>(lvl)]);
    }
    for (int lvl = 0; lvl <= top_level; ++lvl) {
      co_await ctx.store(r.preds[static_cast<std::size_t>(lvl)] + next_off(lvl), node);
    }
    co_await ctx.store(node + kFullyLinked, 1);

    prev_pred = 0;
    for (int lvl = 0; lvl <= highest_locked; ++lvl) {
      const Addr pred = r.preds[static_cast<std::size_t>(lvl)];
      if (pred != prev_pred) {
        co_await node_unlock(ctx, pred);
        prev_pred = pred;
      }
    }
    co_return true;
  }
}

Task<bool> LazySkipList::contains(Ctx& ctx, std::uint64_t key) {
  FindResult r = co_await find(ctx, key);
  if (r.level_found == -1) co_return false;
  const Addr found = r.succs[static_cast<std::size_t>(r.level_found)];
  const std::uint64_t marked = co_await ctx.load(found + kMarked);
  const std::uint64_t linked = co_await ctx.load(found + kFullyLinked);
  co_return marked == 0 && linked == 1;
}

Task<bool> LazySkipList::remove(Ctx& ctx, std::uint64_t key) {
  while (true) {
    FindResult r = co_await find(ctx, key);
    if (r.level_found == -1) co_return false;
    const Addr victim = r.succs[static_cast<std::size_t>(r.level_found)];
    const std::uint64_t linked = co_await ctx.load(victim + kFullyLinked);
    const std::uint64_t vtop = co_await ctx.load(victim + kTopLevel);
    const std::uint64_t marked = co_await ctx.load(victim + kMarked);
    if (linked == 0 || marked != 0 || static_cast<int>(vtop) != r.level_found) {
      co_return false;  // not a stable, fully linked victim found at its top
    }
    co_await node_lock(ctx, victim);
    const std::uint64_t marked_now = co_await ctx.load(victim + kMarked);
    if (marked_now != 0) {
      co_await node_unlock(ctx, victim);
      co_return false;  // someone else won the logical delete
    }
    co_await ctx.store(victim + kMarked, 1);
    co_await unlink(ctx, victim, key);  // releases the victim lock
    co_return true;
  }
}

Task<void> LazySkipList::unlink(Ctx& ctx, Addr victim, std::uint64_t key) {
  const int top_level = static_cast<int>(m_.memory().read(victim + kTopLevel));
  while (true) {
    FindResult r = co_await find(ctx, key);
    // Lock distinct preds and validate they still point at the victim.
    int highest_locked = -1;
    Addr prev_pred = 0;
    bool valid = true;
    for (int lvl = 0; valid && lvl <= top_level; ++lvl) {
      const Addr pred = r.preds[static_cast<std::size_t>(lvl)];
      if (pred != prev_pred) {
        co_await node_lock(ctx, pred);
        highest_locked = lvl;
        prev_pred = pred;
      }
      const std::uint64_t pred_marked = co_await ctx.load(pred + kMarked);
      const Addr link = co_await ctx.load(pred + next_off(lvl));
      valid = pred_marked == 0 && link == victim;
    }
    if (valid) {
      for (int lvl = top_level; lvl >= 0; --lvl) {
        const Addr vnext = co_await ctx.load(victim + next_off(lvl));
        co_await ctx.store(r.preds[static_cast<std::size_t>(lvl)] + next_off(lvl), vnext);
      }
      co_await node_unlock(ctx, victim);
    }
    prev_pred = 0;
    for (int lvl = 0; lvl <= highest_locked; ++lvl) {
      const Addr pred = r.preds[static_cast<std::size_t>(lvl)];
      if (pred != prev_pred) {
        co_await node_unlock(ctx, pred);
        prev_pred = pred;
      }
    }
    if (valid) co_return;
  }
}

Task<std::optional<std::uint64_t>> LazySkipList::delete_min(Ctx& ctx) {
  // Lotan–Shavit: walk the bottom level, claim the first unmarked,
  // fully linked node by lock+mark, then physically unlink it.
  while (true) {
    Addr curr = co_await ctx.load(head_ + next_off(0));
    bool claimed = false;
    std::uint64_t key = 0;
    while (true) {
      key = co_await ctx.load(curr + kKey);
      if (key == kTailKey) break;  // empty (or everything claimed)
      const std::uint64_t marked = co_await ctx.load(curr + kMarked);
      const std::uint64_t linked = co_await ctx.load(curr + kFullyLinked);
      if (marked == 0 && linked == 1) {
        co_await node_lock(ctx, curr);
        const std::uint64_t marked_now = co_await ctx.load(curr + kMarked);
        if (marked_now == 0) {
          co_await ctx.store(curr + kMarked, 1);
          claimed = true;
          break;
        }
        co_await node_unlock(ctx, curr);
      }
      curr = co_await ctx.load(curr + next_off(0));
    }
    if (!claimed) co_return std::nullopt;
    co_await unlink(ctx, curr, key);  // releases curr's lock
    co_return key;
  }
}

std::vector<std::uint64_t> LazySkipList::snapshot() const {
  std::vector<std::uint64_t> out;
  Addr curr = m_.memory().read(head_ + next_off(0));
  while (m_.memory().read(curr + kKey) != kTailKey) {
    if (m_.memory().read(curr + kMarked) == 0) out.push_back(m_.memory().read(curr + kKey));
    curr = m_.memory().read(curr + next_off(0));
  }
  return out;
}

// ---------------------------------------------------------------------------
// LotanShavitPq
// ---------------------------------------------------------------------------

Task<void> LotanShavitPq::insert(Ctx& ctx, std::uint64_t priority) {
  const std::uint64_t key = (priority << kPrioShift) |
                            (++seq_ & ((1ull << kPrioShift) - 1));
  co_await list_.insert(ctx, key);
  ctx.count_op();
}

Task<std::optional<std::uint64_t>> LotanShavitPq::delete_min(Ctx& ctx) {
  std::optional<std::uint64_t> key = co_await list_.delete_min(ctx);
  ctx.count_op();
  if (!key) co_return std::nullopt;
  co_return *key >> kPrioShift;
}

// ---------------------------------------------------------------------------
// GlobalLockSkiplistPq (sequential skiplist under a leased global lock)
// ---------------------------------------------------------------------------

GlobalLockSkiplistPq::GlobalLockSkiplistPq(Machine& m, bool use_lease)
    : m_(m), lock_(m, LockOptions{.use_lease = use_lease}) {
  // Sequential nodes reuse the LazySkipList layout; lock/marked words unused.
  head_ = m.heap().alloc_line(kNodeBytes);
  tail_ = m.heap().alloc_line(kNodeBytes);
  m.memory().write(head_ + kKey, kHeadKey);
  m.memory().write(tail_ + kKey, kTailKey);
  for (int lvl = 0; lvl < kSkipMaxLevel; ++lvl) {
    m.memory().write(head_ + next_off(lvl), tail_);
    m.memory().write(tail_ + next_off(lvl), 0);
  }
}

int GlobalLockSkiplistPq::random_level(Ctx& ctx) {
  int lvl = 0;
  while (lvl < kSkipMaxLevel - 1 && (ctx.rng().next() & 1)) ++lvl;
  return lvl;
}

Task<void> GlobalLockSkiplistPq::seq_insert(Ctx& ctx, std::uint64_t key) {
  std::array<Addr, kSkipMaxLevel> preds{};
  Addr pred = head_;
  for (int lvl = kSkipMaxLevel - 1; lvl >= 0; --lvl) {
    Addr curr = co_await ctx.load(pred + next_off(lvl));
    while (true) {
      const std::uint64_t ck = co_await ctx.load(curr + kKey);
      if (ck < key) {
        pred = curr;
        curr = co_await ctx.load(pred + next_off(lvl));
      } else {
        break;
      }
    }
    preds[static_cast<std::size_t>(lvl)] = pred;
  }
  const int top = random_level(ctx);
  const Addr node = ctx.alloc_line(kNodeBytes);
  co_await ctx.store(node + kKey, key);
  co_await ctx.store(node + kTopLevel, static_cast<std::uint64_t>(top));
  for (int lvl = 0; lvl <= top; ++lvl) {
    const Addr p = preds[static_cast<std::size_t>(lvl)];
    const Addr succ = co_await ctx.load(p + next_off(lvl));
    co_await ctx.store(node + next_off(lvl), succ);
    co_await ctx.store(p + next_off(lvl), node);
  }
}

Task<std::optional<std::uint64_t>> GlobalLockSkiplistPq::seq_delete_min(Ctx& ctx) {
  const Addr first = co_await ctx.load(head_ + next_off(0));
  const std::uint64_t key = co_await ctx.load(first + kKey);
  if (key == kTailKey) co_return std::nullopt;
  // The minimum node's predecessor is the head at every level it occupies.
  const int top = static_cast<int>(co_await ctx.load(first + kTopLevel));
  for (int lvl = top; lvl >= 0; --lvl) {
    const Addr succ = co_await ctx.load(first + next_off(lvl));
    co_await ctx.store(head_ + next_off(lvl), succ);
  }
  co_return key;
}

Task<void> GlobalLockSkiplistPq::insert(Ctx& ctx, std::uint64_t priority) {
  const std::uint64_t key = (priority << LotanShavitPq::kPrioShift) |
                            (++seq_ & ((1ull << LotanShavitPq::kPrioShift) - 1));
  co_await lock_.lock(ctx);
  co_await seq_insert(ctx, key);
  co_await lock_.unlock(ctx);
  ctx.count_op();
}

Task<std::optional<std::uint64_t>> GlobalLockSkiplistPq::delete_min(Ctx& ctx) {
  co_await lock_.lock(ctx);
  std::optional<std::uint64_t> key = co_await seq_delete_min(ctx);
  co_await lock_.unlock(ctx);
  ctx.count_op();
  if (!key) co_return std::nullopt;
  co_return *key >> LotanShavitPq::kPrioShift;
}

}  // namespace lrsim
