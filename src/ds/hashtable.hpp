// Copyright (c) 2026 lrsim authors. MIT license.
//
// Lock-based chained hash table (striped locks, java.util.concurrent
// flavour) for the paper's low-contention experiments (Section 7, "Low
// Contention"): 20% updates / 80% searches over uniform random keys should
// show little or no difference with leases (<= 5%).
#pragma once

#include <memory>
#include <vector>

#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "sync/locks.hpp"
#include "util/types.hpp"

namespace lrsim {

struct HashTableOptions {
  std::size_t buckets = 256;  ///< Power of two.
  std::size_t stripes = 16;   ///< Locks; power of two, <= buckets.
  bool use_lease = false;     ///< Lease the stripe lock around the op.
};

/// Bucket: one word holding the head of a singly linked chain.
/// Node: word 0 = key, word 1 = value, word 2 = next.
class LockedHashTable {
 public:
  LockedHashTable(Machine& m, HashTableOptions opt = {});

  /// Inserts or updates; returns true if the key was new.
  Task<bool> insert(Ctx& ctx, std::uint64_t key, std::uint64_t value);

  /// Removes; returns true if present.
  Task<bool> remove(Ctx& ctx, std::uint64_t key);

  /// Lookup; resumes with the value or nullopt.
  Task<std::optional<std::uint64_t>> get(Ctx& ctx, std::uint64_t key);

  /// Functional size (oracle).
  std::size_t size() const;

 private:
  std::size_t bucket_of(std::uint64_t key) const {
    // Fibonacci hashing spreads sequential keys.
    return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ull) >> 40) & (opt_.buckets - 1);
  }
  TTSLock& stripe_of(std::size_t bucket) { return *stripes_[bucket & (opt_.stripes - 1)]; }

  Machine& m_;
  HashTableOptions opt_;
  std::vector<Addr> buckets_;
  std::vector<std::unique_ptr<TTSLock>> stripes_;
};

}  // namespace lrsim
