// Copyright (c) 2026 lrsim authors. MIT license.
//
// Lock-free skiplist set (Fraser's design as presented by Herlihy & Shavit)
// over the simulated ISA, for the paper's low-contention experiments
// ("skiplists [15]"). Each level is a Harris-style list: next pointers carry
// a mark bit; removal marks top-down and any traversal helps unlink.
#pragma once

#include <array>
#include <optional>

#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "util/types.hpp"

namespace lrsim {

inline constexpr int kLfSkipMaxLevel = 12;

struct LfSkipListOptions {
  bool use_lease = false;  ///< Lease the bottom-level predecessor around the linking CAS.
  Cycle lease_time = 0;
};

/// Node: word 0 = key, word 1 = top level, words 2.. = next[level] | mark.
class LockFreeSkipList {
 public:
  explicit LockFreeSkipList(Machine& m, LfSkipListOptions opt = {});

  Task<bool> insert(Ctx& ctx, std::uint64_t key);
  Task<bool> remove(Ctx& ctx, std::uint64_t key);
  Task<bool> contains(Ctx& ctx, std::uint64_t key);

  std::vector<std::uint64_t> snapshot() const;

  // --- spray-walk support (SprayList builds on these) ----------------------

  Addr head_node() const noexcept { return head_; }
  bool is_tail(Addr node) const noexcept { return node == tail_; }
  static constexpr int max_level() noexcept { return kLfSkipMaxLevel; }

  /// Follows up to `steps` forward pointers at `level` starting from
  /// `node`, skipping marked nodes; stops at the tail.
  Task<Addr> advance(Ctx& ctx, Addr node, int level, int steps);

  /// Reads a node's key (modeled load).
  Task<std::uint64_t> read_key(Ctx& ctx, Addr node);

 private:
  struct FindResult {
    bool found = false;
    std::array<Addr, kLfSkipMaxLevel> preds{};
    std::array<Addr, kLfSkipMaxLevel> succs{};
  };

  Task<FindResult> find(Ctx& ctx, std::uint64_t key);

  static constexpr std::uint64_t kMark = 1;
  static Addr ptr(std::uint64_t w) { return w & ~kMark; }
  static bool marked(std::uint64_t w) { return (w & kMark) != 0; }
  static constexpr Addr kKeyOff = 0;
  static constexpr Addr kTopOff = 8;
  static constexpr Addr next_off(int lvl) { return 16 + static_cast<Addr>(lvl) * 8; }
  static constexpr std::size_t kNodeBytes = (2 + kLfSkipMaxLevel) * 8;

  int random_level(Ctx& ctx);

  Machine& m_;
  LfSkipListOptions opt_;
  Addr head_;
  Addr tail_;
};

}  // namespace lrsim
