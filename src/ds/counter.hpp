// Copyright (c) 2026 lrsim authors. MIT license.
//
// The lock-based shared counter of Figure 3 (left): one contended lock
// protecting a counter variable. Variants select the lock implementation —
// TTS (with or without a lease around the critical section), ticket lock
// with linear backoff, and CLH queue lock — matching the paper's comparison
// set ("optimized hierarchical ticket locks and CLH queue locks").
#pragma once

#include <memory>

#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "sync/locks.hpp"
#include "util/types.hpp"

namespace lrsim {

enum class CounterLockKind { kTTS, kTTSLease, kTicket, kCLH, kMCS };

class LockedCounter {
 public:
  /// `cs_work` adds fixed local computation inside the critical section
  /// (cycles), modeling a non-trivial protected region.
  LockedCounter(Machine& m, CounterLockKind kind, Cycle cs_work = 0);

  /// Locks, increments, unlocks; counts one op.
  Task<void> increment(Ctx& ctx);

  /// Functional read for oracles.
  std::uint64_t value() const { return m_.memory().read(counter_); }

  Addr counter_addr() const noexcept { return counter_; }

 private:
  Machine& m_;
  CounterLockKind kind_;
  Cycle cs_work_;
  Addr counter_;
  std::unique_ptr<TTSLock> tts_;
  std::unique_ptr<TicketLock> ticket_;
  std::unique_ptr<CLHLock> clh_;
  std::unique_ptr<MCSLock> mcs_;
};

}  // namespace lrsim
