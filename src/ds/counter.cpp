// Copyright (c) 2026 lrsim authors. MIT license.

#include "ds/counter.hpp"

namespace lrsim {

LockedCounter::LockedCounter(Machine& m, CounterLockKind kind, Cycle cs_work)
    : m_(m), kind_(kind), cs_work_(cs_work), counter_(m.heap().alloc_line()) {
  m.memory().write(counter_, 0);
  switch (kind_) {
    case CounterLockKind::kTTS:
      tts_ = std::make_unique<TTSLock>(m, LockOptions{.use_lease = false});
      break;
    case CounterLockKind::kTTSLease:
      tts_ = std::make_unique<TTSLock>(m, LockOptions{.use_lease = true});
      break;
    case CounterLockKind::kTicket:
      // Linear (proportional) backoff, as in the paper's ticket-lock baseline.
      ticket_ = std::make_unique<TicketLock>(m, /*backoff_slope=*/64);
      break;
    case CounterLockKind::kCLH:
      clh_ = std::make_unique<CLHLock>(m);
      break;
    case CounterLockKind::kMCS:
      mcs_ = std::make_unique<MCSLock>(m);
      break;
  }
}

Task<void> LockedCounter::increment(Ctx& ctx) {
  switch (kind_) {
    case CounterLockKind::kTTS:
    case CounterLockKind::kTTSLease:
      co_await tts_->lock(ctx);
      break;
    case CounterLockKind::kTicket:
      co_await ticket_->lock(ctx);
      break;
    case CounterLockKind::kCLH:
      co_await clh_->lock(ctx);
      break;
    case CounterLockKind::kMCS:
      co_await mcs_->lock(ctx);
      break;
  }

  const std::uint64_t v = co_await ctx.load(counter_);
  if (cs_work_ > 0) co_await ctx.work(cs_work_);
  co_await ctx.store(counter_, v + 1);

  switch (kind_) {
    case CounterLockKind::kTTS:
    case CounterLockKind::kTTSLease:
      co_await tts_->unlock(ctx);
      break;
    case CounterLockKind::kTicket:
      co_await ticket_->unlock(ctx);
      break;
    case CounterLockKind::kCLH:
      co_await clh_->unlock(ctx);
      break;
    case CounterLockKind::kMCS:
      co_await mcs_->unlock(ctx);
      break;
  }
  ctx.count_op();
}

}  // namespace lrsim
