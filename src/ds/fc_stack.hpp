// Copyright (c) 2026 lrsim authors. MIT license.
//
// Flat-combining stack [Hendler, Incze, Shavit, Tzafrir — SPAA'10, the
// paper's reference [18]]: threads publish operations in per-thread
// records; whoever wins a global lock becomes the *combiner* and applies
// every pending operation to a sequential stack, so a burst of N ops costs
// one lock handoff instead of N contended CASes.
//
// Part of the Section 7 "optimized software techniques" comparison set.
#pragma once

#include <optional>
#include <vector>

#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "sync/locks.hpp"
#include "util/types.hpp"

namespace lrsim {

struct FcOptions {
  int max_threads = 64;   ///< Publication slots (indexed by core id).
  Cycle poll_wait = 60;   ///< Waiter poll interval on its record.
};

/// Publication record (one line per thread):
///   word 0: request state — 0 idle, 1 pending-push, 2 pending-pop,
///           3 done (response ready)
///   word 1: argument / response value
///   word 2: response flag — for pops, 1 if a value was returned
class FcStack {
 public:
  FcStack(Machine& m, FcOptions opt = {});

  Task<void> push(Ctx& ctx, std::uint64_t v);
  Task<std::optional<std::uint64_t>> pop(Ctx& ctx);

  std::vector<std::uint64_t> snapshot() const;

  /// Host-side diagnostics: how many combining passes ran and how many ops
  /// they batched.
  std::uint64_t combining_passes() const noexcept { return passes_; }
  std::uint64_t combined_ops() const noexcept { return combined_; }

 private:
  Task<void> publish_and_wait(Ctx& ctx, std::uint64_t request, std::uint64_t arg);
  Task<void> combine(Ctx& ctx);

  static constexpr Addr kReqOff = 0;
  static constexpr Addr kValOff = 8;
  static constexpr Addr kHasOff = 16;
  static constexpr Addr kNodeValue = 0;
  static constexpr Addr kNodeNext = 8;

  Addr record_of(CoreId c) const { return records_[static_cast<std::size_t>(c)]; }

  Machine& m_;
  FcOptions opt_;
  TTSLock lock_;                ///< The combiner lock.
  Addr head_;                   ///< Sequential stack head (combiner-only).
  std::vector<Addr> records_;   ///< Publication record per core.
  std::uint64_t passes_ = 0;
  std::uint64_t combined_ = 0;
};

}  // namespace lrsim
