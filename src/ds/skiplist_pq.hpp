// Copyright (c) 2026 lrsim authors. MIT license.
//
// Skiplist-based priority queues for Figure 3 (right):
//
//  * LazySkipList — a fine-grained-locking skiplist set (optimistic
//    lock-based insert/remove in the style of Pugh's concurrent skiplist /
//    the Herlihy–Shavit lazy skiplist), the substrate for the paper's
//    baseline: "The baseline Lotan-Shavit priority queue is based on a
//    fine-grained locking skiplist design by Pugh."
//  * LotanShavitPq — deleteMin via logical marking of the first unmarked
//    bottom-level node, then physical unlink [Lotan & Shavit, IPDPS'00].
//  * GlobalLockSkiplistPq — the paper's lease-based variant: a *sequential*
//    skiplist protected by one global TTS lock whose line is leased for the
//    duration of the critical section ("The lease-based implementation
//    relies on a global lock").
//
// Keys must be unique (the PQ wrappers guarantee this by packing a
// disambiguation counter into the low bits of the priority).
#pragma once

#include <array>
#include <optional>

#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "sync/locks.hpp"
#include "util/types.hpp"

namespace lrsim {

/// Tower height bound; 2^kSkipMaxLevel elements keep expected O(log n).
inline constexpr int kSkipMaxLevel = 12;

namespace skipnode {
// Node field offsets (words). One node spans ceil((5+kSkipMaxLevel)/8)
// lines; nodes are line-aligned so tower traffic is per-node.
inline constexpr Addr kKey = 0 * 8;
inline constexpr Addr kMarked = 1 * 8;       ///< Logical deletion flag.
inline constexpr Addr kFullyLinked = 2 * 8;  ///< Insert has linked all levels.
inline constexpr Addr kLock = 3 * 8;         ///< Per-node TTS lock word.
inline constexpr Addr kTopLevel = 4 * 8;
inline constexpr Addr next_off(int level) { return static_cast<Addr>(5 + level) * 8; }
inline constexpr std::size_t kNodeBytes = (5 + kSkipMaxLevel) * 8;
}  // namespace skipnode

/// Fine-grained-locking skiplist set over the simulated ISA.
class LazySkipList {
 public:
  explicit LazySkipList(Machine& m);

  /// Inserts `key` (must not be 0 or UINT64_MAX, the sentinels' keys).
  /// Returns false if the key is already present.
  Task<bool> insert(Ctx& ctx, std::uint64_t key);

  /// Removes `key`; returns false if absent.
  Task<bool> remove(Ctx& ctx, std::uint64_t key);

  /// Membership test (wait-free traversal).
  Task<bool> contains(Ctx& ctx, std::uint64_t key);

  /// Claims and removes the minimum element (Lotan–Shavit deleteMin).
  /// Returns nullopt when empty.
  Task<std::optional<std::uint64_t>> delete_min(Ctx& ctx);

  Addr head() const noexcept { return head_; }
  Addr tail() const noexcept { return tail_; }

  /// Functional bottom-level walk (unmarked nodes) for oracles.
  std::vector<std::uint64_t> snapshot() const;

 private:
  struct FindResult {
    int level_found = -1;
    std::array<Addr, kSkipMaxLevel> preds{};
    std::array<Addr, kSkipMaxLevel> succs{};
  };

  /// Wait-free search recording predecessors/successors per level.
  Task<FindResult> find(Ctx& ctx, std::uint64_t key);

  /// Physically unlinks a marked, locked victim (caller holds its lock and
  /// releases it here).
  Task<void> unlink(Ctx& ctx, Addr victim, std::uint64_t key);

  int random_level(Ctx& ctx);
  // `ctx` routes the allocation to the calling core's heap arena
  // (parallel-kernel eligible); the constructor's sentinels pass nullptr.
  Addr alloc_node(std::uint64_t key, int top_level, Ctx* ctx = nullptr);

  Task<void> node_lock(Ctx& ctx, Addr node);
  Task<void> node_unlock(Ctx& ctx, Addr node);

  Machine& m_;
  Addr head_;
  Addr tail_;
};

/// Lotan–Shavit priority queue over the LazySkipList. Priorities are
/// disambiguated with a per-insert sequence number so skiplist keys stay
/// unique; lower priority value == higher priority.
class LotanShavitPq {
 public:
  explicit LotanShavitPq(Machine& m) : list_(m) {}

  static constexpr int kPrioShift = 20;  ///< Up to 2^20 inserts per priority.

  Task<void> insert(Ctx& ctx, std::uint64_t priority);
  Task<std::optional<std::uint64_t>> delete_min(Ctx& ctx);

  LazySkipList& list() noexcept { return list_; }

 private:
  LazySkipList list_;
  std::uint64_t seq_ = 0;  ///< Host-side unique-suffix counter.
};

/// Sequential skiplist + one global (leased) TTS lock: the paper's
/// lease-based priority-queue implementation.
class GlobalLockSkiplistPq {
 public:
  GlobalLockSkiplistPq(Machine& m, bool use_lease);

  Task<void> insert(Ctx& ctx, std::uint64_t priority);
  Task<std::optional<std::uint64_t>> delete_min(Ctx& ctx);

  TTSLock& lock() noexcept { return lock_; }

 private:
  // Sequential helpers (run inside the critical section).
  Task<void> seq_insert(Ctx& ctx, std::uint64_t key);
  Task<std::optional<std::uint64_t>> seq_delete_min(Ctx& ctx);
  int random_level(Ctx& ctx);

  Machine& m_;
  TTSLock lock_;
  Addr head_;
  Addr tail_;
  std::uint64_t seq_ = 0;
};

}  // namespace lrsim
