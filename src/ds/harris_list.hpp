// Copyright (c) 2026 lrsim authors. MIT license.
//
// Harris's lock-free sorted linked list [DISC'01] over the simulated ISA.
//
// Deleted nodes are *logically* marked by setting the low bit of their next
// pointer (simulated node addresses are line-aligned, so bit 0 is free),
// then physically unlinked by any traversal that encounters them (helping).
//
// Lease placement follows the paper's "linear data structure" observation:
// leasing the *predecessor* node's next-pointer line across the
// search-validate-CAS window is sufficient — and preferable to multi-leases
// — because owning the predecessor gates access to the successor chain.
#pragma once

#include <optional>

#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "util/types.hpp"

namespace lrsim {

struct HarrisOptions {
  bool use_lease = false;  ///< Lease the predecessor line around the CAS.
  Cycle lease_time = 0;    ///< 0 => policy-chosen (static: MAX_LEASE_TIME).
};

/// Node: word 0 = key, word 1 = next | mark-bit.
class HarrisList {
 public:
  explicit HarrisList(Machine& m, HarrisOptions opt = {});

  Task<bool> insert(Ctx& ctx, std::uint64_t key);
  Task<bool> remove(Ctx& ctx, std::uint64_t key);
  Task<bool> contains(Ctx& ctx, std::uint64_t key);

  /// Functional walk of unmarked nodes (oracle).
  std::vector<std::uint64_t> snapshot() const;

 private:
  struct Window {
    Addr pred;  ///< Node whose next points at curr.
    Addr curr;  ///< First unmarked node with key >= target (or tail).
  };

  /// Harris search: returns (pred, curr), physically unlinking any marked
  /// nodes passed over (helping).
  Task<Window> search(Ctx& ctx, std::uint64_t key);

  static constexpr std::uint64_t kMark = 1;
  static Addr ptr(std::uint64_t word) { return word & ~kMark; }
  static bool marked(std::uint64_t word) { return (word & kMark) != 0; }

  Machine& m_;
  HarrisOptions opt_;
  Addr head_;  ///< Sentinel with key 0 (reserved).
  Addr tail_;  ///< Sentinel with key UINT64_MAX.
};

}  // namespace lrsim
