// Copyright (c) 2026 lrsim authors. MIT license.

#include "ds/harris_list.hpp"

namespace lrsim {

namespace {
constexpr Addr kKeyOff = 0;
constexpr Addr kNextOff = 8;
constexpr std::uint64_t kTailKey = ~0ull;
}  // namespace

HarrisList::HarrisList(Machine& m, HarrisOptions opt) : m_(m), opt_(opt) {
  head_ = m.heap().alloc_line(16);
  tail_ = m.heap().alloc_line(16);
  m.memory().write(head_ + kKeyOff, 0);
  m.memory().write(head_ + kNextOff, tail_);
  m.memory().write(tail_ + kKeyOff, kTailKey);
  m.memory().write(tail_ + kNextOff, 0);
}

Task<HarrisList::Window> HarrisList::search(Ctx& ctx, std::uint64_t key) {
  while (true) {
    Addr pred = head_;
    std::uint64_t pred_next = co_await ctx.load(pred + kNextOff);
    Addr curr = ptr(pred_next);
    bool restart = false;
    while (true) {
      std::uint64_t curr_next = co_await ctx.load(curr + kNextOff);
      while (marked(curr_next)) {
        // curr is logically deleted: help unlink it from pred.
        const bool ok = co_await ctx.cas(pred + kNextOff, curr, ptr(curr_next));
        if (!ok) {
          restart = true;
          break;
        }
        curr = ptr(curr_next);
        curr_next = co_await ctx.load(curr + kNextOff);
      }
      if (restart) break;
      const std::uint64_t ck = co_await ctx.load(curr + kKeyOff);
      if (ck >= key || curr == tail_) co_return Window{pred, curr};
      pred = curr;
      curr = ptr(curr_next);
    }
  }
}

Task<bool> HarrisList::insert(Ctx& ctx, std::uint64_t key) {
  const Addr node = ctx.alloc_line(16);
  co_await ctx.store(node + kKeyOff, key);
  while (true) {
    // The paper's recipe for linear structures leases the *predecessor*,
    // which is only known after the search: search first, then lease the
    // pred line; the CAS re-validates the window.
    Window w = co_await search(ctx, key);
    const std::uint64_t ck = co_await ctx.load(w.curr + kKeyOff);
    if (ck == key && w.curr != tail_) {
      ctx.count_op();
      co_return false;  // already present
    }
    if (opt_.use_lease) co_await ctx.lease(w.pred + kNextOff, opt_.lease_time);
    co_await ctx.store(node + kNextOff, w.curr);
    const bool ok = co_await ctx.cas(w.pred + kNextOff, w.curr, node);
    if (opt_.use_lease) co_await ctx.release(w.pred + kNextOff);
    if (ok) {
      ctx.count_op();
      co_return true;
    }
  }
}

Task<bool> HarrisList::remove(Ctx& ctx, std::uint64_t key) {
  while (true) {
    Window w = co_await search(ctx, key);
    const std::uint64_t ck = co_await ctx.load(w.curr + kKeyOff);
    if (ck != key || w.curr == tail_) {
      ctx.count_op();
      co_return false;
    }
    if (opt_.use_lease) co_await ctx.lease(w.curr + kNextOff, opt_.lease_time);
    const std::uint64_t succ = co_await ctx.load(w.curr + kNextOff);
    if (marked(succ)) {
      if (opt_.use_lease) co_await ctx.release(w.curr + kNextOff);
      continue;  // someone else is deleting curr
    }
    // Logical delete: mark curr's next pointer.
    const bool marked_ok = co_await ctx.cas(w.curr + kNextOff, succ, succ | kMark);
    if (opt_.use_lease) co_await ctx.release(w.curr + kNextOff);
    if (!marked_ok) continue;
    // Physical unlink (best effort; search() helps if this fails).
    co_await ctx.cas(w.pred + kNextOff, w.curr, succ);
    ctx.count_op();
    co_return true;
  }
}

Task<bool> HarrisList::contains(Ctx& ctx, std::uint64_t key) {
  // Wait-free read-only traversal (Michael's variant of the lookup).
  Addr curr = ptr(co_await ctx.load(head_ + kNextOff));
  while (true) {
    const std::uint64_t ck = co_await ctx.load(curr + kKeyOff);
    if (ck >= key || curr == tail_) {
      const std::uint64_t next = co_await ctx.load(curr + kNextOff);
      ctx.count_op();
      co_return ck == key && curr != tail_ && !marked(next);
    }
    curr = ptr(co_await ctx.load(curr + kNextOff));
  }
}

std::vector<std::uint64_t> HarrisList::snapshot() const {
  std::vector<std::uint64_t> out;
  Addr curr = ptr(m_.memory().read(head_ + kNextOff));
  while (curr != tail_) {
    const std::uint64_t next = m_.memory().read(curr + kNextOff);
    if (!marked(next)) out.push_back(m_.memory().read(curr + kKeyOff));
    curr = ptr(next);
  }
  return out;
}

}  // namespace lrsim
