// Copyright (c) 2026 lrsim authors. MIT license.
//
// TL2-style two-object transactions (the paper's Figure 4/5 MultiLease
// benchmark): "transactions attempt to modify the values of two randomly
// chosen transactional objects out of a fixed set of ten, by acquiring
// locks on both. If an acquisition fails, the transaction aborts and is
// retried."
//
// Each transactional object carries a versioned lock word (version << 1 |
// locked) and a value word, as in Dice–Shalev–Shavit TL2. Lock acquisition
// is try-lock in a fixed (index) order; a failed acquisition aborts.
//
// Lease modes reproduce the paper's three curves:
//   kNone  — base TL2.
//   kFirst — single lease on the first object's lock only ("leasing just
//            the lock associated to the first object improves throughput
//            only moderately").
//   kBoth  — MultiLease on both lock words (up to 5x, Figure 4); with
//            MachineConfig::software_multilease this becomes the software
//            emulation of Figure 5 (left).
#pragma once

#include <vector>

#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "util/types.hpp"

namespace lrsim {

enum class TxLeaseMode { kNone, kFirst, kBoth };

struct Tl2Options {
  std::size_t num_objects = 10;
  TxLeaseMode lease_mode = TxLeaseMode::kNone;
  Cycle lease_time = 0;
  Cycle compute_work = 50;  ///< Local cycles spent "computing" inside the txn.
};

class Tl2Bench {
 public:
  Tl2Bench(Machine& m, Tl2Options opt = {});

  /// Runs one transaction to commit (retrying aborts). Updates two random
  /// objects; counts commits and aborts in stats.
  Task<void> run_transaction(Ctx& ctx);

  /// Invariant oracle: transactions transfer value between objects, so the
  /// total is conserved.
  std::uint64_t total_value() const;

  std::size_t num_objects() const { return objects_.size(); }

 private:
  struct TxObject {
    Addr lock;   ///< Versioned lock word, own line.
    Addr value;  ///< Own line.
  };

  Task<bool> try_lock_obj(Ctx& ctx, std::size_t idx);
  Task<void> unlock_obj(Ctx& ctx, std::size_t idx);
  Task<void> drop_leases(Ctx& ctx, std::size_t lo);

  Machine& m_;
  Tl2Options opt_;
  std::vector<TxObject> objects_;
};

}  // namespace lrsim
