// Copyright (c) 2026 lrsim authors. MIT license.

#include "ds/ms_queue.hpp"

namespace lrsim {

namespace {
constexpr Addr kValueOff = 0;
constexpr Addr kNextOff = 8;
}  // namespace

MsQueue::MsQueue(Machine& m, MsQueueOptions opt)
    : m_(m), head_(m.heap().alloc_line()), tail_(m.heap().alloc_line()), opt_(opt) {
  // Dummy node precedes the real items.
  const Addr dummy = m.heap().alloc_line(16);
  m.memory().write(dummy + kValueOff, 0);
  m.memory().write(dummy + kNextOff, 0);
  m.memory().write(head_, dummy);
  m.memory().write(tail_, dummy);
}

Task<void> MsQueue::enqueue(Ctx& ctx, std::uint64_t v) {
  const Addr w = ctx.alloc_line(16);
  co_await ctx.store(w + kValueOff, v);
  co_await ctx.store(w + kNextOff, 0);
  Backoff backoff{opt_.backoff_min, opt_.backoff_max};

  while (true) {
    Addr next_lease = 0;  // kNextPtr: the line actually leased this round
    if (opt_.lease_mode == QueueLeaseMode::kSingle) {
      co_await ctx.lease(tail_, opt_.lease_time);
    } else if (opt_.lease_mode == QueueLeaseMode::kNextPtr) {
      // Section 6 alternative placement: peek the tail, lease only the last
      // node's next-pointer line. Other threads can still read/advance the
      // tail pointer (more parallelism), at the cost of duplicated
      // tail-swing CASes when they see it trailing.
      const Addr t_peek = co_await ctx.load(tail_);
      next_lease = t_peek + kNextOff;
      co_await ctx.lease(next_lease, opt_.lease_time);
    } else if (opt_.lease_mode == QueueLeaseMode::kMulti) {
      // Joint lease on the tail pointer and the last node's next-pointer
      // line: peek at the tail (plain load) to learn the node address, then
      // MultiLease both. The peeked tail can go stale; the validation below
      // catches that, exactly like the base algorithm.
      const Addr t_peek = co_await ctx.load(tail_);
      std::vector<Addr> group;
      group.push_back(tail_);
      group.push_back(t_peek + kNextOff);
      co_await ctx.multi_lease(std::move(group), opt_.lease_time);
    }
    const Addr t = co_await ctx.load(tail_);
    const Addr n = co_await ctx.load(t + kNextOff);
    if (t == (co_await ctx.load(tail_))) {  // pointers consistent?
      if (n == 0) {                         // tail pointing to last node
        const bool linked = co_await ctx.cas(t + kNextOff, 0, w);
        if (linked) {
          co_await ctx.cas(tail_, t, w);  // swing tail to inserted node
          co_await release_leases(ctx, t, next_lease);
          ctx.count_op();
          co_return;
        }
      } else {
        co_await ctx.cas(tail_, t, n);  // tail fell behind: help swing it
      }
    }
    co_await release_leases(ctx, t, next_lease);
    if (opt_.use_backoff) co_await backoff.pause(ctx);
  }
}

Task<std::optional<std::uint64_t>> MsQueue::dequeue(Ctx& ctx) {
  Backoff backoff{opt_.backoff_min, opt_.backoff_max};
  while (true) {
    if (opt_.lease_mode != QueueLeaseMode::kNone) {
      // Dequeues always use a single lease on the head pointer (the paper's
      // multi-lease experiments apply the joint lease on the enqueue side).
      co_await ctx.lease(head_, opt_.lease_time);
    }
    const Addr h = co_await ctx.load(head_);
    const Addr t = co_await ctx.load(tail_);
    const Addr n = co_await ctx.load(h + kNextOff);
    if (h == (co_await ctx.load(head_))) {  // pointers consistent?
      if (h == t) {
        if (n == 0) {
          if (opt_.lease_mode != QueueLeaseMode::kNone) co_await ctx.release(head_);
          ctx.count_op();
          co_return std::nullopt;  // queue empty
        }
        co_await ctx.cas(tail_, t, n);  // tail fell behind, update it
      } else {
        const std::uint64_t v = co_await ctx.load(n + kValueOff);
        const bool ok = co_await ctx.cas(head_, h, n);  // swing head
        if (ok) {
          if (opt_.lease_mode != QueueLeaseMode::kNone) co_await ctx.release(head_);
          ctx.count_op();
          co_return v;
        }
      }
    }
    if (opt_.lease_mode != QueueLeaseMode::kNone) co_await ctx.release(head_);
    if (opt_.use_backoff) co_await backoff.pause(ctx);
  }
}

Task<void> MsQueue::release_leases(Ctx& ctx, Addr t, Addr next_lease) {
  switch (opt_.lease_mode) {
    case QueueLeaseMode::kNone:
      break;
    case QueueLeaseMode::kSingle:
      co_await ctx.release(tail_);
      break;
    case QueueLeaseMode::kNextPtr:
      if (next_lease != 0) co_await ctx.release(next_lease);
      break;
    case QueueLeaseMode::kMulti:
      // Releasing any member of the group releases the whole group; t's
      // next-line lease goes with it. release_all also covers the case
      // where the group was ignored/evicted.
      (void)t;
      co_await ctx.release_all();
      break;
  }
}

std::vector<std::uint64_t> MsQueue::snapshot() const {
  std::vector<std::uint64_t> out;
  const Addr dummy = m_.memory().read(head_);
  for (Addr p = m_.memory().read(dummy + kNextOff); p != 0; p = m_.memory().read(p + kNextOff)) {
    out.push_back(m_.memory().read(p + kValueOff));
  }
  return out;
}

}  // namespace lrsim
