// Copyright (c) 2026 lrsim authors. MIT license.
//
// The Michael–Scott non-blocking FIFO queue [PODC'96] over the simulated
// ISA, following the paper's Algorithm 3:
//
//  * kSingle lease mode leases the tail pointer (enqueue) / head pointer
//    (dequeue) at the top of the retry loop and releases at the end — the
//    paper's preferred placement ("cleanly ordering the operations").
//  * kMulti additionally leases the last node's next-pointer line jointly
//    with the tail for enqueues — the Section 7 variant shown in Figure 3's
//    queue plot, which the paper found *slower* than the single lease
//    ("leasing the predecessor node makes extra cache misses on successors
//    unlikely"); we reproduce that ordering.
//
// Head and tail pointers live on separate cache lines (Section 7 explicitly
// warns that colocating them would create false sharing between leases).
#pragma once

#include <optional>

#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "sync/backoff.hpp"
#include "util/types.hpp"

namespace lrsim {

enum class QueueLeaseMode {
  kNone,
  kSingle,   ///< Lease the head/tail *pointer* lines (the paper's default).
  kMulti,    ///< Jointly lease tail pointer + last node's next line (Section 7).
  kNextPtr,  ///< Lease only the last node's next-pointer line on enqueue
             ///< (Section 6's alternative: "increases parallelism, but
             ///< slightly decreases performance since threads become likely
             ///< to see the tail trailing behind").
};

struct MsQueueOptions {
  QueueLeaseMode lease_mode = QueueLeaseMode::kNone;
  Cycle lease_time = 0;  ///< 0 => policy-chosen (static: MAX_LEASE_TIME).
  bool use_backoff = false;
  Cycle backoff_min = 32;
  Cycle backoff_max = 8192;
};

/// Node layout (one line per node): word 0 = value, word 1 = next.
class MsQueue {
 public:
  MsQueue(Machine& m, MsQueueOptions opt = {});

  Task<void> enqueue(Ctx& ctx, std::uint64_t v);
  Task<std::optional<std::uint64_t>> dequeue(Ctx& ctx);

  Addr head_addr() const noexcept { return head_; }
  Addr tail_addr() const noexcept { return tail_; }

  /// Functional snapshot (front to back) for test oracles.
  std::vector<std::uint64_t> snapshot() const;

 private:
  /// Releases whatever lease mode `lease_mode` took on the enqueue path.
  Task<void> release_leases(Ctx& ctx, Addr t, Addr next_lease);

  Machine& m_;
  Addr head_;  ///< Points at the dummy node (own line).
  Addr tail_;  ///< Points at the last node (own line).
  MsQueueOptions opt_;
};

}  // namespace lrsim
