// Copyright (c) 2026 lrsim authors. MIT license.
//
// The two-lock (blocking) Michael–Scott queue [PODC'96] — the lock-based
// queue of the paper's Figure 3 caption. A head lock serializes dequeues
// and a tail lock serializes enqueues; the dummy node keeps them from ever
// conflicting. With leases, each lock's line is leased for its critical
// section (the Section 6 try-lock recipe), so the unlock store is an L1 hit
// and waiters queue implicitly.
#pragma once

#include <optional>

#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "sync/locks.hpp"
#include "util/types.hpp"

namespace lrsim {

struct TwoLockQueueOptions {
  bool use_lease = false;
};

/// Node layout (one line): word 0 = value, word 1 = next.
class TwoLockQueue {
 public:
  TwoLockQueue(Machine& m, TwoLockQueueOptions opt = {});

  Task<void> enqueue(Ctx& ctx, std::uint64_t v);
  Task<std::optional<std::uint64_t>> dequeue(Ctx& ctx);

  std::vector<std::uint64_t> snapshot() const;

 private:
  static constexpr Addr kValueOff = 0;
  static constexpr Addr kNextOff = 8;

  Machine& m_;
  TTSLock head_lock_;
  TTSLock tail_lock_;
  Addr head_;  ///< Dummy-node pointer (own line).
  Addr tail_;  ///< Last-node pointer (own line).
};

}  // namespace lrsim
