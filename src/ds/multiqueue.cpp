// Copyright (c) 2026 lrsim authors. MIT license.

#include "ds/multiqueue.hpp"

namespace lrsim {

// ---------------------------------------------------------------------------
// SimHeapPq
// ---------------------------------------------------------------------------

SimHeapPq::SimHeapPq(Machine& m, std::size_t capacity) : m_(m), capacity_(capacity) {
  base_ = m.heap().alloc_line(8 * (capacity + 1));
  m.memory().write(base_, 0);
}

Task<bool> SimHeapPq::insert(Ctx& ctx, std::uint64_t key) {
  std::uint64_t n = co_await ctx.load(base_);
  if (n >= capacity_) co_return false;
  // Sift up.
  std::size_t i = static_cast<std::size_t>(n);
  co_await ctx.store(slot(i), key);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    const std::uint64_t pv = co_await ctx.load(slot(parent));
    if (pv <= key) break;
    co_await ctx.store(slot(i), pv);
    co_await ctx.store(slot(parent), key);
    i = parent;
  }
  co_await ctx.store(base_, n + 1);
  co_return true;
}

Task<std::optional<std::uint64_t>> SimHeapPq::top(Ctx& ctx) {
  const std::uint64_t n = co_await ctx.load(base_);
  if (n == 0) co_return std::nullopt;
  const std::uint64_t v = co_await ctx.load(slot(0));
  co_return v;
}

Task<std::optional<std::uint64_t>> SimHeapPq::delete_min(Ctx& ctx) {
  const std::uint64_t n = co_await ctx.load(base_);
  if (n == 0) co_return std::nullopt;
  const std::uint64_t min = co_await ctx.load(slot(0));
  const std::uint64_t last = co_await ctx.load(slot(static_cast<std::size_t>(n - 1)));
  co_await ctx.store(base_, n - 1);
  const std::size_t size = static_cast<std::size_t>(n - 1);
  // Sift down from the root.
  std::size_t i = 0;
  co_await ctx.store(slot(0), last);
  while (true) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l >= size) break;
    std::size_t smallest = l;
    std::uint64_t sv = co_await ctx.load(slot(l));
    if (r < size) {
      const std::uint64_t rv = co_await ctx.load(slot(r));
      if (rv < sv) {
        smallest = r;
        sv = rv;
      }
    }
    if (sv >= last) break;
    co_await ctx.store(slot(i), sv);
    co_await ctx.store(slot(smallest), last);
    i = smallest;
  }
  co_return min;
}

// ---------------------------------------------------------------------------
// MultiQueue
// ---------------------------------------------------------------------------

MultiQueue::MultiQueue(Machine& m, MultiQueueOptions opt) : m_(m), opt_(opt) {
  for (std::size_t i = 0; i < opt_.num_queues; ++i) {
    queues_.push_back(std::make_unique<SimHeapPq>(m, opt_.capacity));
    // The lock lines are what the leases protect; try_lock/lease handling
    // is done here per Algorithm 4, so the TTSLock itself is lease-free.
    locks_.push_back(std::make_unique<TTSLock>(m, LockOptions{.use_lease = false}));
  }
}

Task<void> MultiQueue::insert(Ctx& ctx, std::uint64_t key) {
  while (true) {
    const std::size_t i = static_cast<std::size_t>(ctx.rng().next_below(opt_.num_queues));
    if (opt_.use_lease) co_await ctx.lease(locks_[i]->addr(), opt_.lease_time);
    const bool locked = co_await locks_[i]->try_lock(ctx);
    if (locked) {
      co_await queues_[i]->insert(ctx, key);  // sequential
      co_await locks_[i]->unlock(ctx);
      if (opt_.use_lease) co_await ctx.release(locks_[i]->addr());
      ctx.count_op();
      co_return;
    }
    if (opt_.use_lease) co_await ctx.release(locks_[i]->addr());
  }
}

Task<std::optional<std::uint64_t>> MultiQueue::delete_min(Ctx& ctx) {
  int dry_runs = 0;
  while (true) {
    std::size_t i = static_cast<std::size_t>(ctx.rng().next_below(opt_.num_queues));
    std::size_t k = static_cast<std::size_t>(ctx.rng().next_below(opt_.num_queues));
    if (k == i) k = (k + 1) % opt_.num_queues;
    if (opt_.use_lease) {
      std::vector<Addr> group;
      group.push_back(locks_[i]->addr());
      group.push_back(locks_[k]->addr());
      co_await ctx.multi_lease(std::move(group), opt_.lease_time);
    }
    const bool got_i = co_await locks_[i]->try_lock(ctx);
    if (got_i) {
      const bool got_k = co_await locks_[k]->try_lock(ctx);
      if (got_k) {
        // Compare tops; the loser is unlocked (and both leases dropped)
        // *before* the long sequential pop, per Algorithm 4.
        std::optional<std::uint64_t> ti = co_await queues_[i]->top(ctx);
        std::optional<std::uint64_t> tk = co_await queues_[k]->top(ctx);
        if (!ti && tk) std::swap(i, k), std::swap(ti, tk);
        if (ti && tk && *tk < *ti) {
          std::swap(i, k);
          std::swap(ti, tk);
        }
        // i now indexes the queue holding the better (smaller) top.
        co_await locks_[k]->unlock(ctx);
        if (opt_.use_lease) co_await ctx.release_all();
        if (!ti) {
          co_await locks_[i]->unlock(ctx);
          if (++dry_runs >= 4) {
            ctx.count_op();
            co_return std::nullopt;  // probably empty
          }
          continue;
        }
        std::optional<std::uint64_t> rtn = co_await queues_[i]->delete_min(ctx);
        co_await locks_[i]->unlock(ctx);
        ctx.count_op();
        co_return rtn;
      }
      // Failed to acquire Locks[k].
      co_await locks_[i]->unlock(ctx);
      if (opt_.use_lease) co_await ctx.release_all();
    } else {
      // Failed to acquire Locks[i].
      if (opt_.use_lease) co_await ctx.release_all();
    }
  }
}

std::size_t MultiQueue::total_size() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q->size();
  return n;
}

}  // namespace lrsim
