// Copyright (c) 2026 lrsim authors. MIT license.

#include "ds/hashtable.hpp"

namespace lrsim {

namespace {
constexpr Addr kKeyOff = 0;
constexpr Addr kValOff = 8;
constexpr Addr kNextOff = 16;
}  // namespace

LockedHashTable::LockedHashTable(Machine& m, HashTableOptions opt) : m_(m), opt_(opt) {
  assert((opt_.buckets & (opt_.buckets - 1)) == 0 && "buckets must be a power of two");
  assert((opt_.stripes & (opt_.stripes - 1)) == 0 && opt_.stripes <= opt_.buckets);
  buckets_.reserve(opt_.buckets);
  // Bucket head words are packed 8 per line: bucket lines are *shared* but
  // mostly read-only pointers; contention is carried by the stripe locks.
  for (std::size_t i = 0; i < opt_.buckets; ++i) {
    buckets_.push_back(m.heap().alloc(8));
    m.memory().write(buckets_.back(), 0);
  }
  for (std::size_t i = 0; i < opt_.stripes; ++i) {
    stripes_.push_back(std::make_unique<TTSLock>(m, LockOptions{.use_lease = opt_.use_lease}));
  }
}

Task<bool> LockedHashTable::insert(Ctx& ctx, std::uint64_t key, std::uint64_t value) {
  const std::size_t b = bucket_of(key);
  TTSLock& lock = stripe_of(b);
  co_await lock.lock(ctx);
  Addr prev = buckets_[b];
  Addr curr = co_await ctx.load(prev);
  bool inserted = true;
  while (curr != 0) {
    const std::uint64_t k = co_await ctx.load(curr + kKeyOff);
    if (k == key) {
      co_await ctx.store(curr + kValOff, value);
      inserted = false;
      break;
    }
    prev = curr + kNextOff;
    curr = co_await ctx.load(prev);
  }
  if (inserted) {
    const Addr node = ctx.alloc_line(24);
    co_await ctx.store(node + kKeyOff, key);
    co_await ctx.store(node + kValOff, value);
    co_await ctx.store(node + kNextOff, 0);
    co_await ctx.store(prev, node);
  }
  co_await lock.unlock(ctx);
  ctx.count_op();
  co_return inserted;
}

Task<bool> LockedHashTable::remove(Ctx& ctx, std::uint64_t key) {
  const std::size_t b = bucket_of(key);
  TTSLock& lock = stripe_of(b);
  co_await lock.lock(ctx);
  Addr prev = buckets_[b];
  Addr curr = co_await ctx.load(prev);
  bool removed = false;
  while (curr != 0) {
    const std::uint64_t k = co_await ctx.load(curr + kKeyOff);
    if (k == key) {
      const Addr next = co_await ctx.load(curr + kNextOff);
      co_await ctx.store(prev, next);
      removed = true;
      break;
    }
    prev = curr + kNextOff;
    curr = co_await ctx.load(prev);
  }
  co_await lock.unlock(ctx);
  ctx.count_op();
  co_return removed;
}

Task<std::optional<std::uint64_t>> LockedHashTable::get(Ctx& ctx, std::uint64_t key) {
  // Reads traverse without the stripe lock (the chains are consistent under
  // the single-writer-per-stripe discipline; a concurrent remove can at
  // worst make us miss/see the node, both linearizable outcomes).
  const std::size_t b = bucket_of(key);
  Addr curr = co_await ctx.load(buckets_[b]);
  while (curr != 0) {
    const std::uint64_t k = co_await ctx.load(curr + kKeyOff);
    if (k == key) {
      const std::uint64_t v = co_await ctx.load(curr + kValOff);
      ctx.count_op();
      co_return v;
    }
    curr = co_await ctx.load(curr + kNextOff);
  }
  ctx.count_op();
  co_return std::nullopt;
}

std::size_t LockedHashTable::size() const {
  std::size_t n = 0;
  for (Addr b : buckets_) {
    for (Addr p = m_.memory().read(b); p != 0; p = m_.memory().read(p + kNextOff)) ++n;
  }
  return n;
}

}  // namespace lrsim
