// Copyright (c) 2026 lrsim authors. MIT license.

#include "ds/skiplist_set.hpp"

namespace lrsim {

namespace {
constexpr std::uint64_t kTailKey = ~0ull;
}

LockFreeSkipList::LockFreeSkipList(Machine& m, LfSkipListOptions opt) : m_(m), opt_(opt) {
  head_ = m.heap().alloc_line(kNodeBytes);
  tail_ = m.heap().alloc_line(kNodeBytes);
  m.memory().write(head_ + kKeyOff, 0);
  m.memory().write(head_ + kTopOff, kLfSkipMaxLevel - 1);
  m.memory().write(tail_ + kKeyOff, kTailKey);
  m.memory().write(tail_ + kTopOff, kLfSkipMaxLevel - 1);
  for (int lvl = 0; lvl < kLfSkipMaxLevel; ++lvl) {
    m.memory().write(head_ + next_off(lvl), tail_);
    m.memory().write(tail_ + next_off(lvl), 0);
  }
}

int LockFreeSkipList::random_level(Ctx& ctx) {
  int lvl = 0;
  while (lvl < kLfSkipMaxLevel - 1 && (ctx.rng().next() & 1)) ++lvl;
  return lvl;
}

Task<LockFreeSkipList::FindResult> LockFreeSkipList::find(Ctx& ctx, std::uint64_t key) {
  while (true) {
    FindResult r;
    Addr pred = head_;
    bool retry = false;
    for (int lvl = kLfSkipMaxLevel - 1; lvl >= 0 && !retry; --lvl) {
      Addr curr = ptr(co_await ctx.load(pred + next_off(lvl)));
      while (true) {
        std::uint64_t succ_word = co_await ctx.load(curr + next_off(lvl));
        // Help unlink marked successors of curr.
        while (marked(succ_word)) {
          const bool snip = co_await ctx.cas(pred + next_off(lvl), curr, ptr(succ_word));
          if (!snip) {
            retry = true;
            break;
          }
          curr = ptr(co_await ctx.load(pred + next_off(lvl)));
          succ_word = co_await ctx.load(curr + next_off(lvl));
        }
        if (retry) break;
        const std::uint64_t ck = co_await ctx.load(curr + kKeyOff);
        if (ck < key) {
          pred = curr;
          curr = ptr(succ_word);
        } else {
          r.preds[static_cast<std::size_t>(lvl)] = pred;
          r.succs[static_cast<std::size_t>(lvl)] = curr;
          break;
        }
      }
    }
    if (retry) continue;
    const std::uint64_t k0 = co_await ctx.load(r.succs[0] + kKeyOff);
    r.found = k0 == key && r.succs[0] != tail_;
    co_return r;
  }
}

Task<bool> LockFreeSkipList::insert(Ctx& ctx, std::uint64_t key) {
  const int top = random_level(ctx);
  const Addr node = ctx.alloc_line(kNodeBytes);
  co_await ctx.store(node + kKeyOff, key);
  co_await ctx.store(node + kTopOff, static_cast<std::uint64_t>(top));

  while (true) {
    FindResult r = co_await find(ctx, key);
    if (r.found) {
      ctx.count_op();
      co_return false;
    }
    for (int lvl = 0; lvl <= top; ++lvl) {
      co_await ctx.store(node + next_off(lvl), r.succs[static_cast<std::size_t>(lvl)]);
    }
    // Linking CAS at the bottom level decides membership; optionally lease
    // the predecessor's line across it (paper: lease the predecessor).
    const Addr pred0 = r.preds[0];
    const Addr succ0 = r.succs[0];
    if (opt_.use_lease) co_await ctx.lease(pred0 + next_off(0), opt_.lease_time);
    const bool ok = co_await ctx.cas(pred0 + next_off(0), succ0, node);
    if (opt_.use_lease) co_await ctx.release(pred0 + next_off(0));
    if (!ok) continue;

    // Link upper levels (helping re-find on failure).
    for (int lvl = 1; lvl <= top; ++lvl) {
      while (true) {
        const Addr pred = r.preds[static_cast<std::size_t>(lvl)];
        const Addr succ = r.succs[static_cast<std::size_t>(lvl)];
        const bool linked = co_await ctx.cas(pred + next_off(lvl), succ, node);
        if (linked) break;
        r = co_await find(ctx, key);  // refresh preds/succs
        if (!r.found) {
          // Node vanished (concurrent remove won before upper linking):
          // membership was decided at level 0, so report success.
          ctx.count_op();
          co_return true;
        }
        // Our node's next at this level may be stale; refresh it.
        co_await ctx.store(node + next_off(lvl), r.succs[static_cast<std::size_t>(lvl)]);
      }
    }
    ctx.count_op();
    co_return true;
  }
}

Task<bool> LockFreeSkipList::remove(Ctx& ctx, std::uint64_t key) {
  FindResult r = co_await find(ctx, key);
  if (!r.found) {
    ctx.count_op();
    co_return false;
  }
  const Addr victim = r.succs[0];
  const int top = static_cast<int>(co_await ctx.load(victim + kTopOff));

  // Mark top-down, levels > 0 (idempotent).
  for (int lvl = top; lvl >= 1; --lvl) {
    std::uint64_t succ_word = co_await ctx.load(victim + next_off(lvl));
    while (!marked(succ_word)) {
      co_await ctx.cas(victim + next_off(lvl), succ_word, succ_word | kMark);
      succ_word = co_await ctx.load(victim + next_off(lvl));
    }
  }
  // Bottom level: whoever sets the mark owns the removal.
  while (true) {
    const std::uint64_t succ_word = co_await ctx.load(victim + next_off(0));
    if (marked(succ_word)) {
      ctx.count_op();
      co_return false;  // someone else removed it
    }
    const bool i_marked = co_await ctx.cas(victim + next_off(0), succ_word, succ_word | kMark);
    if (i_marked) {
      co_await find(ctx, key);  // physical unlink via helping
      ctx.count_op();
      co_return true;
    }
  }
}

Task<bool> LockFreeSkipList::contains(Ctx& ctx, std::uint64_t key) {
  // Wait-free traversal that skips marked nodes without helping.
  Addr pred = head_;
  Addr curr = 0;
  for (int lvl = kLfSkipMaxLevel - 1; lvl >= 0; --lvl) {
    curr = ptr(co_await ctx.load(pred + next_off(lvl)));
    while (true) {
      std::uint64_t succ_word = co_await ctx.load(curr + next_off(lvl));
      while (marked(succ_word)) {
        curr = ptr(succ_word);
        succ_word = co_await ctx.load(curr + next_off(lvl));
      }
      const std::uint64_t ck = co_await ctx.load(curr + kKeyOff);
      if (ck < key) {
        pred = curr;
        curr = ptr(succ_word);
      } else {
        break;
      }
    }
  }
  const std::uint64_t ck = co_await ctx.load(curr + kKeyOff);
  ctx.count_op();
  co_return ck == key && curr != tail_;
}

Task<Addr> LockFreeSkipList::advance(Ctx& ctx, Addr node, int level, int steps) {
  Addr curr = node;
  for (int i = 0; i < steps; ++i) {
    if (curr == tail_) co_return curr;
    std::uint64_t next_word = co_await ctx.load(curr + next_off(level));
    Addr next = ptr(next_word);
    // Skip over marked (logically deleted) successors without counting them.
    while (next != 0 && next != tail_) {
      const std::uint64_t nn = co_await ctx.load(next + next_off(level));
      if (!marked(nn)) break;
      next = ptr(nn);
    }
    if (next == 0) co_return tail_;
    curr = next;
  }
  co_return curr;
}

Task<std::uint64_t> LockFreeSkipList::read_key(Ctx& ctx, Addr node) {
  co_return co_await ctx.load(node + kKeyOff);
}

std::vector<std::uint64_t> LockFreeSkipList::snapshot() const {
  std::vector<std::uint64_t> out;
  Addr curr = ptr(m_.memory().read(head_ + next_off(0)));
  while (curr != tail_ && curr != 0) {
    const std::uint64_t next = m_.memory().read(curr + next_off(0));
    if (!marked(next)) out.push_back(m_.memory().read(curr + kKeyOff));
    curr = ptr(next);
  }
  return out;
}

}  // namespace lrsim
