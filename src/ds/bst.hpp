// Copyright (c) 2026 lrsim authors. MIT license.
//
// Concurrent leaf-oriented (external) binary search tree with fine-grained
// per-node locks and optimistic validation, for the paper's low-contention
// experiments ("binary trees [31]").
//
// DESIGN.md substitution note: the paper cites the Natarajan–Mittal
// *lock-free* BST; we implement the same leaf-oriented structure (internal
// routing nodes, keys at leaves — the Ellen et al. shape) with per-node
// locks + validation instead of Info-record helping. The experiment only
// requires a scalable low-contention search tree, which this is; leases
// attach to the parent lock line exactly as in the other lock-based
// structures.
#pragma once

#include <optional>

#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "util/types.hpp"

namespace lrsim {

struct BstOptions {
  bool use_lease = false;  ///< Lease node-lock lines across critical sections.
  Cycle lease_time = 0;
};

/// Node (one line): word 0 = key, 1 = is_leaf, 2 = left, 3 = right,
/// 4 = lock, 5 = removed.
class ExternalBst {
 public:
  explicit ExternalBst(Machine& m, BstOptions opt = {});

  /// Keys must be < kInf1 (i.e. anything below 2^64-2).
  Task<bool> insert(Ctx& ctx, std::uint64_t key);
  Task<bool> remove(Ctx& ctx, std::uint64_t key);
  Task<bool> contains(Ctx& ctx, std::uint64_t key);

  std::vector<std::uint64_t> snapshot() const;

 private:
  struct SearchResult {
    Addr gparent;  ///< Grandparent of the leaf (internal).
    Addr parent;   ///< Parent of the leaf (internal).
    Addr leaf;
  };
  Task<SearchResult> search(Ctx& ctx, std::uint64_t key);

  Task<void> node_lock(Ctx& ctx, Addr node);
  Task<void> node_unlock(Ctx& ctx, Addr node);

  // `ctx` routes per-operation allocations to the calling core's heap
  // arena (parallel-kernel eligible); the constructor's sentinel nodes pass
  // nullptr and use the global region.
  Addr alloc_leaf(std::uint64_t key, Ctx* ctx = nullptr);
  Addr alloc_internal(std::uint64_t key, Addr left, Addr right, Ctx* ctx = nullptr);

  void snapshot_rec(Addr node, std::vector<std::uint64_t>& out) const;

  static constexpr Addr kKeyOff = 0;
  static constexpr Addr kIsLeafOff = 8;
  static constexpr Addr kLeftOff = 16;
  static constexpr Addr kRightOff = 24;
  static constexpr Addr kLockOff = 32;
  static constexpr Addr kRemovedOff = 40;
  static constexpr std::uint64_t kInf1 = ~1ull;
  static constexpr std::uint64_t kInf2 = ~0ull;

  Machine& m_;
  BstOptions opt_;
  Addr root_;  ///< Internal sentinel with key kInf2.
};

}  // namespace lrsim
