// Copyright (c) 2026 lrsim authors. MIT license.
//
// MultiQueues [Rihani, Sanders, Dementiev — SPAA'15]: a relaxed priority
// queue built from M sequential priority queues, each guarded by a
// try_lock. Insert picks a random queue and locks it; deleteMin locks two
// random queues and pops the smaller top.
//
// Lease integration follows the paper's Algorithm 4 exactly:
//  * insert: Lease(Locks[i]) before try_lock; Release after unlock.
//  * deleteMin: MultiLease(2, t, Locks[i], Locks[k]) before the try_locks;
//    unlock the losing queue and ReleaseAll *before* the (long) sequential
//    deleteMin — the paper explains that holding the lease through the
//    sequential pop would block other threads' fast retries.
//
// The sequential priority queues are binary min-heaps living in simulated
// memory, so the critical section generates realistic cache traffic ("the
// operations on the sequential priority queue can be long").
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "sync/locks.hpp"
#include "util/types.hpp"

namespace lrsim {

/// Sequential binary min-heap in simulated memory.
/// Layout: word 0 = size; words 1..capacity = elements.
class SimHeapPq {
 public:
  SimHeapPq(Machine& m, std::size_t capacity);

  /// Caller must hold the owning queue's lock.
  Task<bool> insert(Ctx& ctx, std::uint64_t key);
  Task<std::optional<std::uint64_t>> delete_min(Ctx& ctx);

  /// Functional peek at the minimum (0-cost; used for top comparisons the
  /// paper performs inside the locked section — we model the loads).
  Task<std::optional<std::uint64_t>> top(Ctx& ctx);

  std::size_t size() const { return static_cast<std::size_t>(m_.memory().read(base_)); }

 private:
  Addr slot(std::size_t i) const { return base_ + 8 * (1 + static_cast<Addr>(i)); }

  Machine& m_;
  Addr base_;
  std::size_t capacity_;
};

struct MultiQueueOptions {
  std::size_t num_queues = 8;  ///< The paper's MultiQueue benchmark uses 8.
  std::size_t capacity = 4096;
  bool use_lease = false;  ///< Single lease on insert, MultiLease on deleteMin.
  Cycle lease_time = 0;
};

class MultiQueue {
 public:
  MultiQueue(Machine& m, MultiQueueOptions opt = {});

  Task<void> insert(Ctx& ctx, std::uint64_t key);
  Task<std::optional<std::uint64_t>> delete_min(Ctx& ctx);

  std::size_t total_size() const;

 private:
  Machine& m_;
  MultiQueueOptions opt_;
  std::vector<std::unique_ptr<SimHeapPq>> queues_;
  std::vector<std::unique_ptr<TTSLock>> locks_;
};

}  // namespace lrsim
