// Copyright (c) 2026 lrsim authors. MIT license.
//
// Hybrid exact/coarse sharer tracking for the directory (docs/PROTOCOL.md
// §2a, docs/ENGINE.md "Hybrid sharer sets").
//
// The directory used to track sharers in a single std::uint64_t bitmask,
// capping the machine at 64 cores. SharerSet keeps that representation —
// bit-for-bit, same iteration order, same cost — whenever the machine has
// at most 64 cores, and switches to a classic sparse-directory hybrid
// above that (limited pointers + coarse vector, as in Gupta et al.'s
// Dir_i-B / coarse-vector schemes):
//
//  * kMask   — exact 64-bit inline bitmask. The only representation used
//              when num_cores <= 64; behaviour is identical to the old raw
//              mask (zero perf or output change for every legacy config).
//  * kPtrs   — exact limited-pointer set: up to kInlinePtrs core IDs packed
//              into the same inline word, sorted ascending. The common case
//              for >64-core machines (most lines have few sharers).
//  * kSpill  — exact full-width bitmap held in a bounded side pool (the
//              SharerStore "spill table", modeling a small SRAM of exact
//              sharer vectors for hot, widely-shared lines). A line is
//              promoted on inline-pointer overflow while a slot is free and
//              demoted (slot released) when its sharer set empties.
//  * kCoarse — *inexact* region vector: bit g covers the core-ID range
//              [g*granularity, (g+1)*granularity). Entered on pointer
//              overflow when no spill slot is free. Membership is a
//              SUPERSET of the true sharers: probes fan out to every core
//              of a covered group, and removing a single core is a no-op
//              (the group bit may cover other live sharers — see
//              Directory::eviction_notice). Exactness returns only when the
//              set is rewritten wholesale (an exclusive grant clears it).
//
// Coarse-mode extra probes are a *modeled* cost: the directory sends real
// invalidation probes to every covered core, so they appear in msgs_inv /
// msgs_ack and in the energy model exactly like back-invalidations, and are
// additionally tallied in Stats::probes_coarse.
//
// Every operation is deterministic and iteration is always in ascending
// core-ID order (matching the old `for (m; m; m &= m-1)` mask walk), so
// simulated results stay byte-identical between the serial and parallel
// kernels at every core count.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace lrsim {

/// Hard machine-wide core-count ceiling. Shared by MachineConfig docs,
/// Machine's constructor guardrail and the Directory's own validation —
/// the three used to disagree (config comment said 64, Machine threw,
/// a directly-constructed Directory silently shifted out of range).
inline constexpr int kMaxCores = 256;

/// Geometry + spill pool backing every SharerSet of one Directory. Owns
/// nothing per line; SharerSet values carry their inline word and (for
/// spilled lines) a slot index into this pool.
class SharerStore {
 public:
  static constexpr std::uint32_t kNoSlot = UINT32_MAX;
  static constexpr int kGroupBits = 64;  ///< Coarse vector width (one word).

  SharerStore() { configure(64, 0, 0); }

  /// Validates and applies the geometry. Throws std::invalid_argument on a
  /// core count outside [1, kMaxCores] or a granularity whose region vector
  /// would not fit the coarse word. Granularity 0 = auto: 1 for <= 64 cores
  /// (pure exact mask), else the smallest group size with <= 64 groups.
  void configure(int num_cores, int granularity, int spill_lines) {
    if (num_cores < 1 || num_cores > kMaxCores) {
      throw std::invalid_argument("num_cores must be in [1, " + std::to_string(kMaxCores) +
                                  "] (directory sharer-set limit, kMaxCores)");
    }
    if (granularity < 0) throw std::invalid_argument("sharer_granularity must be >= 0");
    if (spill_lines < 0) throw std::invalid_argument("sharer_spill_lines must be >= 0");
    if (granularity == 0) granularity = (num_cores + kGroupBits - 1) / kGroupBits;
    if ((num_cores + granularity - 1) / granularity > kGroupBits) {
      throw std::invalid_argument(
          "sharer_granularity " + std::to_string(granularity) + " needs more than " +
          std::to_string(kGroupBits) + " coarse groups for " + std::to_string(num_cores) +
          " cores (raise the granularity)");
    }
    num_cores_ = num_cores;
    gran_ = granularity;
    words_ = static_cast<std::size_t>((num_cores + 63) / 64);
    pool_.assign(static_cast<std::size_t>(spill_lines) * words_, 0);
    free_.clear();
    // LIFO free list, lowest slot on top: promotion order is deterministic.
    for (int s = spill_lines; s-- > 0;) free_.push_back(static_cast<std::uint32_t>(s));
  }

  int num_cores() const noexcept { return num_cores_; }
  int granularity() const noexcept { return gran_; }
  /// True when the machine exceeds the inline mask (hybrid representations
  /// engage); false = every set stays an exact 64-bit mask.
  bool wide() const noexcept { return num_cores_ > 64; }
  std::size_t words_per_set() const noexcept { return words_; }
  std::size_t spill_slots_free() const noexcept { return free_.size(); }
  std::size_t spill_capacity() const noexcept {
    return words_ == 0 ? 0 : pool_.size() / words_;
  }

  std::uint32_t acquire_slot() {
    if (free_.empty()) return kNoSlot;
    const std::uint32_t s = free_.back();
    free_.pop_back();
    std::uint64_t* w = slot_words(s);
    for (std::size_t i = 0; i < words_; ++i) w[i] = 0;
    return s;
  }
  void release_slot(std::uint32_t s) { free_.push_back(s); }

  std::uint64_t* slot_words(std::uint32_t s) noexcept { return &pool_[s * words_]; }
  const std::uint64_t* slot_words(std::uint32_t s) const noexcept { return &pool_[s * words_]; }

 private:
  int num_cores_ = 64;
  int gran_ = 1;
  std::size_t words_ = 1;
  std::vector<std::uint64_t> pool_;
  std::vector<std::uint32_t> free_;
};

/// Per-line sharer set. Plain 16-byte value living inside the directory's
/// Entry; all operations take the owning SharerStore. Default-constructed
/// = empty (FlatLineMap default-constructs entries).
class SharerSet {
 public:
  enum class Rep : std::uint8_t {
    kMask,    ///< Exact inline 64-bit bitmask (always, when <= 64 cores).
    kPtrs,    ///< Exact inline limited pointers (wide machines, few sharers).
    kSpill,   ///< Exact full bitmap in the store's spill pool.
    kCoarse,  ///< Inexact coarse region vector (superset of true sharers).
  };
  /// Inline limited-pointer capacity (16-bit IDs packed into the inline
  /// word). The 5th distinct sharer overflows to kSpill or kCoarse.
  static constexpr int kInlinePtrs = 4;

  Rep rep() const noexcept { return rep_; }
  /// Exact representations answer membership precisely; kCoarse only
  /// bounds it from above.
  bool exact() const noexcept { return rep_ != Rep::kCoarse; }

  bool empty(const SharerStore& st) const noexcept {
    switch (rep_) {
      case Rep::kMask:
      case Rep::kCoarse:
        return bits_ == 0;
      case Rep::kPtrs:
        return n_ == 0;
      case Rep::kSpill: {
        const std::uint64_t* w = st.slot_words(static_cast<std::uint32_t>(bits_));
        for (std::size_t i = 0; i < st.words_per_set(); ++i) {
          if (w[i] != 0) return false;
        }
        return true;
      }
    }
    return true;
  }

  /// Superset membership: true when `c` may hold an S copy. Exact for
  /// kMask/kPtrs/kSpill; for kCoarse, true for every core of a covered
  /// group.
  bool covers(const SharerStore& st, CoreId c) const noexcept {
    switch (rep_) {
      case Rep::kMask:
        return (bits_ & bit(c)) != 0;
      case Rep::kPtrs:
        for (int i = 0; i < n_; ++i) {
          if (ptr(i) == c) return true;
        }
        return false;
      case Rep::kSpill: {
        const std::uint64_t* w = st.slot_words(static_cast<std::uint32_t>(bits_));
        return (w[static_cast<std::size_t>(c) >> 6] & bit(c & 63)) != 0;
      }
      case Rep::kCoarse:
        return (bits_ & bit(group(st, c))) != 0;
    }
    return false;
  }

  /// Exact membership, or false when the representation cannot prove it
  /// (kCoarse). The directory uses this for the "requester already holds an
  /// S copy" upgrade optimisation, which must never fire on a guess.
  bool contains_exact(const SharerStore& st, CoreId c) const noexcept {
    return exact() && covers(st, c);
  }

  /// Adds `c` (idempotent). May promote the representation: kPtrs overflow
  /// goes to kSpill while the store has a free slot, else to kCoarse.
  void add(SharerStore& st, CoreId c) {
    if (!st.wide()) {  // <= 64 cores: the legacy exact-mask fast path
      bits_ |= bit(c);
      return;
    }
    switch (rep_) {
      case Rep::kMask:  // default-constructed empty set on a wide machine
        rep_ = Rep::kPtrs;
        bits_ = 0;
        n_ = 0;
        [[fallthrough]];
      case Rep::kPtrs: {
        int at = 0;
        while (at < n_ && ptr(at) < c) ++at;
        if (at < n_ && ptr(at) == c) return;
        if (n_ < kInlinePtrs) {  // insert sorted (ascending iteration order)
          for (int i = n_; i > at; --i) set_ptr(i, ptr(i - 1));
          set_ptr(at, c);
          ++n_;
          return;
        }
        overflow(st, c);
        return;
      }
      case Rep::kSpill: {
        std::uint64_t* w = st.slot_words(static_cast<std::uint32_t>(bits_));
        w[static_cast<std::size_t>(c) >> 6] |= bit(c & 63);
        return;
      }
      case Rep::kCoarse:
        bits_ |= bit(group(st, c));
        return;
    }
  }

  /// Removes `c` from an exact set. In kCoarse this is deliberately a
  /// NO-OP: a group bit may cover live sharers, so clearing it on one
  /// core's eviction would lose real members (membership must stay a
  /// superset — the invariant checker enforces exactly this rule).
  void remove(SharerStore& st, CoreId c) {
    switch (rep_) {
      case Rep::kMask:
        bits_ &= ~bit(c);
        return;
      case Rep::kPtrs: {
        for (int i = 0; i < n_; ++i) {
          if (ptr(i) != c) continue;
          for (int j = i + 1; j < n_; ++j) set_ptr(j - 1, ptr(j));
          set_ptr(--n_ == 0 ? 0 : n_, 0);
          return;
        }
        return;
      }
      case Rep::kSpill: {
        std::uint64_t* w = st.slot_words(static_cast<std::uint32_t>(bits_));
        w[static_cast<std::size_t>(c) >> 6] &= ~bit(c & 63);
        if (empty(st)) demote(st);  // free the slot for the next hot line
        return;
      }
      case Rep::kCoarse:
        return;  // superset semantics: never clear a possibly-live group
    }
  }

  /// Resets to the empty exact set, releasing any spill slot (demotion).
  void clear(SharerStore& st) {
    if (rep_ == Rep::kSpill) st.release_slot(static_cast<std::uint32_t>(bits_));
    rep_ = Rep::kMask;
    bits_ = 0;
    n_ = 0;
  }

  /// Appends every covered core except `exclude` (pass -1 to keep all) to
  /// `out`, in ascending core-ID order. For kCoarse this is the probe
  /// fan-out: every core of every covered group.
  void collect(const SharerStore& st, CoreId exclude, std::vector<CoreId>& out) const {
    switch (rep_) {
      case Rep::kMask:
        for (std::uint64_t m = bits_; m != 0; m &= m - 1) {
          const CoreId c = static_cast<CoreId>(std::countr_zero(m));
          if (c != exclude) out.push_back(c);
        }
        return;
      case Rep::kPtrs:
        for (int i = 0; i < n_; ++i) {
          if (ptr(i) != exclude) out.push_back(ptr(i));
        }
        return;
      case Rep::kSpill: {
        const std::uint64_t* w = st.slot_words(static_cast<std::uint32_t>(bits_));
        for (std::size_t i = 0; i < st.words_per_set(); ++i) {
          for (std::uint64_t m = w[i]; m != 0; m &= m - 1) {
            const CoreId c = static_cast<CoreId>(i * 64 + static_cast<std::size_t>(std::countr_zero(m)));
            if (c != exclude) out.push_back(c);
          }
        }
        return;
      }
      case Rep::kCoarse: {
        const int g = st.granularity();
        for (std::uint64_t m = bits_; m != 0; m &= m - 1) {
          const int grp = std::countr_zero(m);
          const CoreId hi = static_cast<CoreId>(
              std::min((grp + 1) * g, st.num_cores()));
          for (CoreId c = static_cast<CoreId>(grp * g); c < hi; ++c) {
            if (c != exclude) out.push_back(c);
          }
        }
        return;
      }
    }
  }

 private:
  /// Bit `i` of a 64-bit word, or 0 when `i` is out of range. The guard
  /// matters on wide machines: a default-constructed (empty) set is still
  /// kMask, and covers()/remove() may probe it with a core id >= 64 —
  /// shifting by that count would be UB, while "bit absent" is the right
  /// answer (an empty mask holds no core, and ~bit(c) leaves it unchanged).
  static constexpr std::uint64_t bit(std::int64_t i) noexcept {
    return static_cast<std::uint64_t>(i) >= 64
               ? 0
               : std::uint64_t{1} << static_cast<unsigned>(i);
  }
  static int group(const SharerStore& st, CoreId c) noexcept {
    return static_cast<int>(c) / st.granularity();
  }
  CoreId ptr(int i) const noexcept {
    return static_cast<CoreId>((bits_ >> (16 * i)) & 0xFFFF);
  }
  void set_ptr(int i, CoreId c) noexcept {
    const int sh = 16 * i;
    bits_ = (bits_ & ~(std::uint64_t{0xFFFF} << sh)) |
            (static_cast<std::uint64_t>(static_cast<std::uint16_t>(c)) << sh);
  }

  /// kPtrs is full and a 5th distinct core arrived: promote to an exact
  /// spill bitmap when the store has a free slot (the line is hot — five or
  /// more concurrent sharers), else fall back to the coarse region vector.
  void overflow(SharerStore& st, CoreId c) {
    const std::uint32_t slot = st.acquire_slot();
    if (slot != SharerStore::kNoSlot) {
      std::uint64_t* w = st.slot_words(slot);
      for (int i = 0; i < n_; ++i) {
        const CoreId p = ptr(i);
        w[static_cast<std::size_t>(p) >> 6] |= bit(p & 63);
      }
      w[static_cast<std::size_t>(c) >> 6] |= bit(c & 63);
      rep_ = Rep::kSpill;
      bits_ = slot;
      n_ = 0;
      return;
    }
    std::uint64_t groups = bit(group(st, c));
    for (int i = 0; i < n_; ++i) groups |= bit(group(st, ptr(i)));
    rep_ = Rep::kCoarse;
    bits_ = groups;
    n_ = 0;
  }

  /// kSpill emptied out: release the slot and return to the inline empty
  /// set, so another overflowing line can promote.
  void demote(SharerStore& st) {
    st.release_slot(static_cast<std::uint32_t>(bits_));
    rep_ = Rep::kPtrs;
    bits_ = 0;
    n_ = 0;
  }

  std::uint64_t bits_ = 0;  ///< Mask bits / packed pointers / slot / groups.
  Rep rep_ = Rep::kMask;
  std::uint8_t n_ = 0;  ///< Live inline pointers (kPtrs only).
};

}  // namespace lrsim
