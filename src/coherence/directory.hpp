// Copyright (c) 2026 lrsim authors. MIT license.
//
// The shared L2 + directory slice of the simulated machine.
//
// Key modeling decision (DESIGN.md §5.1): the directory keeps an independent
// FIFO request queue *per cache line* and services one transaction per line
// at a time — exactly Assumption 1 of the paper, and what Graphite
// implements ("The directory structure in Graphite implements a separate
// request queue per cache line", Section 7). Proposition 1 (at most one
// probe parked per core per line) holds by construction.
//
// Protocols: MSI (the paper's configuration) and MESI (Section 8 "Other
// Protocols") — under MESI a sole reader is granted the clean-Exclusive
// state and may upgrade to M silently; the directory tracks E and M owners
// identically (it cannot observe the silent upgrade) and probes report
// whether the line was actually dirty so writeback traffic is only charged
// when real.
//
// Capacity model: the shared L2 is inclusive and modeled as unbounded; the
// first touch of a line is charged a DRAM access. Private L1s are finite.
// This keeps back-invalidation (which the paper never discusses and which
// would interact with leases in unspecified ways) out of the model while
// preserving all contention behaviour, which lives entirely in L1<->L1
// transfers through the directory.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <functional>
#include <vector>

#include "coherence/callbacks.hpp"
#include "coherence/dir_table.hpp"
#include "coherence/config.hpp"
#include "coherence/sharer_set.hpp"
#include "coherence/topology.hpp"
#include "mem/memory.hpp"
#include "obs/observability.hpp"
#include "sim/event_queue.hpp"
#include "sim/trace.hpp"
#include "sim/stats.hpp"
#include "util/types.hpp"

namespace lrsim {

class CacheController;
class InvariantChecker;

class Directory {
 public:
  enum class ReqType : std::uint8_t { kGetS, kGetX };

  /// How a local L1 eviction leaves the line.
  enum class EvictKind : std::uint8_t {
    kShared,          ///< S victim: clears the core's sharer bit (eager tracking).
    kCleanExclusive,  ///< E victim: owner gone, nothing to write back.
    kDirty,           ///< M victim: writeback message.
  };

  /// Throws std::invalid_argument when num_cores is outside [1, kMaxCores]
  /// or the sharer-set geometry is invalid — direct construction used to
  /// silently shift core bits out of the 64-bit mask above 64 cores.
  Directory(EventQueue& ev, SimMemory& mem, const MachineConfig& cfg, Stats& stats)
      : ev_(ev), mem_(mem), cfg_(cfg), stats_(stats), topo_(cfg) {
    store_.configure(cfg.num_cores, cfg.sharer_granularity, cfg.sharer_spill_lines);
    if (cfg.l2_finite) l2_tags_ = std::make_unique<L2Tags>(cfg.l2_sets, cfg.l2_ways);
  }

  Directory(const Directory&) = delete;
  Directory& operator=(const Directory&) = delete;

  /// Wired by Machine: controller for each core, indexed by CoreId.
  void attach_cores(std::vector<CacheController*> cores) { cores_ = std::move(cores); }

  /// Optional tracing (Machine::enable_tracing). Null = off.
  void set_tracer(Tracer* t) { tracer_ = t; }

  /// Optional invariant checking (Machine::enable_invariants). Null = off.
  void set_invariants(InvariantChecker* inv) { inv_ = inv; }

  /// Optional observability (Machine::enable_observability). Null = off.
  void set_observer(Observability* obs) { obs_ = obs; }

  /// A request arriving at the directory (the caller has already modeled
  /// the core->directory network latency and counted the request message).
  /// `on_done(exclusive)` fires at the cycle the data/ownership reaches the
  /// requester; `exclusive` tells a GetS requester it received an E grant
  /// (MESI sole-reader case). GetX grants always pass true.
  ///
  /// `is_lease_req` tags requests issued on behalf of a Lease instruction;
  /// it is carried in the probe so the owning core can apply the Section 5
  /// prioritization policy.
  void request(CoreId requester, LineId line, ReqType type, bool is_lease_req,
               GrantFn on_done);

  /// Synchronous bookkeeping for an L1 eviction. Dirty lines send a
  /// writeback message; clean-exclusive victims just clear the owner;
  /// Shared victims drop out of the sharer set eagerly, so while the set is
  /// exact no invalidation probe is ever sent to a core without a copy
  /// (asserted by InvariantChecker::on_probe_send). In coarse mode the drop
  /// is a deliberate no-op — a group bit may cover live sharers, so
  /// membership stays a *superset* and the checker enforces the weaker
  /// coverage rule instead (SharerSet::remove).
  void eviction_notice(CoreId core, LineId line, EvictKind kind);

  // --- introspection (tests) ------------------------------------------------
  enum class LineSt : std::uint8_t { kUncached, kShared, kExclusive, kOwned, kModified };
  LineSt line_state(LineId line) const;
  CoreId owner_of(LineId line) const;
  std::size_t queue_depth(LineId line) const;
  /// Superset membership: may report cores of a covered coarse group that
  /// hold no copy (exact for <= 64 cores and for inline/spill sets).
  bool has_sharer(LineId line, CoreId c) const;
  /// True when the line's sharer set answers membership exactly (always for
  /// <= 64 cores; false only while a wide line sits in the coarse vector).
  bool sharers_exact(LineId line) const;

  /// True while a transaction for `line` is in flight (the invariant checker
  /// suspends directory/L1 cross-checks for busy lines).
  bool line_busy(LineId line) const;

  /// Peak per-line queue occupancy observed so far (Section 5 discusses
  /// whether leases grow directory queues).
  std::size_t peak_queue_depth() const noexcept { return peak_queue_depth_; }

  /// Finite-L2 introspection: is the line currently resident in the L2?
  /// Always true (conceptually) when the L2 is modeled as unbounded.
  bool l2_resident(LineId line) const;

 private:
  struct Req {
    CoreId requester = -1;
    ReqType type = ReqType::kGetS;
    bool is_lease_req = false;
    GrantFn on_done;  ///< Move-only: Reqs move through the per-line queue.
  };

  /// Per-line directory state. Lives in FlatLineMap's chunked pool, so an
  /// Entry& is stable forever — in-flight transaction legs re-find entries
  /// by LineId anyway, but introspection may cache references safely.
  ///
  /// The in-flight transaction's state is stored inline (active/
  /// legs_remaining/pending_*) instead of in per-transaction heap boxes:
  /// a line services one transaction at a time (Assumption 1), so one slot
  /// per entry suffices and every transaction leg captures only
  /// {this, line, small scalars}.
  struct Entry {
    LineSt st = LineSt::kUncached;
    CoreId owner = -1;   ///< Valid when st is kModified/kExclusive/kOwned.
    SharerSet sharers;   ///< Cores holding S copies (owner never a member).
                         ///< Exact inline mask for <= 64 cores; hybrid
                         ///< pointer/coarse/spill above (sharer_set.hpp) —
                         ///< coarse membership is a superset of the truth.
    std::uint32_t q_head = NodePool<Req>::kNil;  ///< Per-line FIFO (Assumption 1),
    std::uint32_t q_tail = NodePool<Req>::kNil;  ///< threaded through req_pool_.
    std::uint32_t q_len = 0;
    bool busy = false;        ///< A transaction for this line is in flight.
    bool touched = false;     ///< Line has been brought on-chip before.
    Cycle service_start = 0;  ///< Cycle the in-flight transaction was dequeued (busy only).
    // --- in-flight transaction (valid while busy) ---------------------------
    Req active;                ///< The request being serviced.
    int legs_remaining = 0;    ///< Outstanding probe/grant legs.
    LineSt pending_result = LineSt::kUncached;  ///< State granted on completion.
    bool pending_excl = false;                  ///< exclusive_grant for on_done.
  };

  /// Inclusive-L2 tag array for the optional finite-capacity model. Allows
  /// transient overflow when every victim candidate has a transaction in
  /// flight (documented in docs/PROTOCOL.md).
  class L2Tags {
   public:
    L2Tags(int sets, int ways) : sets_(sets), ways_(ways), sets_vec_(static_cast<std::size_t>(sets)) {}

    /// Records `line` as resident. Returns an LRU victim to evict if the
    /// set exceeded capacity and a non-busy candidate exists.
    std::optional<LineId> insert(LineId line, const std::function<bool(LineId)>& busy) {
      auto& set = sets_vec_[index(line)];
      for (auto& e : set) {
        if (e.line == line) {
          e.lru = ++tick_;
          return std::nullopt;
        }
      }
      set.push_back({line, ++tick_});
      if (static_cast<int>(set.size()) <= ways_) return std::nullopt;
      // Evict the LRU non-busy resident (never the just-inserted line).
      std::size_t victim = set.size();
      for (std::size_t i = 0; i + 1 < set.size(); ++i) {
        if (busy(set[i].line)) continue;
        if (victim == set.size() || set[i].lru < set[victim].lru) victim = i;
      }
      if (victim == set.size()) return std::nullopt;  // transient overflow
      const LineId out = set[victim].line;
      set.erase(set.begin() + static_cast<std::ptrdiff_t>(victim));
      return out;
    }

    bool present(LineId line) const {
      for (const auto& e : sets_vec_[index(line)]) {
        if (e.line == line) return true;
      }
      return false;
    }

    void remove(LineId line) {
      auto& set = sets_vec_[index(line)];
      for (std::size_t i = 0; i < set.size(); ++i) {
        if (set[i].line == line) {
          set.erase(set.begin() + static_cast<std::ptrdiff_t>(i));
          return;
        }
      }
    }

   private:
    struct Tag {
      LineId line;
      std::uint64_t lru;
    };
    std::size_t index(LineId line) const {
      return static_cast<std::size_t>(line % static_cast<LineId>(sets_));
    }
    int sets_;
    int ways_;
    std::vector<std::vector<Tag>> sets_vec_;
    std::uint64_t tick_ = 0;
  };

  /// Back-invalidates every L1 copy of an evicted L2 victim, then runs
  /// `done` (inclusion maintenance; leases on the victim are force-released
  /// by the controllers).
  void evict_l2_victim(LineId victim, EvictFn done);

  static bool owner_holds_line(const Entry& e);
  void begin_service(LineId line);
  /// Services the entry's `active` request (runs after the tag lookup).
  void service(LineId line);
  /// Finishes the in-flight transaction: installs `pending_result` for the
  /// active requester and forwards `pending_excl` to its on_done.
  void complete(LineId line);
  /// One transaction leg landed; completes when the last one does.
  void leg_done(LineId line);
  /// Sends one invalidation probe to sharer `c` (a leg of the in-flight
  /// transaction). Drops c from the sharer set when the ack arrives.
  /// `exact_expansion` = the target came from an exact set; probes fanned
  /// out from a coarse cover are additionally tallied in probes_coarse and
  /// checked under the superset (not exact-membership) invariant.
  void invalidate_sharer_leg(LineId line, CoreId c, bool is_lease_req, bool exact_expansion);
  /// Expands the line's sharer set into scratch_, excluding `exclude`
  /// (the requester — a coarse cover may include it). Returns exactness.
  bool gather_targets(const Entry& e, CoreId exclude);
  void push_req(Entry& e, Req&& r);
  Req pop_req(Entry& e);

  EventQueue& ev_;
  SimMemory& mem_;
  const MachineConfig& cfg_;
  Stats& stats_;
  Topology topo_;
  Tracer* tracer_ = nullptr;
  InvariantChecker* inv_ = nullptr;
  Observability* obs_ = nullptr;
  std::vector<CacheController*> cores_;
  SharerStore store_;          ///< Sharer-set geometry + exact spill pool.
  std::vector<CoreId> scratch_;  ///< Reusable probe-target expansion buffer.
  FlatLineMap<Entry> table_;   ///< Flat open-addressing line table (no erase).
  NodePool<Req> req_pool_;     ///< Backing pool for the per-line FIFOs.
  std::unique_ptr<L2Tags> l2_tags_;  ///< Null when the L2 is unbounded.
  std::size_t peak_queue_depth_ = 0;
};

}  // namespace lrsim
