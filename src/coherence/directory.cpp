// Copyright (c) 2026 lrsim authors. MIT license.

#include "coherence/directory.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

#include "coherence/controller.hpp"
#include "sim/invariants.hpp"

namespace lrsim {

void Directory::request(CoreId requester, LineId line, ReqType type, bool is_lease_req,
                        GrantFn on_done) {
  Entry& e = dir_[line];
  e.queue.push_back(Req{requester, type, is_lease_req, std::move(on_done)});
  peak_queue_depth_ = std::max(peak_queue_depth_, e.queue.size());
  if (inv_) inv_->on_dir_enqueue(line, requester);
  if (!e.busy) begin_service(line);
}

void Directory::begin_service(LineId line) {
  Entry& e = dir_[line];
  if (e.busy || e.queue.empty()) return;
  e.busy = true;
  e.service_start = ev_.now();
  Req req = std::move(e.queue.front());
  e.queue.pop_front();
  if (inv_) inv_->on_dir_service(line, req.requester);
  ++stats_.l2_accesses;  // directory/L2 tag lookup
  ev_.schedule_in(cfg_.l2_tag_latency,
                  [this, line, req = std::move(req)]() mutable { service(line, std::move(req)); });
}

void Directory::service(LineId line, Req req) {
  if (tracer_) {
    tracer_->emit(TraceEvent::kDirService, ev_.now(), -1, line,
                  static_cast<std::uint64_t>(req.requester));
  }
  Entry& e = dir_[line];
  const bool want_x = req.type == ReqType::kGetX;
  const bool moesi = cfg_.protocol == CoherenceProtocol::kMOESI;
  const bool owner_holds =
      (e.st == LineSt::kModified || e.st == LineSt::kExclusive || e.st == LineSt::kOwned);
  const bool owner_other = owner_holds && e.owner != req.requester;

  // --- MOESI: the requester upgrades its own Owned copy (O -> M) -----------
  if (e.st == LineSt::kOwned && e.owner == req.requester && want_x) {
    // It already has the data; invalidate every sharer and grant ownership.
    std::vector<CoreId> targets = e.sharers;
    auto remaining = std::make_shared<int>(static_cast<int>(targets.size()) + 1);
    auto req_shared = std::make_shared<Req>(std::move(req));
    auto leg_done = [this, line, remaining, req_shared] {
      if (--*remaining == 0) {
        complete(line, *req_shared, LineSt::kModified, /*exclusive_grant=*/true);
      }
    };
    for (CoreId c : targets) {
      ++stats_.msgs_inv;
      ev_.schedule_in(topo_.home_to_core(line, c), [this, line, c, req_shared, leg_done] {
        cores_[static_cast<std::size_t>(c)]->probe(
            line, ProbeType::kInvalidate, req_shared->is_lease_req, [this, line, c, leg_done](bool) {
              ++stats_.msgs_ack;
              ev_.schedule_in(topo_.core_to_home(c, line), leg_done);
            });
      });
    }
    ++stats_.msgs_ack;  // ownership grant, no data needed
    ev_.schedule_in(topo_.home_to_core(line, req_shared->requester), leg_done);
    return;
  }

  // --- line is owned (M, E or O) at another core: probe the owner ----------
  if (owner_other) {
    const CoreId owner = e.owner;
    // GetS under MOESI leaves the dirty owner in O (no writeback);
    // otherwise the classic downgrade-with-writeback.
    const ProbeType pt = want_x ? ProbeType::kInvalidate
                                : (moesi ? ProbeType::kDowngradeToOwned : ProbeType::kDowngrade);
    const LineSt result = want_x ? LineSt::kModified : (moesi ? LineSt::kOwned : LineSt::kShared);
    if (want_x) {
      ++stats_.msgs_inv;
    } else {
      ++stats_.msgs_downgrade;
    }
    // A GetX on an O line must also invalidate the S sharers.
    std::vector<CoreId> targets;
    if (want_x && e.st == LineSt::kOwned) {
      for (CoreId c : e.sharers)
        if (c != req.requester) targets.push_back(c);
    }
    auto remaining = std::make_shared<int>(static_cast<int>(targets.size()) + 1);
    auto req_shared = std::make_shared<Req>(std::move(req));
    auto leg_done = [this, line, remaining, req_shared, result, want_x] {
      if (--*remaining == 0) complete(line, *req_shared, result, /*exclusive_grant=*/want_x);
    };
    for (CoreId c : targets) {
      ++stats_.msgs_inv;
      ev_.schedule_in(topo_.home_to_core(line, c), [this, line, c, req_shared, leg_done] {
        cores_[static_cast<std::size_t>(c)]->probe(
            line, ProbeType::kInvalidate, req_shared->is_lease_req, [this, line, c, leg_done](bool) {
              ++stats_.msgs_ack;
              ev_.schedule_in(topo_.core_to_home(c, line), leg_done);
            });
      });
    }
    ev_.schedule_in(topo_.home_to_core(line, owner),
                    [this, line, owner, want_x, pt, req_shared, leg_done]() mutable {
      // The probe may be parked behind a lease at the owner; the callback
      // fires once the owner has actually relinquished the line (bounded by
      // MAX_LEASE_TIME — Proposition 2). `dirty` says whether the owner had
      // really modified it (an E owner may still be clean).
      cores_[static_cast<std::size_t>(owner)]->probe(
          line, pt, req_shared->is_lease_req,
          [this, line, owner, want_x, pt, req_shared, leg_done](bool dirty) mutable {
            // Cache-to-cache forward to the requester plus an ack to the
            // directory; a classic downgrade of a dirty line also writes the
            // data back to L2 (a MOESI downgrade-to-O keeps it at the owner).
            ++stats_.msgs_data;
            ++stats_.msgs_ack;
            if (!want_x && dirty && pt == ProbeType::kDowngrade) ++stats_.msgs_wb;
            const Cycle fwd = topo_.latency(owner, req_shared->requester);
            ev_.schedule_in(fwd, leg_done);
          });
    });
    return;
  }

  // --- line is Shared (or owned by the requester itself, a benign race
  //     after a silent eviction + re-request) ------------------------------
  if (e.st == LineSt::kShared && want_x) {
    // Invalidate every other sharer; data comes from L2 unless the
    // requester already holds an S copy (upgrade). Sharer entries can be
    // stale after silent S evictions; the probe finds the line absent and
    // acks immediately, exactly like a real sparse directory.
    std::vector<CoreId> targets;
    for (CoreId c : e.sharers)
      if (c != req.requester) targets.push_back(c);
    const bool requester_has_s =
        std::find(e.sharers.begin(), e.sharers.end(), req.requester) != e.sharers.end();

    auto remaining = std::make_shared<int>(static_cast<int>(targets.size()) + 1);
    auto req_shared = std::make_shared<Req>(std::move(req));
    auto leg_done = [this, line, remaining, req_shared] {
      if (--*remaining == 0) {
        complete(line, *req_shared, LineSt::kModified, /*exclusive_grant=*/true);
      }
    };

    for (CoreId c : targets) {
      ++stats_.msgs_inv;
      ev_.schedule_in(topo_.home_to_core(line, c), [this, line, c, req_shared, leg_done] {
        cores_[static_cast<std::size_t>(c)]->probe(
            line, ProbeType::kInvalidate, req_shared->is_lease_req, [this, line, c, leg_done](bool) {
              ++stats_.msgs_ack;
              ev_.schedule_in(topo_.core_to_home(c, line), leg_done);
            });
      });
    }
    // Grant leg: data (or just an ownership grant for an upgrade).
    Cycle grant_lat = topo_.home_to_core(line, req_shared->requester);
    if (requester_has_s) {
      ++stats_.msgs_ack;  // upgrade grant, no data needed
    } else {
      ++stats_.msgs_data;
      grant_lat += cfg_.l2_data_latency;
    }
    ev_.schedule_in(grant_lat, leg_done);
    return;
  }

  if (e.st == LineSt::kShared && !want_x) {
    ++stats_.msgs_data;
    const Cycle grant = cfg_.l2_data_latency + topo_.home_to_core(line, req.requester);
    ev_.schedule_in(grant, [this, line, req = std::move(req)]() mutable {
      complete(line, req, LineSt::kShared, /*exclusive_grant=*/false);
    });
    return;
  }

  // --- Uncached (or owned-by-requester, treated as an L2 refill) -----------
  Cycle lat = 0;
  const bool refill = !e.touched;
  if (refill) {
    ++stats_.dram_accesses;
    lat += cfg_.dram_latency;
    e.touched = true;
  }
  lat += cfg_.l2_data_latency + topo_.home_to_core(line, req.requester);
  ++stats_.msgs_data;
  // MESI: a sole reader gets the clean-Exclusive state and can write later
  // without another transaction.
  const bool grant_e = !want_x && cfg_.protocol != CoherenceProtocol::kMSI;
  const LineSt result = want_x ? LineSt::kModified : (grant_e ? LineSt::kExclusive : LineSt::kShared);
  auto finish = [this, line, lat, result, want_x, grant_e, req = std::move(req)]() mutable {
    ev_.schedule_in(lat, [this, line, result, want_x, grant_e, req = std::move(req)]() mutable {
      complete(line, req, result, /*exclusive_grant=*/want_x || grant_e);
    });
  };
  if (l2_tags_ && refill) {
    // Finite inclusive L2: the refill may displace a victim, whose L1
    // copies must be back-invalidated first (inclusion).
    auto busy = [this](LineId l) {
      auto it = dir_.find(l);
      return it != dir_.end() && (it->second.busy || !it->second.queue.empty());
    };
    std::optional<LineId> victim = l2_tags_->insert(line, busy);
    if (victim.has_value()) {
      evict_l2_victim(*victim, std::move(finish));
      return;
    }
  }
  finish();
}

void Directory::evict_l2_victim(LineId victim, EvictFn done) {
  ++stats_.l2_evictions;
  // The victim's directory entry is cleared below while L1 copies are still
  // being chased down; suspend cross-checks for it until done. The boxed
  // continuation is shared across every back-invalidation leg, which keeps
  // the per-leg closures small (L2 evictions are off the hot path, so the
  // one allocation is fine).
  if (inv_) inv_->on_l2_evict_begin(victim);
  auto done_shared = std::make_shared<EvictFn>(std::move(done));
  auto finish = [this, victim, done_shared] {
    if (inv_) {
      inv_->on_l2_evict_end(victim);
      inv_->on_line_event(victim);
    }
    (*done_shared)();
  };
  Entry& v = dir_[victim];
  std::vector<CoreId> holders;
  if (owner_holds_line(v) && v.owner >= 0) holders.push_back(v.owner);
  for (CoreId c : v.sharers) {
    if (std::find(holders.begin(), holders.end(), c) == holders.end()) holders.push_back(c);
  }
  v.st = LineSt::kUncached;
  v.owner = -1;
  v.sharers.clear();
  v.touched = false;  // next access pays DRAM again
  if (holders.empty()) {
    finish();
    return;
  }
  auto remaining = std::make_shared<int>(static_cast<int>(holders.size()));
  for (CoreId c : holders) {
    ++stats_.msgs_inv;
    ev_.schedule_in(topo_.home_to_core(victim, c), [this, victim, c, remaining, finish] {
      cores_[static_cast<std::size_t>(c)]->back_invalidate(
          victim, [this, victim, c, remaining, finish](bool dirty) {
            ++stats_.msgs_ack;
            if (dirty) ++stats_.msgs_wb;
            ev_.schedule_in(topo_.core_to_home(c, victim), [remaining, finish] {
              if (--*remaining == 0) finish();
            });
          });
    });
  }
}

bool Directory::l2_resident(LineId line) const {
  if (!l2_tags_) {
    auto it = dir_.find(line);
    return it != dir_.end() && it->second.touched;
  }
  return l2_tags_->present(line);
}

void Directory::complete(LineId line, const Req& req, LineSt result, bool exclusive_grant) {
  if (tracer_) {
    tracer_->emit(TraceEvent::kDirComplete, ev_.now(), -1, line,
                  static_cast<std::uint64_t>(req.requester));
  }
  Entry& e = dir_[line];
  switch (result) {
    case LineSt::kModified:
    case LineSt::kExclusive:
      e.st = result;
      e.owner = req.requester;
      e.sharers.clear();
      break;
    case LineSt::kOwned:
      // MOESI read of a dirty line: the old owner keeps the data in O; the
      // requester joins as a sharer.
      e.st = LineSt::kOwned;
      add_sharer(e, req.requester);
      break;
    case LineSt::kShared: {
      std::vector<CoreId> sharers;
      if (owner_holds_line(e) && e.owner >= 0) {
        sharers = e.sharers;         // O sharers survive the flush
        sharers.push_back(e.owner);  // old owner was downgraded to S
      } else if (e.st == LineSt::kShared) {
        sharers = e.sharers;
      }
      e.st = LineSt::kShared;
      e.sharers = std::move(sharers);
      add_sharer(e, req.requester);
      e.owner = -1;
      break;
    }
    case LineSt::kUncached:
      assert(false && "cannot complete to Uncached");
      break;
  }
  e.touched = true;
  if (obs_) obs_->on_dir_service(line, req.requester, e.service_start, ev_.now());
  // The requester installs the line and retires its instruction now.
  req.on_done(exclusive_grant);
  e.busy = false;
  if (!e.queue.empty()) {
    // Defer to a fresh event: keeps per-transaction callback chains shallow
    // and preserves deterministic FIFO order.
    ev_.schedule_in(0, [this, line] { begin_service(line); });
  }
  if (inv_) inv_->on_line_event(line);
}

bool Directory::owner_holds_line(const Entry& e) {
  return e.st == LineSt::kModified || e.st == LineSt::kExclusive || e.st == LineSt::kOwned;
}

void Directory::add_sharer(Entry& e, CoreId c) {
  if (std::find(e.sharers.begin(), e.sharers.end(), c) == e.sharers.end()) e.sharers.push_back(c);
}

void Directory::eviction_notice(CoreId core, LineId line, EvictKind kind) {
  auto it = dir_.find(line);
  if (it == dir_.end()) return;
  Entry& e = it->second;
  switch (kind) {
    case EvictKind::kDirty:
      ++stats_.msgs_wb;
      if (e.st == LineSt::kOwned && e.owner == core) {
        // The O provider left; its sharers keep their S copies and the
        // data now lives in L2.
        e.st = e.sharers.empty() ? LineSt::kUncached : LineSt::kShared;
        e.owner = -1;
        break;
      }
      [[fallthrough]];
    case EvictKind::kCleanExclusive:
      if ((e.st == LineSt::kModified || e.st == LineSt::kExclusive) && e.owner == core) {
        e.st = LineSt::kUncached;
        e.owner = -1;
      }
      break;
    case EvictKind::kShared:
      e.sharers.erase(std::remove(e.sharers.begin(), e.sharers.end(), core), e.sharers.end());
      break;
  }
  if (inv_) inv_->on_line_event(line);
}

Directory::LineSt Directory::line_state(LineId line) const {
  auto it = dir_.find(line);
  return it == dir_.end() ? LineSt::kUncached : it->second.st;
}

CoreId Directory::owner_of(LineId line) const {
  auto it = dir_.find(line);
  return it == dir_.end() ? -1 : it->second.owner;
}

std::size_t Directory::queue_depth(LineId line) const {
  auto it = dir_.find(line);
  return it == dir_.end() ? 0 : it->second.queue.size();
}

bool Directory::has_sharer(LineId line, CoreId c) const {
  auto it = dir_.find(line);
  if (it == dir_.end()) return false;
  const auto& s = it->second.sharers;
  return std::find(s.begin(), s.end(), c) != s.end();
}

bool Directory::line_busy(LineId line) const {
  auto it = dir_.find(line);
  return it != dir_.end() && (it->second.busy || !it->second.queue.empty());
}

}  // namespace lrsim
