// Copyright (c) 2026 lrsim authors. MIT license.

#include "coherence/directory.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <memory>

#include "coherence/controller.hpp"
#include "sim/invariants.hpp"

namespace lrsim {

void Directory::push_req(Entry& e, Req&& r) {
  const std::uint32_t n = req_pool_.alloc(std::move(r));
  if (e.q_tail == NodePool<Req>::kNil) {
    e.q_head = n;
  } else {
    req_pool_.set_next(e.q_tail, n);
  }
  e.q_tail = n;
  ++e.q_len;
}

Directory::Req Directory::pop_req(Entry& e) {
  const std::uint32_t n = e.q_head;
  e.q_head = req_pool_.next(n);
  if (e.q_head == NodePool<Req>::kNil) e.q_tail = NodePool<Req>::kNil;
  --e.q_len;
  return req_pool_.take(n);
}

void Directory::request(CoreId requester, LineId line, ReqType type, bool is_lease_req,
                        GrantFn on_done) {
  Entry& e = table_[line];
  push_req(e, Req{requester, type, is_lease_req, std::move(on_done)});
  peak_queue_depth_ = std::max(peak_queue_depth_, static_cast<std::size_t>(e.q_len));
  if (inv_) inv_->on_dir_enqueue(line, requester);
  if (!e.busy) begin_service(line);
}

void Directory::begin_service(LineId line) {
  Entry& e = table_[line];
  if (e.busy || e.q_len == 0) return;
  e.busy = true;
  e.service_start = ev_.now();
  e.active = pop_req(e);
  if (inv_) inv_->on_dir_service(line, e.active.requester);
  ++stats_.l2_accesses;  // directory/L2 tag lookup
  ev_.schedule_in(cfg_.l2_tag_latency, [this, line] { service(line); });
}

bool Directory::gather_targets(const Entry& e, CoreId exclude) {
  scratch_.clear();
  e.sharers.collect(store_, exclude, scratch_);
  return e.sharers.exact();
}

void Directory::invalidate_sharer_leg(LineId line, CoreId c, bool is_lease_req,
                                      bool exact_expansion) {
  ++stats_.msgs_inv;
  // An exact set (eager eviction notices) guarantees the target holds a
  // copy at send time — the checker rejects probes to ghosts. A coarse
  // cover only bounds membership from above: the extra fan-out is a
  // modeled cost (billed as real inv/ack traffic, tallied separately) and
  // the checker instead verifies coverage of every true sharer.
  if (!exact_expansion) ++stats_.probes_coarse;
  if (inv_) inv_->on_probe_send(line, c, exact_expansion);
  // The ack's return transit rides inside the probe's completion event
  // (controller.hpp): the callback below runs at delivery + 1 + transit,
  // the same absolute cycle the former separate tail leg fired. Dropping
  // the sharer there (instead of at the core) is invisible: the line
  // stays busy until complete(), which rewrites the set for every
  // exclusive result, and the invariant cross-check skips busy lines.
  const Cycle ack_transit = topo_.core_to_home(c, line);
  ev_.schedule_in(topo_.home_to_core(line, c), [this, line, c, is_lease_req, ack_transit] {
    cores_[static_cast<std::size_t>(c)]->probe(
        line, ProbeType::kInvalidate, is_lease_req, ack_transit, [this, line, c](bool) {
          ++stats_.msgs_ack;
          table_[line].sharers.remove(store_, c);  // the copy is gone now
          leg_done(line);
        });
  });
}

void Directory::leg_done(LineId line) {
  Entry& e = table_[line];
  if (--e.legs_remaining == 0) complete(line);
}

void Directory::service(LineId line) {
  Entry& e = table_[line];
  if (tracer_) {
    tracer_->emit(TraceEvent::kDirService, ev_.now(), -1, line,
                  static_cast<std::uint64_t>(e.active.requester));
  }
  const Req& req = e.active;
  const bool want_x = req.type == ReqType::kGetX;
  const bool moesi = cfg_.protocol == CoherenceProtocol::kMOESI;
  const bool owner_holds =
      (e.st == LineSt::kModified || e.st == LineSt::kExclusive || e.st == LineSt::kOwned);
  const bool owner_other = owner_holds && e.owner != req.requester;

  // --- MOESI: the requester upgrades its own Owned copy (O -> M) -----------
  if (e.st == LineSt::kOwned && e.owner == req.requester && want_x) {
    // It already has the data; invalidate every sharer and grant ownership.
    // Excluding the requester is a no-op for exact sets (the owner is never
    // a member) but necessary under a coarse cover, which may include it.
    const bool exact = gather_targets(e, req.requester);
    e.legs_remaining = static_cast<int>(scratch_.size()) + 1;
    e.pending_result = LineSt::kModified;
    e.pending_excl = true;
    for (CoreId c : scratch_) invalidate_sharer_leg(line, c, req.is_lease_req, exact);
    ++stats_.msgs_ack;  // ownership grant, no data needed
    ev_.schedule_tail_in(topo_.home_to_core(line, req.requester), [this, line] { leg_done(line); });
    return;
  }

  // --- line is owned (M, E or O) at another core: probe the owner ----------
  if (owner_other) {
    const CoreId owner = e.owner;
    // GetS under MOESI leaves the dirty owner in O (no writeback);
    // otherwise the classic downgrade-with-writeback.
    const ProbeType pt = want_x ? ProbeType::kInvalidate
                                : (moesi ? ProbeType::kDowngradeToOwned : ProbeType::kDowngrade);
    e.pending_result = want_x ? LineSt::kModified : (moesi ? LineSt::kOwned : LineSt::kShared);
    e.pending_excl = want_x;
    if (want_x) {
      ++stats_.msgs_inv;
    } else {
      ++stats_.msgs_downgrade;
    }
    // A GetX on an O line must also invalidate the S sharers.
    scratch_.clear();
    bool exact = true;
    if (want_x && e.st == LineSt::kOwned) {
      exact = gather_targets(e, req.requester);
      // A coarse cover may also include the owner; it gets the owner probe
      // below, not a sharer invalidation (no-op erase for exact sets).
      scratch_.erase(std::remove(scratch_.begin(), scratch_.end(), owner), scratch_.end());
    }
    e.legs_remaining = static_cast<int>(scratch_.size()) + 1;
    for (CoreId c : scratch_) invalidate_sharer_leg(line, c, req.is_lease_req, exact);
    const bool is_lease_req = req.is_lease_req;
    if (inv_) inv_->on_probe_send(line, owner, /*exact_expansion=*/true);
    // Cache-to-cache transfer: the leg completes when the forwarded data
    // reaches the requester, so the return transit is owner→requester.
    // Computed at send time — the requester is pinned for the whole busy
    // transaction (parked probes included), so the latency is stable.
    const Cycle fwd = topo_.latency(owner, req.requester);
    ev_.schedule_in(topo_.home_to_core(line, owner),
                    [this, line, owner, want_x, pt, is_lease_req, fwd] {
      // The probe may be parked behind a lease at the owner; the callback
      // fires once the owner has actually relinquished the line (bounded by
      // MAX_LEASE_TIME — Proposition 2), plus the forward transit. `dirty`
      // says whether the owner had really modified it (an E owner may
      // still be clean).
      cores_[static_cast<std::size_t>(owner)]->probe(
          line, pt, is_lease_req, fwd, [this, line, want_x, pt](bool dirty) {
            // Cache-to-cache forward to the requester plus an ack to the
            // directory; a classic downgrade of a dirty line also writes the
            // data back to L2 (a MOESI downgrade-to-O keeps it at the owner).
            ++stats_.msgs_data;
            ++stats_.msgs_ack;
            if (!want_x && dirty && pt == ProbeType::kDowngrade) ++stats_.msgs_wb;
            leg_done(line);
          });
    });
    return;
  }

  // --- line is Shared (or owned by the requester itself, a benign race
  //     after an eviction + re-request) ------------------------------------
  if (e.st == LineSt::kShared && want_x) {
    // Invalidate every other sharer; data comes from L2 unless the
    // requester provably holds an S copy (upgrade). While the set is exact
    // — eager eviction notices drop a sharer the moment the copy dies —
    // every probed core really holds the line at send time. Under a coarse
    // cover the fan-out reaches whole groups (tallied in probes_coarse)
    // and the upgrade optimisation is suppressed: contains_exact never
    // fires on a guess, so a data response is sent — both are the modeled
    // cost of the inexact representation.
    const bool exact = gather_targets(e, req.requester);
    const bool requester_has_s = e.sharers.contains_exact(store_, req.requester);
    e.legs_remaining = static_cast<int>(scratch_.size()) + 1;
    e.pending_result = LineSt::kModified;
    e.pending_excl = true;
    for (CoreId c : scratch_) invalidate_sharer_leg(line, c, req.is_lease_req, exact);
    // Grant leg: data (or just an ownership grant for an upgrade).
    Cycle grant_lat = topo_.home_to_core(line, req.requester);
    if (requester_has_s) {
      ++stats_.msgs_ack;  // upgrade grant, no data needed
    } else {
      ++stats_.msgs_data;
      grant_lat += cfg_.l2_data_latency;
    }
    ev_.schedule_tail_in(grant_lat, [this, line] { leg_done(line); });
    return;
  }

  if (e.st == LineSt::kShared && !want_x) {
    ++stats_.msgs_data;
    e.legs_remaining = 1;
    e.pending_result = LineSt::kShared;
    e.pending_excl = false;
    const Cycle grant = cfg_.l2_data_latency + topo_.home_to_core(line, req.requester);
    ev_.schedule_tail_in(grant, [this, line] { leg_done(line); });
    return;
  }

  // --- Uncached (or owned-by-requester, treated as an L2 refill) -----------
  Cycle lat = 0;
  const bool refill = !e.touched;
  if (refill) {
    ++stats_.dram_accesses;
    lat += cfg_.dram_latency;
    e.touched = true;
  }
  lat += cfg_.l2_data_latency + topo_.home_to_core(line, req.requester);
  ++stats_.msgs_data;
  // MESI: a sole reader gets the clean-Exclusive state and can write later
  // without another transaction.
  const bool grant_e = !want_x && cfg_.protocol != CoherenceProtocol::kMSI;
  e.pending_result =
      want_x ? LineSt::kModified : (grant_e ? LineSt::kExclusive : LineSt::kShared);
  e.pending_excl = want_x || grant_e;
  e.legs_remaining = 1;
  auto finish = [this, line, lat] {
    ev_.schedule_tail_in(lat, [this, line] { leg_done(line); });
  };
  if (l2_tags_ && refill) {
    // Finite inclusive L2: the refill may displace a victim, whose L1
    // copies must be back-invalidated first (inclusion).
    auto busy = [this](LineId l) {
      const Entry* p = table_.find(l);
      return p != nullptr && (p->busy || p->q_len != 0);
    };
    std::optional<LineId> victim = l2_tags_->insert(line, busy);
    if (victim.has_value()) {
      evict_l2_victim(*victim, std::move(finish));
      return;
    }
  }
  finish();
}

void Directory::evict_l2_victim(LineId victim, EvictFn done) {
  ++stats_.l2_evictions;
  // The victim's directory entry is cleared below while L1 copies are still
  // being chased down; suspend cross-checks for it until done. The boxed
  // continuation is shared across every back-invalidation leg, which keeps
  // the per-leg closures small (L2 evictions are off the hot path, so the
  // one allocation is fine).
  if (inv_) inv_->on_l2_evict_begin(victim);
  auto done_shared = std::make_shared<EvictFn>(std::move(done));
  auto finish = [this, victim, done_shared] {
    if (inv_) {
      inv_->on_l2_evict_end(victim);
      inv_->on_line_event(victim);
    }
    (*done_shared)();
  };
  Entry& v = table_[victim];
  std::vector<CoreId> holders;
  if (owner_holds_line(v) && v.owner >= 0) holders.push_back(v.owner);
  const bool exact = gather_targets(v, /*exclude=*/-1);
  for (CoreId c : scratch_) {
    if (std::find(holders.begin(), holders.end(), c) != holders.end()) continue;
    holders.push_back(c);
    // Back-invalidations fanned out from a coarse cover are extra modeled
    // traffic, same as transaction probes.
    if (!exact) ++stats_.probes_coarse;
  }
  v.st = LineSt::kUncached;
  v.owner = -1;
  v.sharers.clear(store_);
  v.touched = false;  // next access pays DRAM again
  if (holders.empty()) {
    finish();
    return;
  }
  auto remaining = std::make_shared<int>(static_cast<int>(holders.size()));
  for (CoreId c : holders) {
    ++stats_.msgs_inv;
    // As with probes, the ack's return transit is folded into the
    // back-invalidation's completion event (same absolute arrival cycle).
    const Cycle ack_transit = topo_.core_to_home(c, victim);
    ev_.schedule_in(topo_.home_to_core(victim, c),
                    [this, victim, c, remaining, finish, ack_transit] {
      cores_[static_cast<std::size_t>(c)]->back_invalidate(
          victim, ack_transit, [this, remaining, finish](bool dirty) {
            ++stats_.msgs_ack;
            if (dirty) ++stats_.msgs_wb;
            if (--*remaining == 0) finish();
          });
    });
  }
}

bool Directory::l2_resident(LineId line) const {
  if (!l2_tags_) {
    const Entry* p = table_.find(line);
    return p != nullptr && p->touched;
  }
  return l2_tags_->present(line);
}

void Directory::complete(LineId line) {
  Entry& e = table_[line];
  Req req = std::move(e.active);
  const LineSt result = e.pending_result;
  const bool exclusive_grant = e.pending_excl;
  if (tracer_) {
    tracer_->emit(TraceEvent::kDirComplete, ev_.now(), -1, line,
                  static_cast<std::uint64_t>(req.requester));
  }
  switch (result) {
    case LineSt::kModified:
    case LineSt::kExclusive:
      e.st = result;
      e.owner = req.requester;
      // Wholesale rewrite: releases any spill slot and restores exactness
      // after a coarse episode (the sole owner is tracked precisely again).
      e.sharers.clear(store_);
      break;
    case LineSt::kOwned:
      // MOESI read of a dirty line: the old owner keeps the data in O; the
      // requester joins as a sharer.
      e.st = LineSt::kOwned;
      e.sharers.add(store_, req.requester);
      break;
    case LineSt::kShared: {
      if (owner_holds_line(e) && e.owner >= 0) {
        e.sharers.add(store_, e.owner);  // O sharers survive the flush;
                                         // old owner drops to S
      } else if (e.st != LineSt::kShared) {
        e.sharers.clear(store_);
      }
      e.st = LineSt::kShared;
      e.sharers.add(store_, req.requester);
      e.owner = -1;
      break;
    }
    case LineSt::kUncached:
      assert(false && "cannot complete to Uncached");
      break;
  }
  e.touched = true;
  if (obs_) obs_->on_dir_service(line, req.requester, e.service_start, ev_.now());
  e.busy = false;
  if (e.q_len != 0) {
    // Defer to a fresh event: keeps per-transaction callback chains shallow
    // and preserves deterministic FIFO order. Scheduled *before* on_done so
    // the inline fast path sees it: a hit issued inside on_done then finds
    // the window occupied and declines, exactly as it must while the queue
    // still has waiters.
    ev_.schedule_in(0, [this, line] { begin_service(line); });
  }
  // The requester installs the line and retires its instruction now. This is
  // the transaction's final scheduling-relevant action — leg events are
  // tail-marked (schedule_tail_in), so an L1 hit issued from the resumed
  // requester may complete inline when the event window is clear.
  req.on_done(exclusive_grant);
  // State-only cross-check; schedules nothing and is insensitive to any
  // inline now_ advance inside on_done.
  if (inv_) inv_->on_line_event(line);
}

bool Directory::owner_holds_line(const Entry& e) {
  return e.st == LineSt::kModified || e.st == LineSt::kExclusive || e.st == LineSt::kOwned;
}

void Directory::eviction_notice(CoreId core, LineId line, EvictKind kind) {
  Entry* p = table_.find(line);
  if (p == nullptr) return;
  Entry& e = *p;
  switch (kind) {
    case EvictKind::kDirty:
      ++stats_.msgs_wb;
      if (e.st == LineSt::kOwned && e.owner == core) {
        // The O provider left; its sharers keep their S copies and the
        // data now lives in L2.
        e.st = e.sharers.empty(store_) ? LineSt::kUncached : LineSt::kShared;
        e.owner = -1;
        break;
      }
      [[fallthrough]];
    case EvictKind::kCleanExclusive:
      if ((e.st == LineSt::kModified || e.st == LineSt::kExclusive) && e.owner == core) {
        e.st = LineSt::kUncached;
        e.owner = -1;
      }
      break;
    case EvictKind::kShared:
      // Exact sets drop the sharer eagerly (keeps the no-stale-probe
      // invariant sharp). Under a coarse cover this is a deliberate no-op
      // inside SharerSet::remove: the group bit may cover other live
      // sharers, so clearing it would break the membership-superset rule
      // (tests/sharer_set_test.cpp has the regression for the naive clear).
      e.sharers.remove(store_, core);
      if ((e.st == LineSt::kModified || e.st == LineSt::kExclusive) && e.owner == core) {
        // The owner was downgraded to S by an in-flight transaction and
        // evicted that S copy before the transaction completed. Forget it
        // now so complete() doesn't re-add a ghost sharer (the set must
        // stay exact for the no-stale-probe invariant).
        e.st = LineSt::kShared;
        e.owner = -1;
      }
      break;
  }
  if (inv_) inv_->on_line_event(line);
}

Directory::LineSt Directory::line_state(LineId line) const {
  const Entry* p = table_.find(line);
  return p == nullptr ? LineSt::kUncached : p->st;
}

CoreId Directory::owner_of(LineId line) const {
  const Entry* p = table_.find(line);
  return p == nullptr ? -1 : p->owner;
}

std::size_t Directory::queue_depth(LineId line) const {
  const Entry* p = table_.find(line);
  return p == nullptr ? 0 : p->q_len;
}

bool Directory::has_sharer(LineId line, CoreId c) const {
  const Entry* p = table_.find(line);
  return p != nullptr && p->sharers.covers(store_, c);
}

bool Directory::sharers_exact(LineId line) const {
  const Entry* p = table_.find(line);
  return p == nullptr || p->sharers.exact();
}

bool Directory::line_busy(LineId line) const {
  const Entry* p = table_.find(line);
  return p != nullptr && (p->busy || p->q_len != 0);
}

}  // namespace lrsim
