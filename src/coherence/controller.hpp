// Copyright (c) 2026 lrsim authors. MIT license.
//
// Per-core L1 cache controller: the component the paper modifies.
//
// "We extended the L1 cache controller logic (at the cores) to implement
//  memory leases. As such, the directory did not have to be modified in
//  any way." (Section 7)
//
// The controller services CPU memory operations (load / store / CAS / FAA /
// exchange) against the private L1, issues directory requests on misses,
// answers coherence probes, and hosts the LeaseTable. All methods are
// callback-based; completions fire as events at the correct simulated cycle.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

#include <memory>

#include "coherence/callbacks.hpp"
#include "coherence/config.hpp"
#include "coherence/l1_cache.hpp"
#include "coherence/topology.hpp"
#include "core/lease_table.hpp"
#include "mem/memory.hpp"
#include "sim/event_queue.hpp"
#include "sim/trace.hpp"
#include "sim/stats.hpp"
#include "util/types.hpp"

namespace lrsim {

class Directory;

/// External coherence probe kinds delivered to a controller.
enum class ProbeType : std::uint8_t {
  kInvalidate,        ///< Another core wants Exclusive: drop the line.
  kDowngrade,         ///< Another core wants Shared: M -> S (with writeback).
  kDowngradeToOwned,  ///< MOESI: M -> O, keep supplying dirty data (no writeback).
};

class CacheController {
 public:
  CacheController(CoreId core, EventQueue& ev, SimMemory& mem, const MachineConfig& cfg, Stats& stats)
      : core_(core),
        ev_(ev),
        mem_(mem),
        cfg_(cfg),
        stats_(stats),
        l1_(cfg.l1_sets, cfg.l1_ways),
        leases_(ev, stats, cfg, core),
        topo_(cfg) {}

  CacheController(const CacheController&) = delete;
  CacheController& operator=(const CacheController&) = delete;

  /// Wired by Machine after construction (controller <-> directory cycle).
  void attach_directory(Directory* dir) { dir_ = dir; }

  /// Optional tracing (Machine::enable_tracing). Null = off.
  void set_tracer(Tracer* t) { tracer_ = t; }

  /// Optional invariant checking (Machine::enable_invariants). Null = off.
  void set_invariants(InvariantChecker* inv) {
    inv_ = inv;
    leases_.set_invariants(inv);
  }

  /// Optional observability (Machine::enable_observability). Null = off.
  void set_observer(Observability* obs) {
    obs_ = obs;
    leases_.set_observer(obs, core_);
  }

  /// TEST-ONLY fault injection: when the predicate matches a (core, line)
  /// probe, the coherence action (invalidate/downgrade) is silently lost —
  /// the probe still acks, so the requester is granted a conflicting copy.
  /// Models a lost-invalidation protocol bug for exercising the invariant
  /// checker; never set in production code.
  void set_test_probe_fault(std::function<bool(CoreId, LineId)> f) {
    probe_fault_ = std::move(f);
  }

  // --- CPU-side operations (one outstanding op per in-order core) ---------
  //
  // Each completion callback runs as an event at the cycle the instruction
  // retires; read the time from the event queue if needed. Completions are
  // fixed-capacity inline callables (coherence/callbacks.hpp), so the hot
  // path never heap-allocates.

  void cpu_read(Addr a, ReadDoneFn done);
  void cpu_write(Addr a, std::uint64_t v, DoneFn done);

  /// Compare-and-swap; completes with (success, old_value).
  void cpu_cas(Addr a, std::uint64_t expect, std::uint64_t desired, CasDoneFn done);

  /// Fetch-and-add; completes with the old value.
  void cpu_faa(Addr a, std::uint64_t add, ReadDoneFn done);

  /// Atomic exchange; completes with the old value.
  void cpu_xchg(Addr a, std::uint64_t v, ReadDoneFn done);

  /// Lease instruction (Section 3). Blocks (in-order core) until the line is
  /// owned exclusively and the countdown has started. No-op when leases are
  /// disabled or the line is already leased.
  void cpu_lease(Addr a, Cycle duration, DoneFn done);

  /// Release instruction. Completes with true iff the release was voluntary
  /// (the lease was still active) — the Section 5 cheap-snapshot signal.
  void cpu_release(Addr a, BoolDoneFn done);

  /// MultiLease (Section 4, Algorithm 2): releases all current leases, then
  /// jointly leases `addrs`. Acquisition happens in globally sorted line
  /// order (deadlock freedom, Proposition 3). A request whose group would
  /// exceed MAX_NUM_LEASES is ignored. In software-multilease mode this
  /// instead issues staggered single leases (Section 4, "Software
  /// Implementation").
  void cpu_multi_lease(std::vector<Addr> addrs, Cycle duration, DoneFn done);

  /// ReleaseAll (Algorithm 2).
  void cpu_release_all(DoneFn done);

  // --- directory-side interface -------------------------------------------

  /// A coherence probe arrives (already past the network latency). The
  /// controller services it after a 1-cycle action — or parks it behind a
  /// lease. `on_serviced(dirty)` is invoked `1 + ack_transit` cycles after
  /// the action, modeling the response's return trip in the same event as
  /// its receipt (the directory passes its home←core latency, keeping the
  /// core↔directory domain boundary at least the network latency wide — the
  /// parallel kernel's lookahead window rests on this). `dirty` reports
  /// whether the local copy was in M (so the directory charges a writeback
  /// only when real — an E owner may still be clean).
  void probe(LineId line, ProbeType type, bool requestor_is_lease, Cycle ack_transit,
             ProbeDoneFn on_serviced);

  /// Inclusion back-invalidation (finite L2 evicting `line`). Unlike a
  /// regular probe this never parks: any lease on the line is force-
  /// released first (capacity management overrides leases; early release is
  /// always safe). `on_serviced(dirty)` fires `1 + ack_transit` cycles
  /// after the action, like probe().
  void back_invalidate(LineId line, Cycle ack_transit, ProbeDoneFn on_serviced);

  // --- introspection (tests / harness) -------------------------------------
  LineState line_state(LineId l) const { return l1_.state(l); }
  const LeaseTable& lease_table() const { return leases_; }
  LeaseTable& lease_table() { return leases_; }
  const L1Cache& l1() const { return l1_; }

  /// The per-core Stats block, with this controller's batched hot counters
  /// flushed first so the caller always sees up-to-date totals.
  Stats& stats() {
    flush_stats();
    return stats_;
  }
  CoreId core_id() const { return core_; }

  /// Marks one completed application-level operation (Ctx::count_op).
  void count_op() noexcept { ++hot_.ops_completed; }

  /// Folds the batched hot-path counters into the shared Stats block.
  /// Counters are pure sums, so flush timing is unobservable; Machine calls
  /// this from total_stats()/core_stats() and the stats() accessor above.
  void flush_stats() {
    stats_.l1_hits += hot_.l1_hits;
    stats_.l1_misses += hot_.l1_misses;
    stats_.msgs_gets += hot_.msgs_gets;
    stats_.msgs_getx += hot_.msgs_getx;
    stats_.cas_attempts += hot_.cas_attempts;
    stats_.cas_failures += hot_.cas_failures;
    stats_.ops_completed += hot_.ops_completed;
    hot_ = HotCounters{};
  }

 private:
  /// Counters the CPU-op hot path touches, batched on their own cache line
  /// so an inline L1 hit writes here instead of the (shared, observer-read)
  /// Stats block. Only ever added into stats_ by flush_stats().
  struct alignas(64) HotCounters {
    std::uint64_t l1_hits = 0;
    std::uint64_t l1_misses = 0;
    std::uint64_t msgs_gets = 0;
    std::uint64_t msgs_getx = 0;
    std::uint64_t cas_attempts = 0;
    std::uint64_t cas_failures = 0;
    std::uint64_t ops_completed = 0;
  };

  /// Ensures the line can be installed: if the set is entirely pinned by
  /// leases, force-release one of them (Section 5 notes the lease table
  /// mirrors the load buffer; a set full of leases is the pathological case).
  void make_room(LineId line);

  /// Installs a line in the L1 with state `st`, handling victim writeback.
  void install(LineId line, LineState st);

  /// Common exclusive-ownership path for write-type ops: obtains M state for
  /// `line`, then runs `then` (at the cycle M is held).
  void with_exclusive(Addr a, bool is_lease_req, ThenFn then);

  /// The lease-pin predicate every L1 install consults. Built once: installs
  /// run on the miss path of every memory op, and constructing a fresh
  /// std::function per call showed up in contended-run profiles.
  const std::function<bool(LineId)>& pinned_fn() const { return pinned_; }

  /// This core's shard tag for the parallel kernel (see EventQueue::Domain).
  /// Applied only to events confined to this controller's private state —
  /// anything that can reach the directory stays kGlobalDomain.
  EventQueue::Domain domain() const noexcept {
    return static_cast<EventQueue::Domain>(core_);
  }

  /// Continues a MultiLease acquisition chain at index `i` of the sorted
  /// line list. The CPU-level completion rides in a shared box: the chain
  /// re-captures it at every step, and a same-tier InplaceFn cannot nest
  /// inside itself (MultiLease is rare, so the one allocation is cheap).
  void multi_lease_step(std::shared_ptr<std::vector<LineId>> lines, std::size_t i, Cycle duration,
                        std::shared_ptr<DoneFn> done);

  void sw_multi_lease_step(std::shared_ptr<std::vector<LineId>> lines, std::size_t i, Cycle duration,
                           std::shared_ptr<DoneFn> done);

  /// Resolves a policy-chosen (0) MultiLease duration: the group shares one
  /// timer, so take the longest per-line policy choice (static policy:
  /// MAX_LEASE_TIME, the legacy default, for every line).
  Cycle group_duration(const std::vector<LineId>& lines, Cycle duration) const;

  CoreId core_;
  EventQueue& ev_;
  SimMemory& mem_;
  const MachineConfig& cfg_;
  Stats& stats_;
  HotCounters hot_;
  L1Cache l1_;
  LeaseTable leases_;
  Topology topo_;
  Directory* dir_ = nullptr;
  Tracer* tracer_ = nullptr;
  InvariantChecker* inv_ = nullptr;
  Observability* obs_ = nullptr;
  std::function<bool(CoreId, LineId)> probe_fault_;  ///< Test-only, see setter.
  std::function<bool(LineId)> pinned_{[this](LineId l) { return leases_.pins(l); }};
};

}  // namespace lrsim
