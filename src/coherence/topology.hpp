// Copyright (c) 2026 lrsim authors. MIT license.
//
// Network topology model. Graphite simulates a tiled chip with a 2D mesh
// NoC and the directory banked across tiles; by default lrsim uses a flat
// average latency (MachineConfig::net_latency), and this class optionally
// replaces it with per-hop 2D-mesh latencies: messages between tile A and
// tile B cost router + hop cycles per Manhattan hop, and each cache line's
// directory bank lives on a home tile chosen by address interleaving.
#pragma once

#include <cmath>
#include <cstdint>

#include "coherence/config.hpp"
#include "util/types.hpp"

namespace lrsim {

class Topology {
 public:
  explicit Topology(const MachineConfig& cfg)
      : cfg_(&cfg), cores_(cfg.num_cores) {
    side_ = 1;
    while (side_ * side_ < cores_) ++side_;
  }

  /// Directory bank (home tile) of a line: static address interleaving.
  CoreId home_of(LineId line) const noexcept {
    return static_cast<CoreId>(line % static_cast<LineId>(cores_));
  }

  /// One-way message latency between two tiles.
  Cycle latency(CoreId a, CoreId b) const noexcept {
    if (!cfg_->mesh_topology) return cfg_->net_latency;
    const int h = hops(a, b);
    return cfg_->mesh_router_latency * static_cast<Cycle>(h + 1) +
           cfg_->mesh_hop_latency * static_cast<Cycle>(h);
  }

  /// Latency from a core to the directory bank holding `line`.
  Cycle core_to_home(CoreId c, LineId line) const noexcept { return latency(c, home_of(line)); }

  /// Latency from `line`'s directory bank to a core.
  Cycle home_to_core(LineId line, CoreId c) const noexcept { return latency(home_of(line), c); }

  int hops(CoreId a, CoreId b) const noexcept {
    const int ax = a % side_, ay = a / side_;
    const int bx = b % side_, by = b / side_;
    return std::abs(ax - bx) + std::abs(ay - by);
  }

  int side() const noexcept { return side_; }

 private:
  const MachineConfig* cfg_;
  int cores_;
  int side_;
};

}  // namespace lrsim
