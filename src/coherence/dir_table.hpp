// Copyright (c) 2026 lrsim authors. MIT license.
//
// Flat open-addressing containers for the directory hot path.
//
// The directory used to key its per-line state off a std::unordered_map,
// whose node allocations and pointer-chasing dominated the contended-line
// profile (docs/ENGINE.md "Flat directory tables"). Two replacements live
// here:
//
//  * FlatLineMap<V>: LineId -> V with linear probing over a power-of-two
//    slot array. Directory entries are never erased (a dead line just decays
//    to kUncached), so the table needs no tombstones and probe chains never
//    rot. Values live in a chunked pool whose chunks never move — an
//    `Entry&` stays valid across any number of later insertions, which the
//    directory's in-flight transaction legs rely on. V must be cheap to
//    default-construct (whole chunks are built eagerly) and may hold
//    indices into side pools but never raw pointers into itself: the
//    directory Entry's SharerSet, for instance, carries a spill-slot index
//    whose backing pool lives in the Directory, not the map.
//
//  * NodePool<T>: an index-linked free-list pool backing the per-line
//    request FIFOs. Parking a request costs a pool slot reuse instead of a
//    std::deque node allocation; links are 32-bit indices, not pointers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace lrsim {

template <typename V>
class FlatLineMap {
 public:
  FlatLineMap() { rehash(kInitialSlots); }

  /// Returns the value for `line`, inserting a default-constructed one on
  /// first touch. The returned reference is stable forever (chunked pool).
  V& operator[](LineId line) {
    std::size_t s = probe(line);
    if (slots_[s].idx == kEmptySlot) {
      if ((size_ + 1) * 10 >= slots_.size() * 7) {  // 70% load factor
        rehash(slots_.size() * 2);
        s = probe(line);
      }
      slots_[s].line = line;
      slots_[s].idx = static_cast<std::uint32_t>(size_);
      push_value();
      ++size_;
    }
    return value(slots_[s].idx);
  }

  V* find(LineId line) {
    const std::size_t s = probe(line);
    return slots_[s].idx == kEmptySlot ? nullptr : &value(slots_[s].idx);
  }
  const V* find(LineId line) const {
    const std::size_t s = probe(line);
    return slots_[s].idx == kEmptySlot ? nullptr : &value(slots_[s].idx);
  }

  std::size_t size() const noexcept { return size_; }

  /// Visits every stored value in insertion order. The map has no erase, so
  /// the first `size_` pool slots are exactly the live values. Introspection
  /// only (SimMemory::resident_lines) — not a hot path.
  template <typename F>
  void for_each_value(F&& f) const {
    for (std::size_t i = 0; i < size_; ++i) {
      f(value(static_cast<std::uint32_t>(i)));
    }
  }

 private:
  struct Slot {
    LineId line = 0;
    std::uint32_t idx = kEmptySlot;  ///< Pool index; LineId 0 is a valid key.
  };
  static constexpr std::uint32_t kEmptySlot = UINT32_MAX;
  static constexpr std::size_t kInitialSlots = 256;
  static constexpr std::size_t kChunkShift = 6;  ///< 64 values per chunk.
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  std::size_t probe(LineId line) const {
    // Fibonacci hashing: multiply then keep the top bits.
    std::size_t s = static_cast<std::size_t>(
        (static_cast<std::uint64_t>(line) * 0x9E3779B97F4A7C15ull) >> shift_);
    const std::size_t mask = slots_.size() - 1;
    while (slots_[s].idx != kEmptySlot && slots_[s].line != line) s = (s + 1) & mask;
    return s;
  }

  void rehash(std::size_t new_slots) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slots, Slot{});
    shift_ = 64;
    for (std::size_t n = new_slots; n > 1; n >>= 1) --shift_;
    for (const Slot& o : old) {
      if (o.idx == kEmptySlot) continue;
      slots_[probe(o.line)] = o;
    }
  }

  void push_value() {
    if ((size_ & (kChunkSize - 1)) == 0) {
      chunks_.push_back(std::make_unique<V[]>(kChunkSize));
    }
    // The slot inside the chunk is already default-constructed by the array.
  }

  V& value(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }
  const V& value(std::uint32_t idx) const {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  std::vector<Slot> slots_;
  std::vector<std::unique_ptr<V[]>> chunks_;  ///< Stable value storage.
  std::size_t size_ = 0;
  unsigned shift_ = 64;  ///< 64 - log2(slots_.size()), for the hash.
};

/// Index-linked node pool with an intrusive free list. Callers thread nodes
/// into their own FIFO lists via next()/set_next(); take() moves the value
/// out and recycles the node. Indices (not pointers) stay valid across the
/// backing vector's growth. T must be default-constructible and movable.
template <typename T>
class NodePool {
 public:
  static constexpr std::uint32_t kNil = UINT32_MAX;

  /// Allocates a node holding `v`, with next = kNil. Returns its index.
  std::uint32_t alloc(T&& v) {
    std::uint32_t idx;
    if (free_head_ != kNil) {
      idx = free_head_;
      free_head_ = nodes_[idx].next;
      nodes_[idx].value = std::move(v);
      nodes_[idx].next = kNil;
    } else {
      idx = static_cast<std::uint32_t>(nodes_.size());
      nodes_.push_back(Node{std::move(v), kNil});
    }
    return idx;
  }

  /// Moves the value out of node `idx` and returns the node to the free list.
  T take(std::uint32_t idx) {
    T v = std::move(nodes_[idx].value);
    nodes_[idx].value = T{};  // drop captured state eagerly
    nodes_[idx].next = free_head_;
    free_head_ = idx;
    return v;
  }

  std::uint32_t next(std::uint32_t idx) const { return nodes_[idx].next; }
  void set_next(std::uint32_t idx, std::uint32_t n) { nodes_[idx].next = n; }

 private:
  struct Node {
    T value;
    std::uint32_t next = kNil;
  };
  std::vector<Node> nodes_;
  std::uint32_t free_head_ = kNil;
};

}  // namespace lrsim
