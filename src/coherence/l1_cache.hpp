// Copyright (c) 2026 lrsim authors. MIT license.
//
// Private per-core L1 data cache: finite, set-associative, LRU, with MSI
// line states. The cache tracks *coherence state only* — data values live in
// the canonical SimMemory store (see mem/memory.hpp for why that is sound).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "util/types.hpp"

namespace lrsim {

/// Line states. MSI uses {I, S, M}; MESI additionally grants E
/// (clean-exclusive) to a sole reader, letting it upgrade to M silently.
/// Leases work identically in both (Section 8 "Other Protocols"): a leased
/// line is held in E or M and probes are delayed until release.
enum class LineState : std::uint8_t { I, S, E, O, M };

/// True if the state permits local writes without a coherence transaction.
constexpr bool is_exclusive(LineState s) noexcept {
  return s == LineState::E || s == LineState::M;
}

/// True if this copy is responsible for the dirty data (writeback on evict).
constexpr bool is_dirty(LineState s) noexcept {
  return s == LineState::O || s == LineState::M;
}

/// Set-associative tag/state array with true-LRU replacement.
class L1Cache {
 public:
  L1Cache(int sets, int ways) : sets_(sets), ways_(ways), array_(static_cast<std::size_t>(sets) * ways) {
    assert(sets > 0 && (sets & (sets - 1)) == 0 && "set count must be a power of two");
    assert(ways > 0);
  }

  LineState state(LineId line) const {
    const Way* w = find(line);
    return w ? w->state : LineState::I;
  }

  bool present(LineId line) const { return find(line) != nullptr; }

  /// Marks `line` most-recently-used (call on every hit).
  void touch(LineId line) {
    if (Way* w = find(line)) w->lru = ++tick_;
  }

  /// A line displaced to make room for an install.
  struct Victim {
    LineId line;
    LineState state;
  };

  /// Installs `line` with `st`, evicting the LRU non-pinned way if the set
  /// is full. `pinned(l)` must return true for lines that may not be chosen
  /// as victims (leased lines — the lease engine pins them).
  ///
  /// Returns the displaced victim, or nullopt if no eviction was needed.
  /// Precondition: at least one way in the set is not pinned (the
  /// controller force-releases a lease first if needed — see
  /// CacheController::make_room).
  std::optional<Victim> install(LineId line, LineState st, const std::function<bool(LineId)>& pinned) {
    const std::size_t base = set_index(line) * static_cast<std::size_t>(ways_);
    // Tag hit: just update state.
    for (int i = 0; i < ways_; ++i) {
      Way& w = array_[base + i];
      if (w.state != LineState::I && w.line == line) {
        w.state = st;
        w.lru = ++tick_;
        return std::nullopt;
      }
    }
    // Prefer an invalid way.
    for (int i = 0; i < ways_; ++i) {
      Way& w = array_[base + i];
      if (w.state == LineState::I) {
        w = Way{line, st, ++tick_};
        return std::nullopt;
      }
    }
    // Evict LRU among non-pinned ways.
    Way* victim = nullptr;
    for (int i = 0; i < ways_; ++i) {
      Way& w = array_[base + i];
      if (pinned(w.line)) continue;
      if (victim == nullptr || w.lru < victim->lru) victim = &w;
    }
    assert(victim != nullptr && "all ways pinned by leases; controller must force-release first");
    Victim out{victim->line, victim->state};
    *victim = Way{line, st, ++tick_};
    return out;
  }

  /// Finds a pinned line in `line`'s set, if the set is entirely pinned
  /// candidates. Used by the controller to pick a lease to force-release
  /// when a set fills up with leased lines.
  std::optional<LineId> any_pinned_in_set(LineId line, const std::function<bool(LineId)>& pinned) const {
    const std::size_t base = set_index(line) * static_cast<std::size_t>(ways_);
    for (int i = 0; i < ways_; ++i) {
      const Way& w = array_[base + i];
      if (w.state != LineState::I && pinned(w.line)) return w.line;
    }
    return std::nullopt;
  }

  /// True if installing `line` would require evicting and every candidate
  /// way is pinned.
  bool set_full_of_pinned(LineId line, const std::function<bool(LineId)>& pinned) const {
    const std::size_t base = set_index(line) * static_cast<std::size_t>(ways_);
    for (int i = 0; i < ways_; ++i) {
      const Way& w = array_[base + i];
      if (w.state != LineState::I && w.line == line) return false;  // tag hit
      if (w.state == LineState::I) return false;
      if (!pinned(w.line)) return false;
    }
    return true;
  }

  /// Drops `line` (external invalidation or local eviction bookkeeping).
  void invalidate(LineId line) {
    if (Way* w = find(line)) w->state = LineState::I;
  }

  /// External downgrade probe: M -> S (MSI/MESI writeback path), E -> S,
  /// or M -> O under MOESI (`to_owned`); no-op if the line is absent.
  void downgrade(LineId line, bool to_owned = false) {
    Way* w = find(line);
    if (w == nullptr) return;
    if (w->state == LineState::M) {
      w->state = to_owned ? LineState::O : LineState::S;
    } else if (w->state == LineState::E || w->state == LineState::O) {
      // Clean-exclusive drops to S; an O provider stays O on further reads
      // unless explicitly flushed to S (non-MOESI call).
      w->state = to_owned ? w->state : LineState::S;
    }
  }

  int sets() const noexcept { return sets_; }
  int ways() const noexcept { return ways_; }

  std::size_t occupancy() const {
    std::size_t n = 0;
    for (const Way& w : array_)
      if (w.state != LineState::I) ++n;
    return n;
  }

 private:
  struct Way {
    LineId line = 0;
    LineState state = LineState::I;
    std::uint64_t lru = 0;
  };

  std::size_t set_index(LineId line) const noexcept {
    return static_cast<std::size_t>(line) & static_cast<std::size_t>(sets_ - 1);
  }

  const Way* find(LineId line) const {
    const std::size_t base = set_index(line) * static_cast<std::size_t>(ways_);
    for (int i = 0; i < ways_; ++i) {
      const Way& w = array_[base + i];
      if (w.state != LineState::I && w.line == line) return &w;
    }
    return nullptr;
  }
  Way* find(LineId line) {
    return const_cast<Way*>(static_cast<const L1Cache*>(this)->find(line));
  }

  int sets_;
  int ways_;
  std::vector<Way> array_;
  std::uint64_t tick_ = 0;
};

}  // namespace lrsim
