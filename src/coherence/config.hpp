// Copyright (c) 2026 lrsim authors. MIT license.
//
// Machine configuration. Defaults mirror Table 1 of the paper:
//
//   Core model            1 GHz, in-order core
//   L1-I/D cache per tile 32 KB, 4-way, 1 cycle
//   L2 cache per tile     256 KB, 8-way, inclusive, tag/data 3/8 cycles
//   Cache line size       64 bytes
//   Coherence protocol    MSI (private L1, shared L2)
//
// plus the Lease/Release parameters from Sections 3-5 (MAX_LEASE_TIME is
// 20K cycles = 20 us at 1 GHz in the paper's experiments; Section 7 also
// exercises 1K cycles).
#pragma once

#include "coherence/sharer_set.hpp"
#include "sim/stats.hpp"
#include "util/types.hpp"

namespace lrsim {

/// Lease-duration policy for "policy-chosen" leases (duration 0 at the
/// Lease instruction). kStatic resolves every such lease to MAX_LEASE_TIME
/// (the paper's fixed global bound); kAdaptive lets the per-core lease
/// table pick a per-line duration via the AIMD controller
/// (core/lease_table.hpp), still clamped to [min_lease_time,
/// max_lease_time] so the invariant checker's lease-bound rule holds.
enum class LeasePolicy : std::uint8_t {
  kStatic,    ///< duration 0 => max_lease_time (legacy, byte-identical).
  kAdaptive,  ///< duration 0 => per-line AIMD-controlled duration.
};

inline const char* lease_policy_name(LeasePolicy p) noexcept {
  return p == LeasePolicy::kAdaptive ? "adaptive" : "static";
}

/// Coherence protocol family. Lease/Release applies to both with identical
/// semantics (Section 8 "Other Protocols"): a leased line is held in an
/// exclusive state and incoming requests are delayed until release.
enum class CoherenceProtocol : std::uint8_t {
  kMSI,    ///< The paper's evaluation protocol (Table 1).
  kMESI,   ///< Adds the clean-Exclusive state: a sole reader may write
           ///< without a coherence transaction.
  kMOESI,  ///< Additionally keeps a downgraded dirty owner in the Owned
           ///< state: it supplies data to readers without writing back.
           ///< Per Section 8, a *leased* line can never be in O — a lease
           ///< holds the line in E/M and parks the downgrade that would
           ///< create O.
};

struct MachineConfig {
  /// At most kMaxCores (256). Up to 64 cores the directory tracks sharers
  /// in an exact inline bitmask (the historic representation, byte-identical
  /// results); above 64 it switches to the hybrid limited-pointer /
  /// coarse-vector / spill-table scheme in coherence/sharer_set.hpp.
  int num_cores = 64;
  CoherenceProtocol protocol = CoherenceProtocol::kMSI;

  /// Cores per coarse-vector group for >64-core machines (sharer_set.hpp).
  /// 0 = auto: the smallest group size whose region vector fits 64 bits
  /// (1 for <=64 cores, 2 for 65-128, 3 for 129-192, 4 for 193-256).
  /// Ignored (exact mask) when num_cores <= 64. The Directory rejects a
  /// granularity needing more than 64 groups.
  int sharer_granularity = 0;
  /// Exact spill-table capacity (lines) for >64-core machines: hot,
  /// widely-shared lines overflow into full-width exact bitmaps here
  /// instead of the inexact coarse vector (models a small SRAM). 0
  /// disables the spill table (every pointer overflow goes coarse).
  int sharer_spill_lines = 64;

  /// Host-speed toggle, not a model parameter: lets controllers complete an
  /// L1 hit inline (no event-queue round trip) when EventQueue::try_advance
  /// proves no event can fire inside the l1_latency window. Results are
  /// bit-identical either way (tests/fastpath_determinism_test.cpp); off
  /// exists for ablation (--fast-path=off) and debugging.
  bool fast_path = true;

  // --- latencies (cycles) -------------------------------------------------
  Cycle l1_latency = 1;        ///< L1 hit (Table 1).
  Cycle l2_tag_latency = 3;    ///< Directory/L2 tag lookup (Table 1).
  Cycle l2_data_latency = 8;   ///< L2 data array access (Table 1).
  Cycle dram_latency = 100;    ///< Off-chip access on first touch of a line.
  Cycle net_latency = 15;      ///< One-way core <-> directory latency (flat model).

  // --- optional 2D-mesh NoC (Graphite-style tiled chip) ---------------------
  bool mesh_topology = false;     ///< Replace the flat latency with per-hop mesh costs.
  Cycle mesh_hop_latency = 2;     ///< Link traversal per Manhattan hop.
  Cycle mesh_router_latency = 1;  ///< Router pipeline per hop (+1 for injection).

  // --- private L1 geometry -------------------------------------------------
  int l1_ways = 4;
  int l1_sets = 128;  ///< 128 sets x 4 ways x 64 B = 32 KB.

  // --- shared L2 capacity ----------------------------------------------------
  /// By default the inclusive L2 is modeled as unbounded (first touch pays
  /// DRAM, everything stays on-chip). Enabling this bounds it to
  /// l2_sets x l2_ways lines; refills evict an LRU victim, back-invalidating
  /// its L1 copies (inclusion). A lease on a victim line is force-released —
  /// capacity management overrides leases, exactly like the L1 pinned-set
  /// case, and early release never affects correctness (Section 5).
  bool l2_finite = false;
  int l2_ways = 8;
  int l2_sets = 512;  ///< 512 sets x 8 ways x 64 B = 256 KB (Table 1).

  // --- Lease/Release engine (Section 3) ------------------------------------
  bool leases_enabled = true;        ///< false => Lease/Release become no-ops (baseline machine).
  Cycle max_lease_time = 20000;      ///< System-wide MAX_LEASE_TIME bound.
  int max_num_leases = 4;            ///< System-wide MAX_NUM_LEASES bound.
  bool lease_priority_mode = false;  ///< Section 5 "Prioritization": regular requests break leases.
  bool software_multilease = false;  ///< Section 4: emulate MultiLease with staggered single leases.
  Cycle sw_multilease_stagger = 0;   ///< X parameter for software MultiLease; 0 => auto-derive.
  /// Extra cycles of per-address software bookkeeping in the emulated
  /// MultiLease (group-id maintenance, timeout arithmetic). This is what
  /// makes the Figure 5 software variant "slightly but consistently" slower.
  Cycle sw_multilease_overhead = 6;

  // --- Section 5 design alternatives -----------------------------------------
  /// Respond to probes on leased lines with a NACK + bounded retry instead
  /// of parking them (the paper notes Lease/Release fits NACK-based
  /// protocols; this mode makes the directory queue never wait on a core).
  bool nack_on_lease = false;
  Cycle nack_retry_delay = 50;  ///< Directory re-probe backoff after a NACK.

  /// Speculative futility predictor (Section 5 "Speculative Execution"):
  /// after `predictor_threshold` consecutive involuntary releases on a
  /// line, further Lease instructions on it are ignored until a voluntary
  /// release is observed again.
  bool lease_predictor = false;
  int predictor_threshold = 3;
  /// Max lines the predictor tracks at once (models a fixed SRAM table;
  /// also bounds host memory on address-sweeping workloads). Oldest-tracked
  /// line is evicted on overflow.
  int predictor_map_capacity = 1024;

  /// Per-line adaptive lease-duration control (ROADMAP "Adaptive lease
  /// policies"). With kAdaptive, a Lease instruction carrying duration 0
  /// ("policy-chosen") gets a per-line AIMD-controlled duration from the
  /// core's lease table: multiplicative growth toward the observed
  /// hold-time envelope on involuntary expiry, additive decay on sustained
  /// voluntary release, always clamped to [min_lease_time, max_lease_time].
  /// kStatic keeps the legacy behavior (0 => max_lease_time) byte-for-byte.
  LeasePolicy lease_policy = LeasePolicy::kStatic;
  Cycle min_lease_time = 64;     ///< Adaptive lower clamp (and cold-line start).
  Cycle lease_grow_step = 64;    ///< Min growth per involuntary expiry (cycles).
  Cycle lease_shrink_step = 256; ///< Decay per qualifying voluntary streak (cycles).
  int lease_shrink_streak = 8;   ///< Voluntary releases required before a shrink.
  /// Max lines the controller tracks per core (models a fixed SRAM table,
  /// same discipline as predictor_map_capacity). Oldest-tracked line is
  /// evicted on overflow.
  int lease_ctrl_capacity = 1024;

  EnergyModel energy;

  /// Stagger used by software MultiLease: an approximation of the time to
  /// fulfil one exclusive-ownership request (Section 4, parameter X).
  Cycle effective_sw_stagger() const noexcept {
    if (sw_multilease_stagger != 0) return sw_multilease_stagger;
    // request + probe + data forward, plus service overheads.
    return 3 * net_latency + l2_tag_latency + l2_data_latency;
  }
};

}  // namespace lrsim
