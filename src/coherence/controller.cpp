// Copyright (c) 2026 lrsim authors. MIT license.

#include "coherence/controller.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "coherence/directory.hpp"

namespace lrsim {

void CacheController::cpu_read(Addr a, ReadDoneFn done) {
  assert(is_word_aligned(a));
  const LineId l = line_of(a);
  if (tracer_) tracer_->emit(TraceEvent::kCpuLoad, ev_.now(), core_, l, a);
  if (l1_.state(l) != LineState::I) {
    ++hot_.l1_hits;
    l1_.touch(l);
    // Inline fast path: when the current event is a pure completion (tail
    // event) and no event can fire inside the l1_latency window, the
    // scheduled completion below would be the very next thing to run —
    // completing it here, after advancing now(), is bit-identical and skips
    // the whole schedule/peek/pop round trip (docs/ENGINE.md).
    if (cfg_.fast_path && ev_.try_advance(cfg_.l1_latency)) {
      done(mem_.read(a));
      return;
    }
    // The completion is the entire event (nothing runs after it), so it is
    // a tail event: the next hit completed inside it may take the fast path.
    // Core-domain: an L1-hit completion touches only this core's state (the
    // SWMR-protected data word included).
    ev_.schedule_tail_in_on(domain(), cfg_.l1_latency,
                            [this, a, done = std::move(done)] { done(mem_.read(a)); });
    return;
  }
  ++hot_.l1_misses;
  ++hot_.msgs_gets;
  ev_.schedule_in(cfg_.l1_latency + topo_.core_to_home(core_, l),
                  [this, a, l, done = std::move(done)]() mutable {
    dir_->request(core_, l, Directory::ReqType::kGetS, /*is_lease_req=*/false,
                  [this, a, l, done = std::move(done)](bool exclusive) {
                    // MESI sole-reader grant installs clean-Exclusive.
                    install(l, exclusive ? LineState::E : LineState::S);
                    done(mem_.read(a));
                  });
  });
}

void CacheController::with_exclusive(Addr a, bool is_lease_req, ThenFn then) {
  assert(is_word_aligned(a));
  const LineId l = line_of(a);
  if (is_exclusive(l1_.state(l))) {
    // MESI: writing a clean-Exclusive line upgrades to M silently — no
    // coherence transaction, the whole point of the E state.
    if (l1_.state(l) == LineState::E) l1_.install(l, LineState::M, pinned_fn());
    ++hot_.l1_hits;
    l1_.touch(l);
    // Same inline fast path as cpu_read: covers every write-type op
    // (store/CAS/FAA/XCHG) that hits an exclusively-held line.
    if (cfg_.fast_path && ev_.try_advance(cfg_.l1_latency)) {
      then();
      return;
    }
    ev_.schedule_tail_in_on(domain(), cfg_.l1_latency, std::move(then));
    return;
  }
  // Both cold misses and S->M upgrades count as coherence misses.
  ++hot_.l1_misses;
  ++hot_.msgs_getx;
  ev_.schedule_in(cfg_.l1_latency + topo_.core_to_home(core_, l),
                  [this, l, is_lease_req, then = std::move(then)]() mutable {
    dir_->request(core_, l, Directory::ReqType::kGetX, is_lease_req,
                  [this, l, then = std::move(then)](bool) {
      install(l, LineState::M);
      then();
    });
  });
}

void CacheController::cpu_write(Addr a, std::uint64_t v, DoneFn done) {
  if (tracer_) tracer_->emit(TraceEvent::kCpuStore, ev_.now(), core_, line_of(a), a);
  with_exclusive(a, /*is_lease_req=*/false, [this, a, v, done = std::move(done)] {
    mem_.write(a, v);
    if (inv_) inv_->on_store(core_, line_of(a));
    done();
  });
}

void CacheController::cpu_cas(Addr a, std::uint64_t expect, std::uint64_t desired, CasDoneFn done) {
  if (tracer_) tracer_->emit(TraceEvent::kCpuRmw, ev_.now(), core_, line_of(a), a);
  with_exclusive(a, /*is_lease_req=*/false, [this, a, expect, desired, done = std::move(done)] {
    // The core holds the line in M: the read-compare-write below is atomic
    // with respect to every other core (any competing access must first win
    // the line through the directory, which serializes per line).
    const std::uint64_t old = mem_.read(a);
    const bool ok = old == expect;
    if (ok) {
      mem_.write(a, desired);
      if (inv_) inv_->on_store(core_, line_of(a));
    }
    ++hot_.cas_attempts;
    if (!ok) ++hot_.cas_failures;
    done(ok, old);
  });
}

void CacheController::cpu_faa(Addr a, std::uint64_t add, ReadDoneFn done) {
  with_exclusive(a, /*is_lease_req=*/false, [this, a, add, done = std::move(done)] {
    const std::uint64_t old = mem_.read(a);
    mem_.write(a, old + add);
    if (inv_) inv_->on_store(core_, line_of(a));
    done(old);
  });
}

void CacheController::cpu_xchg(Addr a, std::uint64_t v, ReadDoneFn done) {
  with_exclusive(a, /*is_lease_req=*/false, [this, a, v, done = std::move(done)] {
    const std::uint64_t old = mem_.read(a);
    mem_.write(a, v);
    if (inv_) inv_->on_store(core_, line_of(a));
    done(old);
  });
}

void CacheController::cpu_lease(Addr a, Cycle duration, DoneFn done) {
  if (!cfg_.leases_enabled) {
    // Baseline machine: the lease instruction does not exist; model it as
    // free so base runs pay no phantom cost.
    ev_.schedule_tail_in_on(domain(), 0, std::move(done));
    return;
  }
  const LineId l = line_of(a);
  // Duration 0 = "policy-chosen": the lease table resolves it (static:
  // MAX_LEASE_TIME, exactly the legacy default; adaptive: the per-line AIMD
  // duration). Resolved before the tracer emit so traces show the real
  // granted duration.
  if (duration == 0) duration = leases_.policy_duration(l);
  if (leases_.has(l)) {
    // No extension of an existing lease (footnote 1).
    ev_.schedule_tail_in_on(domain(), cfg_.l1_latency, std::move(done));
    return;
  }
  if (tracer_) tracer_->emit(TraceEvent::kLease, ev_.now(), core_, l, duration);
  if (leases_.predicts_futile(l)) {
    // Section 5 "Speculative Execution": leases that keep expiring
    // involuntarily are ignored — early release never affects correctness.
    ++stats_.leases_suppressed;
    ev_.schedule_tail_in_on(domain(), cfg_.l1_latency, std::move(done));
    return;
  }
  leases_.add(l, duration);
  if (is_exclusive(l1_.state(l))) {
    // A lease demands exclusive ownership; clean-E qualifies (MESI).
    ++hot_.l1_hits;
    l1_.touch(l);
    leases_.on_granted(l);
    if (tracer_) tracer_->emit(TraceEvent::kLeaseGrant, ev_.now(), core_, l);
    ev_.schedule_tail_in_on(domain(), cfg_.l1_latency, std::move(done));
    return;
  }
  ++hot_.l1_misses;
  ++hot_.msgs_getx;
  ev_.schedule_in(cfg_.l1_latency + topo_.core_to_home(core_, l),
                  [this, l, done = std::move(done)]() mutable {
    dir_->request(core_, l, Directory::ReqType::kGetX, /*is_lease_req=*/true,
                  [this, l, done = std::move(done)](bool) {
      install(l, LineState::M);
      // The entry may have been FIFO-evicted while the request was in
      // flight (possible only inside a MultiLease chain); on_granted
      // no-ops in that case.
      leases_.on_granted(l);
      if (tracer_) tracer_->emit(TraceEvent::kLeaseGrant, ev_.now(), core_, l);
      done();
    });
  });
}

void CacheController::cpu_release(Addr a, BoolDoneFn done) {
  if (!cfg_.leases_enabled) {
    ev_.schedule_tail_in_on(domain(), 0, [done = std::move(done)] { done(false); });
    return;
  }
  // Release has memory-fence semantics (Section 5); on this in-order,
  // one-outstanding-op core the fence itself is free. The callback ends with
  // the completion, so the event is tail-eligible. Core-domain: releasing
  // touches this core's lease table and L1 only (a serviced parked probe's
  // directory-side continuation is a separate, global-tagged event).
  ev_.schedule_tail_in_on(domain(), cfg_.l1_latency, [this, a, done = std::move(done)] {
    const bool voluntary = leases_.release(line_of(a));
    if (tracer_) tracer_->emit(TraceEvent::kRelease, ev_.now(), core_, line_of(a), voluntary ? 1 : 0);
    done(voluntary);
  });
}

void CacheController::cpu_release_all(DoneFn done) {
  if (!cfg_.leases_enabled) {
    ev_.schedule_tail_in_on(domain(), 0, std::move(done));
    return;
  }
  ev_.schedule_tail_in_on(domain(), cfg_.l1_latency, [this, done = std::move(done)] {
    leases_.release_all();
    done();
  });
}

void CacheController::cpu_multi_lease(std::vector<Addr> addrs, Cycle duration, DoneFn done) {
  if (!cfg_.leases_enabled) {
    ev_.schedule_tail_in_on(domain(), 0, std::move(done));
    return;
  }
  // Sort by line id — the fixed global comparison criterion that makes the
  // acquisition order deadlock-free (Proposition 3) — and drop duplicate
  // lines (two words on one line need only one lease).
  auto lines = std::make_shared<std::vector<LineId>>();
  lines->reserve(addrs.size());
  for (Addr a : addrs) lines->push_back(line_of(a));
  std::sort(lines->begin(), lines->end());
  lines->erase(std::unique(lines->begin(), lines->end()), lines->end());

  // Box the completion: the acquisition chain re-captures it at every step
  // (see multi_lease_step). MultiLease already allocates for the line list,
  // so this does not regress the allocation-free hot path.
  auto boxed = std::make_shared<DoneFn>(std::move(done));

  if (cfg_.software_multilease) {
    // Software emulation (Section 4): staggered independent single leases;
    // joint holding is *probable*, not guaranteed. Core-domain: the step
    // chain touches this core's lease table/L1 and schedules any directory
    // legs as separate global-tagged events.
    ev_.schedule_in_on(domain(), cfg_.l1_latency, [this, lines, duration, boxed]() mutable {
      leases_.release_all();
      duration = group_duration(*lines, duration);
      sw_multi_lease_step(lines, 0, duration, boxed);
    });
    return;
  }

  ev_.schedule_in_on(domain(), cfg_.l1_latency, [this, lines, duration, boxed]() mutable {
    // Algorithm 2: release all currently held leases first; a group that
    // would exceed MAX_NUM_LEASES is ignored.
    leases_.release_all();
    duration = group_duration(*lines, duration);
    if (static_cast<int>(lines->size()) + leases_.size() > cfg_.max_num_leases) {
      (*boxed)();
      return;
    }
    multi_lease_step(lines, 0, duration, boxed);
  });
}

Cycle CacheController::group_duration(const std::vector<LineId>& lines, Cycle duration) const {
  if (duration != 0) return duration;
  for (LineId l : lines) duration = std::max(duration, leases_.policy_duration(l));
  return duration == 0 ? cfg_.max_lease_time : duration;
}

void CacheController::multi_lease_step(std::shared_ptr<std::vector<LineId>> lines, std::size_t i,
                                       Cycle duration, std::shared_ptr<DoneFn> done) {
  if (i == lines->size()) {
    // Whole group granted: allocate and start all counters jointly
    // (Section 5, "MultiLeases require the counters ... to be correlated").
    leases_.start_group();
    (*done)();
    return;
  }
  const LineId l = (*lines)[i];
  leases_.add(l, duration, /*in_group=*/true);
  auto next = [this, lines, i, duration, done] {
    multi_lease_step(lines, i + 1, duration, done);
  };
  if (is_exclusive(l1_.state(l))) {
    ++hot_.l1_hits;
    l1_.touch(l);
    leases_.on_granted(l);
    ev_.schedule_in_on(domain(), cfg_.l1_latency, std::move(next));
    return;
  }
  ++hot_.l1_misses;
  ++hot_.msgs_getx;
  ev_.schedule_in(cfg_.l1_latency + topo_.core_to_home(core_, l), [this, l, next = std::move(next)] {
    dir_->request(core_, l, Directory::ReqType::kGetX, /*is_lease_req=*/true, [this, l, next](bool) {
      install(l, LineState::M);
      leases_.on_granted(l);
      next();
    });
  });
}

void CacheController::sw_multi_lease_step(std::shared_ptr<std::vector<LineId>> lines, std::size_t i,
                                          Cycle duration, std::shared_ptr<DoneFn> done) {
  if (i == lines->size()) {
    (*done)();
    return;
  }
  // The j-th lease in acquisition order runs for (time + jX) counted from
  // the *innermost*: the first-acquired (outermost) lease gets the longest
  // interval so the group probably overlaps for `duration` cycles.
  const Cycle extra =
      static_cast<Cycle>(lines->size() - 1 - i) * cfg_.effective_sw_stagger();
  // Software emulation pays real instructions per address (group-id
  // bookkeeping, timeout arithmetic) that the hardware instruction does not.
  ev_.schedule_in_on(domain(), cfg_.sw_multilease_overhead,
                     [this, lines, i, duration, extra, done] {
    cpu_lease(line_base((*lines)[i]), duration + extra,
              [this, lines, i, duration, done] {
                sw_multi_lease_step(lines, i + 1, duration, done);
              });
  });
}

void CacheController::probe(LineId line, ProbeType type, bool requestor_is_lease,
                            Cycle ack_transit, ProbeDoneFn on_serviced) {
  if (tracer_) {
    tracer_->emit(TraceEvent::kProbe, ev_.now(), core_, line,
                  type == ProbeType::kInvalidate ? 1 : 0);
  }
  if (cfg_.leases_enabled && cfg_.nack_on_lease) {
    // Transient blocking via negative acknowledgments (Section 5): instead
    // of parking at this core, the probe is NACKed back to the directory,
    // which re-probes after a bounded delay. Termination follows from the
    // bounded lease: eventually the line is released and a retry succeeds.
    if (leases_.blocks_probe(line, requestor_is_lease)) {
      if (tracer_) tracer_->emit(TraceEvent::kProbeNack, ev_.now(), core_, line);
      stats_.msgs_nack += 2;  // NACK to the directory + the retry probe
      // Core-domain: the retried probe runs against this core's L1/lease
      // table; its directory continuation is a separate global event.
      ev_.schedule_in_on(domain(), cfg_.nack_retry_delay,
                         [this, line, type, requestor_is_lease, ack_transit,
                          on_serviced = std::move(on_serviced)]() mutable {
                           probe(line, type, requestor_is_lease, ack_transit,
                                 std::move(on_serviced));
                         });
      return;
    }
  }
  ParkedFn do_service = [this, line, type, ack_transit,
                         on_serviced = std::move(on_serviced)]() mutable {
    // Apply the coherence action *atomically with the service decision*.
    // If it were deferred (even by one cycle), a Lease instruction executing
    // in the window would see a stale M state, grant via the hit path, and
    // leave a lease entry for a line this core no longer owns — a later
    // probe would then park behind that phantom lease and wedge the line's
    // directory queue for a full MAX_LEASE_TIME. Only the response latency
    // is modeled by the delay below.
    const bool dirty = is_dirty(l1_.state(line));
    if (probe_fault_ && probe_fault_(core_, line)) {
      // Injected lost-invalidation bug (see set_test_probe_fault): the local
      // copy survives while the probe still acks.
    } else if (type == ProbeType::kInvalidate) {
      l1_.invalidate(line);
      if (obs_) obs_->on_invalidation(line);
    } else {
      l1_.downgrade(line, /*to_owned=*/type == ProbeType::kDowngradeToOwned);
    }
    if (inv_) inv_->on_line_event(line);
    // One merged event covers the 1-cycle action plus the ack's return
    // transit: the directory continuation (a tail leg ending in leg_done)
    // runs at the same absolute cycle as the former two-event chain, but
    // no intermediate event now lands inside the core↔directory gap.
    ev_.schedule_tail_in(1 + ack_transit,
                         [on_serviced = std::move(on_serviced), dirty] { on_serviced(dirty); });
  };
  if (cfg_.leases_enabled &&
      leases_.maybe_park_probe(line, requestor_is_lease, std::move(do_service))) {
    if (tracer_) tracer_->emit(TraceEvent::kProbePark, ev_.now(), core_, line);
    if (inv_) inv_->on_line_event(line);
    return;  // parked; runs at (voluntary or involuntary) release
  }
  do_service();
}

void CacheController::back_invalidate(LineId line, Cycle ack_transit, ProbeDoneFn on_serviced) {
  leases_.force_release(line);  // never park an inclusion victim's probe
  const bool dirty = is_dirty(l1_.state(line));
  l1_.invalidate(line);
  if (obs_) obs_->on_invalidation(line);
  if (inv_) inv_->on_line_event(line);
  ev_.schedule_in(1 + ack_transit,
                  [on_serviced = std::move(on_serviced), dirty] { on_serviced(dirty); });
}

void CacheController::make_room(LineId line) {
  const auto& pinned = pinned_fn();
  while (l1_.set_full_of_pinned(line, pinned)) {
    auto victim = l1_.any_pinned_in_set(line, pinned);
    if (!victim) break;
    // Pathological case: an entire L1 set pinned by leases. Force-release
    // the offending lease (its parked probe, if any, is serviced).
    leases_.force_release(*victim);
  }
}

void CacheController::install(LineId line, LineState st) {
  // Materialize the backing cell now, in this (serial/global) grant context:
  // a first-touch store later — possibly inside a parallel worker phase —
  // then writes an existing cell in place instead of growing the map. The
  // DRAM first-touch accounting is unchanged (an unwritten cell does not
  // count as resident; see SimMemory::ensure).
  mem_.ensure(line);
  make_room(line);
  auto victim = l1_.install(line, st, pinned_fn());
  if (victim) {
    ++stats_.l1_evictions;
    if (is_dirty(victim->state)) {
      dir_->eviction_notice(core_, victim->line, Directory::EvictKind::kDirty);
    } else if (victim->state == LineState::E) {
      // Clean-exclusive victim: no data to write back, but the directory
      // must forget the owner or future requests would probe a ghost.
      dir_->eviction_notice(core_, victim->line, Directory::EvictKind::kCleanExclusive);
    } else {
      // Shared victim: notify eagerly so the directory removes us from the
      // sharer set and never sends an exact invalidation probe to a core
      // with no copy (the invariant checker asserts this at probe-send
      // time). Under a coarse sharer representation (>64 cores) the removal
      // is a deliberate no-op — the set stays a superset and we may still
      // receive a harmless coarse probe (docs/PROTOCOL.md §3a).
      dir_->eviction_notice(core_, victim->line, Directory::EvictKind::kShared);
    }
  }
  if (inv_) inv_->on_line_event(line);
}

}  // namespace lrsim
