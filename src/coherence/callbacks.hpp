// Copyright (c) 2026 lrsim authors. MIT license.
//
// Fixed-capacity callback tiers for the coherence layer.
//
// Coherence continuations nest in a bounded, known chain: a CPU completion
// (from a Ctx awaitable) is captured by a controller continuation, which is
// captured by a directory completion, which is captured by a scheduled
// event. Each tier's InplaceFn capacity covers the largest capture of the
// tier below plus that tier's own state; InplaceFn's static_assert turns
// any capture growth into a compile error instead of a silent heap
// allocation (docs/ENGINE.md).
//
// Tier sizes are amply padded — they cost slab/stack bytes, not time.
#pragma once

#include <cstdint>

#include "sim/inplace_fn.hpp"

namespace lrsim {

/// Tier A — CPU-instruction completions handed to CacheController::cpu_*.
/// Ctx awaitables capture {awaitable*, coroutine_handle}; the MultiLease
/// chain captures a boxed continuation plus its cursor.
inline constexpr std::size_t kCpuCbBytes = 64;
using DoneFn = InplaceFn<void(), kCpuCbBytes>;
using ReadDoneFn = InplaceFn<void(std::uint64_t), kCpuCbBytes>;   ///< load/FAA/XCHG
using CasDoneFn = InplaceFn<void(bool, std::uint64_t), kCpuCbBytes>;
using BoolDoneFn = InplaceFn<void(bool), kCpuCbBytes>;            ///< release(voluntary)

/// Tier B — controller-internal continuations (with_exclusive's `then`):
/// carry a Tier-A completion plus the operand words.
inline constexpr std::size_t kOwnCbBytes = 128;
using ThenFn = InplaceFn<void(), kOwnCbBytes>;

/// Tier C — directory request completions (Directory::request's on_done)
/// and coherence-probe service callbacks: carry a Tier-B continuation plus
/// line/route state.
inline constexpr std::size_t kDirCbBytes = 176;
using GrantFn = InplaceFn<void(bool), kDirCbBytes>;      ///< on_done(exclusive)
using ProbeDoneFn = InplaceFn<void(bool), kDirCbBytes>;  ///< on_serviced(dirty)

/// Tier P — a probe service action parked in the LeaseTable: carries a
/// Tier-C ProbeDoneFn plus the coherence action state.
inline constexpr std::size_t kParkedCbBytes = 240;
using ParkedFn = InplaceFn<void(), kParkedCbBytes>;

/// Tier E — L2-eviction completions: carry a full Directory::Req (itself
/// holding a Tier-C GrantFn) plus refill state.
inline constexpr std::size_t kEvictCbBytes = 256;
using EvictFn = InplaceFn<void(), kEvictCbBytes>;

}  // namespace lrsim
