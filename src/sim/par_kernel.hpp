// Copyright (c) 2026 lrsim authors. MIT license.
//
// ParKernel: a conservatively-synchronized parallel driver for EventQueue,
// bit-identical to the serial kernel by construction.
//
// The synchronization unit is the *same-cycle batch*: the coordinator drains
// every event pending at the minimum cycle t (drain_next_cycle pops them in
// serial firing order), advances now() to t, and then picks one of two
// execution modes:
//
//  * Parallel — only when every event in the batch carries a core-domain
//    tag (schedule_*_on), at least two shards are non-empty, and more
//    simulated threads remain unfinished than the batch could possibly
//    complete (so the run predicate cannot flip mid-batch). Events are
//    sharded by core id, executed on persistent worker threads, and their
//    schedule/cancel calls land in per-worker lanes that the coordinator
//    commits at the closing barrier in exactly serial order (see the
//    ParLane protocol in event_queue.hpp).
//  * Serial — everything else: the coordinator fires the drained batch in
//    order, checking the predicate before each event and re-queueing the
//    remainder (original seq preserved) if it flips.
//
// Why batches instead of the net-latency lookahead windows classic PDES
// uses: this codebase's directory deliberately mutates cross-domain state
// synchronously inside single events (Directory::complete re-arms the line
// queue and invokes the requester's install in one event; probe arrivals
// clear sharer bits at the core-side event), so the only sound lookahead
// between an arbitrary event pair is zero cycles. Same-cycle core-tagged
// events, however, are provably independent: domain tags partition private
// state, and SWMR makes the M-state owner's data writes exclusive. The
// network latency still does the heavy lifting — it is what piles many
// cores' independent completions onto the same cycle in contended runs.
//
// Safety rails: perturbation, tracing, observability and the invariant
// checker force serial mode (Machine::par_eligible); SimHeap/SimMemory
// first-touch abort if reached from a worker (par_guard.hpp); the fast-path
// window stays closed during ParKernel runs, which PR 4 proved
// behavior-identical. docs/ENGINE.md, "Parallel kernel", has the full story.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/types.hpp"

namespace lrsim {

/// Introspection counters for tests and tuning. `windows` counts drained
/// same-cycle batches; a window is either dispatched to workers
/// (parallel_windows / parallel_events) or fired by the coordinator
/// (serial_events, counted per event because a window can be cut short by a
/// predicate stop).
struct ParKernelStats {
  std::uint64_t windows = 0;
  std::uint64_t parallel_windows = 0;
  std::uint64_t parallel_events = 0;
  std::uint64_t serial_events = 0;
};

class ParKernel {
 public:
  /// Spawns `workers` persistent threads against `ev`. `reserve_per_event`
  /// bounds how many events one batch event may schedule (lease-table
  /// servicing fan-out); the coordinator pre-stocks the slab's free list
  /// with batch_size * reserve_per_event slots before each worker phase.
  ParKernel(EventQueue& ev, int workers, std::size_t reserve_per_event);
  ~ParKernel();

  ParKernel(const ParKernel&) = delete;
  ParKernel& operator=(const ParKernel&) = delete;

  /// Drop-in replacement for EventQueue::run_while with the same pred/limit
  /// semantics (including the bounded-horizon now() guarantee). `unfinished`
  /// reports how many simulated threads have not completed — the batch-size
  /// guard that keeps the predicate stable across a parallel window.
  std::uint64_t run_while(const std::function<bool()>& pred, Cycle limit,
                          const std::function<std::size_t()>& unfinished);

  const ParKernelStats& stats() const noexcept { return stats_; }
  int workers() const noexcept { return nworkers_; }

 private:
  struct WorkItem {
    EventQueue::Node node;
    std::uint32_t parent;  ///< Index in the drained batch (serial order).
  };

  void worker_main(int w);

  EventQueue& ev_;
  const int nworkers_;
  const std::size_t reserve_per_event_;
  ParKernelStats stats_;
  std::vector<EventQueue::ParLane> lanes_;     ///< One per worker.
  std::vector<std::vector<WorkItem>> shards_;  ///< Per-worker batch slices.
  std::vector<EventQueue::Node> batch_;        ///< Drain scratch.
  std::barrier<> start_;
  std::barrier<> done_;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
};

}  // namespace lrsim
