// Copyright (c) 2026 lrsim authors. MIT license.
//
// ParKernel: a conservatively-synchronized parallel driver for EventQueue,
// bit-identical to the serial kernel by construction.
//
// The synchronization unit is the *lookahead window*: W consecutive cycles,
// where W = min(l1_latency, 1) + min_network_transit is the minimum modeled
// delay from a core event to any event that can touch shared directory/L2
// state. Every core→directory request leg costs at least l1_latency plus
// the core↔home transit, and every probe/back-invalidate response costs at
// least 1 + transit (the directory folds the return trip into the
// continuation's delay) — so no event drained at cycle t can schedule a
// *global* event before t + W, and the first W cycles of core-tagged events
// are closed under per-core execution.
//
// The coordinator drains all events in [t0, t0 + W - 1] (stopping early at
// the run horizon or at a cycle holding a global-domain event, which is
// requeued whole), advances now() to t0, and picks an execution mode:
//
//  * Parallel — only when every drained event carries a core-domain tag
//    (schedule_*_on), at least two shards are non-empty, and more simulated
//    threads remain unfinished than the involved cores could possibly
//    complete (so the run predicate cannot flip mid-window). Each worker
//    owns a set of cores (the adaptive shard map), executes its slice in
//    serial-projection order under a per-worker virtual clock, runs
//    same-domain children that land inside the window at their correct
//    local time, and logs everything; the coordinator replays the logs at
//    the closing barrier into exactly the serial schedule order (see the
//    ParLane protocol in event_queue.hpp).
//  * Serial — everything else: the coordinator fires the first drained
//    cycle in order (requeueing any extension cycles), checking the
//    predicate before each event and re-queueing the remainder (original
//    seq preserved) if it flips.
//
// Shard assignment adapts to the workload: per-core occupancy is counted
// across parallel windows and every kRebalanceInterval windows the core→
// worker map is rebuilt greedily (heaviest cores first onto the least
// loaded worker). The map only changes between windows and the commit
// replay is ordered by (when, seq) — never by shard — so rebalancing is
// invisible to simulated results.
//
// Safety rails: perturbation, tracing, observability and the invariant
// checker force serial mode (Machine::par_eligible); SimHeap's global
// region and cross-core arena touches abort if reached from a worker
// (par_guard.hpp); a cross-domain event scheduled *inside* the window
// aborts in par_schedule (it would mean the latency model was violated);
// the fast-path window stays closed during ParKernel runs, which PR 4
// proved behavior-identical. docs/ENGINE.md, "Parallel kernel", has the
// full story.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/types.hpp"

namespace lrsim {

/// Introspection counters for tests and tuning. `windows` counts drained
/// batches; a window is either dispatched to workers (parallel_windows /
/// parallel_events, the latter including in-window children) or fired by
/// the coordinator (serial_events, counted per event because a window can
/// be cut short by a predicate stop). `rebalances` counts shard-map
/// rebuilds.
struct ParKernelStats {
  std::uint64_t windows = 0;
  std::uint64_t parallel_windows = 0;
  std::uint64_t parallel_events = 0;
  std::uint64_t serial_events = 0;
  std::uint64_t rebalances = 0;
};

class ParKernel {
 public:
  /// Parallel windows between adaptive shard-map rebuilds.
  static constexpr std::uint64_t kRebalanceInterval = 32;

  /// Spawns `workers` persistent threads against `ev`. `reserve_per_event`
  /// bounds how many events one executed event may schedule (lease-table
  /// servicing fan-out); the coordinator pre-stocks the slab's free list
  /// before each worker phase. `num_cores` sizes the shard map; `window` is
  /// the lookahead width W in cycles (>= 1; Machine derives it from the
  /// modeled latencies).
  ParKernel(EventQueue& ev, int workers, std::size_t reserve_per_event, int num_cores,
            Cycle window);
  ~ParKernel();

  ParKernel(const ParKernel&) = delete;
  ParKernel& operator=(const ParKernel&) = delete;

  /// Drop-in replacement for EventQueue::run_while with the same pred/limit
  /// semantics (including the bounded-horizon now() guarantee). `unfinished`
  /// reports how many simulated threads have not completed, and
  /// `threads_per_core[c]` how many were spawned on core c — together the
  /// guard that keeps the predicate stable across a parallel window (a
  /// window can complete at most the threads of the cores it touches).
  std::uint64_t run_while(const std::function<bool()>& pred, Cycle limit,
                          const std::function<std::size_t()>& unfinished,
                          const std::vector<std::size_t>& threads_per_core);

  const ParKernelStats& stats() const noexcept { return stats_; }
  int workers() const noexcept { return nworkers_; }
  Cycle window() const noexcept { return window_; }

  /// Current core→worker shard map (tests / introspection).
  const std::vector<std::uint32_t>& shard_map() const noexcept { return shard_map_; }

 private:
  void worker_main(int w);
  void maybe_rebalance();

  EventQueue& ev_;
  const int nworkers_;
  const std::size_t reserve_per_event_;
  const int num_cores_;
  const Cycle window_;
  ParKernelStats stats_;
  std::vector<EventQueue::ParLane> lanes_;  ///< One per worker.
  std::vector<std::vector<EventQueue::LocalEntry>> shards_;  ///< Per-worker slices.
  std::vector<EventQueue::Node> batch_;       ///< Window drain scratch.
  std::vector<EventQueue::Node> extra_;       ///< Extension-cycle drain scratch.
  std::vector<std::uint32_t> batch_worker_;   ///< Worker of batch_[i].
  std::vector<std::uint32_t> shard_map_;      ///< core -> worker.
  std::vector<std::uint64_t> occupancy_;      ///< Per-core drained-event counts.
  std::vector<std::uint8_t> seen_;            ///< Guard scratch (per core).
  std::vector<std::uint32_t> touched_;        ///< Cores seen in this window.
  std::vector<std::uint64_t> load_;           ///< Rebalance scratch (per worker).
  std::vector<std::uint32_t> order_;          ///< Rebalance scratch (core order).
  std::uint64_t windows_since_rebalance_ = 0;
  std::barrier<> start_;
  std::barrier<> done_;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
};

}  // namespace lrsim
