// Copyright (c) 2026 lrsim authors. MIT license.
//
// Machine-wide statistics: coherence messages, cache events, lease events,
// and the event-based energy model used for the paper's nJ/operation plots.
//
// The paper (Section 7) notes that "messages and cache misses are correlated
// with energy results"; accordingly, energy here is computed directly from
// those counters with per-event costs (EnergyModel).
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <type_traits>

namespace lrsim {

/// Per-event energy costs in nanojoules. Defaults are McPAT-flavoured
/// ballpark values for a 32nm-class tiled CMP; the absolute scale is not
/// meant to match the paper's testbed, only the *relative* trends.
struct EnergyModel {
  double l1_access_nj = 0.1;    ///< L1 tag+data access.
  double l2_access_nj = 0.5;    ///< Shared L2 slice access.
  double dir_access_nj = 0.2;   ///< Directory lookup/update.
  double msg_nj = 0.75;         ///< One coherence message traversing the NoC.
  double dram_access_nj = 5.0;  ///< Off-chip access (first touch of a line).
};

/// Counter block. One instance per core plus one machine-wide aggregate.
struct Stats {
  // --- coherence messages (network traversals) -------------------------
  std::uint64_t msgs_gets = 0;       ///< GetS requests core->directory.
  std::uint64_t msgs_getx = 0;       ///< GetX / Upgrade requests core->directory.
  std::uint64_t msgs_inv = 0;        ///< Invalidation probes directory->core.
  std::uint64_t msgs_downgrade = 0;  ///< Downgrade (M->S) probes directory->core.
  std::uint64_t msgs_data = 0;       ///< Data replies (dir->core or core->core).
  std::uint64_t msgs_ack = 0;        ///< Acks (inv acks, completion notices).
  std::uint64_t msgs_wb = 0;         ///< Writebacks / eviction notices core->dir.
  std::uint64_t msgs_nack = 0;       ///< NACK + retry probes (nack_on_lease mode).

  // --- cache events -----------------------------------------------------
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l1_evictions = 0;
  std::uint64_t l2_accesses = 0;
  std::uint64_t l2_evictions = 0;  ///< Finite-L2 capacity evictions (back-invalidations).
  std::uint64_t dram_accesses = 0;

  // --- lease engine (Section 3) ------------------------------------------
  std::uint64_t leases_taken = 0;
  std::uint64_t releases_voluntary = 0;
  std::uint64_t releases_involuntary = 0;  ///< Timer expiry (counter hit 0).
  std::uint64_t releases_evicted = 0;      ///< FIFO-evicted at MAX_NUM_LEASES.
  std::uint64_t releases_broken = 0;       ///< Broken by a priority request.
  std::uint64_t leases_suppressed = 0;     ///< Skipped by the futility predictor (Section 5).
  std::uint64_t lease_adapt_grow = 0;      ///< Adaptive controller grew a per-line duration.
  std::uint64_t lease_adapt_shrink = 0;    ///< Adaptive controller shrank a per-line duration.
  std::uint64_t probes_queued = 0;         ///< Probes parked behind a lease.
  std::uint64_t probe_queued_cycles = 0;   ///< Total cycles probes spent parked.

  // --- hybrid sharer sets (>64-core directories) --------------------------
  /// Probes/back-invalidations fanned out from an inexact coarse-vector
  /// cover (sharer_set.hpp). A sub-count of msgs_inv (already billed as
  /// real NoC traffic in total_messages()/energy); it isolates the modeled
  /// cost of the coarse representation. Always 0 when num_cores <= 64.
  std::uint64_t probes_coarse = 0;

  // --- application-level -------------------------------------------------
  std::uint64_t ops_completed = 0;   ///< Data-structure operations finished.
  std::uint64_t cas_attempts = 0;
  std::uint64_t cas_failures = 0;
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t lock_failed_trylocks = 0;
  std::uint64_t txn_commits = 0;
  std::uint64_t txn_aborts = 0;

  std::uint64_t total_messages() const noexcept {
    return msgs_gets + msgs_getx + msgs_inv + msgs_downgrade + msgs_data + msgs_ack + msgs_wb +
           msgs_nack;
  }

  /// Total energy in nanojoules under `m`.
  double energy_nj(const EnergyModel& m = {}) const noexcept {
    return static_cast<double>(l1_hits + l1_misses) * m.l1_access_nj +
           static_cast<double>(l2_accesses) * m.l2_access_nj +
           static_cast<double>(total_messages()) * m.msg_nj +
           static_cast<double>(l1_misses) * m.dir_access_nj +
           static_cast<double>(dram_accesses) * m.dram_access_nj;
  }

  /// Energy per completed operation (nJ/op); 0 if no ops completed.
  double energy_per_op_nj(const EnergyModel& m = {}) const noexcept {
    return ops_completed == 0 ? 0.0 : energy_nj(m) / static_cast<double>(ops_completed);
  }

  double messages_per_op() const noexcept {
    return ops_completed == 0 ? 0.0
                              : static_cast<double>(total_messages()) / static_cast<double>(ops_completed);
  }

  double misses_per_op() const noexcept {
    return ops_completed == 0 ? 0.0
                              : static_cast<double>(l1_misses) / static_cast<double>(ops_completed);
  }

  friend bool operator==(const Stats&, const Stats&) = default;

  Stats& operator+=(const Stats& o) noexcept {
    msgs_gets += o.msgs_gets;
    msgs_getx += o.msgs_getx;
    msgs_inv += o.msgs_inv;
    msgs_downgrade += o.msgs_downgrade;
    msgs_data += o.msgs_data;
    msgs_ack += o.msgs_ack;
    msgs_wb += o.msgs_wb;
    msgs_nack += o.msgs_nack;
    l1_hits += o.l1_hits;
    l1_misses += o.l1_misses;
    l1_evictions += o.l1_evictions;
    l2_accesses += o.l2_accesses;
    l2_evictions += o.l2_evictions;
    dram_accesses += o.dram_accesses;
    leases_taken += o.leases_taken;
    releases_voluntary += o.releases_voluntary;
    releases_involuntary += o.releases_involuntary;
    releases_evicted += o.releases_evicted;
    releases_broken += o.releases_broken;
    leases_suppressed += o.leases_suppressed;
    lease_adapt_grow += o.lease_adapt_grow;
    lease_adapt_shrink += o.lease_adapt_shrink;
    probes_queued += o.probes_queued;
    probe_queued_cycles += o.probe_queued_cycles;
    probes_coarse += o.probes_coarse;
    ops_completed += o.ops_completed;
    cas_attempts += o.cas_attempts;
    cas_failures += o.cas_failures;
    lock_acquisitions += o.lock_acquisitions;
    lock_failed_trylocks += o.lock_failed_trylocks;
    txn_commits += o.txn_commits;
    txn_aborts += o.txn_aborts;
    return *this;
  }

  /// Field-wise subtraction; the harness uses it to strip prefill-phase
  /// counters from a run's totals. Counters are cumulative, so `o` must be
  /// an earlier snapshot of the same accumulation (each field of `*this`
  /// >= the field of `o`).
  Stats& operator-=(const Stats& o) noexcept {
    msgs_gets -= o.msgs_gets;
    msgs_getx -= o.msgs_getx;
    msgs_inv -= o.msgs_inv;
    msgs_downgrade -= o.msgs_downgrade;
    msgs_data -= o.msgs_data;
    msgs_ack -= o.msgs_ack;
    msgs_wb -= o.msgs_wb;
    msgs_nack -= o.msgs_nack;
    l1_hits -= o.l1_hits;
    l1_misses -= o.l1_misses;
    l1_evictions -= o.l1_evictions;
    l2_accesses -= o.l2_accesses;
    l2_evictions -= o.l2_evictions;
    dram_accesses -= o.dram_accesses;
    leases_taken -= o.leases_taken;
    releases_voluntary -= o.releases_voluntary;
    releases_involuntary -= o.releases_involuntary;
    releases_evicted -= o.releases_evicted;
    releases_broken -= o.releases_broken;
    leases_suppressed -= o.leases_suppressed;
    lease_adapt_grow -= o.lease_adapt_grow;
    lease_adapt_shrink -= o.lease_adapt_shrink;
    probes_queued -= o.probes_queued;
    probe_queued_cycles -= o.probe_queued_cycles;
    probes_coarse -= o.probes_coarse;
    ops_completed -= o.ops_completed;
    cas_attempts -= o.cas_attempts;
    cas_failures -= o.cas_failures;
    lock_acquisitions -= o.lock_acquisitions;
    lock_failed_trylocks -= o.lock_failed_trylocks;
    txn_commits -= o.txn_commits;
    txn_aborts -= o.txn_aborts;
    return *this;
  }

  friend Stats operator-(Stats a, const Stats& b) noexcept {
    a -= b;
    return a;
  }

  void print(std::ostream& os, const std::string& label) const {
    os << "[" << label << "] msgs=" << total_messages() << " (GetS " << msgs_gets << ", GetX "
       << msgs_getx << ", Inv " << msgs_inv << ", Dwn " << msgs_downgrade << ", Data " << msgs_data
       << ", Ack " << msgs_ack << ", WB " << msgs_wb << ", Nack " << msgs_nack
       << ")  L1 hit/miss=" << l1_hits << "/"
       << l1_misses << "  leases=" << leases_taken << " (vol " << releases_voluntary << ", invol "
       << releases_involuntary << ")  ops=" << ops_completed;
    // Only >64-core machines can fan out coarse probes; keeping the line
    // unchanged when zero preserves byte-identical output for every legacy
    // config.
    if (probes_coarse != 0) os << "  coarse-probes=" << probes_coarse;
    // Same discipline: only the adaptive lease policy moves these, so the
    // static-policy line stays byte-identical.
    if (lease_adapt_grow != 0 || lease_adapt_shrink != 0)
      os << "  lease-adapt=+" << lease_adapt_grow << "/-" << lease_adapt_shrink;
    os << "\n";
  }
};

/// Merge-safety guard. Stats is deliberately a flat block of uint64
/// counters, and every merge path — operator+= (per-core/per-shard
/// aggregation), operator-= (prefill stripping), operator== (determinism
/// tests) and print — must enumerate all of them. Growing the struct
/// without updating this count (and the member lists above) fails here at
/// compile time instead of silently dropping the new counter from merges.
inline constexpr std::size_t kStatsCounterCount = 32;
static_assert(sizeof(Stats) == kStatsCounterCount * sizeof(std::uint64_t),
              "Stats gained or lost a counter: update kStatsCounterCount AND "
              "operator+=, operator-=, and print so merges stay lossless");
static_assert(std::is_trivially_copyable_v<Stats>,
              "Stats must stay a flat counter block (snapshot/merge by value)");

}  // namespace lrsim
