// Copyright (c) 2026 lrsim authors. MIT license.
//
// InplaceFn: a fixed-capacity, non-allocating std::function replacement.
//
// The event kernel fires hundreds of millions of callbacks per figure-bench
// run. A std::function whose captures exceed the small-buffer optimisation
// heap-allocates on construction and again on every copy; profiling showed
// those allocations dominating host time (see docs/ENGINE.md). InplaceFn
// stores the callable inline in `Bytes` of aligned storage and refuses — at
// compile time — any callable that does not fit, so capture growth in the
// coherence layer is caught by the build instead of silently re-introducing
// allocations.
//
// Differences from std::function, all deliberate:
//  * move-only (copying a continuation is almost always a bug in event code);
//  * accepts move-only callables (continuations own other continuations);
//  * no target()/target_type(); empty-call is checked only by assert.
//
// Capacity tiers for the simulator's callback chains are defined in
// coherence/callbacks.hpp.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace lrsim {

template <typename Sig, std::size_t Bytes>
class InplaceFn;  // primary template, never defined

template <typename R, typename... Args, std::size_t Bytes>
class InplaceFn<R(Args...), Bytes> {
 public:
  InplaceFn() noexcept = default;
  InplaceFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Wraps any callable invocable as R(Args...). Rejects, at compile time,
  /// callables larger than `Bytes` — raise the owning tier's capacity in
  /// coherence/callbacks.hpp if a legitimate capture outgrows it.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InplaceFn> &&
                                        !std::is_same_v<D, std::nullptr_t>>>
  InplaceFn(F&& f) {  // NOLINT(google-explicit-constructor)
    static_assert(std::is_invocable_r_v<R, D&, Args...>,
                  "callable is not invocable with this InplaceFn signature");
    static_assert(sizeof(D) <= Bytes,
                  "callable too large for this InplaceFn tier; grow the tier "
                  "in coherence/callbacks.hpp (see docs/ENGINE.md)");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "over-aligned callables are not supported");
    ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
    invoke_ = [](void* s, Args&&... args) -> R {
      return (*std::launder(reinterpret_cast<D*>(s)))(std::forward<Args>(args)...);
    };
    manage_ = [](void* src, void* dst) {
      D* from = std::launder(reinterpret_cast<D*>(src));
      if (dst != nullptr) ::new (dst) D(std::move(*from));
      from->~D();
    };
  }

  InplaceFn(InplaceFn&& o) noexcept { move_from(o); }

  InplaceFn& operator=(InplaceFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }

  InplaceFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InplaceFn> &&
                                        !std::is_same_v<D, std::nullptr_t>>>
  InplaceFn& operator=(F&& f) {
    reset();
    ::new (static_cast<void*>(this)) InplaceFn(std::forward<F>(f));
    return *this;
  }

  InplaceFn(const InplaceFn&) = delete;
  InplaceFn& operator=(const InplaceFn&) = delete;

  ~InplaceFn() { reset(); }

  /// Invokes the stored callable. Like std::function, const-callable: the
  /// wrapper is a handle, constness of the target is not propagated.
  R operator()(Args... args) const {
    assert(invoke_ != nullptr && "calling an empty InplaceFn");
    return invoke_(const_cast<void*>(static_cast<const void*>(storage_)),
                   std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  static constexpr std::size_t capacity() noexcept { return Bytes; }

 private:
  void move_from(InplaceFn& o) noexcept {
    if (o.invoke_ == nullptr) return;
    o.manage_(o.storage_, storage_);  // move-construct into us, destroy theirs
    invoke_ = o.invoke_;
    manage_ = o.manage_;
    o.invoke_ = nullptr;
    o.manage_ = nullptr;
  }

  void reset() noexcept {
    if (manage_ != nullptr) manage_(storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  using Invoke = R (*)(void*, Args&&...);
  /// Moves the target from src into dst (when dst != null), then destroys src.
  using Manage = void (*)(void* src, void* dst);

  // Thunk pointers deliberately precede the storage: invoking a small-capture
  // InplaceFn then touches a single cache line (pointers + leading capture
  // bytes) instead of one line at offset 0 and another past `Bytes`.
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[Bytes];
};

}  // namespace lrsim
