// Copyright (c) 2026 lrsim authors. MIT license.
//
// Opt-in protocol invariant checking (Machine::enable_invariants).
//
// The paper's safety claims are stated machine-wide; the end-to-end oracles
// (atomicity-oracle fuzzing, golden-model replay) tell us *that* something
// broke, this checker tells us *which invariant* and *when*. After every
// state transition it verifies:
//
//   1. SWMR (single-writer / multiple-reader) — at most one M/E copy per
//      line across all L1s, never coexisting with S/O copies, and at most
//      one O provider; cross-checked against the directory's owner/sharer
//      bookkeeping whenever the line has no transaction in flight. Leases
//      park probes but must never suspend coherence itself.
//   2. Data-value — a line's memory image may only change while some core
//      holds it in M/E (equivalently: the value observed when uncached or
//      shared equals the last exclusive holder's final write). Catches lost
//      invalidations and phantom writers that the replay oracle would only
//      surface many operations later.
//   3. Lease bounds — per-core table size <= MAX_NUM_LEASES, every
//      countdown <= MAX_LEASE_TIME and never past its deadline, a granted
//      single lease always has a running countdown, a granted lease pins
//      its line in M/E (no phantom leases), and no probe stays parked
//      longer than MAX_LEASE_TIME plus a service slack (the paper's
//      bounded-delay guarantee, Proposition 2).
//   4. Directory FIFO — per-line service order equals arrival order
//      (Assumption 1, on which Proposition 1 rests).
//
// Hook points mirror the Tracer pattern: Directory, CacheController and
// LeaseTable each hold an optional pointer (null = zero cost beyond the
// check) and report transitions. A violation throws InvariantViolation
// carrying the last trace records for the offending line; Machine::run
// propagates it to the caller.
//
// Caveat: while the checker is armed, workloads must not write SimMemory
// directly mid-run (functional init before Machine::run is fine) — a
// direct poke is indistinguishable from a hidden writer.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "coherence/config.hpp"
#include "sim/trace.hpp"
#include "util/types.hpp"

namespace lrsim {

class CacheController;
class Directory;
class EventQueue;
class SimMemory;

/// Which invariant family a violation belongs to.
enum class InvariantKind : std::uint8_t {
  kSwmr,        ///< Coherence: conflicting L1 copies or directory mismatch.
  kDataValue,   ///< Memory image changed with no exclusive owner.
  kLeaseBound,  ///< Lease table size / countdown / pinning violated.
  kProbeDelay,  ///< A probe stayed parked beyond the bounded-delay guarantee.
  kDirFifo,     ///< Per-line service order diverged from arrival order.
};

const char* invariant_kind_name(InvariantKind k);

/// Structured invariant failure. what() includes the offending line, the
/// simulated cycle, and the most recent trace records for that line.
class InvariantViolation : public std::runtime_error {
 public:
  InvariantViolation(InvariantKind kind, LineId line, Cycle when, const std::string& detail,
                     std::vector<TraceRecord> history);

  InvariantKind kind() const noexcept { return kind_; }
  LineId line() const noexcept { return line_; }
  Cycle when() const noexcept { return when_; }
  const std::vector<TraceRecord>& history() const noexcept { return history_; }

 private:
  InvariantKind kind_;
  LineId line_;
  Cycle when_;
  std::vector<TraceRecord> history_;
};

/// Runtime protocol invariant checker. Wired by Machine::enable_invariants;
/// see the file comment for the invariant families.
class InvariantChecker {
 public:
  InvariantChecker(EventQueue& ev, SimMemory& mem, const MachineConfig& cfg)
      : ev_(ev), mem_(mem), cfg_(cfg) {
    // Default parked-probe bound: a probe parks only on a granted lease.
    // Started countdowns bound it by MAX_LEASE_TIME directly; during
    // MultiLease acquisition each remaining grant can itself wait behind
    // queued requests that each park up to MAX_LEASE_TIME, so the slack
    // scales with the group size and the core count (a loose but finite
    // bound — a wedged probe exceeds any finite bound eventually).
    park_slack_ = static_cast<Cycle>(cfg.max_num_leases) *
                      static_cast<Cycle>(cfg.num_cores) * (cfg.max_lease_time + 1000) +
                  10000;
  }

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  /// Wired by Machine after construction.
  void attach(Directory* dir, std::vector<CacheController*> cores) {
    dir_ = dir;
    cores_ = std::move(cores);
  }
  void set_tracer(Tracer* t) { tracer_ = t; }

  /// Overrides the parked-probe slack (cycles beyond MAX_LEASE_TIME a probe
  /// may legally stay parked). Tests tighten this to the workload's shape.
  void set_park_slack(Cycle s) { park_slack_ = s; }

  // --- hook points (called by the wired components) -------------------------

  /// Any coherence / lease state transition touching `line` completed.
  void on_line_event(LineId line);

  /// A store retired on `core` for `line` (the value may legally change).
  void on_store(CoreId core, LineId line);

  /// A request from `requester` joined `line`'s directory queue.
  void on_dir_enqueue(LineId line, CoreId requester);

  /// The directory began servicing `requester`'s request for `line`.
  void on_dir_service(LineId line, CoreId requester);

  /// The directory decided to send a coherence probe for `line` to `target`.
  /// `exact` says whether the target came from an exact sharer set (inline
  /// mask / pointers / spill) or a coarse cover:
  ///  - exact: the target must hold a copy at the send decision — a probe
  ///    to a core without one means the directory tracked a stale sharer.
  ///    Checked at send time, not arrival: the target may legally evict
  ///    while the probe is in flight.
  ///  - coarse: membership is only a *superset*, so probing a copyless
  ///    core is the modeled cost, not a bug. The rule flips to coverage:
  ///    every core actually holding an S copy must be covered by the
  ///    directory's sharer set (a naive group-bit clear on one core's
  ///    eviction would break this — see SharerSet::remove).
  void on_probe_send(LineId line, CoreId target, bool exact);

  /// A finite-L2 back-invalidation of `line` is in flight; directory
  /// cross-checks are suspended for the line until it completes (its dir
  /// entry is cleared before the L1 copies are reachable).
  void on_l2_evict_begin(LineId line) { l2_evicting_.insert(line); }
  void on_l2_evict_end(LineId line) { l2_evicting_.erase(line); }

  /// Re-checks every line seen so far plus all lease tables. Call at the
  /// end of a run for a final sweep.
  void check_all();

  /// Number of hook-triggered check passes so far (tests assert > 0 so a
  /// silently-unwired checker cannot pass).
  std::uint64_t checks_run() const noexcept { return checks_; }

 private:
  void check_line(LineId line);
  void check_lease_tables();
  [[noreturn]] void fail(InvariantKind kind, LineId line, const std::string& detail);

  EventQueue& ev_;
  SimMemory& mem_;
  const MachineConfig& cfg_;
  Directory* dir_ = nullptr;
  std::vector<CacheController*> cores_;
  Tracer* tracer_ = nullptr;
  Cycle park_slack_ = 0;

  /// Last memory image known to be legally produced (per line). Refreshed
  /// while an exclusive owner exists and on every retired store; compared
  /// whenever no core may write.
  std::unordered_map<LineId, std::array<std::uint64_t, kWordsPerLine>> stable_;
  /// Arrival order of requests awaiting service, per line (invariant 4).
  std::unordered_map<LineId, std::deque<CoreId>> fifo_;
  /// Lines whose finite-L2 back-invalidation is still in flight.
  std::unordered_set<LineId> l2_evicting_;
  std::uint64_t checks_ = 0;
};

}  // namespace lrsim
