// Copyright (c) 2026 lrsim authors. MIT license.
//
// Optional event tracing: a bounded ring of timestamped protocol events for
// debugging workloads and understanding lease behaviour. Disabled by
// default (zero cost beyond a null check); enable per machine with
// Machine::enable_tracing(capacity[, line_filter]).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <ostream>
#include <vector>

#include "util/types.hpp"

namespace lrsim {

enum class TraceEvent : std::uint8_t {
  kCpuLoad,      ///< info = byte address
  kCpuStore,     ///< info = byte address
  kCpuRmw,       ///< info = byte address (CAS/FAA/XCHG)
  kLease,        ///< info = requested duration
  kLeaseGrant,   ///< lease countdown armed
  kRelease,      ///< info = 1 if an entry existed (voluntary)
  kDirService,   ///< info = requester core; core field = home-ish (-1 flat)
  kDirComplete,  ///< info = requester core
  kProbe,        ///< probe arrived at `core`; info = 1 invalidate, 0 downgrade
  kProbePark,    ///< probe parked behind a lease
  kProbeNack,    ///< probe NACKed (nack_on_lease mode)
};

const char* trace_event_name(TraceEvent e);

struct TraceRecord {
  Cycle when = 0;
  TraceEvent event = TraceEvent::kCpuLoad;
  CoreId core = -1;
  LineId line = 0;
  std::uint64_t info = 0;
};

/// Bounded ring buffer of trace records.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 4096, std::optional<LineId> line_filter = std::nullopt)
      : capacity_(capacity), filter_(line_filter) {}

  void emit(TraceEvent ev, Cycle when, CoreId core, LineId line, std::uint64_t info = 0) {
    if (filter_ && *filter_ != line) return;
    if (capacity_ == 0) {
      // A zero-capacity ring keeps nothing; without this the == test below
      // would pop_front() an empty deque (UB). The record still counts as
      // dropped so callers can tell tracing was lossy.
      ++dropped_;
      return;
    }
    if (ring_.size() == capacity_) {
      ring_.pop_front();
      ++dropped_;
    }
    ring_.push_back(TraceRecord{when, ev, core, line, info});
  }

  std::vector<TraceRecord> records() const { return {ring_.begin(), ring_.end()}; }

  /// The most recent (up to) `n` records touching `line`, oldest first.
  /// Used by InvariantViolation to attach per-line history to a failure.
  std::vector<TraceRecord> last_for_line(LineId line, std::size_t n) const {
    std::vector<TraceRecord> out;
    for (auto it = ring_.rbegin(); it != ring_.rend() && out.size() < n; ++it) {
      if (it->line == line) out.push_back(*it);
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

  std::size_t size() const noexcept { return ring_.size(); }
  std::uint64_t dropped() const noexcept { return dropped_; }
  void clear() { ring_.clear(); }

  void dump(std::ostream& os) const {
    for (const TraceRecord& r : ring_) {
      os << "[" << r.when << "] core " << r.core << " " << trace_event_name(r.event) << " line 0x"
         << std::hex << r.line << " info 0x" << r.info << std::dec << "\n";
    }
    if (dropped_ > 0) os << "(" << dropped_ << " earlier records dropped)\n";
  }

 private:
  std::size_t capacity_;
  std::optional<LineId> filter_;
  std::deque<TraceRecord> ring_;
  std::uint64_t dropped_ = 0;
};

inline const char* trace_event_name(TraceEvent e) {
  switch (e) {
    case TraceEvent::kCpuLoad: return "load";
    case TraceEvent::kCpuStore: return "store";
    case TraceEvent::kCpuRmw: return "rmw";
    case TraceEvent::kLease: return "lease";
    case TraceEvent::kLeaseGrant: return "lease-grant";
    case TraceEvent::kRelease: return "release";
    case TraceEvent::kDirService: return "dir-service";
    case TraceEvent::kDirComplete: return "dir-complete";
    case TraceEvent::kProbe: return "probe";
    case TraceEvent::kProbePark: return "probe-park";
    case TraceEvent::kProbeNack: return "probe-nack";
  }
  return "?";
}

}  // namespace lrsim
