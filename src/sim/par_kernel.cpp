// Copyright (c) 2026 lrsim authors. MIT license.

#include "sim/par_kernel.hpp"

#include <algorithm>
#include <cstddef>
#include <numeric>

#include "sim/par_guard.hpp"

namespace lrsim {

ParKernel::ParKernel(EventQueue& ev, int workers, std::size_t reserve_per_event, int num_cores,
                     Cycle window)
    : ev_(ev),
      nworkers_(workers),
      reserve_per_event_(reserve_per_event),
      num_cores_(num_cores),
      window_(window),
      lanes_(static_cast<std::size_t>(workers)),
      shards_(static_cast<std::size_t>(workers)),
      shard_map_(static_cast<std::size_t>(num_cores)),
      occupancy_(static_cast<std::size_t>(num_cores), 0),
      seen_(static_cast<std::size_t>(num_cores), 0),
      start_(workers + 1),
      done_(workers + 1) {
  for (int c = 0; c < num_cores; ++c) {
    shard_map_[static_cast<std::size_t>(c)] =
        static_cast<std::uint32_t>(c % workers);
  }
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ParKernel::~ParKernel() {
  stop_.store(true, std::memory_order_relaxed);
  start_.arrive_and_wait();  // release the workers into the stop check
  for (std::thread& t : threads_) t.join();
}

void ParKernel::worker_main(int w) {
  // The lane pointer routes this thread's schedule/cancel calls during a
  // worker phase; the par_guard flag trips heap/first-touch ownership
  // aborts. Both are thread-local and stay set for the thread's lifetime —
  // outside a phase the thread only waits on start_, executing nothing.
  EventQueue::par_lane_tls() = &lanes_[static_cast<std::size_t>(w)];
  par::set_worker_thread(true);
  for (;;) {
    start_.arrive_and_wait();
    if (stop_.load(std::memory_order_relaxed)) return;
    EventQueue::ParLane& lane = lanes_[static_cast<std::size_t>(w)];
    const std::vector<EventQueue::LocalEntry>& shard = shards_[static_cast<std::size_t>(w)];
    // Merge the pre-sorted shard slice (drained nodes, ascending (when, seq))
    // with the in-window children heap that fills as events execute. At one
    // cycle every drained node precedes every child (see LocalEntry).
    std::size_t si = 0;
    std::vector<EventQueue::LocalEntry>& q = lane.inwin;
    while (si < shard.size() || !q.empty()) {
      bool take_shard;
      if (q.empty()) {
        take_shard = true;
      } else if (si == shard.size()) {
        take_shard = false;
      } else {
        take_shard = shard[si].when <= q.front().when;
      }
      if (take_shard) {
        ev_.par_fire_entry(lane, shard[si++]);
      } else {
        std::pop_heap(q.begin(), q.end(), EventQueue::LocalLater{});
        const EventQueue::LocalEntry e = q.back();
        q.pop_back();
        ev_.par_fire_entry(lane, e);
      }
    }
    par::set_current_core(-1);
    done_.arrive_and_wait();
  }
}

void ParKernel::maybe_rebalance() {
  if (++windows_since_rebalance_ < kRebalanceInterval) return;
  windows_since_rebalance_ = 0;
  // LPT greedy: heaviest cores first, each onto the least-loaded worker
  // (lowest index on ties). Deterministic given the occupancy counts, which
  // depend only on simulated-event traffic — but the map never influences
  // simulated results anyway, only which host thread runs which core.
  order_.resize(static_cast<std::size_t>(num_cores_));
  std::iota(order_.begin(), order_.end(), 0u);
  std::stable_sort(order_.begin(), order_.end(), [this](std::uint32_t a, std::uint32_t b) {
    if (occupancy_[a] != occupancy_[b]) return occupancy_[a] > occupancy_[b];
    return a < b;
  });
  load_.assign(static_cast<std::size_t>(nworkers_), 0);
  for (const std::uint32_t core : order_) {
    std::size_t best = 0;
    for (std::size_t w = 1; w < load_.size(); ++w) {
      if (load_[w] < load_[best]) best = w;
    }
    shard_map_[core] = static_cast<std::uint32_t>(best);
    load_[best] += occupancy_[core];
  }
  std::fill(occupancy_.begin(), occupancy_.end(), 0);
  ++stats_.rebalances;
}

std::uint64_t ParKernel::run_while(const std::function<bool()>& pred, Cycle limit,
                                   const std::function<std::size_t()>& unfinished,
                                   const std::vector<std::size_t>& threads_per_core) {
  std::uint64_t fired = 0;
  for (;;) {
    if (!pred()) break;
    EventQueue::Node head;
    const EventQueue::Src src = ev_.peek(head);
    if (src == EventQueue::Src::kNone) {
      // Drained: a bounded-horizon run still owes the caller the horizon
      // (same contract as EventQueue::run_impl).
      if (limit != UINT64_MAX && ev_.now() < limit) ev_.set_now(limit);
      break;
    }
    if (head.when > limit) {
      if (ev_.now() < limit) ev_.set_now(limit);
      break;
    }
    const Cycle t0 = head.when;
    ev_.drain_next_cycle(batch_);
    ev_.set_now(t0);
    ++stats_.windows;

    bool all_core = true;
    for (const EventQueue::Node& n : batch_) {
      if (n.domain == EventQueue::kGlobalDomain) {
        all_core = false;
        break;
      }
    }
    const std::size_t first_cycle_n = batch_.size();

    // Extend the window up to W cycles: every additional cycle of core-only
    // events joins the batch. A cycle holding a global event is requeued
    // whole (original seqs preserved) and closes the window early — the
    // in-window children of the kept cycles must serial-order after it, so
    // the effective window end moves back to just before it.
    Cycle window_end = t0;
    if (all_core && window_ > 1) {
      window_end = t0 + window_ - 1;
      if (window_end > limit) window_end = limit;
      for (;;) {
        const Cycle next = ev_.peek_next_when();
        if (next > window_end) break;
        ev_.drain_next_cycle(extra_);
        bool cycle_core = true;
        for (const EventQueue::Node& n : extra_) {
          if (n.domain == EventQueue::kGlobalDomain) {
            cycle_core = false;
            break;
          }
        }
        if (!cycle_core) {
          for (const EventQueue::Node& n : extra_) ev_.requeue_drained(n);
          window_end = next - 1;
          break;
        }
        batch_.insert(batch_.end(), extra_.begin(), extra_.end());
      }
    }

    // A window may run on the workers only when (a) every event is
    // core-tagged — a single kGlobalDomain event can touch directory state
    // shared with anyone; (b) the predicate cannot flip mid-window — a
    // window completes at most the simulated threads of the cores it
    // touches, so strictly more unfinished threads than that keeps pred()
    // invariant; and (c) at least two shards are non-empty, otherwise
    // parallelism is pure barrier overhead.
    bool parallel = all_core && batch_.size() >= 2;
    std::size_t involved = 0;
    if (parallel) {
      std::size_t max_completions = 0;
      touched_.clear();
      for (const EventQueue::Node& n : batch_) {
        if (seen_[n.domain] == 0) {
          seen_[n.domain] = 1;
          touched_.push_back(n.domain);
          max_completions += threads_per_core[n.domain];
        }
      }
      involved = touched_.size();
      for (const std::uint32_t d : touched_) seen_[d] = 0;
      parallel = unfinished() > max_completions;
    }
    if (parallel) {
      std::size_t nonempty = 0;
      for (auto& s : shards_) s.clear();
      batch_worker_.clear();
      for (const EventQueue::Node& n : batch_) {
        const std::uint32_t w = shard_map_[n.domain];
        if (shards_[w].empty()) ++nonempty;
        shards_[w].push_back(
            EventQueue::LocalEntry{n.when, n.seq, n.idx, n.gen, n.domain, /*cls=*/0});
        batch_worker_.push_back(w);
        ++occupancy_[n.domain];
      }
      parallel = nonempty >= 2;
    }

    if (parallel) {
      // Each executed event may schedule up to reserve_per_event_ children,
      // and each involved core can chain up to one in-window child per
      // window cycle — reserve for both so workers never grow the slab.
      ev_.par_reserve((batch_.size() + involved * (static_cast<std::size_t>(window_) + 1)) *
                      reserve_per_event_);
      ev_.set_par_window_end(window_end);
      ev_.par_phase_begin();
      start_.arrive_and_wait();
      done_.arrive_and_wait();
      ev_.par_phase_end();
      // Serial execution would leave now() at the last fired event; restore
      // that before the replay so committed children land on the right side
      // of the calendar horizon.
      Cycle max_when = ev_.now();
      for (const EventQueue::ParLane& lane : lanes_) {
        if (lane.max_fired_when > max_when) max_when = lane.max_fired_when;
      }
      ev_.set_now(max_when);
      const std::uint64_t window_fired = ev_.par_commit_window(lanes_, batch_, batch_worker_);
      fired += window_fired;
      ++stats_.parallel_windows;
      stats_.parallel_events += window_fired;
      maybe_rebalance();
    } else {
      // Serial fallback fires only the first drained cycle — events of later
      // window cycles go back to the queue, because events fired at t0 may
      // schedule children that serial-order before them.
      for (std::size_t j = first_cycle_n; j < batch_.size(); ++j) {
        ev_.requeue_drained(batch_[j]);
      }
      bool stopped = false;
      for (std::size_t i = 0; i < first_cycle_n; ++i) {
        // Serial run_impl checks pred() before every fire; replicate that,
        // and if it flips, hand the unexecuted tail back to the queue with
        // its original ordering keys.
        if (i > 0 && !pred()) {
          for (std::size_t j = i; j < first_cycle_n; ++j) {
            ev_.requeue_drained(batch_[j]);
          }
          stopped = true;
          break;
        }
        if (ev_.fire_drained(batch_[i])) {
          ++fired;
          ++stats_.serial_events;
        }
      }
      if (stopped) break;
    }
  }
  return fired;
}

}  // namespace lrsim
