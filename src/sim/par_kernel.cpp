// Copyright (c) 2026 lrsim authors. MIT license.

#include "sim/par_kernel.hpp"

#include <cstddef>

#include "sim/par_guard.hpp"

namespace lrsim {

ParKernel::ParKernel(EventQueue& ev, int workers, std::size_t reserve_per_event)
    : ev_(ev),
      nworkers_(workers),
      reserve_per_event_(reserve_per_event),
      lanes_(static_cast<std::size_t>(workers)),
      shards_(static_cast<std::size_t>(workers)),
      start_(workers + 1),
      done_(workers + 1) {
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ParKernel::~ParKernel() {
  stop_.store(true, std::memory_order_relaxed);
  start_.arrive_and_wait();  // release the workers into the stop check
  for (std::thread& t : threads_) t.join();
}

void ParKernel::worker_main(int w) {
  // The lane pointer routes this thread's schedule/cancel calls during a
  // worker phase; the par_guard flag trips SimHeap/first-touch aborts. Both
  // are thread-local and stay set for the thread's lifetime — outside a
  // phase the thread only waits on start_, executing nothing.
  EventQueue::par_lane_tls() = &lanes_[static_cast<std::size_t>(w)];
  par::set_worker_thread(true);
  for (;;) {
    start_.arrive_and_wait();
    if (stop_.load(std::memory_order_relaxed)) return;
    EventQueue::ParLane& lane = lanes_[static_cast<std::size_t>(w)];
    for (const WorkItem& it : shards_[static_cast<std::size_t>(w)]) {
      ev_.par_fire(lane, it.node, it.parent);
    }
    done_.arrive_and_wait();
  }
}

std::uint64_t ParKernel::run_while(const std::function<bool()>& pred, Cycle limit,
                                   const std::function<std::size_t()>& unfinished) {
  std::uint64_t fired = 0;
  for (;;) {
    if (!pred()) break;
    EventQueue::Node head;
    const EventQueue::Src src = ev_.peek(head);
    if (src == EventQueue::Src::kNone) {
      // Drained: a bounded-horizon run still owes the caller the horizon
      // (same contract as EventQueue::run_impl).
      if (limit != UINT64_MAX && ev_.now() < limit) ev_.set_now(limit);
      break;
    }
    if (head.when > limit) {
      if (ev_.now() < limit) ev_.set_now(limit);
      break;
    }
    ev_.drain_next_cycle(batch_);
    ev_.set_now(head.when);
    ++stats_.windows;

    // A batch may run on the workers only when (a) every event is
    // core-tagged — a single kGlobalDomain event can touch directory state
    // shared with anyone; (b) the predicate cannot flip mid-batch — one
    // event completes at most one simulated thread, so strictly more
    // unfinished threads than batch events keeps pred() invariant; and
    // (c) at least two shards are non-empty, otherwise parallelism is pure
    // barrier overhead.
    bool parallel = batch_.size() >= 2 && unfinished() > batch_.size();
    if (parallel) {
      for (const EventQueue::Node& n : batch_) {
        if (n.domain == EventQueue::kGlobalDomain) {
          parallel = false;
          break;
        }
      }
    }
    if (parallel) {
      std::size_t nonempty = 0;
      for (auto& s : shards_) s.clear();
      for (std::size_t i = 0; i < batch_.size(); ++i) {
        auto& shard =
            shards_[batch_[i].domain % static_cast<std::uint32_t>(nworkers_)];
        if (shard.empty()) ++nonempty;
        shard.push_back(WorkItem{batch_[i], static_cast<std::uint32_t>(i)});
      }
      parallel = nonempty >= 2;
    }

    if (parallel) {
      ev_.par_reserve(batch_.size() * reserve_per_event_);
      ev_.par_phase_begin();
      start_.arrive_and_wait();
      done_.arrive_and_wait();
      ev_.par_phase_end();
      const std::uint64_t batch_fired = ev_.par_commit(lanes_);
      fired += batch_fired;
      ++stats_.parallel_windows;
      stats_.parallel_events += batch_fired;
    } else {
      bool stopped = false;
      for (std::size_t i = 0; i < batch_.size(); ++i) {
        // Serial run_impl checks pred() before every fire; replicate that,
        // and if it flips, hand the unexecuted tail back to the queue with
        // its original ordering keys.
        if (i > 0 && !pred()) {
          for (std::size_t j = i; j < batch_.size(); ++j) {
            ev_.requeue_drained(batch_[j]);
          }
          stopped = true;
          break;
        }
        if (ev_.fire_drained(batch_[i])) {
          ++fired;
          ++stats_.serial_events;
        }
      }
      if (stopped) break;
    }
  }
  return fired;
}

}  // namespace lrsim
