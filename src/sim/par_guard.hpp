// Copyright (c) 2026 lrsim authors. MIT license.
//
// Thread-local markers for the parallel kernel's worker phase.
//
// While ParKernel executes a batch window on worker threads, simulated
// state is partitioned by construction (each event is tagged with the core
// domain whose private state it touches; SWMR makes the M-state owner's
// memory writes exclusive). Host-side *shared* facilities that are not part
// of that partition must not be reached from a worker, or runs stop being
// bit-identical to serial. Since PR 7, SimHeap allocation and SimMemory
// first-touch route through deterministic per-core arenas and ARE legal in
// a worker phase when performed on behalf of the executing core; the guard
// below remains as the loud backstop for anything still outside the
// partition (global-heap allocation, cross-core arena access).
// docs/ENGINE.md ("Parallel kernel") lists what is eligible.
#pragma once

#include <cstdio>
#include <cstdlib>

#include "util/types.hpp"

namespace lrsim::par {

inline thread_local bool t_in_worker_phase = false;

/// Core whose event the current worker thread is executing, or -1 outside a
/// worker phase. Set by ParKernel before each fire; used by SimHeap to check
/// that arena allocations stay within the executing core's partition.
inline thread_local CoreId t_current_core = -1;

/// Name of the workload currently driving the machine ("<struct>/<policy>"
/// from the registry, or whatever the harness sets). Purely diagnostic:
/// quoted by unsafe_in_worker so eligibility regressions name themselves.
inline const char*& workload_name() noexcept {
  static const char* name = "(unnamed workload)";
  return name;
}

/// True on a ParKernel worker thread while it is executing a batch.
inline bool in_worker_phase() noexcept { return t_in_worker_phase; }

/// Set by ParKernel worker threads at startup; never call from user code.
inline void set_worker_thread(bool v) noexcept { t_in_worker_phase = v; }

/// Set by ParKernel before firing each event; -1 when not in a worker phase.
inline void set_current_core(CoreId c) noexcept { t_current_core = c; }

/// Core owning the event the calling worker thread is executing (-1 if none).
inline CoreId current_core() noexcept { return t_current_core; }

/// Records which workload is running, for abort diagnostics. The pointer
/// must stay valid for the duration of the run (string literals or
/// registry-owned storage).
inline void set_workload_name(const char* name) noexcept {
  workload_name() = name != nullptr ? name : "(unnamed workload)";
}

/// Hard stop for operations that would break serial-equivalence if run
/// concurrently. Abort (not throw): the caller may be deep inside a
/// coroutine resumed on a worker thread, where unwinding would tear the
/// simulation state anyway. Names the workload and executing core so the
/// report is actionable without a debugger.
[[noreturn]] inline void unsafe_in_worker(const char* what) {
  std::fprintf(stderr,
               "lrsim: %s inside a parallel worker phase (workload \"%s\", "
               "core %d); this operation is outside the per-core partition "
               "and must run with --sim-threads 0 (docs/ENGINE.md, "
               "\"Parallel kernel\")\n",
               what, workload_name(), static_cast<int>(t_current_core));
  std::abort();
}

}  // namespace lrsim::par
