// Copyright (c) 2026 lrsim authors. MIT license.
//
// Thread-local marker for the parallel kernel's worker phase.
//
// While ParKernel executes a same-cycle batch on worker threads, simulated
// state is partitioned by construction (each event is tagged with the core
// domain whose private state it touches; SWMR makes the M-state owner's
// memory writes exclusive). Host-side *shared* facilities that are not part
// of that partition — the SimHeap bump allocator, SimMemory's first-touch
// insertion — must not be reached from a worker, or runs stop being
// bit-identical to serial (allocation order would depend on host thread
// scheduling). They check this flag and fail loudly instead of diverging
// silently; docs/ENGINE.md ("Parallel kernel") lists what is eligible.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace lrsim::par {

inline thread_local bool t_in_worker_phase = false;

/// True on a ParKernel worker thread while it is executing a batch.
inline bool in_worker_phase() noexcept { return t_in_worker_phase; }

/// Set by ParKernel worker threads at startup; never call from user code.
inline void set_worker_thread(bool v) noexcept { t_in_worker_phase = v; }

/// Hard stop for operations that would break serial-equivalence if run
/// concurrently. Abort (not throw): the caller may be deep inside a
/// coroutine resumed on a worker thread, where unwinding would tear the
/// simulation state anyway.
[[noreturn]] inline void unsafe_in_worker(const char* what) {
  std::fprintf(stderr,
               "lrsim: %s inside a parallel worker phase; this workload "
               "performs per-operation allocation and must run with "
               "--sim-threads 0 (docs/ENGINE.md, \"Parallel kernel\")\n",
               what);
  std::abort();
}

}  // namespace lrsim::par
