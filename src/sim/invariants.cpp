// Copyright (c) 2026 lrsim authors. MIT license.

#include "sim/invariants.hpp"

#include <sstream>

#include "coherence/controller.hpp"
#include "coherence/directory.hpp"
#include "mem/memory.hpp"
#include "sim/event_queue.hpp"

namespace lrsim {

const char* invariant_kind_name(InvariantKind k) {
  switch (k) {
    case InvariantKind::kSwmr: return "SWMR";
    case InvariantKind::kDataValue: return "data-value";
    case InvariantKind::kLeaseBound: return "lease-bound";
    case InvariantKind::kProbeDelay: return "probe-delay";
    case InvariantKind::kDirFifo: return "directory-FIFO";
  }
  return "?";
}

namespace {

std::string compose_message(InvariantKind kind, LineId line, Cycle when, const std::string& detail,
                            const std::vector<TraceRecord>& history) {
  std::ostringstream os;
  os << "invariant violation [" << invariant_kind_name(kind) << "] line 0x" << std::hex << line
     << std::dec << " @ cycle " << when << ": " << detail;
  if (!history.empty()) {
    os << "\n  recent events for this line:";
    for (const TraceRecord& r : history) {
      os << "\n    [" << r.when << "] core " << r.core << " " << trace_event_name(r.event)
         << " info 0x" << std::hex << r.info << std::dec;
    }
  }
  return os.str();
}

}  // namespace

InvariantViolation::InvariantViolation(InvariantKind kind, LineId line, Cycle when,
                                       const std::string& detail, std::vector<TraceRecord> history)
    : std::runtime_error(compose_message(kind, line, when, detail, history)),
      kind_(kind),
      line_(line),
      when_(when),
      history_(std::move(history)) {}

void InvariantChecker::fail(InvariantKind kind, LineId line, const std::string& detail) {
  std::vector<TraceRecord> history;
  if (tracer_ != nullptr) history = tracer_->last_for_line(line, 32);
  throw InvariantViolation(kind, line, ev_.now(), detail, std::move(history));
}

void InvariantChecker::on_line_event(LineId line) {
  ++checks_;
  check_line(line);
  check_lease_tables();
}

void InvariantChecker::on_store(CoreId core, LineId line) {
  ++checks_;
  // The writer itself may have been invalidated in the 1-cycle window
  // between its exclusivity check and the write retiring (the transfer of
  // ownership to the new requester takes at least the probe-ack/forward
  // network latency, so the write still linearizes before the new owner's
  // access). What must NEVER hold: another core already owns the line.
  for (CacheController* cc : cores_) {
    if (cc->core_id() == core) continue;
    if (is_exclusive(cc->line_state(line))) {
      std::ostringstream os;
      os << "store retired on core " << core << " while core " << cc->core_id()
         << " holds the line exclusively";
      fail(InvariantKind::kSwmr, line, os.str());
    }
  }
  auto& snap = stable_[line];
  for (int w = 0; w < kWordsPerLine; ++w) {
    snap[static_cast<std::size_t>(w)] = mem_.read(line_base(line) + static_cast<Addr>(w) * 8);
  }
}

void InvariantChecker::on_dir_enqueue(LineId line, CoreId requester) {
  fifo_[line].push_back(requester);
}

void InvariantChecker::on_dir_service(LineId line, CoreId requester) {
  auto& q = fifo_[line];
  if (q.empty() || q.front() != requester) {
    std::ostringstream os;
    os << "service order diverged from arrival order: serviced core " << requester << ", expected ";
    if (q.empty()) {
      os << "no pending request";
    } else {
      os << "core " << q.front();
    }
    fail(InvariantKind::kDirFifo, line, os.str());
  }
  q.pop_front();
}

void InvariantChecker::on_probe_send(LineId line, CoreId target, bool exact) {
  ++checks_;
  if (exact) {
    if (cores_[static_cast<std::size_t>(target)]->line_state(line) == LineState::I) {
      std::ostringstream os;
      os << "probe targets core " << target
         << " which holds no copy of the line (stale directory sharer)";
      fail(InvariantKind::kSwmr, line, os.str());
    }
    return;
  }
  // Coarse expansion: the fan-out may legally hit copyless cores, but the
  // sharer set must still *cover* every true sharer — otherwise a live S
  // copy would miss this invalidation round and survive an exclusive grant.
  const CoreId dir_owner = dir_ != nullptr ? dir_->owner_of(line) : -1;
  for (CacheController* cc : cores_) {
    if (cc->core_id() == dir_owner) continue;  // O provider holds O, not S
    if (cc->line_state(line) == LineState::S && dir_ != nullptr &&
        !dir_->has_sharer(line, cc->core_id())) {
      std::ostringstream os;
      os << "coarse probe fan-out does not cover core " << cc->core_id()
         << " which holds a live S copy (sharer set is not a superset)";
      fail(InvariantKind::kSwmr, line, os.str());
    }
  }
}

void InvariantChecker::check_line(LineId line) {
  // --- 1. SWMR across L1s (holds at every instant) --------------------------
  CoreId excl = -1;   // holder of an M/E copy
  CoreId owned = -1;  // holder of an O copy (MOESI provider)
  int shared_cnt = 0;
  for (CacheController* cc : cores_) {
    switch (cc->line_state(line)) {
      case LineState::M:
      case LineState::E:
        if (excl != -1) {
          std::ostringstream os;
          os << "two exclusive L1 copies (cores " << excl << " and " << cc->core_id() << ")";
          fail(InvariantKind::kSwmr, line, os.str());
        }
        excl = cc->core_id();
        break;
      case LineState::O:
        if (owned != -1) {
          std::ostringstream os;
          os << "two Owned L1 copies (cores " << owned << " and " << cc->core_id() << ")";
          fail(InvariantKind::kSwmr, line, os.str());
        }
        owned = cc->core_id();
        break;
      case LineState::S:
        ++shared_cnt;
        break;
      case LineState::I:
        break;
    }
  }
  if (excl != -1 && (owned != -1 || shared_cnt > 0)) {
    std::ostringstream os;
    os << "core " << excl << " holds an exclusive copy while " << shared_cnt << " S and "
       << (owned != -1 ? 1 : 0) << " O copies exist";
    fail(InvariantKind::kSwmr, line, os.str());
  }

  // --- 1b. directory cross-check (stable lines only: no transaction in
  //     flight, no finite-L2 back-invalidation racing the entry) ------------
  if (dir_ != nullptr && !dir_->line_busy(line) && !l2_evicting_.contains(line)) {
    using LS = Directory::LineSt;
    const LS st = dir_->line_state(line);
    const CoreId dir_owner = dir_->owner_of(line);
    switch (st) {
      case LS::kModified:
      case LS::kExclusive:
        if (dir_owner < 0 || excl != dir_owner) {
          std::ostringstream os;
          os << "directory says M/E owned by core " << dir_owner << " but the L1 exclusive holder is "
             << (excl == -1 ? std::string("<none>") : std::to_string(excl));
          fail(InvariantKind::kSwmr, line, os.str());
        }
        break;
      case LS::kOwned:
        if (dir_owner < 0 || owned != dir_owner) {
          std::ostringstream os;
          os << "directory says Owned by core " << dir_owner << " but the L1 O holder is "
             << (owned == -1 ? std::string("<none>") : std::to_string(owned));
          fail(InvariantKind::kSwmr, line, os.str());
        }
        [[fallthrough]];
      case LS::kShared:
        if (excl != -1) {
          std::ostringstream os;
          os << "directory says " << (st == LS::kOwned ? "Owned" : "Shared") << " but core " << excl
             << " holds an exclusive L1 copy";
          fail(InvariantKind::kSwmr, line, os.str());
        }
        // Membership must always be a superset: an *uncovered* S copy would
        // miss invalidations (this is the coverage rule coarse mode lives
        // by). The reverse direction — a *tracked* core without an S copy
        // is a stale sharer — only holds while the set is exact (eager
        // eviction notices clear members); a coarse cover legally includes
        // copyless cores of a covered group.
        for (CacheController* cc : cores_) {
          if (cc->line_state(line) == LineState::S && !dir_->has_sharer(line, cc->core_id()) &&
              cc->core_id() != dir_owner) {
            std::ostringstream os;
            os << "core " << cc->core_id() << " holds an S copy the directory does not "
               << (dir_->sharers_exact(line) ? "track" : "cover");
            fail(InvariantKind::kSwmr, line, os.str());
          }
          if (dir_->sharers_exact(line) && dir_->has_sharer(line, cc->core_id()) &&
              cc->line_state(line) != LineState::S) {
            std::ostringstream os;
            os << "directory tracks core " << cc->core_id()
               << " as a sharer but its L1 holds no S copy (stale sharer bit)";
            fail(InvariantKind::kSwmr, line, os.str());
          }
        }
        break;
      case LS::kUncached:
        if (excl != -1 || owned != -1 || shared_cnt > 0) {
          std::ostringstream os;
          os << "directory says Uncached but L1 copies exist (excl core " << excl << ", "
             << shared_cnt << " S copies)";
          fail(InvariantKind::kSwmr, line, os.str());
        }
        break;
    }
  }

  // --- 2. data-value --------------------------------------------------------
  std::array<std::uint64_t, kWordsPerLine> cur;
  for (int w = 0; w < kWordsPerLine; ++w) {
    cur[static_cast<std::size_t>(w)] = mem_.read(line_base(line) + static_cast<Addr>(w) * 8);
  }
  auto [it, fresh] = stable_.try_emplace(line, cur);
  if (!fresh) {
    if (excl != -1) {
      it->second = cur;  // an exclusive owner may be mid-write sequence
    } else if (it->second != cur) {
      fail(InvariantKind::kDataValue, line,
           "memory image changed while no core held the line exclusively");
    }
  }
}

void InvariantChecker::check_lease_tables() {
  const Cycle now = ev_.now();
  for (CacheController* cc : cores_) {
    const LeaseTable& lt = cc->lease_table();
    if (lt.size() > cfg_.max_num_leases) {
      std::ostringstream os;
      os << "core " << cc->core_id() << " lease table holds " << lt.size() << " entries (max "
         << cfg_.max_num_leases << ")";
      fail(InvariantKind::kLeaseBound, 0, os.str());
    }
    lt.for_each([&](const LeaseTable::LeaseView& e) {
      if (e.duration > cfg_.max_lease_time) {
        fail(InvariantKind::kLeaseBound, e.line, "lease countdown exceeds MAX_LEASE_TIME");
      }
      if (e.started && now > e.deadline) {
        std::ostringstream os;
        os << "lease on core " << cc->core_id() << " outlived its deadline (now " << now
           << ", deadline " << e.deadline << ")";
        fail(InvariantKind::kLeaseBound, e.line, os.str());
      }
      if (e.granted && !e.in_group && !e.started) {
        fail(InvariantKind::kLeaseBound, e.line,
             "granted single lease has no running countdown (it would never expire)");
      }
      if (e.granted && !is_exclusive(cc->line_state(e.line))) {
        std::ostringstream os;
        os << "granted lease on core " << cc->core_id()
           << " does not pin its line in M/E (phantom lease)";
        fail(InvariantKind::kLeaseBound, e.line, os.str());
      }
      if (e.probe_parked && now - e.parked_at > cfg_.max_lease_time + park_slack_) {
        std::ostringstream os;
        os << "probe parked on core " << cc->core_id() << " for " << (now - e.parked_at)
           << " cycles (bound MAX_LEASE_TIME + slack = " << (cfg_.max_lease_time + park_slack_)
           << ")";
        fail(InvariantKind::kProbeDelay, e.line, os.str());
      }
    });
  }
}

void InvariantChecker::check_all() {
  ++checks_;
  std::vector<LineId> lines;
  lines.reserve(stable_.size());
  for (const auto& [line, snap] : stable_) {
    (void)snap;
    lines.push_back(line);
  }
  for (LineId line : lines) check_line(line);
  check_lease_tables();
}

}  // namespace lrsim
