// Copyright (c) 2026 lrsim authors. MIT license.
//
// The discrete-event kernel at the heart of lrsim.
//
// Everything in the simulated machine — network message arrival, cache/
// directory service completion, lease expiry, core wake-up — is an event
// scheduled at an absolute cycle. Events at the same cycle fire in
// scheduling order (a monotone sequence number breaks ties), which makes
// every run bit-deterministic.
//
// The kernel is allocation-free on the hot path (docs/ENGINE.md):
//
//  * callbacks are stored inline in a fixed-capacity InplaceFn instead of a
//    heap-allocating std::function;
//  * event records live in a pooled chunked slab addressed by {index,
//    generation} handles — cancellation bumps the generation (no shared_ptr,
//    no atomic refcounts) and EventHandle stays trivially copyable. Chunks
//    have stable addresses (growth never moves a live callback) and retire
//    to a per-host-thread cache on queue destruction, so back-to-back
//    simulations (one Machine per bench sample) reuse warm pages instead of
//    bouncing them off the kernel through malloc trim;
//  * a calendar ring of kCalendarSlots one-cycle buckets serves the common
//    case (fixed L1/L2/network latencies, a few cycles out) in O(1); only
//    far-future events (lease timers, DRAM) take the O(log n) binary heap.
//
// Firing order is exactly (when, tiebreak, seq) regardless of which
// structure held the event, so the rewrite is bit-identical to the old
// single-heap kernel (locked in by model_golden_test and determinism_test).
//
// Schedule-perturbation mode (enable_perturbation) replaces the same-cycle
// FIFO tie-break with a seeded random priority: different seeds explore
// different legal interleavings of simultaneous events while each seed
// remains bit-deterministic. Time order is never violated, and the
// directory's per-line request FIFO is unaffected (it is a queue data
// structure, not an event ordering — see docs/PROTOCOL.md §7). Perturbed
// events always take the heap path: a random tie-break defeats the
// calendar's append-in-seq-order invariant, and perturbation runs are
// testing runs where host speed is irrelevant.
//
// Parallel kernel hooks (src/sim/par_kernel.hpp): events may carry a *domain*
// tag naming the core whose private state the callback touches (kGlobalDomain
// for anything that can reach shared directory/L2 state). ParKernel drains a
// multi-cycle *window* of core-tagged events (width bounded by the modeled
// network latency — no core event can reach shared state sooner), runs each
// core's slice on a worker thread with a per-worker virtual clock, executes
// same-domain children inside the window locally, and replays the workers'
// schedule logs at the closing barrier in exactly the order the serial
// kernel would have produced — so the (when, tiebreak, seq) firing order
// stays bit-identical.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/inplace_fn.hpp"
#include "sim/par_guard.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace lrsim {

class EventQueue;
class ParKernel;

/// Handle to a scheduled event; allows cancellation (used by lease timers,
/// which are "cancelled" on voluntary release). Trivially copyable: it is a
/// {queue, slot index, generation} triple, valid while the EventQueue lives.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  inline void cancel();

  /// True if this handle refers to an event that is still pending.
  inline bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* q, std::uint32_t idx, std::uint64_t gen)
      : q_(q), idx_(idx), gen_(gen) {}

  EventQueue* q_ = nullptr;
  std::uint32_t idx_ = 0;
  std::uint64_t gen_ = 0;
};

/// A calendar-ring + binary-heap event queue with pooled event records,
/// inline callbacks, O(1) cancellation, and deterministic tie-break.
class EventQueue {
 public:
  /// Inline capacity for event callbacks. Sized for the deepest coherence
  /// continuation chain (a Directory::Req completion carrying a controller
  /// continuation which carries a CPU completion — see
  /// coherence/callbacks.hpp); InplaceFn rejects larger captures at compile
  /// time.
  static constexpr std::size_t kEventFnBytes = 256;
  using EventFn = InplaceFn<void(), kEventFnBytes>;

  /// Near-future horizon, in cycles. Events scheduled closer than this go to
  /// the O(1) calendar ring; the rest (lease expiries at 2K-20K cycles,
  /// DRAM-latency completions on some configs) take the binary heap.
  /// Must be a power of two.
  static constexpr Cycle kCalendarSlots = 256;

  /// Shard tag for the parallel kernel: the id of the core whose *private*
  /// state (L1, lease table, per-core Stats, coroutine frames, M-state
  /// memory words) the callback is confined to, or kGlobalDomain when the
  /// callback can touch shared state (directory, L2 queues, other cores).
  /// Purely advisory metadata in serial runs — it never affects firing order.
  using Domain = std::uint32_t;
  static constexpr Domain kGlobalDomain = UINT32_MAX;

  EventQueue() : cal_(static_cast<std::size_t>(kCalendarSlots)) {}

  ~EventQueue() {
    // Retire slab chunks to the per-thread cache (bounded) so the next
    // EventQueue on this host thread starts with warm pages. Recs handed to
    // the cache are scrubbed: callback destroyed, disarmed; their generation
    // counters carry over, which is harmless (a slot only has to match the
    // handles *this* queue issued for it).
    auto& cache = chunk_cache();
    for (auto& chunk : chunks_) {
      if (cache.size() >= kChunkCacheMax) break;
      for (std::size_t i = 0; i < kChunkRecs; ++i) {
        chunk[i].fn = nullptr;
        chunk[i].armed = false;
        chunk[i].in_calendar = false;
        chunk[i].tail = false;
        chunk[i].pending_commit = false;
      }
      cache.push_back(std::move(chunk));
    }
  }

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current simulated time. Only advances inside run_* calls. Inside a
  /// parallel worker phase each worker sees its own virtual clock — the
  /// `when` of the event it is executing — so relative scheduling and
  /// timestamp reads behave exactly as they would at that event's serial
  /// firing point, even though wall-clock execution is out of order across
  /// cores within a lookahead window.
  Cycle now() const noexcept {
    if (par_phase_) {
      if (const ParLane* lane = par_lane_tls()) return lane->local_now;
    }
    return now_;
  }

  /// Enables seeded random tie-breaking among same-cycle events. Runs stay
  /// bit-deterministic for a fixed seed. Call before scheduling the events
  /// to be perturbed; already-scheduled events keep FIFO priority (their
  /// tie-break is 0, the highest same-cycle priority).
  void enable_perturbation(std::uint64_t seed) {
    perturb_ = true;
    prng_.reseed(seed);
  }
  bool perturbed() const noexcept { return perturb_; }

  /// Schedules `fn` to run at absolute cycle `when` (>= now()). Accepts any
  /// callable (including move-only) that fits kEventFnBytes; storage comes
  /// from the pooled slab — no allocation once the pool is warm.
  template <typename F>
  EventHandle schedule_at(Cycle when, F&& fn) {
    return schedule_impl(when, std::forward<F>(fn), /*tail=*/false, kGlobalDomain);
  }

  /// Schedules `fn` to run `delay` cycles from now. Relative to the *virtual*
  /// now() so worker-phase callers schedule from their event's cycle.
  template <typename F>
  EventHandle schedule_in(Cycle delay, F&& fn) {
    return schedule_at(now() + delay, std::forward<F>(fn));
  }

  /// schedule_in with a core-domain tag (see Domain). The caller asserts the
  /// callback touches only core `d`'s private state, making it eligible for
  /// concurrent execution inside a parallel same-cycle batch.
  template <typename F>
  EventHandle schedule_in_on(Domain d, Cycle delay, F&& fn) {
    return schedule_impl(now() + delay, std::forward<F>(fn), /*tail=*/false, d);
  }

  /// Schedules a *tail* event: the caller guarantees `fn` is nothing but an
  /// operation completion — when it returns, the event is over (no epilogue
  /// code runs after it in the same event). Only inside tail events may
  /// try_advance move time: an inline completion is invisible exactly when
  /// nothing above it on the event's call stack can still schedule work at
  /// the pre-advance cycle. L1-hit completions, directory transaction legs
  /// (complete() re-arms the line's queue *before* invoking the grant, so
  /// the window test sees it), lease/release completions, and coroutine
  /// work/spawn resumes qualify; intermediate protocol steps do not.
  template <typename F>
  EventHandle schedule_tail_in(Cycle delay, F&& fn) {
    return schedule_impl(now() + delay, std::forward<F>(fn), /*tail=*/true, kGlobalDomain);
  }

  /// schedule_tail_in with a core-domain tag (see schedule_in_on).
  template <typename F>
  EventHandle schedule_tail_in_on(Domain d, Cycle delay, F&& fn) {
    return schedule_impl(now() + delay, std::forward<F>(fn), /*tail=*/true, d);
  }

  /// Runs events until the queue drains or `limit` cycles elapse.
  /// Returns the number of events fired. A bounded-horizon run (finite
  /// `limit`) always leaves now() == min(limit, next-pending-event time).
  std::uint64_t run(Cycle limit = UINT64_MAX) {
    return run_impl([] { return true; }, limit);
  }

  /// Runs while `pred()` holds and events remain. Used by Machine::run_until.
  /// The bounded-horizon now() guarantee of run() applies to the drain and
  /// horizon stops; a pred() stop leaves now() at the last fired event.
  template <typename Pred>
  std::uint64_t run_while(Pred&& pred, Cycle limit = UINT64_MAX) {
    return run_impl(pred, limit);
  }

  /// True when no *live* (pending, non-cancelled) events remain.
  bool empty() const noexcept { return live_ == 0; }
  std::uint64_t total_scheduled() const noexcept { return scheduled_; }

  /// Absolute cycle of the earliest live event, or UINT64_MAX when none is
  /// pending. Lazily drops stale (cancelled) nodes exactly like the run
  /// loop's peek, so calling it never changes which event fires next.
  Cycle next_fire_time() {
    Node n;
    return peek(n) == Src::kNone ? UINT64_MAX : n.when;
  }

  /// Consecutive try_advance successes allowed between two real event
  /// fires. The L1-hit fast path completes an operation inside the caller's
  /// stack frame, and the completion usually issues the next operation
  /// (coroutine resume) — an unbounded streak would recurse as deep as the
  /// workload's hit run. Falling back to the slow path is behavior-
  /// identical, so the bound only caps host stack depth.
  static constexpr std::uint32_t kMaxInlineStreak = 128;

  /// The controllers' inline L1-hit fast path (docs/ENGINE.md): move now()
  /// forward by `delta` *without* an event-queue round trip, iff doing so is
  /// provably invisible — the current event is a *tail* event (see
  /// schedule_tail_in: nothing above the caller can still schedule work at
  /// the pre-advance cycle), no live event fires at or before now() + delta,
  /// the run's horizon is not overrun, perturbation mode is off (the slow
  /// path would consume a PRNG draw), and the inline streak is below its
  /// stack-depth bound. Returns false (caller must take the normal
  /// schedule_in path) otherwise. Outside a run_* call it always declines.
  bool try_advance(Cycle delta) {
    if (!tail_window_ || perturb_) return false;
    if (inline_streak_ >= kMaxInlineStreak) return false;
    const Cycle target = now_ + delta;
    if (target > run_limit_) return false;
    if (!window_clear(target)) return false;
    now_ = target;
    ++inline_streak_;
    return true;
  }

  /// Slab occupancy (live + free pooled records) — introspection for tests.
  std::size_t pool_size() const noexcept { return slab_size_; }

 private:
  friend class EventHandle;
  friend class ParKernel;

  /// A pooled event record. `gen` is bumped every time the slot is disarmed
  /// (fire or cancel), which atomically invalidates every outstanding
  /// EventHandle and every queue node still pointing at the slot.
  ///
  /// Layout is deliberate: the liveness fields come first, the InplaceFn puts
  /// its thunk pointers before its storage, and the record is padded to a
  /// cache-line multiple — so the fire path's liveness check, invoke and
  /// small-capture read all land in the record's first line even though the
  /// firing order walks the slab in (random) schedule order.
  struct alignas(64) Rec {
    std::uint64_t gen = 0;
    bool armed = false;
    bool in_calendar = false;
    bool tail = false;  ///< schedule_tail_in event: opens the fast-path window.
    bool pending_commit = false;  ///< Scheduled inside a worker phase, not yet
                                  ///< merged into the queue (see par_commit).
    EventFn fn;
  };

  template <typename F>
  EventHandle schedule_impl(Cycle when, F&& fn, bool tail, Domain domain) {
    assert(when >= now() && "cannot schedule an event in the past");
    if (par_phase_) {
      if (ParLane* lane = par_lane_tls()) {
        return par_schedule(*lane, when, std::forward<F>(fn), tail, domain);
      }
    }
    const std::uint32_t idx = alloc_slot();
    Rec& r = rec(idx);
    r.fn = std::forward<F>(fn);
    r.armed = true;
    r.tail = tail;
    const std::uint64_t tiebreak = perturb_ ? prng_.next() : 0;
    const Node n{when, tiebreak, seq_++, r.gen, idx, domain};
    if (tiebreak == 0 && when - now_ < kCalendarSlots) {
      r.in_calendar = true;
      Bucket& b = cal_[static_cast<std::size_t>(when & (kCalendarSlots - 1))];
      if (b.head == b.items.size()) {  // fully drained: recycle the storage
        b.items.clear();
        b.head = 0;
      }
      b.items.push_back(n);
      ++cal_live_;
      if (when < cal_scan_) cal_scan_ = when;
    } else {
      r.in_calendar = false;
      heap_.push_back(n);
      std::push_heap(heap_.begin(), heap_.end(), Later{});
    }
    ++scheduled_;
    ++live_;
    return EventHandle{this, idx, r.gen};
  }

  /// A queue node: the ordering key plus the slab reference. Nodes are
  /// plain values; a node is stale (skipped lazily) once its generation no
  /// longer matches the slab record's.
  struct Node {
    Cycle when;
    std::uint64_t tiebreak;  ///< 0 normally; random in perturbation mode.
    std::uint64_t seq;
    std::uint64_t gen;
    std::uint32_t idx;
    Domain domain;  ///< Shard tag (kGlobalDomain or a core id); never ordered on.
  };
  struct Later {
    bool operator()(const Node& a, const Node& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      if (a.tiebreak != b.tiebreak) return a.tiebreak > b.tiebreak;
      return a.seq > b.seq;  // FIFO among same-cycle events
    }
  };
  struct Bucket {
    std::vector<Node> items;  ///< Appended in seq order; `when` is monotone.
    std::size_t head = 0;     ///< First unconsumed item.
  };

  static bool earlier(const Node& a, const Node& b) noexcept {
    return !Later{}(a, b);  // a fires no later than b (keys never tie exactly)
  }

  /// The slab is a list of fixed-size chunks: slot addresses are stable for
  /// the queue's lifetime (growing never moves a live callback, and a
  /// callback can schedule events while it runs without invalidating
  /// itself), and whole chunks can retire to the per-thread cache.
  static constexpr std::size_t kChunkShift = 8;
  static constexpr std::size_t kChunkRecs = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kChunkCacheMax = 64;  // ~5 MB/thread ceiling

  static std::vector<std::unique_ptr<Rec[]>>& chunk_cache() {
    thread_local std::vector<std::unique_ptr<Rec[]>> cache;
    return cache;
  }

  Rec& rec(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkRecs - 1)];
  }
  const Rec& rec(std::uint32_t idx) const {
    return chunks_[idx >> kChunkShift][idx & (kChunkRecs - 1)];
  }

  std::uint32_t alloc_slot() {
    if (!free_.empty()) {
      const std::uint32_t idx = free_.back();
      free_.pop_back();
      return idx;
    }
    if (slab_size_ == chunks_.size() * kChunkRecs) {
      auto& cache = chunk_cache();
      if (!cache.empty()) {
        chunks_.push_back(std::move(cache.back()));
        cache.pop_back();
      } else {
        chunks_.push_back(std::make_unique<Rec[]>(kChunkRecs));
      }
    }
    return static_cast<std::uint32_t>(slab_size_++);
  }

  void disarm(Rec& r, std::uint32_t idx) {
    r.armed = false;
    ++r.gen;
    free_.push_back(idx);
  }

  void cancel_slot(std::uint32_t idx, std::uint64_t gen) {
    if (par_phase_) {
      if (ParLane* lane = par_lane_tls()) {
        par_cancel(*lane, idx, gen);
        return;
      }
    }
    if (idx >= slab_size_) return;
    Rec& r = rec(idx);
    if (!r.armed || r.gen != gen) return;  // fired, cancelled, or slot reused
    r.fn = nullptr;
    if (r.in_calendar) --cal_live_;
    disarm(r, idx);
    --live_;
    // The queue node (calendar or heap) goes stale and is dropped lazily.
  }

  bool slot_pending(std::uint32_t idx, std::uint64_t gen) const {
    return idx < slab_size_ && rec(idx).armed && rec(idx).gen == gen;
  }

  bool node_live(const Node& n) const {
    const Rec& r = rec(n.idx);
    return r.armed && r.gen == n.gen;
  }

  /// Conservative O(delta) test that no event can fire in [now_, target]
  /// (an event scheduled at now_ by code below the current tail event must
  /// still fire before an advanced completion). Unlike next_fire_time() it
  /// never touches the record slab — the hot failure case (a contended spin
  /// loop polling a line while other cores' events are a cycle away) must
  /// not pay a cache miss per poll — so any *queued* node in the window
  /// declines, even one already cancelled; declining more often is always
  /// behavior-identical. Calendar buckets inside the window hold only this
  /// lap's entries (two in-window cycles can't alias a bucket when the
  /// window is narrower than the ring), so a head entry with when < t is a
  /// cancelled leftover from an earlier lap and is dropped exactly as
  /// cal_peek would.
  bool window_clear(Cycle target) {
    if (target - now_ >= kCalendarSlots) return false;  // window wraps the ring
    if (!heap_.empty() && heap_.front().when <= target) return false;
    if (cal_live_ == 0) return true;
    for (Cycle t = cal_scan_ > now_ ? cal_scan_ : now_; t <= target; ++t) {
      Bucket& b = cal_[static_cast<std::size_t>(t & (kCalendarSlots - 1))];
      while (b.head < b.items.size() && b.items[b.head].when < t) ++b.head;
      if (b.head < b.items.size() && b.items[b.head].when == t) return false;
    }
    return true;
  }

  /// Finds the earliest live calendar node, lazily dropping stale entries.
  /// Live calendar nodes always lie in [now_, now_ + kCalendarSlots): they
  /// were scheduled with when - insert_now < kCalendarSlots, time only moves
  /// forward, and the global pop order never leaves a live node behind now_.
  bool cal_peek(Node& out) {
    if (cal_live_ == 0) return false;
    if (cal_scan_ < now_) cal_scan_ = now_;
    for (Cycle t = cal_scan_;; ++t) {
      assert(t - now_ < kCalendarSlots && "live calendar node outside horizon");
      Bucket& b = cal_[static_cast<std::size_t>(t & (kCalendarSlots - 1))];
      while (b.head < b.items.size()) {
        const Node& n = b.items[b.head];
        if (n.when < t) {  // cancelled leftover from an earlier lap
          ++b.head;
          continue;
        }
        if (n.when > t) break;  // next lap's entries; nothing lives at t
        if (!node_live(n)) {
          ++b.head;
          continue;
        }
        cal_scan_ = t;
        out = n;
        return true;
      }
      cal_scan_ = t + 1;
    }
  }

  /// Heap peek with lazy removal of stale (cancelled) tops.
  bool heap_peek(Node& out) {
    while (!heap_.empty()) {
      const Node& top = heap_.front();
      if (node_live(top)) {
        out = top;
        return true;
      }
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
    return false;
  }

  enum class Src : std::uint8_t { kNone, kCalendar, kHeap };

  Src peek(Node& out) {
    Node c, h;
    const bool hc = cal_peek(c);
    const bool hh = heap_peek(h);
    if (!hc && !hh) return Src::kNone;
    if (hc && (!hh || earlier(c, h))) {
      out = c;
      return Src::kCalendar;
    }
    out = h;
    return Src::kHeap;
  }

  void pop(Src src, const Node& n) {
    if (src == Src::kCalendar) {
      Bucket& b = cal_[static_cast<std::size_t>(n.when & (kCalendarSlots - 1))];
      assert(b.head < b.items.size() && b.items[b.head].idx == n.idx);
      ++b.head;
      --cal_live_;
    } else {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
  }

  template <typename Pred>
  std::uint64_t run_impl(Pred&& pred, Cycle limit) {
    // Arm the inline fast path (try_advance) with this run's horizon; saved
    // and restored so a nested run — not used today, but legal — keeps its
    // caller's window intact.
    const bool outer_running = running_;
    const bool outer_tail = tail_window_;
    const Cycle outer_limit = run_limit_;
    running_ = true;
    tail_window_ = false;
    run_limit_ = limit;
    std::uint64_t fired = 0;
    while (pred()) {
      Node n;
      const Src src = peek(n);
      if (src == Src::kNone) {
        // Drained. A bounded-horizon run still owes the caller the full
        // horizon: leave now() at the limit (UINT64_MAX means "unbounded",
        // where now() stays at the last fired event — which try_advance may
        // have already carried to the final inline completion's cycle).
        if (limit != UINT64_MAX && now_ < limit) now_ = limit;
        break;
      }
      if (n.when > limit) {
        // Too far in the future: leave it queued and stop at the horizon.
        if (now_ < limit) now_ = limit;
        break;
      }
      pop(src, n);
      inline_streak_ = 0;  // a real fire resets the fast path's depth bound
      Rec& r = rec(n.idx);
      tail_window_ = r.tail;  // fast path armed only inside tail events
      // Invalidate handles/nodes before invoking, but keep the slot off the
      // free list until the callback returns: chunk addresses are stable, so
      // the callback runs in place (no 272-byte move per fire) and any events
      // it schedules cannot reuse — and overwrite — the slot under it.
      r.armed = false;
      ++r.gen;
      --live_;
      assert(n.when >= now_);
      now_ = n.when;
      ++fired;
      r.fn();  // must not throw: the slot is reclaimed on the next two lines
      tail_window_ = false;
      r.fn = nullptr;
      free_.push_back(n.idx);
    }
    running_ = outer_running;
    tail_window_ = outer_tail;
    run_limit_ = outer_limit;
    return fired;
  }

  // ----- Parallel-kernel plumbing (used only by ParKernel, a friend) -----
  //
  // Protocol (multi-cycle lookahead windows): the coordinator drains every
  // event in a window of W consecutive cycles (W bounded by the modeled
  // core→directory latency, so no drained core event's effect can reach
  // another core inside the window), advances now_ to the window's first
  // cycle, and — when the whole batch is core-domain-tagged — executes it
  // on worker threads, one shard of cores per worker. During that *worker
  // phase* (par_phase_ true, toggled only while workers are barrier-
  // quiescent) a worker's schedule/cancel calls are redirected into its
  // ParLane instead of touching heap_/calendar/seq_. A child landing
  // *inside* the window must be same-domain (the latency bound makes a
  // cross-domain in-window child a modeling bug — hard abort) and is
  // executed by the same worker at its correct local time, interleaved with
  // the worker's drained slice in exactly the serial projection order
  // (when, then drained-seq before child-schedule-order). Each executed
  // event appends an ExecRec bracketing the children it scheduled.
  //
  // At the closing barrier, par_commit_window replays the whole window from
  // the logs: a min-heap on (when, seq) seeded with the drained nodes pops
  // events in serial firing order; popping an executed event assigns its
  // children their seq_ values in call order — the exact order the serial
  // kernel would have produced — and either inserts them (still pending),
  // recursively continues the replay through them (executed in-window), or
  // reclaims them (cancelled in-window; the serial kernel also burns a seq
  // on schedule-then-cancel).

  /// An event scheduled from a worker: everything needed to build its Node
  /// at commit time. `exec` is -1 unless the child itself fired inside the
  /// window, in which case it is the owning worker's ExecRec index.
  struct ParChild {
    Cycle when;
    Domain domain;
    std::uint32_t idx;
    std::uint64_t gen;
    std::int32_t exec;
  };
  /// A cancellation of an already-committed slot, deferred so that the
  /// shared counters (live_, cal_live_) and free_ are only touched by the
  /// coordinator. `was_in_calendar` is latched at cancel time because the
  /// batch drain clears in_calendar on popped records.
  struct ParCancel {
    std::uint32_t idx;
    bool was_in_calendar;
  };
  /// One executed event in a worker's log: which slot ran and the contiguous
  /// run of lane.children it scheduled. Appended for every drained node the
  /// worker processed (even one cancelled before firing — the replay cursor
  /// must stay aligned with the coordinator's drained-node stream) and for
  /// every in-window child that actually fired.
  struct ExecRec {
    Cycle when;
    std::uint32_t idx;
    std::uint32_t first_child;
    std::uint32_t num_children;
  };
  /// A worker's local run queue entry: a drained node from its shard or an
  /// in-window child it scheduled. Ordered by (when, cls, key): at one cycle
  /// every drained event precedes every in-window child (drained seqs were
  /// assigned before the window opened), and among children the
  /// lane.children index encodes (parent execution order, call order)
  /// lexicographically because a worker executes its events one at a time.
  struct LocalEntry {
    Cycle when;
    std::uint64_t key;  ///< cls 0: global seq; cls 1: index into lane.children.
    std::uint32_t idx;
    std::uint64_t gen;
    Domain domain;
    std::uint8_t cls;  ///< 0 = drained node, 1 = in-window child.
  };
  struct LocalLater {
    bool operator()(const LocalEntry& a, const LocalEntry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      if (a.cls != b.cls) return a.cls > b.cls;
      return a.key > b.key;
    }
  };
  /// Per-worker redirect target. Owned by ParKernel, one per worker thread.
  struct ParLane {
    std::vector<ParChild> children;
    std::vector<ParCancel> cancels;
    std::vector<std::uint32_t> done_slots;  ///< Slots this worker fired.
    std::vector<ExecRec> execs;             ///< Execution log, in local order.
    std::vector<LocalEntry> inwin;  ///< In-window children heap (LocalLater).
    std::uint64_t drained_fired = 0;
    std::uint64_t child_fired = 0;
    Cycle local_now = 0;       ///< Virtual clock: `when` of the current event.
    Cycle max_fired_when = 0;  ///< Latest cycle this worker actually fired at.
    Domain cur_domain = kGlobalDomain;  ///< Domain of the current event.
  };

  static ParLane*& par_lane_tls() {
    thread_local ParLane* lane = nullptr;
    return lane;
  }

  /// Worker-side schedule: takes a pre-stocked slot off free_ (the only
  /// shared touch, under par_mu_), fills the record in place, and logs a
  /// ParChild. seq/queue insertion happen at commit. Slot *indices* may be
  /// handed out in a host-racy order — harmless, idx/gen never affect firing
  /// order. Exhausting the reserve would mean racing on slab growth, so it
  /// is a hard failure (par_reserve sizes the stock with a wide margin).
  ///
  /// A child landing inside the current lookahead window must stay in the
  /// scheduling event's domain: the window width is the minimum modeled
  /// core→directory delay, so a shorter cross-domain hop means the latency
  /// model was violated — abort loudly rather than silently diverge from
  /// serial order. Same-domain in-window children join the worker's local
  /// run queue and execute at their correct virtual time.
  template <typename F>
  EventHandle par_schedule(ParLane& lane, Cycle when, F&& fn, bool tail, Domain domain) {
    assert(!perturb_ && "parallel batches never run under perturbation");
    assert(when >= lane.local_now && "cannot schedule an event in the past");
    std::uint32_t idx;
    {
      std::lock_guard<std::mutex> lock(par_mu_);
      if (free_.empty()) {
        std::fprintf(stderr,
                     "lrsim: parallel-phase event-slot reserve exhausted (workload \"%s\", "
                     "core %d)\n",
                     par::workload_name(), static_cast<int>(par::current_core()));
        std::abort();
      }
      idx = free_.back();
      free_.pop_back();
    }
    Rec& r = rec(idx);
    r.fn = std::forward<F>(fn);
    r.armed = true;
    r.tail = tail;
    r.in_calendar = false;
    r.pending_commit = true;
    const std::uint32_t child_i = static_cast<std::uint32_t>(lane.children.size());
    lane.children.push_back(ParChild{when, domain, idx, r.gen, /*exec=*/-1});
    if (when <= par_window_end_) {
      if (domain != lane.cur_domain) {
        std::fprintf(stderr,
                     "lrsim: cross-domain event scheduled inside a lookahead window "
                     "(workload \"%s\", core %d -> domain %u at cycle %llu, window ends "
                     "%llu); the modeled latency from a core to shared state must be at "
                     "least the window width (docs/ENGINE.md, \"Lookahead windows\")\n",
                     par::workload_name(), static_cast<int>(par::current_core()),
                     static_cast<unsigned>(domain),
                     static_cast<unsigned long long>(when),
                     static_cast<unsigned long long>(par_window_end_));
        std::abort();
      }
      lane.inwin.push_back(LocalEntry{when, child_i, idx, r.gen, domain, /*cls=*/1});
      std::push_heap(lane.inwin.begin(), lane.inwin.end(), LocalLater{});
    }
    return EventHandle{this, idx, r.gen};
  }

  /// Worker-side cancel. A slot the same phase scheduled (pending_commit) is
  /// only tombstoned — the commit loop frees it when it sees the generation
  /// mismatch, keeping exactly one owner for every free_ push. Cancels of
  /// committed slots are logged and applied by the coordinator.
  void par_cancel(ParLane& lane, std::uint32_t idx, std::uint64_t gen) {
    if (idx >= slab_size_) return;
    Rec& r = rec(idx);
    if (!r.armed || r.gen != gen) return;
    r.fn = nullptr;
    r.armed = false;
    ++r.gen;
    if (!r.pending_commit) lane.cancels.push_back(ParCancel{idx, r.in_calendar});
  }

  /// Pops every event at the earliest pending cycle, in serial firing order,
  /// appending to `out` and leaving the records armed (execution is deferred
  /// to the caller). in_calendar is cleared on each popped record so a later
  /// deferred cancel logs the right counter adjustment. Returns false when
  /// the queue is drained; never advances now_.
  bool drain_next_cycle_append(std::vector<Node>& out) {
    Node n;
    Src src = peek(n);
    if (src == Src::kNone) return false;
    const Cycle t = n.when;
    do {
      pop(src, n);
      rec(n.idx).in_calendar = false;
      out.push_back(n);
      src = peek(n);
    } while (src != Src::kNone && n.when == t);
    return true;
  }

  bool drain_next_cycle(std::vector<Node>& out) {
    out.clear();
    return drain_next_cycle_append(out);
  }

  /// Absolute cycle of the earliest live event (for window extension), or
  /// UINT64_MAX when drained.
  Cycle peek_next_when() {
    Node n;
    return peek(n) == Src::kNone ? UINT64_MAX : n.when;
  }

  /// Coordinator-side execution of one drained node; mirrors run_impl's fire
  /// sequence except that the fast-path window stays closed (ParKernel runs
  /// are uniformly fast-path-off, which PR 4's fuzzing proved behavior-
  /// identical). Returns false for a node cancelled since the drain.
  bool fire_drained(const Node& n) {
    Rec& r = rec(n.idx);
    if (!r.armed || r.gen != n.gen) return false;
    r.armed = false;
    ++r.gen;
    --live_;
    r.fn();
    r.fn = nullptr;
    free_.push_back(n.idx);
    return true;
  }

  /// Returns an unexecuted drained node to the queue (heap side; its record
  /// was pulled off the calendar by the drain). The original seq rides along,
  /// so the (when, tiebreak, seq) order is untouched — used when a pred()
  /// stop lands mid-batch.
  void requeue_drained(const Node& n) {
    heap_.push_back(n);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Pre-stocks free_ with at least `slots` recyclable indices so workers
  /// never grow the slab (chunk growth moves shared vectors). Grows the slab
  /// directly — alloc_slot would just recycle free_ back at itself.
  void par_reserve(std::size_t slots) {
    while (free_.size() < slots) {
      if (slab_size_ == chunks_.size() * kChunkRecs) {
        auto& cache = chunk_cache();
        if (!cache.empty()) {
          chunks_.push_back(std::move(cache.back()));
          cache.pop_back();
        } else {
          chunks_.push_back(std::make_unique<Rec[]>(kChunkRecs));
        }
      }
      free_.push_back(static_cast<std::uint32_t>(slab_size_++));
    }
  }

  /// Worker-side execution of one local run-queue entry (a drained node from
  /// the worker's shard or an in-window child). Counter updates are deferred
  /// (lane counters / done_slots) so workers never write shared queue state.
  ///
  /// Every drained entry appends an ExecRec — even one cancelled before it
  /// fired — because the commit replay seeds a heap item for every drained
  /// node and consumes the worker's ExecRecs through a cursor. A cancelled
  /// in-window child gets no ExecRec (the replay recognizes it by its
  /// still-negative `exec`).
  void par_fire_entry(ParLane& lane, const LocalEntry& e) {
    Rec& r = rec(e.idx);
    const bool alive = r.armed && r.gen == e.gen;
    if (e.cls != 0 && !alive) return;  // in-window child cancelled before firing
    const std::uint32_t my_exec = static_cast<std::uint32_t>(lane.execs.size());
    lane.execs.push_back(
        ExecRec{e.when, e.idx, static_cast<std::uint32_t>(lane.children.size()), 0});
    if (e.cls != 0) {
      lane.children[static_cast<std::size_t>(e.key)].exec = static_cast<std::int32_t>(my_exec);
    }
    if (alive) {
      lane.local_now = e.when;
      lane.cur_domain = e.domain;
      par::set_current_core(static_cast<CoreId>(e.domain));
      r.armed = false;
      ++r.gen;
      r.fn();
      r.fn = nullptr;
      lane.done_slots.push_back(e.idx);
      if (e.cls == 0) {
        ++lane.drained_fired;
      } else {
        ++lane.child_fired;
      }
      if (e.when > lane.max_fired_when) lane.max_fired_when = e.when;
    }
    lane.execs[my_exec].num_children =
        static_cast<std::uint32_t>(lane.children.size()) - lane.execs[my_exec].first_child;
  }

  /// A replay heap item: an event known (from the logs) to have executed in
  /// the window, keyed by its serial firing order. `worker` names the lane
  /// whose ExecRec cursor describes it.
  struct RItem {
    Cycle when;
    std::uint64_t seq;
    std::uint32_t worker;
    std::uint32_t idx;
  };
  struct RLater {
    bool operator()(const RItem& a, const RItem& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Coordinator-side merge after a worker phase: replays the window from
  /// the per-worker execution logs in exact serial firing order. The heap is
  /// seeded with every drained node (original seqs); popping an item
  /// consumes the owning worker's next ExecRec and walks its children in
  /// call order, assigning each the seq_ the serial kernel would have —
  /// because the replay pops in (when, seq) order, which IS the serial fire
  /// order, and the serial kernel assigns child seqs at the parent's fire
  /// point. A still-pending child is inserted into the queue; a child that
  /// fired in-window becomes a new replay item (continuing the recursion); a
  /// child cancelled in-window is reclaimed, its seq burned exactly as the
  /// serial kernel burns a seq on schedule-then-cancel.
  ///
  /// Caller must set_now() to the window's final time *before* committing so
  /// calendar placement of pending children uses the post-window clock.
  /// `batch_worker[i]` names the worker that executed batch[i]. Returns the
  /// number of events fired in the window.
  std::uint64_t par_commit_window(std::vector<ParLane>& lanes, const std::vector<Node>& batch,
                                  const std::vector<std::uint32_t>& batch_worker) {
    replay_.clear();
    replay_.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      replay_.push_back(RItem{batch[i].when, batch[i].seq, batch_worker[i], batch[i].idx});
    }
    std::make_heap(replay_.begin(), replay_.end(), RLater{});
    replay_cur_.assign(lanes.size(), 0);
    while (!replay_.empty()) {
      std::pop_heap(replay_.begin(), replay_.end(), RLater{});
      const RItem it = replay_.back();
      replay_.pop_back();
      ParLane& lane = lanes[it.worker];
      assert(replay_cur_[it.worker] < lane.execs.size());
      const ExecRec& ex = lane.execs[replay_cur_[it.worker]++];
      assert(ex.idx == it.idx && ex.when == it.when && "replay out of step with worker log");
      (void)ex;
      for (std::uint32_t k = ex.first_child; k < ex.first_child + ex.num_children; ++k) {
        const ParChild& c = lane.children[k];
        ++scheduled_;
        const std::uint64_t seq = seq_++;  // burned even for cancelled children
        Rec& r = rec(c.idx);
        r.pending_commit = false;
        if (r.armed && r.gen == c.gen) {
          // Still pending after the window: insert with its serial seq.
          const Node n{c.when, 0, seq, c.gen, c.idx, c.domain};
          if (c.when - now_ < kCalendarSlots) {
            r.in_calendar = true;
            Bucket& b = cal_[static_cast<std::size_t>(c.when & (kCalendarSlots - 1))];
            if (b.head == b.items.size()) {
              b.items.clear();
              b.head = 0;
            }
            b.items.push_back(n);
            ++cal_live_;
            if (c.when < cal_scan_) cal_scan_ = c.when;
          } else {
            heap_.push_back(n);
            std::push_heap(heap_.begin(), heap_.end(), Later{});
          }
          ++live_;
        } else if (c.exec >= 0) {
          // Fired inside the window: continue the replay through it.
          replay_.push_back(RItem{c.when, seq, it.worker, c.idx});
          std::push_heap(replay_.begin(), replay_.end(), RLater{});
        } else {
          // Cancelled inside the window before it could fire.
          free_.push_back(c.idx);
        }
      }
    }
    std::uint64_t fired = 0;
    for (ParLane& lane : lanes) {
      for (const ParCancel& pc : lane.cancels) {
        if (pc.was_in_calendar) --cal_live_;
        --live_;
        free_.push_back(pc.idx);
      }
      for (std::uint32_t idx : lane.done_slots) free_.push_back(idx);
      live_ -= lane.drained_fired;  // fired children never entered live_
      fired += lane.drained_fired + lane.child_fired;
      lane.children.clear();
      lane.cancels.clear();
      lane.done_slots.clear();
      lane.execs.clear();
      lane.inwin.clear();
      lane.drained_fired = 0;
      lane.child_fired = 0;
      lane.local_now = 0;
      lane.max_fired_when = 0;
      lane.cur_domain = kGlobalDomain;
    }
    return fired;
  }

  void set_now(Cycle t) {
    assert(t >= now_);
    now_ = t;
  }
  void par_phase_begin() { par_phase_ = true; }
  void par_phase_end() { par_phase_ = false; }

  /// Last cycle of the current lookahead window (inclusive). Written by the
  /// coordinator while workers are barrier-parked; read by par_schedule.
  void set_par_window_end(Cycle t) { par_window_end_ = t; }

  std::vector<std::unique_ptr<Rec[]>> chunks_;  ///< Pooled event records.
  std::size_t slab_size_ = 0;        ///< Slots handed out so far (<= capacity).
  std::vector<std::uint32_t> free_;  ///< Recyclable slab indices.
  std::vector<Node> heap_;           ///< Far-future events (min-heap via Later).
  std::vector<Bucket> cal_;          ///< Near-future calendar ring.
  std::size_t cal_live_ = 0;         ///< Live (non-cancelled) calendar nodes.
  Cycle cal_scan_ = 0;               ///< No live calendar node precedes this cycle.
  Cycle now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t live_ = 0;
  bool perturb_ = false;
  bool running_ = false;      ///< Inside run_impl.
  bool tail_window_ = false;  ///< Inside a tail event's callback (fast path armed).
  Cycle run_limit_ = 0;       ///< Current run's horizon (valid while running_).
  std::uint32_t inline_streak_ = 0;  ///< try_advance successes since the last fire.
  Rng prng_;

  // Parallel-kernel state. par_phase_ and par_window_end_ are written only
  // by the coordinator while every worker is parked at a barrier (the
  // barrier orders the writes); par_mu_ guards nothing but the free_ pops in
  // par_schedule.
  bool par_phase_ = false;
  Cycle par_window_end_ = 0;
  std::mutex par_mu_;
  std::vector<RItem> replay_;             ///< Scratch replay heap (commit).
  std::vector<std::size_t> replay_cur_;   ///< Per-worker ExecRec cursors.
};

inline void EventHandle::cancel() {
  if (q_ != nullptr) q_->cancel_slot(idx_, gen_);
}

inline bool EventHandle::pending() const {
  return q_ != nullptr && q_->slot_pending(idx_, gen_);
}

}  // namespace lrsim
