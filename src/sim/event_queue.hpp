// Copyright (c) 2026 lrsim authors. MIT license.
//
// The discrete-event kernel at the heart of lrsim.
//
// Everything in the simulated machine — network message arrival, cache/
// directory service completion, lease expiry, core wake-up — is an event
// scheduled at an absolute cycle. Events at the same cycle fire in
// scheduling order (a monotone sequence number breaks ties), which makes
// every run bit-deterministic.
//
// Schedule-perturbation mode (enable_perturbation) replaces the same-cycle
// FIFO tie-break with a seeded random priority: different seeds explore
// different legal interleavings of simultaneous events while each seed
// remains bit-deterministic. Time order is never violated, and the
// directory's per-line request FIFO is unaffected (it is a queue data
// structure, not an event ordering — see docs/PROTOCOL.md §7).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace lrsim {

/// Handle to a scheduled event; allows cancellation (used by lease timers,
/// which are "cancelled" on voluntary release).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void cancel() {
    if (auto p = state_.lock()) *p = true;
  }

  /// True if this handle refers to an event that is still pending.
  bool pending() const {
    auto p = state_.lock();
    return p != nullptr && !*p;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::weak_ptr<bool> s) : state_(std::move(s)) {}
  std::weak_ptr<bool> state_;  // *state == true  =>  cancelled
};

/// A binary-heap event queue with cancellation and deterministic tie-break.
class EventQueue {
 public:
  /// Current simulated time. Only advances inside run_* calls.
  Cycle now() const noexcept { return now_; }

  /// Enables seeded random tie-breaking among same-cycle events. Runs stay
  /// bit-deterministic for a fixed seed. Call before scheduling the events
  /// to be perturbed; already-scheduled events keep FIFO priority (their
  /// tie-break is 0, the highest same-cycle priority).
  void enable_perturbation(std::uint64_t seed) {
    perturb_ = true;
    prng_.reseed(seed);
  }
  bool perturbed() const noexcept { return perturb_; }

  /// Schedules `fn` to run at absolute cycle `when` (>= now()).
  EventHandle schedule_at(Cycle when, std::function<void()> fn) {
    assert(when >= now_ && "cannot schedule an event in the past");
    auto cancelled = std::make_shared<bool>(false);
    heap_.push(Event{when, seq_++, perturb_ ? prng_.next() : 0, std::move(fn), cancelled});
    ++scheduled_;
    return EventHandle{cancelled};
  }

  /// Schedules `fn` to run `delay` cycles from now.
  EventHandle schedule_in(Cycle delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue drains or `limit` cycles elapse.
  /// Returns the number of events fired.
  std::uint64_t run(Cycle limit = UINT64_MAX) {
    std::uint64_t fired = 0;
    while (!heap_.empty()) {
      // const_cast is safe: we pop immediately and never reorder a live heap
      // node; std::priority_queue just lacks a non-const top().
      Event ev = std::move(const_cast<Event&>(heap_.top()));
      heap_.pop();
      if (*ev.cancelled) continue;
      if (ev.when > limit) {
        // Too far in the future: put it back and stop. (Rare path — only
        // bounded-horizon runs hit it.)
        heap_.push(std::move(ev));
        now_ = limit;
        break;
      }
      assert(ev.when >= now_);
      now_ = ev.when;
      ++fired;
      ev.fn();
    }
    return fired;
  }

  /// Runs while `pred()` holds and events remain. Used by Machine::run_until.
  template <typename Pred>
  std::uint64_t run_while(Pred&& pred, Cycle limit = UINT64_MAX) {
    std::uint64_t fired = 0;
    while (pred() && !heap_.empty()) {
      Event ev = std::move(const_cast<Event&>(heap_.top()));
      heap_.pop();
      if (*ev.cancelled) continue;
      if (ev.when > limit) {
        heap_.push(std::move(ev));
        now_ = limit;
        break;
      }
      now_ = ev.when;
      ++fired;
      ev.fn();
    }
    return fired;
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::uint64_t total_scheduled() const noexcept { return scheduled_; }

 private:
  struct Event {
    Cycle when;
    std::uint64_t seq;
    std::uint64_t tiebreak;  ///< 0 normally; random in perturbation mode.
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      if (a.tiebreak != b.tiebreak) return a.tiebreak > b.tiebreak;
      return a.seq > b.seq;  // FIFO among same-cycle events
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  Cycle now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t scheduled_ = 0;
  bool perturb_ = false;
  Rng prng_;
};

}  // namespace lrsim
