// Copyright (c) 2026 lrsim authors. MIT license.
//
// Log2-bucketed histogram sketch for the observability layer.
//
// Cycle-valued telemetry (lease hold times, probe-park latencies) spans five
// orders of magnitude in one run, so linear buckets are useless and exact
// reservoirs cost memory on the hot path. A power-of-two sketch keeps the
// whole distribution in a fixed 65-counter array: recording is one
// count-leading-zeros plus one increment, allocation-free by construction.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace lrsim {

/// Fixed-size log2 histogram. Bucket 0 holds exact zeros; bucket k >= 1
/// holds values in [2^(k-1), 2^k).
class Log2Histogram {
 public:
  static constexpr int kBuckets = 65;  ///< bucket 64 covers [2^63, 2^64).

  /// Bucket index for `v`: 0 for 0, otherwise std::bit_width(v).
  static constexpr int bucket_of(std::uint64_t v) noexcept {
    return v == 0 ? 0 : std::bit_width(v);
  }

  /// Inclusive lower bound of bucket `b` (bucket 0 = {0}, bucket 1 = {1}).
  static constexpr std::uint64_t bucket_low(int b) noexcept {
    return b == 0 ? 0 : (std::uint64_t{1} << (b - 1));
  }

  /// Exclusive upper bound of bucket `b` (1 for bucket 0).
  static constexpr std::uint64_t bucket_high(int b) noexcept {
    return b == 0 ? 1 : (b >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b));
  }

  void add(std::uint64_t v) noexcept {
    ++counts_[static_cast<std::size_t>(bucket_of(v))];
    ++total_;
    sum_ += v;
  }

  std::uint64_t count(int bucket) const noexcept {
    return counts_[static_cast<std::size_t>(bucket)];
  }
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return total_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(total_);
  }

  /// Index of the highest non-empty bucket, or -1 when empty. Lets writers
  /// stop at the occupied prefix instead of printing 65 rows.
  int max_bucket() const noexcept {
    for (int b = kBuckets - 1; b >= 0; --b) {
      if (counts_[static_cast<std::size_t>(b)] != 0) return b;
    }
    return -1;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
};

}  // namespace lrsim
