// Copyright (c) 2026 lrsim authors. MIT license.
//
// First-class observability for the simulated machine (the layer the paper's
// Section 7 evaluation implicitly relies on): every claim about Lease/Release
// is read off coherence-level telemetry — message counts, probe-queueing
// delay, lease expiry rates — and this subsystem makes that telemetry a
// product feature instead of printf archaeology.
//
// Three sinks, all opt-in via Machine::enable_observability and all free when
// off (the same null-check discipline as the Tracer):
//
//  * span recording — lease hold spans, probe-park spans, and directory
//    service spans land in a *preallocated* buffer (no per-event heap
//    traffic; overflow is counted, not allocated) and export as Chrome/
//    Perfetto trace-event JSON (write_trace_json) that loads directly in
//    ui.perfetto.dev;
//  * per-line contention profiles — a hottest-lines table (probes parked,
//    park cycles, invalidations, lease breaks per line) plus log2 histogram
//    sketches of lease durations and probe-park latencies;
//  * a deterministic time-series sampler — Stats deltas (machine aggregate
//    plus per-core breakdown) snapshotted every K *simulated* cycles into
//    CSV rows whose bytes depend only on the simulation, never on host
//    threading (--jobs) or wall clock.
//
// Serialization happens exclusively at dump time; recording is counter
// bumps, histogram increments, and bounded push_backs.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/release_kind.hpp"
#include "obs/histogram.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "util/types.hpp"

namespace lrsim {

struct ObsOptions {
  /// Preallocated span-buffer capacity; spans past it are dropped (and
  /// counted), never reallocated mid-run.
  std::size_t span_capacity = std::size_t{1} << 16;
  /// Snapshot Stats deltas every this many simulated cycles (0 = off).
  Cycle sample_every = 0;
  /// Emit a per-core row alongside each machine-aggregate sample row.
  bool per_core_samples = true;
};

/// What a recorded span covers.
enum class SpanKind : std::uint8_t {
  kLeaseHold,   ///< Countdown start -> release (any ReleaseKind).
  kProbePark,   ///< Probe parked behind a lease -> serviced.
  kDirService,  ///< Directory dequeues a request -> transaction complete.
};

inline const char* span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kLeaseHold: return "lease";
    case SpanKind::kProbePark: return "park";
    case SpanKind::kDirService: return "dir";
  }
  return "?";
}

struct SpanRecord {
  SpanKind kind;
  CoreId core;  ///< -1 for directory spans.
  LineId line;
  Cycle begin;
  Cycle end;
  std::uint64_t info;  ///< lease: ReleaseKind; dir: requester core.
};

/// Per-line contention counters (aggregated across cores).
struct LineProfile {
  std::uint64_t leases = 0;          ///< Lease-table entries opened on the line.
  std::uint64_t probes_parked = 0;   ///< Probes parked behind a lease.
  std::uint64_t park_cycles = 0;     ///< Total cycles probes spent parked.
  std::uint64_t invalidations = 0;   ///< Invalidation probes delivered.
  std::uint64_t lease_breaks = 0;    ///< Leases lost to priority breaks / eviction.
  std::uint64_t lease_expiries = 0;  ///< Involuntary (timer) releases.
};

/// One time-series sample: the Stats delta accumulated over the last
/// `sample_every` cycles for one scope.
struct SampleRow {
  Cycle cycle;
  int scope;  ///< -1 = machine aggregate; otherwise the core id.
  Stats delta;
};

class Observability {
 public:
  explicit Observability(ObsOptions opts = {}) : opts_(opts) {
    spans_.reserve(opts_.span_capacity);
    profile_.reserve(1024);
  }

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  // --- recording hooks (hot path: null-checked by the caller) ---------------

  void on_lease_taken(LineId line) { ++line_profile(line).leases; }

  /// The duration a lease was actually granted with, post-clamp — under the
  /// adaptive policy this is the AIMD controller's per-line choice, so the
  /// histogram shows where the controller settles vs. the static
  /// MAX_LEASE_TIME spike.
  void on_lease_effective(Cycle duration) { eff_lease_hist_.add(duration); }

  /// A lease left the table. `started` distinguishes countdown-running
  /// entries (which produce a hold span) from ones evicted mid-acquisition.
  void on_lease_end(CoreId core, LineId line, Cycle started_at, Cycle now, ReleaseKind kind,
                    bool started) {
    LineProfile& p = line_profile(line);
    if (kind == ReleaseKind::kInvoluntary) ++p.lease_expiries;
    if (kind == ReleaseKind::kBroken || kind == ReleaseKind::kEvicted) ++p.lease_breaks;
    if (!started) return;
    lease_hist_.add(now - started_at);
    push_span(SpanKind::kLeaseHold, core, line, started_at, now,
              static_cast<std::uint64_t>(kind));
  }

  void on_probe_parked(LineId line) { ++line_profile(line).probes_parked; }

  void on_probe_unparked(CoreId core, LineId line, Cycle parked_at, Cycle now) {
    line_profile(line).park_cycles += now - parked_at;
    park_hist_.add(now - parked_at);
    push_span(SpanKind::kProbePark, core, line, parked_at, now, 0);
  }

  void on_invalidation(LineId line) { ++line_profile(line).invalidations; }

  void on_dir_service(LineId line, CoreId requester, Cycle begin, Cycle end) {
    push_span(SpanKind::kDirService, /*core=*/-1, line, begin, end,
              static_cast<std::uint64_t>(requester));
  }

  // --- sampler --------------------------------------------------------------

  /// Starts the periodic Stats sampler on `ev`. `total` returns the current
  /// machine-wide cumulative Stats; `per_core` (optional) points at the
  /// per-core cumulative blocks. Rows record *deltas* between consecutive
  /// ticks. Wired by Machine::enable_observability; call at most once.
  void start_sampling(EventQueue& ev, std::function<Stats()> total,
                      const std::vector<Stats>* per_core) {
    if (opts_.sample_every == 0) return;
    ev_ = &ev;
    total_fn_ = std::move(total);
    per_core_ = opts_.per_core_samples ? per_core : nullptr;
    last_total_ = total_fn_();
    if (per_core_ != nullptr) last_per_core_ = *per_core_;
    ev_->schedule_in(opts_.sample_every, [this] { sample_tick(); });
  }

  // --- introspection --------------------------------------------------------

  const std::vector<SpanRecord>& spans() const noexcept { return spans_; }
  std::uint64_t spans_dropped() const noexcept { return spans_dropped_; }
  const std::unordered_map<LineId, LineProfile>& line_profiles() const noexcept {
    return profile_;
  }
  const Log2Histogram& lease_duration_histogram() const noexcept { return lease_hist_; }
  const Log2Histogram& effective_lease_histogram() const noexcept { return eff_lease_hist_; }
  const Log2Histogram& park_latency_histogram() const noexcept { return park_hist_; }
  const std::vector<SampleRow>& samples() const noexcept { return samples_; }
  const ObsOptions& options() const noexcept { return opts_; }

  /// The `n` hottest lines, ordered by park cycles, then probes parked, then
  /// invalidations, then line id — a total, deterministic order.
  std::vector<std::pair<LineId, LineProfile>> top_lines(std::size_t n) const;

  /// Optional: instruction-level Tracer whose point records are exported as
  /// instant events alongside the spans (Machine wires this when tracing is
  /// enabled; null = spans only).
  void set_tracer(const Tracer* t) noexcept { tracer_ = t; }

  // --- serialization (dump time only) ---------------------------------------

  /// Chrome/Perfetto trace-event JSON: per-core lease/park tracks, directory
  /// service tracks, and (if a tracer is attached) instant events. One
  /// timeline microsecond == one simulated cycle (== 1 ns at the 1 GHz
  /// clock), so timestamps stay exact integers.
  void write_trace_json(std::ostream& os) const;

  /// Human-readable contention profile: top-N hottest lines plus the lease
  /// duration and probe-park latency histograms.
  void write_profile(std::ostream& os, std::size_t top_n = 20) const;

  /// Time-series CSV: one machine-aggregate row (scope "total") per tick,
  /// plus per-core rows when enabled. Deterministic bytes for a given
  /// simulation regardless of host parallelism.
  void write_samples_csv(std::ostream& os) const;

 private:
  LineProfile& line_profile(LineId line) { return profile_[line]; }

  void push_span(SpanKind kind, CoreId core, LineId line, Cycle begin, Cycle end,
                 std::uint64_t info) {
    if (spans_.size() == opts_.span_capacity) {
      ++spans_dropped_;
      return;
    }
    spans_.push_back(SpanRecord{kind, core, line, begin, end, info});
  }

  void sample_tick() {
    const Cycle now = ev_->now();
    const Stats total = total_fn_();
    samples_.push_back(SampleRow{now, -1, total - last_total_});
    last_total_ = total;
    if (per_core_ != nullptr) {
      for (std::size_t c = 0; c < per_core_->size(); ++c) {
        samples_.push_back(SampleRow{now, static_cast<int>(c), (*per_core_)[c] - last_per_core_[c]});
      }
      last_per_core_ = *per_core_;
    }
    ev_->schedule_in(opts_.sample_every, [this] { sample_tick(); });
  }

  ObsOptions opts_;
  std::vector<SpanRecord> spans_;  ///< Preallocated; never grows past capacity.
  std::uint64_t spans_dropped_ = 0;
  std::unordered_map<LineId, LineProfile> profile_;
  Log2Histogram lease_hist_;
  Log2Histogram eff_lease_hist_;
  Log2Histogram park_hist_;
  const Tracer* tracer_ = nullptr;

  // Sampler state.
  EventQueue* ev_ = nullptr;
  std::function<Stats()> total_fn_;
  const std::vector<Stats>* per_core_ = nullptr;
  Stats last_total_;
  std::vector<Stats> last_per_core_;
  std::vector<SampleRow> samples_;
};

}  // namespace lrsim
