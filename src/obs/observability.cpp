// Copyright (c) 2026 lrsim authors. MIT license.
//
// Dump-time serialization for the observability layer. Nothing here runs
// while the simulation records — see observability.hpp for the hot-path
// discipline.

#include "obs/observability.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace lrsim {

namespace {

std::string hex_line(LineId line) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(line));
  return buf;
}

/// One exported Perfetto track: a (pid, tid) pair holding non-overlapping
/// complete ("X") events. Spans that overlap in time are spread across lanes
/// of the same kind, because the trace-event format requires stack
/// discipline within a thread track and concurrent leases/transactions are
/// legal (MAX_NUM_LEASES > 1; the directory serializes per *line*, not
/// globally).
struct Lane {
  int tid;
  Cycle last_end = 0;
  std::vector<const SpanRecord*> spans;
};

/// Greedy interval partitioning: spans sorted by (begin, end) go to the
/// first lane whose previous span has ended. Deterministic, and minimal in
/// lane count for interval graphs.
std::vector<Lane> assign_lanes(std::vector<const SpanRecord*> spans, int& next_tid) {
  std::sort(spans.begin(), spans.end(), [](const SpanRecord* a, const SpanRecord* b) {
    if (a->begin != b->begin) return a->begin < b->begin;
    if (a->end != b->end) return a->end < b->end;
    return a->line < b->line;
  });
  std::vector<Lane> lanes;
  for (const SpanRecord* s : spans) {
    Lane* target = nullptr;
    for (Lane& l : lanes) {
      if (l.last_end <= s->begin) {
        target = &l;
        break;
      }
    }
    if (target == nullptr) {
      lanes.push_back(Lane{next_tid++});
      target = &lanes.back();
    }
    target->spans.push_back(s);
    target->last_end = s->end;
  }
  return lanes;
}

class JsonEvents {
 public:
  explicit JsonEvents(std::ostream& os) : os_(os) {}

  void begin() { os_ << "[\n"; }
  void end() { os_ << (first_ ? "" : "\n") << "]"; }

  std::ostream& next() {
    if (!first_) os_ << ",\n";
    first_ = false;
    return os_;
  }

 private:
  std::ostream& os_;
  bool first_ = true;
};

void emit_process_name(JsonEvents& ev, int pid, const std::string& name) {
  ev.next() << R"({"name":"process_name","ph":"M","pid":)" << pid
            << R"(,"tid":0,"args":{"name":")" << name << "\"}}";
}

void emit_thread_name(JsonEvents& ev, int pid, int tid, const std::string& name) {
  ev.next() << R"({"name":"thread_name","ph":"M","pid":)" << pid << R"(,"tid":)" << tid
            << R"(,"args":{"name":")" << name << "\"}}";
}

}  // namespace

std::vector<std::pair<LineId, LineProfile>> Observability::top_lines(std::size_t n) const {
  std::vector<std::pair<LineId, LineProfile>> all(profile_.begin(), profile_.end());
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second.park_cycles != b.second.park_cycles)
      return a.second.park_cycles > b.second.park_cycles;
    if (a.second.probes_parked != b.second.probes_parked)
      return a.second.probes_parked > b.second.probes_parked;
    if (a.second.invalidations != b.second.invalidations)
      return a.second.invalidations > b.second.invalidations;
    return a.first < b.first;
  });
  if (all.size() > n) all.resize(n);
  return all;
}

void Observability::write_trace_json(std::ostream& os) const {
  // Partition spans: directory service spans on pid 0, core spans on
  // pid core+1, one lane family per SpanKind. std::map keeps every
  // iteration order deterministic.
  std::map<std::pair<int, SpanKind>, std::vector<const SpanRecord*>> groups;
  for (const SpanRecord& s : spans_) {
    const int pid = s.core < 0 ? 0 : s.core + 1;
    groups[{pid, s.kind}].push_back(&s);
  }

  os << "{\n\"displayTimeUnit\": \"ns\",\n";
  os << "\"otherData\": {\"generator\": \"lrsim\", \"time_unit\": \"1 trace us = 1 simulated cycle\","
     << " \"spans\": " << spans_.size() << ", \"spans_dropped\": " << spans_dropped_ << "},\n";
  os << "\"traceEvents\": ";

  JsonEvents ev{os};
  ev.begin();

  // Metadata: name every process we are about to reference.
  std::vector<int> pids;
  for (const auto& [key, unused] : groups) {
    if (pids.empty() || pids.back() != key.first) pids.push_back(key.first);
  }
  if (tracer_ != nullptr) {
    for (const TraceRecord& r : tracer_->records()) {
      const int pid = r.core < 0 ? 0 : r.core + 1;
      if (!std::binary_search(pids.begin(), pids.end(), pid)) {
        pids.insert(std::lower_bound(pids.begin(), pids.end(), pid), pid);
      }
    }
  }
  for (int pid : pids) {
    emit_process_name(ev, pid, pid == 0 ? "directory" : "core " + std::to_string(pid - 1));
  }

  // Span tracks: lanes per (pid, kind), tids unique within each pid.
  std::map<int, int> next_tid;
  std::map<int, int> instant_tid;  ///< Lazily created "events" track per pid.
  for (const auto& [key, spans] : groups) {
    const auto [pid, kind] = key;
    if (next_tid.find(pid) == next_tid.end()) next_tid[pid] = 1;
    int lane_no = 0;
    for (const Lane& lane : assign_lanes(spans, next_tid[pid])) {
      emit_thread_name(ev, pid, lane.tid,
                       std::string(span_kind_name(kind)) + "#" + std::to_string(lane_no++));
      for (const SpanRecord* s : lane.spans) {
        std::ostream& out = ev.next();
        out << R"({"name":")" << span_kind_name(s->kind) << ' ' << hex_line(s->line)
            << R"(","cat":")" << span_kind_name(s->kind) << R"(","ph":"X","ts":)" << s->begin
            << R"(,"dur":)" << (s->end - s->begin) << R"(,"pid":)" << pid << R"(,"tid":)"
            << lane.tid << R"(,"args":{"line":")" << hex_line(s->line) << '"';
        if (s->kind == SpanKind::kLeaseHold) {
          out << R"(,"end":")" << release_kind_name(static_cast<ReleaseKind>(s->info)) << '"';
        } else if (s->kind == SpanKind::kDirService) {
          out << R"(,"requester":)" << s->info;
        }
        out << "}}";
      }
    }
  }

  // Instant events from the (optional) instruction-level tracer.
  if (tracer_ != nullptr) {
    for (const TraceRecord& r : tracer_->records()) {
      const int pid = r.core < 0 ? 0 : r.core + 1;
      auto it = instant_tid.find(pid);
      if (it == instant_tid.end()) {
        auto& tid = next_tid[pid];
        if (tid == 0) tid = 1;
        it = instant_tid.emplace(pid, tid++).first;
        emit_thread_name(ev, pid, it->second, "events");
      }
      ev.next() << R"({"name":")" << trace_event_name(r.event) << R"(","cat":"trace","ph":"i","s":"t","ts":)"
                << r.when << R"(,"pid":)" << pid << R"(,"tid":)" << it->second
                << R"(,"args":{"line":")" << hex_line(r.line) << R"(","info":)" << r.info << "}}";
    }
  }

  ev.end();
  os << "\n}\n";
}

void Observability::write_profile(std::ostream& os, std::size_t top_n) const {
  os << "# lrsim contention profile\n";
  os << "# lines tracked: " << profile_.size() << ", spans recorded: " << spans_.size()
     << " (dropped " << spans_dropped_ << ")\n\n";

  os << "== top " << top_n << " hottest lines (by park cycles) ==\n";
  os << "line               leases     parked  park_cycles      inval     breaks   expiries\n";
  for (const auto& [line, p] : top_lines(top_n)) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%-16s %8llu %10llu %12llu %10llu %10llu %10llu\n",
                  hex_line(line).c_str(), static_cast<unsigned long long>(p.leases),
                  static_cast<unsigned long long>(p.probes_parked),
                  static_cast<unsigned long long>(p.park_cycles),
                  static_cast<unsigned long long>(p.invalidations),
                  static_cast<unsigned long long>(p.lease_breaks),
                  static_cast<unsigned long long>(p.lease_expiries));
    os << buf;
  }

  auto dump_hist = [&os](const char* title, const Log2Histogram& h) {
    os << "\n== " << title << " ==\n";
    os << "samples: " << h.total() << ", mean: " << h.mean() << " cycles\n";
    const int hi = h.max_bucket();
    for (int b = 0; b <= hi; ++b) {
      if (h.count(b) == 0) continue;
      char buf[96];
      std::snprintf(buf, sizeof buf, "[%10llu, %10llu) %10llu\n",
                    static_cast<unsigned long long>(Log2Histogram::bucket_low(b)),
                    static_cast<unsigned long long>(Log2Histogram::bucket_high(b)),
                    static_cast<unsigned long long>(h.count(b)));
      os << buf;
    }
  };
  dump_hist("lease duration histogram (cycles, log2 buckets)", lease_hist_);
  dump_hist("effective lease histogram (granted duration, cycles, log2 buckets)", eff_lease_hist_);
  dump_hist("probe-park latency histogram (cycles, log2 buckets)", park_hist_);
}

void Observability::write_samples_csv(std::ostream& os) const {
  os << "cycle,scope,msgs_total,msgs_gets,msgs_getx,msgs_inv,msgs_downgrade,msgs_data,"
        "msgs_ack,msgs_wb,msgs_nack,l1_hits,l1_misses,l2_accesses,dram_accesses,"
        "leases_taken,releases_voluntary,releases_involuntary,releases_evicted,"
        "releases_broken,probes_queued,probe_queued_cycles,ops_completed\n";
  for (const SampleRow& r : samples_) {
    const Stats& d = r.delta;
    os << r.cycle << ',';
    if (r.scope < 0) {
      os << "total";
    } else {
      os << "core" << r.scope;
    }
    os << ',' << d.total_messages() << ',' << d.msgs_gets << ',' << d.msgs_getx << ','
       << d.msgs_inv << ',' << d.msgs_downgrade << ',' << d.msgs_data << ',' << d.msgs_ack << ','
       << d.msgs_wb << ',' << d.msgs_nack << ',' << d.l1_hits << ',' << d.l1_misses << ','
       << d.l2_accesses << ',' << d.dram_accesses << ',' << d.leases_taken << ','
       << d.releases_voluntary << ',' << d.releases_involuntary << ',' << d.releases_evicted << ','
       << d.releases_broken << ',' << d.probes_queued << ',' << d.probe_queued_cycles << ','
       << d.ops_completed << '\n';
  }
}

}  // namespace lrsim
