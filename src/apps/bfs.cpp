// Copyright (c) 2026 lrsim authors. MIT license.

#include "apps/bfs.hpp"

#include <deque>

#include "util/rng.hpp"

namespace lrsim {

Bfs::Bfs(Machine& m, int participants, BfsOptions opt)
    : m_(m),
      opt_(opt),
      participants_(participants),
      frontier_lock_(m, LockOptions{.use_lease = opt.use_lease}),
      barrier_(m, participants) {
  const std::size_t n = opt_.num_vertices;
  Rng rng{opt_.seed};

  // Random graph (out-edges; BFS follows them as directed edges).
  host_adj_.resize(n);
  std::size_t total_edges = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t deg = rng.next_below(2 * opt_.avg_degree + 1);
    for (std::size_t e = 0; e < deg; ++e) {
      host_adj_[v].push_back(static_cast<std::size_t>(rng.next_below(n)));
    }
    total_edges += host_adj_[v].size();
  }
  // Make vertex 0 reach a decent chunk: link it to a few hubs.
  for (int i = 0; i < 4; ++i) host_adj_[0].push_back(1 + rng.next_below(n - 1));
  total_edges += 4;

  offsets_ = m.heap().alloc(8 * (n + 1), kLineSize);
  edges_ = m.heap().alloc(8 * std::max<std::size_t>(1, total_edges), kLineSize);
  dist_ = m.heap().alloc(8 * n, kLineSize);
  std::size_t off = 0;
  for (std::size_t v = 0; v < n; ++v) {
    m.memory().write(offsets_ + 8 * v, off);
    for (std::size_t u : host_adj_[v]) m.memory().write(edges_ + 8 * off++, u);
    m.memory().write(dist_ + 8 * v, kUnreached);
  }
  m.memory().write(offsets_ + 8 * n, off);

  for (int b = 0; b < 2; ++b) {
    frontier_[b] = m.heap().alloc(8 * n, kLineSize);
    frontier_count_[b] = m.heap().alloc_line();
    m.memory().write(frontier_count_[b], 0);
  }
  cursor_ = m.heap().alloc_line();
  level_ = m.heap().alloc_line();

  // Seed: vertex 0 at distance 0 in frontier buffer 0.
  m.memory().write(dist_ + 0, 0);
  m.memory().write(frontier_[0], 0);
  m.memory().write(frontier_count_[0], 1);
  m.memory().write(cursor_, 0);
  m.memory().write(level_, 0);
}

Task<void> Bfs::run_worker(Ctx& ctx) {
  while (true) {
    const std::uint64_t level = co_await ctx.load(level_);
    const int cur = static_cast<int>(level % 2);
    const int nxt = 1 - cur;
    const std::uint64_t count = co_await ctx.load(frontier_count_[cur]);
    if (count == 0) co_return;  // fixpoint: everyone sees the same emptiness

    // Claim-and-process loop over the current frontier.
    while (true) {
      const std::uint64_t idx = co_await ctx.faa(cursor_, 1);
      if (idx >= count) break;
      const std::uint64_t v = co_await ctx.load(frontier_[cur] + 8 * idx);
      const std::uint64_t off = co_await ctx.load(offsets_ + 8 * v);
      const std::uint64_t end = co_await ctx.load(offsets_ + 8 * (v + 1));
      for (std::uint64_t e = off; e < end; ++e) {
        const std::uint64_t u = co_await ctx.load(edges_ + 8 * e);
        // Claim the vertex exactly once.
        const bool claimed = co_await ctx.cas(dist_ + 8 * u, kUnreached, level + 1);
        if (!claimed) continue;
        // Append to the next frontier under the contended lock (the
        // critical section the lease protects).
        co_await frontier_lock_.lock(ctx);
        const std::uint64_t slot = co_await ctx.load(frontier_count_[nxt]);
        co_await ctx.store(frontier_[nxt] + 8 * slot, u);
        co_await ctx.store(frontier_count_[nxt], slot + 1);
        co_await frontier_lock_.unlock(ctx);
      }
      ctx.count_op();
    }

    co_await barrier_.wait(ctx);
    if (ctx.core() == 0) {
      // Single coordinator flips the level and resets the consumed buffer.
      co_await ctx.store(frontier_count_[cur], 0);
      co_await ctx.store(cursor_, 0);
      co_await ctx.store(level_, level + 1);
    }
    co_await barrier_.wait(ctx);
  }
}

std::vector<std::uint64_t> Bfs::oracle_distances() const {
  std::vector<std::uint64_t> dist(opt_.num_vertices, kUnreached);
  std::deque<std::size_t> q;
  dist[0] = 0;
  q.push_back(0);
  while (!q.empty()) {
    const std::size_t v = q.front();
    q.pop_front();
    for (std::size_t u : host_adj_[v]) {
      if (dist[u] == kUnreached) {
        dist[u] = dist[v] + 1;
        q.push_back(u);
      }
    }
  }
  return dist;
}

}  // namespace lrsim
