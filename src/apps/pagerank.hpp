// Copyright (c) 2026 lrsim authors. MIT license.
//
// Lock-based Pagerank kernel for Figure 5 (right).
//
// The paper uses the CRONO lock-based Pagerank, where "the variable
// corresponding to inaccessible pages in the web graph (around 25%) is
// protected by a contended lock. Protecting this critical section by a
// lease improves throughput by 8x at 32 threads."
//
// We reproduce the same structure synthetically (DESIGN.md substitution):
// a random sparse web graph lives in simulated memory; each thread sweeps
// its vertex range computing rank contributions (loads of neighbour ranks +
// local work), and every *dangling* vertex (~25%) adds its rank mass to one
// global accumulator under a single TTS lock — the contended critical
// section the lease protects.
#pragma once

#include <vector>

#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "sync/locks.hpp"
#include "util/types.hpp"

namespace lrsim {

/// How the dangling-mass accumulator is protected.
enum class PagerankAccum {
  kLock,  ///< TTS lock around load+store (CRONO's structure; the paper's case).
  kFaa,   ///< Single fetch&add — the lock-free alternative, for comparison.
};

struct PagerankOptions {
  std::size_t num_vertices = 512;
  std::size_t avg_degree = 4;
  double dangling_fraction = 0.25;  ///< Paper: "around 25%".
  bool use_lease = false;           ///< Lease the dangling-mass lock.
  PagerankAccum accum = PagerankAccum::kLock;
  Cycle rank_work = 20;             ///< Local cycles per vertex update.
  std::uint64_t seed = 42;
};

class Pagerank {
 public:
  Pagerank(Machine& m, PagerankOptions opt = {});

  /// Processes vertices [begin, end) once (one iteration slice); counts one
  /// op per vertex.
  Task<void> process_range(Ctx& ctx, std::size_t begin, std::size_t end);

  /// Functional accumulator read (oracle: equals the sum of dangling ranks
  /// processed).
  std::uint64_t dangling_mass() const { return m_.memory().read(acc_); }

  std::size_t num_vertices() const { return opt_.num_vertices; }
  std::size_t num_dangling() const { return num_dangling_; }
  TTSLock& lock() noexcept { return lock_; }

 private:
  Machine& m_;
  PagerankOptions opt_;
  TTSLock lock_;
  Addr acc_;                      ///< Global dangling-mass accumulator.
  Addr ranks_;                    ///< num_vertices words.
  std::vector<Addr> adjacency_;   ///< Per-vertex edge-list base (0 if dangling).
  std::vector<std::size_t> degree_;
  std::vector<bool> dangling_;
  std::size_t num_dangling_ = 0;
};

}  // namespace lrsim
