// Copyright (c) 2026 lrsim authors. MIT license.
//
// Level-synchronous BFS with a lock-protected shared frontier — the second
// CRONO-style graph kernel (the paper's Figure 5 uses CRONO's Pagerank; BFS
// is the suite's other lock-bottlenecked kernel and exercises leases on a
// different access pattern: bursty appends to one shared queue).
//
// Each level: threads claim frontier slots with fetch&add (uncontended),
// mark neighbours visited with CAS (per-vertex), and append newly
// discovered vertices to the *next* frontier under a single TTS lock — the
// contended critical section the lease protects.
#pragma once

#include <vector>

#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "sync/barrier.hpp"
#include "sync/locks.hpp"
#include "util/types.hpp"

namespace lrsim {

struct BfsOptions {
  std::size_t num_vertices = 512;
  std::size_t avg_degree = 4;
  bool use_lease = false;  ///< Lease the frontier lock's line per append burst.
  std::uint64_t seed = 7;
};

class Bfs {
 public:
  /// `participants` = number of worker threads that will call run_worker.
  Bfs(Machine& m, int participants, BfsOptions opt = {});

  /// One worker's share of the whole BFS (all levels, with barriers).
  /// Spawn exactly `participants` of these.
  Task<void> run_worker(Ctx& ctx);

  /// Functional distance read-back (after run). kUnreached if untouched.
  static constexpr std::uint64_t kUnreached = ~0ull;
  std::uint64_t distance(std::size_t v) const { return m_.memory().read(dist_ + 8 * v); }

  /// Host-side oracle: sequential BFS distances on the same graph.
  std::vector<std::uint64_t> oracle_distances() const;

  std::size_t num_vertices() const { return opt_.num_vertices; }

 private:
  Machine& m_;
  BfsOptions opt_;
  int participants_;
  TTSLock frontier_lock_;
  SenseBarrier barrier_;

  // CSR graph in simulated memory.
  Addr offsets_;  ///< num_vertices+1 words.
  Addr edges_;    ///< total edge endpoints.
  Addr dist_;     ///< per-vertex distance (kUnreached until visited).

  // Double-buffered frontier.
  Addr frontier_[2];        ///< vertex arrays.
  Addr frontier_count_[2];  ///< sizes (own lines).
  Addr cursor_;             ///< work-claim cursor for the current frontier.
  Addr level_;              ///< current BFS depth (written by one thread).

  // Host-side adjacency copy for the oracle.
  std::vector<std::vector<std::size_t>> host_adj_;
};

}  // namespace lrsim
