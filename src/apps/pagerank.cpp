// Copyright (c) 2026 lrsim authors. MIT license.

#include "apps/pagerank.hpp"

#include "util/rng.hpp"

namespace lrsim {

Pagerank::Pagerank(Machine& m, PagerankOptions opt)
    : m_(m), opt_(opt), lock_(m, LockOptions{.use_lease = opt.use_lease}), acc_(m.heap().alloc_line()) {
  m.memory().write(acc_, 0);
  ranks_ = m.heap().alloc(8 * opt_.num_vertices, kLineSize);
  adjacency_.resize(opt_.num_vertices, 0);
  degree_.resize(opt_.num_vertices, 0);
  dangling_.resize(opt_.num_vertices, false);

  Rng rng{opt_.seed};
  for (std::size_t v = 0; v < opt_.num_vertices; ++v) {
    m.memory().write(ranks_ + 8 * v, 100);  // initial integer "rank"
    if (rng.next_bool(opt_.dangling_fraction)) {
      dangling_[v] = true;
      ++num_dangling_;
      continue;
    }
    const std::size_t deg = 1 + rng.next_below(2 * opt_.avg_degree - 1);
    degree_[v] = deg;
    adjacency_[v] = m.heap().alloc(8 * deg, kLineSize);
    for (std::size_t e = 0; e < deg; ++e) {
      m.memory().write(adjacency_[v] + 8 * e, rng.next_below(opt_.num_vertices));
    }
  }
}

Task<void> Pagerank::process_range(Ctx& ctx, std::size_t begin, std::size_t end) {
  for (std::size_t v = begin; v < end && v < opt_.num_vertices; ++v) {
    // Gather neighbour ranks (read-mostly traffic, scales well).
    std::uint64_t sum = 0;
    for (std::size_t e = 0; e < degree_[v]; ++e) {
      const std::uint64_t u = co_await ctx.load(adjacency_[v] + 8 * e);
      sum += co_await ctx.load(ranks_ + 8 * u);
    }
    if (opt_.rank_work > 0) co_await ctx.work(opt_.rank_work);
    const std::uint64_t old_rank = co_await ctx.load(ranks_ + 8 * v);
    const std::uint64_t new_rank = degree_[v] ? (15 + (85 * sum / (100 * degree_[v]))) : old_rank;
    co_await ctx.store(ranks_ + 8 * v, new_rank);

    if (dangling_[v]) {
      if (opt_.accum == PagerankAccum::kFaa) {
        // Lock-free alternative: one atomic RMW on the hot line.
        co_await ctx.faa(acc_, new_rank);
      } else {
        // The contended critical section: all threads funnel dangling mass
        // into one accumulator behind one lock.
        co_await lock_.lock(ctx);
        const std::uint64_t acc = co_await ctx.load(acc_);
        co_await ctx.store(acc_, acc + new_rank);
        co_await lock_.unlock(ctx);
      }
    }
    ctx.count_op();
  }
}

}  // namespace lrsim
