// Copyright (c) 2026 lrsim authors. MIT license.
//
// Umbrella header for the lrsim core library: the simulated multicore
// machine with directory-based MSI coherence and the Lease/Release
// extension (PPoPP'16). Include this to get the full public API:
//
//   Machine / MachineConfig  — build and run a simulated machine
//   Ctx                      — per-thread awaitable ISA (load/store/CAS/
//                              FAA/xchg/work/lease/release/multi_lease)
//   Task<T>                  — coroutine type for workload code
//   SimHeap / SimMemory      — simulated address space
//   Stats / EnergyModel      — counters and the energy model
#pragma once

#include "coherence/config.hpp"     // IWYU pragma: export
#include "coherence/controller.hpp" // IWYU pragma: export
#include "coherence/directory.hpp"  // IWYU pragma: export
#include "coherence/l1_cache.hpp"   // IWYU pragma: export
#include "core/lease_table.hpp"     // IWYU pragma: export
#include "mem/heap.hpp"             // IWYU pragma: export
#include "mem/memory.hpp"           // IWYU pragma: export
#include "obs/observability.hpp"    // IWYU pragma: export
#include "runtime/machine.hpp"      // IWYU pragma: export
#include "runtime/task.hpp"         // IWYU pragma: export
#include "sim/event_queue.hpp"      // IWYU pragma: export
#include "sim/par_kernel.hpp"       // IWYU pragma: export
#include "sim/stats.hpp"            // IWYU pragma: export
#include "util/rng.hpp"             // IWYU pragma: export
#include "util/types.hpp"           // IWYU pragma: export
