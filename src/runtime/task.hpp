// Copyright (c) 2026 lrsim authors. MIT license.
//
// A minimal lazy Task<T> coroutine type with symmetric transfer.
//
// Simulated threads are coroutines: data-structure operations are Task<T>
// functions that co_await memory-operation awaitables (runtime/machine.hpp),
// which suspend the thread until the modeled cache/coherence latency has
// elapsed. Nested calls (e.g. a benchmark loop awaiting stack.push awaiting
// ctx.cas) compose through the continuation chain below.
//
// *** GCC 12 WORKAROUND — READ BEFORE WRITING WORKLOAD CODE ***
//
// GCC 12.2 miscompiles `co_await` of a *prvalue Task* appearing directly in
// an if/while/for **condition**: the enclosing coroutine's frame dispatch is
// corrupted and the awaited task silently never runs. Empirically verified
// in this repo (see tests/style_lint_test.cpp, which greps for the pattern):
//
//   if (co_await lock.try_lock(ctx)) ...          // BROKEN on GCC 12
//   while (co_await set.remove(ctx, k)) ...       // BROKEN on GCC 12
//
//   const bool ok = co_await lock.try_lock(ctx);  // OK — always hoist
//   if (ok) ...
//
// Safe everywhere: initializers, arithmetic subexpressions, ternaries,
// `co_return co_await f()`, `co_await std::move(lvalue_task)` in conditions,
// and leaf awaitables (Ctx::load/store/cas/... are trivially destructible
// and unaffected, so `while (co_await ctx.load(a) != 0)` is fine).
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <utility>

namespace lrsim {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;  ///< Resumed when this task finishes.
  std::exception_ptr exception;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      // Symmetric transfer into whoever awaited us; top-level fibers always
      // set a continuation (runtime/machine.hpp), so this is never null in
      // a running simulation, but tolerate detached use in tests.
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

/// A lazily started coroutine returning T. Move-only; owns its frame.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    T value{};

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value = std::forward<U>(v);
    }
  };

  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// Awaiting a Task starts it and suspends the awaiter until completion.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;  // symmetric transfer: start the child
      }
      T await_resume() {
        if (h.promise().exception) std::rethrow_exception(h.promise().exception);
        return std::move(h.promise().value);
      }
    };
    return Awaiter{h_};
  }

  bool valid() const noexcept { return h_ != nullptr; }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> h_ = nullptr;

  friend struct promise_type;
  template <typename>
  friend class Task;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() {
        if (h.promise().exception) std::rethrow_exception(h.promise().exception);
      }
    };
    return Awaiter{h_};
  }

  bool valid() const noexcept { return h_ != nullptr; }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_ = nullptr;

  friend struct promise_type;
};

}  // namespace lrsim
