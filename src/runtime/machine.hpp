// Copyright (c) 2026 lrsim authors. MIT license.
//
// Machine: the user-facing top of the lrsim core library.
//
// A Machine owns the event kernel, simulated memory + heap, the directory,
// and one cache controller per core. Workloads are coroutines (Task<void>)
// spawned one per core; they interact with the machine exclusively through
// a Ctx handle whose methods return awaitables:
//
//   Task<void> worker(Ctx& ctx, Addr counter) {
//     co_await ctx.lease(counter, 2000);
//     std::uint64_t v = co_await ctx.load(counter);
//     co_await ctx.store(counter, v + 1);
//     co_await ctx.release(counter);
//   }
//
//   Machine m{MachineConfig{.num_cores = 8}};
//   Addr counter = m.heap().alloc_line();
//   for (int c = 0; c < 8; ++c) m.spawn(c, [&](Ctx& ctx) { return worker(ctx, counter); });
//   m.run();
#pragma once

#include <algorithm>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "coherence/config.hpp"
#include "coherence/controller.hpp"
#include "coherence/directory.hpp"
#include "mem/heap.hpp"
#include "mem/memory.hpp"
#include "obs/observability.hpp"
#include "runtime/task.hpp"
#include "sim/event_queue.hpp"
#include "sim/par_kernel.hpp"
#include "sim/invariants.hpp"
#include "sim/trace.hpp"
#include "sim/stats.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace lrsim {

class Machine;

/// Per-thread execution context: the simulated ISA as awaitables.
class Ctx {
 public:
  CoreId core() const noexcept { return core_; }
  Cycle now() const noexcept { return ev_.now(); }
  Rng& rng() noexcept { return rng_; }
  Stats& stats() noexcept { return cc_.stats(); }
  const MachineConfig& config() const noexcept { return cfg_; }

  /// Marks one completed application-level operation (throughput metric).
  void count_op() noexcept { cc_.count_op(); }

  // --- per-core simulated heap ---------------------------------------------

  /// Allocates from this core's heap arena (see mem/heap.hpp). Addresses
  /// are a pure function of this core's allocation sequence, so per-op
  /// allocation through Ctx is legal inside a parallel worker phase —
  /// unlike Machine::heap().alloc(), which is construction-time only.
  Addr alloc(std::size_t bytes, std::size_t align = 8) {
    return heap_.alloc_on(core_, bytes, align);
  }

  /// Line-isolated allocation from this core's arena: the right choice for
  /// any word that will be leased or contended (stack/queue nodes).
  Addr alloc_line(std::size_t bytes = 8) { return heap_.alloc_line_on(core_, bytes); }

  /// Recycles a line-aligned block previously obtained from this core's
  /// alloc_line (cross-core frees are rejected — see SimHeap::free_line_on).
  void free_line(Addr a, std::size_t bytes = 8) { heap_.free_line_on(core_, a, bytes); }

  // --- awaitable memory operations ----------------------------------------

  /// 64-bit load.
  auto load(Addr a) {
    struct Aw {
      Ctx* c;
      Addr a;
      std::uint64_t v = 0;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        c->begin_op();
        c->cc_.cpu_read(a, [this, h](std::uint64_t val) {
          v = val;
          c->end_op();
          h.resume();
        });
      }
      std::uint64_t await_resume() const noexcept { return v; }
    };
    return Aw{this, a};
  }

  /// 64-bit store.
  auto store(Addr a, std::uint64_t v) {
    struct Aw {
      Ctx* c;
      Addr a;
      std::uint64_t v;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        c->begin_op();
        c->cc_.cpu_write(a, v, [this, h] {
          c->end_op();
          h.resume();
        });
      }
      void await_resume() const noexcept {}
    };
    return Aw{this, a, v};
  }

  /// Compare-and-swap; resumes with success flag.
  auto cas(Addr a, std::uint64_t expect, std::uint64_t desired) {
    struct Aw {
      Ctx* c;
      Addr a;
      std::uint64_t e, d;
      bool ok = false;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        c->begin_op();
        c->cc_.cpu_cas(a, e, d, [this, h](bool success, std::uint64_t) {
          ok = success;
          c->end_op();
          h.resume();
        });
      }
      bool await_resume() const noexcept { return ok; }
    };
    return Aw{this, a, expect, desired};
  }

  /// Compare-and-swap; resumes with the *old* value (success == old == expect).
  auto cas_val(Addr a, std::uint64_t expect, std::uint64_t desired) {
    struct Aw {
      Ctx* c;
      Addr a;
      std::uint64_t e, d;
      std::uint64_t old = 0;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        c->begin_op();
        c->cc_.cpu_cas(a, e, d, [this, h](bool, std::uint64_t o) {
          old = o;
          c->end_op();
          h.resume();
        });
      }
      std::uint64_t await_resume() const noexcept { return old; }
    };
    return Aw{this, a, expect, desired};
  }

  /// Fetch-and-add; resumes with the old value.
  auto faa(Addr a, std::uint64_t add) {
    struct Aw {
      Ctx* c;
      Addr a;
      std::uint64_t add;
      std::uint64_t old = 0;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        c->begin_op();
        c->cc_.cpu_faa(a, add, [this, h](std::uint64_t o) {
          old = o;
          c->end_op();
          h.resume();
        });
      }
      std::uint64_t await_resume() const noexcept { return old; }
    };
    return Aw{this, a, add};
  }

  /// Atomic exchange; resumes with the old value (test&set building block).
  auto xchg(Addr a, std::uint64_t v) {
    struct Aw {
      Ctx* c;
      Addr a;
      std::uint64_t v;
      std::uint64_t old = 0;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        c->begin_op();
        c->cc_.cpu_xchg(a, v, [this, h](std::uint64_t o) {
          old = o;
          c->end_op();
          h.resume();
        });
      }
      std::uint64_t await_resume() const noexcept { return old; }
    };
    return Aw{this, a, v};
  }

  /// Local computation: advances this core's time by `n` cycles.
  auto work(Cycle n) {
    struct Aw {
      Ctx* c;
      Cycle n;
      // A work delay is pure simulated time: when the inline window is clear
      // the kernel advances now() directly and the coroutine never suspends —
      // bit-identical to the scheduled resume below, minus the round trip.
      bool await_ready() const noexcept { return c->cfg_.fast_path && c->ev_.try_advance(n); }
      void await_suspend(std::coroutine_handle<> h) {
        // Tail event: resuming the coroutine is the callback's only action.
        // Core-tagged: the resume runs this core's workload code only.
        c->ev_.schedule_tail_in_on(static_cast<EventQueue::Domain>(c->core_), n,
                                   [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Aw{this, n};
  }

  // --- Lease/Release (Sections 3-4) ----------------------------------------

  /// Lease the line containing `a` for `duration` cycles (clamped to
  /// MAX_LEASE_TIME). Duration 0 = "policy-chosen": resolved by the core's
  /// lease table (static policy: MAX_LEASE_TIME; adaptive: the per-line
  /// AIMD duration). Resumes once the line is held exclusively and the
  /// countdown is running. No-op on a leases-disabled machine.
  auto lease(Addr a, Cycle duration) {
    struct Aw {
      Ctx* c;
      Addr a;
      Cycle d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        c->begin_op();
        c->cc_.cpu_lease(a, d, [this, h] {
          c->end_op();
          h.resume();
        });
      }
      void await_resume() const noexcept {}
    };
    return Aw{this, a, duration};
  }

  /// Convenience: lease for the policy-chosen duration (static policy: the
  /// full MAX_LEASE_TIME, as the name historically promised).
  auto lease_max(Addr a) { return lease(a, 0); }

  /// Release; resumes with true iff the release was voluntary.
  auto release(Addr a) {
    struct Aw {
      Ctx* c;
      Addr a;
      bool voluntary = false;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        c->begin_op();
        c->cc_.cpu_release(a, [this, h](bool vol) {
          voluntary = vol;
          c->end_op();
          h.resume();
        });
      }
      bool await_resume() const noexcept { return voluntary; }
    };
    return Aw{this, a};
  }

  /// MultiLease on a set of addresses (Algorithm 2).
  auto multi_lease(std::vector<Addr> addrs, Cycle duration) {
    struct Aw {
      Ctx* c;
      std::vector<Addr> addrs;
      Cycle d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        c->begin_op();
        c->cc_.cpu_multi_lease(std::move(addrs), d, [this, h] {
          c->end_op();
          h.resume();
        });
      }
      void await_resume() const noexcept {}
    };
    return Aw{this, std::move(addrs), duration};
  }

  /// ReleaseAll (Algorithm 2).
  auto release_all() {
    struct Aw {
      Ctx* c;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        c->begin_op();
        c->cc_.cpu_release_all([this, h] {
          c->end_op();
          h.resume();
        });
      }
      void await_resume() const noexcept {}
    };
    return Aw{this};
  }

  CacheController& controller() noexcept { return cc_; }

 private:
  friend class Machine;
  Ctx(CoreId core, EventQueue& ev, CacheController& cc, SimHeap& heap, const MachineConfig& cfg,
      std::uint64_t seed)
      : core_(core), ev_(ev), cc_(cc), heap_(heap), cfg_(cfg), rng_(seed) {}

  // An in-order core has exactly one outstanding memory instruction; these
  // asserts catch accidentally spawning two threads on one core.
  void begin_op() {
    assert(!op_in_flight_ && "two concurrent memory ops on one in-order core");
    op_in_flight_ = true;
  }
  void end_op() { op_in_flight_ = false; }

  CoreId core_;
  EventQueue& ev_;
  CacheController& cc_;
  SimHeap& heap_;
  const MachineConfig& cfg_;
  Rng rng_;
  bool op_in_flight_ = false;
};

namespace detail {

/// Detached root coroutine wrapping each spawned thread.
struct Fiber {
  struct promise_type {
    Fiber get_return_object() {
      return Fiber{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    // Suspend at the end so Machine can destroy finished and unfinished
    // frames uniformly (destroying a running-to-completion frame would be
    // use-after-free; destroying a finally-suspended one is the idiom).
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }  // run_root catches first
  };
  std::coroutine_handle<promise_type> handle;
};

}  // namespace detail

/// The simulated multicore machine.
class Machine {
 public:
  explicit Machine(MachineConfig cfg = {}, std::uint64_t seed = 1)
      : cfg_(std::move(cfg)), seed_(seed), core_stats_(checked_core_count(cfg_.num_cores)) {
    if (cfg_.lease_policy == LeasePolicy::kAdaptive) {
      if (cfg_.min_lease_time == 0 || cfg_.min_lease_time > cfg_.max_lease_time)
        throw std::invalid_argument(
            "adaptive lease policy requires 0 < min_lease_time <= max_lease_time");
      if (cfg_.lease_ctrl_capacity < 1)
        throw std::invalid_argument("adaptive lease policy requires lease_ctrl_capacity >= 1");
      if (cfg_.lease_shrink_streak < 1)
        throw std::invalid_argument("adaptive lease policy requires lease_shrink_streak >= 1");
    }
    heap_.configure_arenas(cfg_.num_cores);
    mem_.configure_arenas(cfg_.num_cores);
    dir_ = std::make_unique<Directory>(ev_, mem_, cfg_, dir_stats_);
    controllers_.reserve(static_cast<std::size_t>(cfg_.num_cores));
    std::vector<CacheController*> raw;
    for (int c = 0; c < cfg_.num_cores; ++c) {
      controllers_.push_back(
          std::make_unique<CacheController>(c, ev_, mem_, cfg_, core_stats_[static_cast<std::size_t>(c)]));
      controllers_.back()->attach_directory(dir_.get());
      raw.push_back(controllers_.back().get());
    }
    dir_->attach_cores(std::move(raw));
  }

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  ~Machine() {
    // Destroy thread frames (finished ones sit at their final suspend
    // point; unfinished ones are suspended mid-await) before the machine
    // components they reference.
    for (auto& t : threads_) {
      if (t->root) t->root.destroy();
    }
  }

  /// Spawns a simulated thread on `core`. Execution begins at the current
  /// simulated cycle once run() pumps events. One thread per core.
  ///
  /// The functor is *stored inside the Machine* for the thread's lifetime:
  /// a coroutine lambda's frame references its closure object rather than
  /// copying it, so the closure must outlive the run (the classic lambda-
  /// coroutine pitfall). Capturing stack variables by reference is fine as
  /// long as they outlive Machine::run(), which is the normal pattern.
  template <typename F>
  void spawn(CoreId core, F&& fn) {
    assert(core >= 0 && core < cfg_.num_cores);
    auto t = std::make_unique<ThreadState>();
    t->ctx.reset(new Ctx(core, ev_, *controllers_[static_cast<std::size_t>(core)], heap_, cfg_,
                         seed_ ^ (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(core) + 1))));
    t->fn = std::forward<F>(fn);
    ThreadState* ts = t.get();
    detail::Fiber f = run_root(ts->fn(*ts->ctx), ts);
    ts->root = f.handle;
    threads_.push_back(std::move(t));
    // Resume is the whole event, and it runs only this core's workload code.
    ev_.schedule_tail_in_on(static_cast<EventQueue::Domain>(core), 0,
                            [ts] { ts->root.resume(); });
  }

  /// Selects the kernel for subsequent run() calls: 0 or 1 means serial,
  /// n >= 2 requests the parallel kernel with n worker threads (see
  /// sim/par_kernel.hpp). The request is honored only when the run is
  /// par-eligible (par_eligible()); otherwise run() silently falls back to
  /// the serial kernel — either way the results are bit-identical.
  void set_sim_threads(int n) {
    if (n < 0) throw std::invalid_argument("sim_threads must be >= 0");
    sim_threads_ = n;
  }
  int sim_threads() const noexcept { return sim_threads_; }

  /// True when run() would use the parallel kernel. Perturbation would make
  /// firing order depend on a PRNG the workers cannot share; tracing,
  /// observability and the invariant checker append to machine-global logs
  /// from event callbacks; fewer than two cores per shard leaves no
  /// batch with two non-empty shards worth a barrier round trip; and a
  /// zero-cycle lookahead width (all modeled latencies zero) leaves no
  /// window in which core events are provably independent.
  bool par_eligible() const noexcept {
    return sim_threads_ >= 2 && !ev_.perturbed() && tracer_ == nullptr &&
           obs_ == nullptr && inv_ == nullptr && cfg_.num_cores >= 2 * sim_threads_ &&
           par_window() >= 1;
  }

  /// Lookahead window width W (cycles): the minimum modeled delay from a
  /// core event to any event that can touch shared directory/L2 state.
  /// Every core→directory request leg costs at least l1_latency plus the
  /// core↔home transit, and every probe/back-invalidate response at least
  /// 1 + transit — so W = min(l1_latency, 1) + min_transit cycles of
  /// core-tagged events are closed under per-core execution
  /// (sim/par_kernel.hpp).
  Cycle par_window() const noexcept {
    const Cycle min_transit =
        cfg_.mesh_topology ? cfg_.mesh_router_latency : cfg_.net_latency;
    return std::min<Cycle>(cfg_.l1_latency, 1) + min_transit;
  }

  /// Parallel-kernel counters from past run() calls, or nullptr when the
  /// parallel kernel was never engaged. Introspection for tests/benches.
  const ParKernelStats* par_stats() const noexcept {
    return par_ ? &par_->stats() : nullptr;
  }

  /// Runs the simulation until every spawned thread finishes (or `limit`
  /// cycles elapse — a watchdog for deadlock tests). Returns the final
  /// simulated cycle. Rethrows the first workload exception, if any.
  Cycle run(Cycle limit = UINT64_MAX) {
    if (par_eligible()) {
      if (!par_) {
        // One batch event schedules at most a handful of children; the
        // worst case is a release/expiry servicing every parked probe a
        // full lease table can hold, plus the op-completion chain. Wide
        // margin — the reserve is recycled slab slots, not allocations.
        const std::size_t reserve =
            2 * static_cast<std::size_t>(std::max(1, cfg_.max_num_leases)) + 32;
        par_ = std::make_unique<ParKernel>(ev_, sim_threads_, reserve, cfg_.num_cores,
                                           par_window());
      }
      // Per-core spawn counts bound how many threads one window can finish
      // (the predicate-stability guard). Recomputed per run: spawns between
      // runs are legal.
      std::vector<std::size_t> threads_per_core(
          static_cast<std::size_t>(cfg_.num_cores), 0);
      for (const auto& t : threads_) {
        ++threads_per_core[static_cast<std::size_t>(t->ctx->core())];
      }
      par_->run_while([this] { return !all_done(); }, limit,
                      [this] { return threads_.size() - threads_finished(); },
                      threads_per_core);
    } else {
      ev_.run_while([this] { return !all_done(); }, limit);
    }
    for (auto& t : threads_) {
      if (t->error) std::rethrow_exception(t->error);
    }
    return ev_.now();
  }

  bool all_done() const {
    for (const auto& t : threads_) {
      if (!t->done) return false;
    }
    return true;
  }

  std::size_t threads_finished() const {
    std::size_t n = 0;
    for (const auto& t : threads_) n += t->done ? 1 : 0;
    return n;
  }

  // --- components -----------------------------------------------------------
  EventQueue& events() noexcept { return ev_; }
  SimMemory& memory() noexcept { return mem_; }
  SimHeap& heap() noexcept { return heap_; }
  Directory& directory() noexcept { return *dir_; }
  CacheController& controller(CoreId c) { return *controllers_[static_cast<std::size_t>(c)]; }
  const MachineConfig& config() const noexcept { return cfg_; }

  /// Stats for one core (requester-attributed). Flushes that controller's
  /// batched hot counters first so the caller sees up-to-date totals.
  const Stats& core_stats(CoreId c) const {
    controllers_[static_cast<std::size_t>(c)]->flush_stats();
    return core_stats_[static_cast<std::size_t>(c)];
  }

  /// Turns on protocol tracing into a bounded ring (see sim/trace.hpp).
  /// Optionally restricted to one cache line. Returns the tracer for
  /// inspection/dumping.
  Tracer& enable_tracing(std::size_t capacity = 4096,
                         std::optional<LineId> line_filter = std::nullopt) {
    tracer_ = std::make_unique<Tracer>(capacity, line_filter);
    dir_->set_tracer(tracer_.get());
    for (auto& c : controllers_) c->set_tracer(tracer_.get());
    if (inv_) inv_->set_tracer(tracer_.get());
    if (obs_) obs_->set_tracer(tracer_.get());
    return *tracer_;
  }
  Tracer* tracer() noexcept { return tracer_.get(); }

  /// Arms the observability layer (see obs/observability.hpp): span
  /// recording for trace export, per-line contention profiles, and (when
  /// opts.sample_every > 0) the periodic Stats sampler. Call before
  /// spawning work so lease/park/directory spans are complete. Off by
  /// default; when off, every hook site is a single null check.
  Observability& enable_observability(ObsOptions opts = {}) {
    obs_ = std::make_unique<Observability>(opts);
    dir_->set_observer(obs_.get());
    for (auto& c : controllers_) c->set_observer(obs_.get());
    if (tracer_) obs_->set_tracer(tracer_.get());
    obs_->start_sampling(ev_, [this] { return total_stats(); }, &core_stats_);
    return *obs_;
  }
  Observability* observability() noexcept { return obs_.get(); }

  /// Arms the protocol invariant checker (see sim/invariants.hpp). Checks
  /// run after every hooked state transition; a violation throws
  /// InvariantViolation out of Machine::run. Enables tracing (if not already
  /// on) so violations carry per-line history. Call before spawning work.
  InvariantChecker& enable_invariants() {
    if (!tracer_) enable_tracing(2048);
    inv_ = std::make_unique<InvariantChecker>(ev_, mem_, cfg_);
    inv_->set_tracer(tracer_.get());
    std::vector<CacheController*> raw;
    raw.reserve(controllers_.size());
    for (auto& c : controllers_) raw.push_back(c.get());
    inv_->attach(dir_.get(), std::move(raw));
    dir_->set_invariants(inv_.get());
    for (auto& c : controllers_) c->set_invariants(inv_.get());
    return *inv_;
  }
  InvariantChecker* invariants() noexcept { return inv_.get(); }

  /// Seeded random tie-breaking among same-cycle events (see
  /// EventQueue::enable_perturbation). Call before spawning work.
  void enable_perturbation(std::uint64_t seed) { ev_.enable_perturbation(seed); }

  /// Machine-wide aggregate, including directory-attributed counters.
  Stats total_stats() const {
    for (const auto& c : controllers_) c->flush_stats();
    Stats s = dir_stats_;
    for (const Stats& cs : core_stats_) s += cs;
    return s;
  }

 private:
  /// Validated here rather than in the constructor body: core_stats_ is
  /// sized in the member-initializer list, so a negative count must be
  /// rejected before the cast to std::size_t.
  static std::size_t checked_core_count(int n) {
    if (n <= 0) throw std::invalid_argument("num_cores must be positive");
    // Same limit the Directory itself enforces (SharerStore::configure) —
    // the two guardrails share kMaxCores so they can never disagree again.
    if (n > kMaxCores) {
      throw std::invalid_argument("num_cores must be <= " + std::to_string(kMaxCores) +
                                  " (kMaxCores, directory sharer-set limit)");
    }
    return static_cast<std::size_t>(n);
  }

  struct ThreadState {
    std::unique_ptr<Ctx> ctx;
    std::function<Task<void>(Ctx&)> fn;  ///< Keeps the closure object alive.
    std::coroutine_handle<detail::Fiber::promise_type> root = nullptr;
    bool done = false;
    std::exception_ptr error;
  };

  static detail::Fiber run_root(Task<void> t, ThreadState* ts) {
    try {
      co_await std::move(t);
    } catch (...) {
      ts->error = std::current_exception();
    }
    ts->done = true;
  }

  MachineConfig cfg_;
  std::uint64_t seed_;
  EventQueue ev_;
  SimMemory mem_;
  SimHeap heap_;
  Stats dir_stats_;  ///< Messages/events attributed at the directory.
  std::vector<Stats> core_stats_;
  std::unique_ptr<Directory> dir_;
  std::vector<std::unique_ptr<CacheController>> controllers_;
  std::vector<std::unique_ptr<ThreadState>> threads_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<InvariantChecker> inv_;
  std::unique_ptr<Observability> obs_;
  int sim_threads_ = 0;  ///< 0/1 = serial; >= 2 requests the parallel kernel.
  // Declared last on purpose: the worker threads reference ev_ and must be
  // joined (ParKernel dtor) before any other member is destroyed.
  std::unique_ptr<ParKernel> par_;
};

}  // namespace lrsim
