// Copyright (c) 2026 lrsim authors. MIT license.
//
// Randomized exponential backoff for the paper's software-baseline
// comparisons (Section 7, "Comparison with Backoffs"): backoff variants of
// the stack/queue retry loops wait a randomized, exponentially growing
// number of cycles after a failed CAS instead of retrying immediately.
#pragma once

#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "util/types.hpp"

namespace lrsim {

class Backoff {
 public:
  /// `min_wait`/`max_wait` bound the randomized wait in cycles.
  explicit Backoff(Cycle min_wait = 32, Cycle max_wait = 8192)
      : min_(min_wait), max_(max_wait), cur_(min_wait) {}

  /// Waits a uniform random time in [cur/2, cur], then doubles cur (up to
  /// the max). Call after a failed CAS / try_lock.
  Task<void> pause(Ctx& ctx) {
    const Cycle lo = cur_ / 2 + 1;
    const Cycle wait = lo + ctx.rng().next_below(cur_ - lo + 1);
    cur_ = std::min(cur_ * 2, max_);
    co_await ctx.work(wait);
  }

  /// Call after a successful operation.
  void reset() noexcept { cur_ = min_; }

  Cycle current() const noexcept { return cur_; }

 private:
  Cycle min_, max_, cur_;
};

}  // namespace lrsim
