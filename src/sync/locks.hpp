// Copyright (c) 2026 lrsim authors. MIT license.
//
// Lock implementations over the simulated ISA.
//
//  * TTSLock    — test&test&set spin lock, with the Section 6 lease recipe
//                 ("Leases for TryLocks"): lease the lock line before the
//                 acquire attempt, keep it for the critical section, drop it
//                 immediately on a failed attempt.
//  * TicketLock — FIFO ticket lock with optional proportional backoff (the
//                 paper's "optimized hierarchical ticket lock" stand-in for
//                 Figure 3's lock comparison).
//  * CLHLock    — CLH queue lock (Craig / Magnusson-Landin-Hagersten): each
//                 waiter spins on its predecessor's node, so handoff costs a
//                 constant number of coherence messages by construction.
//
// Every lock word lives alone on its own cache line (false-sharing hazard,
// Section 7 "Observations and Limitations").
#pragma once

#include <unordered_map>

#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "util/types.hpp"

namespace lrsim {

/// Options shared by the lease-aware locks.
struct LockOptions {
  bool use_lease = false;  ///< Lease the lock line around acquire..release.
  Cycle lease_time = 0;    ///< 0 => policy-chosen (static: MAX_LEASE_TIME).
};

/// Test&test&set spin lock.
class TTSLock {
 public:
  TTSLock(Machine& m, LockOptions opt = {});

  /// One acquisition attempt. With leases: lease the line first; on failure
  /// drop the lease immediately ("holding it may delay other threads").
  Task<bool> try_lock(Ctx& ctx);

  /// Spins (test, then test&set) until acquired.
  Task<void> lock(Ctx& ctx);

  /// Releases the lock; with leases, also voluntarily releases the line
  /// (the lock holder retained ownership for the whole critical section).
  Task<void> unlock(Ctx& ctx);

  Addr addr() const noexcept { return addr_; }
  const LockOptions& options() const noexcept { return opt_; }

 private:
  Addr addr_;
  LockOptions opt_;
};

/// FIFO ticket lock with optional proportional (linear) backoff while
/// waiting, as in the paper's Figure 3 ticket-lock baseline.
class TicketLock {
 public:
  /// `backoff_slope` cycles are waited per ticket of distance; 0 disables
  /// proportional backoff.
  TicketLock(Machine& m, Cycle backoff_slope = 0);

  Task<void> lock(Ctx& ctx);
  Task<void> unlock(Ctx& ctx);

  Addr next_ticket_addr() const noexcept { return next_; }
  Addr now_serving_addr() const noexcept { return serving_; }

 private:
  Addr next_;     ///< fetch&add ticket dispenser (own line).
  Addr serving_;  ///< now-serving counter (own line).
  Cycle slope_;
  // The ticket each core is holding (host-side bookkeeping; a real thread
  // would keep this in a register).
  std::unordered_map<CoreId, std::uint64_t> held_;
};

/// MCS queue lock [Mellor-Crummey & Scott, the paper's reference [25]]:
/// each waiter spins on a flag in its *own* node; the releaser writes the
/// successor's flag directly, so handoff touches exactly one remote line.
class MCSLock {
 public:
  explicit MCSLock(Machine& m);

  Task<void> lock(Ctx& ctx);
  Task<void> unlock(Ctx& ctx);

 private:
  /// Node layout (one line): word 0 = locked flag, word 1 = next pointer.
  Addr node_of(Ctx& ctx);

  Machine& machine_;
  Addr tail_;  ///< 0 when free; else the last waiter's node (own line).
  std::unordered_map<CoreId, Addr> nodes_;
};

/// CLH queue lock. Each thread owns a queue node (one line); lock() swaps
/// the tail to its node and spins on the predecessor's flag.
class CLHLock {
 public:
  explicit CLHLock(Machine& m);

  Task<void> lock(Ctx& ctx);
  Task<void> unlock(Ctx& ctx);

 private:
  struct PerThread {
    Addr my_node;    ///< Node this thread will enqueue next.
    Addr my_pred;    ///< Predecessor node (recycled on unlock).
  };
  PerThread& slot(Ctx& ctx);

  Machine& machine_;
  Addr tail_;  ///< Points to the most recent waiter's node (own line).
  std::unordered_map<CoreId, PerThread> per_thread_;
};

}  // namespace lrsim
