// Copyright (c) 2026 lrsim authors. MIT license.

#include "sync/cohort_lock.hpp"

namespace lrsim {

CohortTicketLock::CohortTicketLock(Machine& m, CohortOptions opt)
    : m_(m), opt_(opt), global_next_(m.heap().alloc_line()), global_serving_(m.heap().alloc_line()) {
  m.memory().write(global_next_, 0);
  m.memory().write(global_serving_, 0);
  const int n_clusters =
      std::max(1, (m.config().num_cores + opt_.cluster_size - 1) / opt_.cluster_size);
  for (int i = 0; i < n_clusters; ++i) {
    Cluster cl{m.heap().alloc_line(), m.heap().alloc_line(), m.heap().alloc_line(),
               m.heap().alloc_line()};
    m.memory().write(cl.next, 0);
    m.memory().write(cl.serving, 0);
    m.memory().write(cl.batch, 0);
    m.memory().write(cl.has_global, 0);
    clusters_.push_back(cl);
  }
}

Task<void> CohortTicketLock::lock(Ctx& ctx) {
  const Cluster& cl = clusters_[cluster_of(ctx.core())];
  const std::uint64_t ticket = co_await ctx.faa(cl.next, 1);
  held_ticket_[ctx.core()] = ticket;
  // Local spin: the handoff store targets exactly this line.
  while (true) {
    const std::uint64_t serving = co_await ctx.load(cl.serving);
    if (serving == ticket) break;
    co_await ctx.work(32 * (ticket - serving));  // proportional backoff
  }
  // Local leader: take the global lock if our cluster doesn't hold it yet.
  // (has_global is only ever touched while holding the local lock.)
  const std::uint64_t have = co_await ctx.load(cl.has_global);
  if (have == 0) {
    const std::uint64_t g = co_await ctx.faa(global_next_, 1);
    while (true) {
      const std::uint64_t gs = co_await ctx.load(global_serving_);
      if (gs == g) break;
      co_await ctx.work(64 * (g - gs));
    }
    co_await ctx.store(cl.has_global, 1);
  }
  if (opt_.use_lease) {
    // The critical-section lease (Section 6 recipe) on the handoff line:
    // the unlock's serving store stays an L1 hit, and spinning cluster
    // peers queue instead of stealing the line mid-section.
    co_await ctx.lease(cl.serving, opt_.lease_time);
  }
  ++ctx.stats().lock_acquisitions;
}

Task<void> CohortTicketLock::unlock(Ctx& ctx) {
  const Cluster& cl = clusters_[cluster_of(ctx.core())];
  const std::uint64_t ticket = held_ticket_[ctx.core()];
  const std::uint64_t next = co_await ctx.load(cl.next);
  const std::uint64_t batch = co_await ctx.load(cl.batch);
  const bool local_waiters = next > ticket + 1;
  if (local_waiters && batch < static_cast<std::uint64_t>(opt_.max_batch)) {
    // In-cluster handoff: keep the global lock, bump the batch counter.
    co_await ctx.store(cl.batch, batch + 1);
    co_await ctx.store(cl.serving, ticket + 1);
  } else {
    // Rotate the global lock to the next cluster.
    co_await ctx.store(cl.batch, 0);
    co_await ctx.store(cl.has_global, 0);
    const std::uint64_t gs = co_await ctx.load(global_serving_);
    co_await ctx.store(global_serving_, gs + 1);
    co_await ctx.store(cl.serving, ticket + 1);
  }
  if (opt_.use_lease) co_await ctx.release(cl.serving);
}

}  // namespace lrsim
