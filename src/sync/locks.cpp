// Copyright (c) 2026 lrsim authors. MIT license.

#include "sync/locks.hpp"

namespace lrsim {

namespace {
constexpr std::uint64_t kUnlocked = 0;
constexpr std::uint64_t kLocked = 1;
}  // namespace

// ---------------------------------------------------------------------------
// TTSLock
// ---------------------------------------------------------------------------

TTSLock::TTSLock(Machine& m, LockOptions opt) : addr_(m.heap().alloc_line()), opt_(opt) {
  m.memory().write(addr_, kUnlocked);
}

Task<bool> TTSLock::try_lock(Ctx& ctx) {
  if (opt_.use_lease) co_await ctx.lease(addr_, opt_.lease_time);
  const std::uint64_t old = co_await ctx.xchg(addr_, kLocked);
  if (old == kUnlocked) {
    ++ctx.stats().lock_acquisitions;
    co_return true;  // lease (if any) is kept for the critical section
  }
  ++ctx.stats().lock_failed_trylocks;
  if (opt_.use_lease) {
    // A failed try_lock must drop the lease at once: the line now carries a
    // *locked* lock someone else must reset (Section 6).
    co_await ctx.release(addr_);
  }
  co_return false;
}

Task<void> TTSLock::lock(Ctx& ctx) {
  while (true) {
    // Test phase: spin locally (the S copy makes re-reads L1 hits).
    while (co_await ctx.load(addr_) != kUnlocked) {
    }
    const bool acquired = co_await try_lock(ctx);
    if (acquired) co_return;
  }
}

Task<void> TTSLock::unlock(Ctx& ctx) {
  co_await ctx.store(addr_, kUnlocked);
  if (opt_.use_lease) co_await ctx.release(addr_);
}

// ---------------------------------------------------------------------------
// TicketLock
// ---------------------------------------------------------------------------

TicketLock::TicketLock(Machine& m, Cycle backoff_slope)
    : next_(m.heap().alloc_line()), serving_(m.heap().alloc_line()), slope_(backoff_slope) {
  m.memory().write(next_, 0);
  m.memory().write(serving_, 0);
}

Task<void> TicketLock::lock(Ctx& ctx) {
  const std::uint64_t ticket = co_await ctx.faa(next_, 1);
  while (true) {
    const std::uint64_t serving = co_await ctx.load(serving_);
    if (serving == ticket) break;
    if (slope_ > 0) {
      // Proportional backoff: wait for roughly the number of critical
      // sections queued ahead of us.
      co_await ctx.work(slope_ * (ticket - serving));
    }
  }
  held_[ctx.core()] = ticket;
  ++ctx.stats().lock_acquisitions;
}

Task<void> TicketLock::unlock(Ctx& ctx) {
  const std::uint64_t ticket = held_[ctx.core()];
  co_await ctx.store(serving_, ticket + 1);
}

// ---------------------------------------------------------------------------
// MCSLock
// ---------------------------------------------------------------------------
//
// Node: word 0 = locked (1 while waiting), word 1 = next (successor node).

MCSLock::MCSLock(Machine& m) : machine_(m), tail_(m.heap().alloc_line()) {
  m.memory().write(tail_, 0);
}

Addr MCSLock::node_of(Ctx& ctx) {
  auto it = nodes_.find(ctx.core());
  if (it == nodes_.end()) {
    it = nodes_.emplace(ctx.core(), machine_.heap().alloc_line(16)).first;
  }
  return it->second;
}

Task<void> MCSLock::lock(Ctx& ctx) {
  const Addr my = node_of(ctx);
  co_await ctx.store(my + 0, 1);  // I will wait
  co_await ctx.store(my + 8, 0);  // no successor yet
  const Addr pred = co_await ctx.xchg(tail_, my);
  if (pred != 0) {
    co_await ctx.store(pred + 8, my);  // link behind the predecessor
    // Spin on our own flag: the releaser writes it directly.
    while (co_await ctx.load(my + 0) != 0) {
    }
  }
  ++ctx.stats().lock_acquisitions;
}

Task<void> MCSLock::unlock(Ctx& ctx) {
  const Addr my = node_of(ctx);
  const Addr next = co_await ctx.load(my + 8);
  if (next == 0) {
    // No known successor: try to swing the tail back to free.
    const bool freed = co_await ctx.cas(tail_, my, 0);
    if (freed) co_return;
    // A successor is mid-enqueue: wait for it to link itself.
    while (true) {
      const Addr linked = co_await ctx.load(my + 8);
      if (linked != 0) {
        co_await ctx.store(linked + 0, 0);
        co_return;
      }
    }
  }
  co_await ctx.store(next + 0, 0);  // hand off
}

// ---------------------------------------------------------------------------
// CLHLock
// ---------------------------------------------------------------------------
//
// Node layout: one word per node; 1 = holder/waiter still active ("locked"),
// 0 = released. `tail_` holds the simulated address of the latest node.

CLHLock::CLHLock(Machine& m) : machine_(m), tail_(m.heap().alloc_line()) {
  // Sentinel node, initially released.
  const Addr sentinel = m.heap().alloc_line();
  m.memory().write(sentinel, 0);
  m.memory().write(tail_, sentinel);
}

CLHLock::PerThread& CLHLock::slot(Ctx& ctx) {
  auto it = per_thread_.find(ctx.core());
  if (it == per_thread_.end()) {
    PerThread pt;
    pt.my_node = machine_.heap().alloc_line();
    pt.my_pred = 0;
    it = per_thread_.emplace(ctx.core(), pt).first;
  }
  return it->second;
}

Task<void> CLHLock::lock(Ctx& ctx) {
  PerThread& pt = slot(ctx);
  co_await ctx.store(pt.my_node, 1);  // mark: I am waiting/holding
  const Addr pred = co_await ctx.xchg(tail_, pt.my_node);
  pt.my_pred = pred;
  // Spin on the predecessor's flag only: handoff is a single line transfer.
  while (co_await ctx.load(pred) != 0) {
  }
  ++ctx.stats().lock_acquisitions;
}

Task<void> CLHLock::unlock(Ctx& ctx) {
  PerThread& pt = slot(ctx);
  co_await ctx.store(pt.my_node, 0);
  // Classic CLH node recycling: adopt the predecessor's node for next time.
  pt.my_node = pt.my_pred;
  pt.my_pred = 0;
}

}  // namespace lrsim
