// Copyright (c) 2026 lrsim authors. MIT license.
//
// Cohort ticket lock: a two-level hierarchical lock in the style of the
// paper's Figure 3 baseline ("optimized hierarchical ticket locks [8]") and
// its Section 2 discussion of lock cohorting [10].
//
// Cores are grouped into clusters (think NUMA nodes / mesh quadrants). Each
// cluster has a local ticket lock; a global ticket lock arbitrates between
// clusters. A releasing holder hands the lock to a local waiter (keeping
// the global lock in-cluster) up to `max_batch` consecutive times before
// releasing the global lock, which bounds unfairness while making most
// handoffs cluster-local.
//
// The paper claims "Leases do not change the lock ownership pattern, and
// should hence be compatible with cohorting" — `use_lease` leases the
// cluster's now-serving line for the critical section so the in-cluster
// handoff store is an L1 hit, letting tests verify exactly that claim.
#pragma once

#include <unordered_map>
#include <vector>

#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "util/types.hpp"

namespace lrsim {

struct CohortOptions {
  int cluster_size = 8;  ///< Cores per cluster.
  int max_batch = 16;    ///< In-cluster handoffs before the global lock rotates.
  bool use_lease = false;
  Cycle lease_time = 0;  ///< 0 => policy-chosen (static: MAX_LEASE_TIME).
};

class CohortTicketLock {
 public:
  CohortTicketLock(Machine& m, CohortOptions opt = {});

  Task<void> lock(Ctx& ctx);
  Task<void> unlock(Ctx& ctx);

  int num_clusters() const noexcept { return static_cast<int>(clusters_.size()); }

 private:
  /// Per-cluster state; every word on its own line.
  struct Cluster {
    Addr next;        ///< Local ticket dispenser.
    Addr serving;     ///< Local now-serving (the leased line).
    Addr batch;       ///< Consecutive in-cluster handoffs (holder-only).
    Addr has_global;  ///< 1 while this cluster holds the global lock (holder-only).
  };

  std::size_t cluster_of(CoreId c) const {
    return static_cast<std::size_t>(c / opt_.cluster_size) % clusters_.size();
  }

  Machine& m_;
  CohortOptions opt_;
  Addr global_next_;
  Addr global_serving_;
  std::vector<Cluster> clusters_;
  std::unordered_map<CoreId, std::uint64_t> held_ticket_;  // register state
};

}  // namespace lrsim
