// Copyright (c) 2026 lrsim authors. MIT license.
//
// Sense-reversing centralized barrier over the simulated ISA — the standard
// primitive for level-synchronous graph kernels (the CRONO-style apps the
// paper's Figure 5 draws from are built on these).
#pragma once

#include <unordered_map>

#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "util/types.hpp"

namespace lrsim {

class SenseBarrier {
 public:
  /// A barrier for exactly `participants` threads.
  SenseBarrier(Machine& m, int participants)
      : participants_(participants), count_(m.heap().alloc_line()), sense_(m.heap().alloc_line()) {
    m.memory().write(count_, 0);
    m.memory().write(sense_, 0);
  }

  /// Blocks (in simulated time) until all participants arrive.
  Task<void> wait(Ctx& ctx) {
    // Thread-local sense lives in a host map (a real thread keeps it in a
    // register / TLS).
    std::uint64_t& my_sense = sense_of_[ctx.core()];
    my_sense ^= 1;
    const std::uint64_t arrived = co_await ctx.faa(count_, 1);
    if (arrived + 1 == static_cast<std::uint64_t>(participants_)) {
      // Last arrival: reset and release everyone.
      co_await ctx.store(count_, 0);
      co_await ctx.store(sense_, my_sense);
    } else {
      while (co_await ctx.load(sense_) != my_sense) {
      }
    }
  }

 private:
  int participants_;
  Addr count_;
  Addr sense_;
  std::unordered_map<CoreId, std::uint64_t> sense_of_;
};

}  // namespace lrsim
