// Copyright (c) 2026 lrsim authors. MIT license.
//
// Minimal command-line flag parsing for bench/example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name`. Unknown flags are an error so typos in experiment scripts
// fail loudly instead of silently running the wrong configuration.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace lrsim {

/// Registry of typed command-line flags. Usage:
///
///   FlagSet flags("fig2_stack");
///   int threads = 64;
///   flags.add("threads", &threads, "max thread count in the sweep");
///   flags.parse(argc, argv);
class FlagSet {
 public:
  explicit FlagSet(std::string program) : program_(std::move(program)) {}

  void add(std::string name, bool* target, std::string help) {
    insert(std::move(name),
           Entry{.display = {},
                 .help = std::move(help),
                 .is_bool = true,
                 .set = [target](std::string_view v) {
                   if (v == "true" || v == "1" || v.empty()) {
                     *target = true;
                   } else if (v == "false" || v == "0") {
                     *target = false;
                   } else {
                     throw std::invalid_argument("expected bool, got '" +
                                                 std::string(v) + "'");
                   }
                 },
                 .show = [target] { return std::string(*target ? "true" : "false"); }});
  }

  void add(std::string name, std::string* target, std::string help) {
    insert(std::move(name),
           Entry{.display = {},
                 .help = std::move(help),
                 .is_bool = false,
                 .set = [target](std::string_view v) { *target = std::string(v); },
                 .show = [target] { return *target; }});
  }

  template <typename Int>
    requires std::is_integral_v<Int> && (!std::is_same_v<Int, bool>)
  void add(std::string name, Int* target, std::string help) {
    Entry e{.display = {},
            .help = std::move(help),
            .is_bool = false,
            .set =
                [target, name](std::string_view v) {
                  std::int64_t out = 0;
                  std::size_t pos = 0;
                  out = std::stoll(std::string(v), &pos, 0);
                  if (pos != v.size())
                    throw std::invalid_argument("bad integer for --" + name);
                  *target = static_cast<Int>(out);
                },
            .show = [target] { return std::to_string(*target); }};
    insert(std::move(name), std::move(e));
  }

  void add(std::string name, double* target, std::string help) {
    insert(std::move(name),
           Entry{.display = {},
                 .help = std::move(help),
                 .is_bool = false,
                 .set = [target](std::string_view v) { *target = std::stod(std::string(v)); },
                 .show = [target] {
                   std::ostringstream os;
                   os << *target;
                   return os.str();
                 }});
  }

  /// Parses argv. Exits (by throwing FlagHelp) on --help.
  /// Throws std::invalid_argument on unknown flags or bad values.
  void parse(int argc, char** argv) {
    std::vector<std::string_view> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
      std::string_view arg = args[i];
      if (arg == "--help" || arg == "-h") throw FlagHelp{usage()};
      if (!arg.starts_with("--"))
        throw std::invalid_argument("unexpected positional argument: " + std::string(arg));
      arg.remove_prefix(2);
      std::string_view value;
      bool has_value = false;
      if (auto eq = arg.find('='); eq != std::string_view::npos) {
        value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
        has_value = true;
      }
      std::string name(arg);
      bool negated = false;
      auto it = entries_.find(canonical(name));
      if (it == entries_.end() && (name.starts_with("no-") || name.starts_with("no_"))) {
        auto sit = entries_.find(canonical(name.substr(3)));
        if (sit != entries_.end() && sit->second.is_bool) {
          it = sit;
          negated = true;
        }
      }
      if (it == entries_.end()) throw std::invalid_argument("unknown flag --" + name + "\n" + usage());
      Entry& e = it->second;
      if (negated) {
        e.set("false");
        continue;
      }
      if (!has_value && !e.is_bool) {
        if (i + 1 >= args.size())
          throw std::invalid_argument("flag --" + name + " requires a value");
        value = args[++i];
        has_value = true;
      }
      e.set(has_value ? value : std::string_view{});
    }
  }

  /// Thrown when --help is requested; carries the usage text.
  struct FlagHelp {
    std::string text;
  };

  std::string usage() const {
    std::ostringstream os;
    os << "usage: " << program_ << " [flags]\n";
    for (const auto& [name, e] : entries_) {
      os << "  --" << e.display << " (default " << e.show() << ")\n      " << e.help << "\n";
    }
    return os.str();
  }

 private:
  struct Entry {
    std::string display;  ///< Spelling shown in --help (as registered).
    std::string help;
    bool is_bool = false;
    std::function<void(std::string_view)> set;
    std::function<std::string()> show;
  };

  /// Dash and underscore spellings are full aliases in *both* directions
  /// (--sim-threads == --sim_threads, --csv_dir == --csv-dir), regardless
  /// of which spelling a flag was registered under: entries are keyed by
  /// the underscore canonical form and lookups canonicalize the query.
  static std::string canonical(std::string name) {
    std::replace(name.begin(), name.end(), '-', '_');
    return name;
  }

  void insert(std::string name, Entry e) {
    e.display = name;
    entries_[canonical(std::move(name))] = std::move(e);
  }

  std::string program_;
  std::map<std::string, Entry> entries_;
};

}  // namespace lrsim
