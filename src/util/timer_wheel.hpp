// Copyright (c) 2026 lrsim authors. MIT license.
//
// Hierarchical timer wheel for open-loop arrival scheduling
// (docs/WORKLOADS.md, "Scaling to huge client counts").
//
// The open-loop workload driver keys every simulated client by its next
// arrival cycle. A linear scan over the per-core client list makes each
// served op O(clients/core); this wheel makes it O(1) amortized, so 10^5+
// clients per core are cheap (bench/sim_microbench.cpp BM_OpenLoopClients).
//
// Layout: kLevels levels of kSlots = 64 buckets each. Level l has a slot
// granularity of 2^(6l) cycles, so level 0 resolves single cycles and the
// levels together cover the full 64-bit cycle horizon. An entry lives at
// the level of the highest bit in which its deadline differs from the
// wheel's cursor `now()`; as the cursor advances past a higher-level
// bucket's base, the bucket *cascades* — its entries re-file into lower
// levels — so every entry reaches level 0 exactly when it is due. Each
// entry cascades at most kLevels-1 times, giving O(1) amortized insert +
// pop. Non-empty slots are tracked in one occupancy bitmask per level, so
// finding the next populated slot is a single countr_zero.
//
// Buckets are intrusive doubly-linked FIFOs threaded through a pooled slab
// indexed by the caller's dense ids — no per-entry allocation, O(1)
// remove(id) mid-bucket, and ~24 bytes per entry.
//
// Determinism contract: pop() returns entries ordered by (deadline, id) —
// ties on the same cycle break toward the *ascending id*, regardless of
// insertion order. The open-loop driver relies on this to serve clients in
// exactly the order of the reference linear scan (lowest client id wins a
// tie), so sweep CSVs and fig tables stay byte-identical at any client
// count. Same-cycle entries are batched through a min-heap on id; an
// insert at the cycle currently being drained joins the live batch, again
// exactly matching the reference scan.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace lrsim {

class TimerWheel {
 public:
  /// Dense caller-chosen entry ids; the slab is indexed by them directly,
  /// so ids should be small integers (e.g. per-core client slots).
  using Id = std::uint32_t;

  explicit TimerWheel(Cycle start = 0) noexcept : now_(start) {}

  /// Pre-sizes the slab for ids in [0, n) (inserts auto-grow regardless).
  void reserve(std::size_t n) {
    nodes_.reserve(n);
    due_.reserve(n);
  }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  /// The wheel cursor: the deadline of the most recent pop. Inserts must
  /// not be in its past (arrival timelines only move forward).
  Cycle now() const noexcept { return now_; }

  /// True iff `id` is currently scheduled.
  bool pending(Id id) const noexcept {
    return id < nodes_.size() && nodes_[id].state != State::kFree;
  }

  /// Schedules `id` at cycle `when` (>= now()). `id` must not be pending.
  void insert(Id id, Cycle when) {
    if (when < now_) throw std::logic_error("TimerWheel::insert into the past");
    if (id >= nodes_.size()) nodes_.resize(static_cast<std::size_t>(id) + 1);
    Node& n = nodes_[id];
    if (n.state != State::kFree) throw std::logic_error("TimerWheel::insert of a pending id");
    n.when = when;
    if (due_live_ > 0 && when == now_) {
      // The cycle being drained: join the live same-cycle batch so the id
      // competes with the not-yet-served ties (reference-scan semantics).
      n.state = State::kDue;
      due_.push_back(id);
      std::push_heap(due_.begin(), due_.end(), std::greater<Id>{});
      ++due_live_;
    } else {
      link(level_of(when), id);
    }
    ++size_;
  }

  /// Unschedules a pending `id` (O(1) for filed entries; same-cycle batch
  /// members are lazily skipped by pop).
  void remove(Id id) {
    if (!pending(id)) throw std::logic_error("TimerWheel::remove of a non-pending id");
    Node& n = nodes_[id];
    if (n.state == State::kListed) {
      unlink(id);
    } else {  // State::kDue — stale heap entry is skipped when popped
      n.state = State::kFree;
      --due_live_;
      if (due_live_ == 0) due_.clear();
    }
    --size_;
  }

  /// Pops the earliest entry as (deadline, id); same-cycle ties come out in
  /// ascending id order. Advances now() to the returned deadline.
  std::pair<Cycle, Id> pop() {
    if (size_ == 0) throw std::logic_error("TimerWheel::pop from an empty wheel");
    if (due_live_ == 0) advance();
    for (;;) {
      std::pop_heap(due_.begin(), due_.end(), std::greater<Id>{});
      const Id id = due_.back();
      due_.pop_back();
      if (nodes_[id].state != State::kDue) continue;  // lazily removed
      nodes_[id].state = State::kFree;
      --due_live_;
      if (due_live_ == 0) due_.clear();  // drop any remaining stale ids
      --size_;
      return {now_, id};
    }
  }

 private:
  static constexpr int kSlotBits = 6;
  static constexpr std::uint32_t kSlots = 1u << kSlotBits;
  static constexpr std::uint32_t kSlotMask = kSlots - 1;
  static constexpr int kLevels = (64 + kSlotBits - 1) / kSlotBits;  // 11
  static constexpr Id kNil = ~Id{0};

  enum class State : std::uint8_t { kFree, kListed, kDue };

  struct Node {
    Cycle when = 0;
    Id prev = kNil;
    Id next = kNil;
    State state = State::kFree;
  };

  struct Bucket {
    Id head = kNil;
    Id tail = kNil;
  };

  /// The level whose slot field holds the highest bit in which `when`
  /// differs from the cursor (level 0 when equal).
  int level_of(Cycle when) const noexcept {
    const Cycle diff = when ^ now_;
    if (diff == 0) return 0;
    return (std::bit_width(diff) - 1) / kSlotBits;
  }

  std::uint32_t slot_of(int level, Cycle when) const noexcept {
    return static_cast<std::uint32_t>(when >> (level * kSlotBits)) & kSlotMask;
  }

  Bucket& bucket(int level, std::uint32_t slot) noexcept {
    return buckets_[static_cast<std::size_t>(level) * kSlots + slot];
  }

  /// Appends `id` to its bucket's FIFO (insertion order preserved so
  /// cascades re-file entries deterministically).
  void link(int level, Id id) {
    const std::uint32_t slot = slot_of(level, nodes_[id].when);
    Bucket& b = bucket(level, slot);
    Node& n = nodes_[id];
    n.state = State::kListed;
    n.next = kNil;
    n.prev = b.tail;
    if (b.tail == kNil) {
      b.head = id;
      occupied_[level] |= 1ull << slot;
    } else {
      nodes_[b.tail].next = id;
    }
    b.tail = id;
  }

  void unlink(Id id) {
    Node& n = nodes_[id];
    const int level = level_of(n.when);
    const std::uint32_t slot = slot_of(level, n.when);
    Bucket& b = bucket(level, slot);
    if (n.prev != kNil) nodes_[n.prev].next = n.next; else b.head = n.next;
    if (n.next != kNil) nodes_[n.next].prev = n.prev; else b.tail = n.prev;
    if (b.head == kNil) occupied_[level] &= ~(1ull << slot);
    n.prev = n.next = kNil;
    n.state = State::kFree;
  }

  /// First occupied slot of `level` at or after `from`, or kSlots. `from`
  /// may be kSlots (a caller stepped past slot 63): the window is empty.
  std::uint32_t next_slot(int level, std::uint32_t from) const noexcept {
    if (from >= kSlots) return kSlots;
    const std::uint64_t mask = occupied_[level] & (~0ull << from);
    return mask == 0 ? kSlots : static_cast<std::uint32_t>(std::countr_zero(mask));
  }

  /// Detaches the whole FIFO of (level, slot) and returns its head.
  Id detach(int level, std::uint32_t slot) noexcept {
    Bucket& b = bucket(level, slot);
    const Id head = b.head;
    b.head = b.tail = kNil;
    occupied_[level] &= ~(1ull << slot);
    return head;
  }

  /// Moves the cursor to the earliest filed deadline and loads every entry
  /// on that exact cycle into the same-cycle batch (min-heap on id).
  void advance() {
    for (;;) {
      // Level 0 holds exact cycles within the cursor's current 64-cycle
      // window; the first occupied slot (the cursor's own slot included —
      // an insert at now() files there while no batch is live) is the
      // global minimum.
      const std::uint32_t s0 = next_slot(0, slot_of(0, now_));
      if (s0 != kSlots) {
        now_ = (now_ & ~static_cast<Cycle>(kSlotMask)) | s0;
        for (Id id = detach(0, s0); id != kNil;) {
          Node& n = nodes_[id];
          const Id next = n.next;
          n.prev = n.next = kNil;
          n.state = State::kDue;
          due_.push_back(id);
          ++due_live_;
          id = next;
        }
        std::make_heap(due_.begin(), due_.end(), std::greater<Id>{});
        return;
      }
      // Nothing left in this window: cascade the nearest future bucket of
      // the lowest non-empty level. Jumping the cursor to that bucket's
      // base is safe — every deadline below it has already been consumed —
      // and re-filing its FIFO lands every entry at a strictly lower level.
      bool cascaded = false;
      for (int l = 1; l < kLevels && !cascaded; ++l) {
        const std::uint32_t cur = slot_of(l, now_);
        const std::uint32_t s = next_slot(l, cur + 1);
        if (s == kSlots) continue;
        const int shift = l * kSlotBits;
        const Cycle above = shift + kSlotBits >= 64
                                ? 0
                                : (now_ >> (shift + kSlotBits)) << (shift + kSlotBits);
        now_ = above | (static_cast<Cycle>(s) << shift);
        for (Id id = detach(l, s); id != kNil;) {
          const Id next = nodes_[id].next;
          link(level_of(nodes_[id].when), id);
          id = next;
        }
        cascaded = true;
      }
      if (!cascaded) throw std::logic_error("TimerWheel: corrupt occupancy (size > 0, no slot)");
    }
  }

  Cycle now_;
  std::size_t size_ = 0;
  std::vector<Node> nodes_;                       ///< Slab, indexed by id.
  std::vector<Bucket> buckets_ =
      std::vector<Bucket>(static_cast<std::size_t>(kLevels) * kSlots);
  std::uint64_t occupied_[kLevels] = {};          ///< Non-empty-slot bitmasks.
  std::vector<Id> due_;      ///< Same-cycle batch: min-heap on id (+ stale ids).
  std::size_t due_live_ = 0;  ///< Live entries in due_ (stales excluded).
};

}  // namespace lrsim
