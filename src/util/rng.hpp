// Copyright (c) 2026 lrsim authors. MIT license.
//
// Deterministic pseudo-random number generation.
//
// Simulation runs must be bit-reproducible across hosts, so we ship our own
// xoshiro256** implementation instead of relying on std::mt19937_64's
// distribution functions (std::uniform_int_distribution is not portable
// across standard libraries).
#pragma once

#include <array>
#include <cstdint>

namespace lrsim {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
/// seeded via splitmix64. Passes BigCrush; plenty for workload generation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). `bound` must be nonzero.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    unsigned __int128 m = static_cast<unsigned __int128>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability `p` in [0, 1].
  bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  static std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace lrsim
