// Copyright (c) 2026 lrsim authors. MIT license.
//
// Fundamental scalar types shared by every lrsim module.
#pragma once

#include <cstdint>

namespace lrsim {

/// Simulated time, in core cycles. The whole machine shares one clock domain
/// (Table 1 of the paper: 1 GHz in-order cores), so a cycle is also 1 ns.
using Cycle = std::uint64_t;

/// A simulated *byte* address. All memory operations in lrsim act on
/// naturally aligned 64-bit words, so the low three bits of any address
/// passed to a memory op must be zero.
using Addr = std::uint64_t;

/// A cache-line index: `Addr >> kLineBits`.
using LineId = std::uint64_t;

/// Identifies a core / hardware thread (the paper pins one thread per core).
using CoreId = int;

inline constexpr int kLineBits = 6;                  ///< 64-byte lines (Table 1).
inline constexpr int kLineSize = 1 << kLineBits;     ///< Bytes per cache line.
inline constexpr int kWordsPerLine = kLineSize / 8;  ///< 64-bit words per line.

/// The line containing byte address `a`.
constexpr LineId line_of(Addr a) noexcept { return a >> kLineBits; }

/// First byte address of line `l`.
constexpr Addr line_base(LineId l) noexcept { return static_cast<Addr>(l) << kLineBits; }

/// Offset (in 64-bit words) of `a` within its line.
constexpr int word_in_line(Addr a) noexcept {
  return static_cast<int>((a & (kLineSize - 1)) >> 3);
}

/// True iff `a` is a valid word address (8-byte aligned).
constexpr bool is_word_aligned(Addr a) noexcept { return (a & 7u) == 0; }

}  // namespace lrsim
