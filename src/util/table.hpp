// Copyright (c) 2026 lrsim authors. MIT license.
//
// Fixed-width console tables and CSV emission for the benchmark harness.
// Every figure/table bench prints a human-readable table (paper-style series)
// and optionally writes the same rows to a CSV file for plotting.
#pragma once

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

namespace lrsim {

/// A printable cell: integer, floating point, or text.
using Cell = std::variant<std::int64_t, std::uint64_t, double, std::string>;

/// Accumulates rows and renders them as an aligned console table and/or CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  Table& add_row(std::vector<Cell> row) {
    rows_.push_back(std::move(row));
    return *this;
  }

  /// Renders with column alignment. Doubles use `precision` significant
  /// digits of fixed notation (throughput numbers read better that way).
  void print(std::ostream& os = std::cout, int precision = 3) const {
    std::vector<std::vector<std::string>> text;
    text.reserve(rows_.size());
    for (const auto& row : rows_) {
      std::vector<std::string> cells;
      cells.reserve(row.size());
      for (const auto& c : row) cells.push_back(render(c, precision));
      text.push_back(std::move(cells));
    }
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
    for (const auto& row : text)
      for (std::size_t i = 0; i < row.size() && i < width.size(); ++i)
        width[i] = std::max(width[i], row[i].size());

    auto rule = [&] {
      for (std::size_t i = 0; i < headers_.size(); ++i)
        os << std::string(width[i] + 2, '-') << (i + 1 < headers_.size() ? "+" : "");
      os << '\n';
    };
    for (std::size_t i = 0; i < headers_.size(); ++i)
      os << ' ' << std::setw(static_cast<int>(width[i])) << headers_[i] << ' '
         << (i + 1 < headers_.size() ? "|" : "");
    os << '\n';
    rule();
    for (const auto& row : text) {
      for (std::size_t i = 0; i < headers_.size(); ++i)
        os << ' ' << std::setw(static_cast<int>(width[i])) << (i < row.size() ? row[i] : "") << ' '
           << (i + 1 < headers_.size() ? "|" : "");
      os << '\n';
    }
  }

  /// Streams headers + rows as CSV (used by the sweep driver, which writes
  /// to stdout or a file, and by tests capturing into a string).
  void write_csv(std::ostream& os, int precision = 6) const {
    for (std::size_t i = 0; i < headers_.size(); ++i)
      os << headers_[i] << (i + 1 < headers_.size() ? "," : "\n");
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size(); ++i)
        os << render(row[i], precision) << (i + 1 < row.size() ? "," : "\n");
    }
  }

  /// Writes headers + rows as CSV. Returns false if the file could not be
  /// opened (the caller decides whether that is fatal).
  bool write_csv(const std::string& path, int precision = 6) const {
    std::ofstream f(path);
    if (!f) return false;
    write_csv(f, precision);
    return true;
  }

  std::size_t num_rows() const { return rows_.size(); }

 private:
  static std::string render(const Cell& c, int precision) {
    std::ostringstream os;
    std::visit(
        [&](const auto& v) {
          using V = std::decay_t<decltype(v)>;
          if constexpr (std::is_same_v<V, double>) {
            os << std::fixed << std::setprecision(precision) << v;
          } else {
            os << v;
          }
        },
        c);
    return os.str();
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace lrsim
