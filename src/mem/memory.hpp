// Copyright (c) 2026 lrsim authors. MIT license.
//
// Backing store for the simulated physical address space.
//
// Values live at 64-bit word granularity in sparse line-sized blocks.
// Functional state is kept separate from the timing model (coherence/):
// caches track *states*, not data copies — with a single global event order
// and per-line transaction serialization, the directory's view of the
// memory value is always well-defined, so keeping one canonical copy is
// both simpler and sufficient.
//
// The line blocks live in a FlatLineMap (coherence/dir_table.hpp): every
// simulated load/store lands here, and the open-addressing probe + chunked
// block storage is markedly cheaper than the node-based unordered_map it
// replaced (docs/ENGINE.md "Flat directory tables" — same rationale).
//
// Parallel-kernel contract: during a worker phase (sim/par_guard.hpp) only
// in-place reads and writes of *existing* cells are allowed — they are
// SWMR-protected by the coherence protocol itself (an M-state owner holds
// the only cached copy). Map *growth* is confined to serial contexts: the
// controller materializes a cell at install time (ensure), and a first-touch
// insert from a worker aborts loudly rather than racing the rehash.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>

#include "coherence/dir_table.hpp"
#include "sim/par_guard.hpp"
#include "util/types.hpp"

namespace lrsim {

/// Sparse simulated physical memory.
class SimMemory {
 public:
  /// Reads the 64-bit word at `a` (must be 8-byte aligned). Unwritten
  /// memory reads as zero, like freshly mapped pages.
  std::uint64_t read(Addr a) const {
    assert(is_word_aligned(a));
    const Cell* c = lines_.find(line_of(a));
    if (c == nullptr) return 0;
    return c->words[static_cast<std::size_t>(word_in_line(a))];
  }

  /// Writes the 64-bit word at `a`.
  void write(Addr a, std::uint64_t v) {
    assert(is_word_aligned(a));
    const LineId l = line_of(a);
    Cell* c = lines_.find(l);
    if (c == nullptr) {
      if (par::in_worker_phase()) par::unsafe_in_worker("SimMemory first-touch insert");
      c = &lines_[l];
    }
    c->written = true;
    c->words[static_cast<std::size_t>(word_in_line(a))] = v;
  }

  /// Materializes the backing cell for `l` without marking it written.
  /// Called from serial contexts (L1 install) so that later stores — which
  /// may run inside a parallel worker phase — mutate in place. Unobservable
  /// to the cost model: an unwritten cell reads as zero and does not count
  /// as resident.
  void ensure(LineId l) {
    assert(!par::in_worker_phase());
    lines_[l];
  }

  /// True if the line has ever been written (used by the DRAM first-touch
  /// cost model in the directory).
  bool line_exists(LineId l) const {
    const Cell* c = lines_.find(l);
    return c != nullptr && c->written;
  }

  std::size_t resident_lines() const {
    std::size_t n = 0;
    lines_.for_each_value([&n](const Cell& c) { n += c.written ? 1 : 0; });
    return n;
  }

 private:
  struct Cell {
    std::array<std::uint64_t, kWordsPerLine> words{};
    bool written = false;  ///< Distinguishes ensure()'d cells from real stores.
  };
  FlatLineMap<Cell> lines_;
};

}  // namespace lrsim
