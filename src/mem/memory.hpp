// Copyright (c) 2026 lrsim authors. MIT license.
//
// Backing store for the simulated physical address space.
//
// Values live at 64-bit word granularity in sparse line-sized blocks.
// Functional state is kept separate from the timing model (coherence/):
// caches track *states*, not data copies — with a single global event order
// and per-line transaction serialization, the directory's view of the
// memory value is always well-defined, so keeping one canonical copy is
// both simpler and sufficient.
//
// Two storage domains, mirroring SimHeap (mem/heap.hpp):
//
//  * The *global* region lives in a FlatLineMap (coherence/dir_table.hpp):
//    open-addressing probe + chunked block storage, markedly cheaper than
//    the node-based unordered_map it replaced (docs/ENGINE.md "Flat
//    directory tables"). Map *growth* (rehash) is confined to serial
//    contexts; a first-touch insert from a worker aborts loudly.
//  * *Per-core arena* lines (addresses >= kArenaBase) live in fixed-depth
//    per-arena chunk tables: a preallocated directory of atomic chunk
//    pointers, each chunk a dense slab of cells indexed by line offset.
//    First-touch there only installs a chunk pointer — nothing else moves —
//    and each arena has a single first-touch writer (its owning core, or a
//    serial context), so arena first-touch is legal inside a parallel
//    worker phase. This is what lets per-op-allocating workloads (Treiber
//    push, MS-queue enqueue, BST node init) run under --sim-threads.
//
// Parallel-kernel contract (sim/par_guard.hpp): during a worker phase,
// in-place reads and writes of existing cells are SWMR-protected by the
// coherence protocol itself (an M-state owner holds the only cached copy).
// Arena chunk installation is release-published by the single writer and
// acquire-consumed by readers; concurrent readers of *other* cells in the
// same chunk never observe a moving table.
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "coherence/dir_table.hpp"
#include "mem/heap.hpp"
#include "sim/par_guard.hpp"
#include "util/types.hpp"

namespace lrsim {

/// Sparse simulated physical memory.
class SimMemory {
 public:
  /// Mirrors SimHeap::configure_arenas: routes lines in each core's arena
  /// address range to that arena's chunk table. Called by Machine's
  /// constructor, before any simulated accesses.
  void configure_arenas(int num_cores) {
    assert(num_cores >= 1);
    arenas_ = std::vector<ArenaStore>(static_cast<std::size_t>(num_cores));
  }

  /// Reads the 64-bit word at `a` (must be 8-byte aligned). Unwritten
  /// memory reads as zero, like freshly mapped pages.
  std::uint64_t read(Addr a) const {
    assert(is_word_aligned(a));
    const Cell* c = find_cell(line_of(a));
    if (c == nullptr) return 0;
    return c->words[static_cast<std::size_t>(word_in_line(a))];
  }

  /// Writes the 64-bit word at `a`.
  void write(Addr a, std::uint64_t v) {
    assert(is_word_aligned(a));
    Cell* c = touch_cell(line_of(a), "SimMemory first-touch insert");
    c->written = true;
    c->words[static_cast<std::size_t>(word_in_line(a))] = v;
  }

  /// Materializes the backing cell for `l` without marking it written.
  /// Called from serial contexts (L1 install) so that later stores — which
  /// may run inside a parallel worker phase — mutate in place. Unobservable
  /// to the cost model: an unwritten cell reads as zero and does not count
  /// as resident.
  void ensure(LineId l) {
    assert(!par::in_worker_phase());
    touch_cell(l, "SimMemory::ensure");
  }

  /// True if the line has ever been written (used by the DRAM first-touch
  /// cost model in the directory).
  bool line_exists(LineId l) const {
    const Cell* c = find_cell(l);
    return c != nullptr && c->written;
  }

  std::size_t resident_lines() const {
    std::size_t n = 0;
    lines_.for_each_value([&n](const Cell& c) { n += c.written ? 1 : 0; });
    for (const ArenaStore& ar : arenas_) {
      for (const auto& chunk : ar.chunks) {
        const Chunk* ch = chunk.load(std::memory_order_acquire);
        if (ch == nullptr) continue;
        for (const Cell& c : *ch) n += c.written ? 1 : 0;
      }
    }
    return n;
  }

 private:
  struct Cell {
    std::array<std::uint64_t, kWordsPerLine> words{};
    bool written = false;  ///< Distinguishes ensure()'d cells from real stores.
  };

  /// Chunk geometry: each arena spans kArenaStride bytes = 2^20 lines,
  /// split into fixed-size chunks so the chunk directory itself never
  /// grows (preallocated, no rehash to race with).
  static constexpr int kChunkLineShift = 10;  ///< 1024 lines per chunk.
  static constexpr std::size_t kChunkLines = std::size_t{1} << kChunkLineShift;
  static constexpr std::size_t kChunksPerArena =
      static_cast<std::size_t>(kArenaStride / kLineSize) / kChunkLines;
  using Chunk = std::array<Cell, kChunkLines>;

  struct ArenaStore {
    std::array<std::atomic<Chunk*>, kChunksPerArena> chunks{};
    ArenaStore() = default;
    ArenaStore(ArenaStore&& o) noexcept {
      for (std::size_t i = 0; i < kChunksPerArena; ++i) {
        chunks[i].store(o.chunks[i].exchange(nullptr, std::memory_order_relaxed),
                        std::memory_order_relaxed);
      }
    }
    ArenaStore(const ArenaStore&) = delete;
    ~ArenaStore() {
      for (auto& c : chunks) delete c.load(std::memory_order_relaxed);
    }
  };

  /// Arena index for a line, or -1 when it belongs to the global region.
  int arena_index(LineId l) const noexcept {
    const Addr a = line_base(l);
    if (a < kArenaBase || arenas_.empty()) return -1;
    const Addr idx = (a - kArenaBase) / kArenaStride;
    return idx < arenas_.size() ? static_cast<int>(idx) : -1;
  }

  const Cell* find_cell(LineId l) const {
    const int ar = arena_index(l);
    if (ar < 0) return lines_.find(l);
    const std::size_t off = arena_line_offset(l, ar);
    const Chunk* ch =
        arenas_[static_cast<std::size_t>(ar)].chunks[off >> kChunkLineShift].load(
            std::memory_order_acquire);
    if (ch == nullptr) return nullptr;
    return &(*ch)[off & (kChunkLines - 1)];
  }

  Cell* touch_cell(LineId l, const char* what) {
    const int ar = arena_index(l);
    if (ar < 0) {
      Cell* c = lines_.find(l);
      if (c == nullptr) {
        // Global-region growth rehashes a shared table: serial contexts only.
        if (par::in_worker_phase()) par::unsafe_in_worker(what);
        c = &lines_[l];
      }
      return c;
    }
    const std::size_t off = arena_line_offset(l, ar);
    std::atomic<Chunk*>& slot =
        arenas_[static_cast<std::size_t>(ar)].chunks[off >> kChunkLineShift];
    Chunk* ch = slot.load(std::memory_order_acquire);
    if (ch == nullptr) {
      // Single-writer first touch: inside a worker phase only the arena's
      // owning core may install chunks (its allocations are the only way a
      // fresh line in its arena is reached); serial contexts may always.
      if (par::in_worker_phase() && par::current_core() != ar) par::unsafe_in_worker(what);
      ch = new Chunk();
      slot.store(ch, std::memory_order_release);
    }
    return &(*ch)[off & (kChunkLines - 1)];
  }

  std::size_t arena_line_offset(LineId l, int ar) const noexcept {
    const Addr lo = kArenaBase + static_cast<Addr>(ar) * kArenaStride;
    return static_cast<std::size_t>((line_base(l) - lo) / kLineSize);
  }

  FlatLineMap<Cell> lines_;        ///< Global-region cells.
  std::vector<ArenaStore> arenas_;  ///< Per-core arena chunk tables.
};

}  // namespace lrsim
