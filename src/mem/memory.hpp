// Copyright (c) 2026 lrsim authors. MIT license.
//
// Backing store for the simulated physical address space.
//
// Values live at 64-bit word granularity in sparse line-sized blocks.
// Functional state is kept separate from the timing model (coherence/):
// caches track *states*, not data copies — with a single global event order
// and per-line transaction serialization, the directory's view of the
// memory value is always well-defined, so keeping one canonical copy is
// both simpler and sufficient.
//
// The line blocks live in a FlatLineMap (coherence/dir_table.hpp): every
// simulated load/store lands here, and the open-addressing probe + chunked
// block storage is markedly cheaper than the node-based unordered_map it
// replaced (docs/ENGINE.md "Flat directory tables" — same rationale).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>

#include "coherence/dir_table.hpp"
#include "util/types.hpp"

namespace lrsim {

/// Sparse simulated physical memory.
class SimMemory {
 public:
  /// Reads the 64-bit word at `a` (must be 8-byte aligned). Unwritten
  /// memory reads as zero, like freshly mapped pages.
  std::uint64_t read(Addr a) const {
    assert(is_word_aligned(a));
    const Block* b = lines_.find(line_of(a));
    if (b == nullptr) return 0;
    return (*b)[static_cast<std::size_t>(word_in_line(a))];
  }

  /// Writes the 64-bit word at `a`.
  void write(Addr a, std::uint64_t v) {
    assert(is_word_aligned(a));
    lines_[line_of(a)][static_cast<std::size_t>(word_in_line(a))] = v;
  }

  /// True if the line has ever been written (used by the DRAM first-touch
  /// cost model in the directory).
  bool line_exists(LineId l) const { return lines_.find(l) != nullptr; }

  std::size_t resident_lines() const { return lines_.size(); }

 private:
  using Block = std::array<std::uint64_t, kWordsPerLine>;
  FlatLineMap<Block> lines_;
};

}  // namespace lrsim
