// Copyright (c) 2026 lrsim authors. MIT license.
//
// Backing store for the simulated physical address space.
//
// Values live at 64-bit word granularity in sparse line-sized blocks.
// Functional state is kept separate from the timing model (coherence/):
// caches track *states*, not data copies — with a single global event order
// and per-line transaction serialization, the directory's view of the
// memory value is always well-defined, so keeping one canonical copy is
// both simpler and sufficient.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <unordered_map>

#include "util/types.hpp"

namespace lrsim {

/// Sparse simulated physical memory.
class SimMemory {
 public:
  /// Reads the 64-bit word at `a` (must be 8-byte aligned). Unwritten
  /// memory reads as zero, like freshly mapped pages.
  std::uint64_t read(Addr a) const {
    assert(is_word_aligned(a));
    auto it = lines_.find(line_of(a));
    if (it == lines_.end()) return 0;
    return it->second[static_cast<std::size_t>(word_in_line(a))];
  }

  /// Writes the 64-bit word at `a`.
  void write(Addr a, std::uint64_t v) {
    assert(is_word_aligned(a));
    lines_[line_of(a)][static_cast<std::size_t>(word_in_line(a))] = v;
  }

  /// True if the line has ever been written (used by the DRAM first-touch
  /// cost model in the directory).
  bool line_exists(LineId l) const { return lines_.contains(l); }

  std::size_t resident_lines() const { return lines_.size(); }

 private:
  std::unordered_map<LineId, std::array<std::uint64_t, kWordsPerLine>> lines_;
};

}  // namespace lrsim
