// Copyright (c) 2026 lrsim authors. MIT license.
//
// A simulated-address-space allocator for workload data structures.
//
// Data-structure nodes live in simulated memory so that every pointer chase
// generates modeled coherence traffic. The allocator supports cache-line
// alignment on demand: the paper (Section 7, "Observations and Limitations")
// calls out false sharing between leased variables as a real hazard, so
// contended variables (stack heads, queue sentinels, locks) are allocated
// one-per-line by default, while bulk payloads can pack densely.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/par_guard.hpp"
#include "util/types.hpp"

namespace lrsim {

/// Bump allocator over the simulated address space with a per-size free
/// list. There is no simulated-memory pressure to manage (SimMemory is
/// sparse), so freeing simply recycles blocks to bound the address range
/// touched by long runs.
class SimHeap {
 public:
  /// `base` keeps simulated addresses away from 0 so that a 0 value can be
  /// used as a null simulated pointer by workloads.
  explicit SimHeap(Addr base = 0x10000) : next_(align_up(base, kLineSize)) {
    assert(base > 0);
  }

  /// Allocates `bytes` (rounded up to 8) with the given alignment
  /// (power of two, >= 8). Returns the simulated byte address.
  Addr alloc(std::size_t bytes, std::size_t align = 8) {
    // Not parallel-phase safe: the bump pointer and free lists are shared
    // across cores, and host-thread allocation order would leak into
    // simulated addresses (sim/par_guard.hpp). Workloads that allocate per
    // operation (Treiber push, MS-queue enqueue) must run serially.
    if (par::in_worker_phase()) par::unsafe_in_worker("SimHeap::alloc");
    assert(align >= 8 && (align & (align - 1)) == 0);
    bytes = align_up(bytes, 8);
    if (align == kLineSize) {
      // Line-aligned blocks are the common contended-object case; recycle
      // them from a dedicated free list keyed by line count.
      const std::size_t lines = align_up(bytes, kLineSize) / kLineSize;
      if (lines < line_free_.size() && !line_free_[lines].empty()) {
        Addr a = line_free_[lines].back();
        line_free_[lines].pop_back();
        return a;
      }
      next_ = align_up(next_, kLineSize);
      Addr a = next_;
      next_ += lines * kLineSize;
      return a;
    }
    next_ = align_up(next_, align);
    Addr a = next_;
    next_ += bytes;
    return a;
  }

  /// Allocates one object alone on its own cache line(s): the right choice
  /// for any word that will be leased or contended.
  Addr alloc_line(std::size_t bytes = 8) { return alloc(align_up(bytes, kLineSize), kLineSize); }

  /// Returns a line-aligned block to the free list. Only blocks obtained
  /// from alloc_line / alloc(..., kLineSize) may be freed.
  void free_line(Addr a, std::size_t bytes = 8) {
    if (par::in_worker_phase()) par::unsafe_in_worker("SimHeap::free_line");
    assert((a & (kLineSize - 1)) == 0);
    const std::size_t lines = align_up(align_up(bytes, 8), kLineSize) / kLineSize;
    if (lines >= line_free_.size()) line_free_.resize(lines + 1);
    line_free_[lines].push_back(a);
  }

  /// Highest simulated address handed out so far (exclusive).
  Addr high_water() const noexcept { return next_; }

 private:
  static constexpr std::size_t align_up(std::size_t x, std::size_t a) noexcept {
    return (x + a - 1) & ~(a - 1);
  }

  Addr next_;
  std::vector<std::vector<Addr>> line_free_;
};

}  // namespace lrsim
