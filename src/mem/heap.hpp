// Copyright (c) 2026 lrsim authors. MIT license.
//
// A simulated-address-space allocator for workload data structures.
//
// Data-structure nodes live in simulated memory so that every pointer chase
// generates modeled coherence traffic. The allocator supports cache-line
// alignment on demand: the paper (Section 7, "Observations and Limitations")
// calls out false sharing between leased variables as a real hazard, so
// contended variables (stack heads, queue sentinels, locks) are allocated
// one-per-line by default, while bulk payloads can pack densely.
//
// Two allocation domains:
//
//  * The *global* region [base, kArenaBase) serves construction-time
//    allocations (sentinels, bucket arrays, lock words) made outside any
//    per-core context. It is a single shared bump pointer and therefore
//    illegal inside a parallel worker phase.
//  * *Per-core arenas* at kArenaBase + core * kArenaStride serve
//    per-operation allocations (Treiber push, MS-queue enqueue) via
//    alloc_on/alloc_line_on. Each arena has its own bump pointer and free
//    lists, touched only by events of its owning core, so addresses are a
//    pure function of that core's operation sequence — identical whether
//    the run is serial or parallel. This is what makes per-op-allocating
//    workloads eligible for `--sim-threads` (docs/ENGINE.md).
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/par_guard.hpp"
#include "util/types.hpp"

namespace lrsim {

/// First simulated address owned by per-core arenas. The global bump region
/// lives below; hitting this boundary from the global side is a hard error.
inline constexpr Addr kArenaBase = Addr{1} << 32;

/// Byte span of each core's arena (64 MiB: a kMaxCores = 256 machine fills
/// [2^32, 2^32 + 2^34), still far below any global-region address).
inline constexpr Addr kArenaStride = Addr{1} << 26;

/// Bump allocator over the simulated address space with per-size free
/// lists. There is no simulated-memory pressure to manage (SimMemory is
/// sparse), so freeing simply recycles blocks to bound the address range
/// touched by long runs.
class SimHeap {
 public:
  /// `base` keeps simulated addresses away from 0 so that a 0 value can be
  /// used as a null simulated pointer by workloads.
  explicit SimHeap(Addr base = 0x10000) : global_{align_up(base, kLineSize), kArenaBase} {
    assert(base > 0 && base < kArenaBase);
  }

  /// Carves one arena per simulated core. Called by Machine's constructor;
  /// idempotent per machine (re-configuring resets nothing that was used).
  void configure_arenas(int num_cores) {
    assert(num_cores >= 1);
    arenas_.clear();
    arenas_.reserve(static_cast<std::size_t>(num_cores));
    for (int c = 0; c < num_cores; ++c) {
      const Addr lo = kArenaBase + static_cast<Addr>(c) * kArenaStride;
      arenas_.push_back(Region{lo, lo + kArenaStride});
    }
  }

  /// Allocates `bytes` (rounded up to 8) from the global region with the
  /// given alignment (power of two, >= 8). Returns the simulated address.
  /// Construction-time only: the global bump pointer is shared across
  /// cores, so worker-phase use would leak host scheduling into simulated
  /// addresses (sim/par_guard.hpp). Per-operation call sites use alloc_on.
  Addr alloc(std::size_t bytes, std::size_t align = 8) {
    if (par::in_worker_phase()) par::unsafe_in_worker("SimHeap::alloc (global region)");
    return global_.alloc(bytes, align, /*check_limit=*/!arenas_.empty());
  }

  /// Allocates one object alone on its own cache line(s) from the global
  /// region: the right choice for any word that will be leased or contended.
  Addr alloc_line(std::size_t bytes = 8) { return alloc(align_up(bytes, kLineSize), kLineSize); }

  /// Returns a global-region line-aligned block to its free list. Only
  /// blocks obtained from alloc_line / alloc(..., kLineSize) may be freed.
  void free_line(Addr a, std::size_t bytes = 8) {
    if (par::in_worker_phase()) par::unsafe_in_worker("SimHeap::free_line (global region)");
    global_.free_line(a, bytes);
  }

  /// Per-operation allocation from `core`'s arena. Legal inside a parallel
  /// worker phase when the executing worker owns `core`'s events — the
  /// arena is part of that core's partition, and its bump order is the
  /// core's own operation order regardless of host scheduling.
  Addr alloc_on(CoreId core, std::size_t bytes, std::size_t align = 8) {
    return arena_for(core, "SimHeap::alloc_on").alloc(bytes, align, /*check_limit=*/true);
  }

  /// Line-isolated per-operation allocation from `core`'s arena.
  Addr alloc_line_on(CoreId core, std::size_t bytes = 8) {
    return alloc_on(core, align_up(bytes, kLineSize), kLineSize);
  }

  /// Returns a line-aligned block to `core`'s arena free list. The address
  /// must have come from alloc_line_on(core, ...) — cross-arena frees would
  /// make recycling order depend on inter-core interleaving.
  void free_line_on(CoreId core, Addr a, std::size_t bytes = 8) {
    Region& r = arena_for(core, "SimHeap::free_line_on");
    assert(a >= r.lo_watermark && a < r.limit && "freed block is not from this core's arena");
    r.free_line(a, bytes);
  }

  /// Owning core of an arena address, or -1 for global-region addresses.
  CoreId arena_of(Addr a) const noexcept {
    if (a < kArenaBase || arenas_.empty()) return -1;
    const Addr idx = (a - kArenaBase) / kArenaStride;
    return idx < arenas_.size() ? static_cast<CoreId>(idx) : -1;
  }

  /// Highest global-region simulated address handed out so far (exclusive).
  Addr high_water() const noexcept { return global_.next; }

  /// Highest address handed out from `core`'s arena so far (exclusive).
  Addr arena_high_water(CoreId core) const {
    assert(core >= 0 && static_cast<std::size_t>(core) < arenas_.size());
    return arenas_[static_cast<std::size_t>(core)].next;
  }

 private:
  static constexpr std::size_t align_up(std::size_t x, std::size_t a) noexcept {
    return (x + a - 1) & ~(a - 1);
  }

  /// One bump region (the global region or a single core arena).
  struct Region {
    Region(Addr lo, Addr lim) : next(lo), lo_watermark(lo), limit(lim) {}

    Addr alloc(std::size_t bytes, std::size_t align, bool check_limit) {
      assert(align >= 8 && (align & (align - 1)) == 0);
      bytes = align_up(bytes, 8);
      if (align == kLineSize) {
        // Line-aligned blocks are the common contended-object case;
        // recycle them from a dedicated free list keyed by line count.
        const std::size_t lines = align_up(bytes, kLineSize) / kLineSize;
        if (lines < line_free.size() && !line_free[lines].empty()) {
          Addr a = line_free[lines].back();
          line_free[lines].pop_back();
          return a;
        }
        next = align_up(next, kLineSize);
        Addr a = next;
        next += lines * kLineSize;
        check(check_limit);
        return a;
      }
      next = align_up(next, align);
      Addr a = next;
      next += bytes;
      check(check_limit);
      return a;
    }

    void free_line(Addr a, std::size_t bytes) {
      assert((a & (kLineSize - 1)) == 0);
      const std::size_t lines = align_up(align_up(bytes, 8), kLineSize) / kLineSize;
      if (lines >= line_free.size()) line_free.resize(lines + 1);
      line_free[lines].push_back(a);
    }

    void check(bool check_limit) const {
      if (check_limit && next > limit) {
        std::fprintf(stderr,
                     "lrsim: SimHeap region [0x%llx, 0x%llx) exhausted "
                     "(bump reached 0x%llx)\n",
                     static_cast<unsigned long long>(lo_watermark),
                     static_cast<unsigned long long>(limit),
                     static_cast<unsigned long long>(next));
        std::abort();
      }
    }

    Addr next;
    Addr lo_watermark;  ///< Region start, for free_line_on range checks.
    Addr limit;         ///< Exclusive upper bound (kArenaBase for global).
    std::vector<std::vector<Addr>> line_free;
  };

  Region& arena_for(CoreId core, const char* what) {
    assert(core >= 0 && "per-core allocation requires a core context");
    if (arenas_.empty() || static_cast<std::size_t>(core) >= arenas_.size()) {
      std::fprintf(stderr, "lrsim: %s core %d has no configured arena\n", what,
                   static_cast<int>(core));
      std::abort();
    }
    // Inside a worker phase the only legal arena is the executing core's
    // own: anything else would interleave two cores' bump pointers in
    // host-scheduling order.
    if (par::in_worker_phase() && par::current_core() != core) par::unsafe_in_worker(what);
    return arenas_[static_cast<std::size_t>(core)];
  }

  Region global_;
  std::vector<Region> arenas_;
};

}  // namespace lrsim
