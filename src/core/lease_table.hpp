// Copyright (c) 2026 lrsim authors. MIT license.
//
// The Lease/Release engine (the paper's primary contribution).
//
// One LeaseTable sits in each core's L1 controller. It implements the
// semantics of Algorithm 1 (single-line Lease/Release) and the hardware side
// of Algorithm 2 (MultiLease groups):
//
//  * at most MAX_NUM_LEASES entries; a new single lease past the bound
//    FIFO-evicts (auto-releases) the oldest lease;
//  * no lease extension: a Lease on an already-leased line is a no-op
//    (footnote 1 of the paper — extension would break the MAX_LEASE_TIME
//    bound);
//  * each started lease expires after min(time, MAX_LEASE_TIME) cycles —
//    an *involuntary* release;
//  * an incoming coherence probe for a leased line is parked in the entry
//    and serviced on release; by Proposition 1 (per-line FIFO service at
//    the directory) at most one probe can ever be parked per line, which
//    this class asserts;
//  * group (MultiLease) entries share one timer that starts only when every
//    line of the group has been granted; during the acquisition phase,
//    probes for already-granted group lines are parked (the deadlock-freedom
//    argument of Proposition 3 relies on the globally sorted acquisition
//    order, which CacheController::cpu_multi_lease enforces);
//  * optional priority mode (Section 5 "Prioritization"): a probe on behalf
//    of a *regular* request breaks the lease instead of parking.
//
// Timers are cancellable events rather than per-cycle counters — this is
// semantically identical to Algorithm 1's CLOCK-TICK decrement loop and
// costs O(1) per lease.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "coherence/callbacks.hpp"
#include "coherence/config.hpp"
#include "core/release_kind.hpp"
#include "obs/observability.hpp"
#include "sim/event_queue.hpp"
#include "sim/invariants.hpp"
#include "sim/stats.hpp"
#include "util/types.hpp"

namespace lrsim {

class LeaseTable {
 public:
  /// `core` identifies the owning core (or -1 for standalone unit-test
  /// tables): it labels observability spans and domain-tags the expiry
  /// timers for the parallel kernel — a timer callback touches only this
  /// table and its core's L1.
  LeaseTable(EventQueue& ev, Stats& stats, const MachineConfig& cfg, CoreId core = -1)
      : ev_(ev), stats_(stats), cfg_(cfg), core_(core) {}

  LeaseTable(const LeaseTable&) = delete;
  LeaseTable& operator=(const LeaseTable&) = delete;

  /// Begins tracking a lease on `line` for `duration` cycles (clamped to
  /// MAX_LEASE_TIME). The lease is *not started* until on_granted(line) —
  /// exclusive ownership — arrives. If the table is full, the oldest lease
  /// is FIFO-evicted first (Algorithm 1 line 7).
  ///
  /// Returns false (no-op) if the line is already leased: leases cannot be
  /// extended.
  bool add(LineId line, Cycle duration, bool in_group = false) {
    if (find(line) != nullptr) return false;
    if (static_cast<int>(entries_.size()) >= cfg_.max_num_leases) {
      // FIFO eviction of the oldest lease (Algorithm 1 line 7). A group
      // member must take the whole group with it (MultiRelease semantics —
      // evicting one line alone would leave a partial group that still
      // reports group_complete()), exactly as force_release does.
      if (entries_.front().in_group) {
        release_all_group(ReleaseKind::kEvicted);
      } else {
        remove(entries_.front().line, ReleaseKind::kEvicted);
      }
    }
    Entry e;
    e.line = line;
    e.duration = std::min(duration, cfg_.max_lease_time);
    e.in_group = in_group;
    entries_.push_back(std::move(e));
    ++stats_.leases_taken;
    if (obs_ != nullptr) {
      obs_->on_lease_taken(line);
      obs_->on_lease_effective(entries_.back().duration);
    }
    if (inv_ != nullptr) inv_->on_line_event(line);
    return true;
  }

  /// The controller obtained the line in Exclusive/Modified state. Starts
  /// the countdown for single leases; group leases start jointly via
  /// start_group() once the whole group is granted.
  void on_granted(LineId line) {
    Entry* e = find(line);
    if (e == nullptr || e->granted) return;
    e->granted = true;
    if (!e->in_group) start_timer(*e);
    if (inv_ != nullptr) inv_->on_line_event(line);
  }

  /// True when every entry of the current group has been granted.
  bool group_complete() const {
    bool any = false;
    for (const Entry& e : entries_) {
      if (!e.in_group) continue;
      any = true;
      if (!e.granted) return false;
    }
    return any;
  }

  /// Starts the (joint) countdown of all group entries. All counters are
  /// "allocated and started" together, as in Section 5's implementation
  /// sketch.
  void start_group() {
    for (Entry& e : entries_) {
      if (e.in_group && e.granted && !e.started) start_timer(e);
    }
  }

  /// Voluntary release of one line. Returns true if the entry still existed
  /// (i.e. the release really was voluntary); false means the lease had
  /// already expired / been evicted — the involuntary-release signal used by
  /// the cheap-snapshot idiom.
  ///
  /// For a group entry this releases the *entire* group (MultiRelease
  /// semantics: "a release on any address in the group causes all the other
  /// leases to be canceled").
  bool release(LineId line) {
    Entry* e = find(line);
    if (e == nullptr) return false;
    if (e->in_group) {
      release_all_group();
      return true;
    }
    remove(line, ReleaseKind::kVoluntary);
    return true;
  }

  /// Releases every lease (ReleaseAll of Algorithm 2). Per the pseudocode,
  /// this first deletes all entries, then services outstanding probes.
  void release_all() {
    std::vector<Entry> doomed;
    doomed.swap(entries_);
    for (Entry& e : doomed) retire(e, ReleaseKind::kVoluntary);
    for (Entry& e : doomed) service_parked(e);
    if (inv_ != nullptr) {
      for (Entry& e : doomed) inv_->on_line_event(e.line);
    }
  }

  /// Called by the L1 controller when a coherence probe arrives for `line`.
  /// If the line is leased (or mid-group-acquisition), moves `service` into
  /// the entry and returns true; the probe runs at release/expiry. Returns
  /// false — `service` is consumed ONLY on true, so on false the caller's
  /// fixed-capacity ParkedFn is still intact and can be run immediately
  /// (the common no-park path stays allocation-free). This covers the
  /// priority-mode case where a regular request breaks the lease.
  bool maybe_park_probe(LineId line, bool requestor_is_lease, ParkedFn&& service) {
    Entry* e = find(line);
    if (e == nullptr || !e->granted) return false;
    if (cfg_.lease_priority_mode && !requestor_is_lease) {
      // Section 5 "Prioritization": the regular request automatically breaks
      // the lease. Group entries drop the whole group, mirroring release().
      if (e->in_group) {
        release_all_group(ReleaseKind::kBroken);
      } else {
        remove(line, ReleaseKind::kBroken);
      }
      return false;
    }
    // Proposition 1: directory FIFO service per line means at most one
    // probe can be outstanding at this core for this line.
    assert(!e->parked_probe && "second probe parked for one line (violates Proposition 1)");
    e->parked_probe = std::move(service);
    e->parked_at = ev_.now();
    ++stats_.probes_queued;
    if (obs_ != nullptr) obs_->on_probe_parked(line);
    return true;
  }

  /// NACK-mode query (Section 5 protocol-correctness discussion): returns
  /// true if a probe for `line` is currently blocked by a granted lease.
  /// Applies the priority-break policy exactly like maybe_park_probe, but
  /// never parks — the caller NACKs and retries instead.
  bool blocks_probe(LineId line, bool requestor_is_lease) {
    Entry* e = find(line);
    if (e == nullptr || !e->granted) return false;
    if (cfg_.lease_priority_mode && !requestor_is_lease) {
      if (e->in_group) {
        release_all_group(ReleaseKind::kBroken);
      } else {
        remove(line, ReleaseKind::kBroken);
      }
      return false;
    }
    return true;
  }

  /// Futility predictor (Section 5 "Speculative Execution"): true when the
  /// line's recent leases keep expiring involuntarily and further leases
  /// should be skipped. A voluntary release rehabilitates the line.
  bool predicts_futile(LineId line) const {
    if (!cfg_.lease_predictor) return false;
    auto it = futility_.find(line);
    return it != futility_.end() && it->second >= cfg_.predictor_threshold;
  }

  /// Lines currently tracked by the futility predictor (bounded by
  /// MachineConfig::predictor_map_capacity; tests pin the bound down).
  std::size_t futility_tracked() const noexcept { return futility_.size(); }

  /// Resolves a "policy-chosen" lease duration (a Lease instruction carrying
  /// duration 0) for `line`. Static policy: MAX_LEASE_TIME, exactly the
  /// legacy default. Adaptive policy: the line's AIMD-controlled duration
  /// (cold lines start at min_lease_time), always clamped to
  /// [min_lease_time, max_lease_time] so the invariant checker's
  /// lease-bound rule is preserved by construction.
  Cycle policy_duration(LineId line) const {
    if (cfg_.lease_policy != LeasePolicy::kAdaptive) return cfg_.max_lease_time;
    const auto it = adapt_.find(line);
    const Cycle cur = it == adapt_.end() ? cfg_.min_lease_time : it->second.cur;
    return std::min(cfg_.max_lease_time, std::max(cfg_.min_lease_time, cur));
  }

  /// Lines currently tracked by the adaptive controller (bounded by
  /// MachineConfig::lease_ctrl_capacity; tests pin the bound down).
  std::size_t adapt_tracked() const noexcept { return adapt_.size(); }

  /// Forcibly releases a lease (controller uses this when an L1 set fills
  /// with pinned lines and a victim is needed).
  void force_release(LineId line) {
    if (Entry* e = find(line)) {
      if (e->in_group) {
        release_all_group(ReleaseKind::kEvicted);
      } else {
        remove(line, ReleaseKind::kEvicted);
      }
    }
  }

  bool has(LineId line) const { return find(line) != nullptr; }

  /// A granted lease pins its line in the L1 (it must stay in M state for
  /// the duration; see CacheController victim selection).
  bool pins(LineId line) const {
    const Entry* e = find(line);
    return e != nullptr && e->granted;
  }

  int size() const { return static_cast<int>(entries_.size()); }

  bool has_group() const {
    for (const Entry& e : entries_)
      if (e.in_group) return true;
    return false;
  }

  /// Read-only projection of one table entry, for the invariant checker.
  struct LeaseView {
    LineId line;
    Cycle duration;
    bool in_group;
    bool granted;
    bool started;
    Cycle deadline;
    bool probe_parked;
    Cycle parked_at;
  };

  /// Visits every entry as a LeaseView (invariant checker / diagnostics).
  template <typename F>
  void for_each(F&& f) const {
    for (const Entry& e : entries_) {
      f(LeaseView{e.line, e.duration, e.in_group, e.granted, e.started, e.deadline,
                  static_cast<bool>(e.parked_probe), e.parked_at});
    }
  }

  /// Wires the opt-in invariant checker (null = off).
  void set_invariants(InvariantChecker* inv) { inv_ = inv; }

  /// Wires the opt-in observability sink (null = off). `core` labels the
  /// spans this table emits (the table itself is core-agnostic).
  void set_observer(Observability* obs, CoreId core) {
    obs_ = obs;
    core_ = core;
  }

 private:
  struct Entry {
    LineId line = 0;
    Cycle duration = 0;
    bool in_group = false;
    bool granted = false;  ///< Exclusive ownership obtained ("transition to lease" done).
    bool started = false;  ///< Countdown running.
    Cycle started_at = 0;  ///< Countdown start cycle (started only).
    Cycle deadline = 0;    ///< now + duration at countdown start (started only).
    EventHandle timer;
    ParkedFn parked_probe;
    Cycle parked_at = 0;
  };

  const Entry* find(LineId line) const {
    for (const Entry& e : entries_)
      if (e.line == line) return &e;
    return nullptr;
  }
  Entry* find(LineId line) { return const_cast<Entry*>(static_cast<const LeaseTable*>(this)->find(line)); }

  void start_timer(Entry& e) {
    e.started = true;
    e.started_at = ev_.now();
    e.deadline = ev_.now() + e.duration;
    const LineId line = e.line;
    // Core-domain when owned by a controller: expiry mutates this table and
    // the core's L1 only (a serviced parked probe schedules its directory
    // continuation as a separate, global-tagged event).
    const EventQueue::Domain d =
        core_ >= 0 ? static_cast<EventQueue::Domain>(core_) : EventQueue::kGlobalDomain;
    e.timer = ev_.schedule_in_on(d, e.duration,
                                 [this, line] { remove(line, ReleaseKind::kInvoluntary); });
  }

  /// Removes the entry for `line`, accounts the release, and services any
  /// parked probe.
  void remove(LineId line, ReleaseKind kind) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->line != line) continue;
      Entry e = std::move(*it);
      entries_.erase(it);
      retire(e, kind);
      service_parked(e);
      if (inv_ != nullptr) inv_->on_line_event(line);
      return;
    }
  }

  /// Group-wide removal: delete all group entries first, then service their
  /// probes (two-phase, as in Algorithm 2's ReleaseAll).
  void release_all_group(ReleaseKind kind = ReleaseKind::kVoluntary) {
    std::vector<Entry> doomed;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->in_group) {
        doomed.push_back(std::move(*it));
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    for (Entry& e : doomed) retire(e, kind);
    for (Entry& e : doomed) service_parked(e);
    if (inv_ != nullptr) {
      for (Entry& e : doomed) inv_->on_line_event(e.line);
    }
  }

  void retire(Entry& e, ReleaseKind kind) {
    e.timer.cancel();
    switch (kind) {
      case ReleaseKind::kVoluntary:
        ++stats_.releases_voluntary;
        // Rehabilitated: dropping the entry (rather than zeroing it) keeps
        // the predictor map holding only lines with a live failure streak.
        if (cfg_.lease_predictor) futility_.erase(e.line);
        // Only started leases carry a meaningful hold time (group members
        // released mid-acquisition have no countdown to learn from).
        if (cfg_.lease_policy == LeasePolicy::kAdaptive && e.started)
          adapt_voluntary(e, ev_.now() - e.started_at);
        break;
      case ReleaseKind::kInvoluntary:
        ++stats_.releases_involuntary;
        if (cfg_.lease_predictor) note_futile(e.line);
        if (cfg_.lease_policy == LeasePolicy::kAdaptive) adapt_involuntary(e);
        break;
      case ReleaseKind::kEvicted:
        ++stats_.releases_evicted;
        break;
      case ReleaseKind::kBroken:
        ++stats_.releases_broken;
        break;
    }
    if (obs_ != nullptr) {
      obs_->on_lease_end(core_, e.line, e.started_at, ev_.now(), kind, e.started);
    }
  }

  /// Bumps the line's involuntary-release streak, keeping the predictor map
  /// within MachineConfig::predictor_map_capacity lines. Real hardware would
  /// back the predictor with a fixed SRAM table; an unbounded host map both
  /// misrepresents that and grows without limit on address-sweeping
  /// workloads. Overflow evicts the oldest-tracked line (FIFO by first
  /// insertion, tracked in futility_order_; entries already erased by
  /// rehabilitation are skipped).
  void note_futile(LineId line) {
    auto [it, fresh] = futility_.try_emplace(line, 0);
    ++it->second;
    if (!fresh) return;
    futility_order_.push_back(line);
    const auto cap = static_cast<std::size_t>(std::max(cfg_.predictor_map_capacity, 1));
    while (futility_.size() > cap) {
      // Stale fronts (rehabilitated lines) are popped without effect.
      const LineId victim = futility_order_.front();
      futility_order_.pop_front();
      if (victim != line) futility_.erase(victim);
    }
    // The order deque can accumulate stale entries for rehabilitated lines;
    // compact once it clearly outgrows the live map.
    if (futility_order_.size() > 2 * cap + 16) {
      std::deque<LineId> live;
      for (LineId l : futility_order_) {
        if (futility_.count(l) != 0) live.push_back(l);
      }
      futility_order_.swap(live);
    }
  }

  /// Per-line AIMD lease-duration control (ROADMAP "Adaptive lease
  /// policies"). `cur` is the duration policy_duration() hands to the next
  /// policy-chosen lease on the line; `hold_env` is a decaying envelope of
  /// observed hold times (lease start -> voluntary release) that floors the
  /// decay so a line never shrinks below what its critical sections
  /// actually need. All state is per-core-private and mutated only inside
  /// core-domain events, so the parallel kernel stays bit-identical.
  struct AdaptState {
    Cycle cur = 0;       ///< Current policy-chosen duration for the line.
    Cycle hold_env = 0;  ///< Decaying max of observed voluntary hold times.
    int vol_streak = 0;  ///< Consecutive voluntary releases since last expiry.
  };

  /// Finds-or-creates the line's controller state, seeding a fresh line
  /// from the duration its lease actually ran with, and enforcing the
  /// fixed-SRAM capacity with the same FIFO discipline as note_futile.
  /// Unlike the futility map, entries only ever leave by eviction, so the
  /// order deque never holds stale lines and needs no compaction.
  AdaptState& adapt_touch(LineId line, Cycle seed) {
    auto [it, fresh] = adapt_.try_emplace(line);
    if (fresh) {
      it->second.cur = std::min(cfg_.max_lease_time, std::max(cfg_.min_lease_time, seed));
      adapt_order_.push_back(line);
      const auto cap = static_cast<std::size_t>(std::max(cfg_.lease_ctrl_capacity, 1));
      while (adapt_.size() > cap) {
        const LineId victim = adapt_order_.front();
        adapt_order_.pop_front();
        if (victim != line) adapt_.erase(victim);
      }
    }
    return it->second;
  }

  /// Multiplicative increase on involuntary expiry: the lease was too short
  /// for the line's current contention window, so jump toward (and remember)
  /// the hold-time envelope — doubling, but at least lease_grow_step, capped
  /// at MAX_LEASE_TIME.
  void adapt_involuntary(const Entry& e) {
    AdaptState& st = adapt_touch(e.line, e.duration);
    st.vol_streak = 0;
    st.hold_env = std::max(st.hold_env, e.duration);
    const Cycle grown =
        std::min(cfg_.max_lease_time, std::max(st.cur + cfg_.lease_grow_step, st.cur * 2));
    if (grown != st.cur) {
      st.cur = grown;
      ++stats_.lease_adapt_grow;
    }
  }

  /// Additive decrease on sustained voluntary release: after
  /// lease_shrink_streak clean releases in a row, step the duration down by
  /// lease_shrink_step — but never below 1.25x the decayed hold-time
  /// envelope (headroom for jitter) or min_lease_time.
  void adapt_voluntary(const Entry& e, Cycle held) {
    AdaptState& st = adapt_touch(e.line, e.duration);
    st.hold_env = std::max(held, st.hold_env - st.hold_env / 8);
    if (++st.vol_streak < std::max(cfg_.lease_shrink_streak, 1)) return;
    st.vol_streak = 0;
    const Cycle floor = std::min(cfg_.max_lease_time,
                                 std::max(cfg_.min_lease_time, st.hold_env + st.hold_env / 4));
    if (st.cur <= floor) return;
    st.cur = st.cur > floor + cfg_.lease_shrink_step ? st.cur - cfg_.lease_shrink_step : floor;
    ++stats_.lease_adapt_shrink;
  }

  void service_parked(Entry& e) {
    if (!e.parked_probe) return;
    stats_.probe_queued_cycles += ev_.now() - e.parked_at;
    if (obs_ != nullptr) obs_->on_probe_unparked(core_, e.line, e.parked_at, ev_.now());
    ParkedFn probe = std::move(e.parked_probe);  // move empties the entry
    probe();
  }

  EventQueue& ev_;
  Stats& stats_;
  const MachineConfig& cfg_;
  InvariantChecker* inv_ = nullptr;  ///< Opt-in checker (null = off).
  Observability* obs_ = nullptr;     ///< Opt-in observability sink (null = off).
  CoreId core_ = -1;                 ///< Core label for emitted spans.
  std::vector<Entry> entries_;  ///< Insertion order == FIFO age order.
  std::unordered_map<LineId, int> futility_;  ///< Consecutive involuntary releases per line.
  std::deque<LineId> futility_order_;  ///< First-insertion order; bounds futility_.
  std::unordered_map<LineId, AdaptState> adapt_;  ///< Per-line AIMD lease-duration state.
  std::deque<LineId> adapt_order_;     ///< First-insertion order; bounds adapt_.
};

}  // namespace lrsim
