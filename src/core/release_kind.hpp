// Copyright (c) 2026 lrsim authors. MIT license.
//
// ReleaseKind lives in its own header (rather than core/lease_table.hpp,
// its natural home) so the observability layer can name it without pulling
// in the whole lease engine: obs/observability.hpp is included *by*
// core/lease_table.hpp, which would otherwise be a cycle.
#pragma once

#include <cstdint>

namespace lrsim {

/// Why an entry left the lease table. Reported to stats and, for voluntary
/// vs. involuntary, to the program (the Release return value enables the
/// cheap-snapshot idiom of Section 5).
enum class ReleaseKind : std::uint8_t {
  kVoluntary,    ///< Release instruction before expiry.
  kInvoluntary,  ///< Timer reached zero.
  kEvicted,      ///< FIFO-evicted by a newer lease at MAX_NUM_LEASES.
  kBroken,       ///< Broken by a priority ("regular") request.
};

inline const char* release_kind_name(ReleaseKind k) {
  switch (k) {
    case ReleaseKind::kVoluntary: return "voluntary";
    case ReleaseKind::kInvoluntary: return "involuntary";
    case ReleaseKind::kEvicted: return "evicted";
    case ReleaseKind::kBroken: return "broken";
  }
  return "?";
}

}  // namespace lrsim
