// Copyright (c) 2026 lrsim authors. MIT license.
//
// Minimal INI/TOML-subset parser for workload configs (docs/WORKLOADS.md).
//
// Grammar (one declarative file drives a whole sweep):
//
//   # comment
//   [section]
//   key = value          # scalar
//   list = a, b, c       # comma-separated list
//
// Values are bare tokens or double-quoted strings; numbers are parsed on
// demand by the typed getters. Unknown keys are *caller*-checked: sections
// expose their key set so spec parsing can fail loudly on typos, the same
// contract FlagSet gives the command line.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace lrsim::workload {

class ConfigFile {
 public:
  /// Parses `text`; `origin` names the source in error messages.
  static ConfigFile parse_string(const std::string& text, const std::string& origin = "<string>") {
    ConfigFile cfg;
    cfg.origin_ = origin;
    std::istringstream in{text};
    std::string line;
    std::string section;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const std::string stripped = strip(strip_comment(line));
      if (stripped.empty()) continue;
      if (stripped.front() == '[') {
        if (stripped.back() != ']')
          throw std::invalid_argument(where(origin, lineno) + "unterminated section header");
        section = strip(stripped.substr(1, stripped.size() - 2));
        if (section.empty())
          throw std::invalid_argument(where(origin, lineno) + "empty section name");
        cfg.sections_[section];  // record even if empty
        continue;
      }
      const auto eq = stripped.find('=');
      if (eq == std::string::npos)
        throw std::invalid_argument(where(origin, lineno) + "expected `key = value`: " + stripped);
      const std::string key = strip(stripped.substr(0, eq));
      const std::string value = unquote(strip(stripped.substr(eq + 1)));
      if (key.empty())
        throw std::invalid_argument(where(origin, lineno) + "empty key");
      auto& sec = cfg.sections_[section];
      if (sec.count(key))
        throw std::invalid_argument(where(origin, lineno) + "duplicate key `" + key + "`");
      sec[key] = value;
    }
    return cfg;
  }

  static ConfigFile parse_file(const std::string& path) {
    std::ifstream f(path);
    if (!f) throw std::invalid_argument("cannot open config file: " + path);
    std::ostringstream text;
    text << f.rdbuf();
    return parse_string(text.str(), path);
  }

  bool has_section(const std::string& section) const { return sections_.count(section) != 0; }

  bool has(const std::string& section, const std::string& key) const {
    auto it = sections_.find(section);
    return it != sections_.end() && it->second.count(key) != 0;
  }

  /// Keys of one section, in sorted order — for unknown-key validation.
  std::vector<std::string> keys(const std::string& section) const {
    std::vector<std::string> out;
    auto it = sections_.find(section);
    if (it == sections_.end()) return out;
    for (const auto& [k, v] : it->second) out.push_back(k);
    return out;
  }

  std::string get(const std::string& section, const std::string& key,
                  const std::string& fallback = "") const {
    auto it = sections_.find(section);
    if (it == sections_.end()) return fallback;
    auto kv = it->second.find(key);
    return kv == it->second.end() ? fallback : kv->second;
  }

  std::int64_t get_int(const std::string& section, const std::string& key,
                       std::int64_t fallback) const {
    if (!has(section, key)) return fallback;
    const std::string v = get(section, key);
    std::size_t pos = 0;
    std::int64_t out = 0;
    try {
      out = std::stoll(v, &pos, 0);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != v.size()) throw bad_value(section, key, v, "an integer");
    return out;
  }

  double get_double(const std::string& section, const std::string& key, double fallback) const {
    if (!has(section, key)) return fallback;
    const std::string v = get(section, key);
    std::size_t pos = 0;
    double out = 0;
    try {
      out = std::stod(v, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != v.size()) throw bad_value(section, key, v, "a number");
    return out;
  }

  /// Comma-separated list; empty/missing key => empty vector.
  std::vector<std::string> get_list(const std::string& section, const std::string& key) const {
    std::vector<std::string> out;
    const std::string v = get(section, key);
    std::string item;
    std::istringstream in{v};
    while (std::getline(in, item, ',')) {
      const std::string s = strip(item);
      if (!s.empty()) out.push_back(s);
    }
    return out;
  }

  const std::string& origin() const noexcept { return origin_; }

 private:
  static std::string where(const std::string& origin, int lineno) {
    return origin + ":" + std::to_string(lineno) + ": ";
  }

  std::invalid_argument bad_value(const std::string& section, const std::string& key,
                                  const std::string& v, const char* expected) const {
    return std::invalid_argument(origin_ + ": [" + section + "] " + key + " = `" + v +
                                 "` is not " + expected);
  }

  /// Drops a `#` comment unless it sits inside double quotes.
  static std::string strip_comment(const std::string& line) {
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '"') quoted = !quoted;
      if (line[i] == '#' && !quoted) return line.substr(0, i);
    }
    return line;
  }

  static std::string strip(const std::string& s) {
    const auto b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos) return "";
    const auto e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
  }

  static std::string unquote(const std::string& s) {
    if (s.size() >= 2 && s.front() == '"' && s.back() == '"')
      return s.substr(1, s.size() - 2);
    return s;
  }

  std::string origin_;
  std::map<std::string, std::map<std::string, std::string>> sections_;
};

}  // namespace lrsim::workload
