// Copyright (c) 2026 lrsim authors. MIT license.
//
// WorkloadSpec: the declarative description one workload run executes —
// which registered data structure, which op mix, key distribution, arrival
// process, and how many simulated clients. Parsed from the [workload]
// section of a config file (docs/WORKLOADS.md) or assembled in code by the
// refactored fig benches; either path produces the identical run.
#pragma once

#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "coherence/config.hpp"
#include "workload/arrival.hpp"
#include "workload/config.hpp"
#include "workload/dist.hpp"

namespace lrsim::workload {

/// How the keyed-set op mix consumes PRNG draws (other structures accept
/// only kDraw). kDraw is the registry-native shape: one next_double()
/// picks update vs lookup, updates draw key then next_bool(0.5) for
/// insert-vs-remove. kDice reproduces the pre-registry tbl_lowcontention
/// loop draw for draw: key first, then a single next_below(10) dice picks
/// insert / remove / lookup — so the refactored bench replays the legacy
/// output byte-identically (mix must be a multiple of 0.1).
enum class MixShape { kDraw, kDice };

struct WorkloadSpec {
  std::string ds = "counter";  ///< Registered structure (registry.hpp).

  /// Open-loop client counts above this are refused: the per-core client
  /// tables and timer wheel handle millions comfortably, but a parse typo
  /// of 10^12 clients should fail loudly instead of eating the host.
  static constexpr int kMaxClients = 1 << 30;

  /// Fraction of "op A" in the two-op mix. Per structure, op A / op B are:
  /// counter: inc / —, treiber_stack: push / pop, ms_queue: enq / deq,
  /// skiplist_pq: insert / delete_min; the keyed sets (hashtable,
  /// harris_list, skiplist_set, bst): update / lookup, so mix is the
  /// update fraction. Single-op structures ignore it (and the driver draws
  /// nothing, preserving the legacy PRNG sequences).
  double mix = 0.5;

  MixShape mix_shape = MixShape::kDraw;  ///< Keyed sets: mix draw sequence.

  std::uint64_t key_range = 1 << 16;  ///< Keys in [0, key_range).
  DistSpec dist;                      ///< Key-access distribution.
  ArrivalSpec arrival;                ///< Closed loop by default.

  /// Simulated clients multiplexed onto the cores (round-robin by client
  /// id). 0 = one client per core. Closed-loop runs require exactly one
  /// client per core (the client *is* the thread); open-loop runs may
  /// multiplex arbitrarily many.
  int clients = 0;

  int ops = 100;         ///< Operations per client.
  Cycle think = 40;      ///< Closed loop: max random local work between ops.
  int prefill = -1;      ///< Elements inserted before timing; -1 = ds default.
  Cycle cs_work = 0;     ///< counter: extra cycles inside the critical section.
  std::uint64_t seed = 1;  ///< Per-client PRNG streams (open loop).

  /// hashtable only: bucket/stripe counts (0 = the structure's defaults).
  /// Powers of two, stripes <= buckets — checked when the workload builds.
  std::int64_t ht_buckets = 0;
  std::int64_t ht_stripes = 0;

  /// Lease-duration policy for the machine this workload runs on
  /// (coherence/config.hpp): static resolves policy-chosen leases to
  /// MAX_LEASE_TIME (the legacy default), adaptive engages the per-line
  /// AIMD controller. Applied to every policy variant of the workload
  /// (base variants simply never take leases).
  LeasePolicy lease_policy = LeasePolicy::kStatic;

  /// Lease-taking structures only: explicit per-op lease duration in
  /// cycles. 0 = policy-chosen (see lease_policy). Refused for structures
  /// without a lease_time knob.
  std::int64_t lease_time = 0;

  /// Structures with a CAS-backoff knob (treiber_stack, ms_queue) only:
  /// enable the bounded-exponential failed-CAS backoff, optionally
  /// overriding its window (0 = the structure's default window).
  bool use_backoff = false;
  std::int64_t backoff_min = 0;
  std::int64_t backoff_max = 0;

  void validate() const {
    if (!(mix >= 0.0 && mix <= 1.0)) throw std::invalid_argument("mix must be in [0, 1]");
    if (mix_shape == MixShape::kDice) {
      const double tenths = mix * 10.0;
      if (std::abs(tenths - std::llround(tenths)) > 1e-9)
        throw std::invalid_argument("mix_shape = dice needs mix in tenths (0.0, 0.1, ... 1.0)");
    }
    if (clients < 0) throw std::invalid_argument("clients must be >= 0");
    if (clients > kMaxClients)
      throw std::invalid_argument("clients must be <= 2^30 (is that a typo?)");
    if (ops < 0) throw std::invalid_argument("ops must be >= 0");
    if (ht_buckets < 0 || ht_stripes < 0)
      throw std::invalid_argument("ht_buckets/ht_stripes must be >= 0 (0 = ds default)");
    if (lease_time < 0) throw std::invalid_argument("lease_time must be >= 0 (0 = policy-chosen)");
    if (backoff_min < 0 || backoff_max < 0)
      throw std::invalid_argument("backoff_min/backoff_max must be >= 0 (0 = ds default)");
    if (backoff_min > 0 && backoff_max > 0 && backoff_min > backoff_max)
      throw std::invalid_argument("backoff_min must be <= backoff_max");
    arrival.validate();
  }
};

inline LeasePolicy parse_lease_policy(const std::string& name) {
  if (name == "static") return LeasePolicy::kStatic;
  if (name == "adaptive") return LeasePolicy::kAdaptive;
  throw std::invalid_argument("unknown lease_policy `" + name + "` (static, adaptive)");
}

/// Strict boolean for config keys (the TOML subset has no native bool).
inline bool parse_bool_key(const std::string& text, const std::string& key) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") return true;
  if (text == "false" || text == "0" || text == "no" || text == "off") return false;
  throw std::invalid_argument("bad " + key + " `" + text + "` (true/false)");
}

inline MixShape parse_mix_shape(const std::string& name) {
  if (name == "draw") return MixShape::kDraw;
  if (name == "dice") return MixShape::kDice;
  throw std::invalid_argument("unknown mix_shape `" + name + "` (draw, dice)");
}

/// Parses "a/b" (percent split, e.g. "90/10"), a bare fraction ("0.9"), or
/// a bare percentage ("90") into the op-A fraction.
inline double parse_mix(const std::string& text) {
  const auto slash = text.find('/');
  try {
    if (slash != std::string::npos) {
      const double a = std::stod(text.substr(0, slash));
      const double b = std::stod(text.substr(slash + 1));
      if (a < 0 || b < 0 || a + b <= 0) throw std::invalid_argument(text);
      return a / (a + b);
    }
    const double v = std::stod(text);
    if (v < 0) throw std::invalid_argument(text);
    return v > 1.0 ? v / 100.0 : v;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad mix `" + text + "` (want `90/10`, a fraction, or a percent)");
  }
}

/// Renders the mix for CSV axes, inverse of parse_mix ("90/10" style).
inline std::string mix_string(double frac) {
  std::ostringstream os;
  const double a = frac * 100.0;
  os << static_cast<std::int64_t>(a + 0.5) << "/" << static_cast<std::int64_t>(100.5 - a);
  return os.str();
}

inline DistKind parse_dist_kind(const std::string& name) {
  if (name == "uniform") return DistKind::kUniform;
  if (name == "zipf") return DistKind::kZipf;
  if (name == "hotspot") return DistKind::kHotspot;
  throw std::invalid_argument("unknown dist `" + name + "` (uniform, zipf, hotspot)");
}

inline ArrivalKind parse_arrival_kind(const std::string& name) {
  if (name == "closed") return ArrivalKind::kClosed;
  if (name == "fixed") return ArrivalKind::kFixed;
  if (name == "poisson") return ArrivalKind::kPoisson;
  throw std::invalid_argument("unknown arrival `" + name + "` (closed, fixed, poisson)");
}

/// Parses the [workload] section. Unknown keys fail loudly (typo guard,
/// same contract as FlagSet); `policies` is read by the sweep layer and
/// allowed here.
inline WorkloadSpec parse_workload_spec(const ConfigFile& cfg, const std::string& section = "workload") {
  static const std::vector<std::string> kKnown = {
      "ds",     "policies", "mix",        "mix_shape", "keys",    "dist",    "theta",
      "hot_frac", "hot_prob", "shift_every", "shift_by", "arrival", "period",
      "clients", "ops",     "think",      "prefill",   "cs_work", "seed",
      "ht_buckets", "ht_stripes", "lease_policy", "lease_time", "use_backoff",
      "backoff_min", "backoff_max"};
  for (const std::string& k : cfg.keys(section)) {
    bool known = false;
    for (const std::string& ok : kKnown) known = known || (k == ok);
    if (!known)
      throw std::invalid_argument(cfg.origin() + ": unknown [" + section + "] key `" + k + "`");
  }

  WorkloadSpec spec;
  spec.ds = cfg.get(section, "ds", spec.ds);
  if (cfg.has(section, "mix")) spec.mix = parse_mix(cfg.get(section, "mix"));
  spec.mix_shape = parse_mix_shape(cfg.get(section, "mix_shape", "draw"));
  spec.key_range = static_cast<std::uint64_t>(
      cfg.get_int(section, "keys", static_cast<std::int64_t>(spec.key_range)));
  spec.dist.kind = parse_dist_kind(cfg.get(section, "dist", "uniform"));
  spec.dist.theta = cfg.get_double(section, "theta", spec.dist.theta);
  spec.dist.hot_frac = cfg.get_double(section, "hot_frac", spec.dist.hot_frac);
  spec.dist.hot_prob = cfg.get_double(section, "hot_prob", spec.dist.hot_prob);
  spec.dist.shift_every = static_cast<Cycle>(cfg.get_int(section, "shift_every", 0));
  spec.dist.shift_by = static_cast<std::uint64_t>(cfg.get_int(section, "shift_by", 0));
  spec.arrival.kind = parse_arrival_kind(cfg.get(section, "arrival", "closed"));
  spec.arrival.period = static_cast<Cycle>(cfg.get_int(section, "period", 0));
  spec.clients = static_cast<int>(cfg.get_int(section, "clients", spec.clients));
  spec.ops = static_cast<int>(cfg.get_int(section, "ops", spec.ops));
  spec.think = static_cast<Cycle>(cfg.get_int(section, "think", static_cast<std::int64_t>(spec.think)));
  spec.prefill = static_cast<int>(cfg.get_int(section, "prefill", spec.prefill));
  spec.cs_work = static_cast<Cycle>(cfg.get_int(section, "cs_work", 0));
  spec.seed = static_cast<std::uint64_t>(cfg.get_int(section, "seed", static_cast<std::int64_t>(spec.seed)));
  spec.ht_buckets = cfg.get_int(section, "ht_buckets", 0);
  spec.ht_stripes = cfg.get_int(section, "ht_stripes", 0);
  spec.lease_policy = parse_lease_policy(cfg.get(section, "lease_policy", "static"));
  spec.lease_time = cfg.get_int(section, "lease_time", 0);
  if (cfg.has(section, "use_backoff"))
    spec.use_backoff = parse_bool_key(cfg.get(section, "use_backoff"), "use_backoff");
  spec.backoff_min = cfg.get_int(section, "backoff_min", 0);
  spec.backoff_max = cfg.get_int(section, "backoff_max", 0);
  spec.validate();
  return spec;
}

}  // namespace lrsim::workload
