// Copyright (c) 2026 lrsim authors. MIT license.
//
// Arrival processes for the trace-driven workload frontend
// (docs/WORKLOADS.md).
//
//  * closed  — the classic bench loop: a client issues its next op as soon
//              as the previous one completes, after 0..think cycles of
//              local work. Reproduces the legacy fig-bench loops exactly
//              (same PRNG draw sequence).
//  * fixed   — open loop, deterministic inter-arrival: every client's ops
//              arrive exactly `period` cycles apart, independent of service
//              time (a lagging client accumulates backlog and drains it in
//              arrival order).
//  * poisson — open loop, exponential inter-arrival with mean `period`
//              cycles (rate 1/period), sampled by inverse CDF from the
//              client's own PRNG stream — reproducible for any --jobs /
//              --sim-threads value.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace lrsim::workload {

enum class ArrivalKind { kClosed, kFixed, kPoisson };

struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kClosed;
  Cycle period = 0;  ///< Open loop: (mean) inter-arrival gap in cycles.

  bool open_loop() const noexcept { return kind != ArrivalKind::kClosed; }

  void validate() const {
    if (open_loop() && period == 0)
      throw std::invalid_argument("open-loop arrival requires period > 0");
  }
};

inline const char* arrival_name(ArrivalKind k) noexcept {
  switch (k) {
    case ArrivalKind::kClosed: return "closed";
    case ArrivalKind::kFixed: return "fixed";
    case ArrivalKind::kPoisson: return "poisson";
  }
  return "?";
}

/// Draws the next inter-arrival gap for one client. Closed-loop workloads
/// never call this (think time is drawn by the driver to match the legacy
/// loops); asserting via exception keeps misuse loud.
inline Cycle next_gap(const ArrivalSpec& spec, Rng& rng) {
  switch (spec.kind) {
    case ArrivalKind::kClosed:
      throw std::logic_error("closed-loop arrival has no inter-arrival gap");
    case ArrivalKind::kFixed:
      return spec.period;
    case ArrivalKind::kPoisson: {
      // Inverse CDF: gap = -mean * ln(1 - u), u uniform in [0, 1).
      const double u = rng.next_double();
      const double x = -static_cast<double>(spec.period) * std::log(1.0 - u);
      // Round to the cycle grid; the +0.5 keeps the empirical mean on
      // target (floor alone would bias it half a cycle low).
      return static_cast<Cycle>(x + 0.5);
    }
  }
  return 0;
}

}  // namespace lrsim::workload
