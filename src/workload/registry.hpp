// Copyright (c) 2026 lrsim authors. MIT license.
//
// Registry of data structures runnable under the declarative workload
// frontend (docs/WORKLOADS.md). Each registered structure exposes a set of
// *policies* — CAS/lock baselines vs their lease-accelerated variants — and
// a two-op mix whose PRNG draw sequence exactly matches the legacy fig
// bench loops, so a workload spec can reproduce fig2_stack / fig3_counter /
// fig3_queue / fig3_pq byte-for-byte (tests/workload_equiv_test.cpp).
//
//   WorkloadSpec spec;             // or parse_workload_spec(config)
//   spec.ds = "treiber_stack";
//   WorkloadRun run = make_workload(spec, "lease");
//   MachineConfig cfg; cfg.num_cores = 8; run.configure(cfg);
//   Machine m{cfg, seed};
//   auto worker = run.build(m);    // prefills on m
//   for (int t = 0; t < 8; ++t) m.spawn(t, [&, t](Ctx& c) { return worker(c, t); });
//   m.run();
//
// Structures / policies / op mixes (op A / op B):
//
//   counter      inc / —              tts, tts+lease, ticket, clh, mcs,
//                                     cohort-ticket, cohort+lease
//   treiber_stack push / pop          base, lease, backoff
//   ms_queue     enq / deq            base, lease, multi-lease,
//                                     lease-nextptr, backoff,
//                                     two-lock, two-lock+lease
//   skiplist_pq  insert / delete_min  lotan, global-lock,
//                                     global-lock+lease, spray
//   hashtable    update / lookup      base, lease
//   harris_list  update / lookup      base, lease
//   skiplist_set update / lookup      base, lease
//   bst          update / lookup      base, lease
//
// The keyed *set* structures share one mix shape: op A is an update (an
// extra next_bool(0.5) draw picks insert vs remove) and op B a lookup, so
// `mix` is the update fraction — the paper's low-contention experiments
// are mix = 0.2 (20% updates / 80% searches).
//
// Key distributions apply to the keyed structures (skiplist_pq priorities,
// set keys); counter/stack/queue are keyless and draw no keys — preserving
// the legacy draw sequences is what makes byte-identical replay possible.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runtime/machine.hpp"
#include "runtime/task.hpp"
#include "workload/dist.hpp"
#include "workload/spec.hpp"

namespace lrsim::workload {

/// One (spec, policy) instantiation, ready to run on a Machine.
struct WorkloadRun {
  /// Machine knobs this policy needs (e.g. leases_enabled). Apply before
  /// constructing the Machine.
  std::function<void(MachineConfig&)> configure;

  /// Builds the data structure on `m` (running any prefill to completion)
  /// and returns the per-core worker. The worker for core t drives the
  /// clients assigned to t (client id ≡ t mod num_cores).
  std::function<std::function<Task<void>(Ctx&, int)>(Machine&)> build;
};

/// Instantiates `spec` under `policy`. Throws std::invalid_argument for an
/// unknown structure/policy or a spec the structure cannot run (e.g. a
/// closed loop with clients != cores). `phase_log`, when non-null, is
/// resized to the machine's core count at build time and records
/// shifting-phase transitions (tests/workload_determinism_test.cpp).
WorkloadRun make_workload(const WorkloadSpec& spec, const std::string& policy,
                          PhaseLog* phase_log = nullptr);

/// Open-loop scheduling engine (docs/WORKLOADS.md, "Scaling to huge client
/// counts"). kTimerWheel — the default — keys clients by next_arrival in a
/// hierarchical timer wheel (src/util/timer_wheel.hpp), O(1) amortized per
/// served op. kLinearScan is the O(clients/core) reference loop kept as
/// the oracle the wheel is fuzzed against; both serve the exact same op
/// sequence (earliest arrival, ties to the lowest client id), so flipping
/// the engine never changes simulated output.
enum class OpenLoopEngine { kTimerWheel, kLinearScan };

/// Test hook: selects the engine for subsequently *started* open-loop
/// workers. Process-global; flip it only from single-threaded test setup.
void set_open_loop_engine(OpenLoopEngine e) noexcept;
OpenLoopEngine open_loop_engine() noexcept;

/// Registered structure names, in registry order.
const std::vector<std::string>& registered_structures();

/// Policy names for one structure (throws for unknown structures).
const std::vector<std::string>& policies_for(const std::string& ds);

}  // namespace lrsim::workload
