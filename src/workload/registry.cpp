// Copyright (c) 2026 lrsim authors. MIT license.
//
// Workload registry implementation: per-structure builders, the closed-loop
// driver (PRNG-compatible with the legacy fig bench loops), and the
// open-loop driver multiplexing N simulated clients onto the cores.

#include "workload/registry.hpp"

#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "ds/bst.hpp"
#include "ds/counter.hpp"
#include "ds/harris_list.hpp"
#include "ds/hashtable.hpp"
#include "ds/ms_queue.hpp"
#include "ds/skiplist_pq.hpp"
#include "ds/skiplist_set.hpp"
#include "ds/spraylist.hpp"
#include "ds/treiber_stack.hpp"
#include "ds/two_lock_queue.hpp"
#include "sim/par_guard.hpp"
#include "sync/cohort_lock.hpp"
#include "util/timer_wheel.hpp"

namespace lrsim::workload {
namespace {

/// Open-loop scheduling engine; flipped only by tests (fuzz oracle).
std::atomic<OpenLoopEngine> g_open_loop_engine{OpenLoopEngine::kTimerWheel};

/// Payload value pushed/enqueued by the keyless structures; matches the
/// legacy bench loops so replays stay byte-identical.
constexpr std::uint64_t kPayload = 7;

/// Default prefill of the container structures (the legacy benches' 256).
constexpr int kDefaultPrefill = 256;

/// One op of the two-op mix. The Rng is the *issuing client's* stream: the
/// per-core ctx rng in closed-loop mode, the client's own stream when
/// multiplexed — key draws always come from it.
using OpFn = std::function<Task<void>(Ctx&, Rng&)>;

/// Everything the per-core driver needs; owned by shared_ptr so the worker
/// coroutine frames can outlive build()'s scope.
struct Shared {
  OpFn op_a;
  OpFn op_b;  ///< Null for single-op structures (no mix draw happens).
  double mix = 1.0;
  int ops = 0;
  Cycle think = 0;
  ArrivalSpec arrival;
  int clients = 0;  ///< Resolved (>= 1) client count.
  int threads = 0;  ///< num_cores of the machine being driven.
  std::uint64_t seed = 1;
  std::shared_ptr<KeySampler> sampler;  ///< Keyed structures only.
};

/// Distinct from the machine's per-core seeding constant so a client stream
/// never collides with a core stream.
std::uint64_t client_seed(std::uint64_t seed, int client) {
  return seed ^ (0xa24baed4963ee407ull * (static_cast<std::uint64_t>(client) + 1));
}

/// Executes one op drawn from the mix. Exactly one next_double() when both
/// ops are in play (== the legacy next_bool), zero draws otherwise.
Task<void> exec_op(Ctx& ctx, Rng& rng, const Shared& sh) {
  if (!sh.op_b || sh.mix >= 1.0) {
    co_await sh.op_a(ctx, rng);
  } else if (sh.mix <= 0.0) {
    co_await sh.op_b(ctx, rng);
  } else if (rng.next_double() < sh.mix) {
    co_await sh.op_a(ctx, rng);
  } else {
    co_await sh.op_b(ctx, rng);
  }
}

/// Closed loop: op, then 0..think cycles of local work, both drawn from the
/// core's ctx rng — the legacy fig loop, draw for draw.
Task<void> run_closed(Ctx& ctx, std::shared_ptr<const Shared> sh) {
  for (int i = 0; i < sh->ops; ++i) {
    co_await exec_op(ctx, ctx.rng(), *sh);
    if (sh->think > 0) {
      const Cycle w = ctx.rng().next_below(sh->think);
      if (w > 0) co_await ctx.work(w);
    }
  }
}

/// Open loop: the core serves its clients (id ≡ core mod threads) in
/// arrival order — earliest next_arrival first, same-cycle ties broken
/// toward the lowest client id. Arrivals are scheduled on each client's
/// own timeline — a client that falls behind accumulates backlog and
/// drains it in order, which is what "open loop" means. Think time does
/// not apply (service time is the op itself).
///
/// This is the timer-wheel engine (src/util/timer_wheel.hpp): clients live
/// in the wheel keyed by next_arrival, so picking the next arrival is O(1)
/// amortized instead of a scan over every client on the core, and 10^5+
/// clients/core stay cheap (docs/WORKLOADS.md, "Scaling to huge client
/// counts"). Per-client state is struct-of-arrays: the Rng streams and
/// remaining-op counts live in flat tables indexed by the client's dense
/// per-core slot (slot k <-> client id tid + k*threads, so ascending slot
/// == ascending id and the wheel's id tie-break is the reference loop's),
/// and the next_arrival cycle lives only in the wheel node. The served-op
/// sequence is byte-identical to run_open_linear below at any client
/// count (tests/open_loop_wheel_test.cpp fuzzes the pair).
Task<void> run_open_wheel(Ctx& ctx, std::shared_ptr<const Shared> sh, int tid) {
  const int n = sh->clients > tid ? (sh->clients - 1 - tid) / sh->threads + 1 : 0;
  if (n == 0 || sh->ops <= 0) co_return;
  std::vector<Rng> rng;
  rng.reserve(static_cast<std::size_t>(n));
  std::vector<std::int32_t> remaining(static_cast<std::size_t>(n), sh->ops);
  TimerWheel wheel;
  wheel.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    rng.emplace_back(client_seed(sh->seed, tid + k * sh->threads));
    wheel.insert(static_cast<TimerWheel::Id>(k), next_gap(sh->arrival, rng.back()));
  }
  while (!wheel.empty()) {
    const std::pair<Cycle, TimerWheel::Id> due = wheel.pop();
    const std::size_t k = due.second;
    const Cycle now = ctx.now();
    if (due.first > now) co_await ctx.work(due.first - now);
    co_await exec_op(ctx, rng[k], *sh);
    // Drained clients simply never re-enter the wheel — no tombstones to
    // skip, unlike the old always-scan-everyone loop.
    if (--remaining[k] > 0) wheel.insert(due.second, due.first + next_gap(sh->arrival, rng[k]));
  }
}

/// The O(clients/core) reference loop, kept as the oracle the wheel engine
/// is fuzzed against (tests/open_loop_wheel_test.cpp). Ties on the same
/// arrival cycle break toward the lowest client id — explicitly, so that
/// swap-removing drained clients (instead of skipping them in every scan,
/// as this loop once did) cannot perturb the serve order.
Task<void> run_open_linear(Ctx& ctx, std::shared_ptr<const Shared> sh, int tid) {
  struct Client {
    Rng rng;
    Cycle next_arrival;
    int id;
    int remaining;
  };
  std::vector<Client> cs;
  for (int c = tid; c < sh->clients; c += sh->threads) {
    Client cl{Rng{client_seed(sh->seed, c)}, 0, c, sh->ops};
    cl.next_arrival = next_gap(sh->arrival, cl.rng);
    if (cl.remaining > 0) cs.push_back(cl);
  }
  while (!cs.empty()) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < cs.size(); ++i) {
      if (cs[i].next_arrival < cs[best].next_arrival ||
          (cs[i].next_arrival == cs[best].next_arrival && cs[i].id < cs[best].id)) {
        best = i;
      }
    }
    Client& cl = cs[best];
    const Cycle now = ctx.now();
    if (cl.next_arrival > now) co_await ctx.work(cl.next_arrival - now);
    co_await exec_op(ctx, cl.rng, *sh);
    if (--cl.remaining == 0) {
      // Swap-remove: a drained client leaves the scan instead of being
      // skipped on every future iteration. Safe because ties are broken by
      // client id, not vector position.
      if (best != cs.size() - 1) cs[best] = std::move(cs.back());
      cs.pop_back();
    } else {
      cl.next_arrival += next_gap(sh->arrival, cl.rng);
    }
  }
}

Task<void> run_open(Ctx& ctx, std::shared_ptr<const Shared> sh, int tid) {
  if (g_open_loop_engine.load(std::memory_order_relaxed) == OpenLoopEngine::kLinearScan)
    return run_open_linear(ctx, sh, tid);
  return run_open_wheel(ctx, sh, tid);
}

/// Resolves spec-level client/loop constraints against a concrete machine
/// and wraps the built ops into the per-core worker.
std::function<Task<void>(Ctx&, int)> finish_build(const WorkloadSpec& spec, Machine& m,
                                                  std::shared_ptr<Shared> sh) {
  const int threads = m.config().num_cores;
  sh->mix = spec.mix;
  sh->ops = spec.ops;
  sh->think = spec.think;
  sh->arrival = spec.arrival;
  sh->threads = threads;
  sh->seed = spec.seed;
  sh->clients = spec.clients == 0 ? threads : spec.clients;
  if (!spec.arrival.open_loop() && sh->clients != threads) {
    throw std::invalid_argument(
        "closed-loop workloads run one client per core; set clients = 0 (or use an "
        "open-loop arrival to multiplex)");
  }
  return [sh](Ctx& ctx, int t) -> Task<void> {
    if (sh->arrival.open_loop()) return run_open(ctx, sh, t);
    return run_closed(ctx, sh);
  };
}

/// Builds the per-machine key sampler (keyed structures), wiring the
/// optional phase log to the machine's core count.
std::shared_ptr<KeySampler> make_sampler(const WorkloadSpec& spec, Machine& m,
                                         PhaseLog* phase_log) {
  if (phase_log != nullptr)
    phase_log->per_core.assign(static_cast<std::size_t>(m.config().num_cores), {});
  return std::make_shared<KeySampler>(spec.dist, spec.key_range, m.config().num_cores, phase_log);
}

int resolved_prefill(const WorkloadSpec& spec) {
  return spec.prefill < 0 ? kDefaultPrefill : spec.prefill;
}

// --- counter ----------------------------------------------------------------

const std::vector<std::string> kCounterPolicies = {
    "tts", "tts+lease", "ticket", "clh", "mcs", "cohort-ticket", "cohort+lease"};

WorkloadRun make_counter(const WorkloadSpec& spec, const std::string& policy) {
  WorkloadRun run;
  if (policy == "cohort-ticket" || policy == "cohort+lease") {
    const bool lease = policy == "cohort+lease";
    run.configure = [lease](MachineConfig& cfg) { cfg.leases_enabled = lease; };
    run.build = [spec, lease](Machine& m) {
      auto lock = std::make_shared<CohortTicketLock>(
          m, CohortOptions{.cluster_size = 8, .use_lease = lease});
      auto counter = std::make_shared<Addr>(m.heap().alloc_line());
      auto sh = std::make_shared<Shared>();
      const Cycle cs_work = spec.cs_work;
      sh->op_a = [lock, counter, cs_work](Ctx& ctx, Rng&) -> Task<void> {
        co_await lock->lock(ctx);
        const std::uint64_t v = co_await ctx.load(*counter);
        if (cs_work > 0) co_await ctx.work(cs_work);
        co_await ctx.store(*counter, v + 1);
        co_await lock->unlock(ctx);
        ctx.count_op();
      };
      return finish_build(spec, m, sh);
    };
    return run;
  }
  CounterLockKind kind;
  if (policy == "tts") kind = CounterLockKind::kTTS;
  else if (policy == "tts+lease") kind = CounterLockKind::kTTSLease;
  else if (policy == "ticket") kind = CounterLockKind::kTicket;
  else if (policy == "clh") kind = CounterLockKind::kCLH;
  else if (policy == "mcs") kind = CounterLockKind::kMCS;
  else throw std::invalid_argument("unknown counter policy `" + policy + "`");
  // The legacy fig3_counter enables leases for every LockedCounter variant
  // (only the tts+lease lock actually takes any); preserved for replay parity.
  run.configure = [](MachineConfig& cfg) { cfg.leases_enabled = true; };
  run.build = [spec, kind](Machine& m) {
    auto counter = std::make_shared<LockedCounter>(m, kind, spec.cs_work);
    auto sh = std::make_shared<Shared>();
    sh->op_a = [counter](Ctx& ctx, Rng&) -> Task<void> { co_await counter->increment(ctx); };
    return finish_build(spec, m, sh);
  };
  return run;
}

// --- treiber_stack ----------------------------------------------------------

const std::vector<std::string> kStackPolicies = {"base", "lease", "backoff"};

WorkloadRun make_stack(const WorkloadSpec& spec, const std::string& policy) {
  TreiberOptions opt;
  if (policy == "lease") opt.use_lease = true;
  else if (policy == "backoff") opt.use_backoff = true;
  else if (policy != "base") throw std::invalid_argument("unknown treiber_stack policy `" + policy + "`");
  opt.lease_time = static_cast<Cycle>(spec.lease_time);
  opt.use_backoff = opt.use_backoff || spec.use_backoff;
  if (spec.backoff_min > 0) opt.backoff_min = static_cast<Cycle>(spec.backoff_min);
  if (spec.backoff_max > 0) opt.backoff_max = static_cast<Cycle>(spec.backoff_max);
  WorkloadRun run;
  const bool leases = opt.use_lease;
  run.configure = [leases](MachineConfig& cfg) { cfg.leases_enabled = leases; };
  run.build = [spec, opt](Machine& m) {
    auto stack = std::make_shared<TreiberStack>(m, opt);
    const int prefill = resolved_prefill(spec);
    m.spawn(0, [stack, prefill](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < prefill; ++i)
        co_await stack->push(ctx, static_cast<std::uint64_t>(i + 1));
    });
    m.run();
    auto sh = std::make_shared<Shared>();
    sh->op_a = [stack](Ctx& ctx, Rng&) -> Task<void> { co_await stack->push(ctx, kPayload); };
    sh->op_b = [stack](Ctx& ctx, Rng&) -> Task<void> { co_await stack->pop(ctx); };
    return finish_build(spec, m, sh);
  };
  return run;
}

// --- ms_queue ---------------------------------------------------------------

const std::vector<std::string> kQueuePolicies = {
    "base", "lease", "multi-lease", "lease-nextptr", "backoff", "two-lock", "two-lock+lease"};

WorkloadRun make_queue(const WorkloadSpec& spec, const std::string& policy) {
  WorkloadRun run;
  if (policy == "two-lock" || policy == "two-lock+lease") {
    const bool lease = policy == "two-lock+lease";
    if (spec.lease_time > 0 || spec.use_backoff || spec.backoff_min > 0 || spec.backoff_max > 0)
      throw std::invalid_argument(
          "ms_queue policy `" + policy + "` has no lease_time/backoff knobs");
    run.configure = [lease](MachineConfig& cfg) { cfg.leases_enabled = lease; };
    run.build = [spec, lease](Machine& m) {
      auto q = std::make_shared<TwoLockQueue>(m, TwoLockQueueOptions{.use_lease = lease});
      const int prefill = resolved_prefill(spec);
      m.spawn(0, [q, prefill](Ctx& ctx) -> Task<void> {
        for (int i = 0; i < prefill; ++i)
          co_await q->enqueue(ctx, static_cast<std::uint64_t>(i + 1));
      });
      m.run();
      auto sh = std::make_shared<Shared>();
      sh->op_a = [q](Ctx& ctx, Rng&) -> Task<void> { co_await q->enqueue(ctx, kPayload); };
      sh->op_b = [q](Ctx& ctx, Rng&) -> Task<void> { co_await q->dequeue(ctx); };
      return finish_build(spec, m, sh);
    };
    return run;
  }
  MsQueueOptions opt;
  if (policy == "base") opt.lease_mode = QueueLeaseMode::kNone;
  else if (policy == "lease") opt.lease_mode = QueueLeaseMode::kSingle;
  else if (policy == "multi-lease") opt.lease_mode = QueueLeaseMode::kMulti;
  else if (policy == "lease-nextptr") opt.lease_mode = QueueLeaseMode::kNextPtr;
  else if (policy == "backoff") opt.use_backoff = true;
  else throw std::invalid_argument("unknown ms_queue policy `" + policy + "`");
  opt.lease_time = static_cast<Cycle>(spec.lease_time);
  opt.use_backoff = opt.use_backoff || spec.use_backoff;
  if (spec.backoff_min > 0) opt.backoff_min = static_cast<Cycle>(spec.backoff_min);
  if (spec.backoff_max > 0) opt.backoff_max = static_cast<Cycle>(spec.backoff_max);
  const bool leases = opt.lease_mode != QueueLeaseMode::kNone;
  run.configure = [leases](MachineConfig& cfg) { cfg.leases_enabled = leases; };
  run.build = [spec, opt](Machine& m) {
    auto q = std::make_shared<MsQueue>(m, opt);
    const int prefill = resolved_prefill(spec);
    m.spawn(0, [q, prefill](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < prefill; ++i)
        co_await q->enqueue(ctx, static_cast<std::uint64_t>(i + 1));
    });
    m.run();
    auto sh = std::make_shared<Shared>();
    sh->op_a = [q](Ctx& ctx, Rng&) -> Task<void> { co_await q->enqueue(ctx, kPayload); };
    sh->op_b = [q](Ctx& ctx, Rng&) -> Task<void> { co_await q->dequeue(ctx); };
    return finish_build(spec, m, sh);
  };
  return run;
}

// --- skiplist_pq ------------------------------------------------------------

const std::vector<std::string> kPqPolicies = {"lotan", "global-lock", "global-lock+lease", "spray"};

/// Priorities are 1 + key so key 0 never collides with the skiplist head
/// sentinel — exactly the legacy benches' `1 + next_below(1 << 16)` when the
/// spec says uniform over 2^16 keys.
template <typename Pq>
std::function<std::function<Task<void>(Ctx&, int)>(Machine&)> pq_build(
    const WorkloadSpec& spec, PhaseLog* phase_log,
    std::function<std::shared_ptr<Pq>(Machine&)> make_pq) {
  return [spec, phase_log, make_pq](Machine& m) {
    auto pq = make_pq(m);
    auto sampler = make_sampler(spec, m, phase_log);
    const int prefill = resolved_prefill(spec);
    m.spawn(0, [pq, sampler, prefill](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < prefill; ++i)
        co_await pq->insert(ctx, 1 + sampler->sample(ctx.rng(), ctx.now(), ctx.core()));
    });
    m.run();
    auto sh = std::make_shared<Shared>();
    sh->sampler = sampler;
    sh->op_a = [pq, sampler](Ctx& ctx, Rng& rng) -> Task<void> {
      co_await pq->insert(ctx, 1 + sampler->sample(rng, ctx.now(), ctx.core()));
    };
    sh->op_b = [pq](Ctx& ctx, Rng&) -> Task<void> { co_await pq->delete_min(ctx); };
    return finish_build(spec, m, sh);
  };
}

WorkloadRun make_pq(const WorkloadSpec& spec, const std::string& policy, PhaseLog* phase_log) {
  WorkloadRun run;
  if (policy == "lotan") {
    run.configure = [](MachineConfig& cfg) { cfg.leases_enabled = false; };
    run.build = pq_build<LotanShavitPq>(spec, phase_log, [](Machine& m) {
      return std::make_shared<LotanShavitPq>(m);
    });
  } else if (policy == "global-lock" || policy == "global-lock+lease") {
    const bool lease = policy == "global-lock+lease";
    run.configure = [lease](MachineConfig& cfg) { cfg.leases_enabled = lease; };
    run.build = pq_build<GlobalLockSkiplistPq>(spec, phase_log, [lease](Machine& m) {
      return std::make_shared<GlobalLockSkiplistPq>(m, lease);
    });
  } else if (policy == "spray") {
    run.configure = [](MachineConfig& cfg) { cfg.leases_enabled = false; };
    run.build = pq_build<SprayList>(spec, phase_log, [](Machine& m) {
      return std::make_shared<SprayList>(m);
    });
  } else {
    throw std::invalid_argument("unknown skiplist_pq policy `" + policy + "`");
  }
  return run;
}

// --- keyed sets (hashtable / harris_list / skiplist_set / bst) --------------
//
// One op mix for all set structures: op A is an *update* — one extra
// next_bool(0.5) draw picks insert vs remove — and op B is a lookup, so
// `mix` is the update fraction (the paper's low-contention runs are
// mix = 0.2: 20% updates / 80% searches). Keys are 1 + sampler draw: key 0
// is the head-sentinel key in the list-shaped structures.

Task<void> set_insert(LockedHashTable& s, Ctx& ctx, std::uint64_t key) {
  co_await s.insert(ctx, key, kPayload);
}
template <typename Set>
Task<void> set_insert(Set& s, Ctx& ctx, std::uint64_t key) {
  co_await s.insert(ctx, key);
}
Task<void> set_lookup(LockedHashTable& s, Ctx& ctx, std::uint64_t key) {
  co_await s.get(ctx, key);
}
template <typename Set>
Task<void> set_lookup(Set& s, Ctx& ctx, std::uint64_t key) {
  co_await s.contains(ctx, key);
}

template <typename Set>
std::function<std::function<Task<void>(Ctx&, int)>(Machine&)> set_build(
    const WorkloadSpec& spec, PhaseLog* phase_log,
    std::function<std::shared_ptr<Set>(Machine&)> make_set) {
  return [spec, phase_log, make_set](Machine& m) {
    auto set = make_set(m);
    auto sampler = make_sampler(spec, m, phase_log);
    const int prefill = resolved_prefill(spec);
    m.spawn(0, [set, sampler, prefill](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < prefill; ++i)
        co_await set_insert(*set, ctx, 1 + sampler->sample(ctx.rng(), ctx.now(), ctx.core()));
    });
    m.run();
    auto sh = std::make_shared<Shared>();
    sh->sampler = sampler;
    if (spec.mix_shape == MixShape::kDice) {
      // Legacy dice mix (tbl_lowcontention's pre-registry loop, draw for
      // draw): key first, then one next_below(10) dice — no mix-fraction
      // draw. mix is the update fraction in tenths: dice < upd is an
      // update, split insert-first when odd; the rest are lookups. With
      // op_b unset, exec_op runs op_a unconditionally and draws nothing.
      const std::uint64_t upd = static_cast<std::uint64_t>(std::llround(spec.mix * 10.0));
      const std::uint64_t ins = upd - upd / 2;
      sh->op_a = [set, sampler, ins, upd](Ctx& ctx, Rng& rng) -> Task<void> {
        const std::uint64_t key = 1 + sampler->sample(rng, ctx.now(), ctx.core());
        const std::uint64_t dice = rng.next_below(10);
        if (dice < ins) {
          co_await set_insert(*set, ctx, key);
        } else if (dice < upd) {
          co_await set->remove(ctx, key);
        } else {
          co_await set_lookup(*set, ctx, key);
        }
      };
      return finish_build(spec, m, sh);
    }
    sh->op_a = [set, sampler](Ctx& ctx, Rng& rng) -> Task<void> {
      const std::uint64_t key = 1 + sampler->sample(rng, ctx.now(), ctx.core());
      if (rng.next_bool(0.5)) {
        co_await set_insert(*set, ctx, key);
      } else {
        co_await set->remove(ctx, key);
      }
    };
    sh->op_b = [set, sampler](Ctx& ctx, Rng& rng) -> Task<void> {
      co_await set_lookup(*set, ctx, 1 + sampler->sample(rng, ctx.now(), ctx.core()));
    };
    return finish_build(spec, m, sh);
  };
}

const std::vector<std::string> kSetPolicies = {"base", "lease"};

bool set_policy_lease(const std::string& ds, const std::string& policy) {
  if (policy == "lease") return true;
  if (policy != "base") throw std::invalid_argument("unknown " + ds + " policy `" + policy + "`");
  return false;
}

WorkloadRun make_hashtable(const WorkloadSpec& spec, const std::string& policy,
                           PhaseLog* phase_log) {
  const bool lease = set_policy_lease("hashtable", policy);
  HashTableOptions opt;
  opt.use_lease = lease;
  if (spec.ht_buckets > 0) opt.buckets = static_cast<std::size_t>(spec.ht_buckets);
  if (spec.ht_stripes > 0) opt.stripes = static_cast<std::size_t>(spec.ht_stripes);
  if ((opt.buckets & (opt.buckets - 1)) != 0 || (opt.stripes & (opt.stripes - 1)) != 0 ||
      opt.stripes > opt.buckets) {
    throw std::invalid_argument(
        "hashtable ht_buckets/ht_stripes must be powers of two with stripes <= buckets");
  }
  WorkloadRun run;
  run.configure = [lease](MachineConfig& cfg) { cfg.leases_enabled = lease; };
  run.build = set_build<LockedHashTable>(spec, phase_log, [opt](Machine& m) {
    return std::make_shared<LockedHashTable>(m, opt);
  });
  return run;
}

WorkloadRun make_harris(const WorkloadSpec& spec, const std::string& policy,
                        PhaseLog* phase_log) {
  const bool lease = set_policy_lease("harris_list", policy);
  WorkloadRun run;
  run.configure = [lease](MachineConfig& cfg) { cfg.leases_enabled = lease; };
  const Cycle lt = static_cast<Cycle>(spec.lease_time);
  run.build = set_build<HarrisList>(spec, phase_log, [lease, lt](Machine& m) {
    return std::make_shared<HarrisList>(m, HarrisOptions{.use_lease = lease, .lease_time = lt});
  });
  return run;
}

WorkloadRun make_skiplist_set(const WorkloadSpec& spec, const std::string& policy,
                              PhaseLog* phase_log) {
  const bool lease = set_policy_lease("skiplist_set", policy);
  WorkloadRun run;
  run.configure = [lease](MachineConfig& cfg) { cfg.leases_enabled = lease; };
  const Cycle lt = static_cast<Cycle>(spec.lease_time);
  run.build = set_build<LockFreeSkipList>(spec, phase_log, [lease, lt](Machine& m) {
    return std::make_shared<LockFreeSkipList>(m, LfSkipListOptions{.use_lease = lease, .lease_time = lt});
  });
  return run;
}

WorkloadRun make_bst(const WorkloadSpec& spec, const std::string& policy, PhaseLog* phase_log) {
  const bool lease = set_policy_lease("bst", policy);
  WorkloadRun run;
  run.configure = [lease](MachineConfig& cfg) { cfg.leases_enabled = lease; };
  const Cycle lt = static_cast<Cycle>(spec.lease_time);
  run.build = set_build<ExternalBst>(spec, phase_log, [lease, lt](Machine& m) {
    return std::make_shared<ExternalBst>(m, BstOptions{.use_lease = lease, .lease_time = lt});
  });
  return run;
}

const std::vector<std::string> kStructures = {"counter",     "treiber_stack", "ms_queue",
                                              "skiplist_pq", "hashtable",     "harris_list",
                                              "skiplist_set", "bst"};

/// Latches the workload's name for parallel-kernel abort diagnostics
/// (par_guard.hpp): a worker-phase violation names the workload it happened
/// under. Static storage — the diagnostic may fire long after make_workload
/// returns.
void latch_workload_name(const WorkloadSpec& spec, const std::string& policy) {
  static std::string name;
  name = spec.ds + "/" + policy;
  par::set_workload_name(name.c_str());
}

}  // namespace

void set_open_loop_engine(OpenLoopEngine e) noexcept {
  g_open_loop_engine.store(e, std::memory_order_relaxed);
}

OpenLoopEngine open_loop_engine() noexcept {
  return g_open_loop_engine.load(std::memory_order_relaxed);
}

WorkloadRun make_workload(const WorkloadSpec& spec, const std::string& policy,
                          PhaseLog* phase_log) {
  spec.validate();
  latch_workload_name(spec, policy);
  const bool keyed_set = spec.ds == "hashtable" || spec.ds == "harris_list" ||
                         spec.ds == "skiplist_set" || spec.ds == "bst";
  if (spec.mix_shape == MixShape::kDice && !keyed_set) {
    throw std::invalid_argument(
        "mix_shape = dice is a keyed-set mix (hashtable, harris_list, skiplist_set, bst)");
  }
  // Tuning-knob support matrix — refuse at build time (parse time for
  // sweeps), not silently mid-run.
  const bool lease_knob = spec.ds == "treiber_stack" || spec.ds == "ms_queue" ||
                          spec.ds == "harris_list" || spec.ds == "skiplist_set" ||
                          spec.ds == "bst";
  if (spec.lease_time > 0 && !lease_knob)
    throw std::invalid_argument("lease_time is not a `" + spec.ds +
                                "` knob (treiber_stack, ms_queue, harris_list, skiplist_set, bst)");
  if ((spec.use_backoff || spec.backoff_min > 0 || spec.backoff_max > 0) &&
      spec.ds != "treiber_stack" && spec.ds != "ms_queue")
    throw std::invalid_argument("use_backoff/backoff_min/backoff_max are not `" + spec.ds +
                                "` knobs (treiber_stack, ms_queue)");
  WorkloadRun run;
  if (spec.ds == "counter") run = make_counter(spec, policy);
  else if (spec.ds == "treiber_stack") run = make_stack(spec, policy);
  else if (spec.ds == "ms_queue") run = make_queue(spec, policy);
  else if (spec.ds == "skiplist_pq") run = make_pq(spec, policy, phase_log);
  else if (spec.ds == "hashtable") run = make_hashtable(spec, policy, phase_log);
  else if (spec.ds == "harris_list") run = make_harris(spec, policy, phase_log);
  else if (spec.ds == "skiplist_set") run = make_skiplist_set(spec, policy, phase_log);
  else if (spec.ds == "bst") run = make_bst(spec, policy, phase_log);
  else {
    std::string known;
    for (const auto& s : kStructures) known += (known.empty() ? "" : ", ") + s;
    throw std::invalid_argument("unknown workload ds `" + spec.ds + "` (registered: " + known + ")");
  }
  // The machine-level lease policy rides on top of whatever the builder's
  // own configure set (builders decide leases_enabled; the policy decides
  // how policy-chosen durations resolve).
  const LeasePolicy lp = spec.lease_policy;
  auto inner = std::move(run.configure);
  run.configure = [inner = std::move(inner), lp](MachineConfig& cfg) {
    if (inner) inner(cfg);
    cfg.lease_policy = lp;
  };
  return run;
}

const std::vector<std::string>& registered_structures() { return kStructures; }

const std::vector<std::string>& policies_for(const std::string& ds) {
  if (ds == "counter") return kCounterPolicies;
  if (ds == "treiber_stack") return kStackPolicies;
  if (ds == "ms_queue") return kQueuePolicies;
  if (ds == "skiplist_pq") return kPqPolicies;
  if (ds == "hashtable" || ds == "harris_list" || ds == "skiplist_set" || ds == "bst")
    return kSetPolicies;
  throw std::invalid_argument("unknown workload ds `" + ds + "`");
}

}  // namespace lrsim::workload
