// Copyright (c) 2026 lrsim authors. MIT license.
//
// Key-access distributions for the trace-driven workload frontend
// (docs/WORKLOADS.md). A KeySampler maps uniform PRNG draws to keys in
// [0, range) under one of:
//
//  * uniform    — every key equally likely.
//  * zipf(θ)    — pmf(k) ∝ 1/(k+1)^θ, sampled by *exact* inverse-CDF lookup
//                 over the precomputed partial sums (no YCSB-style
//                 approximation, so the chi-square goodness-of-fit tests in
//                 tests/workload_dist_test.cpp can check against the
//                 analytic pmf directly). O(range) table, O(log range)
//                 per sample; ranges above kMaxTableRange are refused.
//  * hotspot    — with probability hot_prob pick uniformly among the first
//                 ceil(hot_frac * range) keys, else uniformly among the rest.
//
// Any base distribution can be wrapped in a *shifting-phase* schedule:
// every shift_every simulated cycles the whole key space rotates by
// shift_by keys (key := (base + phase * shift_by) % range), modeling a
// moving hot set. Phase boundaries are a pure function of simulated time,
// so they fire at identical cycles across --jobs and --sim-threads; the
// per-core phase log makes that checkable (tests/workload_determinism_test).
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace lrsim::workload {

enum class DistKind { kUniform, kZipf, kHotspot };

struct DistSpec {
  DistKind kind = DistKind::kUniform;
  double theta = 0.99;     ///< Zipf exponent (> 0).
  double hot_frac = 0.1;   ///< Hotspot: fraction of keys that are hot.
  double hot_prob = 0.9;   ///< Hotspot: probability of hitting the hot set.
  Cycle shift_every = 0;   ///< Shifting phase period in cycles (0 = static).
  std::uint64_t shift_by = 0;  ///< Keys rotated per phase.

  bool shifting() const noexcept { return shift_every > 0 && shift_by > 0; }
};

/// Renders the spec for CSV/table axes ("uniform", "zipf", "hotspot").
inline const char* dist_name(DistKind k) noexcept {
  switch (k) {
    case DistKind::kUniform: return "uniform";
    case DistKind::kZipf: return "zipf";
    case DistKind::kHotspot: return "hotspot";
  }
  return "?";
}

/// Parameter column for the sweep CSV: theta for zipf, "frac:prob" for
/// hotspot, "-" for uniform (shift params do not change the stationary pmf
/// and are not part of the axis identity).
inline std::string dist_param_string(const DistSpec& spec) {
  std::ostringstream os;
  switch (spec.kind) {
    case DistKind::kUniform:
      return "-";
    case DistKind::kZipf:
      os << spec.theta;
      return os.str();
    case DistKind::kHotspot:
      os << spec.hot_frac << ":" << spec.hot_prob;
      return os.str();
  }
  return "?";
}

/// Per-core shifting-phase transition log: phase_log[core] holds the
/// simulated cycle of every observed phase *change* on that core. Written
/// only by that core's events, so it is parallel-kernel safe (shard = core).
struct PhaseLog {
  std::vector<std::vector<Cycle>> per_core;
  explicit PhaseLog(int num_cores = 0) : per_core(static_cast<std::size_t>(num_cores)) {}
};

/// Samples keys in [0, range). One instance per simulated machine; the Zipf
/// CDF table is built once in the constructor and shared by every client.
class KeySampler {
 public:
  /// Zipf CDF tables are O(range) doubles; refuse ranges that would
  /// silently eat gigabytes. 2^24 keys = 128 MiB, a deliberate ceiling.
  static constexpr std::uint64_t kMaxTableRange = 1ull << 24;

  KeySampler(DistSpec spec, std::uint64_t range, int num_cores = 1, PhaseLog* phase_log = nullptr)
      : spec_(spec), range_(range), last_phase_(static_cast<std::size_t>(num_cores), 0),
        phase_log_(phase_log) {
    if (range_ == 0) throw std::invalid_argument("key range must be nonzero");
    switch (spec_.kind) {
      case DistKind::kUniform:
        break;
      case DistKind::kZipf: {
        if (!(spec_.theta > 0)) throw std::invalid_argument("zipf theta must be > 0");
        if (range_ > kMaxTableRange)
          throw std::invalid_argument("zipf key range exceeds the exact-CDF table ceiling (2^24)");
        cdf_.resize(range_);
        double sum = 0;
        for (std::uint64_t k = 0; k < range_; ++k) {
          sum += std::pow(static_cast<double>(k + 1), -spec_.theta);
          cdf_[k] = sum;
        }
        zeta_ = sum;
        break;
      }
      case DistKind::kHotspot: {
        if (!(spec_.hot_frac > 0) || spec_.hot_frac > 1)
          throw std::invalid_argument("hotspot hot_frac must be in (0, 1]");
        if (spec_.hot_prob < 0 || spec_.hot_prob > 1)
          throw std::invalid_argument("hotspot hot_prob must be in [0, 1]");
        hot_keys_ = static_cast<std::uint64_t>(
            std::ceil(spec_.hot_frac * static_cast<double>(range_)));
        if (hot_keys_ == 0) hot_keys_ = 1;
        if (hot_keys_ > range_) hot_keys_ = range_;
        break;
      }
    }
  }

  std::uint64_t range() const noexcept { return range_; }
  const DistSpec& spec() const noexcept { return spec_; }

  /// Draws one key. `now`/`core` feed the shifting-phase schedule; static
  /// distributions ignore them. Consumes exactly one PRNG draw for uniform
  /// and zipf; hotspot consumes two (set pick, then index).
  std::uint64_t sample(Rng& rng, Cycle now = 0, CoreId core = 0) {
    std::uint64_t key = sample_base(rng);
    if (spec_.shifting()) {
      const std::uint64_t phase = now / spec_.shift_every;
      auto& last = last_phase_[static_cast<std::size_t>(core)];
      if (phase != last) {
        last = phase;
        if (phase_log_ != nullptr)
          phase_log_->per_core[static_cast<std::size_t>(core)].push_back(now);
      }
      key = (key + phase * spec_.shift_by) % range_;
    }
    return key;
  }

  /// Stationary analytic pmf (ignores the shift, which only relabels keys).
  double pmf(std::uint64_t key) const {
    if (key >= range_) return 0.0;
    switch (spec_.kind) {
      case DistKind::kUniform:
        return 1.0 / static_cast<double>(range_);
      case DistKind::kZipf:
        return std::pow(static_cast<double>(key + 1), -spec_.theta) / zeta_;
      case DistKind::kHotspot: {
        const double in_hot = spec_.hot_prob / static_cast<double>(hot_keys_);
        if (key < hot_keys_) return hot_keys_ == range_ ? 1.0 / static_cast<double>(range_) : in_hot;
        return (1.0 - spec_.hot_prob) / static_cast<double>(range_ - hot_keys_);
      }
    }
    return 0.0;
  }

 private:
  std::uint64_t sample_base(Rng& rng) {
    switch (spec_.kind) {
      case DistKind::kUniform:
        return rng.next_below(range_);
      case DistKind::kZipf: {
        const double u = rng.next_double() * zeta_;
        // First index whose partial sum exceeds u (exact inversion).
        std::uint64_t lo = 0, hi = range_ - 1;
        while (lo < hi) {
          const std::uint64_t mid = lo + (hi - lo) / 2;
          if (cdf_[mid] > u) hi = mid; else lo = mid + 1;
        }
        return lo;
      }
      case DistKind::kHotspot: {
        if (hot_keys_ == range_) return rng.next_below(range_);
        if (rng.next_double() < spec_.hot_prob) return rng.next_below(hot_keys_);
        return hot_keys_ + rng.next_below(range_ - hot_keys_);
      }
    }
    return 0;
  }

  DistSpec spec_;
  std::uint64_t range_;
  std::vector<double> cdf_;     ///< Zipf partial sums (exact inversion).
  double zeta_ = 0;             ///< Zipf normalizer (= cdf_.back()).
  std::uint64_t hot_keys_ = 0;  ///< Hotspot: size of the hot prefix.
  std::vector<std::uint64_t> last_phase_;  ///< Per-core last observed phase.
  PhaseLog* phase_log_;
};

}  // namespace lrsim::workload
