// Copyright (c) 2026 lrsim authors. MIT license.
//
// Shared experiment harness for the paper-reproduction benches.
//
// Every bench binary sweeps the paper's thread counts (2..64, powers of
// two), runs each variant on a fresh simulated machine, and prints
// paper-style series: throughput (Mops/s at the 1 GHz clock of Table 1),
// energy (nJ/op from the event-based model), messages/op and misses/op.
// The same rows are written as CSV under --csv_dir for plotting.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <mutex>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "lrsim.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/registry.hpp"

namespace lrsim::bench {

/// The paper's thread sweep: powers of two up to `max_threads` (Figure 3
/// runs 2..64; the default stays 64 so legacy outputs don't change).
/// Single source of truth for both the BenchOptions default and the
/// --max_threads rebuild in parse_flags — the two used to encode the same
/// sequence independently and could drift. Values above 64 (to kMaxCores =
/// 256) run the hybrid sharer-set directory: `--max_threads 256` adds the
/// 128- and 256-core points.
inline std::vector<int> thread_sweep(int max_threads = 64) {
  std::vector<int> sweep;
  for (int t = 2; t <= max_threads; t *= 2) sweep.push_back(t);
  return sweep;
}

struct BenchOptions {
  std::vector<int> threads = thread_sweep();
  int ops_per_thread = 100;
  bool full = false;  ///< --full: 5x the operations for smoother curves.
  std::string csv_dir = "bench_out";
  Cycle max_lease_time = 20000;  ///< Paper: 20K cycles (= 20 us at 1 GHz).
  int max_num_leases = 4;
  /// --min_lease_time: adaptive-policy cold start / lower clamp; 0 keeps the
  /// MachineConfig default (64). Static-policy runs never read it.
  Cycle min_lease_time = 0;
  std::uint64_t seed = 1;
  Cycle think_max = 40;  ///< Random local work between ops (0..think_max).
  int jobs = 0;  ///< --jobs: host threads running samples; 0 = one per host CPU.
  /// --sim-threads: worker threads *inside* each simulation (0/1 = serial
  /// kernel, n >= 2 = parallel kernel when eligible; results are
  /// bit-identical either way — docs/ENGINE.md "Parallel kernel").
  int sim_threads = 0;
  /// --fast-path: "auto" keeps whatever the variant configures (the
  /// MachineConfig default is on), "on"/"off" force it — for ablating the
  /// inline L1-hit fast path (host-speed only; results are bit-identical).
  std::string fast_path = "auto";

  // --- observability sinks (src/obs/): applied to ONE observed sample ------
  // (by default the last variant at the largest thread count; override with
  // --obs_variant / --obs_threads). Empty paths = off = zero overhead.
  std::string trace_out;    ///< --trace_out: Perfetto trace-event JSON path.
  std::string profile_out;  ///< --profile_out: per-line contention profile path.
  std::string samples_out;  ///< --samples_out: time-series Stats CSV path.
  Cycle sample_every = 0;   ///< --sample_every: sampler period in cycles (0 = off).
  std::string obs_variant;  ///< --obs_variant: variant name to observe.
  int obs_threads = 0;      ///< --obs_threads: thread count to observe.

  bool observability_requested() const {
    return !trace_out.empty() || !profile_out.empty() || !samples_out.empty();
  }
};

/// Parses the common flags; `extra` lets a bench add its own. Returns false
/// if --help was requested (usage already printed).
inline bool parse_flags(int argc, char** argv, const std::string& name, BenchOptions& opt,
                        const std::function<void(FlagSet&)>& extra = {}) {
  FlagSet flags{name};
  int max_threads = 64;
  flags.add("max_threads", &max_threads, "largest thread count in the sweep");
  flags.add("ops", &opt.ops_per_thread, "operations per thread");
  flags.add("full", &opt.full, "run the full-size experiment (5x ops)");
  flags.add("csv_dir", &opt.csv_dir, "directory for CSV output (empty to disable)");
  flags.add("max_lease_time", &opt.max_lease_time, "MAX_LEASE_TIME in cycles");
  flags.add("max_num_leases", &opt.max_num_leases, "MAX_NUM_LEASES per core");
  flags.add("min_lease_time", &opt.min_lease_time,
            "adaptive lease policy: cold-start / lower-clamp duration (0 = default)");
  flags.add("seed", &opt.seed, "workload RNG seed");
  flags.add("think", &opt.think_max, "max random local work between ops (cycles)");
  flags.add("jobs", &opt.jobs, "host threads running samples in parallel (0 = one per host CPU)");
  flags.add("sim-threads", &opt.sim_threads,
            "worker threads inside each simulation (0 = serial kernel; bit-identical)");
  flags.add("fast-path", &opt.fast_path,
            "inline L1-hit fast path: on, off, or auto (= variant/config default)");
  flags.add("trace_out", &opt.trace_out,
            "write a Perfetto trace-event JSON of the observed sample here (empty = off)");
  flags.add("profile_out", &opt.profile_out,
            "write the per-line contention profile of the observed sample here (empty = off)");
  flags.add("samples_out", &opt.samples_out,
            "write the time-series stats CSV of the observed sample here (empty = off)");
  flags.add("sample_every", &opt.sample_every,
            "stats sampler period in simulated cycles (0 = off)");
  flags.add("obs_variant", &opt.obs_variant,
            "variant to observe with --trace_out/--profile_out/--samples_out (default: last)");
  flags.add("obs_threads", &opt.obs_threads,
            "thread count to observe (default: largest in the sweep)");
  if (extra) extra(flags);
  try {
    flags.parse(argc, argv);
  } catch (const FlagSet::FlagHelp& h) {
    std::cout << h.text;
    return false;
  }
  if (opt.fast_path != "auto" && opt.fast_path != "on" && opt.fast_path != "off") {
    std::cerr << "error: --fast-path must be on, off, or auto (got \"" << opt.fast_path << "\")\n";
    return false;
  }
  if (opt.sim_threads < 0) {
    std::cerr << "error: --sim-threads must be >= 0 (got " << opt.sim_threads << ")\n";
    return false;
  }
  // The two parallelism axes multiply: --jobs host threads each driving a
  // simulation with --sim-threads workers. Refuse to oversubscribe the host
  // silently — the sweep would thrash instead of speeding up.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int effective_jobs = opt.jobs > 0 ? opt.jobs : hw;
  if (opt.sim_threads >= 2 && effective_jobs > 1 &&
      effective_jobs * opt.sim_threads > hw && hw > 0) {
    std::cerr << "error: --jobs " << effective_jobs << " x --sim-threads " << opt.sim_threads
              << " = " << effective_jobs * opt.sim_threads << " host threads exceeds the "
              << hw << " available; pass --jobs 1 (or a smaller --sim-threads)\n";
    return false;
  }
  opt.threads = thread_sweep(max_threads);
  if (opt.full) opt.ops_per_thread *= 5;
  return true;
}

/// One (variant, thread-count) measurement.
struct Sample {
  std::string variant;
  int threads = 0;
  std::uint64_t ops = 0;
  Cycle cycles = 0;
  Stats stats;  ///< Steady-state stats (prefill excluded).
  std::size_t dir_peak_queue = 0;  ///< Peak per-line directory queue depth.

  double mops_per_sec() const {  // 1 cycle == 1 ns (1 GHz core, Table 1)
    return cycles == 0 ? 0.0 : static_cast<double>(ops) * 1e3 / static_cast<double>(cycles);
  }
  double energy_per_op() const {
    return ops == 0 ? 0.0 : stats.energy_nj() / static_cast<double>(ops);
  }
  double msgs_per_op() const {
    return ops == 0 ? 0.0 : static_cast<double>(stats.total_messages()) / static_cast<double>(ops);
  }
  double misses_per_op() const {
    return ops == 0 ? 0.0 : static_cast<double>(stats.l1_misses) / static_cast<double>(ops);
  }
};

/// A benchmark variant: configures the machine and produces the per-thread
/// worker after any prefill. `make` may spawn+run prefill work on the
/// machine before returning.
struct Variant {
  std::string name;
  std::function<void(MachineConfig&)> configure;  ///< e.g. enable leases.
  std::function<std::function<Task<void>(Ctx&, int)>(Machine&, const BenchOptions&)> make;
};

/// Opens `path` (creating parent directories) and streams `fn` into it.
inline void write_sink(const std::string& path, const std::function<void(std::ostream&)>& fn) {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    std::cerr << "WARNING: cannot open " << path << " for writing\n";
    return;
  }
  fn(os);
}

inline Sample run_one(const Variant& v, int threads, const BenchOptions& opt,
                      bool observe = false) {
  MachineConfig cfg;
  cfg.num_cores = threads;
  cfg.max_lease_time = opt.max_lease_time;
  cfg.max_num_leases = opt.max_num_leases;
  if (opt.min_lease_time > 0) cfg.min_lease_time = opt.min_lease_time;
  if (v.configure) v.configure(cfg);
  if (opt.fast_path != "auto") cfg.fast_path = opt.fast_path == "on";
  Machine m{cfg, opt.seed};
  // Bit-identical to serial, so tables/CSVs stay byte-identical for any
  // --sim-threads value (like --jobs and --fast-path before it).
  m.set_sim_threads(opt.sim_threads);

  auto worker = v.make(m, opt);  // may prefill (and run) on the machine
  if (observe) {
    // Enabled after prefill so spans/samples cover steady state only. The
    // tracer rides along when a trace is requested (its point records become
    // instant events between the spans).
    if (!opt.trace_out.empty()) m.enable_tracing(/*capacity=*/65536);
    ObsOptions oo;
    oo.sample_every = opt.sample_every;
    m.enable_observability(oo);
  }
  const Stats prefill = m.total_stats();
  const Cycle start = m.events().now();

  for (int t = 0; t < threads; ++t) {
    m.spawn(t, [worker, t](Ctx& ctx) { return worker(ctx, t); });
  }
  m.run(/*limit=*/(Cycle)4'000'000'000ull);
  if (!m.all_done()) {
    std::cerr << "WARNING: " << v.name << " @" << threads << " threads hit the watchdog\n";
  }

  Sample s;
  s.variant = v.name;
  s.threads = threads;
  s.cycles = m.events().now() - start;
  s.stats = m.total_stats();
  s.dir_peak_queue = m.directory().peak_queue_depth();
  // Subtract the whole prefill-phase snapshot so the series reflect steady
  // state. (An earlier field-by-field subtraction silently skipped counters
  // added after it was written — msgs_nack, lease/CAS/lock/txn counters —
  // so prefill noise leaked into those columns.)
  s.stats -= prefill;
  s.ops = s.stats.ops_completed;

  if (observe && m.observability() != nullptr) {
    const Observability& obs = *m.observability();
    if (!opt.trace_out.empty()) {
      write_sink(opt.trace_out, [&](std::ostream& os) { obs.write_trace_json(os); });
    }
    if (!opt.profile_out.empty()) {
      write_sink(opt.profile_out, [&](std::ostream& os) { obs.write_profile(os); });
    }
    if (!opt.samples_out.empty()) {
      write_sink(opt.samples_out, [&](std::ostream& os) { obs.write_samples_csv(os); });
    }
  }
  return s;
}

/// Runs `run(i)` for every i in [0, total) on `jobs` host threads, visiting
/// indices in `order` (longest-first scheduling lives with the caller).
/// Each index is an independent deterministic simulation, so the only
/// effect of `jobs` is wall-clock time. The first exception (if any) is
/// rethrown after the pool drains. Shared by run_experiment and the
/// workload sweep driver (bench/sweep.hpp).
inline void run_indexed(std::size_t total, int jobs, const std::vector<std::size_t>& order,
                        const std::function<void(std::size_t)>& run) {
  jobs = std::max(1, std::min(jobs, static_cast<int>(total)));
  if (jobs == 1) {
    for (std::size_t k = 0; k < total; ++k) run(order[k]);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
        if (k >= total) return;
        try {
          run(order[k]);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Resolves --jobs (0 = one per host CPU).
inline int effective_jobs(int jobs) {
  return jobs > 0 ? jobs : std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

/// Runs all variants across the thread sweep and prints the paper-style
/// tables (throughput + energy + traffic). Returns all samples.
inline std::vector<Sample> run_experiment(const std::string& title, const std::string& csv_name,
                                          const std::vector<Variant>& variants,
                                          const BenchOptions& opt) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "machine: " << "1GHz in-order cores, 32KB 4-way L1 (1cy), shared L2 (tag/data 3/8cy), "
            << "64B lines, MSI directory, net " << MachineConfig{}.net_latency
            << "cy/hop; MAX_LEASE_TIME=" << opt.max_lease_time
            << " MAX_NUM_LEASES=" << opt.max_num_leases << "\n";
  std::cout << "workload: " << opt.ops_per_thread << " ops/thread, think 0.."
            << opt.think_max << " cycles, seed " << opt.seed << "\n\n";

  // Each sample is an independent, fully deterministic single-threaded
  // simulation, so the sweep parallelizes across host threads. Results land
  // in fixed slots of the (thread-count major) grid, which is exactly the
  // serial iteration order — tables and CSVs below are byte-identical for
  // any --jobs value. Watchdog warnings go to stderr and may interleave.
  const std::size_t total = opt.threads.size() * variants.size();
  // The observability sinks attach to exactly one sample (one extra
  // simulated machine would double the cost of the largest run; one
  // observed sample keeps the sweep's timing character intact). Default:
  // the last-listed variant — conventionally the lease variant — at the
  // largest thread count, where contention is most interesting.
  const bool obs_on = opt.observability_requested();
  const std::string obs_variant =
      !opt.obs_variant.empty() ? opt.obs_variant : variants.back().name;
  const int obs_threads = opt.obs_threads > 0 ? opt.obs_threads : opt.threads.back();
  auto observes = [&](std::size_t i) {
    return obs_on && variants[i % variants.size()].name == obs_variant &&
           opt.threads[i / variants.size()] == obs_threads;
  };
  std::vector<Sample> samples(total);
  std::vector<std::size_t> order(total);
  std::iota(order.begin(), order.end(), 0);
  // Launch the largest simulations first: a 64-thread sample dominates the
  // critical path, so starting it last would serialize the tail.
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return opt.threads[a / variants.size()] > opt.threads[b / variants.size()];
  });
  run_indexed(total, effective_jobs(opt.jobs), order, [&](std::size_t i) {
    samples[i] = run_one(variants[i % variants.size()],
                         opt.threads[i / variants.size()], opt, observes(i));
  });

  auto series_table = [&](const std::string& metric, auto getter) {
    std::vector<std::string> headers{"threads"};
    for (const auto& v : variants) headers.push_back(v.name);
    Table tbl{headers};
    for (int t : opt.threads) {
      std::vector<Cell> row{static_cast<std::int64_t>(t)};
      for (const auto& v : variants) {
        for (const Sample& s : samples) {
          if (s.threads == t && s.variant == v.name) row.push_back(getter(s));
        }
      }
      tbl.add_row(std::move(row));
    }
    std::cout << "-- " << metric << " --\n";
    tbl.print(std::cout);
    std::cout << "\n";
  };

  series_table("throughput (Mops/s)", [](const Sample& s) { return s.mops_per_sec(); });
  series_table("energy (nJ/op)", [](const Sample& s) { return s.energy_per_op(); });
  series_table("coherence messages / op", [](const Sample& s) { return s.msgs_per_op(); });
  series_table("L1 misses / op", [](const Sample& s) { return s.misses_per_op(); });

  if (!opt.csv_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opt.csv_dir, ec);
    Table csv{{"variant", "threads", "ops", "cycles", "mops_per_sec", "nj_per_op", "msgs_per_op",
               "misses_per_op", "cas_failure_rate", "lock_failed_trylocks", "txn_aborts",
               "leases", "releases_voluntary", "releases_involuntary"}};
    for (const Sample& s : samples) {
      const double failrate =
          s.stats.cas_attempts == 0
              ? 0.0
              : static_cast<double>(s.stats.cas_failures) / static_cast<double>(s.stats.cas_attempts);
      csv.add_row({s.variant, static_cast<std::int64_t>(s.threads), s.ops, s.cycles,
                   s.mops_per_sec(), s.energy_per_op(), s.msgs_per_op(), s.misses_per_op(),
                   failrate, s.stats.lock_failed_trylocks, s.stats.txn_aborts, s.stats.leases_taken,
                   s.stats.releases_voluntary, s.stats.releases_involuntary});
    }
    const std::string path = opt.csv_dir + "/" + csv_name + ".csv";
    if (csv.write_csv(path)) {
      std::cout << "csv: " << path << "\n\n";
    }
  }
  if (obs_on) {
    // Printed here (not in run_one, which may run on a pool thread) so
    // stdout bytes stay deterministic for any --jobs value.
    std::cout << "observed: " << obs_variant << " @" << obs_threads << " threads\n";
    if (!opt.trace_out.empty()) std::cout << "trace: " << opt.trace_out << "\n";
    if (!opt.profile_out.empty()) std::cout << "profile: " << opt.profile_out << "\n";
    if (!opt.samples_out.empty()) std::cout << "samples: " << opt.samples_out << "\n";
    std::cout << "\n";
  }
  return samples;
}

/// Think-time helper used by most workloads.
inline Task<void> think(Ctx& ctx, const BenchOptions& opt) {
  if (opt.think_max > 0) {
    const Cycle w = ctx.rng().next_below(opt.think_max);
    if (w > 0) co_await ctx.work(w);
  }
}

/// Adapts a workload-registry (spec, policy) pair into a bench Variant.
/// Ops / think / seed track the bench flags at run time (--ops, --full,
/// --think, --seed), like every hand-written variant; everything else —
/// distribution, arrival process, clients, prefill — comes from the spec.
/// `display_name` defaults to the policy id.
inline Variant workload_variant(const workload::WorkloadSpec& spec, const std::string& policy,
                                std::string display_name = "") {
  Variant v;
  v.name = display_name.empty() ? policy : std::move(display_name);
  v.configure = workload::make_workload(spec, policy).configure;
  v.make = [spec, policy](Machine& m, const BenchOptions& opt) {
    workload::WorkloadSpec s = spec;
    s.ops = opt.ops_per_thread;
    s.think = opt.think_max;
    s.seed = opt.seed;
    return workload::make_workload(s, policy).build(m);
  };
  return v;
}

/// The shared `main` of the fig/table benches: parse flags (with optional
/// bench-specific extras), build the variants, run the experiment. `opt`
/// carries bench-specific defaults (e.g. fig3_pq's smaller op count).
/// Returns the process exit code.
inline int run_bench_main(int argc, char** argv, const std::string& name, const std::string& title,
                          const std::function<std::vector<Variant>(const BenchOptions&)>& variants,
                          const std::function<void(FlagSet&)>& extra = {}, BenchOptions opt = {}) {
  if (!parse_flags(argc, argv, name, opt, extra)) return 0;
  run_experiment(title, name, variants(opt), opt);
  return 0;
}

}  // namespace lrsim::bench
