// Copyright (c) 2026 lrsim authors. MIT license.
//
// Section 7, "Low Contention": lock-free linked lists, skiplists, binary
// trees, and lock-based hash tables with 20% updates / 80% searches on
// uniform random keys. Expected: leases change throughput by <= ~5%
// ("throughput is the same on these structures").
//
// The variants come from the workload registry (src/workload/): each
// experiment is `ds = <set>, mix = 20/80, mix_shape = dice, keys = 512`
// under the base and lease policies — mix_shape = dice replays the
// pre-registry loop's draw sequence (key, then one d10) so the output is
// byte-identical to the legacy bench (tests/workload_equiv_test.cpp).
// The same runs are reproducible from a config file via workload_sweep
// (docs/WORKLOADS.md).
#include "bench/harness.hpp"

namespace lrsim::bench {
namespace {

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  opt.ops_per_thread = 60;
  if (!parse_flags(argc, argv, "tbl_lowcontention", opt)) return 0;

  workload::WorkloadSpec spec;
  spec.mix = 0.2;
  spec.mix_shape = workload::MixShape::kDice;
  spec.key_range = 512;

  struct Exp {
    std::string title;
    std::string csv;
    workload::WorkloadSpec spec;
  };
  std::vector<Exp> exps;

  spec.ds = "harris_list";
  exps.push_back(
      {"Low contention: Harris lock-free list (20% updates)", "tbl_lowcontention_list", spec});
  spec.ds = "skiplist_set";
  exps.push_back(
      {"Low contention: lock-free skiplist (20% updates)", "tbl_lowcontention_skiplist", spec});
  spec.ds = "bst";
  exps.push_back({"Low contention: external BST (20% updates)", "tbl_lowcontention_bst", spec});
  spec.ds = "hashtable";
  spec.ht_buckets = 1024;  // legacy sizing; the 256/16 default thrashes
  spec.ht_stripes = 128;
  exps.push_back(
      {"Low contention: lock-based hash table (20% updates)", "tbl_lowcontention_hash", spec});

  for (const Exp& e : exps) {
    const std::vector<Variant> variants = {workload_variant(e.spec, "base"),
                                           workload_variant(e.spec, "lease")};
    auto samples = run_experiment(e.title, e.csv, variants, opt);
    // The headline number: lease-vs-base delta per thread count.
    Table delta{{"threads", "lease/base throughput"}};
    for (int t : opt.threads) {
      double base = 0, lease = 0;
      for (const auto& s : samples) {
        if (s.threads != t) continue;
        if (s.variant == "base") base = s.mops_per_sec();
        if (s.variant == "lease") lease = s.mops_per_sec();
      }
      delta.add_row({static_cast<std::int64_t>(t), base > 0 ? lease / base : 0.0});
    }
    delta.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
