// Copyright (c) 2026 lrsim authors. MIT license.
//
// Section 7, "Low Contention": lock-free linked lists, skiplists, binary
// trees, and lock-based hash tables with 20% updates / 80% searches on
// uniform random keys. Expected: leases change throughput by <= ~5%
// ("throughput is the same on these structures").
#include "bench/harness.hpp"
#include "ds/bst.hpp"
#include "ds/harris_list.hpp"
#include "ds/hashtable.hpp"
#include "ds/skiplist_set.hpp"

namespace lrsim::bench {
namespace {

constexpr std::uint64_t kKeyRange = 512;
constexpr int kPrefill = 256;

// 20% updates (insert/remove split evenly), 80% searches.
template <typename SetT>
Task<void> mixed_ops(Ctx& ctx, std::shared_ptr<SetT> s, const BenchOptions& opt) {
  for (int i = 0; i < opt.ops_per_thread; ++i) {
    const std::uint64_t key = 1 + ctx.rng().next_below(kKeyRange);
    const std::uint64_t dice = ctx.rng().next_below(10);
    if (dice < 1) {
      co_await s->insert(ctx, key);
    } else if (dice < 2) {
      co_await s->remove(ctx, key);
    } else {
      co_await s->contains(ctx, key);
    }
    co_await think(ctx, opt);
  }
}

template <typename SetT>
Task<void> prefill_set(Ctx& ctx, std::shared_ptr<SetT> s) {
  for (int i = 0; i < kPrefill; ++i) {
    co_await s->insert(ctx, 1 + ctx.rng().next_below(kKeyRange));
  }
}

template <typename SetT, typename MakeFn>
Variant set_variant(std::string name, bool lease, MakeFn make_set) {
  Variant v;
  v.name = std::move(name);
  v.configure = [lease](MachineConfig& cfg) { cfg.leases_enabled = lease; };
  v.make = [lease, make_set](Machine& m, const BenchOptions& opt) {
    std::shared_ptr<SetT> s = make_set(m, lease);
    m.spawn(0, [s](Ctx& ctx) { return prefill_set(ctx, s); });
    m.run();
    return [s, &opt](Ctx& ctx, int) { return mixed_ops(ctx, s, opt); };
  };
  return v;
}

// Hash table uses a get() lookup instead of contains(); adapt.
struct HashAdapter {
  std::shared_ptr<LockedHashTable> h;
  Task<bool> insert(Ctx& ctx, std::uint64_t k) { co_return co_await h->insert(ctx, k, k); }
  Task<bool> remove(Ctx& ctx, std::uint64_t k) { co_return co_await h->remove(ctx, k); }
  Task<bool> contains(Ctx& ctx, std::uint64_t k) {
    std::optional<std::uint64_t> v = co_await h->get(ctx, k);
    co_return v.has_value();
  }
};

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  opt.ops_per_thread = 60;
  if (!parse_flags(argc, argv, "tbl_lowcontention", opt)) return 0;

  struct Exp {
    std::string title;
    std::string csv;
    std::vector<Variant> variants;
  };
  std::vector<Exp> exps;

  auto make_harris = [](Machine& m, bool lease) {
    return std::make_shared<HarrisList>(m, HarrisOptions{.use_lease = lease});
  };
  exps.push_back({"Low contention: Harris lock-free list (20% updates)", "tbl_lowcontention_list",
                  {set_variant<HarrisList>("base", false, make_harris),
                   set_variant<HarrisList>("lease", true, make_harris)}});

  auto make_skip = [](Machine& m, bool lease) {
    return std::make_shared<LockFreeSkipList>(m, LfSkipListOptions{.use_lease = lease});
  };
  exps.push_back({"Low contention: lock-free skiplist (20% updates)", "tbl_lowcontention_skiplist",
                  {set_variant<LockFreeSkipList>("base", false, make_skip),
                   set_variant<LockFreeSkipList>("lease", true, make_skip)}});

  auto make_bst = [](Machine& m, bool lease) {
    return std::make_shared<ExternalBst>(m, BstOptions{.use_lease = lease});
  };
  exps.push_back({"Low contention: external BST (20% updates)", "tbl_lowcontention_bst",
                  {set_variant<ExternalBst>("base", false, make_bst),
                   set_variant<ExternalBst>("lease", true, make_bst)}});

  auto make_hash = [](Machine& m, bool lease) {
    auto h = std::make_shared<LockedHashTable>(
        m, HashTableOptions{.buckets = 1024, .stripes = 128, .use_lease = lease});
    return std::make_shared<HashAdapter>(HashAdapter{h});
  };
  exps.push_back({"Low contention: lock-based hash table (20% updates)", "tbl_lowcontention_hash",
                  {set_variant<HashAdapter>("base", false, make_hash),
                   set_variant<HashAdapter>("lease", true, make_hash)}});

  for (const Exp& e : exps) {
    auto samples = run_experiment(e.title, e.csv, e.variants, opt);
    // The headline number: lease-vs-base delta per thread count.
    Table delta{{"threads", "lease/base throughput"}};
    for (int t : opt.threads) {
      double base = 0, lease = 0;
      for (const auto& s : samples) {
        if (s.threads != t) continue;
        if (s.variant == "base") base = s.mops_per_sec();
        if (s.variant == "lease") lease = s.mops_per_sec();
      }
      delta.add_row({static_cast<std::int64_t>(t), base > 0 ? lease / base : 0.0});
    }
    delta.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
