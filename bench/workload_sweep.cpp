// Copyright (c) 2026 lrsim authors. MIT license.
//
// workload_sweep: expand a workload config file into a run matrix and emit
// the schema-stable sweep CSV (bench/sweep.hpp; format in docs/WORKLOADS.md).
//
//   workload_sweep --config configs/ci_sweep.toml --csv out.csv --jobs 4
//   workload_sweep --config configs/fig2_stack.toml          # CSV on stdout
//   workload_sweep --config ... --list                       # matrix only
#include <iostream>

#include "bench/sweep.hpp"

namespace lrsim::bench {
namespace {

int main_impl(int argc, char** argv) {
  FlagSet flags{"workload_sweep"};
  std::string config;
  std::string csv;
  int jobs = 1;
  int sim_threads = 0;
  bool list = false;
  flags.add("config", &config, "workload config file driving the sweep (required)");
  flags.add("csv", &csv, "output CSV path (empty = stdout)");
  flags.add("jobs", &jobs, "host threads running matrix points in parallel (0 = one per host CPU)");
  flags.add("sim-threads", &sim_threads,
            "worker threads inside each simulation (0 = serial kernel; bit-identical)");
  flags.add("list", &list, "print the expanded run matrix without running it");
  try {
    flags.parse(argc, argv);
  } catch (const FlagSet::FlagHelp& h) {
    std::cout << h.text;
    return 0;
  }
  if (config.empty()) {
    std::cerr << "error: --config is required\n" << flags.usage();
    return 1;
  }

  const auto cfg = workload::ConfigFile::parse_file(config);
  const SweepConfig sc = parse_sweep_config(cfg);
  const std::vector<SweepPoint> points = expand_sweep(sc);
  if (list) {
    Table tbl{{"policy", "threads", "clients", "key_range", "mix", "dist", "arrival"}};
    for (const SweepPoint& p : points) {
      tbl.add_row({p.policy, static_cast<std::int64_t>(p.threads),
                   static_cast<std::int64_t>(p.spec.clients == 0 ? p.threads : p.spec.clients),
                   p.spec.key_range, workload::mix_string(p.spec.mix),
                   std::string(dist_name(p.spec.dist.kind)),
                   std::string(arrival_name(p.spec.arrival.kind))});
    }
    std::cout << points.size() << " runs:\n";
    tbl.print(std::cout);
    return 0;
  }

  const std::vector<SweepRow> rows = run_sweep(sc, jobs, sim_threads);
  const Table out = sweep_csv_table(rows);
  if (csv.empty()) {
    out.write_csv(std::cout);
  } else {
    if (!out.write_csv(csv)) {
      std::cerr << "error: cannot write " << csv << "\n";
      return 1;
    }
    std::cout << "csv: " << csv << " (" << rows.size() << " runs)\n";
  }
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) {
  try {
    return lrsim::bench::main_impl(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
