// Copyright (c) 2026 lrsim authors. MIT license.
//
// Ablation (DESIGN.md §5): sensitivity of the leased Treiber stack to
// MAX_LEASE_TIME. The paper asserts results hold "even if we decrease
// MAX_LEASE_TIME to 1K cycles"; this sweep shows where the mechanism
// actually breaks down — leases shorter than the read-CAS window start
// expiring involuntarily and the benefit collapses toward the baseline.
#include "bench/harness.hpp"
#include "ds/treiber_stack.hpp"

namespace lrsim::bench {
namespace {

constexpr int kPrefill = 256;

Variant stack_variant(std::string name, bool leases, Cycle mlt, bool adaptive = false) {
  Variant v;
  v.name = std::move(name);
  v.configure = [leases, mlt, adaptive](MachineConfig& cfg) {
    cfg.leases_enabled = leases;
    if (mlt > 0) cfg.max_lease_time = mlt;
    if (adaptive) cfg.lease_policy = LeasePolicy::kAdaptive;
  };
  v.make = [leases](Machine& m, const BenchOptions& opt) {
    auto stack = std::make_shared<TreiberStack>(m, TreiberOptions{.use_lease = leases});
    m.spawn(0, [stack](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kPrefill; ++i) co_await stack->push(ctx, 5);
    });
    m.run();
    return [stack, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        if (ctx.rng().next_bool(0.5)) {
          co_await stack->push(ctx, 7);
        } else {
          co_await stack->pop(ctx);
        }
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  if (!parse_flags(argc, argv, "ablation_lease_time", opt)) return 0;
  auto samples = run_experiment("Ablation: MAX_LEASE_TIME sweep on the leased Treiber stack",
                                "ablation_lease_time",
                                {stack_variant("base", false, 0),
                                 stack_variant("lease-50", true, 50),
                                 stack_variant("lease-200", true, 200),
                                 stack_variant("lease-1k", true, 1000),
                                 stack_variant("lease-20k", true, 20000),
                                 stack_variant("lease-adaptive", true, 0, /*adaptive=*/true)},
                                opt);
  // Raw expiry counts are incomparable across thread counts (more threads run
  // more total ops), so the per-op rate rides alongside them.
  Table invol{{"threads", "variant", "involuntary releases", "voluntary releases", "invol/op"}};
  for (const auto& s : samples) {
    if (s.variant == "base") continue;
    const double rate = s.ops == 0 ? 0.0
                                   : static_cast<double>(s.stats.releases_involuntary) /
                                         static_cast<double>(s.ops);
    invol.add_row({static_cast<std::int64_t>(s.threads), s.variant,
                   s.stats.releases_involuntary, s.stats.releases_voluntary, rate});
  }
  std::cout << "-- involuntary releases (leases expiring mid-operation) --\n";
  invol.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
