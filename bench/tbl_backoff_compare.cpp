// Copyright (c) 2026 lrsim authors. MIT license.
//
// Section 7, "Comparison with Backoffs": randomized exponential backoff on
// the Treiber stack vs the base implementation vs leases.
//
// Expected shape: "adding backoffs improves performance by up to 3x over
// the base implementation, but is considerably inferior to using leases"
// (the paper quotes leases ~2.5x above even a highly tuned backoff stack).
//
// Variants are built through the workload registry (spec keys use_backoff /
// backoff_min / backoff_max / lease_policy), so config-file sweeps and this
// table share one code path; tests/workload_equiv_test.cpp pins the refactor
// byte-for-byte against the pre-registry loop. `lease-adaptive` runs the
// leased stack under the per-line AIMD lease-duration controller
// (docs/ENGINE.md).
#include "bench/harness.hpp"
#include "workload/spec.hpp"

namespace lrsim::bench {
namespace {

Variant stack_variant(const std::string& name, const std::string& policy, std::int64_t bo_min,
                      std::int64_t bo_max, LeasePolicy lease_policy = LeasePolicy::kStatic) {
  workload::WorkloadSpec spec;
  spec.ds = "treiber_stack";
  spec.mix = 0.5;
  spec.backoff_min = bo_min;
  spec.backoff_max = bo_max;
  spec.lease_policy = lease_policy;
  return workload_variant(spec, policy, name);
}

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  if (!parse_flags(argc, argv, "tbl_backoff_compare", opt)) return 0;
  run_experiment("Backoff comparison (Section 7): Treiber stack",
                 "tbl_backoff_compare",
                 {stack_variant("base", "base", 0, 0),
                  stack_variant("backoff", "backoff", 64, 4096),
                  stack_variant("backoff-tuned", "backoff", 256, 16384),
                  stack_variant("lease", "lease", 0, 0),
                  stack_variant("lease-adaptive", "lease", 0, 0, LeasePolicy::kAdaptive)},
                 opt);
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
