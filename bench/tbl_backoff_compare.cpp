// Copyright (c) 2026 lrsim authors. MIT license.
//
// Section 7, "Comparison with Backoffs": randomized exponential backoff on
// the Treiber stack vs the base implementation vs leases.
//
// Expected shape: "adding backoffs improves performance by up to 3x over
// the base implementation, but is considerably inferior to using leases"
// (the paper quotes leases ~2.5x above even a highly tuned backoff stack).
#include "bench/harness.hpp"
#include "ds/treiber_stack.hpp"

namespace lrsim::bench {
namespace {

constexpr int kPrefill = 256;

Variant stack_variant(std::string name, bool leases, bool backoff, Cycle bo_min, Cycle bo_max) {
  Variant v;
  v.name = std::move(name);
  v.configure = [leases](MachineConfig& cfg) { cfg.leases_enabled = leases; };
  v.make = [leases, backoff, bo_min, bo_max](Machine& m, const BenchOptions& opt) {
    auto stack = std::make_shared<TreiberStack>(
        m, TreiberOptions{.use_lease = leases,
                          .use_backoff = backoff,
                          .backoff_min = bo_min,
                          .backoff_max = bo_max});
    m.spawn(0, [stack](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kPrefill; ++i) co_await stack->push(ctx, 5);
    });
    m.run();
    return [stack, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        if (ctx.rng().next_bool(0.5)) {
          co_await stack->push(ctx, 7);
        } else {
          co_await stack->pop(ctx);
        }
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  if (!parse_flags(argc, argv, "tbl_backoff_compare", opt)) return 0;
  run_experiment("Backoff comparison (Section 7): Treiber stack",
                 "tbl_backoff_compare",
                 {stack_variant("base", false, false, 0, 0),
                  stack_variant("backoff", false, true, 64, 4096),
                  stack_variant("backoff-tuned", false, true, 256, 16384),
                  stack_variant("lease", true, false, 0, 0)},
                 opt);
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
