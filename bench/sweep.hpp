// Copyright (c) 2026 lrsim authors. MIT license.
//
// The workload sweep driver: expands one config file into a
// policies x threads x keys x mixes run matrix, executes every point on the
// shared parallel harness (bench/harness.hpp run_indexed — samples land in
// fixed slots, so the CSV is byte-identical for any --jobs value), and
// emits a schema-stable CSV consumable by scripts/bench_check.py --sweep.
//
// Lives in a header so tests (tests/sweep_csv_golden_test.cpp) can run tiny
// sweeps in-process; bench/workload_sweep.cpp is the thin CLI wrapper.
//
// Config format (docs/WORKLOADS.md):
//
//   [workload]
//   ds = treiber_stack
//   policies = base, lease     # default: every policy registered for ds
//   mix = 50/50                # [sweep] mixes overrides
//   ...                        # dist/arrival/ops/think/seed/... (spec.hpp)
//
//   [sweep]
//   threads = 2, 4, 8
//   keys = 1024, 65536         # keyed structures only
//   mixes = 50/50, 90/10
//   clients = 1000, 100000     # open-loop only (closed: clients == threads)
//   lease_policies = static, adaptive
//   lease_times = 0, 200, 20000  # lease-knob structures only (0 = policy)
//   max_lease_time = 20000
//   max_num_leases = 4
//   min_lease_time = 64          # adaptive cold start / lower clamp
#pragma once

#include <cstdint>
#include <numeric>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/harness.hpp"

namespace lrsim::bench {

/// CSV context column: which build flavor produced the numbers. Debug and
/// release runs simulate identically (same ops/cycles) but wall-clock and
/// any perf comparison of host time are meaningless across flavors, so the
/// column lets bench_check.py refuse to treat a debug sweep as a baseline.
inline const char* sim_build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

/// One parsed sweep: the base workload plus the axes that vary.
struct SweepConfig {
  workload::WorkloadSpec base;
  std::vector<std::string> policies;      ///< Axis 1 (default: all for ds).
  std::vector<int> threads{8};            ///< Axis 2 (simulated cores).
  std::vector<std::uint64_t> keys;        ///< Axis 3 (default: {base.key_range}).
  std::vector<double> mixes;              ///< Axis 4 (default: {base.mix}).
  std::vector<int> clients;               ///< Axis 5 (default: {base.clients}).
  /// Axis 6/7 (default: the base spec's single value). Innermost, after
  /// clients, so configs without them keep their exact row order.
  std::vector<LeasePolicy> lease_policies;
  std::vector<std::int64_t> lease_times;
  Cycle max_lease_time = 20000;           ///< Paper default (Table 1).
  int max_num_leases = 4;
  Cycle min_lease_time = 0;               ///< Adaptive cold start (0 = default).
};

/// One point of the expanded matrix: a concrete (policy, threads, spec).
struct SweepPoint {
  std::string policy;
  int threads = 0;
  workload::WorkloadSpec spec;  ///< base with key_range/mix overridden.
};

/// A executed point: the point plus its measured sample.
struct SweepRow {
  SweepPoint point;
  Sample sample;
};

inline SweepConfig parse_sweep_config(const workload::ConfigFile& cfg) {
  SweepConfig sc;
  sc.base = workload::parse_workload_spec(cfg);
  sc.policies = cfg.has("workload", "policies") ? cfg.get_list("workload", "policies")
                                                : workload::policies_for(sc.base.ds);
  if (sc.policies.empty())
    throw std::invalid_argument(cfg.origin() + ": [workload] policies is empty");
  // Resolve each policy eagerly so a typo fails at parse time, not mid-sweep.
  for (const std::string& p : sc.policies) (void)workload::make_workload(sc.base, p);

  static const std::vector<std::string> kKnown = {"threads",        "keys",
                                                  "mixes",          "clients",
                                                  "lease_policies", "lease_times",
                                                  "max_lease_time", "max_num_leases",
                                                  "min_lease_time"};
  for (const std::string& k : cfg.keys("sweep")) {
    bool known = false;
    for (const std::string& ok : kKnown) known = known || (k == ok);
    if (!known) throw std::invalid_argument(cfg.origin() + ": unknown [sweep] key `" + k + "`");
  }
  auto int_list = [&](const char* key, std::int64_t min) {
    std::vector<std::int64_t> out;
    for (const std::string& s : cfg.get_list("sweep", key)) {
      std::size_t pos = 0;
      std::int64_t v = 0;
      try {
        v = std::stoll(s, &pos, 0);
      } catch (const std::exception&) {
        pos = 0;
      }
      if (pos != s.size() || v < min)
        throw std::invalid_argument(cfg.origin() + ": bad [sweep] " + key + " entry `" + s + "`");
      out.push_back(v);
    }
    return out;
  };
  if (cfg.has("sweep", "threads")) {
    sc.threads.clear();
    for (std::int64_t t : int_list("threads", 1)) sc.threads.push_back(static_cast<int>(t));
  }
  for (std::int64_t k : int_list("keys", 1)) sc.keys.push_back(static_cast<std::uint64_t>(k));
  for (const std::string& s : cfg.get_list("sweep", "mixes"))
    sc.mixes.push_back(workload::parse_mix(s));
  // Open-loop only: each client count becomes spec.clients (innermost axis,
  // so configs without it keep their exact row order). Validate here so a
  // closed-loop config with a clients axis fails at parse time.
  for (std::int64_t c : int_list("clients", 0)) {
    if (c > workload::WorkloadSpec::kMaxClients)
      throw std::invalid_argument(cfg.origin() + ": [sweep] clients entry exceeds 2^30");
    sc.clients.push_back(static_cast<int>(c));
  }
  if (!sc.clients.empty() && !sc.base.arrival.open_loop())
    throw std::invalid_argument(cfg.origin() +
                                ": [sweep] clients requires an open-loop arrival "
                                "(closed loops pin clients == threads)");
  for (const std::string& s : cfg.get_list("sweep", "lease_policies"))
    sc.lease_policies.push_back(workload::parse_lease_policy(s));
  for (std::int64_t t : int_list("lease_times", 0)) sc.lease_times.push_back(t);
  if (sc.keys.empty()) sc.keys.push_back(sc.base.key_range);
  if (sc.mixes.empty()) sc.mixes.push_back(sc.base.mix);
  if (sc.clients.empty()) sc.clients.push_back(sc.base.clients);
  if (sc.lease_policies.empty()) sc.lease_policies.push_back(sc.base.lease_policy);
  if (sc.lease_times.empty()) sc.lease_times.push_back(sc.base.lease_time);
  sc.max_lease_time =
      static_cast<Cycle>(cfg.get_int("sweep", "max_lease_time", static_cast<std::int64_t>(sc.max_lease_time)));
  sc.max_num_leases = static_cast<int>(cfg.get_int("sweep", "max_num_leases", sc.max_num_leases));
  sc.min_lease_time = static_cast<Cycle>(
      cfg.get_int("sweep", "min_lease_time", static_cast<std::int64_t>(sc.min_lease_time)));
  // A lease_times axis needs a structure with a lease_time knob; probe every
  // policy eagerly so a bad combination fails at parse time, not mid-sweep.
  for (std::int64_t t : sc.lease_times) {
    if (t == 0) continue;
    workload::WorkloadSpec probe = sc.base;
    probe.lease_time = t;
    for (const std::string& p : sc.policies) (void)workload::make_workload(probe, p);
    break;
  }
  return sc;
}

/// Expands the matrix in a fixed order (policy-major, then threads, keys,
/// mixes, clients) — the CSV row order, independent of how the runs are
/// scheduled.
inline std::vector<SweepPoint> expand_sweep(const SweepConfig& sc) {
  std::vector<SweepPoint> points;
  points.reserve(sc.policies.size() * sc.threads.size() * sc.keys.size() * sc.mixes.size() *
                 sc.clients.size() * sc.lease_policies.size() * sc.lease_times.size());
  for (const std::string& policy : sc.policies) {
    for (int t : sc.threads) {
      for (std::uint64_t k : sc.keys) {
        for (double mix : sc.mixes) {
          for (int clients : sc.clients) {
            for (LeasePolicy lp : sc.lease_policies) {
              for (std::int64_t lt : sc.lease_times) {
                SweepPoint p{policy, t, sc.base};
                p.spec.key_range = k;
                p.spec.mix = mix;
                p.spec.clients = clients;
                p.spec.lease_policy = lp;
                p.spec.lease_time = lt;
                points.push_back(std::move(p));
              }
            }
          }
        }
      }
    }
  }
  return points;
}

/// Runs every point of the matrix. Row order == expand_sweep order for any
/// `jobs`; scheduling launches the largest simulations first (same policy
/// as run_experiment).
inline std::vector<SweepRow> run_sweep(const SweepConfig& sc, int jobs = 1, int sim_threads = 0) {
  const std::vector<SweepPoint> points = expand_sweep(sc);
  std::vector<SweepRow> rows(points.size());
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return points[a].threads > points[b].threads;
  });
  run_indexed(points.size(), effective_jobs(jobs), order, [&](std::size_t i) {
    const SweepPoint& p = points[i];
    BenchOptions bo;
    bo.threads = {p.threads};
    bo.ops_per_thread = p.spec.ops;
    bo.think_max = p.spec.think;
    bo.seed = p.spec.seed;
    bo.max_lease_time = sc.max_lease_time;
    bo.max_num_leases = sc.max_num_leases;
    bo.min_lease_time = sc.min_lease_time;
    bo.sim_threads = sim_threads;
    bo.csv_dir.clear();
    rows[i] = SweepRow{p, run_one(workload_variant(p.spec, p.policy), p.threads, bo)};
  });
  return rows;
}

/// The schema-stable sweep CSV header. Golden-pinned by
/// tests/sweep_csv_golden_test.cpp: *append* columns, never rename or
/// reorder, so plotting scripts and bench_check.py baselines stay valid.
inline const std::vector<std::string>& sweep_csv_header() {
  static const std::vector<std::string> kHeader = {
      "ds",          "policy",      "threads",       "clients",          "key_range",
      "dist",        "dist_param",  "mix",           "arrival",          "arrival_param",
      "seed",        "ops",         "cycles",        "mops_per_sec",     "nj_per_op",
      "msgs_per_op", "misses_per_op", "cas_failure_rate", "leases",
      "releases_voluntary", "releases_involuntary", "sim_build_type",
      "lease_policy", "lease_time"};
  return kHeader;
}

inline Table sweep_csv_table(const std::vector<SweepRow>& rows) {
  Table csv{sweep_csv_header()};
  for (const SweepRow& r : rows) {
    const workload::WorkloadSpec& s = r.point.spec;
    const Sample& m = r.sample;
    const double failrate =
        m.stats.cas_attempts == 0
            ? 0.0
            : static_cast<double>(m.stats.cas_failures) / static_cast<double>(m.stats.cas_attempts);
    csv.add_row({s.ds, r.point.policy, static_cast<std::int64_t>(r.point.threads),
                 static_cast<std::int64_t>(s.clients == 0 ? r.point.threads : s.clients),
                 s.key_range, std::string(dist_name(s.dist.kind)),
                 workload::dist_param_string(s.dist), workload::mix_string(s.mix),
                 std::string(arrival_name(s.arrival.kind)),
                 s.arrival.open_loop() ? std::to_string(s.arrival.period) : std::string("-"),
                 s.seed, m.ops, m.cycles, m.mops_per_sec(), m.energy_per_op(), m.msgs_per_op(),
                 m.misses_per_op(), failrate, m.stats.leases_taken, m.stats.releases_voluntary,
                 m.stats.releases_involuntary, std::string(sim_build_type()),
                 std::string(lease_policy_name(s.lease_policy)), s.lease_time});
  }
  return csv;
}

}  // namespace lrsim::bench
