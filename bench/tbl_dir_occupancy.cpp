// Copyright (c) 2026 lrsim authors. MIT license.
//
// Section 5, "Directory Structure and Queuing": "leases may increase the
// maximum queuing occupancy over time, and may thus require the directory
// to have larger queues. However, in the average case, leases enable the
// system to make more forward progress ... reducing system load."
//
// This table measures exactly that: peak per-line directory queue depth and
// total request volume, base vs lease, on the contended stack and counter.
#include "bench/harness.hpp"
#include "ds/counter.hpp"
#include "ds/treiber_stack.hpp"

namespace lrsim::bench {
namespace {

constexpr int kPrefill = 256;

Variant stack_variant(std::string name, bool leases) {
  Variant v;
  v.name = std::move(name);
  v.configure = [leases](MachineConfig& cfg) { cfg.leases_enabled = leases; };
  v.make = [leases](Machine& m, const BenchOptions& opt) {
    auto stack = std::make_shared<TreiberStack>(m, TreiberOptions{.use_lease = leases});
    m.spawn(0, [stack](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kPrefill; ++i) co_await stack->push(ctx, 5);
    });
    m.run();
    return [stack, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        if (ctx.rng().next_bool(0.5)) {
          co_await stack->push(ctx, 7);
        } else {
          co_await stack->pop(ctx);
        }
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

Variant counter_variant(std::string name, CounterLockKind kind) {
  Variant v;
  v.name = std::move(name);
  v.configure = [](MachineConfig& cfg) { cfg.leases_enabled = true; };
  v.make = [kind](Machine& m, const BenchOptions& opt) {
    auto counter = std::make_shared<LockedCounter>(m, kind);
    return [counter, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        co_await counter->increment(ctx);
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

void occupancy_table(const std::vector<Sample>& samples) {
  Table t{{"threads", "variant", "peak dir queue", "total requests", "requests/op"}};
  for (const auto& s : samples) {
    const std::uint64_t reqs = s.stats.msgs_gets + s.stats.msgs_getx;
    t.add_row({static_cast<std::int64_t>(s.threads), s.variant,
               static_cast<std::uint64_t>(s.dir_peak_queue), reqs,
               s.ops ? static_cast<double>(reqs) / static_cast<double>(s.ops) : 0.0});
  }
  std::cout << "-- directory occupancy --\n";
  t.print(std::cout);
  std::cout << "\n";
}

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  if (!parse_flags(argc, argv, "tbl_dir_occupancy", opt)) return 0;

  auto s1 = run_experiment("Directory occupancy (Section 5): Treiber stack",
                           "tbl_dir_occupancy_stack",
                           {stack_variant("base", false), stack_variant("lease", true)}, opt);
  occupancy_table(s1);

  auto s2 = run_experiment("Directory occupancy (Section 5): TTS counter",
                           "tbl_dir_occupancy_counter",
                           {counter_variant("tts", CounterLockKind::kTTS),
                            counter_variant("tts+lease", CounterLockKind::kTTSLease)},
                           opt);
  occupancy_table(s2);
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
