// Copyright (c) 2026 lrsim authors. MIT license.
//
// Ablation (Section 8 "Other Protocols"): Lease/Release under MSI vs MESI.
// The paper argues the mechanism carries over unchanged; this bench shows
// (a) the lease win is protocol-independent on the contended stack, and
// (b) MESI's own benefit (silent E->M upgrades) is orthogonal — visible in
// messages/op on the baseline, largely subsumed by the lease's exclusive
// prefetch on the leased variant.
#include "bench/harness.hpp"
#include "ds/treiber_stack.hpp"

namespace lrsim::bench {
namespace {

constexpr int kPrefill = 256;

Variant stack_variant(std::string name, CoherenceProtocol proto, bool leases) {
  Variant v;
  v.name = std::move(name);
  v.configure = [proto, leases](MachineConfig& cfg) {
    cfg.protocol = proto;
    cfg.leases_enabled = leases;
  };
  v.make = [leases](Machine& m, const BenchOptions& opt) {
    auto stack = std::make_shared<TreiberStack>(m, TreiberOptions{.use_lease = leases});
    m.spawn(0, [stack](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kPrefill; ++i) co_await stack->push(ctx, 5);
    });
    m.run();
    return [stack, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        if (ctx.rng().next_bool(0.5)) {
          co_await stack->push(ctx, 7);
        } else {
          co_await stack->pop(ctx);
        }
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  if (!parse_flags(argc, argv, "ablation_protocols", opt)) return 0;
  run_experiment("Ablation: Lease/Release under MSI vs MESI vs MOESI (Treiber stack)",
                 "ablation_protocols",
                 {stack_variant("msi-base", CoherenceProtocol::kMSI, false),
                  stack_variant("msi-lease", CoherenceProtocol::kMSI, true),
                  stack_variant("mesi-base", CoherenceProtocol::kMESI, false),
                  stack_variant("mesi-lease", CoherenceProtocol::kMESI, true),
                  stack_variant("moesi-base", CoherenceProtocol::kMOESI, false),
                  stack_variant("moesi-lease", CoherenceProtocol::kMOESI, true)},
                 opt);
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
