// Copyright (c) 2026 lrsim authors. MIT license.
//
// Two further design ablations on the contended Treiber stack:
//
//  * flat average-latency network vs a Graphite-style 2D-mesh NoC with
//    per-hop latencies and address-interleaved directory banks — checks
//    that the lease win is not an artifact of the flat model;
//  * parked probes (the paper's design) vs NACK-based transient blocking
//    (Section 5 notes Lease/Release fits NACK protocols) — parking should
//    match or beat NACKs on throughput and clearly beat them on traffic;
//  * the futility predictor (Section 5 "Speculative Execution") under a
//    mixed workload with one chronically misused lease site.
#include "bench/harness.hpp"
#include "ds/treiber_stack.hpp"

namespace lrsim::bench {
namespace {

constexpr int kPrefill = 256;

std::function<std::function<Task<void>(Ctx&, int)>(Machine&, const BenchOptions&)>
stack_workload(bool leases) {
  return [leases](Machine& m, const BenchOptions& opt) {
    auto stack = std::make_shared<TreiberStack>(m, TreiberOptions{.use_lease = leases});
    m.spawn(0, [stack](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kPrefill; ++i) co_await stack->push(ctx, 5);
    });
    m.run();
    return [stack, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        if (ctx.rng().next_bool(0.5)) {
          co_await stack->push(ctx, 7);
        } else {
          co_await stack->pop(ctx);
        }
        co_await think(ctx, opt);
      }
    };
  };
}

Variant mesh_variant(std::string name, bool mesh, bool leases) {
  Variant v;
  v.name = std::move(name);
  v.configure = [mesh, leases](MachineConfig& cfg) {
    cfg.mesh_topology = mesh;
    cfg.leases_enabled = leases;
  };
  v.make = stack_workload(leases);
  return v;
}

Variant nack_variant(std::string name, bool nack) {
  Variant v;
  v.name = std::move(name);
  v.configure = [nack](MachineConfig& cfg) {
    cfg.leases_enabled = true;
    cfg.nack_on_lease = nack;
  };
  v.make = stack_workload(true);
  return v;
}

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  if (!parse_flags(argc, argv, "ablation_mesh_nack", opt)) return 0;

  run_experiment("Ablation: flat network vs 2D-mesh NoC (Treiber stack)", "ablation_mesh",
                 {mesh_variant("flat-base", false, false), mesh_variant("flat-lease", false, true),
                  mesh_variant("mesh-base", true, false), mesh_variant("mesh-lease", true, true)},
                 opt);

  auto nack_samples = run_experiment(
      "Ablation: parked probes vs NACK retries on leased lines", "ablation_nack",
      {nack_variant("park", false), nack_variant("nack", true)}, opt);
  Table nacks{{"threads", "variant", "nack msgs", "probes parked"}};
  for (const auto& s : nack_samples) {
    nacks.add_row({static_cast<std::int64_t>(s.threads), s.variant, s.stats.msgs_nack,
                   s.stats.probes_queued});
  }
  std::cout << "-- NACK traffic --\n";
  nacks.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
