// Copyright (c) 2026 lrsim authors. MIT license.
//
// Section 7, "Comparison with Backoffs and Optimized Implementations":
// "Using single leases, the relatively simple classic data structure
// designs such as the Treiber stack match or improve the performance of
// optimized, complex implementations" — the paper names tuned backoffs,
// elimination, and flat combining as that comparison set.
//
// Variants: plain Treiber, tuned backoff, elimination-backoff stack, flat-
// combining stack, and the leased Treiber stack. Expected ordering at high
// thread counts: base < backoff <= {elimination, flat-combining} < lease.
#include "bench/harness.hpp"
#include "ds/elimination_stack.hpp"
#include "ds/fc_stack.hpp"
#include "ds/treiber_stack.hpp"

namespace lrsim::bench {
namespace {

constexpr int kPrefill = 256;

template <typename StackT>
std::function<Task<void>(Ctx&, int)> stack_ops(std::shared_ptr<StackT> s, const BenchOptions& opt) {
  return [s, &opt](Ctx& ctx, int) -> Task<void> {
    for (int i = 0; i < opt.ops_per_thread; ++i) {
      if (ctx.rng().next_bool(0.5)) {
        co_await s->push(ctx, 7);
      } else {
        co_await s->pop(ctx);
      }
      co_await think(ctx, opt);
    }
  };
}

template <typename StackT>
void prefill(Machine& m, std::shared_ptr<StackT> s) {
  m.spawn(0, [s](Ctx& ctx) -> Task<void> {
    for (int i = 0; i < kPrefill; ++i) co_await s->push(ctx, 5);
  });
  m.run();
}

Variant treiber_variant(std::string name, bool lease, bool backoff) {
  Variant v;
  v.name = std::move(name);
  v.configure = [lease](MachineConfig& cfg) { cfg.leases_enabled = lease; };
  v.make = [lease, backoff](Machine& m, const BenchOptions& opt) {
    auto s = std::make_shared<TreiberStack>(
        m, TreiberOptions{.use_lease = lease,
                          .use_backoff = backoff,
                          .backoff_min = 256,
                          .backoff_max = 16384});
    prefill(m, s);
    return stack_ops(s, opt);
  };
  return v;
}

Variant elimination_variant() {
  Variant v;
  v.name = "elimination";
  v.configure = [](MachineConfig& cfg) { cfg.leases_enabled = false; };
  v.make = [](Machine& m, const BenchOptions& opt) {
    auto s = std::make_shared<EliminationStack>(m, EliminationOptions{.slots = 8, .wait = 400});
    prefill(m, s);
    return stack_ops(s, opt);
  };
  return v;
}

Variant fc_variant() {
  Variant v;
  v.name = "flat-combining";
  v.configure = [](MachineConfig& cfg) { cfg.leases_enabled = false; };
  v.make = [](Machine& m, const BenchOptions& opt) {
    auto s = std::make_shared<FcStack>(m, FcOptions{.max_threads = m.config().num_cores});
    prefill(m, s);
    return stack_ops(s, opt);
  };
  return v;
}

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  if (!parse_flags(argc, argv, "tbl_optimized_compare", opt)) return 0;
  run_experiment(
      "Optimized-implementation comparison (Section 7): stacks",
      "tbl_optimized_compare",
      {treiber_variant("base", false, false), treiber_variant("backoff-tuned", false, true),
       elimination_variant(), fc_variant(), treiber_variant("lease", true, false)},
      opt);
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
