// Copyright (c) 2026 lrsim authors. MIT license.
//
// Figure 4 (MultiQueues): "threads alternate between insert and deleteMin
// operations ... on a set of eight queues", base vs MultiLease on the two
// deleteMin locks (Algorithm 4).
//
// Expected shape: a moderate but consistent lease win (the paper reports
// ~50%, limited by the long sequential critical sections).
#include "bench/harness.hpp"
#include "ds/multiqueue.hpp"

namespace lrsim::bench {
namespace {

constexpr int kPrefill = 512;

Variant mq_variant(std::string name, bool lease) {
  Variant v;
  v.name = std::move(name);
  v.configure = [lease](MachineConfig& cfg) { cfg.leases_enabled = lease; };
  v.make = [lease](Machine& m, const BenchOptions& opt) {
    auto mq = std::make_shared<MultiQueue>(
        m, MultiQueueOptions{.num_queues = 8, .capacity = 8192, .use_lease = lease});
    m.spawn(0, [mq](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kPrefill * 4; ++i) co_await mq->insert(ctx, 1 + ctx.rng().next_below(1 << 20));
    });
    m.run();
    return [mq, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        // Alternate insert / deleteMin, as in the paper's benchmark.
        if (i % 2 == 0) {
          co_await mq->insert(ctx, 1 + ctx.rng().next_below(1 << 20));
        } else {
          co_await mq->delete_min(ctx);
        }
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  opt.ops_per_thread = 60;
  if (!parse_flags(argc, argv, "fig4_multiqueue", opt)) return 0;
  run_experiment("Figure 4 (MultiQueues): 8 queues, alternating insert/deleteMin",
                 "fig4_multiqueue", {mq_variant("base", false), mq_variant("multi-lease", true)},
                 opt);
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
