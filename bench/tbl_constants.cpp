// Copyright (c) 2026 lrsim authors. MIT license.
//
// Section 7 "constants" claims: with leases, per-operation cache misses and
// coherence messages stay ~constant as contention grows ("average cache
// misses per operation for the stack are constant around 2.1 from 4 to 64
// threads ... average coherence messages per operation constant around 9.5
// ... even if we decrease MAX_LEASE_TIME to 1K cycles"), while on the base
// implementation misses/op grow ~5x at 64 threads.
//
// This bench prints exactly those series: stack misses/op and msgs/op for
// base, lease @ 20K, and lease @ 1K cycles.
#include "bench/harness.hpp"
#include "ds/treiber_stack.hpp"

namespace lrsim::bench {
namespace {

constexpr int kPrefill = 256;

Variant stack_variant(std::string name, bool leases, Cycle max_lease_time) {
  Variant v;
  v.name = std::move(name);
  v.configure = [leases, max_lease_time](MachineConfig& cfg) {
    cfg.leases_enabled = leases;
    if (max_lease_time > 0) cfg.max_lease_time = max_lease_time;
  };
  v.make = [leases](Machine& m, const BenchOptions& opt) {
    auto stack = std::make_shared<TreiberStack>(m, TreiberOptions{.use_lease = leases});
    m.spawn(0, [stack](Ctx& ctx) -> Task<void> {
      for (int i = 0; i < kPrefill; ++i) co_await stack->push(ctx, 5);
    });
    m.run();
    return [stack, &opt](Ctx& ctx, int) -> Task<void> {
      for (int i = 0; i < opt.ops_per_thread; ++i) {
        if (ctx.rng().next_bool(0.5)) {
          co_await stack->push(ctx, 7);
        } else {
          co_await stack->pop(ctx);
        }
        co_await think(ctx, opt);
      }
    };
  };
  return v;
}

int main_impl(int argc, char** argv) {
  BenchOptions opt;
  if (!parse_flags(argc, argv, "tbl_constants", opt)) return 0;
  auto samples = run_experiment(
      "Traffic constants (Section 7): stack misses/op and msgs/op vs contention",
      "tbl_constants",
      {stack_variant("base", false, 0), stack_variant("lease-20k", true, 20000),
       stack_variant("lease-1k", true, 1000)},
      opt);

  // Growth factors relative to the smallest thread count, the paper's
  // framing ("constant ... from 4 to 64 threads", base grows 5x).
  Table growth{{"variant", "misses/op @min", "misses/op @max", "growth", "msgs/op @min",
                "msgs/op @max", "growth(msgs)"}};
  for (const char* name : {"base", "lease-20k", "lease-1k"}) {
    const Sample *lo = nullptr, *hi = nullptr;
    for (const auto& s : samples) {
      if (s.variant != name) continue;
      if (lo == nullptr || s.threads < lo->threads) lo = &s;
      if (hi == nullptr || s.threads > hi->threads) hi = &s;
    }
    if (lo == nullptr || hi == nullptr) continue;
    growth.add_row({std::string(name), lo->misses_per_op(), hi->misses_per_op(),
                    lo->misses_per_op() > 0 ? hi->misses_per_op() / lo->misses_per_op() : 0.0,
                    lo->msgs_per_op(), hi->msgs_per_op(),
                    lo->msgs_per_op() > 0 ? hi->msgs_per_op() / lo->msgs_per_op() : 0.0});
  }
  std::cout << "-- growth from " << opt.threads.front() << " to " << opt.threads.back()
            << " threads --\n";
  growth.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace lrsim::bench

int main(int argc, char** argv) { return lrsim::bench::main_impl(argc, argv); }
